// Package minos is a from-scratch Go reproduction of "The Multimedia
// Object Presentation Manager of MINOS: A Symmetric Approach"
// (Christodoulakis, Ho, Theodoridou; SIGMOD 1986).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the executables, examples/ the runnable examples,
// and bench_test.go in this package regenerates every figure and
// measurable claim of the paper (see EXPERIMENTS.md).
//
// # Wire protocol opcodes
//
// The workstation/server protocol (internal/wire) is versioned by the
// HELLO handshake: v1 is the lockstep request/response framing, v2 adds
// the correlated mux (many in-flight calls on one connection), v3 adds
// credit-based server-push streams. Every request starts with a one-byte
// opcode:
//
//	op  name              since  meaning
//	 1  OpQuery           v1     content query → matching object ids
//	 2  OpDescriptor      v1     fetch an object's presentation descriptor
//	 3  OpReadPiece       v1     read (offset, length) of the archive
//	 4  OpMiniature       v1     one encoded browse miniature
//	 5  OpList            v1     list the archive's object ids
//	 6  OpMode            v1     an object's presentation mode
//	 7  OpImageView       v1     server-side image zoom/clip
//	 8  OpVoicePreview    v1     voice preview (page-sized prefix;
//	                             deprecated by OpVoiceStream)
//	 9  OpStats           v1     server statistics snapshot
//	10  OpHello           v1     version negotiation (v2+ piggybacks the
//	                             cluster map on the ack)
//	11  OpMiniatures      v2     batched miniatures, one frame per id
//	12  OpClusterMap      v2     epoch-checked cluster-map fetch
//	13  OpVoiceStream     v3     open a voice PCM server-push stream
//	14  OpMiniatureStream v3     open a progressive miniature stream
//	15  OpStreamCredit    v3     grant flow-control credit to a stream
//	16  OpStreamCancel    v3     cancel an open stream
//	17  OpQueryPlanned    v3     planned content query (AND terms +
//	                             kind/date predicates) → sorted ids
//
// Stream frame layout, credit rules and failover-resume semantics are
// specified in DESIGN.md §10; the planned-query grammar, segment format
// and planner cost model in DESIGN.md §12.
//
// # Gateway HTTP endpoints
//
// cmd/minos-gateway terminates web browse sessions over HTTP, mapping each
// onto a workstation session served by a pooled backend (a single server
// or a routed fleet — the pool is []workstation.Backend, so the choice is
// invisible above the seam):
//
//	POST   /session                          open a session → {"session":id}
//	DELETE /session/{sid}                    close the session (204)
//	POST   /session/{sid}/query?q=terms      content query → {"hits":n}
//	GET    /session/{sid}/query?q=query      planned query (terms plus
//	                                         kind:/after:/before:) → {"hits":n}
//	POST   /session/{sid}/step?dir=next|prev browse step → step event JSON
//	POST   /session/{sid}/open?obj=N         open an object → opened event
//	POST   /session/{sid}/progressive?obj=N  progressive miniature passes
//	GET    /session/{sid}/mini/{obj}.png     miniature as PNG (cached encode)
//	GET    /session/{sid}/view.png           the session screen as PNG
//	GET    /session/{sid}/ws                 WebSocket push (steps + PNGs)
//	GET    /session/{sid}/events             SSE fallback for the push feed
//	GET    /metrics                          gateway counters + tagged
//	                                         server/cluster statistics
//
// Busy backends and the session cap answer 503 with Retry-After; gateway
// architecture and the Backend contract are specified in DESIGN.md §11.
package minos
