// Package minos is a from-scratch Go reproduction of "The Multimedia
// Object Presentation Manager of MINOS: A Symmetric Approach"
// (Christodoulakis, Ho, Theodoridou; SIGMOD 1986).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the executables, examples/ the runnable examples,
// and bench_test.go in this package regenerates every figure and
// measurable claim of the paper (see EXPERIMENTS.md).
package minos
