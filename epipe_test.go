package minos

import (
	"net"
	"testing"
	"time"

	"minos/internal/core"
	"minos/internal/demo"
	"minos/internal/screen"
	"minos/internal/vclock"
	"minos/internal/wire"
	"minos/internal/workstation"
)

// E-PIPE: pipelined wire protocol + miniature prefetch vs the lock-step
// browse loop. The paper's §5 worries that "response times ... may become
// intolerable" when many delivery requests queue behind one another; the
// pipeline attacks the per-step link round trips: batched miniature
// fetches (one round trip returns K miniatures, mode included) issued
// ahead of the cursor, overlapping delivery with viewing.

const (
	epipeDepth = 8 // prefetch depth N (acceptance floor: 4)
	epipeBatch = 6 // miniatures per round trip K (acceptance floor: 4)
)

// epipeBrowse runs one full sequential browse and returns per-miniature
// link statistics.
func epipeBrowse(t testing.TB, sess *workstation.Session, lt *wire.LocalTransport, term string) (steps int, rts int64, linkTime time.Duration) {
	t.Helper()
	n, err := sess.Query(term)
	if err != nil {
		t.Fatal(err)
	}
	if n < 12 {
		t.Fatalf("only %d hits for %q; corpus too small for the experiment", n, term)
	}
	lt.ResetStats()
	for {
		_, mini, done, err := sess.NextMiniature()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if mini == nil || mini.PopCount() == 0 {
			t.Fatal("blank miniature during browse")
		}
		steps++
	}
	sess.Close() // drain in-flight prefetches so their traffic is counted
	st := lt.Stats()
	return steps, st.RoundTrips, st.LinkTime
}

func TestEPipeSequentialBrowse(t *testing.T) {
	corpus, err := demo.Build(1<<15, 24)
	if err != nil {
		t.Fatal(err)
	}
	newSession := func() (*workstation.Session, *wire.LocalTransport) {
		lt := wire.EthernetLink(&wire.Handler{Srv: corpus.Server})
		return workstation.New(wire.NewClient(lt), core.Config{
			Screen: screen.New(240, 140),
			Clock:  vclock.New(),
		}), lt
	}

	lock, lockLT := newSession()
	lockSteps, lockRTs, lockTime := epipeBrowse(t, lock, lockLT, "lung")

	pipe, pipeLT := newSession()
	pipe.EnablePrefetch(workstation.PrefetchConfig{Depth: epipeDepth, Batch: epipeBatch})
	pipeSteps, pipeRTs, pipeTime := epipeBrowse(t, pipe, pipeLT, "lung")

	if lockSteps != pipeSteps {
		t.Fatalf("browse lengths diverge: %d vs %d", lockSteps, pipeSteps)
	}
	lockPer := lockTime / time.Duration(lockSteps)
	pipePer := pipeTime / time.Duration(pipeSteps)
	t.Logf("E-PIPE: %d miniatures; lock-step %v/mini %d RTs; pipelined %v/mini %d RTs (N=%d K=%d)",
		lockSteps, lockPer, lockRTs, pipePer, pipeRTs, epipeDepth, epipeBatch)

	// Acceptance: >=3x lower per-miniature link latency.
	if pipePer*3 > lockPer {
		t.Fatalf("per-miniature link time %v not 3x below lock-step %v", pipePer, lockPer)
	}
	// Acceptance: the pipeline browses at the batching floor — one round
	// trip per K miniatures. (The lock-step loop pays one round trip per
	// miniature now that a cursor step is a batch of one carrying the mode
	// inline, so a fixed K-fold-below-lock-step ratio is the wrong bar.)
	floor := int64((lockSteps + epipeBatch - 1) / epipeBatch)
	if pipeRTs > floor {
		t.Fatalf("round trips %d above the one-per-%d floor %d (lock-step %d)", pipeRTs, epipeBatch, floor, lockRTs)
	}
	// The warm pipeline misses only on the cold start.
	ps := pipe.PrefetchStats()
	if ps.Misses != 1 {
		t.Fatalf("prefetch misses = %d, want 1 (cold start only)", ps.Misses)
	}
	if ps.Hits != int64(pipeSteps-1) {
		t.Fatalf("prefetch hits = %d, want %d", ps.Hits, pipeSteps-1)
	}
}

// TestEPipeOverTCP runs the same browse end-to-end over a real TCP
// connection with the v2 multiplexed framing and server-side read-ahead:
// the whole pipeline, no simulation.
func TestEPipeOverTCP(t *testing.T) {
	corpus, err := demo.Build(1<<15, 16)
	if err != nil {
		t.Fatal(err)
	}
	corpus.Server.SetReadAhead(8)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go wire.Serve(l, &wire.Handler{Srv: corpus.Server})

	tp, err := wire.DialMux(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if tp.Version() < wire.ProtocolV2 {
		t.Fatalf("negotiated version = %d", tp.Version())
	}
	tp.SetCallTimeout(10 * time.Second)
	sess := workstation.New(wire.NewClient(tp), core.Config{
		Screen: screen.New(240, 140),
		Clock:  vclock.New(),
	})
	sess.EnablePrefetch(workstation.PrefetchConfig{Depth: epipeDepth, Batch: epipeBatch})
	defer sess.Close()

	n, err := sess.Query("heart")
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("hits = %d", n)
	}
	steps := 0
	for {
		_, mini, done, err := sess.NextMiniature()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if mini == nil || mini.PopCount() == 0 {
			t.Fatal("blank miniature over TCP")
		}
		steps++
	}
	if steps != n {
		t.Fatalf("browsed %d of %d results", steps, n)
	}
	// The device served read-ahead blocks behind the sweep.
	if st := corpus.Server.Stats(); st.ReadAheadBlocks == 0 {
		t.Log("note: no read-ahead blocks landed (cache already warm)")
	}
}

// BenchmarkEPipeBrowse reports the per-object link cost of a full
// sequential browse, lock-step vs pipelined, for EXPERIMENTS.md.
func BenchmarkEPipeBrowse(b *testing.B) {
	corpus, err := demo.Build(1<<15, 24)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, prefetch bool) {
		var rts, steps int64
		var linkTime time.Duration
		for i := 0; i < b.N; i++ {
			lt := wire.EthernetLink(&wire.Handler{Srv: corpus.Server})
			sess := workstation.New(wire.NewClient(lt), core.Config{
				Screen: screen.New(240, 140),
				Clock:  vclock.New(),
			})
			if prefetch {
				sess.EnablePrefetch(workstation.PrefetchConfig{Depth: epipeDepth, Batch: epipeBatch})
			}
			if _, err := sess.Query("lung"); err != nil {
				b.Fatal(err)
			}
			lt.ResetStats()
			for {
				_, _, done, err := sess.NextMiniature()
				if err != nil {
					b.Fatal(err)
				}
				if done {
					break
				}
				steps++
			}
			sess.Close()
			st := lt.Stats()
			rts += st.RoundTrips
			linkTime += st.LinkTime
		}
		b.ReportMetric(float64(rts)/float64(steps), "RTs/object")
		b.ReportMetric(float64(linkTime.Microseconds())/float64(steps)/1000, "link-ms/object")
	}
	b.Run("lockstep", func(b *testing.B) { run(b, false) })
	b.Run("pipelined", func(b *testing.B) { run(b, true) })
}
