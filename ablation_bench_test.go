// Ablation benchmarks for the design choices DESIGN.md calls out: the
// device timing models, the cache size, audio page snapping, the split of
// the descriptor from the composition, and scheduler behaviour across
// devices. These go beyond the paper's own (qualitative) evaluation and
// probe whether each mechanism earns its place.
package minos

import (
	"fmt"
	"testing"
	"time"

	"minos/internal/demo"
	"minos/internal/descriptor"
	"minos/internal/disk"
	"minos/internal/figures"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
)

// A-DEVICE: the same closed load against the optical vs the magnetic
// timing model. The optical archiver must saturate earlier — §5's rationale
// for adding "one or more high performance magnetic disks" to the server.
func BenchmarkAblationDeviceKind(b *testing.B) {
	run := func(b *testing.B, dev disk.Device) server.SimStats {
		var st server.SimStats
		for i := 0; i < b.N; i++ {
			clock := vclock.New()
			q := server.NewDeviceQueue(clock, dev, server.FCFS, nil)
			issued := 0
			var issue func(client int)
			issue = func(client int) {
				if issued >= 120 {
					return
				}
				issued++
				off := uint64((issued * 37 % 512) * dev.BlockSize())
				q.Submit(off, 8192, func(time.Duration) {
					clock.AfterFunc(20*time.Millisecond, func() { issue(client) })
				})
			}
			for c := 0; c < 8; c++ {
				issue(c)
			}
			elapsed := clock.Run(0)
			st = q.Stats(elapsed)
		}
		return st
	}
	b.Run("optical", func(b *testing.B) {
		dev, err := disk.NewOptical("opt", disk.OpticalGeometry(1024))
		if err != nil {
			b.Fatal(err)
		}
		st := run(b, dev)
		b.ReportMetric(float64(st.Mean.Milliseconds()), "sim-mean-ms")
		b.ReportMetric(st.Utilization, "utilization")
	})
	b.Run("magnetic", func(b *testing.B) {
		dev, err := disk.NewMagnetic("mag", disk.MagneticGeometry(1024))
		if err != nil {
			b.Fatal(err)
		}
		st := run(b, dev)
		b.ReportMetric(float64(st.Mean.Milliseconds()), "sim-mean-ms")
		b.ReportMetric(st.Utilization, "utilization")
	})
}

// A-CACHESIZE: hit rate of the re-read browsing workload as the block
// cache shrinks.
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, blocks := range []int{0, 8, 64, 512} {
		b.Run(fmt.Sprintf("cache%d", blocks), func(b *testing.B) {
			corpus, err := demo.Build(1<<15, 8)
			if err != nil {
				b.Fatal(err)
			}
			// Rebuild the server with the ablated cache size over the
			// same archive.
			srv := server.New(corpus.Server.Archiver(), server.WithCache(blocks))
			ids := corpus.Server.IDs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.ResetStats()
				for j := 0; j < 20; j++ {
					for _, id := range ids[:4] {
						ext, _ := srv.Archiver().ExtentOf(id)
						srv.ReadPiece(ext.Start, 8192)
					}
				}
			}
			st := srv.Stats()
			if st.CacheHits+st.CacheMiss > 0 {
				b.ReportMetric(float64(st.CacheHits)/float64(st.CacheHits+st.CacheMiss), "hit-rate")
			} else {
				b.ReportMetric(0, "hit-rate")
			}
		})
	}
}

// A-SNAP: audio pages snapped to pauses vs exact constant-length pages.
// Snapping is the paper's "approximately constant time length" — the
// ablation measures how many page boundaries would split a word without it.
func BenchmarkAblationAudioPageSnap(b *testing.B) {
	markup := demo.FillerMarkup("voice", 220, 9)
	seg, err := text.Parse(markup)
	if err != nil {
		b.Fatal(err)
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000)
	pauses := voice.DetectPauses(syn.Part, voice.DetectorConfig{})
	splitRate := func(pages []voice.AudioPage) float64 {
		splits := 0
		for _, pg := range pages[:len(pages)-1] {
			inSilence := false
			for _, p := range pauses {
				if pg.End > p.Offset && pg.End <= p.Offset+p.Length {
					inSilence = true
					break
				}
			}
			if !inSilence {
				splits++
			}
		}
		if len(pages) <= 1 {
			return 0
		}
		return float64(splits) / float64(len(pages)-1)
	}
	b.Run("snapped", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			pages := voice.Paginate(syn.Part, 5*time.Second, pauses)
			rate = splitRate(pages)
		}
		b.ReportMetric(rate, "word-split-rate")
	})
	b.Run("exact", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			pages := voice.Paginate(syn.Part, 5*time.Second, nil)
			rate = splitRate(pages)
		}
		b.ReportMetric(rate, "word-split-rate")
	})
}

// A-DESC: how large is the descriptor relative to the composition for each
// figure object — the §4 design keeps presentation structure (descriptor)
// separable from bulk data (composition) so that browsing metadata is cheap
// to fetch.
func BenchmarkAblationDescriptorOverhead(b *testing.B) {
	objs := map[string]func() ([]byte, []byte){
		"fig12": func() ([]byte, []byte) {
			d, c, _ := descriptor.Encode(figures.Fig12Object())
			return d, c
		},
		"fig34": func() ([]byte, []byte) {
			d, c, _ := descriptor.Encode(figures.Fig34Object())
			return d, c
		},
		"fig910": func() ([]byte, []byte) {
			d, c, _ := descriptor.Encode(figures.Fig910Object())
			return d, c
		},
	}
	for name, build := range objs {
		b.Run(name, func(b *testing.B) {
			var dBytes, cBytes int
			for i := 0; i < b.N; i++ {
				d, c := build()
				dBytes, cBytes = len(d), len(c)
			}
			b.ReportMetric(float64(dBytes), "descriptor-bytes")
			b.ReportMetric(float64(cBytes), "composition-bytes")
			b.ReportMetric(float64(dBytes)/float64(dBytes+cBytes), "descriptor-fraction")
		})
	}
}

// A-SCHED: all three schedulers under heavy load on the optical device.
func BenchmarkAblationSchedulers(b *testing.B) {
	for _, kind := range []server.SchedKind{server.FCFS, server.SSTF, server.SCAN} {
		b.Run(kind.String(), func(b *testing.B) {
			var st server.SimStats
			for i := 0; i < b.N; i++ {
				corpus, err := demo.Build(1<<15, 16)
				if err != nil {
					b.Fatal(err)
				}
				st = corpus.Server.SimulateLoad(server.LoadConfig{
					Clients: 24, RequestsEach: 8,
					ThinkTime: 10 * time.Millisecond,
					PieceLen:  4096, Sched: kind, Seed: 7,
				})
			}
			b.ReportMetric(float64(st.Mean.Milliseconds()), "sim-mean-ms")
			b.ReportMetric(float64(st.P95.Milliseconds()), "sim-p95-ms")
		})
	}
}

// A-MARKDEPTH: the paper lets the author choose how deeply a voice object
// is manually edited ("in a certain object, only identification of chapters
// may be desirable; in another, chapters and sections and paragraphs", §2).
// This ablation measures the navigation residual — how far from a target
// utterance the nearest marker lands — as the editing depth varies.
func BenchmarkAblationMarkerDepth(b *testing.B) {
	markup := demo.FillerMarkup("presentation", 260, 13)
	seg, err := text.Parse(markup)
	if err != nil {
		b.Fatal(err)
	}
	stream := text.Flatten(seg)
	syn := voice.Synthesize(stream, voice.DefaultSpeaker(), 2000)
	depths := map[string]text.Unit{
		"chapters-only": text.UnitChapter,
		"paragraphs":    text.UnitParagraph,
		"sentences":     text.UnitSentence,
	}
	// Targets: every 10th word's offset.
	var targets []int
	for i := 5; i < len(syn.Marks); i += 10 {
		targets = append(targets, syn.Marks[i].Offset)
	}
	for name, depth := range depths {
		b.Run(name, func(b *testing.B) {
			markers := voice.MarkersFromMarks(syn.Marks, depth)
			part := &voice.Part{Rate: syn.Part.Rate, Samples: syn.Part.Samples, Markers: markers}
			var residual float64
			for i := 0; i < b.N; i++ {
				total := 0.0
				for _, tgt := range targets {
					// Nearest marker at or before the target.
					best := 0
					for _, mk := range part.Markers {
						if mk.Offset <= tgt && mk.Offset > best {
							best = mk.Offset
						}
					}
					total += float64(tgt-best) / float64(part.Rate)
				}
				residual = total / float64(len(targets))
			}
			b.ReportMetric(residual, "mean-residual-sec")
			b.ReportMetric(float64(len(markers)), "markers")
		})
	}
}

// A-SIG: signature file vs inverted index — the two access-method families
// of the paper's era. Signatures are tiny and sequential (optical-disk
// friendly) but admit false positives; the inverted index is exact but
// larger. The bench reports storage and query cost for both.
func BenchmarkAblationSignatureVsIndex(b *testing.B) {
	n := 200
	var objs []*object.Object
	for i := 1; i <= n; i++ {
		o, err := object.NewBuilder(object.ID(i), fmt.Sprintf("doc %d", i), object.Visual).
			Text(demo.FillerMarkup(fmt.Sprintf("topic%d", i%17), 120, i)).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		objs = append(objs, o)
	}
	b.Run("signature", func(b *testing.B) {
		sf := index.NewSignatureFile(512, 3)
		for _, o := range objs {
			sf.AddObject(o)
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			hits += len(sf.Query("subway", "tour"))
		}
		b.ReportMetric(float64(sf.SizeBytes()), "store-bytes")
	})
	b.Run("inverted", func(b *testing.B) {
		ix := index.New()
		for _, o := range objs {
			ix.AddObject(o)
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			hits += len(ix.Query("subway", "tour"))
		}
		// Approximate the index footprint from posting counts.
		postings := 0
		for _, o := range objs {
			postings += len(o.Stream())
		}
		b.ReportMetric(float64(postings*16), "store-bytes")
	})
}
