package minos

import (
	"reflect"
	"testing"
	"time"

	"minos/internal/loadgen"
)

// E-GATE: the gateway-tier experiment. E-LOAD showed the object server
// absorbing a mass-session population through direct wire clients; E-GATE
// interposes the web gateway — many browse sessions multiplexed over a
// shared pool of mux connections, miniatures served as encoded PNGs, steps
// pushed over a modelled browser link — and asks what the extra tier
// costs.
//
// Claims gated here:
//   - the run is deterministic (bit-identical GateResult for identical
//     inputs);
//   - >= 100 concurrent gateway sessions complete the office mix with
//     push-latency p99 within 2x of the direct-client E-LOAD figure at the
//     same scale (the gateway tier roughly at parity, not a multiplier);
//   - the shared encoded-PNG cache converts repeat miniature traffic into
//     warm hits (hit rate above one half once sessions overlap).

// egateConfig is the standard E-GATE shape: office mix, pooled backends,
// fair-share step slots.
func egateConfig(sessions int) loadgen.GateConfig {
	return loadgen.GateConfig{
		Sessions:  sessions,
		Duration:  20 * time.Second,
		Seed:      1986,
		StepSlots: 64,
	}
}

// egateBaseline runs the direct-client E-LOAD harness at the same session
// count and duration, so the 2x comparison tracks the corpus and scale
// rather than a frozen constant.
func egateBaseline(t *testing.T, sessions int) loadgen.Result {
	t.Helper()
	res, err := loadgen.Run(eloadCorpus(t), loadgen.Config{
		Sessions:    sessions,
		Duration:    20 * time.Second,
		Seed:        1986,
		MaxInFlight: 64,
	})
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	return res
}

// TestEGateHeadline is the headline run: >=100 concurrent web sessions
// through the gateway.
func TestEGateHeadline(t *testing.T) {
	const sessions = 120
	res, err := loadgen.RunGate(eloadCorpus(t), egateConfig(sessions))
	if err != nil {
		t.Fatalf("RunGate: %v", err)
	}
	t.Logf("E-GATE %d sessions: steps=%d (%.1f/s) queries=%d browses=%d opens=%d shed=%.1f%% p50=%v p95=%v p99=%v max=%v pngHit=%.2f",
		sessions, res.Steps, res.StepsPerSec, res.Queries, res.Browses, res.Opens,
		100*res.ShedRate, res.P50, res.P95, res.P99, res.MaxLat, res.PNGHitRate)
	if res.Steps == 0 {
		t.Fatal("no steps completed")
	}
	if res.Hub.SessionsOpened != sessions {
		t.Fatalf("opened %d sessions, want %d", res.Hub.SessionsOpened, sessions)
	}
	// Every session must make progress: the fair-share gate sheds bursts,
	// it does not starve users.
	if res.Steps < int64(sessions) {
		t.Fatalf("only %d steps across %d sessions", res.Steps, sessions)
	}
	base := egateBaseline(t, sessions)
	t.Logf("direct baseline: p99=%v (gate p99=%v)", base.P99, res.P99)
	if base.P99 > 0 && res.P99 > 2*base.P99 {
		t.Fatalf("gateway p99 %v exceeds 2x the direct-client p99 %v", res.P99, base.P99)
	}
	// Sessions browse overlapping result sets, so the shared encoded-PNG
	// cache must be doing most of the serving.
	if res.PNGHitRate < 0.5 {
		t.Fatalf("PNG cache hit rate %.2f below 0.5", res.PNGHitRate)
	}
}

// TestEGateDeterminism reruns a scaled-down configuration on a fresh
// corpus and demands a bit-identical GateResult.
func TestEGateDeterminism(t *testing.T) {
	cfg := egateConfig(60)
	cfg.Duration = 8 * time.Second
	a, err := loadgen.RunGate(eloadCorpus(t), cfg)
	if err != nil {
		t.Fatalf("RunGate: %v", err)
	}
	b, err := loadgen.RunGate(eloadCorpus(t), cfg)
	if err != nil {
		t.Fatalf("RunGate: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("E-GATE diverged between identical runs:\n%+v\n%+v", a, b)
	}
}

// TestEGateSmoke is the `make gate-smoke` gate: a small closed run cheap
// enough for every `make check`.
func TestEGateSmoke(t *testing.T) {
	srv, err := loadgen.BuildCorpus(1<<14, 30, 6)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	res, err := loadgen.RunGate(srv, loadgen.GateConfig{
		Sessions:  16,
		StepsEach: 30,
		Seed:      7,
		StepSlots: 16,
	})
	if err != nil {
		t.Fatalf("RunGate: %v", err)
	}
	if want := int64(16 * 30); res.Steps != want {
		t.Fatalf("completed %d steps, want %d", res.Steps, want)
	}
	if res.P99 > 5*time.Second {
		t.Fatalf("p99 %v exceeds generous 5s bound", res.P99)
	}
	t.Logf("gate-smoke: p50=%v p95=%v p99=%v shed=%.1f%% pngHit=%.2f",
		res.P50, res.P95, res.P99, 100*res.ShedRate, res.PNGHitRate)
}
