// The benchmark harness: one benchmark per figure (F1-F10) and per
// measurable claim of the paper (E-*). EXPERIMENTS.md records the expected
// shapes against these measurements. Custom metrics (accuracy, bytes,
// hit rates, simulated response times) are emitted with b.ReportMetric so
// `go test -bench=. -benchmem` regenerates every row.
package minos

import (
	"fmt"
	"testing"
	"time"

	"minos/internal/archiver"
	"minos/internal/core"
	"minos/internal/demo"
	"minos/internal/descriptor"
	"minos/internal/figures"
	img "minos/internal/image"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
	"minos/internal/wire"
)

// --- F1-F2: visual pages with text, graphics and bitmaps ---

func BenchmarkFig12VisualPageRender(b *testing.B) {
	o := figures.Fig12Object()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.New(core.Config{Screen: screen.New(512, 342), Clock: vclock.New()})
		if err := m.Open(o); err != nil {
			b.Fatal(err)
		}
		for m.PageNo() < m.PageCount()-1 {
			m.NextPage()
		}
	}
}

// --- F3-F4: visual logical message paging and the stored-once claim ---

func BenchmarkFig34LogicalMessagePaging(b *testing.B) {
	o := figures.Fig34Object()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.New(core.Config{Screen: screen.New(512, 342), Clock: vclock.New()})
		if err := m.Open(o); err != nil {
			b.Fatal(err)
		}
		for m.Screen().Strip() == nil {
			m.NextPage()
		}
		for m.Screen().Strip() != nil {
			m.NextPage()
		}
	}
}

func BenchmarkFig34StorageSharing(b *testing.B) {
	o := figures.Fig34Object()
	var shared, duplicated float64
	for i := 0; i < b.N; i++ {
		d, _, err := descriptor.Build(o)
		if err != nil {
			b.Fatal(err)
		}
		var bitmapBytes uint64
		for _, p := range d.Parts {
			if p.Kind == descriptor.PartBitmap {
				bitmapBytes += p.Length
			}
		}
		// The split view needs several sub-pages; a paper-document
		// layout would print the image once per page of related text.
		m := core.New(core.Config{Screen: screen.New(512, 342), Clock: vclock.New()})
		if err := m.Open(o); err != nil {
			b.Fatal(err)
		}
		pagesWithImage := 0
		for m.Screen().Strip() == nil {
			m.NextPage()
		}
		for m.Screen().Strip() != nil {
			pagesWithImage++
			m.NextPage()
		}
		shared = float64(bitmapBytes)
		duplicated = float64(bitmapBytes) * float64(pagesWithImage)
	}
	b.ReportMetric(shared, "bytes-stored-once")
	b.ReportMetric(duplicated, "bytes-if-duplicated")
	b.ReportMetric(duplicated/shared, "duplication-factor")
}

// --- F5-F6: transparency compositing ---

func BenchmarkFig56TransparencyCompositing(b *testing.B) {
	o := figures.Fig56Object()
	m := core.New(core.Config{Screen: screen.New(512, 342), Clock: vclock.New()})
	if err := m.Open(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ShowTransparencies(); err != nil {
			b.Fatal(err)
		}
		m.NextTransparency()
		m.PrevTransparency()
		m.GotoPage(0) // ends the set
	}
}

// --- F7-F8: relevant object overlay navigation ---

func BenchmarkFig78RelevantObjectOverlay(b *testing.B) {
	parent, university, hospitals := figures.Fig78Objects()
	resolver := func(id object.ID) (*object.Object, error) {
		if id == university.ID {
			return university, nil
		}
		return hospitals, nil
	}
	m := core.New(core.Config{Screen: screen.New(512, 342), Clock: vclock.New(), Resolver: resolver})
	if err := m.Open(parent); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.EnterRelevant(i % 2); err != nil {
			b.Fatal(err)
		}
		if err := m.ReturnFromRelevant(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F9-F10: process simulation ---

func BenchmarkFig910ProcessSimulation(b *testing.B) {
	o := figures.Fig910Object()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := vclock.New()
		m := core.New(core.Config{Screen: screen.New(512, 342), Clock: clock})
		if err := m.Open(o); err != nil {
			b.Fatal(err)
		}
		if err := m.StartProcess("walk"); err != nil {
			b.Fatal(err)
		}
		clock.Run(10 * time.Minute)
		if m.ProcessRunning() {
			b.Fatal("simulation did not finish")
		}
	}
}

// --- E-SYM: symmetric browsing across text and voice twins ---

func BenchmarkESymSymmetricBrowse(b *testing.B) {
	markup := demo.FillerMarkup("lung", 240, 7)
	seg, err := text.Parse(markup)
	if err != nil {
		b.Fatal(err)
	}
	vis, err := object.NewBuilder(1, "twin", object.Visual).Text(markup).Build()
	if err != nil {
		b.Fatal(err)
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000)
	syn.Part.Markers = voice.MarkersFromMarks(syn.Marks, text.UnitSentence)
	aud, err := object.NewBuilder(2, "twin spoken", object.Audio).VoicePart(syn.Part).Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	mismatches := 0
	for i := 0; i < b.N; i++ {
		mv := core.New(core.Config{Screen: screen.New(360, 240), Clock: vclock.New()})
		ma := core.New(core.Config{Screen: screen.New(360, 240), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
		mv.Open(vis)
		ma.Open(aud)
		for j := 0; j < 6; j++ {
			mv.NextUnit(text.UnitSentence)
			ma.NextUnit(text.UnitSentence)
			audWord := -1
			for w, mark := range syn.Marks {
				if mark.Offset <= ma.Position() {
					audWord = w
				}
			}
			if audWord != mv.Position() {
				mismatches++
			}
		}
	}
	b.ReportMetric(float64(mismatches)/float64(b.N), "unit-mismatches/op")
}

// --- E-PAUSE: adaptive vs fixed-threshold pause classification ---

func BenchmarkEPauseDetection(b *testing.B) {
	markup := demo.FillerMarkup("voice", 200, 3)
	seg, err := text.Parse(markup)
	if err != nil {
		b.Fatal(err)
	}
	stream := text.Flatten(seg)
	speakers := []voice.Speaker{
		{WordsPerMinute: 100, PitchHz: 110, PauseScale: 1, NoiseAmp: 40, Seed: 1},
		{WordsPerMinute: 150, PitchHz: 120, PauseScale: 1, NoiseAmp: 40, Seed: 2},
		{WordsPerMinute: 60, PitchHz: 100, PauseScale: 3, NoiseAmp: 40, Seed: 3},
	}
	for _, mode := range []string{"adaptive", "fixed400ms"} {
		b.Run(mode, func(b *testing.B) {
			var correct, total int
			for i := 0; i < b.N; i++ {
				correct, total = 0, 0
				for _, sp := range speakers {
					syn := voice.Synthesize(stream, sp, 2000)
					cfg := voice.DetectorConfig{}
					if mode == "fixed400ms" {
						cfg.FixedLongThreshold = 400 * time.Millisecond
					}
					pauses := voice.DetectPauses(syn.Part, cfg)
					c, t := pauseAccuracy(syn, pauses)
					correct += c
					total += t
				}
			}
			if total > 0 {
				b.ReportMetric(float64(correct)/float64(total), "accuracy")
			}
		})
	}
}

func pauseAccuracy(syn *voice.Synthesis, pauses []voice.Pause) (correct, total int) {
	for i := 1; i < len(syn.Marks); i++ {
		m := syn.Marks[i]
		gapStart := m.Offset - int(int64(m.GapLen)*int64(syn.Part.Rate)/int64(time.Second))
		mid := (gapStart + m.Offset) / 2
		for j := range pauses {
			p := &pauses[j]
			if mid >= p.Offset && mid < p.Offset+p.Length {
				total++
				if p.Long == m.Gap.IsLong() {
					correct++
				}
				break
			}
		}
	}
	return correct, total
}

// --- E-PAT: indexed pattern browsing vs linear scan ---

func BenchmarkEPatIndexedVsScan(b *testing.B) {
	for _, words := range []int{200, 2000, 20000} {
		markup := demo.FillerMarkup("presentation", words, 11)
		o, err := object.NewBuilder(1, "pat", object.Visual).Text(markup).Build()
		if err != nil {
			b.Fatal(err)
		}
		stream := o.Stream()
		ix := index.New()
		ix.AddObject(o)
		b.Run(fmt.Sprintf("indexed/%dw", words), func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				pos := -1
				for {
					p := ix.NextPhrase(1, stream, "subway tour", pos)
					if p == -1 {
						break
					}
					hits++
					pos = p
				}
			}
			_ = hits
		})
		b.Run(fmt.Sprintf("scan/%dw", words), func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				pos := -1
				for {
					p := index.NextPhraseInStream(stream, "subway tour", pos)
					if p == -1 {
						break
					}
					hits++
					pos = p
				}
			}
			_ = hits
		})
	}
}

// --- E-VIEW: view on a representation vs full image transfer ---

func BenchmarkEViewVsFullImage(b *testing.B) {
	corpus, err := demo.Build(1<<16, 0)
	if err != nil {
		b.Fatal(err)
	}
	lt := wire.EthernetLink(&wire.Handler{Srv: corpus.Server})
	client := wire.NewClient(lt)
	id := corpus.FigureIDs["bigmap"]
	// Warm the server raster cache so both paths measure link transfer.
	if _, _, err := client.ImageView(id, "roadmap", img.Rect{X: 0, Y: 0, W: 8, H: 8}); err != nil {
		b.Fatal(err)
	}

	b.Run("view128x96", func(b *testing.B) {
		lt.ResetStats()
		for i := 0; i < b.N; i++ {
			if _, _, err := client.ImageView(id, "roadmap", img.Rect{X: 100, Y: 80, W: 128, H: 96}); err != nil {
				b.Fatal(err)
			}
		}
		st := lt.Stats()
		b.ReportMetric(float64(st.BytesRecv)/float64(b.N), "bytes/op")
		b.ReportMetric(float64(st.LinkTime.Microseconds())/float64(b.N), "linkµs/op")
	})
	b.Run("fullimage640x480", func(b *testing.B) {
		lt.ResetStats()
		for i := 0; i < b.N; i++ {
			if _, _, err := client.ImageView(id, "roadmap", img.Rect{X: 0, Y: 0, W: 640, H: 480}); err != nil {
				b.Fatal(err)
			}
		}
		st := lt.Stats()
		b.ReportMetric(float64(st.BytesRecv)/float64(b.N), "bytes/op")
		b.ReportMetric(float64(st.LinkTime.Microseconds())/float64(b.N), "linkµs/op")
	})
	b.Run("representation80x60", func(b *testing.B) {
		lt.ResetStats()
		for i := 0; i < b.N; i++ {
			if _, _, err := client.ImageView(id, "roadmap.mini", img.Rect{X: 0, Y: 0, W: 80, H: 60}); err != nil {
				b.Fatal(err)
			}
		}
		st := lt.Stats()
		b.ReportMetric(float64(st.BytesRecv)/float64(b.N), "bytes/op")
	})
}

// --- E-TOUR: tour playback on the virtual clock ---

func BenchmarkETourPlayback(b *testing.B) {
	big, err := demo.BigMapObject(1, 640, 480, 40)
	if err != nil {
		b.Fatal(err)
	}
	tour := img.Tour{Image: "roadmap", Size: img.Point{X: 160, Y: 120}, DwellMillis: 200}
	for i := 0; i < 8; i++ {
		tour.Stops = append(tour.Stops, img.TourStop{At: img.Point{X: i * 60, Y: i * 40}})
	}
	big.Tours = append(big.Tours, object.TourRef{Name: "sweep", Tour: tour})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := vclock.New()
		m := core.New(core.Config{Screen: screen.New(512, 342), Clock: clock, VoiceOption: true})
		if err := m.Open(big); err != nil {
			b.Fatal(err)
		}
		if err := m.StartTour("sweep"); err != nil {
			b.Fatal(err)
		}
		clock.Run(time.Minute)
		if m.TourRunning() {
			b.Fatal("tour did not finish")
		}
	}
}

// --- E-QUEUE: server queueing under load ---

func BenchmarkEQueueServerLoad(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		for _, sched := range []server.SchedKind{server.FCFS, server.SSTF} {
			b.Run(fmt.Sprintf("clients%d/%s", clients, sched), func(b *testing.B) {
				var st server.SimStats
				for i := 0; i < b.N; i++ {
					corpus, err := demo.Build(1<<15, 16)
					if err != nil {
						b.Fatal(err)
					}
					st = corpus.Server.SimulateLoad(server.LoadConfig{
						Clients: clients, RequestsEach: 10,
						ThinkTime: 50 * time.Millisecond,
						PieceLen:  8192, Sched: sched, Seed: 99,
					})
				}
				b.ReportMetric(float64(st.Mean.Milliseconds()), "sim-mean-ms")
				b.ReportMetric(float64(st.P95.Milliseconds()), "sim-p95-ms")
				b.ReportMetric(st.Utilization, "utilization")
			})
		}
	}
}

// --- E-CACHE: block cache hit rate under browsing workloads ---

func BenchmarkECacheHitRate(b *testing.B) {
	for _, workload := range []string{"reread", "scan"} {
		b.Run(workload, func(b *testing.B) {
			corpus, err := demo.Build(1<<15, 24)
			if err != nil {
				b.Fatal(err)
			}
			// The cache holds 16 blocks: plenty for one object's pages
			// (the re-read workload) but far below the whole corpus, so a
			// sequential sweep with LRU keeps evicting what it will need
			// next round.
			srv := server.New(corpus.Server.Archiver(), server.WithCache(16))
			ids := srv.IDs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.ResetStats()
				switch workload {
				case "reread":
					// A browsing user re-reads the same object's pages.
					ext, _ := srv.Archiver().ExtentOf(ids[0])
					for j := 0; j < 30; j++ {
						srv.ReadPiece(ext.Start, min64(ext.Length, 16384))
					}
				case "scan":
					// A sequential sweep over every object.
					for _, id := range ids {
						ext, _ := srv.Archiver().ExtentOf(id)
						srv.ReadPiece(ext.Start, min64(ext.Length, 16384))
					}
				}
			}
			st := srv.Stats()
			if st.CacheHits+st.CacheMiss > 0 {
				b.ReportMetric(float64(st.CacheHits)/float64(st.CacheHits+st.CacheMiss), "hit-rate")
			}
		})
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// --- E-MINI: miniature browsing vs full object shipping ---

func BenchmarkEMiniatureBrowse(b *testing.B) {
	corpus, err := demo.Build(1<<16, 16)
	if err != nil {
		b.Fatal(err)
	}
	lt := wire.EthernetLink(&wire.Handler{Srv: corpus.Server})
	client := wire.NewClient(lt)
	ids := corpus.Server.IDs()

	b.Run("miniatures", func(b *testing.B) {
		lt.ResetStats()
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				if _, _, err := client.Miniature(id); err != nil {
					b.Fatal(err)
				}
			}
		}
		st := lt.Stats()
		b.ReportMetric(float64(st.BytesRecv)/float64(b.N)/float64(len(ids)), "bytes/object")
	})
	b.Run("fullobjects", func(b *testing.B) {
		lt.ResetStats()
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				d, _, err := client.Descriptor(id)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Materialize(client.Fetch(nil)); err != nil {
					b.Fatal(err)
				}
			}
		}
		st := lt.Stats()
		b.ReportMetric(float64(st.BytesRecv)/float64(b.N)/float64(len(ids)), "bytes/object")
	})
}

// --- E-LABEL: label pattern highlight and inverse lookup ---

func BenchmarkELabelLookup(b *testing.B) {
	big, err := demo.BigMapObject(1, 640, 480, 120)
	if err != nil {
		b.Fatal(err)
	}
	im := big.ImageByName("roadmap")
	b.Run("highlight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matches := im.MatchLabels("hotel")
			im.HighlightMask(matches)
		}
	})
	b.Run("hittest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			im.HitTest(i%640, (i*7)%480)
		}
	})
}

// --- E-MAIL: mail-out pointer resolution ---

func BenchmarkEMailOut(b *testing.B) {
	corpus, err := demo.Build(1<<16, 4)
	if err != nil {
		b.Fatal(err)
	}
	arch := corpus.Server.Archiver()
	// Archive a second object sharing the big map's image part.
	shared, err := object.NewBuilder(901, "Annotated Map", object.Visual).
		Text(".title Annotated Map\nAnnotations referencing the shared city map data.\n").
		Image(demoMapCopy()).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := arch.Archive(shared, archiver.SharedPart{Part: "roadmap", From: 900, FromPart: "roadmap"}); err != nil {
		b.Fatal(err)
	}
	var insideBytes, outsideBytes int
	b.Run("inside", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blob, _, err := arch.MailOut(901, true)
			if err != nil {
				b.Fatal(err)
			}
			insideBytes = len(blob)
		}
		b.ReportMetric(float64(insideBytes), "blob-bytes")
	})
	b.Run("outside", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blob, _, err := arch.MailOut(901, false)
			if err != nil {
				b.Fatal(err)
			}
			outsideBytes = len(blob)
		}
		b.ReportMetric(float64(outsideBytes), "blob-bytes")
	})
}

func demoMapCopy() *img.Image {
	big, err := demo.BigMapObject(0, 640, 480, 60)
	if err != nil {
		panic(err)
	}
	return big.ImageByName("roadmap")
}

// --- E-RECOG: recognition anchors enable voice pattern browsing ---

func BenchmarkERecognitionAnchors(b *testing.B) {
	markup := demo.FillerMarkup("hospital", 300, 5)
	seg, err := text.Parse(markup)
	if err != nil {
		b.Fatal(err)
	}
	stream := text.Flatten(seg)
	syn := voice.Synthesize(stream, voice.DefaultSpeaker(), 2000)
	// Ground truth occurrences of the probe token.
	probe := "hospital"
	truth := 0
	for _, fw := range stream {
		if text.NormalizeToken(fw.Word.Text) == probe {
			truth++
		}
	}
	for _, hitRate := range []float64{0.0, 0.5, 0.9, 1.0} {
		b.Run(fmt.Sprintf("hitrate%.0f%%", hitRate*100), func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				rec := voice.NewRecognizer([]string{probe})
				rec.HitRate = hitRate
				if hitRate == 0 {
					rec.HitRate = 0.0001 // zero disables the default
				}
				utts := rec.Recognize(syn.Marks)
				found := 0
				pos := -1
				for {
					u := voice.NextUtterance(utts, probe, pos)
					if u == nil {
						break
					}
					found++
					pos = u.Offset
				}
				if truth > 0 {
					recall = float64(found) / float64(truth)
				}
			}
			b.ReportMetric(recall, "recall")
		})
	}
}
