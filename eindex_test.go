package minos

import (
	"testing"

	"minos/internal/demo"
	"minos/internal/index"
	"minos/internal/loadgen"
	"minos/internal/object"
)

// E-INDEX smoke: the segmented content index answers exactly like a brute
// force scan of the corpus definition, the incremental path (memtable
// seals + background merges) is equivalent to the bulk parallel build, and
// the small-scale experiment run holds the report's invariants
// (bit-identical segments across worker counts, planner results equal to
// the naive evaluator, ~0 allocations per warm query). The full-scale run
// lives in cmd/minos-bench -index; this is the `make index-smoke` gate.

// bruteForceIDs evaluates q against the synthetic corpus definition itself
// — no index code on this path at all.
func bruteForceIDs(seed uint64, docs int, q index.Query) []object.ID {
	var ids []object.ID
	var d index.Doc
	for i := 0; i < docs; i++ {
		demo.SynthDoc(seed, i, &d)
		ok := true
		for _, term := range q.Terms {
			found := false
			for _, have := range d.Terms {
				if have == term {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		switch q.Kind {
		case index.KindVisual:
			if d.Mode != object.Visual {
				continue
			}
		case index.KindAudio:
			if d.Mode != object.Audio {
				continue
			}
		}
		if q.DateFrom != 0 && d.Date < q.DateFrom {
			continue
		}
		if q.DateTo != 0 && (d.Date > q.DateTo || d.Date == 0) {
			continue
		}
		ids = append(ids, d.ID)
	}
	return ids
}

func assertSameIDs(t *testing.T, what string, got, want []object.ID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func mustDate(t *testing.T, s string) uint32 {
	t.Helper()
	d, err := index.ParseDate(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEIndexSmoke(t *testing.T) {
	const (
		seed = uint64(1986)
		docs = 30_000
	)
	gen := func(i int, d *index.Doc) { demo.SynthDoc(seed, i, d) }

	bulk, _, err := index.BuildStore(docs, gen, index.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Incremental store with a tiny memtable and an eager merge policy, so
	// the smoke run exercises seal + background merge, not just bulk build.
	inc := index.NewStore(index.Config{MemtableDocs: 512, MergeFanIn: 4})
	var d index.Doc
	for i := 0; i < docs; i++ {
		demo.SynthDoc(seed, i, &d)
		if !inc.Add(&d) {
			t.Fatalf("incremental add rejected doc %d", i)
		}
	}
	inc.WaitMerges()

	// Query battery: selective conjunctions plus attribute-predicate
	// variants of each, answered by both stores and checked exactly
	// against a brute-force scan of the corpus definition.
	nonEmpty := 0
	for k := 0; k < 24; k++ {
		base := demo.SynthQuery(seed, k, docs)
		variants := []index.Query{
			base,
			{Terms: base.Terms, Kind: index.KindAudio},
			{Terms: base.Terms, Kind: index.KindVisual, DateFrom: mustDate(t, "1983-01-01")},
			{Terms: base.Terms[:1], DateFrom: mustDate(t, "1984-06-01"), DateTo: mustDate(t, "1986-06-01")},
		}
		for _, q := range variants {
			want := bruteForceIDs(seed, docs, q)
			assertSameIDs(t, "bulk vs brute", bulk.Search(q, nil), want)
			assertSameIDs(t, "incremental vs brute", inc.Search(q, nil), want)
			if len(want) > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every battery query matched nothing; corpus or query derivation is broken")
	}

	// Small-scale experiment run: the invariants the committed BENCH
	// report claims at full scale must already hold here.
	res, err := loadgen.RunIndex(loadgen.IndexConfig{Docs: docs, Queries: 40, Workers: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E-INDEX smoke: %d docs, %d segments (%d bytes), planned p99 %v vs naive %v (%.1fx), model %.2fx@%d, allocs/query %.3f",
		res.Docs, res.Segments, res.SegmentBytes, res.PlannedP99, res.NaiveP99, res.P99Speedup, res.ModelSpeedup, res.Workers, res.AllocsPerQuery)
	if !res.Deterministic {
		t.Fatal("parallel build segments differ from serial build")
	}
	if !res.ResultsMatch {
		t.Fatal("planner results differ from naive evaluator")
	}
	if res.AllocsPerQuery > 0.5 {
		t.Fatalf("warm planned query allocates (%.2f allocs/query)", res.AllocsPerQuery)
	}
	if res.MeanHits <= 0 {
		t.Fatal("query battery matched nothing")
	}
}
