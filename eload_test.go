package minos

import (
	"reflect"
	"testing"
	"time"

	"minos/internal/loadgen"
	"minos/internal/server"
)

// E-LOAD: mass-session load against the object server under per-tenant
// admission control. The paper's §5 performance concern — "queueing delays
// that may be experienced when several users try to access data from the
// same device" — is here measured at fleet scale: 10k deterministic
// vclock-driven sessions (office / medical / city-guide mixes) drive the
// real server read path while an event-driven station models the optical
// head's queue with the same fair-queueing policy the real seek semaphore
// uses.
//
// Claims gated here:
//   - the run is deterministic (bit-identical Result for identical inputs);
//   - under saturation the admission gate bounds p99 step latency instead
//     of letting queues grow without bound;
//   - shedding, not starvation, absorbs overload: the per-tenant fair
//     share keeps max/min session throughput within 2x inside a class;
//   - the shed rate rises monotonically with offered load (the E-LOAD
//     curve reported in EXPERIMENTS.md).

// eloadCorpus builds the standard E-LOAD corpus: demo figures + filler
// documents + spoken audio objects.
func eloadCorpus(t *testing.T) *server.Server {
	t.Helper()
	srv, err := loadgen.BuildCorpus(1<<15, 60, 12)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	return srv
}

// eloadSessions scales the fleet down under -short while keeping the
// saturated regime (the admission bound stays fixed).
func eloadSessions(t *testing.T) int {
	if testing.Short() {
		return 1000
	}
	return 10_000
}

func eloadConfig(sessions int) loadgen.Config {
	return loadgen.Config{
		Sessions:    sessions,
		Duration:    30 * time.Second,
		Seed:        1986,
		MaxInFlight: 64,
		HotSessions: sessions / 100,
	}
}

// TestELoadMassSessions is the headline 10k-session run.
func TestELoadMassSessions(t *testing.T) {
	sessions := eloadSessions(t)
	res, err := loadgen.Run(eloadCorpus(t), eloadConfig(sessions))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("E-LOAD %d sessions: steps=%d offered=%d shed=%.1f%% p50=%v p95=%v p99=%v max=%v fairness=%.2f devWaits=%v",
		sessions, res.Steps, res.Offered, 100*res.ShedRate, res.P50, res.P95, res.P99, res.MaxLat, res.FairnessRatio, res.DevWaits)
	if res.Steps == 0 {
		t.Fatal("no steps completed")
	}
	// Saturation is the point of the experiment: the fleet must offer far
	// more device work than one optical head serves, and the gate must
	// shed rather than queue it.
	if res.Sheds == 0 || res.Degraded == 0 {
		t.Fatalf("expected saturation (sheds and degraded steps > 0): %+v", res)
	}
	// Admission keeps p99 bounded: without the gate, 10k sessions behind
	// one head would queue for virtual minutes.
	if res.P99 > 10*time.Second {
		t.Fatalf("p99 %v exceeds the 10s admission-bounded envelope", res.P99)
	}
	// Per-tenant fairness under saturation: no session class may see a
	// member starved while a sibling races ahead.
	if res.FairnessRatio > 2 {
		t.Fatalf("fairness ratio %.2f exceeds 2 (min=%d max=%d steps)", res.FairnessRatio, res.MinSteps, res.MaxSteps)
	}
	if res.MinSteps == 0 {
		t.Fatalf("a session was starved: %+v", res)
	}
}

// TestELoadDeterminism reruns the (scaled-down) configuration on a fresh
// corpus and demands a bit-identical Result.
func TestELoadDeterminism(t *testing.T) {
	cfg := eloadConfig(500)
	cfg.Duration = 10 * time.Second
	a, err := loadgen.Run(eloadCorpus(t), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := loadgen.Run(eloadCorpus(t), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("E-LOAD diverged between identical runs:\n%+v\n%+v", a, b)
	}
}

// TestELoadShedCurve sweeps offered load and checks the shed rate is
// monotonically non-decreasing — the curve committed to EXPERIMENTS.md.
func TestELoadShedCurve(t *testing.T) {
	points := []int{500, 2000, 8000}
	if testing.Short() {
		points = []int{200, 800}
	}
	prev := -1.0
	for _, n := range points {
		cfg := eloadConfig(n)
		cfg.Duration = 10 * time.Second
		res, err := loadgen.Run(eloadCorpus(t), cfg)
		if err != nil {
			t.Fatalf("Run(%d): %v", n, err)
		}
		t.Logf("sessions=%5d offered=%7d shedRate=%.3f p99=%v", n, res.Offered, res.ShedRate, res.P99)
		if res.ShedRate < prev {
			t.Fatalf("shed rate fell from %.3f to %.3f as sessions rose to %d", prev, res.ShedRate, n)
		}
		prev = res.ShedRate
	}
}

// TestELoadSmoke is the `make load-smoke` gate: ~100 sessions, 200 steps
// each, asserting p99 under a generous bound. Kept cheap enough for every
// `make check`.
func TestELoadSmoke(t *testing.T) {
	srv, err := loadgen.BuildCorpus(1<<14, 30, 6)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	res, err := loadgen.Run(srv, loadgen.Config{
		Sessions:    100,
		StepsEach:   200,
		Seed:        99,
		MaxInFlight: 32,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := int64(100 * 200); res.Steps != want {
		t.Fatalf("completed %d steps, want %d", res.Steps, want)
	}
	if res.P99 > 5*time.Second {
		t.Fatalf("p99 %v exceeds generous 5s bound", res.P99)
	}
	t.Logf("load-smoke: p50=%v p95=%v p99=%v shed=%.1f%%", res.P50, res.P95, res.P99, 100*res.ShedRate)
}
