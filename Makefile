GO ?= go

.PHONY: all build test race bench bench-smoke fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race pass over the packages with concurrency stress tests.
race:
	$(GO) test -race -short ./internal/server ./internal/wire ./internal/workstation

bench:
	$(GO) test -bench=. -benchmem .

# One-iteration pass over the pipeline benchmarks: catches bit-rot in the
# wire mux and prefetch benchmark harnesses without paying for a full run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EPipe|Mux|Prefetch' -benchtime=1x . ./internal/wire ./internal/workstation

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build test race bench-smoke
