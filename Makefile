GO ?= go
BENCH_OUT ?= BENCH_10.json

.PHONY: all build test race bench bench-smoke bench-json bench-json-smoke alloc-guard fault-matrix load-smoke shard-smoke stream-smoke gate-smoke index-smoke fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race pass over the packages with concurrency stress tests.
race:
	$(GO) test -race -short ./internal/server ./internal/wire ./internal/workstation ./internal/faults ./internal/sched ./internal/vclock ./internal/cluster ./internal/gateway ./internal/index

# Resilience suite: fault injection, v1/v2 interop under faults, session
# resync/degraded serving, and the E-FAULT experiment.
fault-matrix:
	$(GO) test ./internal/faults -run . -count=1
	$(GO) test ./internal/workstation -run 'Resync|Stale|ContextCancelled' -count=1
	$(GO) test . -run 'EFault' -count=1

bench:
	$(GO) test -bench=. -benchmem .

# One-iteration pass over the pipeline benchmarks: catches bit-rot in the
# wire mux and prefetch benchmark harnesses without paying for a full run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EPipe|Mux|Prefetch' -benchtime=1x . ./internal/wire ./internal/workstation

# Benchmark-regression report: run the E-ALLOC hot-path benchmarks plus
# the E-LOAD mass-session run, the E-SHARD scaling sweep, the E-STREAM
# streaming-delivery experiment and the E-GATE gateway run, and write the
# combined report to $(BENCH_OUT) (committed per PR).
bench-json:
	$(GO) run ./cmd/minos-bench -load -shard -stream -gate -index -out $(BENCH_OUT)

# E-LOAD smoke: ~100 sessions x 200 steps through the load harness with a
# p99 latency bound. Cheap enough to gate every `make check`.
load-smoke:
	$(GO) test -run 'ELoadSmoke' -count=1 .

# E-SHARD smoke: a 2-shard mini run under vclock with a mid-run primary
# failure — proves partitioned routing and replica failover on every check.
shard-smoke:
	$(GO) test -run 'EShardSmoke' -count=1 .

# E-STREAM smoke: a short spoken part streamed over the mux on the modelled
# link — first audio must beat the batch full download by >= 2x, zero
# underruns, and a mid-stream primary kill must resume on the replica.
stream-smoke:
	$(GO) test -run 'EStreamSmoke' -count=1 .

# E-GATE smoke: a small gateway run (16 sessions under vclock, exact step
# count asserted) plus the end-to-end HTTP browse with its /metrics scrape
# assertions.
gate-smoke:
	$(GO) test -run 'EGateSmoke' -count=1 .
	$(GO) test -run 'GatewayBrowseHTTP' -count=1 ./internal/gateway

# E-INDEX smoke: the segmented content index vs a brute-force scan of the
# corpus definition, incremental (seal+merge) vs bulk build equivalence,
# and the experiment invariants (bit-identical segments, planner == naive,
# ~0 allocs per warm query) at 30k docs.
index-smoke:
	$(GO) test -run 'EIndexSmoke' -count=1 .

# One-iteration harness smoke: proves minos-bench still runs and parses
# without overwriting the committed report.
bench-json-smoke:
	$(GO) run ./cmd/minos-bench -benchtime 1x -out - >/dev/null

# Steady-state allocation guards (testing.AllocsPerRun); skipped under
# -race, where the runtime deliberately drops sync.Pool entries.
alloc-guard:
	$(GO) test -run 'Alloc' -count=1 ./internal/image ./internal/voice ./internal/server ./internal/wire ./internal/cluster ./internal/gateway ./internal/index

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build test race fault-matrix bench-smoke alloc-guard bench-json-smoke load-smoke shard-smoke stream-smoke gate-smoke index-smoke
