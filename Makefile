GO ?= go

.PHONY: all build test race bench fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race pass over the packages with concurrency stress tests.
race:
	$(GO) test -race -short ./internal/server ./internal/wire

bench:
	$(GO) test -bench=. -benchmem .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build test race
