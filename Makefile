GO ?= go

.PHONY: all build test race bench bench-smoke fault-matrix fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race pass over the packages with concurrency stress tests.
race:
	$(GO) test -race -short ./internal/server ./internal/wire ./internal/workstation ./internal/faults

# Resilience suite: fault injection, v1/v2 interop under faults, session
# resync/degraded serving, and the E-FAULT experiment.
fault-matrix:
	$(GO) test ./internal/faults -run . -count=1
	$(GO) test ./internal/workstation -run 'Resync|Stale|ContextCancelled' -count=1
	$(GO) test . -run 'EFault' -count=1

bench:
	$(GO) test -bench=. -benchmem .

# One-iteration pass over the pipeline benchmarks: catches bit-rot in the
# wire mux and prefetch benchmark harnesses without paying for a full run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EPipe|Mux|Prefetch' -benchtime=1x . ./internal/wire ./internal/workstation

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build test race fault-matrix bench-smoke
