package minos

import (
	"context"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"minos/internal/core"
	"minos/internal/demo"
	"minos/internal/faults"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/vclock"
	"minos/internal/wire"
	"minos/internal/workstation"
)

// E-FAULT: the resilient wire layer under injected faults. A scripted
// browse of a 25+ result set runs over real TCP with ~5% of frames
// dropped by a seeded injector, and the server is killed and restarted
// mid-browse (listener and every open connection closed, as a process
// restart looks from the network). Acceptance: the browse completes, every
// miniature is correct — an object rewritten across the restart surfaces
// with its new miniature, generation-checked, never a stale cached one —
// and per-step p99 latency stays within 10x of a fault-free baseline run
// (with a small absolute floor for scheduler granularity).

const (
	efaultMinResults = 25
	efaultDrop       = 0.05
)

// trackListener records accepted connections so a "server restart" can
// sever them all at once.
type trackListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (tl *trackListener) Accept() (net.Conn, error) {
	c, err := tl.Listener.Accept()
	if err == nil {
		tl.mu.Lock()
		tl.conns = append(tl.conns, c)
		tl.mu.Unlock()
	}
	return c, err
}

// kill closes the listener and every accepted connection.
func (tl *trackListener) kill() {
	tl.Listener.Close()
	tl.mu.Lock()
	defer tl.mu.Unlock()
	for _, c := range tl.conns {
		c.Close()
	}
	tl.conns = nil
}

func efaultListen(t *testing.T, srv *wire.Handler, addr string) *trackListener {
	t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tl := &trackListener{Listener: l}
	go wire.Serve(tl, srv)
	return tl
}

func efaultP99(lats []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*99/100]
}

func efaultBmEqual(a, b *img.Bitmap) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.W != b.W || a.H != b.H {
		return false
	}
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			if a.Get(x, y) != b.Get(x, y) {
				return false
			}
		}
	}
	return true
}

func TestEFaultResilientBrowse(t *testing.T) {
	corpus, err := demo.Build(1<<15, 40)
	if err != nil {
		t.Fatal(err)
	}
	handler := &wire.Handler{Srv: corpus.Server}
	cfg := func() core.Config {
		return core.Config{Screen: screen.New(240, 140), Clock: vclock.New()}
	}

	// --- Fault-free baseline over TCP with the v2 mux transport. ---
	tl := efaultListen(t, handler, "127.0.0.1:0")
	tp, err := wire.DialMux(tl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	base := workstation.New(wire.NewClient(tp), cfg())
	base.EnablePrefetch(workstation.PrefetchConfig{Depth: 8, Batch: 4})
	n, err := base.QueryCtx(context.Background(), "lung")
	if err != nil {
		t.Fatal(err)
	}
	if n < efaultMinResults {
		t.Fatalf("only %d hits for %q; corpus too small for the experiment", n, "lung")
	}
	var baseLats []time.Duration
	for i := 0; ; i++ {
		t0 := time.Now()
		st, err := base.NextMiniatureCtx(context.Background())
		if err != nil {
			t.Fatalf("baseline step %d: %v", i, err)
		}
		if st.Done {
			break
		}
		baseLats = append(baseLats, time.Since(t0))
		if st.Stale || st.Mini == nil || st.Mini.PopCount() == 0 {
			t.Fatalf("baseline step %d: stale=%v blank miniature", i, st.Stale)
		}
	}
	if len(baseLats) != n {
		t.Fatalf("baseline browsed %d of %d results", len(baseLats), n)
	}
	base.Close()
	tl.kill()

	// --- Faulted run: 5% frame loss plus a mid-browse server restart. ---
	tl = efaultListen(t, handler, "127.0.0.1:0")
	addr := tl.Addr().String()
	inj := faults.New(faults.Config{Seed: 7, Drop: efaultDrop})
	dial := inj.WrapRedial(func() (wire.Transport, error) { return wire.DialMux(addr) })
	ft, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := wire.NewClient(ft)
	client.SetRetryPolicy(wire.RetryPolicy{MaxAttempts: 8, BaseDelay: 500 * time.Microsecond, MaxDelay: 5 * time.Millisecond})
	client.EnableReconnect(dial)
	sess := workstation.New(client, cfg())
	sess.EnablePrefetch(workstation.PrefetchConfig{Depth: 8, Batch: 4})
	fn, err := sess.QueryCtx(context.Background(), "lung")
	if err != nil {
		t.Fatal(err)
	}
	if fn != n {
		t.Fatalf("faulted query = %d hits, baseline had %d", fn, n)
	}

	// The victim: a filler document in the back half of the result order.
	// It is rewritten during the restart; the post-restart browse must show
	// its new miniature (the resync generation bump makes the cached old
	// one invisible).
	var victim object.ID
	for _, id := range sess.Results()[n/2+1:] {
		if id >= 1000 {
			victim = id
			break
		}
	}
	if victim == 0 {
		t.Fatal("no filler document in the back half of the results")
	}

	restartAt := n / 2
	var want, got *img.Bitmap
	var faultLats []time.Duration
	for i := 0; ; i++ {
		if i == restartAt {
			changed, err := object.NewBuilder(victim, "rewritten", object.Visual).
				Text(".title Rewritten Notes\nlung lung entirely new content after the restart.\n").
				Build()
			if err != nil {
				t.Fatal(err)
			}
			corpus.Server.Adopt(changed)
			want = corpus.Server.Miniature(victim)
			tl.kill()
			tl = efaultListen(t, handler, addr)
		}
		t0 := time.Now()
		st, err := sess.NextMiniatureCtx(context.Background())
		if err != nil {
			t.Fatalf("faulted step %d: %v", i, err)
		}
		if st.Done {
			break
		}
		faultLats = append(faultLats, time.Since(t0))
		if st.Stale {
			t.Fatalf("step %d flagged stale while the server was reachable", i)
		}
		if st.Mini == nil || st.Mini.PopCount() == 0 {
			t.Fatalf("blank miniature at faulted step %d", i)
		}
		if st.ID == victim {
			got = st.Mini
		}
	}
	if len(faultLats) != n {
		t.Fatalf("faulted run browsed %d of %d results", len(faultLats), n)
	}
	sess.Close()

	if client.Reconnects() == 0 {
		t.Fatal("server restarted but the client never reconnected")
	}
	if got == nil {
		t.Fatal("victim object never browsed after the restart")
	}
	if !efaultBmEqual(got, want) {
		t.Fatal("post-restart browse surfaced the pre-restart miniature")
	}
	// No pending-call leaks on the multiplexed transport.
	mux := client.Transport().(*faults.Transport).Unwrap().(*wire.MuxTransport)
	if p := mux.PendingCalls(); p != 0 {
		t.Fatalf("mux transport leaked %d pending calls", p)
	}
	fst := inj.Stats()
	if fst.Drops == 0 {
		t.Fatalf("fault schedule injected no drops across %d exchanges", fst.Calls)
	}

	bp, fp := efaultP99(baseLats), efaultP99(faultLats)
	t.Logf("E-FAULT: %d miniatures; baseline p99 %v; faulted p99 %v; %d/%d frames dropped; %d reconnects",
		n, bp, fp, fst.Drops, fst.Calls, client.Reconnects())
	if limit := 10 * bp; fp > limit && fp > 50*time.Millisecond {
		t.Fatalf("faulted p99 %v exceeds 10x baseline %v (and the 50ms floor)", fp, bp)
	}
}
