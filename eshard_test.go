package minos

import (
	"reflect"
	"testing"
	"time"

	"minos/internal/cluster"
	"minos/internal/loadgen"
)

// E-SHARD: horizontal scaling of the object-server fleet. One optical-disk
// server was the paper's deployment unit (§5); the north star — "millions
// of users" — needs many. This experiment partitions the corpus across N
// shards with the consistent-hash ring, gives every shard the identical
// per-shard configuration (admission bound, one optical head, link model),
// scales the saturating session population with N, and measures aggregate
// read throughput and p99 step latency at N = 1/2/4/8 under the §6
// scenario mixes.
//
// Claims gated here:
//   - near-linear scaling: N=4 serves >= 3x the device-path read
//     throughput of N=1 at the same per-shard config;
//   - p99 step latency stays within the single-shard envelope as the
//     fleet grows (per-shard load is constant, so queues are too);
//   - a primary failure mid-run fails reads over to the shard's WORM
//     replica: sessions keep completing steps, nobody is starved;
//   - the whole experiment is deterministic (bit-identical Results).

// eshardSessionsPerShard is the per-shard saturating population: far more
// hot sessions than one head and MaxInFlight=8 admission slots can serve,
// so completed device steps measure capacity, not offered load.
const eshardSessionsPerShard = 64

func eshardFleet(t *testing.T, shards int, replicas bool) *loadgen.Fleet {
	t.Helper()
	f, err := loadgen.BuildFleet(1<<15, 60, 12, shards, cluster.DefaultVnodes, replicas)
	if err != nil {
		t.Fatalf("BuildFleet(%d): %v", shards, err)
	}
	return f
}

func eshardConfig(shards int) loadgen.Config {
	sessions := eshardSessionsPerShard * shards
	return loadgen.Config{
		Sessions:    sessions,
		Duration:    20 * time.Second,
		Seed:        1986,
		MaxInFlight: 8,
		HotSessions: sessions, // everyone saturates: capacity is the measurand
	}
}

// throughput is device-path completions per virtual second.
func throughput(res loadgen.Result) float64 {
	if res.VirtualTime <= 0 {
		return 0
	}
	return float64(res.DeviceSteps) / res.VirtualTime.Seconds()
}

// TestEShardScaling is the headline N=1/2/4/8 sweep.
func TestEShardScaling(t *testing.T) {
	widths := []int{1, 2, 4, 8}
	if testing.Short() {
		widths = []int{1, 2, 4}
	}
	results := map[int]loadgen.Result{}
	for _, n := range widths {
		res, err := loadgen.RunFleet(eshardFleet(t, n, false), eshardConfig(n))
		if err != nil {
			t.Fatalf("RunFleet(N=%d): %v", n, err)
		}
		results[n] = res
		t.Logf("E-SHARD N=%d: sessions=%d deviceSteps=%d throughput=%.0f/s p99=%v shed=%.1f%%",
			n, res.Sessions, res.DeviceSteps, throughput(res), res.P99, 100*res.ShedRate)
		if res.DeviceSteps == 0 {
			t.Fatalf("N=%d completed no device steps", n)
		}
	}
	base := throughput(results[1])
	if base <= 0 {
		t.Fatal("single-shard throughput is zero")
	}
	// The acceptance bar: 4 shards, 4x the population, same per-shard
	// config — at least 3x the aggregate read throughput.
	if speedup := throughput(results[4]) / base; speedup < 3 {
		t.Fatalf("N=4 speedup %.2fx below the 3x acceptance bar", speedup)
	}
	// Monotonicity across the sweep: adding shards never loses capacity.
	prev := 0.0
	for _, n := range widths {
		cur := throughput(results[n])
		if cur < prev {
			t.Fatalf("throughput fell from %.0f/s to %.0f/s at N=%d", prev, cur, n)
		}
		prev = cur
	}
	// Per-shard load is constant, so the latency envelope must not grow
	// materially with fleet width.
	if limit := 2 * results[1].P99; results[4].P99 > limit {
		t.Fatalf("N=4 p99 %v blew past the single-shard envelope %v", results[4].P99, limit)
	}
}

// TestEShardFailover kills shard 0's primary mid-experiment; its WORM
// replica absorbs the reads and the browse sessions complete.
func TestEShardFailover(t *testing.T) {
	cfg := loadgen.Config{
		Sessions:    128,
		Duration:    30 * time.Second,
		Seed:        1986,
		MaxInFlight: 32,
		FailShard:   0,
		FailShardAt: 15 * time.Second,
	}
	res, err := loadgen.RunFleet(eshardFleet(t, 2, true), cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	t.Logf("E-SHARD failover: steps=%d deviceSteps=%d failoverSteps=%d p99=%v minSteps=%d",
		res.Steps, res.DeviceSteps, res.FailoverSteps, res.P99, res.MinSteps)
	if res.FailoverSteps == 0 {
		t.Fatal("no device steps were served by the replica after the primary failure")
	}
	if res.MinSteps == 0 {
		t.Fatalf("a session starved across the failover: %+v", res)
	}
	if res.P99 > 10*time.Second {
		t.Fatalf("p99 %v exceeds the 10s envelope across the failover", res.P99)
	}
}

// TestEShardDeterminism: the sharded run is as repeatable as the
// single-server one — bit-identical Results for identical inputs.
func TestEShardDeterminism(t *testing.T) {
	cfg := eshardConfig(4)
	cfg.Duration = 8 * time.Second
	a, err := loadgen.RunFleet(eshardFleet(t, 4, false), cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	b, err := loadgen.RunFleet(eshardFleet(t, 4, false), cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("E-SHARD diverged between identical runs:\n%+v\n%+v", a, b)
	}
}

// TestEShardSmoke is the `make shard-smoke` gate: a closed 2-shard run
// with a mid-run failover, cheap enough for every `make check`. Every
// session must finish all its steps even though a primary dies.
func TestEShardSmoke(t *testing.T) {
	f, err := loadgen.BuildFleet(1<<14, 30, 6, 2, cluster.DefaultVnodes, true)
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	res, err := loadgen.RunFleet(f, loadgen.Config{
		Sessions:    60,
		StepsEach:   100,
		Seed:        99,
		MaxInFlight: 32,
		FailShard:   0,
		FailShardAt: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if want := int64(60 * 100); res.Steps != want {
		t.Fatalf("completed %d steps, want %d", res.Steps, want)
	}
	if res.FailoverSteps == 0 {
		t.Fatal("failover never engaged")
	}
	if res.P99 > 5*time.Second {
		t.Fatalf("p99 %v exceeds generous 5s bound", res.P99)
	}
	t.Logf("shard-smoke: p50=%v p99=%v failoverSteps=%d shed=%.1f%%", res.P50, res.P99, res.FailoverSteps, 100*res.ShedRate)
}
