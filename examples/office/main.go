// Office: the paper's office-filing scenario (§3, Figures 1-2) plus the
// full §4 formation pipeline.
//
// A document is authored with the editors (text, voice annotation, a
// figure), formed into a multimedia object through the declarative
// synthesis file, previewed interactively as miniatures, archived, mailed
// within and outside the organization, and browsed back — with a
// transparency set comparing two experiment result curves on the same
// axes, the paper's office transparency example.
package main

import (
	"fmt"
	"log"
	"time"

	"minos/internal/archiver"
	"minos/internal/core"
	"minos/internal/disk"
	"minos/internal/editors"
	"minos/internal/formatter"
	img "minos/internal/image"
	"minos/internal/layout"
	"minos/internal/screen"
	"minos/internal/server"
	"minos/internal/vclock"
	"minos/internal/voice"
)

func main() {
	dir := formatter.NewDataDir()

	// --- Editors (§4): text, voice and image data in final form ---
	te := editors.NewTextEditor(`.title Quarterly Measurements
.chapter Introduction
This memo compares the measurement series of the current quarter with the previous quarter on the same axes using the transparency capability of the presentation manager.
.chapter Discussion
The new series tracks the old one closely at low load and departs above the knee. Detailed numbers are attached in the appendix which follows this discussion chapter.
`)
	if err := te.Check(); err != nil {
		log.Fatal(err)
	}

	ve := editors.NewVoiceEditor(voice.DefaultSpeaker(), 2000)
	if err := ve.Dictate("Please look at the divergence above the knee point.\n"); err != nil {
		log.Fatal(err)
	}
	if err := ve.SaveTo(dir, "annotation"); err != nil {
		log.Fatal(err)
	}

	// Axes figure plus two curve transparencies.
	axes := editors.NewImageEditor("axes", 260, 120)
	axes.Polyline(img.Point{X: 10, Y: 110}, img.Point{X: 10, Y: 10})
	axes.Polyline(img.Point{X: 10, Y: 110}, img.Point{X: 250, Y: 110})
	axes.Text(14, 12, "MS")
	axes.Text(210, 98, "LOAD")
	axes.SaveTo(dir, "axes")

	curve := func(name string, k int) {
		e := editors.NewImageEditor(name, 260, 120)
		var pts []img.Point
		for x := 10; x <= 250; x += 20 {
			y := 110 - (x-10)*(x-10)/(700+90*k)
			pts = append(pts, img.Point{X: x, Y: y})
		}
		e.Polyline(pts...)
		e.SaveBitmapTo(dir, name)
	}
	curve("q1", 3)
	curve("q2", 0)

	// --- Formation (§4): declarative synthesis file, interactive preview ---
	f := formatter.New(dir)
	synth := `object 700 visual Quarterly Measurements
attr author office-example
text
` + te.Markup() + `end
image axes after-word 20
voicemsg note annotation text:0:24
transpset curves text:0:30 stacked q1 q2
`
	if err := f.SetSynthesis(synth); err != nil {
		log.Fatal(err)
	}
	pages := f.PreviewPages(layout.Spec{W: 400, H: 280})
	fmt.Printf("formatter preview: %d pages; miniature of page 1 is %dx%d\n",
		len(pages), f.PreviewPage(0, layout.Spec{W: 400, H: 280}, 4).W,
		f.PreviewPage(0, layout.Spec{W: 400, H: 280}, 4).H)

	// --- Archive and mail (§4) ---
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(8192))
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(archiver.New(dev))
	obj := f.Object()
	if _, err := srv.Publish(obj); err != nil {
		log.Fatal(err)
	}
	inside, _, err := srv.Archiver().MailOut(700, true)
	if err != nil {
		log.Fatal(err)
	}
	outside, _, err := srv.Archiver().MailOut(700, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mailed within the organization: %d bytes; outside: %d bytes\n", len(inside), len(outside))

	// --- Browse: superimpose the two curves on the same axes ---
	m := core.New(core.Config{Screen: screen.New(420, 300), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
	loaded, _, err := srv.Load(700)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Open(loaded); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("browsing %q: %d pages, menu %v\n", loaded.Title, m.PageCount(), m.Screen().Menu()[:3])
	if err := m.ShowTransparencies(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transparency 1: last quarter's curve over the axes")
	if err := m.NextPage(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transparency 2: both curves superimposed (stacked method) — the active-speaker effect")
	for _, e := range m.EventsOf(core.EvVoiceMsgPlayed) {
		fmt.Printf("voice annotation %q played while entering the discussion\n", e.Name)
	}
}
