// Medical: the paper's doctor/x-ray scenario (§3, Figures 3-6).
//
// A doctor files observations about an x-ray as an audio mode object —
// "doctors are notoriously bad typers!" — with the x-ray attached as a
// visual logical message to the related section of the speech: the film
// appears on the screen exactly while the related observations play, and
// transparencies pinpoint areas on the film. The symmetric visual-mode
// report (Figures 3-4) is exercised too.
package main

import (
	"fmt"
	"log"
	"time"

	"minos/internal/core"
	"minos/internal/figures"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
)

func main() {
	audioModeReport()
	visualModeReport()
}

// audioModeReport builds the audio-driven object: dictated observations,
// x-ray pinned during the related segment of the speech.
func audioModeReport() {
	fmt.Println("== audio mode: dictated observations with the x-ray as a visual logical message ==")

	dictation := `.chapter Observations
The film shows a round opacity in the upper lobe of the left lung. The borders are smooth and there is no calcification. Size is stable compared with the previous examination.
.chapter Plan
A follow up film in six months is sufficient. No further imaging is needed now.
`
	seg, err := text.Parse(dictation)
	if err != nil {
		log.Fatal(err)
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000)
	syn.Part.Markers = voice.MarkersFromMarks(syn.Marks, text.UnitChapter)

	// The observations chapter is the related segment: find its sample
	// range from the dictation ground truth.
	var obsStart, obsEnd int
	for i, mk := range syn.Marks {
		if i == 0 {
			obsStart = mk.Offset
		}
		if mk.Bounds&text.StartsChapter != 0 && i > 0 {
			obsEnd = mk.Offset - 1
			break
		}
	}

	xray := img.NewBitmap(360, 120)
	for y := 0; y < 120; y++ {
		for x := 0; x < 360; x++ {
			dx, dy := float64(x-180)/160, float64(y-60)/55
			if dx*dx+dy*dy < 1 && (x*7+y*3)%5 < 2 {
				xray.Set(x, y, true)
			}
		}
	}

	obj, err := object.NewBuilder(500, "Dictated Report 500", object.Audio).
		VoicePart(syn.Part).
		VisualMsg("film", xray, object.Anchor{Media: object.MediaVoice, From: obsStart, To: obsEnd}, false).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	clock := vclock.New()
	m := core.New(core.Config{Screen: screen.New(420, 280), Clock: clock, AudioPageLen: 6 * time.Second})
	if err := m.Open(obj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audio pages: %d\n", m.PageCount())
	if err := m.Play(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("playing; x-ray pinned: %v\n", m.Screen().Strip() != nil)
	// Play until past the observations chapter.
	for m.Position() <= obsEnd && m.Player().Playing() {
		clock.Advance(2 * time.Second)
	}
	clock.Advance(200 * time.Millisecond)
	fmt.Printf("after the related segment; x-ray pinned: %v\n", m.Screen().Strip() != nil)

	// Rewind by long pauses to hear the observations again.
	m.Interrupt()
	if err := m.RewindPauses(1, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewound 1 long pause back to position %d; x-ray pinned again: %v\n",
		m.Position(), m.Screen().Strip() != nil)
}

// visualModeReport replays the Figures 3-6 scenarios through the figures
// package and reports what happened.
func visualModeReport() {
	fmt.Println("\n== visual mode: the Figures 3-4 split view and Figures 5-6 transparencies ==")
	r34 := figures.RunFig34()
	for i, note := range r34.Notes {
		fmt.Printf("  F3-4 step %d: %s\n", i+1, note)
	}
	r56 := figures.RunFig56()
	for i, note := range r56.Notes {
		fmt.Printf("  F5-6 step %d: %s\n", i+1, note)
	}
	pinned := r34.Manager.EventsOf(core.EvVisualMsgPinned)
	fmt.Printf("x-ray pinned %d time(s); stored once in the object (see EXPERIMENTS.md F3-4)\n", len(pinned))
}
