// Quickstart: author a multimedia object with the builder, archive it on
// the (simulated) optical disk through the object server, query it back by
// content over the wire protocol, and browse it with the presentation
// manager.
package main

import (
	"fmt"
	"log"

	"minos/internal/archiver"
	"minos/internal/core"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/server"
	"minos/internal/vclock"
	"minos/internal/wire"
	"minos/internal/workstation"
)

func main() {
	// 1. Author a multimedia object: formatted text plus a drawing.
	diagram := img.New("diagram", 180, 70)
	diagram.Add(img.Graphic{Shape: img.ShapeRect, Points: []img.Point{{X: 4, Y: 4}}, Size: img.Point{X: 60, Y: 30}})
	diagram.Add(img.Graphic{Shape: img.ShapeText, Points: []img.Point{{X: 8, Y: 40}}, Text: "ARCHIVE"})

	obj, err := object.NewBuilder(1, "Getting Started", object.Visual).
		Attr("author", "quickstart").
		Text(`.title Getting Started
.chapter Welcome
This object was authored with the builder and archived on the optical disk. Browsing commands move between its visual pages and jump to chapters or pattern occurrences.
.chapter Details
The archive stores the descriptor concatenated with the composition file. The server ships pieces of it to the workstation on demand.
`).
		Image(diagram).
		PlaceImageAfterWord("diagram", 10).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Publish it to an object server backed by a simulated optical disk.
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(4096))
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(archiver.New(dev))
	if _, err := srv.Publish(obj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived object %d (%s state)\n", obj.ID, obj.State)

	// 3. Connect a workstation session over the (simulated Ethernet) wire.
	link := wire.EthernetLink(&wire.Handler{Srv: srv})
	sess := workstation.New(wire.NewClient(link), core.Config{
		Screen: screen.New(400, 260),
		Clock:  vclock.New(),
	})
	defer sess.Close()

	// 4. Query by content and open the result.
	n, err := sess.Query("optical", "disk")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 'optical disk' matched %d object(s)\n", n)
	if _, _, _, err := sess.NextMiniature(); err != nil {
		log.Fatal(err)
	}
	if err := sess.OpenSelected(); err != nil {
		log.Fatal(err)
	}

	// 5. Browse.
	m := sess.Manager()
	fmt.Printf("opened %q: %d visual pages, menu: %v\n", m.Object().Title, m.PageCount(), m.Screen().Menu()[:4])
	if err := m.FindPattern("composition file"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern 'composition file' found on page %d\n", m.PageNo()+1)
	stats := link.Stats()
	fmt.Printf("link usage: %d round trips, %d bytes received\n", stats.RoundTrips, stats.BytesRecv)
}
