// Cityguide: the paper's tourist-information scenarios (§3, Figures 7-10).
//
//   - Relevant objects: a subway map with selectable overlays showing the
//     university sites and the city hospitals (Figures 7-8).
//   - A guided tour: a view window moving automatically over the map with
//     voice messages per stop.
//   - Process simulation: a walk through the old town rendered as
//     overwrites whose blank spots mark the route (Figures 9-10).
//   - Views with labels: browsing a large labelled map through a window,
//     label pattern highlighting, and the inverse label lookup.
package main

import (
	"fmt"
	"log"
	"time"

	"minos/internal/core"
	"minos/internal/figures"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
)

func main() {
	relevantObjects()
	guidedTour()
	processWalk()
	labelledViews()
}

func relevantObjects() {
	fmt.Println("== relevant objects over the subway map (Figures 7-8) ==")
	r := figures.RunFig78()
	for i, note := range r.Notes {
		fmt.Printf("  step %d: %s\n", i+1, note)
	}
}

func guidedTour() {
	fmt.Println("\n== guided tour: automatic view movement with voice stops ==")
	m := core.New(core.Config{Screen: screen.New(420, 280), Clock: vclock.New(), VoiceOption: true})
	o := tourCity()
	if err := m.Open(o); err != nil {
		log.Fatal(err)
	}
	if err := m.StartTour("sights"); err != nil {
		log.Fatal(err)
	}
	m.Clock().Run(5 * time.Minute)
	for _, e := range m.EventsOf(core.EvTourStop) {
		fmt.Printf("  %s %s at %v\n", e.Kind, e.Detail, e.At)
	}
	for _, e := range m.EventsOf(core.EvVoiceMsgPlayed) {
		fmt.Printf("  voice message %q at %v\n", e.Name, e.At)
	}
	fmt.Printf("tour ended: %v\n", len(m.EventsOf(core.EvTourEnded)) == 1)
}

func tourCity() *object.Object {
	city := img.New("city", 400, 300)
	base := img.NewBitmap(400, 300)
	for y := 0; y < 300; y += 24 {
		for x := 0; x < 400; x++ {
			base.Set(x, y, true)
		}
	}
	for x := 0; x < 400; x += 32 {
		for y := 0; y < 300; y++ {
			base.Set(x, y, true)
		}
	}
	city.Base = base

	speak := func(s string) *voice.Part {
		seg, err := text.Parse(s + "\n")
		if err != nil {
			log.Fatal(err)
		}
		return voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000).Part
	}
	o, err := object.NewBuilder(600, "City Sights", object.Visual).
		Text(".title City Sights\nA guided tour of the city follows below.\n").
		Image(city).
		VoiceMsg("cathedral", speak("The cathedral dates from the twelfth century"),
			object.Anchor{Media: object.MediaImage, Image: "city"}).
		VoiceMsg("harbour", speak("The old harbour is still in use today"),
			object.Anchor{Media: object.MediaImage, Image: "city"}).
		Tour("sights", img.Tour{
			Image: "city", Size: img.Point{X: 120, Y: 90}, DwellMillis: 300,
			Stops: []img.TourStop{
				{At: img.Point{X: 0, Y: 0}, VoiceMsgRef: "cathedral"},
				{At: img.Point{X: 140, Y: 100}},
				{At: img.Point{X: 260, Y: 200}, VoiceMsgRef: "harbour"},
			},
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	return o
}

func processWalk() {
	fmt.Println("\n== process simulation: the city walk (Figures 9-10) ==")
	r := figures.RunFig910()
	m := r.Manager
	fmt.Printf("  frames shown: %d, voice messages: %d, ended: %v\n",
		len(m.EventsOf(core.EvProcessPage)),
		len(m.EventsOf(core.EvVoiceMsgPlayed)),
		len(m.EventsOf(core.EvProcessEnded)) == 1)
}

func labelledViews() {
	fmt.Println("\n== views over a large labelled map ==")
	m := core.New(core.Config{Screen: screen.New(420, 280), Clock: vclock.New(), VoiceOption: true})
	o := labelledMap()
	if err := m.Open(o); err != nil {
		log.Fatal(err)
	}
	if err := m.OpenView("sites", img.Rect{X: 0, Y: 0, W: 120, H: 90}); err != nil {
		log.Fatal(err)
	}
	n, err := m.HighlightLabels("hotel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  highlighted %d objects matching 'hotel'\n", n)
	// Move toward the voice-labelled site; the label plays en route.
	for i := 0; i < 12; i++ {
		m.MoveView(img.MoveStep, img.MoveStep/2)
	}
	fmt.Printf("  voice labels played while moving: %d\n", len(m.EventsOf(core.EvLabelPlayed)))
	if err := m.SelectObjectAt(10, 10); err == nil {
		fmt.Println("  selected an object under the view and displayed its label")
	}
}

func labelledMap() *object.Object {
	im := img.New("sites", 360, 240)
	im.Add(img.Graphic{Shape: img.ShapeRect, Points: []img.Point{{X: 5, Y: 5}}, Size: img.Point{X: 40, Y: 24},
		Label: img.Label{Kind: img.TextLabel, Text: "GRAND HOTEL", At: img.Point{X: 8, Y: 32}}})
	im.Add(img.Graphic{Shape: img.ShapeRect, Points: []img.Point{{X: 200, Y: 60}}, Size: img.Point{X: 40, Y: 24},
		Label: img.Label{Kind: img.TextLabel, Text: "STATION HOTEL", At: img.Point{X: 204, Y: 88}}})
	im.Add(img.Graphic{Shape: img.ShapeCircle, Points: []img.Point{{X: 260, Y: 170}}, Radius: 8,
		Label: img.Label{Kind: img.VoiceLabel, Text: "old theatre", VoiceRef: "theatre", At: img.Point{X: 272, Y: 166}}})

	seg, _ := text.Parse("The old theatre stages plays every weekend.\n")
	theatre := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000).Part
	o, err := object.NewBuilder(601, "Tourist Sites", object.Visual).
		Text(".title Tourist Sites\nThe map of tourist sites follows.\n").
		Image(im).
		VoiceMsg("theatre", theatre, object.Anchor{Media: object.MediaText, From: 0, To: 0}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	return o
}
