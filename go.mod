module minos

go 1.22
