package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Shard names one shard's serving endpoints: the primary (which also
// ingests — writes stay pinned to it) and any number of read replicas of
// its WORM archive.
type Shard struct {
	ID       int
	Primary  string
	Replicas []string
}

// Map is the cluster map: which shards exist, where each one is served,
// and a monotonically increasing epoch. Servers hand the encoded map to
// clients at HELLO time and via the CLUSTERMAP op; a client that routed a
// request with a stale map refetches instead of failing hard (the epoch
// tells it whether the map actually moved).
type Map struct {
	Epoch uint64
	// Vnodes is the ring's virtual-point count, carried in the map so
	// every client builds the identical ring the partitioner used.
	Vnodes int
	Shards []Shard
}

// mapMagic leads the encoded map so damaged payloads fail fast.
const mapMagic = 0xC7

// ErrBadMap reports an undecodable cluster-map payload.
var ErrBadMap = errors.New("cluster: bad map payload")

// Encode serializes the map for the wire: magic, epoch, vnodes, then each
// shard as [id][primary][replica count][replicas...].
func (m *Map) Encode() []byte {
	out := []byte{mapMagic}
	out = binary.BigEndian.AppendUint64(out, m.Epoch)
	out = binary.BigEndian.AppendUint32(out, uint32(m.Vnodes))
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		out = binary.BigEndian.AppendUint32(out, uint32(s.ID))
		out = appendMapStr(out, s.Primary)
		out = binary.BigEndian.AppendUint32(out, uint32(len(s.Replicas)))
		for _, r := range s.Replicas {
			out = appendMapStr(out, r)
		}
	}
	return out
}

func appendMapStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

type mapCursor struct {
	data []byte
	pos  int
}

func (c *mapCursor) u32() (uint32, error) {
	if c.pos+4 > len(c.data) {
		return 0, ErrBadMap
	}
	v := binary.BigEndian.Uint32(c.data[c.pos:])
	c.pos += 4
	return v, nil
}

func (c *mapCursor) u64() (uint64, error) {
	if c.pos+8 > len(c.data) {
		return 0, ErrBadMap
	}
	v := binary.BigEndian.Uint64(c.data[c.pos:])
	c.pos += 8
	return v, nil
}

func (c *mapCursor) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if c.pos+int(n) > len(c.data) {
		return "", ErrBadMap
	}
	s := string(c.data[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s, nil
}

// ParseMap decodes an Encode payload.
func ParseMap(data []byte) (*Map, error) {
	if len(data) == 0 || data[0] != mapMagic {
		return nil, ErrBadMap
	}
	c := &mapCursor{data: data, pos: 1}
	m := &Map{}
	epoch, err := c.u64()
	if err != nil {
		return nil, err
	}
	m.Epoch = epoch
	vn, err := c.u32()
	if err != nil {
		return nil, err
	}
	m.Vnodes = int(vn)
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	// A shard entry needs at least 12 bytes; reject counts the remaining
	// payload cannot possibly hold before preallocating.
	if int(n) > (len(data)-c.pos)/12+1 {
		return nil, ErrBadMap
	}
	m.Shards = make([]Shard, 0, n)
	for i := uint32(0); i < n; i++ {
		var s Shard
		id, err := c.u32()
		if err != nil {
			return nil, err
		}
		s.ID = int(id)
		if s.Primary, err = c.str(); err != nil {
			return nil, err
		}
		rn, err := c.u32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < rn; j++ {
			rep, err := c.str()
			if err != nil {
				return nil, err
			}
			s.Replicas = append(s.Replicas, rep)
		}
		m.Shards = append(m.Shards, s)
	}
	return m, nil
}

// Ring builds the consistent-hash ring this map describes.
func (m *Map) Ring() *Ring {
	ids := make([]int, len(m.Shards))
	for i, s := range m.Shards {
		ids[i] = s.ID
	}
	return NewRing(ids, m.Vnodes)
}

// Shard returns the entry for shard id, or nil.
func (m *Map) Shard(id int) *Shard {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return &m.Shards[i]
		}
	}
	return nil
}

// Validate rejects maps a client cannot route with.
func (m *Map) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: map epoch %d has no shards", m.Epoch)
	}
	for _, s := range m.Shards {
		if s.Primary == "" {
			return fmt.Errorf("cluster: shard %d has no primary endpoint", s.ID)
		}
	}
	return nil
}
