package cluster

import (
	"errors"
	"reflect"
	"testing"
)

func sampleMap() *Map {
	return &Map{
		Epoch:  7,
		Vnodes: DefaultVnodes,
		Shards: []Shard{
			{ID: 0, Primary: "127.0.0.1:7086", Replicas: []string{"127.0.0.1:7186"}},
			{ID: 1, Primary: "127.0.0.1:7087"},
			{ID: 2, Primary: "127.0.0.1:7088", Replicas: []string{"127.0.0.1:7188", "127.0.0.1:7288"}},
		},
	}
}

// TestMapRoundTrip: Encode/ParseMap must be lossless — the map is the only
// routing state a client has.
func TestMapRoundTrip(t *testing.T) {
	m := sampleMap()
	got, err := ParseMap(m.Encode())
	if err != nil {
		t.Fatalf("ParseMap: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip lost data:\nwant %+v\ngot  %+v", m, got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestMapParseTruncated: every truncation of a valid payload must fail
// cleanly with ErrBadMap — a half-received map must never route anything.
func TestMapParseTruncated(t *testing.T) {
	enc := sampleMap().Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := ParseMap(enc[:cut]); !errors.Is(err, ErrBadMap) {
			t.Fatalf("ParseMap of %d/%d bytes: err=%v, want ErrBadMap", cut, len(enc), err)
		}
	}
	// Damaged magic.
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := ParseMap(bad); !errors.Is(err, ErrBadMap) {
		t.Fatalf("ParseMap with bad magic: err=%v, want ErrBadMap", err)
	}
}

// TestMapParseHostileCount: a forged shard count far beyond the payload
// must be rejected before preallocation, not crash or over-allocate.
func TestMapParseHostileCount(t *testing.T) {
	enc := sampleMap().Encode()
	bad := append([]byte(nil), enc...)
	// Shard count sits after magic(1) + epoch(8) + vnodes(4).
	bad[13], bad[14], bad[15], bad[16] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ParseMap(bad); !errors.Is(err, ErrBadMap) {
		t.Fatalf("hostile shard count: err=%v, want ErrBadMap", err)
	}
}

// TestMapValidate covers the reject paths.
func TestMapValidate(t *testing.T) {
	if err := (&Map{Epoch: 1}).Validate(); err == nil {
		t.Fatal("empty map validated")
	}
	m := sampleMap()
	m.Shards[1].Primary = ""
	if err := m.Validate(); err == nil {
		t.Fatal("shard without primary validated")
	}
}

// TestMapShardLookup: Shard returns the entry by id, nil for unknown.
func TestMapShardLookup(t *testing.T) {
	m := sampleMap()
	if sh := m.Shard(2); sh == nil || sh.Primary != "127.0.0.1:7088" {
		t.Fatalf("Shard(2) = %+v", sh)
	}
	if sh := m.Shard(9); sh != nil {
		t.Fatalf("Shard(9) = %+v, want nil", sh)
	}
}
