package cluster_test

import (
	"context"
	"reflect"
	"sync/atomic"
	"syscall"
	"testing"

	"minos/internal/cluster"
	"minos/internal/core"
	"minos/internal/demo"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/vclock"
	"minos/internal/wire"
	"minos/internal/workstation"
)

// The Backend interface is the PR 9 API seam: one workstation.Session type
// drives a single server and a routed fleet identically. The compile-time
// assertion and the golden-trace suite below are the contract's proof for
// the cluster client; internal/workstation asserts the wire client.
var _ workstation.Backend = (*cluster.Client)(nil)

// traceStep is one observable browse event: which object the cursor landed
// on, its mode, and the miniature content hash. Two conforming backends
// over the same corpus must produce identical traces.
type traceStep struct {
	ID   object.ID
	Mode object.Mode
	Hash uint64
	Done bool
}

func traceConfig() core.Config {
	return core.Config{Screen: screen.New(240, 140), Clock: vclock.New()}
}

// browseTrace drives the golden browse: query "hospital", walk the cursor
// to the end, step back twice, then open the first visual object. The
// kill hook, when non-nil, fires after the fourth forward step —
// mid-browse, with steps still to come.
func browseTrace(t *testing.T, be workstation.Backend, kill func()) []traceStep {
	t.Helper()
	ctx := context.Background()
	sess := workstation.New(be, traceConfig())
	n, err := sess.QueryCtx(ctx, "hospital")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if n == 0 {
		t.Fatal("query matched nothing; the golden trace needs results")
	}
	var trace []traceStep
	record := func(st workstation.BrowseStep, err error) {
		if err != nil {
			t.Fatalf("browse step %d: %v", len(trace), err)
		}
		ts := traceStep{ID: st.ID, Mode: st.Mode, Done: st.Done}
		if st.Mini != nil {
			ts.Hash = st.Mini.Hash()
		}
		trace = append(trace, ts)
	}
	for i := 0; ; i++ {
		st, err := sess.NextMiniatureCtx(ctx)
		record(st, err)
		if st.Done {
			break
		}
		if i == 3 && kill != nil {
			kill()
			kill = nil
		}
	}
	record(sess.PrevMiniatureCtx(ctx))
	record(sess.PrevMiniatureCtx(ctx))
	for _, ts := range trace {
		if !ts.Done && ts.Mode != object.Audio {
			if err := sess.OpenObject(ts.ID); err != nil {
				t.Fatalf("OpenObject(%d): %v", ts.ID, err)
			}
			break
		}
	}
	sess.Detach()
	return trace
}

// TestBackendConformanceGoldenTrace runs the golden browse through a wire
// client on one unsharded server and a routed cluster client on a 3-shard
// fleet holding the same corpus: the traces must be identical.
func TestBackendConformanceGoldenTrace(t *testing.T) {
	single, err := demo.Build(1<<15, 40)
	if err != nil {
		t.Fatalf("demo.Build: %v", err)
	}
	ref := wire.NewClient(&wire.LocalTransport{H: &wire.Handler{Srv: single.Server}})
	defer ref.Close()

	f, _, _ := buildFleet(t, 3, false)
	c := dialFleet(t, f)

	want := browseTrace(t, ref, nil)
	got := browseTrace(t, c, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cluster-backed trace diverges from wire-backed:\nwant %v\ngot  %v", want, got)
	}
}

// TestBackendConformanceFailover kills a primary mid-browse: the
// cluster-backed session must complete the identical trace off the WORM
// replica, and the client must record the failover.
func TestBackendConformanceFailover(t *testing.T) {
	f, _, _ := buildFleet(t, 2, true)
	want := browseTrace(t, dialFleet(t, f), nil)

	f2, _, _ := buildFleet(t, 2, true)
	c := dialFleet(t, f2)
	got := browseTrace(t, c, func() { f2.kill("shard0") })
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("failover trace diverges from healthy trace:\nwant %v\ngot  %v", want, got)
	}
	if c.Failovers() == 0 {
		t.Fatal("primary died mid-browse but the client recorded no failovers")
	}
}

// dropOnceTransport fails exactly one exchange with a connection reset,
// simulating a dropped TCP session mid-browse.
type dropOnceTransport struct {
	inner *wire.LocalTransport
	drop  atomic.Bool
}

func (t *dropOnceTransport) RoundTrip(req []byte) ([]byte, error) {
	if t.drop.CompareAndSwap(true, false) {
		return nil, syscall.ECONNRESET
	}
	return t.inner.RoundTrip(req)
}

func (t *dropOnceTransport) Close() error { return t.inner.Close() }

// TestBackendConformanceReconnect drops the wire connection mid-browse:
// with reconnect enabled the session must complete the identical trace on
// the redialed transport, and the client must record the reconnect.
func TestBackendConformanceReconnect(t *testing.T) {
	single, err := demo.Build(1<<15, 40)
	if err != nil {
		t.Fatalf("demo.Build: %v", err)
	}
	h := &wire.Handler{Srv: single.Server}
	ref := wire.NewClient(&wire.LocalTransport{H: h})
	want := browseTrace(t, ref, nil)
	ref.Close()

	tp := &dropOnceTransport{inner: &wire.LocalTransport{H: h}}
	c := wire.NewClient(tp)
	c.EnableReconnect(func() (wire.Transport, error) {
		return &wire.LocalTransport{H: h}, nil
	})
	defer c.Close()
	got := browseTrace(t, c, func() { tp.drop.Store(true) })
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-reconnect trace diverges:\nwant %v\ngot  %v", want, got)
	}
	if c.Reconnects() == 0 {
		t.Fatal("connection dropped mid-browse but the client recorded no reconnect")
	}
}
