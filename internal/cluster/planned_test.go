package cluster_test

import (
	"context"
	"reflect"
	"testing"

	"minos/internal/demo"
	"minos/internal/index"
	"minos/internal/wire"
)

// TestQueryPlannedRouted: a planned query scattered over a 3-shard fleet
// must equal the same query against one unsharded server holding the same
// corpus — for plain conjunctions and for attribute-filtered ones.
func TestQueryPlannedRouted(t *testing.T) {
	ctx := context.Background()
	single, err := demo.Build(1<<15, 40)
	if err != nil {
		t.Fatalf("demo.Build: %v", err)
	}
	ref := wire.NewClient(&wire.LocalTransport{H: &wire.Handler{Srv: single.Server}})
	defer ref.Close()

	f, _, _ := buildFleet(t, 3, false)
	c := dialFleet(t, f)

	queries := []index.Query{
		{Terms: []string{"hospital"}},
		{Terms: []string{"hospital"}, Kind: index.KindAudio},
		{Terms: []string{"hospital"}, Kind: index.KindVisual},
		{Kind: index.KindAudio},
		{Terms: []string{"no", "such", "terms"}},
	}
	for _, q := range queries {
		want, _, err := ref.QueryPlannedCtx(ctx, q)
		if err != nil {
			t.Fatalf("ref QueryPlanned(%+v): %v", q, err)
		}
		got, _, err := c.QueryPlannedCtx(ctx, q)
		if err != nil {
			t.Fatalf("routed QueryPlanned(%+v): %v", q, err)
		}
		// Element-wise: one side may be a nil slice when nothing matches.
		if len(want) != len(got) {
			t.Fatalf("QueryPlanned(%+v) diverges:\nwant %v\ngot  %v", q, want, got)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("QueryPlanned(%+v) diverges at %d:\nwant %v\ngot  %v", q, i, want, got)
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("merged stream not strictly ascending at %d: %v", i, got)
			}
		}
	}
}

// TestQueryPlannedFailover: a planned query must survive a dead primary by
// failing over to the shard's WORM replica — the replica's content index is
// built from a bit-identical corpus, so the gathered result is unchanged.
func TestQueryPlannedFailover(t *testing.T) {
	ctx := context.Background()
	f, _, _ := buildFleet(t, 2, true)
	c := dialFleet(t, f)

	q := index.Query{Terms: []string{"hospital"}, Kind: index.KindVisual}
	before, _, err := c.QueryPlannedCtx(ctx, q)
	if err != nil {
		t.Fatalf("QueryPlanned before failover: %v", err)
	}
	if len(before) == 0 {
		t.Fatal("test query matched nothing; corpus drifted")
	}

	f.kill("shard0")
	after, _, err := c.QueryPlannedCtx(ctx, q)
	if err != nil {
		t.Fatalf("QueryPlanned after primary death: %v", err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("failover changed the result:\nbefore %v\nafter  %v", before, after)
	}
	if c.Failovers() == 0 {
		t.Fatal("no failovers recorded despite a dead primary")
	}
}
