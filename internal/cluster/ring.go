// Package cluster is the N-shard fleet layer: a consistent-hash ring
// assigning every object id to one shard, a cluster map naming each shard's
// primary and read-replica endpoints (with an epoch so clients can detect a
// stale map), and a routed client that splits batched requests by owning
// shard and fails reads over to a replica when a primary dies.
//
// The paper's presentation manager assumed one optical-disk server per site
// (§5); the write-once model it builds on is exactly what makes a fleet
// cheap: sealed extents never change, so a read replica of a shard's WORM
// archive is trivially consistent — replication is a copy of the medium,
// routing is a pure client-side concern, and only Publish (ingestion) needs
// to care which instance is the primary.
package cluster

import (
	"sort"

	"minos/internal/object"
)

// DefaultVnodes is the number of virtual ring points per shard. 256 points
// keep the assignment skew across shards within a few percent of ideal at
// the corpus sizes the experiments use, while the ring stays small enough
// that Owner is a cheap binary search.
const DefaultVnodes = 256

// Ring is a consistent-hash ring over object ids. Each shard contributes
// vnodes points; an object belongs to the shard owning the first point at
// or clockwise after the object's hash. Adding a shard therefore remaps
// only the ids falling into the arcs the new shard's points claim —
// asymptotically 1/(N+1) of them — instead of rehashing everything.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
	shards []int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over the given shard ids with vnodes virtual points
// per shard (<= 0 selects DefaultVnodes). Construction is deterministic:
// the same shard ids and vnodes always produce the same assignment.
func NewRing(shards []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(shards)*vnodes),
		shards: append([]int(nil), shards...),
	}
	sort.Ints(r.shards)
	for _, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			// Shard in the high half, vnode in the low half, salt XORed in:
			// each (shard, vnode) pair maps to a distinct hash input.
			h := mix64(uint64(s)<<32 ^ uint64(v) ^ 0x5bd1e995)
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break deterministically by shard id
		// so two rings built from the same inputs agree point for point.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Owner returns the shard id owning the object.
func (r *Ring) Owner(id object.ID) int {
	h := mix64(uint64(id))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return r.points[i].shard
}

// Shards returns the shard ids on the ring, ascending.
func (r *Ring) Shards() []int { return r.shards }

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash
// for ring points and object ids alike.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
