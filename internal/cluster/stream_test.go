package cluster_test

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"minos/internal/cluster"
	"minos/internal/demo"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/wire"
)

// Stream support for the flaky test transport: the open is refused once
// the endpoint is killed, and an already-open stream starts failing its
// Recv calls like a reset TCP connection — which is exactly where a real
// mid-stream primary death surfaces.

func (t *flakyTransport) OpenStream(ctx context.Context, req []byte) ([]byte, time.Duration, wire.StreamConn, error) {
	if t.failed.Load() {
		return nil, 0, nil, syscall.ECONNRESET
	}
	meta, dev, sc, err := t.inner.OpenStream(ctx, req)
	if err != nil {
		return nil, 0, nil, err
	}
	return meta, dev, &flakyStreamConn{inner: sc, failed: t.failed}, nil
}

type flakyStreamConn struct {
	inner  wire.StreamConn
	failed *atomic.Bool
}

func (s *flakyStreamConn) Recv() (wire.StreamChunk, error) {
	if s.failed.Load() {
		return wire.StreamChunk{}, syscall.ECONNRESET
	}
	return s.inner.Recv()
}

func (s *flakyStreamConn) Grant(n int)  { s.inner.Grant(n) }
func (s *flakyStreamConn) Close() error { return s.inner.Close() }

// buildVoiceFleet is a one-shard fleet (primary + replica) whose corpus is
// a single deterministic spoken object: both endpoints publish their own
// identical build, like the WORM replicas of buildFleet.
func buildVoiceFleet(t *testing.T) (*testFleet, *cluster.Client, object.ID) {
	t.Helper()
	const id = object.ID(4242)
	f := &testFleet{}
	for _, name := range []string{"prime", "prime-r"} {
		srv, err := demo.NewServer(name, 1<<15)
		if err != nil {
			t.Fatalf("NewServer(%s): %v", name, err)
		}
		o, err := demo.SpokenObject(id, "heart", 400, 7, 8000)
		if err != nil {
			t.Fatalf("SpokenObject: %v", err)
		}
		if _, err := srv.Publish(o); err != nil {
			t.Fatalf("Publish on %s: %v", name, err)
		}
		f.add(name, srv)
	}
	m := &cluster.Map{
		Epoch:  1,
		Vnodes: cluster.DefaultVnodes,
		Shards: []cluster.Shard{{ID: 0, Primary: "prime", Replicas: []string{"prime-r"}}},
	}
	enc := m.Encode()
	f.mu.Lock()
	for _, ep := range f.endpoints {
		ep.h.Srv.SetClusterMap(m.Epoch, enc)
	}
	f.mu.Unlock()
	c, err := cluster.Dial("prime", f.dialer())
	if err != nil {
		t.Fatalf("cluster.Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetRetryPolicy(fastRetry)
	return f, c, id
}

// TestVoiceStreamFailoverResume kills the primary mid-stream and requires
// the stream to resume on the replica from the last delivered byte: the
// consumer sees one gapless, duplicate-free copy of the PCM region and
// never restarts the part.
func TestVoiceStreamFailoverResume(t *testing.T) {
	ctx := context.Background()
	f, c, id := buildVoiceFleet(t)

	// Ground truth straight off the primary's archive.
	f.mu.Lock()
	srv := f.endpoints["prime"].h.Srv
	f.mu.Unlock()
	pcm, _, err := srv.VoicePCMInfoAs(0, id)
	if err != nil {
		t.Fatalf("VoicePCMInfoAs: %v", err)
	}
	want, _, err := srv.ReadPieceAs(0, pcm.Off, pcm.Bytes)
	if err != nil {
		t.Fatalf("ReadPieceAs: %v", err)
	}

	info, sc, err := c.VoiceStreamCtx(ctx, id, 0, 64<<10)
	if err != nil {
		t.Fatalf("VoiceStreamCtx: %v", err)
	}
	defer sc.Close()
	if info.TotalBytes != pcm.Bytes || info.Rate != pcm.Rate {
		t.Fatalf("stream meta {rate %d total %d}, want {rate %d total %d}",
			info.Rate, info.TotalBytes, pcm.Rate, pcm.Bytes)
	}

	got := make([]byte, 0, info.TotalBytes)
	var next uint64
	killed := false
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Recv at offset %d: %v", next, err)
		}
		if ch.Offset != next {
			t.Fatalf("chunk offset %d, want contiguous %d", ch.Offset, next)
		}
		got = append(got, ch.Data...)
		next = ch.Offset + uint64(len(ch.Data))
		sc.Grant(len(ch.Data))
		if !killed && next >= info.TotalBytes/3 {
			f.kill("prime") // primary dies mid-stream
			killed = true
		}
	}
	if !killed {
		t.Fatal("stream ended before the kill point; corpus too small")
	}
	if uint64(len(got)) != info.TotalBytes {
		t.Fatalf("delivered %d bytes, want %d", len(got), info.TotalBytes)
	}
	if string(got) != string(want) {
		t.Fatal("streamed PCM diverges from the archive after failover")
	}
	if c.StreamResumes() != 1 {
		t.Fatalf("stream resumes = %d, want 1", c.StreamResumes())
	}
	if c.Failovers() == 0 {
		t.Fatal("no failover recorded despite a dead primary")
	}
}

// TestVoiceStreamOpensOnReplica: a primary already dead at open time must
// not prevent the stream — the open itself fails over.
func TestVoiceStreamOpensOnReplica(t *testing.T) {
	ctx := context.Background()
	f, c, id := buildVoiceFleet(t)
	f.kill("prime")

	info, sc, err := c.VoiceStreamCtx(ctx, id, 0, 64<<10)
	if err != nil {
		t.Fatalf("VoiceStreamCtx with dead primary: %v", err)
	}
	defer sc.Close()
	var n uint64
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		n += uint64(len(ch.Data))
	}
	if n != info.TotalBytes {
		t.Fatalf("delivered %d bytes off the replica, want %d", n, info.TotalBytes)
	}
	if c.Failovers() == 0 {
		t.Fatal("open-time failover not recorded")
	}
}

// TestMiniatureStreamFailoverResume: the progressive miniature stream of a
// sharded corpus object must survive a mid-stream primary kill, resuming
// at the next pass boundary; the reassembled bitmap is bit-identical to
// the miniature served whole.
func TestMiniatureStreamFailoverResume(t *testing.T) {
	ctx := context.Background()
	f, sh, _ := buildFleet(t, 2, true)
	c := dialFleet(t, f)

	// Any object with a miniature will do; find one and its owning shard.
	var id object.ID
	var owner int
	var want *img.Bitmap
	for _, cand := range sh.Servers[0].IDs() {
		if bm := sh.Servers[0].Miniature(cand); bm != nil {
			id, owner, want = cand, 0, bm
			break
		}
	}
	if want == nil {
		t.Fatal("no miniature-bearing object on shard 0")
	}

	info, sc, err := c.MiniatureStreamCtx(ctx, id, 0, 64<<10)
	if err != nil {
		t.Fatalf("MiniatureStreamCtx: %v", err)
	}
	defer sc.Close()
	if info.W != want.W || info.H != want.H {
		t.Fatalf("stream meta %dx%d, want %dx%d", info.W, info.H, want.W, want.H)
	}
	prog := img.NewProgressive(info.W, info.H)
	passes := 0
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Recv pass %d: %v", passes, err)
		}
		pass, ok := img.PassAtOffset(info.W, info.H, ch.Offset)
		if !ok {
			t.Fatalf("chunk offset %d is not a pass boundary", ch.Offset)
		}
		if err := prog.Apply(pass, ch.Data); err != nil {
			t.Fatalf("Apply pass %d: %v", pass, err)
		}
		passes++
		if passes == 1 {
			f.kill(fmt.Sprintf("shard%d", owner)) // die after the coarse pass
		}
	}
	if !prog.Complete() {
		t.Fatalf("progressive miniature incomplete after %d passes", passes)
	}
	if prog.Bitmap().Hash() != want.Hash() {
		t.Fatal("reassembled miniature diverges from the whole one after failover")
	}
	if c.StreamResumes() != 1 {
		t.Fatalf("stream resumes = %d, want 1", c.StreamResumes())
	}
}
