package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minos/internal/descriptor"
	img "minos/internal/image"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/voice"
	"minos/internal/wire"
)

// Dialer opens a transport to one fleet endpoint. TCP fleets pass a
// wire.DialMux wrapper; in-process fleets (tests, the vclock experiments)
// return a wire.LocalTransport over the endpoint's handler.
type Dialer func(endpoint string) (wire.Transport, error)

// Client is the workstation-side fleet stub: it routes every call to the
// shard owning the target object (consistent hashing on the object id),
// splits batched calls by shard and issues the pieces in parallel on each
// shard's multiplexed connection, and merges results back in request order.
//
// Failure handling composes with the wire client's retry machinery rather
// than replacing it: each per-shard call runs under that shard connection's
// own retry/reconnect loop, and only when the loop gives up — the primary
// is dead (NeedsReconnect) or persistently shedding (ErrServerBusy) — does
// the router redirect the read to the shard's WORM replica. All protocol
// ops are idempotent reads, so redirecting is always safe; writes (Publish
// is server-side ingestion) stay pinned to the primary by construction.
//
// A stale cluster map never surfaces as a hard error: a routed call that
// misses its object triggers a map refetch, and if the epoch moved, the
// call is re-routed once under the new map.
type Client struct {
	dial Dialer

	mu    sync.Mutex
	m     *Map
	ring  *Ring
	conns map[string]*wire.Client

	// jitter is shared by every per-shard connection (see
	// wire.SetBackoffRand): a K-way fan-out retrying across shards draws
	// from one lock-free source instead of K throwaway rand states.
	jitter   *wire.BackoffRand
	retry    wire.RetryPolicy
	retrySet bool

	refetches     atomic.Int64
	failovers     atomic.Int64
	reroutes      atomic.Int64
	streamResumes atomic.Int64
}

// Dial connects to a fleet through one seed endpoint and learns the
// cluster map — preferentially from the HELLO acknowledgement the seed
// transport already carries (wire.MuxTransport.HelloExtra), falling back
// to an explicit CLUSTERMAP fetch for transports without one.
func Dial(seed string, dial Dialer) (*Client, error) {
	return DialCtx(context.Background(), seed, dial)
}

// DialCtx is Dial bounded by a context.
func DialCtx(ctx context.Context, seed string, dial Dialer) (*Client, error) {
	c := &Client{
		dial:   dial,
		conns:  map[string]*wire.Client{},
		jitter: wire.NewBackoffRand(0x4D494E4F53 /* "MINOS" */),
	}
	t, err := dial(seed)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial seed %s: %w", seed, err)
	}
	wc := wire.NewClient(t)
	wc.SetBackoffRand(c.jitter)
	wc.EnableReconnect(func() (wire.Transport, error) { return c.dial(seed) })
	c.conns[seed] = wc
	var payload []byte
	if he, ok := t.(interface{ HelloExtra() []byte }); ok {
		payload = he.HelloExtra()
	}
	if payload == nil {
		// Epoch 0 is reserved for "no map yet": a fleet member always
		// answers it with the full payload.
		payload, _, err = wc.ClusterMapCtx(ctx, 0)
		if err != nil {
			wc.Close()
			return nil, fmt.Errorf("cluster: fetch map from %s: %w", seed, err)
		}
	}
	m, err := ParseMap(payload)
	if err != nil {
		wc.Close()
		return nil, err
	}
	if err := m.Validate(); err != nil {
		wc.Close()
		return nil, err
	}
	c.install(m)
	return c, nil
}

func (c *Client) install(m *Map) {
	ring := m.Ring()
	c.mu.Lock()
	c.m, c.ring = m, ring
	c.mu.Unlock()
}

// topo snapshots the current map and ring; calls in flight keep routing on
// the snapshot they started with while a refetch installs a newer one.
func (c *Client) topo() (*Map, *Ring) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m, c.ring
}

// Map returns the cluster map the client is currently routing with.
func (c *Client) Map() *Map { m, _ := c.topo(); return m }

// Refetches, Failovers and Reroutes report how often the client refreshed
// its map, served a read from a replica after its primary failed, and
// re-routed a call under a freshly fetched map.
func (c *Client) Refetches() int64 { return c.refetches.Load() }
func (c *Client) Failovers() int64 { return c.failovers.Load() }
func (c *Client) Reroutes() int64  { return c.reroutes.Load() }

// StreamResumes reports how many open streams were resumed mid-flight on
// another endpoint after their serving endpoint failed.
func (c *Client) StreamResumes() int64 { return c.streamResumes.Load() }

// Reconnects sums the reconnect counters of every pooled shard connection.
// A workstation session watches this (through the Backend interface) the
// way it watches a single connection's counter: any movement means some
// shard may have restarted, so cached browse state is resynchronized.
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, wc := range c.conns {
		n += wc.Reconnects()
	}
	return n
}

// SetRetryPolicy installs the retry policy on every per-shard connection
// (current and future).
func (c *Client) SetRetryPolicy(p wire.RetryPolicy) {
	c.mu.Lock()
	c.retry, c.retrySet = p, true
	for _, wc := range c.conns {
		wc.SetRetryPolicy(p)
	}
	c.mu.Unlock()
}

// Close releases every pooled shard connection.
func (c *Client) Close() error {
	c.mu.Lock()
	conns := c.conns
	c.conns = map[string]*wire.Client{}
	c.mu.Unlock()
	var first error
	for _, wc := range conns {
		if err := wc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// conn returns the pooled connection to endpoint, dialing it on first use.
// One multiplexed connection per endpoint is the pool: protocol v2 carries
// any number of in-flight calls per connection, so the pool's job is reuse
// and shared retry state, not connection fan-out.
func (c *Client) conn(endpoint string) (*wire.Client, error) {
	c.mu.Lock()
	if wc, ok := c.conns[endpoint]; ok {
		c.mu.Unlock()
		return wc, nil
	}
	c.mu.Unlock()
	t, err := c.dial(endpoint) // dial outside the lock: it may block
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if wc, ok := c.conns[endpoint]; ok {
		t.Close() // lost a dial race; keep the established pool entry
		return wc, nil
	}
	wc := wire.NewClient(t)
	wc.SetBackoffRand(c.jitter)
	if c.retrySet {
		wc.SetRetryPolicy(c.retry)
	}
	ep := endpoint
	wc.EnableReconnect(func() (wire.Transport, error) { return c.dial(ep) })
	c.conns[endpoint] = wc
	return wc, nil
}

// failoverable reports whether a per-shard failure justifies redirecting
// the (idempotent) read to a replica: the primary's connection is dead,
// the call timed out, frames are damaged, or the primary is persistently
// shedding past the wire client's own retry budget.
func failoverable(err error) bool {
	if err == nil {
		return false
	}
	return wire.NeedsReconnect(err) ||
		errors.Is(err, wire.ErrServerBusy) ||
		errors.Is(err, wire.ErrCallTimeout) ||
		errors.Is(err, wire.ErrShort)
}

// onShard runs call against the shard's primary, then — only for failures
// a replica can absorb — against each read replica in order. The first
// success wins; a success on a replica counts as a failover.
func (c *Client) onShard(ctx context.Context, m *Map, shard int, call func(*wire.Client) error) error {
	sh := m.Shard(shard)
	if sh == nil {
		return fmt.Errorf("cluster: map epoch %d has no shard %d", m.Epoch, shard)
	}
	var last error
	for i := 0; i <= len(sh.Replicas); i++ {
		endpoint := sh.Primary
		if i > 0 {
			endpoint = sh.Replicas[i-1]
		}
		wc, err := c.conn(endpoint)
		if err == nil {
			err = call(wc)
			if err == nil {
				if i > 0 {
					c.failovers.Add(1)
				}
				return nil
			}
		}
		last = err
		if !failoverable(err) || ctx.Err() != nil {
			return err
		}
	}
	return fmt.Errorf("cluster: shard %d unavailable (primary and %d replicas): %w",
		shard, len(m.Shard(shard).Replicas), last)
}

// isStaleRoute reports whether a per-shard error means the target object is
// unknown on the shard the current map routed it to — either the object
// does not exist at all, or the map is stale and the object moved. The
// caller disambiguates by refetching the map and comparing epochs. Server
// errors cross the wire as strings, so this matches the two spellings the
// serving path produces (wire's "unknown object", archiver's "object not
// found").
func isStaleRoute(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "unknown object") || strings.Contains(msg, "object not found")
}

// maybeRefetch refreshes the cluster map and reports whether the epoch
// moved — the signal that a miss may have been a misroute worth retrying.
func (c *Client) maybeRefetch(ctx context.Context) bool {
	before, _ := c.topo()
	if err := c.RefetchMap(ctx); err != nil {
		return false
	}
	after, _ := c.topo()
	return after.Epoch != before.Epoch
}

// RefetchMap refreshes the cluster map from the fleet, asking each shard's
// endpoints in map order until one answers. An unchanged epoch keeps the
// current map.
func (c *Client) RefetchMap(ctx context.Context) error {
	m, _ := c.topo()
	var last error
	for _, sh := range m.Shards {
		for i := 0; i <= len(sh.Replicas); i++ {
			endpoint := sh.Primary
			if i > 0 {
				endpoint = sh.Replicas[i-1]
			}
			wc, err := c.conn(endpoint)
			if err != nil {
				last = err
				continue
			}
			payload, changed, err := wc.ClusterMapCtx(ctx, m.Epoch)
			if err != nil {
				last = err
				continue
			}
			c.refetches.Add(1)
			if !changed {
				return nil
			}
			nm, err := ParseMap(payload)
			if err != nil {
				return err
			}
			if err := nm.Validate(); err != nil {
				return err
			}
			c.install(nm)
			return nil
		}
	}
	return fmt.Errorf("cluster: map refetch failed on every endpoint: %w", last)
}

// Owner returns the shard currently owning an object id.
func (c *Client) Owner(id object.ID) int {
	_, ring := c.topo()
	return ring.Owner(id)
}

// --- routed single-object calls ---

// routed runs call against the shard owning id, re-routing once if the
// miss was explained by a map-epoch change.
func (c *Client) routed(ctx context.Context, id object.ID, call func(*wire.Client) error) error {
	m, ring := c.topo()
	err := c.onShard(ctx, m, ring.Owner(id), call)
	if isStaleRoute(err) && c.maybeRefetch(ctx) {
		nm, nring := c.topo()
		c.reroutes.Add(1)
		return c.onShard(ctx, nm, nring.Owner(id), call)
	}
	return err
}

// DescriptorCtx fetches and parses an object descriptor from its shard.
func (c *Client) DescriptorCtx(ctx context.Context, id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	var d *descriptor.Descriptor
	var dur time.Duration
	err := c.routed(ctx, id, func(wc *wire.Client) error {
		var e error
		d, dur, e = wc.DescriptorCtx(ctx, id)
		return e
	})
	return d, dur, err
}

// ReadPieceCtx fetches a byte extent of id's shard archive. Offsets are
// archiver-absolute per shard, so they are only meaningful together with a
// descriptor fetched for the same object: the id is the routing key that
// keeps the two on the same shard.
func (c *Client) ReadPieceCtx(ctx context.Context, id object.ID, off, length uint64) ([]byte, time.Duration, error) {
	var data []byte
	var dur time.Duration
	err := c.routed(ctx, id, func(wc *wire.Client) error {
		var e error
		data, dur, e = wc.ReadPieceCtx(ctx, off, length)
		return e
	})
	return data, dur, err
}

// ObjectPieceCtx is the routable spelling of ReadPieceCtx shared with the
// single-server client: the workstation Backend interface reads pieces
// through it so one Session drives either topology.
func (c *Client) ObjectPieceCtx(ctx context.Context, id object.ID, off, length uint64) ([]byte, time.Duration, error) {
	return c.ReadPieceCtx(ctx, id, off, length)
}

// Fetch adapts the client into a descriptor.FetchFunc resolving parts of
// object id, accumulating device time into dur if non-nil.
func (c *Client) Fetch(id object.ID, dur *time.Duration) descriptor.FetchFunc {
	return func(ref descriptor.PartRef) ([]byte, error) {
		data, t, err := c.ReadPieceCtx(context.Background(), id, ref.Offset, ref.Length)
		if dur != nil {
			*dur += t
		}
		return data, err
	}
}

// VoicePreviewCtx fetches the voice preview of an audio-mode object from
// its shard.
func (c *Client) VoicePreviewCtx(ctx context.Context, id object.ID) (*voice.Part, time.Duration, error) {
	var vp *voice.Part
	var dur time.Duration
	err := c.routed(ctx, id, func(wc *wire.Client) error {
		var e error
		vp, dur, e = wc.VoicePreviewCtx(ctx, id)
		return e
	})
	return vp, dur, err
}

// ImageViewCtx fetches a rectangle of an image part from id's shard.
func (c *Client) ImageViewCtx(ctx context.Context, id object.ID, name string, r img.Rect) (*img.Bitmap, time.Duration, error) {
	var bm *img.Bitmap
	var dur time.Duration
	err := c.routed(ctx, id, func(wc *wire.Client) error {
		var e error
		bm, dur, e = wc.ImageViewCtx(ctx, id, name, r)
		return e
	})
	return bm, dur, err
}

// ModeCtx returns an object's driving mode (via the batched miniature path
// on its shard, like the wire client).
func (c *Client) ModeCtx(ctx context.Context, id object.ID) (object.Mode, error) {
	res, _, err := c.MiniaturesCtx(ctx, []object.ID{id})
	if err != nil {
		return 0, err
	}
	if !res[0].OK {
		return 0, fmt.Errorf("cluster: unknown object %d", id)
	}
	return res[0].Mode, nil
}

// --- scatter/gather calls ---

// MiniaturesCtx fetches a miniature batch: the ids are split by owning
// shard, each sub-batch goes out in parallel on its shard's multiplexed
// connection (one round trip per shard, not per id), and the results merge
// back in request order. Missing entries come back OK=false, as on the
// single-server path; if any are missing under a map that turns out stale,
// the missing ids are re-routed once under the refreshed map. The duration
// is the maximum per-shard device time (the fan-out runs concurrently).
func (c *Client) MiniaturesCtx(ctx context.Context, ids []object.ID) ([]wire.MiniatureResult, time.Duration, error) {
	out := make([]wire.MiniatureResult, len(ids))
	dur, err := c.miniaturesOnce(ctx, ids, allIndices(len(ids)), out)
	if err != nil {
		return nil, dur, err
	}
	var missing []int
	for i, r := range out {
		if !r.OK {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 && c.maybeRefetch(ctx) {
		c.reroutes.Add(1)
		if d2, err := c.miniaturesOnce(ctx, ids, missing, out); err == nil && d2 > dur {
			dur = d2
		}
	}
	return out, dur, nil
}

// pendingMiniatures is one in-flight batched miniature fetch launched by
// StartMiniatures.
type pendingMiniatures struct {
	ch  chan struct{}
	res []wire.MiniatureResult
	dur time.Duration
	err error
}

func (p *pendingMiniatures) Wait() ([]wire.MiniatureResult, time.Duration, error) {
	<-p.ch
	return p.res, p.dur, p.err
}

// StartMiniatures launches a batched miniature fetch without waiting — the
// workstation prefetcher's pipelining hook, giving fleet-backed sessions
// the same depth-N read-ahead as single-server ones. Each in-flight batch
// runs the routed scatter/gather concurrently: the per-shard sub-batches
// ride their shard's multiplexed connection, so several batches in flight
// share the fleet's links exactly like pipelined calls share one mux.
func (c *Client) StartMiniatures(ctx context.Context, ids []object.ID) wire.MiniatureBatch {
	p := &pendingMiniatures{ch: make(chan struct{})}
	go func() {
		defer close(p.ch)
		p.res, p.dur, p.err = c.MiniaturesCtx(ctx, ids)
	}()
	return p
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// miniaturesOnce routes the requested indices of ids by the current ring
// and writes each shard's results into out at the requested positions.
func (c *Client) miniaturesOnce(ctx context.Context, ids []object.ID, want []int, out []wire.MiniatureResult) (time.Duration, error) {
	m, ring := c.topo()
	groups := map[int][]int{}
	var order []int // shards in first-appearance order: determinism and a cheap single-shard fast path
	for _, i := range want {
		s := ring.Owner(ids[i])
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], i)
	}
	fetch := func(shard int, idxs []int) (time.Duration, error) {
		sub := make([]object.ID, len(idxs))
		for k, i := range idxs {
			sub[k] = ids[i]
		}
		var res []wire.MiniatureResult
		var dur time.Duration
		err := c.onShard(ctx, m, shard, func(wc *wire.Client) error {
			var e error
			res, dur, e = wc.MiniaturesCtx(ctx, sub)
			return e
		})
		if err != nil {
			return dur, err
		}
		for k, i := range idxs {
			out[i] = res[k]
		}
		return dur, nil
	}
	if len(order) == 1 {
		return fetch(order[0], groups[order[0]])
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		maxDur   time.Duration
	)
	for _, s := range order {
		wg.Add(1)
		go func(shard int, idxs []int) {
			defer wg.Done()
			dur, err := fetch(shard, idxs)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if dur > maxDur {
				maxDur = dur
			}
		}(s, groups[s])
	}
	wg.Wait()
	return maxDur, firstErr
}

// QueryCtx evaluates a content query on every shard in parallel and merges
// the id sets ascending — the partitioned corpus makes per-shard results
// disjoint, so the merge equals the single-server result exactly.
func (c *Client) QueryCtx(ctx context.Context, terms ...string) ([]object.ID, time.Duration, error) {
	return c.gatherIDs(ctx, func(wc *wire.Client) ([]object.ID, time.Duration, error) {
		return wc.QueryCtx(ctx, terms...)
	})
}

// QueryPlannedCtx scatters a planned content query — conjunctive terms plus
// attribute predicates — to every shard in parallel, where each shard's
// planner evaluates it against the local segments, and gathers the sorted
// per-shard id streams into one ascending result. Shards are reached through
// onShard, so a dead primary fails over to its replicas like every other op
// (the WORM content index is identical on a replica, so a failed-over answer
// equals the primary's).
func (c *Client) QueryPlannedCtx(ctx context.Context, q index.Query) ([]object.ID, time.Duration, error) {
	return c.gatherIDs(ctx, func(wc *wire.Client) ([]object.ID, time.Duration, error) {
		return wc.QueryPlannedCtx(ctx, q)
	})
}

// ListCtx returns all published object ids across the fleet, ascending.
func (c *Client) ListCtx(ctx context.Context) ([]object.ID, time.Duration, error) {
	return c.gatherIDs(ctx, func(wc *wire.Client) ([]object.ID, time.Duration, error) {
		return wc.ListCtx(ctx)
	})
}

// gatherIDs fans call out to every shard and merges the per-shard id
// streams. Each shard answers in ascending order (both the content index
// and the archiver directory are sorted), so the gather is a k-way merge of
// sorted streams, not a global re-sort.
func (c *Client) gatherIDs(ctx context.Context, call func(*wire.Client) ([]object.ID, time.Duration, error)) ([]object.ID, time.Duration, error) {
	m, _ := c.topo()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		maxDur   time.Duration
	)
	parts := make([][]object.ID, len(m.Shards))
	for i, sh := range m.Shards {
		wg.Add(1)
		go func(slot, shard int) {
			defer wg.Done()
			var ids []object.ID
			var dur time.Duration
			err := c.onShard(ctx, m, shard, func(wc *wire.Client) error {
				var e error
				ids, dur, e = call(wc)
				return e
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if dur > maxDur {
				maxDur = dur
			}
			parts[slot] = ids
		}(i, sh.ID)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, maxDur, firstErr
	}
	return mergeSortedIDs(parts), maxDur, nil
}

// mergeSortedIDs merges ascending id streams into one ascending slice,
// deduplicating equal heads (shards partition the corpus, so duplicates
// only appear if two streams overlap — e.g. a re-published object caught
// on both sides of a resharding).
func mergeSortedIDs(parts [][]object.ID) []object.ID {
	total, live := 0, 0
	for _, p := range parts {
		total += len(p)
		if len(p) > 0 {
			live++
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]object.ID, 0, total)
	if live == 1 {
		for _, p := range parts {
			if len(p) > 0 {
				return append(out, p...)
			}
		}
	}
	heads := make([]int, len(parts))
	for {
		best := -1
		var min object.ID
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			if v := p[heads[i]]; best < 0 || v < min {
				best, min = i, v
			}
		}
		if best < 0 {
			return out
		}
		if len(out) == 0 || out[len(out)-1] != min {
			out = append(out, min)
		}
		heads[best]++
	}
}

// StatsCtx aggregates the request/cache/contention counters across every
// shard primary (replica counters are not folded in: the primaries carry
// the fleet's serving traffic unless a failover is in progress).
func (c *Client) StatsCtx(ctx context.Context) (server.Stats, error) {
	m, _ := c.topo()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		total    server.Stats
	)
	for _, sh := range m.Shards {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var st server.Stats
			err := c.onShard(ctx, m, shard, func(wc *wire.Client) error {
				var e error
				st, e = wc.StatsCtx(ctx)
				return e
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			total.PieceReads += st.PieceReads
			total.BytesOut += st.BytesOut
			total.CacheHits += st.CacheHits
			total.CacheMiss += st.CacheMiss
			total.DeviceWaits += st.DeviceWaits
			total.DeviceWaitNanos += st.DeviceWaitNanos
			total.ReadAheadBlocks += st.ReadAheadBlocks
			total.Shed += st.Shed
			total.EncodedHits += st.EncodedHits
			total.EncodedMiss += st.EncodedMiss
			total.PoolAllocs += st.PoolAllocs
			total.PoolRecycled += st.PoolRecycled
		}(sh.ID)
	}
	wg.Wait()
	return total, firstErr
}
