package cluster

import (
	"testing"

	"minos/internal/object"
)

// syntheticIDs mimics the corpus id space: small figure ids, 1000+ fillers
// and 500000+ spoken objects.
func syntheticIDs(n int) []object.ID {
	ids := make([]object.ID, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			ids = append(ids, object.ID(1+i))
		case 1:
			ids = append(ids, object.ID(1000+i))
		default:
			ids = append(ids, object.ID(500_000+i))
		}
	}
	return ids
}

// TestRingDeterminism: two rings built from the same inputs must agree on
// every assignment — the partitioner and every client depend on it.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]int{0, 1, 2, 3}, DefaultVnodes)
	b := NewRing([]int{3, 2, 1, 0}, DefaultVnodes) // order must not matter
	for _, id := range syntheticIDs(2000) {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("rings from permuted shard lists disagree on id %d: %d vs %d",
				id, a.Owner(id), b.Owner(id))
		}
	}
}

// TestRingDistributionSkew bounds the assignment skew across 1k synthetic
// ids for every fleet width the E-SHARD experiment uses: with 256 vnodes
// per shard no shard may end up with less than half or more than double
// its fair share.
func TestRingDistributionSkew(t *testing.T) {
	ids := syntheticIDs(1000)
	for n := 1; n <= 8; n++ {
		shards := make([]int, n)
		for i := range shards {
			shards[i] = i
		}
		r := NewRing(shards, DefaultVnodes)
		counts := make([]int, n)
		for _, id := range ids {
			counts[r.Owner(id)]++
		}
		fair := float64(len(ids)) / float64(n)
		for s, c := range counts {
			if got := float64(c); got < fair/2 || got > fair*2 {
				t.Fatalf("N=%d: shard %d owns %d of %d ids (fair share %.0f): skew out of [0.5x, 2x]",
					n, s, c, len(ids), fair)
			}
		}
	}
}

// TestRingRemapFraction is the consistent-hashing property: growing the
// fleet from N to N+1 shards moves only the ids the new shard claims —
// every moved id must land on the added shard, and the moved fraction must
// stay near 1/(N+1) (bounded at 1.5x to absorb vnode placement variance).
func TestRingRemapFraction(t *testing.T) {
	ids := syntheticIDs(4096)
	for n := 1; n <= 7; n++ {
		old := make([]int, n)
		for i := range old {
			old[i] = i
		}
		grown := append(append([]int(nil), old...), n)
		a, b := NewRing(old, DefaultVnodes), NewRing(grown, DefaultVnodes)
		moved := 0
		for _, id := range ids {
			oa, ob := a.Owner(id), b.Owner(id)
			if oa == ob {
				continue
			}
			if ob != n {
				t.Fatalf("N=%d->%d: id %d moved %d->%d, not to the added shard %d",
					n, n+1, id, oa, ob, n)
			}
			moved++
		}
		if bound := 1.5 * float64(len(ids)) / float64(n+1); float64(moved) > bound {
			t.Fatalf("N=%d->%d: %d of %d ids moved, above the 1.5/(N+1) bound %.0f",
				n, n+1, moved, len(ids), bound)
		}
	}
}

// TestRingOwnerAllocs: routing is on the batched hot path; the binary
// search must not allocate.
func TestRingOwnerAllocs(t *testing.T) {
	r := NewRing([]int{0, 1, 2, 3}, DefaultVnodes)
	avg := testing.AllocsPerRun(1000, func() {
		_ = r.Owner(12345)
	})
	if avg > 0 {
		t.Fatalf("Owner allocates %.1f objects/run, want 0", avg)
	}
}
