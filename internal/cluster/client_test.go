package cluster_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"minos/internal/cluster"
	"minos/internal/demo"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/wire"
)

// testFleet is an in-process fleet: one wire.Handler per endpoint behind a
// Dialer, with per-endpoint kill switches for failover tests.
type testFleet struct {
	mu        sync.Mutex
	endpoints map[string]*testEndpoint
}

type testEndpoint struct {
	h      *wire.Handler
	failed atomic.Bool
}

// flakyTransport serves through a LocalTransport until its endpoint is
// killed, then fails every exchange like a dead TCP connection would.
type flakyTransport struct {
	inner  *wire.LocalTransport
	failed *atomic.Bool
}

func (t *flakyTransport) RoundTrip(req []byte) ([]byte, error) {
	if t.failed.Load() {
		return nil, syscall.ECONNRESET
	}
	return t.inner.RoundTrip(req)
}

func (t *flakyTransport) Close() error { return t.inner.Close() }

func (f *testFleet) add(name string, srv *server.Server) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.endpoints == nil {
		f.endpoints = map[string]*testEndpoint{}
	}
	f.endpoints[name] = &testEndpoint{h: &wire.Handler{Srv: srv}}
}

func (f *testFleet) kill(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.endpoints[name].failed.Store(true)
}

func (f *testFleet) dialer() cluster.Dialer {
	return func(endpoint string) (wire.Transport, error) {
		f.mu.Lock()
		ep, ok := f.endpoints[endpoint]
		f.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("test fleet: unknown endpoint %s", endpoint)
		}
		if ep.failed.Load() {
			return nil, syscall.ECONNREFUSED
		}
		return &flakyTransport{inner: &wire.LocalTransport{H: ep.h}, failed: &ep.failed}, nil
	}
}

// buildFleet wires a demo.BuildSharded corpus into a testFleet with a
// cluster map of the given epoch installed on every server. Replica
// servers, when asked for, come from a second identical BuildSharded run —
// WORM determinism makes the second build's archives bit-identical to the
// first's, which is exactly how a real replica is provisioned.
func buildFleet(t *testing.T, shards int, replicas bool) (*testFleet, *demo.Sharded, *cluster.Map) {
	t.Helper()
	sh, err := demo.BuildSharded(1<<15, 40, shards, cluster.DefaultVnodes)
	if err != nil {
		t.Fatalf("BuildSharded: %v", err)
	}
	f := &testFleet{}
	m := &cluster.Map{Epoch: 1, Vnodes: cluster.DefaultVnodes}
	var reps *demo.Sharded
	if replicas {
		if reps, err = demo.BuildSharded(1<<15, 40, shards, cluster.DefaultVnodes); err != nil {
			t.Fatalf("BuildSharded (replicas): %v", err)
		}
	}
	for i, srv := range sh.Servers {
		primary := fmt.Sprintf("shard%d", i)
		f.add(primary, srv)
		entry := cluster.Shard{ID: i, Primary: primary}
		if replicas {
			rep := fmt.Sprintf("shard%d-r", i)
			f.add(rep, reps.Servers[i])
			entry.Replicas = []string{rep}
		}
		m.Shards = append(m.Shards, entry)
	}
	installMap(f, sh, reps, m)
	return f, sh, m
}

func installMap(f *testFleet, sh, reps *demo.Sharded, m *cluster.Map) {
	enc := m.Encode()
	for _, srv := range sh.Servers {
		srv.SetClusterMap(m.Epoch, enc)
	}
	if reps != nil {
		for _, srv := range reps.Servers {
			srv.SetClusterMap(m.Epoch, enc)
		}
	}
}

// fastRetry keeps failover tests quick: one attempt per endpoint, tiny
// backoff.
var fastRetry = wire.RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}

func dialFleet(t *testing.T, f *testFleet) *cluster.Client {
	t.Helper()
	c, err := cluster.Dial("shard0", f.dialer())
	if err != nil {
		t.Fatalf("cluster.Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetRetryPolicy(fastRetry)
	return c
}

// TestRoutedMatchesSingleServer: the routed client over a 3-shard fleet
// must be observationally identical to a wire client over one unsharded
// server holding the same corpus — list, query, batched miniatures and the
// descriptor/read-piece path.
func TestRoutedMatchesSingleServer(t *testing.T) {
	ctx := context.Background()
	single, err := demo.Build(1<<15, 40)
	if err != nil {
		t.Fatalf("demo.Build: %v", err)
	}
	ref := wire.NewClient(&wire.LocalTransport{H: &wire.Handler{Srv: single.Server}})
	defer ref.Close()

	f, _, _ := buildFleet(t, 3, false)
	c := dialFleet(t, f)

	wantIDs, _, err := ref.ListCtx(ctx)
	if err != nil {
		t.Fatalf("ref List: %v", err)
	}
	gotIDs, _, err := c.ListCtx(ctx)
	if err != nil {
		t.Fatalf("routed List: %v", err)
	}
	if !reflect.DeepEqual(wantIDs, gotIDs) {
		t.Fatalf("routed List diverges from single server:\nwant %v\ngot  %v", wantIDs, gotIDs)
	}

	for _, term := range []string{"hospital", "map", "voice"} {
		want, _, err := ref.QueryCtx(ctx, term)
		if err != nil {
			t.Fatalf("ref Query(%q): %v", term, err)
		}
		got, _, err := c.QueryCtx(ctx, term)
		if err != nil {
			t.Fatalf("routed Query(%q): %v", term, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Query(%q) diverges:\nwant %v\ngot  %v", term, want, got)
		}
	}

	// Batched miniatures across every object, plus a missing id in the
	// middle: per-entry OK flags and modes must merge back in request
	// order.
	ids := append(append([]object.ID{}, wantIDs[:6]...), object.ID(999_999))
	ids = append(ids, wantIDs[6:12]...)
	want, _, err := ref.MiniaturesCtx(ctx, ids)
	if err != nil {
		t.Fatalf("ref Miniatures: %v", err)
	}
	got, _, err := c.MiniaturesCtx(ctx, ids)
	if err != nil {
		t.Fatalf("routed Miniatures: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("miniature count %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].OK != got[i].OK || want[i].Mode != got[i].Mode {
			t.Fatalf("miniature %d diverges: want {id %d ok %v mode %v}, got {id %d ok %v mode %v}",
				i, want[i].ID, want[i].OK, want[i].Mode, got[i].ID, got[i].OK, got[i].Mode)
		}
	}

	// Descriptor + piece read routed by owning shard: the first part's
	// bytes must round-trip.
	for _, id := range wantIDs[:8] {
		d, _, err := c.DescriptorCtx(ctx, id)
		if err != nil {
			t.Fatalf("routed Descriptor(%d): %v", id, err)
		}
		if len(d.Parts) == 0 {
			continue
		}
		p := d.Parts[0]
		data, _, err := c.ReadPieceCtx(ctx, id, p.Offset, p.Length)
		if err != nil {
			t.Fatalf("routed ReadPiece(%d): %v", id, err)
		}
		if uint64(len(data)) != p.Length {
			t.Fatalf("ReadPiece(%d) returned %d bytes, want %d", id, len(data), p.Length)
		}
	}
}

// TestFailoverToReplica: killing a primary mid-session must redirect that
// shard's reads to its WORM replica — the browse session completes, and
// the client records the failovers.
func TestFailoverToReplica(t *testing.T) {
	ctx := context.Background()
	f, sh, _ := buildFleet(t, 2, true)
	c := dialFleet(t, f)

	ids, _, err := c.ListCtx(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}

	// A browse session is underway; shard 0's primary dies.
	f.kill("shard0")

	res, _, err := c.MiniaturesCtx(ctx, ids)
	if err != nil {
		t.Fatalf("Miniatures after primary death: %v", err)
	}
	for i, r := range res {
		if !r.OK {
			t.Fatalf("miniature %d (id %d) missing after failover", i, r.ID)
		}
	}
	// Piece reads on shard-0 objects must come off the replica too:
	// the replica archive is bit-identical, so primary offsets are valid.
	var shard0 object.ID
	for _, id := range ids {
		if sh.Ring.Owner(id) == 0 {
			shard0 = id
			break
		}
	}
	d, _, err := c.DescriptorCtx(ctx, shard0)
	if err != nil {
		t.Fatalf("Descriptor(%d) after failover: %v", shard0, err)
	}
	if len(d.Parts) > 0 {
		if _, _, err := c.ReadPieceCtx(ctx, shard0, d.Parts[0].Offset, d.Parts[0].Length); err != nil {
			t.Fatalf("ReadPiece(%d) after failover: %v", shard0, err)
		}
	}
	if c.Failovers() == 0 {
		t.Fatal("no failovers recorded despite a dead primary")
	}
}

// TestDeadShardWithoutReplica: when a primary with no replica dies, calls
// against that shard must fail with a shard-unavailable error — and calls
// against the surviving shards must keep working.
func TestDeadShardWithoutReplica(t *testing.T) {
	ctx := context.Background()
	f, sh, _ := buildFleet(t, 2, false)
	c := dialFleet(t, f)

	f.kill("shard1")
	okID, deadID := object.ID(0), object.ID(0)
	ids := sh.Servers[0].IDs()
	if len(ids) > 0 {
		okID = ids[0]
	}
	if ids := sh.Servers[1].IDs(); len(ids) > 0 {
		deadID = ids[0]
	}
	if _, _, err := c.DescriptorCtx(ctx, okID); err != nil {
		t.Fatalf("healthy shard failed: %v", err)
	}
	if _, _, err := c.DescriptorCtx(ctx, deadID); err == nil {
		t.Fatal("dead unreplicated shard served a read")
	}
}

// TestStaleMapReroute: a client routing with an old map epoch must treat a
// miss as a possible misroute — refetch the map, see the epoch moved, and
// re-route transparently instead of failing.
func TestStaleMapReroute(t *testing.T) {
	ctx := context.Background()
	// The corpus is partitioned for 3 shards; the client starts with a
	// 2-shard epoch-1 map, so ids owned by shard 2 are misrouted.
	sh, err := demo.BuildSharded(1<<15, 40, 3, cluster.DefaultVnodes)
	if err != nil {
		t.Fatalf("BuildSharded: %v", err)
	}
	f := &testFleet{}
	stale := &cluster.Map{Epoch: 1, Vnodes: cluster.DefaultVnodes}
	fresh := &cluster.Map{Epoch: 2, Vnodes: cluster.DefaultVnodes}
	for i, srv := range sh.Servers {
		name := fmt.Sprintf("shard%d", i)
		f.add(name, srv)
		if i < 2 {
			stale.Shards = append(stale.Shards, cluster.Shard{ID: i, Primary: name})
		}
		fresh.Shards = append(fresh.Shards, cluster.Shard{ID: i, Primary: name})
	}
	installMap(f, sh, nil, stale)
	c := dialFleet(t, f)
	if c.Map().Epoch != 1 {
		t.Fatalf("client bootstrapped epoch %d, want 1", c.Map().Epoch)
	}
	// The fleet re-shards: every server now serves the epoch-2 map.
	installMap(f, sh, nil, fresh)

	// An object the 3-shard ring puts on shard 2: the stale 2-shard ring
	// routes it elsewhere, the shard misses, and the client must recover.
	var moved object.ID
	staleRing := stale.Ring()
	for _, id := range sh.Servers[2].IDs() {
		if o := staleRing.Owner(id); o == 0 || o == 1 {
			moved = id
			break
		}
	}
	if moved == 0 {
		t.Fatal("no object distinguishes the stale ring from the fresh one")
	}
	if _, _, err := c.DescriptorCtx(ctx, moved); err != nil {
		t.Fatalf("Descriptor(%d) under stale map: %v", moved, err)
	}
	if c.Map().Epoch != 2 {
		t.Fatalf("client still on epoch %d after reroute", c.Map().Epoch)
	}
	if c.Reroutes() == 0 {
		t.Fatal("no reroute recorded")
	}
	// Batched path: misses on moved ids re-route too.
	res, _, err := c.MiniaturesCtx(ctx, sh.Servers[2].IDs())
	if err != nil {
		t.Fatalf("Miniatures of shard-2 ids: %v", err)
	}
	for _, r := range res {
		if !r.OK {
			t.Fatalf("miniature %d missing after map refresh", r.ID)
		}
	}
}

// TestUnchangedEpochRefetch: refetching against an unchanged fleet must
// keep the map and not spin — the CLUSTERMAP op answers "unchanged"
// without resending the payload.
func TestUnchangedEpochRefetch(t *testing.T) {
	f, _, m := buildFleet(t, 2, false)
	c := dialFleet(t, f)
	for i := 0; i < 3; i++ {
		if err := c.RefetchMap(context.Background()); err != nil {
			t.Fatalf("RefetchMap: %v", err)
		}
	}
	if got := c.Map().Epoch; got != m.Epoch {
		t.Fatalf("epoch drifted to %d", got)
	}
	if c.Refetches() != 3 {
		t.Fatalf("refetches = %d, want 3", c.Refetches())
	}
}

// TestConcurrentMapRefreshDuringBatches drives batched scatter/gather
// calls from several goroutines while the fleet's map epoch keeps
// advancing and the client keeps refetching — the -race gate for the
// routing state. No call may fail: an epoch bump with unchanged shards is
// routing-neutral.
func TestConcurrentMapRefreshDuringBatches(t *testing.T) {
	ctx := context.Background()
	f, sh, m := buildFleet(t, 2, false)
	c := dialFleet(t, f)
	ids, _, err := c.ListCtx(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := ids[(g+i)%len(ids):]
				if len(batch) > 8 {
					batch = batch[:8]
				}
				if _, _, err := c.MiniaturesCtx(ctx, batch); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		epoch := m.Epoch
		for i := 0; i < 50; i++ {
			epoch++
			bumped := *m
			bumped.Epoch = epoch
			installMap(f, sh, nil, &bumped)
			if err := c.RefetchMap(ctx); err != nil {
				errs <- err
				return
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timer := time.AfterFunc(200*time.Millisecond, func() { close(stop) })
	defer timer.Stop()
	<-done
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent refresh: %v", err)
		}
	}
}

// TestRoutedBatchAllocs extends the zero-allocation guard to the routed
// path: a warm single-shard batch through the routed client must stay
// within a small constant allocation budget (the split/merge bookkeeping),
// independent of batch size.
func TestRoutedBatchAllocs(t *testing.T) {
	ctx := context.Background()
	f, sh, _ := buildFleet(t, 2, false)
	c := dialFleet(t, f)
	// All ids owned by one shard: the fast path, no goroutine fan-out.
	ids := sh.Servers[0].IDs()
	if len(ids) > 8 {
		ids = ids[:8]
	}
	if _, _, err := c.MiniaturesCtx(ctx, ids); err != nil { // warm caches
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := c.MiniaturesCtx(ctx, ids); err != nil {
			t.Fatalf("Miniatures: %v", err)
		}
	})
	// The routed layer adds the per-shard grouping and the merged result
	// slice on top of the wire client's own work; 60 objects per 8-id
	// batch is the measured envelope with headroom, and a regression that
	// makes the router allocate per miniature would blow far past it.
	if avg > 60 {
		t.Fatalf("routed warm batch allocates %.1f objects/run, budget 60", avg)
	}
}
