package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"minos/internal/object"
	"minos/internal/wire"
)

// Stream routing composes the fleet's replica failover with the wire
// layer's credit-based server-push streams. A stream is opened on the
// shard owning the object, like any routed call; unlike a routed call it
// is long-lived, so the primary can die in the middle. Both stream kinds
// address every data frame by its absolute byte offset in the streamed
// media, which makes resumption a pure client-side affair: the router
// remembers the high-water mark of bytes it has handed to the consumer,
// re-opens the stream on the next endpoint with from = that mark, and
// trims any overlap the replica re-sends. The consumer observes one
// gapless, duplicate-free byte sequence and never restarts the part.
//
// Voice resumption stays sample-aligned for free: the PCM region is an
// even number of bytes, chunks are cut at even sizes, so the delivered
// mark is always even. Miniature resumption lands on pass boundaries for
// the same reason — each data frame is exactly one progressive pass.

// streamOpen opens one stream attempt on a shard connection, starting at
// the given absolute byte offset.
type streamOpen func(wc *wire.Client, from uint64) (wire.StreamConn, error)

// VoiceStreamCtx opens a credit-based voice PCM stream on the shard owning
// id, resuming on a replica from the last delivered byte if the serving
// endpoint fails mid-stream.
func (c *Client) VoiceStreamCtx(ctx context.Context, id object.ID, from uint64, window int) (wire.VoiceStreamInfo, wire.StreamConn, error) {
	var info wire.VoiceStreamInfo
	var got bool
	open := func(wc *wire.Client, at uint64) (wire.StreamConn, error) {
		i, sc, err := wc.VoiceStreamCtx(ctx, id, at, window)
		if err == nil && !got {
			info, got = i, true
		}
		return sc, err
	}
	sc, err := c.openStream(ctx, id, from, open)
	return info, sc, err
}

// MiniatureStreamCtx opens a progressive miniature stream on the shard
// owning id, with the same mid-stream failover as VoiceStreamCtx.
func (c *Client) MiniatureStreamCtx(ctx context.Context, id object.ID, from uint64, window int) (wire.MiniatureStreamInfo, wire.StreamConn, error) {
	var info wire.MiniatureStreamInfo
	var got bool
	open := func(wc *wire.Client, at uint64) (wire.StreamConn, error) {
		i, sc, err := wc.MiniatureStreamCtx(ctx, id, at, window)
		if err == nil && !got {
			info, got = i, true
		}
		return sc, err
	}
	sc, err := c.openStream(ctx, id, from, open)
	return info, sc, err
}

// openStream routes a stream open to the owning shard (re-routing once on
// a stale map, like routed) and wraps the connection for failover resume.
func (c *Client) openStream(ctx context.Context, id object.ID, from uint64, open streamOpen) (wire.StreamConn, error) {
	m, ring := c.topo()
	sc, eps, idx, err := c.openOnShard(ctx, m, ring.Owner(id), from, open)
	if isStaleRoute(err) && c.maybeRefetch(ctx) {
		nm, nring := c.topo()
		c.reroutes.Add(1)
		sc, eps, idx, err = c.openOnShard(ctx, nm, nring.Owner(id), from, open)
	}
	if err != nil {
		return nil, err
	}
	return &failoverStream{
		c:         c,
		ctx:       ctx,
		open:      open,
		endpoints: eps,
		epIdx:     idx,
		delivered: from,
		conn:      sc,
	}, nil
}

// openOnShard tries the stream open on the shard's primary, then — for
// failures a replica can absorb — on each replica in order, exactly like
// onShard for unary calls.
func (c *Client) openOnShard(ctx context.Context, m *Map, shard int, from uint64, open streamOpen) (wire.StreamConn, []string, int, error) {
	sh := m.Shard(shard)
	if sh == nil {
		return nil, nil, 0, fmt.Errorf("cluster: map epoch %d has no shard %d", m.Epoch, shard)
	}
	eps := append([]string{sh.Primary}, sh.Replicas...)
	var last error
	for i, ep := range eps {
		wc, err := c.conn(ep)
		if err == nil {
			var sc wire.StreamConn
			sc, err = open(wc, from)
			if err == nil {
				if i > 0 {
					c.failovers.Add(1)
				}
				return sc, eps, i, nil
			}
		}
		last = err
		if !failoverable(err) || ctx.Err() != nil {
			return nil, nil, 0, err
		}
	}
	return nil, nil, 0, fmt.Errorf("cluster: shard %d unavailable for stream (primary and %d replicas): %w",
		shard, len(eps)-1, last)
}

// failoverStream is a wire.StreamConn that survives the death of the
// endpoint serving it: a failoverable Recv error re-opens the stream on
// the shard's next endpoint at the delivered high-water mark and the read
// loop continues. Offsets are absolute, so duplicates a replica re-sends
// around the resume point are trimmed before the consumer sees them.
type failoverStream struct {
	c    *Client
	ctx  context.Context
	open streamOpen

	mu        sync.Mutex
	conn      wire.StreamConn
	endpoints []string
	epIdx     int
	delivered uint64 // next byte the consumer has not yet received
}

func (s *failoverStream) current() wire.StreamConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn
}

// Recv returns the next never-before-delivered chunk, transparently
// resuming on the next endpoint when the current one fails mid-stream.
func (s *failoverStream) Recv() (wire.StreamChunk, error) {
	for {
		conn := s.current()
		if conn == nil {
			return wire.StreamChunk{}, errors.New("cluster: stream closed")
		}
		ch, err := conn.Recv()
		if err == nil {
			end := ch.Offset + uint64(len(ch.Data))
			if end <= s.delivered {
				continue // wholly before the resume point: duplicate
			}
			if ch.Offset < s.delivered {
				ch.Data = ch.Data[s.delivered-ch.Offset:]
				ch.Offset = s.delivered
			}
			s.delivered = end
			return ch, nil
		}
		if errors.Is(err, io.EOF) {
			return ch, err // clean end (the final chunk carries timing only)
		}
		if !failoverable(err) || s.ctx.Err() != nil {
			return ch, err
		}
		if rerr := s.resume(); rerr != nil {
			return wire.StreamChunk{}, fmt.Errorf("cluster: stream resume after %q: %w", err, rerr)
		}
	}
}

// resume re-opens the stream on the next endpoint of the shard at the
// delivered mark. It never retries the endpoint that just failed: a
// mid-stream failure is stronger evidence than a failed unary call, and
// the wire client's own retry loop already ran underneath it.
func (s *failoverStream) resume() error {
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.mu.Unlock()
	var last error
	for {
		s.mu.Lock()
		s.epIdx++
		if s.epIdx >= len(s.endpoints) {
			s.mu.Unlock()
			if last == nil {
				last = errors.New("no endpoint left")
			}
			return last
		}
		ep := s.endpoints[s.epIdx]
		at := s.delivered
		s.mu.Unlock()
		wc, err := s.c.conn(ep)
		if err == nil {
			var sc wire.StreamConn
			sc, err = s.open(wc, at)
			if err == nil {
				s.mu.Lock()
				s.conn = sc
				s.mu.Unlock()
				s.c.failovers.Add(1)
				s.c.streamResumes.Add(1)
				return nil
			}
		}
		last = err
		if !failoverable(err) || s.ctx.Err() != nil {
			return err
		}
	}
}

// Grant tops up the current endpoint's send window. Credit lost with a
// dead endpoint is re-granted implicitly: the re-open carries the full
// window again.
func (s *failoverStream) Grant(n int) {
	if conn := s.current(); conn != nil {
		conn.Grant(n)
	}
}

// Close tears the stream down (cancelling it on the serving endpoint if
// it is still live).
func (s *failoverStream) Close() error {
	s.mu.Lock()
	conn := s.conn
	s.conn = nil
	s.mu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}
