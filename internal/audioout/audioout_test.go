package audioout

import (
	"testing"
	"time"

	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
)

func testPart(t testing.TB) *voice.Part {
	t.Helper()
	seg, err := text.Parse("One two three four five. Six seven eight nine ten.\n")
	if err != nil {
		t.Fatal(err)
	}
	return voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000).Part
}

func TestPlayToCompletion(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	done := false
	if err := p.Play(0, 0, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if !p.Playing() {
		t.Fatal("not playing after Play")
	}
	c.Advance(part.Duration())
	if !done {
		t.Fatal("completion callback not fired")
	}
	if p.Playing() {
		t.Fatal("still playing after completion")
	}
	if p.Position() != 0 {
		// startPos unchanged after natural completion; position reports
		// where the last segment began. Resume should then play to end.
	}
	if len(p.PlayLog) != 1 || p.PlayLog[0].From != 0 || p.PlayLog[0].To != len(part.Samples) {
		t.Fatalf("PlayLog = %+v", p.PlayLog)
	}
}

func TestPositionAdvancesWithClock(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	p.Play(0, 0, nil)
	c.Advance(time.Second)
	got := p.Position()
	want := part.OffsetAt(time.Second)
	if got != want {
		t.Fatalf("Position = %d, want %d", got, want)
	}
}

func TestInterruptResume(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	p.Play(0, 0, nil)
	c.Advance(2 * time.Second)
	pos := p.Interrupt()
	if pos != part.OffsetAt(2*time.Second) {
		t.Fatalf("interrupt at %d", pos)
	}
	if p.Playing() {
		t.Fatal("playing after interrupt")
	}
	// Time passes while interrupted; position must not drift.
	c.Advance(5 * time.Second)
	if p.Position() != pos {
		t.Fatalf("position drifted to %d", p.Position())
	}
	done := false
	if err := p.Resume(func() { done = true }); err != nil {
		t.Fatal(err)
	}
	remaining := part.Duration() - part.TimeAt(pos)
	c.Advance(remaining + time.Millisecond)
	if !done {
		t.Fatal("resume did not complete")
	}
	// Play log covers the two segments contiguously.
	if len(p.PlayLog) != 2 {
		t.Fatalf("PlayLog = %+v", p.PlayLog)
	}
	if p.PlayLog[0].To != pos || p.PlayLog[1].From != pos {
		t.Fatalf("segments not contiguous: %+v", p.PlayLog)
	}
}

func TestPlaySegment(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	from, to := 1000, 3000
	done := false
	p.Play(from, to, func() { done = true })
	segDur := part.TimeAt(to) - part.TimeAt(from)
	c.Advance(segDur - time.Millisecond)
	if done {
		t.Fatal("completed early")
	}
	if pos := p.Position(); pos < from || pos > to {
		t.Fatalf("position %d outside segment", pos)
	}
	c.Advance(2 * time.Millisecond)
	if !done {
		t.Fatal("segment did not complete")
	}
}

func TestPlayReplacesCurrent(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	firstDone := false
	p.Play(0, 0, func() { firstDone = true })
	c.Advance(time.Second)
	p.Play(0, 500, nil) // replace
	c.Advance(part.Duration() * 2)
	if firstDone {
		t.Fatal("replaced playback still fired its callback")
	}
}

func TestInterruptWhenStopped(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	p.Load(testPart(t))
	if got := p.Interrupt(); got != 0 {
		t.Fatalf("Interrupt on idle = %d", got)
	}
}

func TestPlayWithoutPart(t *testing.T) {
	p := NewPlayer(vclock.New())
	if err := p.Play(0, 0, nil); err == nil {
		t.Fatal("Play without part accepted")
	}
	if err := p.Resume(nil); err == nil {
		t.Fatal("Resume without part accepted")
	}
}

func TestResumeWhilePlayingIsNoop(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	p.Load(testPart(t))
	p.Play(0, 0, nil)
	if err := p.Resume(nil); err != nil {
		t.Fatal(err)
	}
	if len(p.PlayLog) != 1 {
		t.Fatal("Resume while playing restarted playback")
	}
}

func TestPlayClampsRange(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	p.Play(-100, len(part.Samples)+100, nil)
	if p.PlayLog[0].From != 0 || p.PlayLog[0].To != len(part.Samples) {
		t.Fatalf("clamped segment = %+v", p.PlayLog[0])
	}
}

func TestLoadDifferentPartStopsPlayback(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	done := false
	p.Play(0, 0, func() { done = true })
	p.Load(&voice.Part{Rate: part.Rate, Samples: part.Samples[:10]}) // new part stops
	if p.Playing() {
		t.Fatal("Load of a different part did not stop playback")
	}
	c.Advance(part.Duration() * 2)
	if done {
		t.Fatal("replaced playback still fired its callback")
	}
}

func TestLoadSamePartPreservesPlayback(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.Load(part)
	done := false
	p.Play(0, 0, func() { done = true })
	c.Advance(time.Second)
	p.Load(part) // idempotent reload: playback continues
	if !p.Playing() {
		t.Fatal("reload of the same part stopped playback")
	}
	c.Advance(part.Duration())
	if !done {
		t.Fatal("completion callback lost across same-part reload")
	}
	if len(p.PlayLog) != 1 {
		t.Fatalf("reload restarted playback: PlayLog = %+v", p.PlayLog)
	}
}

func TestStreamPlayWhileFeeding(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	total := len(part.Samples)
	p.BeginStream(part.Rate, total)
	half := total / 2
	p.Feed(part.Samples[:half])
	done := false
	if err := p.Play(0, 0, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if !p.Playing() {
		t.Fatal("not playing after first chunk")
	}
	// Second half arrives while the first is still playing: no underrun.
	c.Advance(part.TimeAt(half) / 2)
	p.Feed(part.Samples[half:])
	p.FinishStream()
	c.Advance(part.Duration())
	if !done {
		t.Fatal("streamed playback did not complete")
	}
	if p.Underruns() != 0 {
		t.Fatalf("underruns = %d, want 0", p.Underruns())
	}
}

func TestStreamUnderrunStallsAndResumes(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	total := len(part.Samples)
	p.BeginStream(part.Rate, total)
	half := total / 2
	p.Feed(part.Samples[:half])
	done := false
	p.Play(0, 0, func() { done = true })
	// Play past the delivered frontier: the player must stall, not finish.
	c.Advance(part.Duration())
	if done || p.Playing() {
		t.Fatal("playback ran past the delivered samples")
	}
	if p.Underruns() != 1 {
		t.Fatalf("underruns = %d, want 1", p.Underruns())
	}
	if p.Position() != half {
		t.Fatalf("stalled at %d, want frontier %d", p.Position(), half)
	}
	// The late chunk resumes playback from the frontier.
	p.Feed(part.Samples[half:])
	if !p.Playing() {
		t.Fatal("Feed did not resume stalled playback")
	}
	p.FinishStream()
	c.Advance(part.Duration())
	if !done {
		t.Fatal("resumed playback did not complete")
	}
	if n := len(p.PlayLog); n != 2 || p.PlayLog[0].To != half || p.PlayLog[1].From != half {
		t.Fatalf("PlayLog = %+v", p.PlayLog)
	}
}

func TestStreamPlayBeforeAnyChunkStalls(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	p.BeginStream(part.Rate, len(part.Samples))
	done := false
	p.Play(0, 0, func() { done = true })
	if p.Playing() {
		t.Fatal("playing with zero samples delivered")
	}
	if p.Underruns() != 1 {
		t.Fatalf("underruns = %d, want 1", p.Underruns())
	}
	p.Feed(part.Samples)
	if !p.Playing() {
		t.Fatal("first Feed did not start stalled playback")
	}
	p.FinishStream()
	c.Advance(part.Duration())
	if !done {
		t.Fatal("playback did not complete")
	}
}

func TestFinishStreamShortCompletesAtRealEnd(t *testing.T) {
	c := vclock.New()
	p := NewPlayer(c)
	part := testPart(t)
	total := len(part.Samples)
	p.BeginStream(part.Rate, total) // claims total...
	half := total / 2
	p.Feed(part.Samples[:half])
	done := false
	p.Play(0, 0, func() { done = true })
	c.Advance(part.Duration())
	if done {
		t.Fatal("completed before stream end")
	}
	p.FinishStream() // ...but ends at half: the stall resolves as completion
	if !done {
		t.Fatal("short stream did not complete at its real end")
	}
}
