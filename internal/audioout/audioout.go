// Package audioout simulates the workstation's voice output device. It
// plays voice.Part sample streams in virtual time (vclock), supporting the
// §2 voice browsing primitives: interrupt, resume from the interrupted
// position, resume from a given offset, and position queries while playing.
package audioout

import (
	"fmt"
	"time"

	"minos/internal/vclock"
	"minos/internal/voice"
)

// Player is a single-channel voice output device.
type Player struct {
	clock *vclock.Clock
	part  *voice.Part

	playing   bool
	startPos  int
	endPos    int
	startedAt time.Duration
	timer     *vclock.Timer
	onDone    func()

	// PlayLog records every contiguous segment the device actually
	// emitted (useful for asserting logical-message and tour semantics).
	PlayLog []Played
}

// Played is one emitted segment.
type Played struct {
	From, To int
	At       time.Duration // virtual start time
}

// NewPlayer builds a player on the clock.
func NewPlayer(clock *vclock.Clock) *Player {
	return &Player{clock: clock}
}

// Load selects the part to play, stopping any current playback.
func (p *Player) Load(part *voice.Part) {
	p.stopTimer()
	p.playing = false
	p.part = part
}

// Part returns the loaded part.
func (p *Player) Part() *voice.Part { return p.part }

// Playing reports whether the device is emitting.
func (p *Player) Playing() bool { return p.playing }

// Play starts emitting samples [from, to); to <= 0 means end of part.
// onDone (may be nil) fires on the clock when the segment completes. Any
// current playback is replaced.
func (p *Player) Play(from, to int, onDone func()) error {
	if p.part == nil {
		return fmt.Errorf("audioout: no part loaded")
	}
	n := len(p.part.Samples)
	if to <= 0 || to > n {
		to = n
	}
	if from < 0 {
		from = 0
	}
	if from > to {
		from = to
	}
	p.stopTimer()
	p.playing = true
	p.startPos = from
	p.endPos = to
	p.startedAt = p.clock.Now()
	p.onDone = onDone
	p.PlayLog = append(p.PlayLog, Played{From: from, To: to, At: p.startedAt})
	dur := p.part.TimeAt(to) - p.part.TimeAt(from)
	p.timer = p.clock.AfterFunc(dur, func() {
		p.playing = false
		p.timer = nil
		if p.onDone != nil {
			done := p.onDone
			p.onDone = nil
			done()
		}
	})
	return nil
}

func (p *Player) stopTimer() {
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	p.onDone = nil
}

// Position returns the current sample offset: live while playing, the
// interrupted/finished position otherwise.
func (p *Player) Position() int {
	if p.part == nil {
		return 0
	}
	if !p.playing {
		return p.startPos
	}
	elapsed := p.clock.Now() - p.startedAt
	pos := p.startPos + p.part.OffsetAt(elapsed)
	if pos > p.endPos {
		pos = p.endPos
	}
	return pos
}

// Interrupt stops playback, keeping the current position for Resume; it
// returns that position. Interrupting a stopped player is a no-op.
func (p *Player) Interrupt() int {
	if !p.playing {
		return p.startPos
	}
	pos := p.Position()
	p.stopTimer()
	p.playing = false
	// Truncate the play log entry to what was actually emitted.
	if n := len(p.PlayLog); n > 0 && p.PlayLog[n-1].To > pos {
		p.PlayLog[n-1].To = pos
	}
	p.startPos = pos
	return pos
}

// Resume continues playback from the interrupted position to the previous
// segment end (or the part end if that end was already reached).
func (p *Player) Resume(onDone func()) error {
	if p.part == nil {
		return fmt.Errorf("audioout: no part loaded")
	}
	if p.playing {
		return nil
	}
	to := p.endPos
	if to <= p.startPos {
		to = len(p.part.Samples)
	}
	return p.Play(p.startPos, to, onDone)
}
