// Package audioout simulates the workstation's voice output device. It
// plays voice.Part sample streams in virtual time (vclock), supporting the
// §2 voice browsing primitives: interrupt, resume from the interrupted
// position, resume from a given offset, and position queries while playing.
//
// Parts may also arrive incrementally (the streaming delivery path):
// BeginStream declares an expected sample count, Feed appends samples as
// chunks land, and playback started before the last chunk keeps emitting as
// long as delivery stays ahead of the play head. When it does not, the
// player records a buffer underrun and stalls deterministically until the
// next Feed — under vclock the underrun count is a bit-exact measurement,
// not a race.
package audioout

import (
	"fmt"
	"time"

	"minos/internal/vclock"
	"minos/internal/voice"
)

// Player is a single-channel voice output device.
type Player struct {
	clock *vclock.Clock
	part  *voice.Part

	playing   bool
	startPos  int
	endPos    int
	startedAt time.Duration
	timer     *vclock.Timer
	onDone    func()

	// Streaming state: a part being fed incrementally. stalled marks
	// playback paused at the delivery frontier waiting for the next Feed.
	streaming   bool
	streamTotal int
	stalled     bool
	underruns   int

	// PlayLog records every contiguous segment the device actually
	// emitted (useful for asserting logical-message and tour semantics).
	PlayLog []Played
}

// Played is one emitted segment.
type Played struct {
	From, To int
	At       time.Duration // virtual start time
}

// NewPlayer builds a player on the clock.
func NewPlayer(clock *vclock.Clock) *Player {
	return &Player{clock: clock}
}

// Load selects the part to play, stopping any current playback. Reloading
// the part already loaded is a no-op that preserves playback state —
// position, running timer, stall — so an idempotent re-load (a browse step
// revisited, a stream resumed after shard failover) cannot silently kill
// the audio it is supposed to continue.
func (p *Player) Load(part *voice.Part) {
	if part != nil && part == p.part {
		return
	}
	p.stopTimer()
	p.playing = false
	p.streaming = false
	p.stalled = false
	p.part = part
}

// BeginStream prepares the player for incremental delivery: a fresh part
// with the given rate is installed, total is the expected sample count, and
// Feed appends chunks as they arrive. Play may be called as soon as the
// first chunk is fed — that is the whole point of the streaming path.
func (p *Player) BeginStream(rate, total int) {
	p.stopTimer()
	p.playing = false
	p.stalled = false
	p.streaming = true
	p.streamTotal = total
	p.part = &voice.Part{Rate: rate, Samples: make([]int16, 0, total)}
}

// Feed appends streamed samples (the slice is copied; the caller keeps
// ownership, so pooled chunk buffers can be recycled after the call). A
// playback stalled on an underrun resumes at the moment of the feed.
func (p *Player) Feed(samples []int16) {
	if !p.streaming || p.part == nil {
		return
	}
	p.part.Samples = append(p.part.Samples, samples...)
	if p.stalled {
		p.stalled = false
		p.schedule(p.startPos, p.endPos)
	}
}

// FinishStream marks the end of incremental delivery: what has been fed is
// the whole part. A playback waiting past the delivered end (the stream was
// cut short) completes at the real end instead of stalling forever.
func (p *Player) FinishStream() {
	if !p.streaming {
		return
	}
	p.streaming = false
	p.streamTotal = len(p.part.Samples)
	if p.endPos > len(p.part.Samples) {
		p.endPos = len(p.part.Samples)
	}
	if p.stalled {
		p.stalled = false
		if p.startPos < p.endPos {
			p.schedule(p.startPos, p.endPos)
			return
		}
		// The stall position is the real end: the segment is complete.
		if p.onDone != nil {
			done := p.onDone
			p.onDone = nil
			done()
		}
	}
}

// Streaming reports whether the player is between BeginStream and
// FinishStream.
func (p *Player) Streaming() bool { return p.streaming }

// Underruns returns the number of times playback exhausted the delivered
// samples and had to stall for the next Feed.
func (p *Player) Underruns() int { return p.underruns }

// Part returns the loaded part.
func (p *Player) Part() *voice.Part { return p.part }

// Playing reports whether the device is emitting.
func (p *Player) Playing() bool { return p.playing }

// Play starts emitting samples [from, to); to <= 0 means end of part (the
// expected stream end while streaming). onDone (may be nil) fires on the
// clock when the segment completes. Any current playback is replaced.
func (p *Player) Play(from, to int, onDone func()) error {
	if p.part == nil {
		return fmt.Errorf("audioout: no part loaded")
	}
	n := len(p.part.Samples)
	if p.streaming && p.streamTotal > n {
		n = p.streamTotal
	}
	if to <= 0 || to > n {
		to = n
	}
	if from < 0 {
		from = 0
	}
	if from > to {
		from = to
	}
	p.stopTimer()
	p.stalled = false
	p.onDone = onDone
	p.schedule(from, to)
	return nil
}

// schedule starts (or resumes) emission of [from, to), bounded by the
// samples actually delivered so far. Reaching the delivery frontier before
// to is a buffer underrun: the player stalls — deterministically, on the
// clock — and the next Feed resumes from the frontier.
func (p *Player) schedule(from, to int) {
	p.startPos = from
	p.endPos = to
	limit := to
	if avail := len(p.part.Samples); limit > avail {
		limit = avail
	}
	if from >= limit && limit < to {
		// Nothing deliverable at the play head yet.
		p.underruns++
		p.stalled = true
		p.playing = false
		p.startPos = from
		return
	}
	p.playing = true
	p.startedAt = p.clock.Now()
	p.PlayLog = append(p.PlayLog, Played{From: from, To: limit, At: p.startedAt})
	dur := p.part.TimeAt(limit) - p.part.TimeAt(from)
	p.timer = p.clock.AfterFunc(dur, func() {
		p.timer = nil
		p.playing = false
		if limit < p.endPos {
			if len(p.part.Samples) > limit {
				// More samples landed while this segment played: continue
				// seamlessly from the old frontier. Not an underrun — the
				// device never went hungry.
				p.schedule(limit, p.endPos)
				return
			}
			// Delivery fell behind the play head: stall until more samples
			// are fed (or the stream finishes and clamps the end).
			p.underruns++
			p.stalled = true
			p.startPos = limit
			return
		}
		if p.onDone != nil {
			done := p.onDone
			p.onDone = nil
			done()
		}
	})
}

func (p *Player) stopTimer() {
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	p.onDone = nil
}

// Position returns the current sample offset: live while playing, the
// interrupted/finished position otherwise.
func (p *Player) Position() int {
	if p.part == nil {
		return 0
	}
	if !p.playing {
		return p.startPos
	}
	elapsed := p.clock.Now() - p.startedAt
	pos := p.startPos + p.part.OffsetAt(elapsed)
	if pos > p.endPos {
		pos = p.endPos
	}
	return pos
}

// Interrupt stops playback, keeping the current position for Resume; it
// returns that position. Interrupting a stopped player is a no-op; a
// stalled stream playback is un-stalled (its position is the frontier).
func (p *Player) Interrupt() int {
	if !p.playing {
		p.stalled = false
		return p.startPos
	}
	pos := p.Position()
	p.stopTimer()
	p.playing = false
	// Truncate the play log entry to what was actually emitted.
	if n := len(p.PlayLog); n > 0 && p.PlayLog[n-1].To > pos {
		p.PlayLog[n-1].To = pos
	}
	p.startPos = pos
	return pos
}

// Resume continues playback from the interrupted position to the previous
// segment end (or the part end if that end was already reached).
func (p *Player) Resume(onDone func()) error {
	if p.part == nil {
		return fmt.Errorf("audioout: no part loaded")
	}
	if p.playing {
		return nil
	}
	to := p.endPos
	if to <= p.startPos {
		to = len(p.part.Samples)
		if p.streaming && p.streamTotal > to {
			to = p.streamTotal
		}
	}
	return p.Play(p.startPos, to, onDone)
}
