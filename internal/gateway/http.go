// HTTP transport over the Hub: the endpoint surface a browser (or the
// in-repo test client) speaks. Browse steps and progressive passes are
// pushed over WebSocket (ws.go) with an SSE fallback for clients that
// cannot upgrade; PNGs are fetched by URL or pushed as binary WS frames.
//
// Endpoints (also tabulated in the repo's doc.go):
//
//	POST   /session                     open a session        -> {"session":id}
//	DELETE /session/{sid}               close it
//	POST   /session/{sid}/query?q=...   content query         -> {"hits":n}
//	GET    /session/{sid}/query?q=...   planned query (kind:/after:/before:
//	                                    predicates allowed)   -> {"hits":n}
//	POST   /session/{sid}/step?dir=next|prev                  -> step event JSON
//	POST   /session/{sid}/open?obj=N    present an object     -> opened event JSON
//	POST   /session/{sid}/progressive?obj=N  stream passes to subscribers
//	GET    /session/{sid}/mini/{obj}.png     miniature (cached encode)
//	GET    /session/{sid}/view.png           current screen render
//	GET    /session/{sid}/ws            WebSocket: push + text commands
//	GET    /session/{sid}/events        SSE push fallback
//	GET    /metrics                     gateway + backend counters
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"minos/internal/index"
	"minos/internal/object"
)

// Server straps the HTTP endpoint surface onto a Hub.
type Server struct {
	hub *Hub
	mux *http.ServeMux
}

// NewServer builds the HTTP layer over a Hub.
func NewServer(h *Hub) *Server {
	s := &Server{hub: h, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /session", s.handleOpen)
	s.mux.HandleFunc("DELETE /session/{sid}", s.handleClose)
	s.mux.HandleFunc("POST /session/{sid}/query", s.handleQuery)
	s.mux.HandleFunc("GET /session/{sid}/query", s.handleQueryPlanned)
	s.mux.HandleFunc("POST /session/{sid}/step", s.handleStep)
	s.mux.HandleFunc("POST /session/{sid}/open", s.handleOpenObject)
	s.mux.HandleFunc("POST /session/{sid}/progressive", s.handleProgressive)
	s.mux.HandleFunc("GET /session/{sid}/mini/{obj}", s.handleMiniPNG)
	s.mux.HandleFunc("GET /session/{sid}/view.png", s.handleViewPNG)
	s.mux.HandleFunc("GET /session/{sid}/ws", s.handleWS)
	s.mux.HandleFunc("GET /session/{sid}/events", s.handleSSE)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// sid parses the session id path segment.
func sid(r *http.Request) (uint64, error) {
	return strconv.ParseUint(r.PathValue("sid"), 10, 64)
}

// fail maps Hub errors onto HTTP statuses. Shed and session-limit both
// answer 503 with Retry-After — the browser-side contract is "back off
// and come back", exactly the wire client's busy semantics.
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoSession):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBusy), errors.Is(err, ErrSessionLimit):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// admit wraps a backend-bound handler span in the fair-share gate.
func (s *Server) admit(w http.ResponseWriter, id uint64, fn func() error) {
	release, ok := s.hub.Admission().Admit(id)
	if !ok {
		fail(w, ErrBusy)
		return
	}
	defer release()
	if err := fn(); err != nil {
		fail(w, err)
	}
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	id, err := s.hub.Open()
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, map[string]uint64{"session": id})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	if err := s.hub.CloseSession(id); err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	terms := strings.Fields(r.URL.Query().Get("q"))
	if len(terms) == 0 {
		http.Error(w, "q required", http.StatusBadRequest)
		return
	}
	s.admit(w, id, func() error {
		n, err := s.hub.Query(r.Context(), id, terms...)
		if err != nil {
			return err
		}
		writeJSON(w, map[string]int{"hits": n})
		return nil
	})
}

// handleQueryPlanned serves the planned-query endpoint: the q parameter is
// parsed by the index query grammar, so besides plain terms it accepts
// kind:visual|audio, after:YYYY-MM-DD and before:YYYY-MM-DD predicates,
// pushed down to the backend's segmented index.
func (s *Server) handleQueryPlanned(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	raw := r.URL.Query().Get("q")
	if strings.TrimSpace(raw) == "" {
		http.Error(w, "q required", http.StatusBadRequest)
		return
	}
	q, err := index.ParseQuery(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.admit(w, id, func() error {
		n, err := s.hub.QueryPlanned(r.Context(), id, q)
		if err != nil {
			return err
		}
		writeJSON(w, map[string]int{"hits": n})
		return nil
	})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	dir := 1
	if r.URL.Query().Get("dir") == "prev" {
		dir = -1
	}
	s.admit(w, id, func() error {
		ev, err := s.hub.Step(r.Context(), id, dir)
		if err != nil {
			return err
		}
		writeJSON(w, ev)
		return nil
	})
}

func (s *Server) handleOpenObject(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	obj, err := strconv.ParseUint(r.URL.Query().Get("obj"), 10, 64)
	if err != nil {
		http.Error(w, "obj required", http.StatusBadRequest)
		return
	}
	s.admit(w, id, func() error {
		ev, err := s.hub.OpenObject(r.Context(), id, object.ID(obj))
		if err != nil {
			return err
		}
		writeJSON(w, ev)
		return nil
	})
}

func (s *Server) handleProgressive(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	obj, err := strconv.ParseUint(r.URL.Query().Get("obj"), 10, 64)
	if err != nil {
		http.Error(w, "obj required", http.StatusBadRequest)
		return
	}
	s.admit(w, id, func() error {
		pp, err := s.hub.Progressive(r.Context(), id, object.ID(obj))
		if err != nil {
			return err
		}
		writeJSON(w, map[string]any{"streamed": pp.Streamed, "passes": pp.Passes})
		return nil
	})
}

func (s *Server) handleMiniPNG(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	name, ok := strings.CutSuffix(r.PathValue("obj"), ".png")
	if !ok {
		http.Error(w, "want <obj>.png", http.StatusNotFound)
		return
	}
	obj, err := strconv.ParseUint(name, 10, 64)
	if err != nil {
		http.Error(w, "bad object id", http.StatusBadRequest)
		return
	}
	s.admit(w, id, func() error {
		data, err := s.hub.MiniaturePNG(r.Context(), id, object.ID(obj))
		if err != nil {
			return err
		}
		w.Header().Set("Content-Type", "image/png")
		w.Write(data)
		return nil
	})
}

func (s *Server) handleViewPNG(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	data, err := s.hub.ViewPNG(id)
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Write(data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.hub.WriteMetrics(r.Context(), w)
}

// handleWS upgrades to WebSocket. Push events arrive as a JSON text frame
// followed, when the event carries an image, by one binary frame with the
// PNG. The client may drive the browse over the same socket with text
// commands: "query <terms>", "next", "prev", "open <obj>",
// "progressive <obj>". Command errors come back as {"kind":"error"} text
// frames; admission sheds as {"kind":"busy"}.
func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	events, cancel, err := s.hub.Subscribe(id)
	if err != nil {
		fail(w, err)
		return
	}
	conn, rw, err := wsHandshake(w, r)
	if err != nil {
		cancel()
		return
	}
	ws := newWSConn(conn, rw.Reader)
	defer conn.Close()
	defer cancel()

	// Writer: one goroutine owns pushes so event JSON and its binary PNG
	// frame stay adjacent (wsConn serializes individual frames, not pairs).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			text, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if err := ws.WriteMessage(wsOpText, text); err != nil {
				return
			}
			if len(ev.PNG) > 0 {
				if err := ws.WriteMessage(wsOpBinary, ev.PNG); err != nil {
					return
				}
			}
		}
	}()

	for {
		op, payload, err := ws.ReadMessage()
		if err != nil {
			break
		}
		if op != wsOpText {
			continue
		}
		if err := s.wsCommand(r.Context(), ws, id, string(payload)); err != nil {
			break
		}
	}
	cancel() // closes the events channel path; writer drains and exits
	<-done
}

// wsCommand executes one text command from the socket. Only transport
// failures return an error (and drop the connection); command failures are
// reported to the client in-band.
func (s *Server) wsCommand(ctx context.Context, ws *wsConn, id uint64, cmd string) error {
	reply := func(v any) error {
		text, err := json.Marshal(v)
		if err != nil {
			return err
		}
		return ws.WriteMessage(wsOpText, text)
	}
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return nil
	}
	release, ok := s.hub.Admission().Admit(id)
	if !ok {
		return reply(map[string]string{"kind": "busy"})
	}
	defer release()
	var err error
	switch fields[0] {
	case "query":
		var n int
		n, err = s.hub.Query(ctx, id, fields[1:]...)
		if err == nil {
			return reply(map[string]any{"kind": "hits", "hits": n})
		}
	case "next":
		_, err = s.hub.Step(ctx, id, 1)
	case "prev":
		_, err = s.hub.Step(ctx, id, -1)
	case "open", "progressive":
		if len(fields) < 2 {
			return reply(map[string]string{"kind": "error", "error": "object id required"})
		}
		var obj uint64
		obj, err = strconv.ParseUint(fields[1], 10, 64)
		if err == nil {
			if fields[0] == "open" {
				_, err = s.hub.OpenObject(ctx, id, object.ID(obj))
			} else {
				_, err = s.hub.Progressive(ctx, id, object.ID(obj))
			}
		}
	default:
		return reply(map[string]string{"kind": "error", "error": "unknown command " + fields[0]})
	}
	if err != nil {
		return reply(map[string]string{"kind": "error", "error": err.Error()})
	}
	// Successful step/open/progressive results reach the client through
	// the push fan-out; no direct reply needed.
	return nil
}

// handleSSE is the push fallback for clients that cannot speak WebSocket:
// the same JSON events as text/event-stream, PNGs by Href fetch.
func (s *Server) handleSSE(w http.ResponseWriter, r *http.Request) {
	id, err := sid(r)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	events, cancel, err := s.hub.Subscribe(id)
	if err != nil {
		fail(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			text, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, text)
			fl.Flush()
		}
	}
}
