package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"minos/internal/cluster"
	"minos/internal/demo"
	"minos/internal/object"
	"minos/internal/pool"
	"minos/internal/wire"
	"minos/internal/workstation"
)

// demoBackends builds n wire clients over one in-process demo corpus.
func demoBackends(t *testing.T, n int) []workstation.Backend {
	t.Helper()
	c, err := demo.Build(1<<15, 40)
	if err != nil {
		t.Fatalf("demo.Build: %v", err)
	}
	backends := make([]workstation.Backend, n)
	for i := range backends {
		backends[i] = wire.NewClient(&wire.LocalTransport{H: &wire.Handler{Srv: c.Server}})
	}
	t.Cleanup(func() {
		for _, be := range backends {
			be.Close()
		}
	})
	return backends
}

// fleetBackends builds n routed cluster clients over a `shards`-wide
// in-process fleet holding the standard sharded corpus.
func fleetBackends(t *testing.T, n, shards int) []workstation.Backend {
	t.Helper()
	sh, err := demo.BuildSharded(1<<15, 40, shards, cluster.DefaultVnodes)
	if err != nil {
		t.Fatalf("demo.BuildSharded: %v", err)
	}
	m := &cluster.Map{Epoch: 1, Vnodes: cluster.DefaultVnodes}
	handlers := map[string]*wire.Handler{}
	for i, srv := range sh.Servers {
		name := fmt.Sprintf("shard%d", i)
		handlers[name] = &wire.Handler{Srv: srv}
		m.Shards = append(m.Shards, cluster.Shard{ID: i, Primary: name})
	}
	enc := m.Encode()
	for _, srv := range sh.Servers {
		srv.SetClusterMap(m.Epoch, enc)
	}
	dial := func(ep string) (wire.Transport, error) {
		h, ok := handlers[ep]
		if !ok {
			return nil, fmt.Errorf("unknown endpoint %s", ep)
		}
		return &wire.LocalTransport{H: h}, nil
	}
	backends := make([]workstation.Backend, n)
	for i := range backends {
		cc, err := cluster.Dial("shard0", dial)
		if err != nil {
			t.Fatalf("cluster.Dial: %v", err)
		}
		backends[i] = cc
	}
	t.Cleanup(func() {
		for _, be := range backends {
			be.Close()
		}
	})
	return backends
}

func newTestHub(t *testing.T, backends []workstation.Backend) *Hub {
	t.Helper()
	h, err := New(Config{Backends: backends})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// browseScript drives one canonical browse through the HTTP surface and
// returns the observable outcome: query hits and the object each step
// landed on. Used to prove fleet width is invisible above the Backend
// seam.
func browseScript(t *testing.T, ts *httptest.Server) (hits int, stepped []object.ID) {
	t.Helper()
	post := func(path string) []byte {
		resp, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %s", path, resp.StatusCode, body)
		}
		return body
	}
	var open map[string]uint64
	if err := json.Unmarshal(post("/session"), &open); err != nil {
		t.Fatalf("open response: %v", err)
	}
	sid := open["session"]
	var q map[string]int
	if err := json.Unmarshal(post(fmt.Sprintf("/session/%d/query?q=hospital", sid)), &q); err != nil {
		t.Fatalf("query response: %v", err)
	}
	for i := 0; i < 5; i++ {
		var ev Event
		if err := json.Unmarshal(post(fmt.Sprintf("/session/%d/step?dir=next", sid)), &ev); err != nil {
			t.Fatalf("step response: %v", err)
		}
		if ev.Done {
			break
		}
		if ev.Kind != "step" || ev.Obj == 0 {
			t.Fatalf("bad step event: %+v", ev)
		}
		stepped = append(stepped, ev.Obj)
	}
	return q["hits"], stepped
}

// TestGatewayBrowseHTTP walks the whole HTTP surface end-to-end against a
// single-server backend pool: open, query, step, miniature PNG, open
// object, view PNG, metrics, close.
func TestGatewayBrowseHTTP(t *testing.T) {
	hub := newTestHub(t, demoBackends(t, 2))
	ts := httptest.NewServer(NewServer(hub))
	defer ts.Close()

	hits, stepped := browseScript(t, ts)
	if hits == 0 || len(stepped) == 0 {
		t.Fatalf("browse made no progress: hits=%d steps=%d", hits, len(stepped))
	}

	get := func(path string, wantType string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
			t.Fatalf("GET %s: content type %q, want %q", path, ct, wantType)
		}
		return body
	}
	pngMagic := []byte{0x89, 'P', 'N', 'G'}
	mini := get(fmt.Sprintf("/session/1/mini/%d.png", stepped[0]), "image/png")
	if !bytes.HasPrefix(mini, pngMagic) {
		t.Fatal("miniature response is not a PNG")
	}
	// Opening the stepped object renders it onto the session screen.
	resp, err := http.Post(fmt.Sprintf("%s/session/1/open?obj=%d", ts.URL, stepped[0]), "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("open object: %v status %v", err, resp)
	}
	resp.Body.Close()
	if view := get("/session/1/view.png", "image/png"); !bytes.HasPrefix(view, pngMagic) {
		t.Fatal("view response is not a PNG")
	}

	metrics := string(get("/metrics", "text/plain"))
	for _, want := range []string{
		"gateway_sessions_active 1",
		"gateway_steps",
		"gateway_png_cache_hits",
		`backend_up{backend="0"} 1`,
		`backend_up{backend="1"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close session: %v status %v", err, dresp)
	}
	dresp.Body.Close()
	if hub.Stats().SessionsActive != 0 {
		t.Fatal("session still active after DELETE")
	}
}

// TestGatewayFleetWidths runs the identical browse against 1-shard and
// 4-shard fleet backends: the observable outcome must match — the
// acceptance claim that fleet width never leaks above the Backend seam.
func TestGatewayFleetWidths(t *testing.T) {
	var baseHits int
	var baseSteps []object.ID
	for i, shards := range []int{1, 4} {
		hub := newTestHub(t, fleetBackends(t, 2, shards))
		ts := httptest.NewServer(NewServer(hub))
		hits, stepped := browseScript(t, ts)
		ts.Close()
		if len(stepped) == 0 {
			t.Fatalf("shards=%d: no steps", shards)
		}
		if i == 0 {
			baseHits, baseSteps = hits, stepped
			continue
		}
		if hits != baseHits {
			t.Fatalf("hits diverge across widths: %d vs %d", baseHits, hits)
		}
		if fmt.Sprint(baseSteps) != fmt.Sprint(stepped) {
			t.Fatalf("step trace diverges across widths:\n1 shard:  %v\n%d shards: %v", baseSteps, shards, stepped)
		}
	}
}

// TestWarmPNGAllocGuard is the acceptance alloc guard: once a
// miniature's encoding is cached, serving it again must touch no pooled
// pixel buffers — neither a Get (alloc or recycle) nor a Put.
func TestWarmPNGAllocGuard(t *testing.T) {
	hub := newTestHub(t, demoBackends(t, 1))
	ctx := context.Background()
	sid, err := hub.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := hub.Query(ctx, sid, "hospital"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	ev, err := hub.Step(ctx, sid, 1)
	if err != nil || ev.Done {
		t.Fatalf("Step: %v done=%v", err, ev.Done)
	}
	// First serve warmed the cache (via the step above); re-serving must
	// return the identical shared bytes without pool traffic.
	first, err := hub.MiniaturePNG(ctx, sid, ev.Obj)
	if err != nil {
		t.Fatalf("MiniaturePNG: %v", err)
	}
	allocs0, recycled0 := pool.Counters()
	for i := 0; i < 50; i++ {
		data, err := hub.MiniaturePNG(ctx, sid, ev.Obj)
		if err != nil {
			t.Fatalf("warm MiniaturePNG: %v", err)
		}
		if &data[0] != &first[0] {
			t.Fatal("warm serve returned a copy, not the shared cached bytes")
		}
	}
	allocs1, recycled1 := pool.Counters()
	if allocs1 != allocs0 || recycled1 != recycled0 {
		t.Fatalf("warm serves touched the pool: allocs %d->%d, recycled %d->%d",
			allocs0, allocs1, recycled0, recycled1)
	}
	st := hub.Stats()
	if st.PNGHits == 0 {
		t.Fatalf("no PNG cache hits recorded: %+v", st)
	}
}

// TestGatewayWSBrowse drives a browse over the real WebSocket surface: a
// raw TCP client upgrades, issues text commands, and receives the JSON
// event and its binary PNG frame.
func TestGatewayWSBrowse(t *testing.T) {
	hub := newTestHub(t, demoBackends(t, 1))
	ts := httptest.NewServer(NewServer(hub))
	defer ts.Close()

	sid, err := hub.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "GET /session/%d/ws HTTP/1.1\r\nHost: gw\r\nConnection: Upgrade\r\nUpgrade: websocket\r\nSec-WebSocket-Version: 13\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n", sid)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		t.Fatalf("handshake status %q (%v)", status, err)
	}
	sawAccept := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("handshake headers: %v", err)
		}
		if strings.HasPrefix(line, "Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=") {
			sawAccept = true
		}
		if line == "\r\n" {
			break
		}
	}
	if !sawAccept {
		t.Fatal("handshake missing the accept key")
	}

	mask := [4]byte{0xaa, 0xbb, 0xcc, 0xdd}
	send := func(cmd string) {
		if _, err := conn.Write(appendWSFrameMasked(nil, true, wsOpText, mask, []byte(cmd))); err != nil {
			t.Fatalf("send %q: %v", cmd, err)
		}
	}
	recvText := func() map[string]any {
		op, payload := readServerFrame(t, br)
		if op != wsOpText {
			t.Fatalf("expected text frame, got opcode %d", op)
		}
		var m map[string]any
		if err := json.Unmarshal(payload, &m); err != nil {
			t.Fatalf("bad event JSON %q: %v", payload, err)
		}
		return m
	}

	send("query hospital")
	if m := recvText(); m["kind"] != "hits" || m["hits"].(float64) == 0 {
		t.Fatalf("query reply: %v", m)
	}
	send("next")
	ev := recvText()
	if ev["kind"] != "step" {
		t.Fatalf("push event: %v", ev)
	}
	op, png := readServerFrame(t, br)
	if op != wsOpBinary || !bytes.HasPrefix(png, []byte{0x89, 'P', 'N', 'G'}) {
		t.Fatalf("push PNG frame: opcode %d, %d bytes", op, len(png))
	}
	send("bogus")
	if m := recvText(); m["kind"] != "error" {
		t.Fatalf("unknown command reply: %v", m)
	}
	// Clean close: server echoes the close frame.
	conn.Write(appendWSFrameMasked(nil, true, wsOpClose, mask, nil))
	if op, _ := readServerFrame(t, br); op != wsOpClose {
		t.Fatalf("close echoed with opcode %d", op)
	}
}

// TestGatewaySSE checks the fallback push path: a subscribed SSE client
// sees the step event another transport triggers.
func TestGatewaySSE(t *testing.T) {
	hub := newTestHub(t, demoBackends(t, 1))
	ts := httptest.NewServer(NewServer(hub))
	defer ts.Close()

	ctx := context.Background()
	sid, err := hub.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := hub.Query(ctx, sid, "hospital"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet, fmt.Sprintf("%s/session/%d/events", ts.URL, sid), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	// The subscription is attached once the handler flushes headers, which
	// Do has already observed; a step now must be pushed.
	if _, err := hub.Step(ctx, sid, 1); err != nil {
		t.Fatalf("Step: %v", err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("SSE stream closed before the step event")
			}
			if line == "event: step" {
				return
			}
		case <-deadline:
			t.Fatal("no step event on the SSE stream within 10s")
		}
	}
}
