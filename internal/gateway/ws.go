// Minimal server-side RFC 6455 WebSocket: handshake, frame codec, and a
// message-level wrapper. The repo is dependency-free, so the subset the
// gateway needs is implemented here rather than imported: HTTP/1.1 upgrade
// with the accept-key digest, masked client->server frames, unmasked
// server->client frames, 16/64-bit extended lengths, close/ping/pong
// control frames and continuation coalescing. No extensions, no
// subprotocols, no compression.
package gateway

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// wsGUID is the key-digest constant of RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket opcodes (RFC 6455 §5.2).
const (
	wsOpContinuation = 0x0
	wsOpText         = 0x1
	wsOpBinary       = 0x2
	wsOpClose        = 0x8
	wsOpPing         = 0x9
	wsOpPong         = 0xA
)

// wsMaxPayload bounds a single message reassembled from frames; the
// gateway's client->server traffic is short commands, so anything larger
// is a protocol violation, not a use case.
const wsMaxPayload = 1 << 20

// Frame-codec errors. The read side fails closed: any violation tears the
// connection down rather than guessing at resynchronization.
var (
	errWSReserved    = errors.New("gateway: ws frame uses reserved bits")
	errWSUnmasked    = errors.New("gateway: unmasked client frame")
	errWSControlLen  = errors.New("gateway: control frame over 125 bytes")
	errWSControlFrag = errors.New("gateway: fragmented control frame")
	errWSBadOpcode   = errors.New("gateway: reserved opcode")
	errWSTooBig      = errors.New("gateway: ws message too large")
	errWSBadCont     = errors.New("gateway: continuation without start frame")
	errWSBadLen      = errors.New("gateway: non-minimal or oversized length")
)

// wsAcceptKey computes the Sec-WebSocket-Accept digest for a client key.
func wsAcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// wsHandshake validates an upgrade request and hijacks the connection,
// answering 101. On failure it writes the error status itself and returns
// a nil conn.
func wsHandshake(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.ReadWriter, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: GET required", http.StatusMethodNotAllowed)
		return nil, nil, fmt.Errorf("gateway: ws handshake: method %s", r.Method)
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket: upgrade required", http.StatusBadRequest)
		return nil, nil, errors.New("gateway: ws handshake: not an upgrade")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "websocket: version 13 required", http.StatusUpgradeRequired)
		return nil, nil, errors.New("gateway: ws handshake: bad version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing key", http.StatusBadRequest)
		return nil, nil, errors.New("gateway: ws handshake: missing key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: unsupported transport", http.StatusInternalServerError)
		return nil, nil, errors.New("gateway: ws handshake: not hijackable")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, nil, fmt.Errorf("gateway: ws hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, rw, nil
}

// headerHasToken reports whether a comma-separated header contains the
// token (case-insensitive) — Connection can legitimately be
// "keep-alive, Upgrade".
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// wsFrame is one decoded frame.
type wsFrame struct {
	fin     bool
	opcode  byte
	payload []byte
}

// appendWSFrame appends one unmasked (server->client) frame to dst.
func appendWSFrame(dst []byte, fin bool, opcode byte, payload []byte) []byte {
	b0 := opcode & 0x0f
	if fin {
		b0 |= 0x80
	}
	dst = append(dst, b0)
	switch n := len(payload); {
	case n < 126:
		dst = append(dst, byte(n))
	case n < 1<<16:
		dst = append(dst, 126, byte(n>>8), byte(n))
	default:
		dst = append(dst, 127)
		dst = binary.BigEndian.AppendUint64(dst, uint64(n))
	}
	return append(dst, payload...)
}

// appendWSFrameMasked appends one masked (client->server) frame — the
// gateway never sends these, but its tests and in-repo test clients do.
func appendWSFrameMasked(dst []byte, fin bool, opcode byte, mask [4]byte, payload []byte) []byte {
	b0 := opcode & 0x0f
	if fin {
		b0 |= 0x80
	}
	dst = append(dst, b0)
	switch n := len(payload); {
	case n < 126:
		dst = append(dst, 0x80|byte(n))
	case n < 1<<16:
		dst = append(dst, 0x80|126, byte(n>>8), byte(n))
	default:
		dst = append(dst, 0x80|127)
		dst = binary.BigEndian.AppendUint64(dst, uint64(n))
	}
	dst = append(dst, mask[:]...)
	for i, b := range payload {
		dst = append(dst, b^mask[i&3])
	}
	return dst
}

// readWSFrame decodes one client frame. Violations (reserved bits, missing
// mask, oversized control frames, non-minimal lengths) are errors; a
// truncated stream surfaces as io.ErrUnexpectedEOF (io.EOF only on a clean
// boundary before any header byte).
func readWSFrame(br *bufio.Reader, maxPayload int) (wsFrame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return wsFrame{}, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(br, hdr[1:2]); err != nil {
		return wsFrame{}, unexpected(err)
	}
	f := wsFrame{fin: hdr[0]&0x80 != 0, opcode: hdr[0] & 0x0f}
	if hdr[0]&0x70 != 0 {
		return wsFrame{}, errWSReserved
	}
	switch f.opcode {
	case wsOpContinuation, wsOpText, wsOpBinary, wsOpClose, wsOpPing, wsOpPong:
	default:
		return wsFrame{}, errWSBadOpcode
	}
	masked := hdr[1]&0x80 != 0
	if !masked {
		return wsFrame{}, errWSUnmasked
	}
	n := uint64(hdr[1] & 0x7f)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return wsFrame{}, unexpected(err)
		}
		n = uint64(binary.BigEndian.Uint16(ext[:]))
		if n < 126 {
			return wsFrame{}, errWSBadLen
		}
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return wsFrame{}, unexpected(err)
		}
		n = binary.BigEndian.Uint64(ext[:])
		if n < 1<<16 || n > 1<<62 {
			return wsFrame{}, errWSBadLen
		}
	}
	if f.opcode >= wsOpClose {
		if n > 125 {
			return wsFrame{}, errWSControlLen
		}
		if !f.fin {
			return wsFrame{}, errWSControlFrag
		}
	}
	if n > uint64(maxPayload) {
		return wsFrame{}, errWSTooBig
	}
	var mask [4]byte
	if _, err := io.ReadFull(br, mask[:]); err != nil {
		return wsFrame{}, unexpected(err)
	}
	f.payload = make([]byte, n)
	if _, err := io.ReadFull(br, f.payload); err != nil {
		return wsFrame{}, unexpected(err)
	}
	for i := range f.payload {
		f.payload[i] ^= mask[i&3]
	}
	return f, nil
}

// unexpected maps a mid-frame EOF to io.ErrUnexpectedEOF so callers can
// tell truncation from a clean close.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// wsConn is a message-level WebSocket connection: writes are serialized,
// reads coalesce continuations and answer pings transparently.
type wsConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte
}

func newWSConn(conn net.Conn, br *bufio.Reader) *wsConn {
	return &wsConn{conn: conn, br: br}
}

// WriteMessage sends one complete message (never fragmented: the
// gateway's pushes are small).
func (c *wsConn) WriteMessage(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = appendWSFrame(c.wbuf[:0], true, opcode, payload)
	_, err := c.conn.Write(c.wbuf)
	return err
}

// ReadMessage returns the next complete data message. Pings are answered
// with pongs in-line; a close frame is echoed and surfaces as io.EOF.
func (c *wsConn) ReadMessage() (opcode byte, payload []byte, err error) {
	var msg []byte
	var msgOp byte
	for {
		f, err := readWSFrame(c.br, wsMaxPayload)
		if err != nil {
			return 0, nil, err
		}
		switch f.opcode {
		case wsOpClose:
			c.WriteMessage(wsOpClose, f.payload)
			return 0, nil, io.EOF
		case wsOpPing:
			if err := c.WriteMessage(wsOpPong, f.payload); err != nil {
				return 0, nil, err
			}
			continue
		case wsOpPong:
			continue
		case wsOpContinuation:
			if msgOp == 0 {
				return 0, nil, errWSBadCont
			}
			msg = append(msg, f.payload...)
		default:
			if msgOp != 0 {
				return 0, nil, errWSBadCont
			}
			msgOp = f.opcode
			msg = f.payload
		}
		if len(msg) > wsMaxPayload {
			return 0, nil, errWSTooBig
		}
		if f.fin {
			return msgOp, msg, nil
		}
	}
}

// Close sends a close frame and tears the connection down.
func (c *wsConn) Close() error {
	c.WriteMessage(wsOpClose, nil)
	return c.conn.Close()
}
