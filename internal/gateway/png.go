// PNG serving: the gateway turns the workstation's 1-bit bitmaps into
// browser-viewable PNGs with the stdlib encoder, and caches the encoded
// bytes the way the server caches encoded miniature frames
// (server.MiniatureEncoded): encode once, serve bytes thereafter.
//
// Ownership rules (DESIGN.md §11): the paletted pixel buffer used during
// an encode is drawn from the process buffer pool and released before the
// function returns — the encode is its only owner. The returned PNG bytes
// are heap-allocated and immutable; once inside the cache they are shared
// by every subsequent hit, so nothing may ever write to or Release them.
// A warm hit therefore touches no pooled memory at all.
package gateway

import (
	"bytes"
	"container/list"
	"image"
	"image/color"
	"image/png"
	"sync"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/pool"
)

// monoPalette renders set bits as black on white, like the era's displays
// printed: index 0 = background, index 1 = ink.
var monoPalette = color.Palette{
	color.Gray{Y: 0xff},
	color.Gray{Y: 0x00},
}

// encodePNG encodes a 1-bit bitmap as a paletted PNG. The intermediate
// 1-byte-per-pixel buffer comes from the pool and goes back before return.
func encodePNG(bm *img.Bitmap) ([]byte, error) {
	w, h := bm.W, bm.H
	pix := pool.Bytes.GetZeroed(w * h)
	raw := bm.Raw()
	stride := (w + 7) / 8
	for y := 0; y < h; y++ {
		rowIn := raw[y*stride : y*stride+stride]
		rowOut := pix[y*w : y*w+w]
		for x := 0; x < w; x++ {
			if rowIn[x/8]&(1<<(x%8)) != 0 {
				rowOut[x] = 1
			}
		}
	}
	im := &image.Paletted{Pix: pix, Stride: w, Rect: image.Rect(0, 0, w, h), Palette: monoPalette}
	var buf bytes.Buffer
	err := png.Encode(&buf, im)
	pool.Bytes.Put(pix)
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// pngEntry is one cached encoding. The content hash guards against an id
// ever re-resolving to different pixels (the archive is write-once, so in
// practice it never does — the hash is the cheap proof, not a hope).
type pngEntry struct {
	id   object.ID
	hash uint64
	png  []byte
}

// pngCache is the gateway-wide encoded-PNG LRU, keyed by object id. It is
// shared by every session: miniatures are identical across sessions, so
// one session's encode warms every other's browse.
type pngCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List
	byID map[object.ID]*list.Element

	hits, misses int64
}

func newPNGCache(capEntries int) *pngCache {
	return &pngCache{cap: capEntries, ll: list.New(), byID: map[object.ID]*list.Element{}}
}

// get returns the cached encoding for id. hash 0 accepts any content
// (serving by URL, no bitmap in hand); a nonzero hash must match.
func (c *pngCache) get(id object.ID, hash uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byID[id]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := e.Value.(*pngEntry)
	if hash != 0 && ent.hash != hash {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(e)
	c.hits++
	return ent.png, true
}

func (c *pngCache) put(id object.ID, hash uint64, data []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byID[id]; ok {
		c.ll.MoveToFront(e)
		e.Value = &pngEntry{id: id, hash: hash, png: data}
		return
	}
	c.byID[id] = c.ll.PushFront(&pngEntry{id: id, hash: hash, png: data})
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byID, old.Value.(*pngEntry).id)
	}
}

// counters snapshots hit/miss totals.
func (c *pngCache) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// miniaturePNG returns the browser encoding of a miniature bitmap,
// consulting the cache first. The caller keeps ownership of bm; the
// returned bytes are shared and immutable.
func (c *pngCache) miniaturePNG(id object.ID, bm *img.Bitmap) ([]byte, error) {
	h := bm.Hash()
	if data, ok := c.get(id, h); ok {
		return data, nil
	}
	data, err := encodePNG(bm)
	if err != nil {
		return nil, err
	}
	c.put(id, h, data)
	return data, nil
}
