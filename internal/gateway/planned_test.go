package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// TestGatewayPlannedQueryHTTP drives the GET query endpoint: plain terms,
// attribute predicates, grammar errors, and the /metrics planned-query
// counter. The endpoint reaches the index through the workstation Backend
// seam, so the same test body passes over a routed fleet pool.
func TestGatewayPlannedQueryHTTP(t *testing.T) {
	for _, tc := range []struct {
		name     string
		backends int
		fleet    bool
	}{
		{"single-server", 2, false},
		{"fleet", 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var hub *Hub
			if tc.fleet {
				hub = newTestHub(t, fleetBackends(t, tc.backends, 3))
			} else {
				hub = newTestHub(t, demoBackends(t, tc.backends))
			}
			ts := httptest.NewServer(NewServer(hub))
			defer ts.Close()

			resp, err := http.Post(ts.URL+"/session", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			var open map[string]uint64
			json.NewDecoder(resp.Body).Decode(&open)
			resp.Body.Close()
			sid := open["session"]

			get := func(q string) (int, int) {
				t.Helper()
				u := fmt.Sprintf("%s/session/%d/query?q=%s", ts.URL, sid, url.QueryEscape(q))
				resp, err := http.Get(u)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				body, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusOK {
					return 0, resp.StatusCode
				}
				var out map[string]int
				if err := json.Unmarshal(body, &out); err != nil {
					t.Fatalf("bad body %q: %v", body, err)
				}
				return out["hits"], resp.StatusCode
			}

			all, code := get("hospital")
			if code != http.StatusOK || all == 0 {
				t.Fatalf("plain GET query: hits %d code %d", all, code)
			}
			audio, code := get("hospital kind:audio")
			if code != http.StatusOK {
				t.Fatalf("filtered GET query code %d", code)
			}
			visual, code := get("hospital kind:visual")
			if code != http.StatusOK {
				t.Fatalf("filtered GET query code %d", code)
			}
			// The demo corpus mixes modes; the two filtered sets must
			// partition the unfiltered one.
			if audio+visual != all || visual == 0 {
				t.Fatalf("kind partitions: audio %d + visual %d != all %d", audio, visual, all)
			}
			if _, code := get("kind:nope"); code != http.StatusBadRequest {
				t.Fatalf("bad kind predicate answered %d, want 400", code)
			}
			if _, code := get("after:19-1-1"); code != http.StatusBadRequest {
				t.Fatalf("bad date predicate answered %d, want 400", code)
			}

			mresp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			metrics, _ := io.ReadAll(mresp.Body)
			mresp.Body.Close()
			if !strings.Contains(string(metrics), "gateway_planned_queries 3\n") {
				t.Fatalf("planned-query counter missing or wrong:\n%s", metrics)
			}
			if !strings.Contains(string(metrics), "gateway_queries 3\n") {
				t.Fatalf("query counter should include planned queries:\n%s", metrics)
			}
		})
	}
}
