// Package gateway terminates many concurrent web browse sessions and maps
// each onto a workstation.Session over a shared pool of multiplexed
// backend connections — the presentation-server split: retrieval stays on
// the object servers, presentation renders here, and the browser receives
// only PNG frames and small JSON events.
//
// The package is layered so the serving transport is separable from the
// session core: Hub owns sessions, admission, the encoded-PNG cache and
// the push fan-out, and is driven directly by the E-GATE virtual-clock
// harness (internal/loadgen); Server (http.go) straps HTTP, WebSocket and
// SSE onto a Hub for real browsers.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"minos/internal/core"
	img "minos/internal/image"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/sched"
	"minos/internal/screen"
	"minos/internal/vclock"
	"minos/internal/workstation"
)

// Errors surfaced to transports; both map to retryable conditions at the
// HTTP layer (503 + Retry-After).
var (
	// ErrBusy is a fair-share admission shed: the session exceeded its
	// share of the gateway's backend-bound slots. Retry after a backoff.
	ErrBusy = errors.New("gateway: busy, retry")
	// ErrSessionLimit means the gateway is at its concurrent-session cap.
	ErrSessionLimit = errors.New("gateway: session limit reached")
	// ErrNoSession means the session id is unknown (expired or never
	// existed).
	ErrNoSession = errors.New("gateway: no such session")
)

// Config parameterizes a Hub.
type Config struct {
	// Backends is the shared connection pool. Session sid uses
	// Backends[(sid-1) % len] — fixed at open, so one user's browse state
	// (prefetch generations, stream resume) stays on one mux connection.
	// The Hub does not own the backends; the caller closes them after
	// Hub.Close.
	Backends []workstation.Backend
	// MaxSessions caps concurrently open sessions (0 = unbounded).
	MaxSessions int
	// StepSlots bounds backend-bound requests in flight across all
	// sessions, fair-shared per session by the sched admission gate
	// (0 = unbounded). A greedy client sheds against its own share first.
	StepSlots int
	// ScreenW, ScreenH size each session's rendered screen (default
	// 240x140, the workstation tests' geometry).
	ScreenW, ScreenH int
	// PNGCacheEntries sizes the gateway-wide encoded-PNG LRU (default
	// 256 entries; <0 disables caching).
	PNGCacheEntries int
	// Prefetch, when non-nil, enables the browse read-ahead pipeline on
	// every session with this configuration.
	Prefetch *workstation.PrefetchConfig
}

// Stats are the per-gateway counters exposed on /metrics.
type Stats struct {
	SessionsOpened int64
	SessionsActive int64
	SessionsDenied int64
	Queries        int64
	// PlannedQueries counts the subset of Queries that arrived as planned
	// queries (terms plus attribute predicates) through the GET endpoint
	// or Hub.QueryPlanned.
	PlannedQueries int64
	Steps          int64
	Opens          int64
	// Pushes counts events emitted to the push fan-out (browse steps,
	// progressive passes, opens); PushBytes their binary payload bytes.
	Pushes    int64
	PushBytes int64
	// DroppedPushes counts events a slow subscriber's buffer refused —
	// the subscriber sees a gap, the session is never blocked by it.
	DroppedPushes int64
	PNGHits       int64
	PNGMisses     int64
	// Shed counts fair-share admission rejections (ErrBusy).
	Shed int64
}

// Event is one push to a web client: a browse step, a progressive
// miniature pass, or an opened object. JSON goes over the WebSocket text
// channel / SSE; PNG rides as a binary frame (or by Href fetch).
type Event struct {
	Kind   string    `json:"kind"` // "step" | "pass" | "opened"
	Obj    object.ID `json:"obj,omitempty"`
	Mode   string    `json:"mode,omitempty"`
	Stale  bool      `json:"stale,omitempty"`
	Done   bool      `json:"done,omitempty"`
	Pass   int       `json:"pass,omitempty"`
	Usable bool      `json:"usable,omitempty"`
	// Href is where the event's PNG can be (re)fetched.
	Href string `json:"href,omitempty"`
	// PNG is the event's encoded image, pushed as a binary WS frame and
	// measured by the E-GATE harness. Not part of the JSON event.
	PNG []byte `json:"-"`
}

// session is one web client's state: a workstation session plus its push
// subscribers. ops serializes user commands — a workstation session is a
// single user's and is not internally synchronized.
type session struct {
	sid uint64
	ws  *workstation.Session

	ops sync.Mutex

	mu   sync.Mutex
	subs map[chan Event]struct{}
}

// Hub is the gateway's session core.
type Hub struct {
	cfg   Config
	adm   *sched.Admission
	cache *pngCache

	mu       sync.Mutex
	sessions map[uint64]*session
	nextSID  uint64
	closed   bool

	opened, denied        int64
	queries, steps, opens int64
	plannedQueries        int64
	pushes, pushBytes     int64
	droppedPushes         int64
}

// New builds a Hub over a pool of backends.
func New(cfg Config) (*Hub, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: no backends")
	}
	if cfg.ScreenW <= 0 {
		cfg.ScreenW = 240
	}
	if cfg.ScreenH <= 0 {
		cfg.ScreenH = 140
	}
	if cfg.PNGCacheEntries == 0 {
		cfg.PNGCacheEntries = 256
	}
	if cfg.PNGCacheEntries < 0 {
		cfg.PNGCacheEntries = 0
	}
	return &Hub{
		cfg:      cfg,
		adm:      sched.NewAdmission(cfg.StepSlots),
		cache:    newPNGCache(cfg.PNGCacheEntries),
		sessions: map[uint64]*session{},
	}, nil
}

// newCoreConfig builds one session's presentation stack: its own screen
// and its own virtual clock (presentation timing is per-user state).
func (h *Hub) newCoreConfig() core.Config {
	return core.Config{
		Screen: screen.New(h.cfg.ScreenW, h.cfg.ScreenH),
		Clock:  vclock.New(),
	}
}

// Admission exposes the fair-share gate so transports (and the E-GATE
// harness) hold slots across the true span of backend-bound work.
func (h *Hub) Admission() *sched.Admission { return h.adm }

// BackendIndex reports which pool connection a session rides; the E-GATE
// harness uses it to attribute link time.
func (h *Hub) BackendIndex(sid uint64) int {
	return int((sid - 1) % uint64(len(h.cfg.Backends)))
}

// Open creates a session and returns its id (ids start at 1).
func (h *Hub) Open() (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, errors.New("gateway: hub closed")
	}
	if h.cfg.MaxSessions > 0 && len(h.sessions) >= h.cfg.MaxSessions {
		h.denied++
		return 0, ErrSessionLimit
	}
	h.nextSID++
	sid := h.nextSID
	be := h.cfg.Backends[(sid-1)%uint64(len(h.cfg.Backends))]
	ws := workstation.New(be, h.newCoreConfig())
	if h.cfg.Prefetch != nil {
		ws.EnablePrefetch(*h.cfg.Prefetch)
	}
	h.sessions[sid] = &session{sid: sid, ws: ws, subs: map[chan Event]struct{}{}}
	h.opened++
	return sid, nil
}

// CloseSession detaches a session. The shared backend stays open.
func (h *Hub) CloseSession(sid uint64) error {
	h.mu.Lock()
	s, ok := h.sessions[sid]
	delete(h.sessions, sid)
	h.mu.Unlock()
	if !ok {
		return ErrNoSession
	}
	s.mu.Lock()
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan Event]struct{}{}
	s.mu.Unlock()
	s.ws.Detach()
	return nil
}

// Close detaches every session. Backends belong to the caller and remain
// open.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	all := make([]uint64, 0, len(h.sessions))
	for sid := range h.sessions {
		all = append(all, sid)
	}
	h.mu.Unlock()
	for _, sid := range all {
		h.CloseSession(sid)
	}
}

func (h *Hub) get(sid uint64) (*session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[sid]
	if !ok {
		return nil, ErrNoSession
	}
	return s, nil
}

// Workstation exposes a session's underlying workstation session (the
// conformance and harness code reads FetchTime and prefetch stats off it).
func (h *Hub) Workstation(sid uint64) (*workstation.Session, error) {
	s, err := h.get(sid)
	if err != nil {
		return nil, err
	}
	return s.ws, nil
}

// Query submits a content query on a session.
func (h *Hub) Query(ctx context.Context, sid uint64, terms ...string) (int, error) {
	s, err := h.get(sid)
	if err != nil {
		return 0, err
	}
	s.ops.Lock()
	defer s.ops.Unlock()
	n, err := s.ws.QueryCtx(ctx, terms...)
	if err == nil {
		h.mu.Lock()
		h.queries++
		h.mu.Unlock()
	}
	return n, err
}

// QueryPlanned submits a planned content query — conjunctive terms plus
// attribute predicates — on a session through the same Backend seam, so it
// works identically over a single server and a routed fleet.
func (h *Hub) QueryPlanned(ctx context.Context, sid uint64, q index.Query) (int, error) {
	s, err := h.get(sid)
	if err != nil {
		return 0, err
	}
	s.ops.Lock()
	defer s.ops.Unlock()
	n, err := s.ws.QueryPlannedCtx(ctx, q)
	if err == nil {
		h.mu.Lock()
		h.queries++
		h.plannedQueries++
		h.mu.Unlock()
	}
	return n, err
}

// Step advances (dir >= 0) or rewinds (dir < 0) a session's browse cursor
// and pushes the resulting step event. The returned event carries the
// miniature PNG (warm cache: shared bytes, no pixel buffers touched).
func (h *Hub) Step(ctx context.Context, sid uint64, dir int) (Event, error) {
	s, err := h.get(sid)
	if err != nil {
		return Event{}, err
	}
	s.ops.Lock()
	defer s.ops.Unlock()
	var st workstation.BrowseStep
	if dir < 0 {
		st, err = s.ws.PrevMiniatureCtx(ctx)
	} else {
		st, err = s.ws.NextMiniatureCtx(ctx)
	}
	if err != nil {
		return Event{}, err
	}
	ev := Event{Kind: "step", Obj: st.ID, Stale: st.Stale, Done: st.Done}
	if !st.Done {
		ev.Mode = st.Mode.String()
		ev.Href = fmt.Sprintf("/session/%d/mini/%d.png", sid, st.ID)
		if st.Mini != nil {
			data, perr := h.cache.miniaturePNG(st.ID, st.Mini)
			if perr != nil {
				return Event{}, perr
			}
			ev.PNG = data
		}
	}
	h.mu.Lock()
	h.steps++
	h.mu.Unlock()
	h.push(s, ev)
	return ev, nil
}

// OpenObject presents an object on the session's screen and pushes the
// rendered view.
func (h *Hub) OpenObject(ctx context.Context, sid uint64, id object.ID) (Event, error) {
	s, err := h.get(sid)
	if err != nil {
		return Event{}, err
	}
	s.ops.Lock()
	defer s.ops.Unlock()
	if err := s.ws.OpenObject(id); err != nil {
		return Event{}, err
	}
	data, err := h.renderView(s)
	if err != nil {
		return Event{}, err
	}
	ev := Event{
		Kind: "opened", Obj: id,
		Href: fmt.Sprintf("/session/%d/view.png", sid),
		PNG:  data,
	}
	h.mu.Lock()
	h.opens++
	h.mu.Unlock()
	h.push(s, ev)
	return ev, nil
}

// renderView encodes the session's current screen. The rendered frame is
// this call's own bitmap: released to the pool right after the encode.
func (h *Hub) renderView(s *session) ([]byte, error) {
	frame := s.ws.Manager().Screen().Render()
	data, err := encodePNG(frame)
	frame.Release()
	return data, err
}

// ViewPNG renders the session's current screen as PNG (uncached — the
// screen is per-session, mutable state).
func (h *Hub) ViewPNG(sid uint64) ([]byte, error) {
	s, err := h.get(sid)
	if err != nil {
		return nil, err
	}
	s.ops.Lock()
	defer s.ops.Unlock()
	return h.renderView(s)
}

// MiniaturePNG serves an object's miniature as PNG: cache hit returns the
// shared encoded bytes untouched; a miss fetches the miniature through the
// session's backend, encodes, caches and releases the transient bitmap.
func (h *Hub) MiniaturePNG(ctx context.Context, sid uint64, id object.ID) ([]byte, error) {
	s, err := h.get(sid)
	if err != nil {
		return nil, err
	}
	if data, ok := h.cache.get(id, 0); ok {
		return data, nil
	}
	s.ops.Lock()
	defer s.ops.Unlock()
	res, dur, err := s.ws.Backend().MiniaturesCtx(ctx, []object.ID{id})
	if err != nil {
		return nil, err
	}
	s.ws.FetchTime += dur
	if len(res) == 0 || !res[0].OK {
		return nil, fmt.Errorf("gateway: no miniature for object %d", id)
	}
	bm := res[0].Mini
	data, err := h.cache.miniaturePNG(id, bm)
	bm.Release() // this fetch is the bitmap's only owner
	return data, err
}

// Progressive streams an object's miniature coarse-first, pushing a pass
// event (with the accumulating frame as PNG) per landed pass. Peers
// without the v3 stream feature fall back to a single complete pass. The
// completed frame lands in the PNG cache, so the browse that follows the
// progressive preview serves warm.
func (h *Hub) Progressive(ctx context.Context, sid uint64, id object.ID) (workstation.ProgressivePaint, error) {
	s, err := h.get(sid)
	if err != nil {
		return workstation.ProgressivePaint{}, err
	}
	s.ops.Lock()
	defer s.ops.Unlock()
	pass := 0
	var pushErr error
	final, pp, err := s.ws.MiniatureProgressiveCtx(ctx, id, func(bm *img.Bitmap, usable bool, _ time.Duration) {
		pass++
		data, perr := encodePNG(bm)
		if perr != nil {
			if pushErr == nil {
				pushErr = perr
			}
			return
		}
		h.push(s, Event{
			Kind: "pass", Obj: id, Pass: pass, Usable: usable,
			Href: fmt.Sprintf("/session/%d/mini/%d.png", sid, id),
			PNG:  data,
		})
	})
	if err != nil {
		return pp, err
	}
	if pushErr != nil {
		return pp, pushErr
	}
	if _, cerr := h.cache.miniaturePNG(id, final); cerr != nil {
		return pp, cerr
	}
	return pp, nil
}

// push emits an event to a session's subscribers. Sends never block: a
// subscriber whose buffer is full loses the event (and is counted), the
// browsing session is never throttled by a slow viewer.
func (h *Hub) push(s *session, ev Event) {
	h.mu.Lock()
	h.pushes++
	h.pushBytes += int64(len(ev.PNG))
	h.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.subs {
		select {
		case ch <- ev:
		default:
			h.mu.Lock()
			h.droppedPushes++
			h.mu.Unlock()
		}
	}
}

// Subscribe attaches a push listener to a session. The returned cancel
// detaches it; the channel closes when the session closes.
func (h *Hub) Subscribe(sid uint64) (<-chan Event, func(), error) {
	s, err := h.get(sid)
	if err != nil {
		return nil, nil, err
	}
	ch := make(chan Event, 32)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[ch]; ok {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel, nil
}

// Stats snapshots the gateway counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	st := Stats{
		SessionsOpened: h.opened,
		SessionsActive: int64(len(h.sessions)),
		SessionsDenied: h.denied,
		Queries:        h.queries,
		PlannedQueries: h.plannedQueries,
		Steps:          h.steps,
		Opens:          h.opens,
		Pushes:         h.pushes,
		PushBytes:      h.pushBytes,
		DroppedPushes:  h.droppedPushes,
	}
	h.mu.Unlock()
	st.PNGHits, st.PNGMisses = h.cache.counters()
	st.Shed = h.adm.Shed()
	return st
}

// WriteMetrics writes the gateway counters plus each pool backend's
// serving-side stats in a flat, scrape-friendly text format.
func (h *Hub) WriteMetrics(ctx context.Context, w io.Writer) error {
	st := h.Stats()
	fmt.Fprintf(w, "gateway_sessions_active %d\n", st.SessionsActive)
	fmt.Fprintf(w, "gateway_sessions_opened %d\n", st.SessionsOpened)
	fmt.Fprintf(w, "gateway_sessions_denied %d\n", st.SessionsDenied)
	fmt.Fprintf(w, "gateway_queries %d\n", st.Queries)
	fmt.Fprintf(w, "gateway_planned_queries %d\n", st.PlannedQueries)
	fmt.Fprintf(w, "gateway_steps %d\n", st.Steps)
	fmt.Fprintf(w, "gateway_opens %d\n", st.Opens)
	fmt.Fprintf(w, "gateway_pushes %d\n", st.Pushes)
	fmt.Fprintf(w, "gateway_push_bytes %d\n", st.PushBytes)
	fmt.Fprintf(w, "gateway_dropped_pushes %d\n", st.DroppedPushes)
	fmt.Fprintf(w, "gateway_png_cache_hits %d\n", st.PNGHits)
	fmt.Fprintf(w, "gateway_png_cache_misses %d\n", st.PNGMisses)
	fmt.Fprintf(w, "gateway_shed %d\n", st.Shed)
	for i, be := range h.cfg.Backends {
		bs, err := be.StatsCtx(ctx)
		if err != nil {
			fmt.Fprintf(w, "backend_up{backend=\"%d\"} 0\n", i)
			continue
		}
		fmt.Fprintf(w, "backend_up{backend=\"%d\"} 1\n", i)
		fmt.Fprintf(w, "backend_piece_reads{backend=\"%d\"} %d\n", i, bs.PieceReads)
		fmt.Fprintf(w, "backend_bytes_out{backend=\"%d\"} %d\n", i, bs.BytesOut)
		fmt.Fprintf(w, "backend_cache_hits{backend=\"%d\"} %d\n", i, bs.CacheHits)
		fmt.Fprintf(w, "backend_cache_misses{backend=\"%d\"} %d\n", i, bs.CacheMiss)
		fmt.Fprintf(w, "backend_device_waits{backend=\"%d\"} %d\n", i, bs.DeviceWaits)
		fmt.Fprintf(w, "backend_shed{backend=\"%d\"} %d\n", i, bs.Shed)
		fmt.Fprintf(w, "backend_encoded_hits{backend=\"%d\"} %d\n", i, bs.EncodedHits)
		fmt.Fprintf(w, "backend_pool_allocs{backend=\"%d\"} %d\n", i, bs.PoolAllocs)
		fmt.Fprintf(w, "backend_pool_recycled{backend=\"%d\"} %d\n", i, bs.PoolRecycled)
	}
	return nil
}
