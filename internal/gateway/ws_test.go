package gateway

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestWSAcceptKey pins the RFC 6455 §1.3 worked example.
func TestWSAcceptKey(t *testing.T) {
	got := wsAcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	if want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="; got != want {
		t.Fatalf("accept key %q, want %q", got, want)
	}
}

func readFrom(b []byte) *bufio.Reader {
	return bufio.NewReader(bytes.NewReader(b))
}

// TestWSFrameRoundTrip crosses every payload-length encoding boundary:
// 7-bit, 16-bit and 64-bit extended lengths must decode to the bytes that
// went in.
func TestWSFrameRoundTrip(t *testing.T) {
	mask := [4]byte{0x12, 0x34, 0x56, 0x78}
	for _, n := range []int{0, 1, 125, 126, 1000, 65535, 65536, 70000} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		raw := appendWSFrameMasked(nil, true, wsOpBinary, mask, payload)
		f, err := readWSFrame(readFrom(raw), wsMaxPayload)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if !f.fin || f.opcode != wsOpBinary || !bytes.Equal(f.payload, payload) {
			t.Fatalf("len %d: frame diverged (fin=%v opcode=%d len=%d)", n, f.fin, f.opcode, len(f.payload))
		}
	}
}

// TestWSFrameViolations is the protocol-violation table: every row must
// fail closed with its specific error.
func TestWSFrameViolations(t *testing.T) {
	mask := [4]byte{1, 2, 3, 4}
	valid := appendWSFrameMasked(nil, true, wsOpText, mask, []byte("ok"))
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"reserved bits", append([]byte{0x81 | 0x40}, valid[1:]...), errWSReserved},
		{"reserved opcode", append([]byte{0x83}, valid[1:]...), errWSBadOpcode},
		{"unmasked client frame", appendWSFrame(nil, true, wsOpText, []byte("ok")), errWSUnmasked},
		{"oversized control", appendWSFrameMasked(nil, true, wsOpPing, mask, make([]byte, 126)), errWSControlLen},
		{"fragmented control", appendWSFrameMasked(nil, false, wsOpPing, mask, nil), errWSControlFrag},
		// 16-bit extended length encoding a value that fits in 7 bits.
		{"non-minimal 16-bit length", []byte{0x82, 0x80 | 126, 0x00, 0x05, 1, 2, 3, 4, 0, 0, 0, 0, 0}, errWSBadLen},
		// 64-bit extended length encoding a value that fits in 16 bits.
		{"non-minimal 64-bit length", []byte{0x82, 0x80 | 127, 0, 0, 0, 0, 0, 0, 0x01, 0x00, 1, 2, 3, 4}, errWSBadLen},
		// 64-bit length with the top bits set (also > 1<<62).
		{"oversized 64-bit length", []byte{0x82, 0x80 | 127, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}, errWSBadLen},
	}
	for _, tc := range cases {
		if _, err := readWSFrame(readFrom(tc.raw), wsMaxPayload); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Payload above the reader's cap is refused before it is read.
	big := appendWSFrameMasked(nil, true, wsOpBinary, mask, make([]byte, 200))
	if _, err := readWSFrame(readFrom(big), 100); !errors.Is(err, errWSTooBig) {
		t.Errorf("over-cap payload: got %v, want %v", err, errWSTooBig)
	}
}

// TestWSFrameTruncation cuts a valid frame at every byte boundary: a
// truncated stream must surface io.ErrUnexpectedEOF (io.EOF only before
// the first header byte), never a hang or a bogus frame.
func TestWSFrameTruncation(t *testing.T) {
	mask := [4]byte{9, 8, 7, 6}
	for _, n := range []int{5, 200, 70000} {
		full := appendWSFrameMasked(nil, true, wsOpBinary, mask, make([]byte, n))
		for cut := 0; cut < len(full); cut++ {
			_, err := readWSFrame(readFrom(full[:cut]), wsMaxPayload)
			want := io.ErrUnexpectedEOF
			if cut == 0 {
				want = io.EOF
			}
			if !errors.Is(err, want) {
				t.Fatalf("payload %d cut at %d: got %v, want %v", n, cut, err, want)
			}
			if cut > len(full)-2 && n > 1000 {
				break // the long tail of a big payload adds nothing
			}
		}
	}
}

// FuzzWSReadFrame feeds arbitrary bytes to the frame reader: it must
// return an error or a frame, never panic, and any frame it accepts must
// re-encode to a prefix-consistent masked frame.
func FuzzWSReadFrame(f *testing.F) {
	mask := [4]byte{1, 2, 3, 4}
	f.Add(appendWSFrameMasked(nil, true, wsOpText, mask, []byte("seed")))
	f.Add(appendWSFrameMasked(nil, false, wsOpBinary, mask, make([]byte, 130)))
	f.Add([]byte{0x88, 0x80, 0, 0, 0, 0})
	f.Add([]byte{0x81, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := readWSFrame(readFrom(raw), wsMaxPayload)
		if err != nil {
			return
		}
		// Round-trip: re-masking the decoded payload must reproduce the
		// consumed prefix byte-for-byte.
		var mask [4]byte
		hdrLen := 2
		switch l := len(fr.payload); {
		case l >= 1<<16:
			hdrLen += 8
		case l >= 126:
			hdrLen += 2
		}
		copy(mask[:], raw[hdrLen:hdrLen+4])
		re := appendWSFrameMasked(nil, fr.fin, fr.opcode, mask, fr.payload)
		if !bytes.Equal(re, raw[:len(re)]) {
			t.Fatalf("re-encoded frame diverges from input prefix")
		}
	})
}

// wsPair returns a message-level server conn wired to a raw client pipe.
func wsPair(t *testing.T) (*wsConn, net.Conn) {
	t.Helper()
	client, srvEnd := net.Pipe()
	c := newWSConn(srvEnd, bufio.NewReader(srvEnd))
	t.Cleanup(func() { client.Close(); srvEnd.Close() })
	return c, client
}

// readServerFrame parses one unmasked server frame off the client side.
func readServerFrame(t *testing.T, br *bufio.Reader) (byte, []byte) {
	t.Helper()
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatalf("read server frame header: %v", err)
	}
	if hdr[1]&0x80 != 0 {
		t.Fatal("server frame is masked")
	}
	n := int(hdr[1] & 0x7f)
	switch n {
	case 126:
		var ext [2]byte
		io.ReadFull(br, ext[:])
		n = int(ext[0])<<8 | int(ext[1])
	case 127:
		t.Fatal("unexpected 64-bit server frame in test")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatalf("read server frame payload: %v", err)
	}
	return hdr[0] & 0x0f, payload
}

// TestWSConnMessages exercises the message layer over a pipe: continuation
// coalescing, transparent ping/pong, and close-echo as io.EOF.
func TestWSConnMessages(t *testing.T) {
	c, client := wsPair(t)
	mask := [4]byte{5, 5, 5, 5}

	type result struct {
		op      byte
		payload []byte
		err     error
	}
	results := make(chan result, 3)
	go func() {
		for i := 0; i < 3; i++ {
			op, p, err := c.ReadMessage()
			results <- result{op, p, err}
			if err != nil {
				return
			}
		}
	}()

	// Fragmented text message with a ping interleaved between fragments.
	var raw []byte
	raw = appendWSFrameMasked(raw, false, wsOpText, mask, []byte("hel"))
	raw = appendWSFrameMasked(raw, true, wsOpPing, mask, []byte("hb"))
	raw = appendWSFrameMasked(raw, true, wsOpContinuation, mask, []byte("lo"))
	if _, err := client.Write(raw); err != nil {
		t.Fatalf("client write: %v", err)
	}
	br := bufio.NewReader(client)
	op, payload := readServerFrame(t, br)
	if op != wsOpPong || string(payload) != "hb" {
		t.Fatalf("ping answered with opcode %d payload %q", op, payload)
	}
	r := <-results
	if r.err != nil || r.op != wsOpText || string(r.payload) != "hello" {
		t.Fatalf("coalesced message: op=%d payload=%q err=%v", r.op, r.payload, r.err)
	}

	// A second whole message.
	if _, err := client.Write(appendWSFrameMasked(nil, true, wsOpBinary, mask, []byte{1, 2})); err != nil {
		t.Fatalf("client write: %v", err)
	}
	r = <-results
	if r.err != nil || r.op != wsOpBinary || !bytes.Equal(r.payload, []byte{1, 2}) {
		t.Fatalf("second message: op=%d payload=%v err=%v", r.op, r.payload, r.err)
	}

	// Close: echoed by the server, surfaced as io.EOF.
	if _, err := client.Write(appendWSFrameMasked(nil, true, wsOpClose, mask, nil)); err != nil {
		t.Fatalf("client write: %v", err)
	}
	if op, _ := readServerFrame(t, br); op != wsOpClose {
		t.Fatalf("close answered with opcode %d", op)
	}
	select {
	case r = <-results:
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not return after close")
	}
	if r.err != io.EOF {
		t.Fatalf("close surfaced as %v, want io.EOF", r.err)
	}
}

// TestWSConnBadContinuation: a continuation with no started message tears
// the read down.
func TestWSConnBadContinuation(t *testing.T) {
	c, client := wsPair(t)
	go client.Write(appendWSFrameMasked(nil, true, wsOpContinuation, [4]byte{}, []byte("x")))
	if _, _, err := c.ReadMessage(); !errors.Is(err, errWSBadCont) {
		t.Fatalf("got %v, want %v", err, errWSBadCont)
	}
}
