package screen

import (
	"testing"

	img "minos/internal/image"
)

func benchPage(s *Screen) *img.Bitmap {
	p := img.NewBitmap(s.ContentWidth(), s.H)
	for i := 0; i < 400; i++ {
		p.Set((i*13)%p.W, (i*29)%p.H, true)
	}
	return p
}

func BenchmarkShowPageAndRender(b *testing.B) {
	s := New(512, 342)
	s.SetTitle("BENCH")
	s.SetMenu([]string{"NEXT PAGE", "PREV PAGE", "FIND PATTERN"})
	p := benchPage(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ShowPage(p)
		s.Render()
	}
}

func BenchmarkSuperimpose(b *testing.B) {
	s := New(512, 342)
	p := benchPage(s)
	s.ShowPage(p)
	tr := benchPage(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Superimpose(tr)
	}
}

func BenchmarkOverwrite(b *testing.B) {
	s := New(512, 342)
	s.ShowPage(benchPage(s))
	src := img.NewBitmap(s.ContentWidth(), s.H)
	mask := img.NewBitmap(s.ContentWidth(), s.H)
	mask.Fill(img.Rect{X: 50, Y: 50, W: 100, H: 80}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Overwrite(src, mask)
	}
}
