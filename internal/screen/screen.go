// Package screen simulates the workstation display the 1986 system drew
// on. The screen is a 1-bit pixel framebuffer divided into the regions the
// paper describes: a content area, a message strip at the top (where visual
// logical messages stay pinned, §2), and a menu column on the right where
// "the menu options which are displayed define the set of available
// operations" (§2, and visible in Figures 1-2).
//
// All presentation semantics — transparency superposition, overwrites,
// relevant-object indicators — are defined as framebuffer compositions, so
// tests can assert exact pixel behaviour and golden snapshots.
package screen

import (
	"fmt"
	"strings"

	img "minos/internal/image"
)

// Default screen geometry, loosely a SUN-3 landscape display scaled down to
// keep tests fast. Sizes are configurable via New.
const (
	DefaultW   = 512
	DefaultH   = 342
	MenuWidth  = 110
	GutterCols = 2
)

// IndicatorKind distinguishes the selectable on-screen indicators.
type IndicatorKind uint8

const (
	// RelevantObject marks "a relevant object indicator ... displayed on
	// the screen of the workstation" (§2).
	RelevantObject IndicatorKind = iota
	// ReturnFromRelevant is the explicit return indicator.
	ReturnFromRelevant
	// VoiceIndicator marks a playable voice item (e.g. a voice label).
	VoiceIndicator
	// RepresentationBadge explicitly indicates that the displayed image
	// is a representation (§2).
	RepresentationBadge
)

// Indicator is a selectable icon on the screen.
type Indicator struct {
	Kind IndicatorKind
	Name string // referenced entity (object id, voice ref, ...)
	At   img.Point
}

const indicatorW, indicatorH = 9, 9

// Bounds returns the clickable rectangle of the indicator.
func (ind Indicator) Bounds() img.Rect {
	return img.Rect{X: ind.At.X, Y: ind.At.Y, W: indicatorW, H: indicatorH}
}

// Screen is the simulated workstation display.
type Screen struct {
	W, H  int
	menuW int

	content    *img.Bitmap // current content area pixels (owned)
	strip      *img.Bitmap // pinned message strip, nil when absent
	menu       []string
	indicators []Indicator
	title      string
}

// New allocates a screen; zero dims select the defaults. Screens narrower
// than twice MenuWidth shrink the menu column to a quarter of the width so
// small test screens remain usable.
func New(w, h int) *Screen {
	if w <= 0 {
		w = DefaultW
	}
	if h <= 0 {
		h = DefaultH
	}
	menuW := MenuWidth
	if w < 2*MenuWidth {
		menuW = w / 4
	}
	s := &Screen{W: w, H: h, menuW: menuW}
	s.content = img.NewBitmap(s.ContentWidth(), h)
	return s
}

// MenuW returns this screen's menu column width in pixels.
func (s *Screen) MenuW() int { return s.menuW }

// ContentWidth returns the pixel width available to content (and the
// message strip): everything left of the menu column.
func (s *Screen) ContentWidth() int { return s.W - s.menuW }

// ContentHeight returns the pixel height available to page content below
// the current message strip.
func (s *Screen) ContentHeight() int {
	if s.strip == nil {
		return s.H
	}
	return s.H - s.strip.H - GutterCols
}

// SetTitle sets the object title shown at the top of the menu column.
func (s *Screen) SetTitle(t string) { s.title = t }

// SetMenu replaces the menu options; they render top-to-bottom in the menu
// column.
func (s *Screen) SetMenu(options []string) {
	s.menu = append([]string(nil), options...)
}

// Menu returns the currently displayed options.
func (s *Screen) Menu() []string { return append([]string(nil), s.menu...) }

// SetIndicators replaces the selectable indicators.
func (s *Screen) SetIndicators(inds []Indicator) {
	s.indicators = append([]Indicator(nil), inds...)
}

// Indicators returns the current indicators.
func (s *Screen) Indicators() []Indicator { return append([]Indicator(nil), s.indicators...) }

// SelectAt simulates a mouse selection and returns the index of the topmost
// indicator containing the point, or -1.
func (s *Screen) SelectAt(x, y int) int {
	for i := len(s.indicators) - 1; i >= 0; i-- {
		if s.indicators[i].Bounds().Contains(x, y) {
			return i
		}
	}
	return -1
}

// ShowPage replaces the content area with the page bitmap (clipped or
// padded to the content area).
func (s *Screen) ShowPage(page *img.Bitmap) {
	s.content = img.NewBitmap(s.ContentWidth(), s.H)
	if page != nil {
		s.content.Or(page, 0, s.stripOffset())
	}
}

// Superimpose composites a transparency over the current content with OR
// semantics: "transparencies are visual pages which allow the user to see
// the previous visual page displayed on the screen" (§2).
func (s *Screen) Superimpose(t *img.Bitmap) {
	if t != nil {
		s.content.Or(t, 0, s.stripOffset())
	}
}

// Overwrite applies an overwrite page: its bitmaps, lines and shades
// replace whatever existed in the previous page but leave anything else
// intact (§2). mask marks the pixels the overwrite owns; those pixels are
// copied from src (set or clear), all others are untouched.
func (s *Screen) Overwrite(src, mask *img.Bitmap) {
	if src == nil || mask == nil {
		return
	}
	off := s.stripOffset()
	for y := 0; y < mask.H; y++ {
		for x := 0; x < mask.W; x++ {
			if mask.Get(x, y) {
				s.content.Set(x, y+off, src.Get(x, y))
			}
		}
	}
}

// PinStrip pins a visual logical message bitmap to the top of the screen;
// nil unpins. Pinning clears the content area (the page below must be
// re-laid-out for the reduced height).
func (s *Screen) PinStrip(strip *img.Bitmap) {
	s.strip = strip
	s.content = img.NewBitmap(s.ContentWidth(), s.H)
}

// Strip returns the pinned strip, or nil.
func (s *Screen) Strip() *img.Bitmap { return s.strip }

func (s *Screen) stripOffset() int {
	if s.strip == nil {
		return 0
	}
	return s.strip.H + GutterCols
}

// Content returns a copy of the content-area bitmap (excluding strip and
// menu) for assertions.
func (s *Screen) Content() *img.Bitmap { return s.content.Clone() }

// Render composes the full screen: strip, content, separator, menu column,
// indicators.
func (s *Screen) Render() *img.Bitmap {
	out := img.NewBitmap(s.W, s.H)
	if s.strip != nil {
		out.Or(s.strip, 0, 0)
		for x := 0; x < s.ContentWidth(); x++ {
			out.Set(x, s.strip.H, true)
		}
	}
	out.Or(s.content, 0, 0)
	// Menu column separator.
	for y := 0; y < s.H; y++ {
		out.Set(s.ContentWidth(), y, true)
	}
	mx := s.ContentWidth() + 4
	my := 2
	if s.title != "" {
		img.DrawString(out, mx, my, truncateTo(s.title, (s.menuW-8)/6))
		my += img.GlyphHeight() + 4
	}
	for _, opt := range s.menu {
		img.DrawString(out, mx, my, truncateTo(opt, (s.menuW-8)/6))
		my += img.GlyphHeight() + 2
	}
	for _, ind := range s.indicators {
		drawIndicator(out, ind)
	}
	return out
}

func drawIndicator(b *img.Bitmap, ind Indicator) {
	r := ind.Bounds()
	for x := r.X; x < r.X+r.W; x++ {
		b.Set(x, r.Y, true)
		b.Set(x, r.Y+r.H-1, true)
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		b.Set(r.X, y, true)
		b.Set(r.X+r.W-1, y, true)
	}
	cx, cy := r.X+r.W/2, r.Y+r.H/2
	switch ind.Kind {
	case RelevantObject:
		// '>' arrow
		b.Set(cx-1, cy-2, true)
		b.Set(cx, cy-1, true)
		b.Set(cx+1, cy, true)
		b.Set(cx, cy+1, true)
		b.Set(cx-1, cy+2, true)
	case ReturnFromRelevant:
		// '<' arrow
		b.Set(cx+1, cy-2, true)
		b.Set(cx, cy-1, true)
		b.Set(cx-1, cy, true)
		b.Set(cx, cy+1, true)
		b.Set(cx+1, cy+2, true)
	case VoiceIndicator:
		b.Set(cx, cy-1, true)
		b.Set(cx-1, cy, true)
		b.Set(cx, cy, true)
		b.Set(cx+1, cy, true)
		b.Set(cx, cy+1, true)
	case RepresentationBadge:
		b.Set(cx, cy, true)
	}
}

// Snapshot returns a stable hash of the rendered screen for golden tests.
func (s *Screen) Snapshot() uint64 { return s.Render().Hash() }

// String renders a coarse ASCII preview (every 4th pixel), used by the CLI.
func (s *Screen) String() string {
	full := s.Render()
	var sb strings.Builder
	fmt.Fprintf(&sb, "screen %dx%d menu=%d indicators=%d\n", s.W, s.H, len(s.menu), len(s.indicators))
	for y := 0; y < full.H; y += 4 {
		for x := 0; x < full.W; x += 4 {
			if full.Get(x, y) || full.Get(x+1, y) || full.Get(x, y+1) || full.Get(x+1, y+1) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func truncateTo(s string, n int) string {
	if n <= 0 {
		return ""
	}
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n])
}

// TransparencyMethod selects how a transparency set is displayed (§2).
type TransparencyMethod uint8

const (
	// Stacked displays every transparency on top of one another and on
	// top of the last page before the set.
	Stacked TransparencyMethod = iota
	// Separate displays each transparency of the set separately, on top
	// of the last page before the set.
	Separate
)

// ComposeTransparencies builds the content bitmap for showing transparency
// index i of the set under the given method. base is the last page before
// the set. With Stacked, transparencies 0..i all appear; with Separate,
// only transparency i appears. selected (used with Separate, may be nil)
// lets the user instead superimpose an arbitrary chosen subset — "he may
// choose to see certain transparencies of the set only projected at the
// same time" (§2); when non-nil it overrides i.
func ComposeTransparencies(base *img.Bitmap, set []*img.Bitmap, method TransparencyMethod, i int, selected []int) *img.Bitmap {
	out := base.Clone()
	if selected != nil {
		for _, k := range selected {
			if k >= 0 && k < len(set) {
				out.Or(set[k], 0, 0)
			}
		}
		return out
	}
	if i < 0 || i >= len(set) {
		return out
	}
	switch method {
	case Stacked:
		for k := 0; k <= i; k++ {
			out.Or(set[k], 0, 0)
		}
	case Separate:
		out.Or(set[i], 0, 0)
	}
	return out
}
