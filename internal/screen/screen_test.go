package screen

import (
	"testing"

	img "minos/internal/image"
)

func TestNewDefaults(t *testing.T) {
	s := New(0, 0)
	if s.W != DefaultW || s.H != DefaultH {
		t.Fatalf("dims %dx%d", s.W, s.H)
	}
	if s.ContentWidth() != DefaultW-MenuWidth {
		t.Fatalf("ContentWidth = %d", s.ContentWidth())
	}
	if s.ContentHeight() != DefaultH {
		t.Fatalf("ContentHeight = %d", s.ContentHeight())
	}
}

func TestShowPageReplacesContent(t *testing.T) {
	s := New(100, 80)
	p1 := img.NewBitmap(s.ContentWidth(), 80)
	p1.Set(1, 1, true)
	s.ShowPage(p1)
	if !s.Content().Get(1, 1) {
		t.Fatal("page pixel missing")
	}
	p2 := img.NewBitmap(s.ContentWidth(), 80)
	p2.Set(2, 2, true)
	s.ShowPage(p2)
	c := s.Content()
	if c.Get(1, 1) {
		t.Fatal("old page pixel survived ShowPage")
	}
	if !c.Get(2, 2) {
		t.Fatal("new page pixel missing")
	}
	s.ShowPage(nil)
	if s.Content().PopCount() != 0 {
		t.Fatal("nil page should clear")
	}
}

func TestSuperimposeKeepsPrevious(t *testing.T) {
	s := New(100, 80)
	p := img.NewBitmap(s.ContentWidth(), 80)
	p.Set(1, 1, true)
	s.ShowPage(p)
	tr := img.NewBitmap(s.ContentWidth(), 80)
	tr.Set(5, 5, true)
	s.Superimpose(tr)
	c := s.Content()
	if !c.Get(1, 1) || !c.Get(5, 5) {
		t.Fatal("superimpose lost pixels")
	}
}

func TestOverwriteReplacesOnlyMasked(t *testing.T) {
	s := New(100, 80)
	p := img.NewBitmap(s.ContentWidth(), 80)
	p.Fill(img.Rect{X: 0, Y: 0, W: 20, H: 20}, true)
	s.ShowPage(p)
	src := img.NewBitmap(s.ContentWidth(), 80)
	mask := img.NewBitmap(s.ContentWidth(), 80)
	// The overwrite owns a 5x5 area at (2,2) and draws nothing there
	// (blank spots, as in Figures 9-10's route blanking).
	mask.Fill(img.Rect{X: 2, Y: 2, W: 5, H: 5}, true)
	s.Overwrite(src, mask)
	c := s.Content()
	if c.Get(3, 3) {
		t.Fatal("masked pixel not replaced")
	}
	if !c.Get(10, 10) {
		t.Fatal("unmasked pixel damaged")
	}
	// Nil args are no-ops.
	before := c.Hash()
	s.Overwrite(nil, nil)
	if s.Content().Hash() != before {
		t.Fatal("nil overwrite changed content")
	}
}

func TestPinStripReducesContentHeight(t *testing.T) {
	s := New(200, 150)
	strip := img.NewBitmap(s.ContentWidth(), 40)
	strip.Set(0, 0, true)
	s.PinStrip(strip)
	if s.ContentHeight() != 150-40-GutterCols {
		t.Fatalf("ContentHeight with strip = %d", s.ContentHeight())
	}
	// Page content lands below the strip.
	p := img.NewBitmap(s.ContentWidth(), s.ContentHeight())
	p.Set(0, 0, true)
	s.ShowPage(p)
	r := s.Render()
	if !r.Get(0, 0) {
		t.Fatal("strip pixel missing in render")
	}
	if !r.Get(0, 40+GutterCols) {
		t.Fatal("page pixel not offset below strip")
	}
	s.PinStrip(nil)
	if s.ContentHeight() != 150 {
		t.Fatal("unpin did not restore height")
	}
}

func TestMenuRendering(t *testing.T) {
	s := New(300, 200)
	s.SetTitle("XRAY")
	s.SetMenu([]string{"NEXT PAGE", "PREV PAGE"})
	got := s.Menu()
	if len(got) != 2 || got[0] != "NEXT PAGE" {
		t.Fatalf("Menu() = %v", got)
	}
	r := s.Render()
	// Some pixels must appear in the menu column.
	menuArea := r.Extract(img.Rect{X: s.ContentWidth() + 1, Y: 0, W: MenuWidth - 1, H: 60})
	if menuArea.PopCount() == 0 {
		t.Fatal("menu column blank")
	}
	// Separator line present.
	if !r.Get(s.ContentWidth(), 100) {
		t.Fatal("separator missing")
	}
}

func TestIndicatorsSelectable(t *testing.T) {
	s := New(200, 150)
	s.SetIndicators([]Indicator{
		{Kind: RelevantObject, Name: "obj2", At: img.Point{X: 10, Y: 10}},
		{Kind: ReturnFromRelevant, Name: "back", At: img.Point{X: 10, Y: 30}},
	})
	if got := s.SelectAt(12, 12); got != 0 {
		t.Fatalf("SelectAt = %d, want 0", got)
	}
	if got := s.SelectAt(14, 34); got != 1 {
		t.Fatalf("SelectAt = %d, want 1", got)
	}
	if got := s.SelectAt(100, 100); got != -1 {
		t.Fatalf("SelectAt miss = %d, want -1", got)
	}
	// Overlapping indicators: topmost (last) wins.
	s.SetIndicators([]Indicator{
		{Kind: RelevantObject, Name: "a", At: img.Point{X: 10, Y: 10}},
		{Kind: RelevantObject, Name: "b", At: img.Point{X: 12, Y: 12}},
	})
	if got := s.SelectAt(13, 13); got != 1 {
		t.Fatalf("topmost SelectAt = %d, want 1", got)
	}
}

func TestIndicatorRendered(t *testing.T) {
	s := New(200, 150)
	s.SetIndicators([]Indicator{{Kind: VoiceIndicator, Name: "v", At: img.Point{X: 50, Y: 50}}})
	r := s.Render()
	box := r.Extract(img.Rect{X: 50, Y: 50, W: indicatorW, H: indicatorH})
	if box.PopCount() < 10 {
		t.Fatalf("indicator barely drawn: %d pixels", box.PopCount())
	}
}

func TestSnapshotStable(t *testing.T) {
	build := func() *Screen {
		s := New(200, 150)
		s.SetTitle("T")
		s.SetMenu([]string{"A", "B"})
		p := img.NewBitmap(s.ContentWidth(), 150)
		p.Fill(img.Rect{X: 5, Y: 5, W: 20, H: 20}, true)
		s.ShowPage(p)
		return s
	}
	if build().Snapshot() != build().Snapshot() {
		t.Fatal("snapshots differ for identical screens")
	}
	s2 := build()
	s2.SetMenu([]string{"A", "C"})
	if s2.Snapshot() == build().Snapshot() {
		t.Fatal("different menus, same snapshot")
	}
}

func TestComposeTransparenciesStacked(t *testing.T) {
	base := img.NewBitmap(20, 20)
	base.Set(0, 0, true)
	t1 := img.NewBitmap(20, 20)
	t1.Set(1, 1, true)
	t2 := img.NewBitmap(20, 20)
	t2.Set(2, 2, true)
	set := []*img.Bitmap{t1, t2}

	got := ComposeTransparencies(base, set, Stacked, 1, nil)
	if !got.Get(0, 0) || !got.Get(1, 1) || !got.Get(2, 2) {
		t.Fatal("stacked method must show base + all transparencies up to i")
	}
	got = ComposeTransparencies(base, set, Stacked, 0, nil)
	if got.Get(2, 2) {
		t.Fatal("stacked at i=0 must not show transparency 1")
	}
}

func TestComposeTransparenciesSeparate(t *testing.T) {
	base := img.NewBitmap(20, 20)
	base.Set(0, 0, true)
	t1 := img.NewBitmap(20, 20)
	t1.Set(1, 1, true)
	t2 := img.NewBitmap(20, 20)
	t2.Set(2, 2, true)
	set := []*img.Bitmap{t1, t2}

	got := ComposeTransparencies(base, set, Separate, 1, nil)
	if !got.Get(0, 0) || !got.Get(2, 2) {
		t.Fatal("separate method must show base + transparency i")
	}
	if got.Get(1, 1) {
		t.Fatal("separate method must not show earlier transparencies")
	}
}

func TestComposeTransparenciesUserSelection(t *testing.T) {
	base := img.NewBitmap(20, 20)
	t1 := img.NewBitmap(20, 20)
	t1.Set(1, 1, true)
	t2 := img.NewBitmap(20, 20)
	t2.Set(2, 2, true)
	t3 := img.NewBitmap(20, 20)
	t3.Set(3, 3, true)
	set := []*img.Bitmap{t1, t2, t3}

	got := ComposeTransparencies(base, set, Separate, 0, []int{0, 2})
	if !got.Get(1, 1) || !got.Get(3, 3) {
		t.Fatal("selected transparencies missing")
	}
	if got.Get(2, 2) {
		t.Fatal("unselected transparency shown")
	}
	// Out-of-range selections are ignored.
	got = ComposeTransparencies(base, set, Separate, 0, []int{-1, 99})
	if got.PopCount() != 0 {
		t.Fatal("bogus selection drew pixels")
	}
}

func TestComposeTransparenciesOutOfRangeIndex(t *testing.T) {
	base := img.NewBitmap(10, 10)
	base.Set(0, 0, true)
	got := ComposeTransparencies(base, nil, Stacked, 5, nil)
	if got.PopCount() != 1 {
		t.Fatal("out-of-range index should return base only")
	}
}

func TestStringPreview(t *testing.T) {
	s := New(64, 48)
	out := s.String()
	if len(out) == 0 {
		t.Fatal("empty preview")
	}
}

func TestTruncateTo(t *testing.T) {
	if truncateTo("hello", 3) != "hel" {
		t.Error("truncate long")
	}
	if truncateTo("hi", 10) != "hi" {
		t.Error("truncate short")
	}
	if truncateTo("x", 0) != "" {
		t.Error("truncate zero")
	}
}

func TestGoldenTinyRender(t *testing.T) {
	// A fully deterministic miniature render: stable across runs and
	// platforms (pure integer rasterization).
	s := New(48, 24)
	p := img.NewBitmap(s.ContentWidth(), 24)
	p.Fill(img.Rect{X: 1, Y: 1, W: 6, H: 4}, true)
	s.ShowPage(p)
	got := s.Render().ASCII()
	want := "" +
		"....................................#...........\n" +
		".######.............................#...........\n" +
		".######.............................#...........\n" +
		".######.............................#...........\n" +
		".######.............................#...........\n"
	if got[:len(want)] != want {
		t.Fatalf("golden mismatch:\n%s", got[:len(want)])
	}
	// The separator column runs the full height.
	r := s.Render()
	for y := 0; y < s.H; y++ {
		if !r.Get(s.ContentWidth(), y) {
			t.Fatalf("separator missing at y=%d", y)
		}
	}
}
