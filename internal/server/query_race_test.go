package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"minos/internal/index"
	"minos/internal/object"
)

// TestQueryConcurrentWithPublish drives queries in parallel with a stream
// of publishes. Before the segmented index, Query held the server-wide
// s.mu for the whole index walk — queries serialized with publishes and
// with each other; now both run lock-free against the index snapshot. Under
// -race this is the query-vs-publish safety proof; the count assertions
// prove a query never misses an object whose Publish completed first.
func TestQueryConcurrentWithPublish(t *testing.T) {
	const docs = 400
	s := newServer(t, 1<<16)
	var published atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := published.Load()
				ids := s.Query("catalog")
				if int64(len(ids)) < floor {
					t.Errorf("query saw %d objects, %d were published", len(ids), floor)
					return
				}
				for i := 1; i < len(ids); i++ {
					if ids[i] <= ids[i-1] {
						t.Errorf("result not strictly ascending at %d", i)
						return
					}
				}
				// Planned queries share the same snapshot path.
				audio := s.QueryPlanned(index.Query{Terms: []string{"catalog"}, Kind: index.KindAudio})
				if int64(len(audio)) > int64(len(s.Query("catalog"))) {
					t.Errorf("filtered result larger than unfiltered")
					return
				}
			}
		}()
	}
	for i := 0; i < docs; i++ {
		mode := object.Visual
		if i%3 == 0 {
			mode = object.Audio
		}
		o, err := object.NewBuilder(object.ID(i+1), fmt.Sprintf("catalog entry %d", i), mode).
			Text(fmt.Sprintf(".title Entry\ncatalog item tag%04d described here.\n", i)).Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Publish(o); err != nil {
			t.Fatal(err)
		}
		published.Add(1)
	}
	close(stop)
	wg.Wait()

	if got := len(s.Query("catalog")); got != docs {
		t.Fatalf("final query saw %d objects, want %d", got, docs)
	}
	// Attribute predicates against the final corpus.
	audio := s.QueryPlanned(index.Query{Terms: []string{"catalog"}, Kind: index.KindAudio})
	want := 0
	for i := 0; i < docs; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if len(audio) != want {
		t.Fatalf("audio-filtered query saw %d objects, want %d", len(audio), want)
	}
	// And each object's unique term still resolves exactly.
	for _, i := range []int{0, docs / 2, docs - 1} {
		ids := s.Query(fmt.Sprintf("tag%04d", i))
		if len(ids) != 1 || ids[0] != object.ID(i+1) {
			t.Fatalf("tag%04d -> %v, want [%d]", i, ids, i+1)
		}
	}
}
