package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	img "minos/internal/image"
	"minos/internal/object"
)

// raceIters scales the stress loops down under -short (the Makefile's race
// target runs short mode so `make check` stays quick).
func raceIters(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		return full / 4
	}
	return full
}

// TestConcurrentReadsMatchSerial hammers one server from many goroutines
// with overlapping Piece/Miniature/View/Query/Stats requests and asserts
// every response is byte-identical to the serial baseline. Run it under
// `go test -race` to prove the handler paths are data-race free.
func TestConcurrentReadsMatchSerial(t *testing.T) {
	s := newServer(t, 4096)
	if _, err := s.Publish(docObject(t, 1, "the lung shadow is visible here today.\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(docObject(t, 2, "the heart rhythm is regular and steady.\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(imageObject(t, 3)); err != nil {
		t.Fatal(err)
	}

	// Serial baselines, captured before any concurrency.
	type baseline struct {
		piece []byte
		view  *img.Bitmap
		query []object.ID
	}
	base := map[object.ID]*baseline{}
	viewRect := img.Rect{X: 8, Y: 8, W: 48, H: 40}
	for _, id := range s.IDs() {
		ext, err := s.Archiver().ExtentOf(id)
		if err != nil {
			t.Fatal(err)
		}
		data, _, err := s.ReadPiece(ext.Start, ext.Length)
		if err != nil {
			t.Fatal(err)
		}
		base[id] = &baseline{piece: data}
	}
	v, _, err := s.ImageView(3, "map", viewRect)
	if err != nil {
		t.Fatal(err)
	}
	base[3].view = v
	base[3].query = s.Query("the")

	const workers = 32
	iters := raceIters(t, 60)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := s.IDs()
			for i := 0; i < iters; i++ {
				id := ids[(w+i)%3] // the three baseline objects
				ext, err := s.Archiver().ExtentOf(id)
				if err != nil {
					errc <- err
					return
				}
				data, _, err := s.ReadPiece(ext.Start, ext.Length)
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(data, base[id].piece) {
					errc <- fmt.Errorf("worker %d: piece of object %d diverged from serial read", w, id)
					return
				}
				if m := s.Miniature(id); m == nil || m.PopCount() == 0 {
					errc <- fmt.Errorf("worker %d: bad miniature for %d", w, id)
					return
				}
				if _, ok := s.Mode(id); !ok {
					errc <- fmt.Errorf("worker %d: mode of %d missing", w, id)
					return
				}
				switch i % 3 {
				case 0:
					got, _, err := s.ImageView(3, "map", viewRect)
					if err != nil {
						errc <- err
						return
					}
					if !bitmapsEqual(got, base[3].view) {
						errc <- fmt.Errorf("worker %d: view diverged from serial extract", w)
						return
					}
				case 1:
					got := s.Query("the")
					if len(got) < len(base[3].query) {
						errc <- fmt.Errorf("worker %d: Query(the) = %v, want at least %v", w, got, base[3].query)
						return
					}
				case 2:
					st := s.Stats()
					if st.PieceReads <= 0 {
						errc <- fmt.Errorf("worker %d: stats went backwards: %+v", w, st)
						return
					}
				}
			}
		}(w)
	}
	// One writer publishes fresh objects while the readers run: Adopt,
	// Query and Miniature must not race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4+1; i++ {
			id := object.ID(100 + i)
			if _, err := s.Publish(docObject(t, id, "freshly published words arrive.\n")); err != nil {
				errc <- err
				return
			}
			if s.Miniature(id) == nil {
				errc <- fmt.Errorf("published object %d has no miniature", id)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.PieceReads == 0 || st.CacheHits == 0 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestConcurrentMiniatureEncodedChurn hammers the encoded-frame cache from
// many readers while a writer re-adopts the same objects, invalidating the
// cache on every pass. Re-adoption rebuilds a byte-identical miniature, so
// every reader must see exactly the serial baseline bytes — a recycled or
// half-installed buffer would diverge. Run under -race to prove the
// encGen/encMu protocol.
func TestConcurrentMiniatureEncodedChurn(t *testing.T) {
	s := newServer(t, 4096)
	objs := []*object.Object{
		docObject(t, 1, "the lung shadow is visible here today.\n"),
		imageObject(t, 3),
	}
	for _, o := range objs {
		if _, err := s.Publish(o); err != nil {
			t.Fatal(err)
		}
	}
	base := map[object.ID][]byte{}
	for _, o := range objs {
		payload, _, ok := s.MiniatureEncoded(o.ID)
		if !ok || len(payload) == 0 {
			t.Fatalf("no encoded miniature for %d", o.ID)
		}
		base[o.ID] = append([]byte(nil), payload...)
	}

	const readers = 16
	iters := raceIters(t, 200)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				o := objs[(w+i)%len(objs)]
				payload, _, ok := s.MiniatureEncoded(o.ID)
				if !ok {
					errc <- fmt.Errorf("reader %d: miniature of %d vanished", w, o.ID)
					return
				}
				if !bytes.Equal(payload, base[o.ID]) {
					errc <- fmt.Errorf("reader %d: encoded miniature of %d diverged from serial baseline", w, o.ID)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4+1; i++ {
			s.Adopt(objs[i%len(objs)]) // invalidates the encoded cache
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.EncodedHits == 0 || st.EncodedMiss == 0 {
		t.Fatalf("churn saw hits=%d miss=%d; want both nonzero", st.EncodedHits, st.EncodedMiss)
	}
}

func bitmapsEqual(a, b *img.Bitmap) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			if a.Get(x, y) != b.Get(x, y) {
				return false
			}
		}
	}
	return true
}

// TestImageViewSingleFlight verifies that N concurrent first viewers of
// the same image drive exactly one rasterization: the device read count
// grows by one image fetch, not N.
func TestImageViewSingleFlight(t *testing.T) {
	s := newServer(t, 4096)
	if _, err := s.Publish(imageObject(t, 1)); err != nil {
		t.Fatal(err)
	}
	ext, err := s.Archiver().ExtentOf(1)
	if err != nil {
		t.Fatal(err)
	}
	maxBlocks := int64(ext.Length/2048 + 2) // whole object + header slack

	dev := s.Archiver().Device()
	reads0 := dev.Stats().Reads
	const viewers = 16
	var wg sync.WaitGroup
	errc := make(chan error, viewers)
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.ImageView(1, "map", img.Rect{X: 0, Y: 0, W: 64, H: 64})
			if err != nil {
				errc <- err
				return
			}
			if v.W != 64 || v.H != 64 {
				errc <- fmt.Errorf("view dims %dx%d", v.W, v.H)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if delta := dev.Stats().Reads - reads0; delta > maxBlocks {
		t.Fatalf("%d viewers drove %d device reads (single-flight should need at most %d)", viewers, delta, maxBlocks)
	}

	// Error views are not cached: a missing image fails for everyone and
	// keeps failing consistently.
	if _, _, err := s.ImageView(1, "ghost", img.Rect{}); err == nil {
		t.Fatal("view of missing image accepted")
	}
	if _, _, err := s.ImageView(1, "ghost", img.Rect{}); err == nil {
		t.Fatal("second view of missing image accepted")
	}
}

// TestConcurrentPublish races multiple publishers; the WORM directory
// must stay consistent and every object servable afterwards.
func TestConcurrentPublish(t *testing.T) {
	s := newServer(t, 8192)
	const publishers = 8
	iters := raceIters(t, 8)
	var wg sync.WaitGroup
	errc := make(chan error, publishers)
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := object.ID(1 + p*100 + i)
				if _, err := s.Publish(docObject(t, id, fmt.Sprintf("object %d body words.\n", id))); err != nil {
					errc <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	ids := s.IDs()
	if len(ids) != publishers*iters {
		t.Fatalf("archived %d objects, want %d", len(ids), publishers*iters)
	}
	for _, id := range ids {
		o, _, err := s.Load(id)
		if err != nil {
			t.Fatalf("load %d after concurrent publish: %v", id, err)
		}
		if len(o.Stream()) == 0 {
			t.Fatalf("object %d lost its text", id)
		}
	}
}

// TestRunConcurrentLoadWarmHitsStayFast runs the §5 N-reader experiment:
// with a warmed hot set, wall-clock latency percentiles stay flat because
// cache hits never touch the seek semaphore.
func TestRunConcurrentLoadWarmHits(t *testing.T) {
	s := newServer(t, 8192)
	for i := 1; i <= 6; i++ {
		if _, err := s.Publish(docObject(t, object.ID(i), "warm hot set object body with several words inside.\n")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.RunConcurrentLoad(ConcurrentLoadConfig{
		Readers:      8,
		RequestsEach: raceIters(t, 200),
		PieceLen:     1024,
		HotExtents:   4,
		Warm:         true,
		Seed:         7,
	})
	if st.Requests == 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DeviceTime != 0 {
		t.Fatalf("warmed hot-set run paid device time %v (cache should absorb it)", st.DeviceTime)
	}
	if st.P95 == 0 && st.Max == 0 {
		t.Fatalf("no latencies recorded: %+v", st)
	}
	srvStats := s.Stats()
	if srvStats.DeviceWaits != 0 {
		t.Fatalf("cache hits queued on the device semaphore %d times", srvStats.DeviceWaits)
	}
	if st.Throughput <= 0 {
		t.Fatalf("throughput = %v", st.Throughput)
	}
}
