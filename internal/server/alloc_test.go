package server

import (
	"testing"

	"minos/internal/pool"
)

// TestAllocBuildMiniature guards the miniature build path (rasterize +
// labels overlay + downscale): with every intermediate bitmap released, a
// steady-state run should cost only the handful of Bitmap headers.
func TestAllocBuildMiniature(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	o := benchImageObject(t, 1)
	buildMiniature(o).Release() // warm the pool
	avg := testing.AllocsPerRun(20, func() {
		buildMiniature(o).Release()
	})
	if avg > 4 {
		t.Fatalf("buildMiniature allocates %.1f objects/run in steady state, want <= 4", avg)
	}
}
