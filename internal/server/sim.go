package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"minos/internal/disk"
	"minos/internal/vclock"
)

// SchedKind selects the device request scheduler.
type SchedKind uint8

const (
	// FCFS serves requests in arrival order.
	FCFS SchedKind = iota
	// SSTF serves the queued request with the shortest seek from the
	// current head position.
	SSTF
	// SCAN sweeps the head in one direction, serving requests in block
	// order, then reverses (the elevator algorithm).
	SCAN
)

// String names the scheduler.
func (k SchedKind) String() string {
	switch k {
	case FCFS:
		return "fcfs"
	case SSTF:
		return "sstf"
	case SCAN:
		return "scan"
	}
	return fmt.Sprintf("SchedKind(%d)", uint8(k))
}

// SimRequest is one device request in the queueing simulation.
type SimRequest struct {
	Off, Len uint64
	arrive   time.Duration
	done     func(t time.Duration)
}

// DeviceQueue is a single device served by one head with a scheduler; it is
// the queueing model of the shared server device (§5).
type DeviceQueue struct {
	clock *vclock.Clock
	dev   disk.Device
	kind  SchedKind
	serve func(off, length uint64) (time.Duration, error)

	queue   []*SimRequest
	busy    bool
	sweepUp bool

	// Stats.
	served    int
	totalResp time.Duration
	resps     []time.Duration
	busyTime  time.Duration
}

// NewDeviceQueue builds a queue over the device. serve computes the service
// time of a request (e.g. the server's cached ReadPiece); if nil, raw
// extent reads are used.
func NewDeviceQueue(clock *vclock.Clock, dev disk.Device, kind SchedKind, serve func(off, length uint64) (time.Duration, error)) *DeviceQueue {
	q := &DeviceQueue{clock: clock, dev: dev, kind: kind, sweepUp: true, serve: serve}
	if q.serve == nil {
		q.serve = func(off, length uint64) (time.Duration, error) {
			_, t, err := disk.ReadExtent(dev, off, length)
			return t, err
		}
	}
	return q
}

// Submit enqueues a request; done fires on the clock when it completes,
// with the response time (queueing + service).
func (q *DeviceQueue) Submit(off, length uint64, done func(resp time.Duration)) {
	r := &SimRequest{Off: off, Len: length, arrive: q.clock.Now(), done: done}
	q.queue = append(q.queue, r)
	if !q.busy {
		q.dispatch()
	}
}

func (q *DeviceQueue) dispatch() {
	if len(q.queue) == 0 {
		q.busy = false
		return
	}
	q.busy = true
	i := q.pick()
	r := q.queue[i]
	q.queue = append(q.queue[:i], q.queue[i+1:]...)
	svc, err := q.serve(r.Off, r.Len)
	if err != nil {
		svc = 0
	}
	q.busyTime += svc
	q.clock.AfterFunc(svc, func() {
		resp := q.clock.Now() - r.arrive
		q.served++
		q.totalResp += resp
		q.resps = append(q.resps, resp)
		if r.done != nil {
			r.done(resp)
		}
		q.dispatch()
	})
}

// pick selects the next request index per the scheduler.
func (q *DeviceQueue) pick() int {
	if q.kind == FCFS || len(q.queue) == 1 {
		return 0
	}
	bs := uint64(q.dev.BlockSize())
	head := q.dev.Head()
	switch q.kind {
	case SSTF:
		best, bestDist := 0, int(^uint(0)>>1)
		for i, r := range q.queue {
			d := int(r.Off/bs) - head
			if d < 0 {
				d = -d
			}
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		return best
	case SCAN:
		// Serve the nearest request in the sweep direction; reverse at
		// the end of the sweep.
		best, bestDist := -1, int(^uint(0)>>1)
		for i, r := range q.queue {
			d := int(r.Off/bs) - head
			if q.sweepUp && d >= 0 && d < bestDist {
				best, bestDist = i, d
			}
			if !q.sweepUp && d <= 0 && -d < bestDist {
				best, bestDist = i, -d
			}
		}
		if best == -1 {
			q.sweepUp = !q.sweepUp
			return q.pick()
		}
		return best
	}
	return 0
}

// SimStats summarizes a load run.
type SimStats struct {
	Served      int
	Mean        time.Duration
	P95         time.Duration
	Max         time.Duration
	Utilization float64 // busy time / elapsed
	Elapsed     time.Duration
}

// Stats computes the summary given the run's elapsed virtual time.
func (q *DeviceQueue) Stats(elapsed time.Duration) SimStats {
	st := SimStats{Served: q.served, Elapsed: elapsed}
	if q.served == 0 {
		return st
	}
	st.Mean = q.totalResp / time.Duration(q.served)
	sorted := append([]time.Duration(nil), q.resps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.P95 = sorted[(len(sorted)*95)/100-boolToInt(len(sorted)*95%100 == 0)]
	st.Max = sorted[len(sorted)-1]
	if elapsed > 0 {
		st.Utilization = float64(q.busyTime) / float64(elapsed)
	}
	return st
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// LoadConfig drives a closed queueing network: Clients users each issue
// RequestsEach piece reads with ThinkTime between them.
type LoadConfig struct {
	Clients      int
	RequestsEach int
	ThinkTime    time.Duration
	// PieceLen is the read size per request in bytes.
	PieceLen uint64
	// Sched selects the device scheduler.
	Sched SchedKind
	// Seed varies the access pattern.
	Seed uint64
}

// SimulateLoad runs the closed-network load against the server's device
// through the cache, with requests targeting random archived extents. It
// models §5's concern: several users accessing data from the same device.
func (s *Server) SimulateLoad(cfg LoadConfig) SimStats {
	clock := vclock.New()
	q := NewDeviceQueue(clock, s.arch.Device(), cfg.Sched, func(off, length uint64) (time.Duration, error) {
		_, t, err := s.ReadPiece(off, length)
		return t, err
	})
	ids := s.arch.IDs()
	if len(ids) == 0 || cfg.Clients <= 0 || cfg.RequestsEach <= 0 {
		return SimStats{}
	}
	type ext struct{ start, length uint64 }
	exts := make([]ext, 0, len(ids))
	for _, id := range ids {
		e, err := s.arch.ExtentOf(id)
		if err != nil {
			continue
		}
		exts = append(exts, ext{e.Start, e.Length})
	}
	rng := cfg.Seed*2654435761 + 12345
	next := func(mod uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if mod == 0 {
			return 0
		}
		return rng % mod
	}
	var issue func(client, remaining int)
	issue = func(client, remaining int) {
		if remaining == 0 {
			return
		}
		e := exts[next(uint64(len(exts)))]
		pl := cfg.PieceLen
		if pl == 0 || pl > e.length {
			pl = e.length
		}
		off := e.start
		if e.length > pl {
			off += next(e.length - pl)
		}
		q.Submit(off, pl, func(resp time.Duration) {
			clock.AfterFunc(cfg.ThinkTime, func() {
				issue(client, remaining-1)
			})
		})
	}
	for c := 0; c < cfg.Clients; c++ {
		c := c
		// Stagger arrivals slightly so clients do not align perfectly.
		clock.AfterFunc(time.Duration(c)*time.Millisecond, func() {
			issue(c, cfg.RequestsEach)
		})
	}
	elapsed := clock.Run(0)
	return q.Stats(elapsed)
}

// ConcurrentLoadConfig drives Readers real goroutines against the server —
// unlike SimulateLoad's virtual-clock queueing network, this exercises the
// actual concurrent request path (locks, cache, seek semaphore) and
// measures wall-clock latency per request.
type ConcurrentLoadConfig struct {
	// Readers is the number of concurrent reader goroutines.
	Readers int
	// RequestsEach is the number of piece reads each reader issues.
	RequestsEach int
	// PieceLen is the read size per request in bytes (0 = whole extent).
	PieceLen uint64
	// HotExtents restricts reads to the first N archived objects (0 =
	// all); a small hot set drives the cache hit rate up.
	HotExtents int
	// Warm pre-reads the hot set once, serially, before timing starts,
	// so the measured run is cache-hit traffic.
	Warm bool
	// Seed varies the access pattern.
	Seed uint64
}

// ConcurrentLoadStats summarizes a concurrent run. Latencies are wall
// clock; DeviceTime is the summed simulated device service time (zero for
// a fully cache-hit run).
type ConcurrentLoadStats struct {
	Requests   int
	Errors     int
	BytesRead  int64
	Elapsed    time.Duration
	Throughput float64 // requests per wall-clock second
	Mean       time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
	DeviceTime time.Duration
}

// RunConcurrentLoad hammers the server with cfg.Readers goroutines issuing
// overlapping piece reads and reports wall-clock latency percentiles. With
// a warmed hot set it demonstrates the point of dropping the global
// handler lock: cache hits no longer queue behind device reads, so the
// latency distribution stays flat as Readers grows.
func (s *Server) RunConcurrentLoad(cfg ConcurrentLoadConfig) ConcurrentLoadStats {
	ids := s.arch.IDs()
	if len(ids) == 0 || cfg.Readers <= 0 || cfg.RequestsEach <= 0 {
		return ConcurrentLoadStats{}
	}
	type ext struct{ start, length uint64 }
	exts := make([]ext, 0, len(ids))
	for _, id := range ids {
		e, err := s.arch.ExtentOf(id)
		if err != nil {
			continue
		}
		exts = append(exts, ext{e.Start, e.Length})
	}
	if cfg.HotExtents > 0 && cfg.HotExtents < len(exts) {
		exts = exts[:cfg.HotExtents]
	}
	if len(exts) == 0 {
		return ConcurrentLoadStats{}
	}
	if cfg.Warm {
		// Warm the whole hot set: readers hit random offsets inside each
		// extent, so every block must be resident for a pure-hit run.
		for _, e := range exts {
			s.ReadPiece(e.start, e.length)
		}
	}

	var (
		wg      sync.WaitGroup
		errs    atomic.Int64
		bytes   atomic.Int64
		devTime atomic.Int64
		latMu   sync.Mutex
		lats    = make([]time.Duration, 0, cfg.Readers*cfg.RequestsEach)
	)
	start := time.Now()
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := (cfg.Seed+uint64(r)+1)*2654435761 + 12345
			next := func(mod uint64) uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if mod == 0 {
					return 0
				}
				return rng % mod
			}
			mine := make([]time.Duration, 0, cfg.RequestsEach)
			for i := 0; i < cfg.RequestsEach; i++ {
				e := exts[next(uint64(len(exts)))]
				pl := cfg.PieceLen
				if pl == 0 || pl > e.length {
					pl = e.length
				}
				off := e.start
				if e.length > pl {
					off += next(e.length - pl)
				}
				t0 := time.Now()
				data, dt, err := s.ReadPiece(off, pl)
				mine = append(mine, time.Since(t0))
				if err != nil {
					errs.Add(1)
					continue
				}
				bytes.Add(int64(len(data)))
				devTime.Add(int64(dt))
			}
			latMu.Lock()
			lats = append(lats, mine...)
			latMu.Unlock()
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st := ConcurrentLoadStats{
		Requests:   len(lats),
		Errors:     int(errs.Load()),
		BytesRead:  bytes.Load(),
		Elapsed:    elapsed,
		DeviceTime: time.Duration(devTime.Load()),
	}
	if len(lats) == 0 {
		return st
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	st.Mean = sum / time.Duration(len(lats))
	st.P50 = percentileDur(lats, 50)
	st.P95 = percentileDur(lats, 95)
	st.P99 = percentileDur(lats, 99)
	st.Max = lats[len(lats)-1]
	if elapsed > 0 {
		st.Throughput = float64(len(lats)) / elapsed.Seconds()
	}
	return st
}

// LockModel selects the serialization discipline the contention simulation
// imposes on the server.
type LockModel uint8

const (
	// GlobalLock models the seed server: one mutex around every request,
	// so cache hits queue behind device-bound misses (and behind each
	// other).
	GlobalLock LockModel = iota
	// DeviceLock models the current server: only device reads serialize
	// on the seek semaphore; cache hits proceed concurrently.
	DeviceLock
)

// String names the lock model.
func (m LockModel) String() string {
	switch m {
	case GlobalLock:
		return "global-lock"
	case DeviceLock:
		return "device-lock"
	}
	return fmt.Sprintf("LockModel(%d)", uint8(m))
}

// ContentionConfig drives SimulateContention: Clients closed-loop readers
// issue cache-hit piece reads from a warmed hot set while ColdReaders
// stream cache-miss reads from the remaining extents, under the chosen
// lock discipline.
type ContentionConfig struct {
	// Clients is the number of concurrent cache-hit readers.
	Clients int
	// RequestsEach is the number of hit reads each client issues.
	RequestsEach int
	// PieceLen is the hit read size in bytes (0 = whole extent).
	PieceLen uint64
	// HitCost is the CPU time to serve one cache hit — decode, block
	// copies, encode (0 = 50µs, roughly what the wire handler measures
	// for a 64 KiB piece).
	HitCost time.Duration
	// HotExtents is the number of archived objects forming the warmed hot
	// set (0 = half of them, at least one).
	HotExtents int
	// ColdReaders stream cache-miss reads from outside the hot set for
	// the duration of the run (0 = no background device load).
	ColdReaders int
	// Seed varies the access pattern.
	Seed uint64
	// Model is the lock discipline under test.
	Model LockModel
}

// ContentionStats summarizes one SimulateContention run. All times are
// virtual (vclock).
type ContentionStats struct {
	Model         LockModel
	HitRequests   int
	ColdRequests  int
	Elapsed       time.Duration // virtual time until the last hit client finished
	HitThroughput float64       // cache-hit reads per simulated second
	HitMean       time.Duration
	HitP95        time.Duration
}

// SimulateContention replays §5's multi-user scenario on the virtual clock
// under a chosen lock discipline and reports cache-hit throughput. Under
// GlobalLock every request — hit or miss — is served by one FCFS station
// (the seed's handler mutex), so a hit arriving behind an optical read
// waits out the whole seek. Under DeviceLock only misses visit that
// station and hits cost just their CPU time, concurrently. The ratio of
// the two HitThroughput values is the measured payoff of this PR's lock
// split, with miss service times taken from the real disk model.
func (s *Server) SimulateContention(cfg ContentionConfig) ContentionStats {
	st := ContentionStats{Model: cfg.Model}
	ids := s.arch.IDs()
	if len(ids) == 0 || cfg.Clients <= 0 || cfg.RequestsEach <= 0 {
		return st
	}
	type ext struct{ start, length uint64 }
	exts := make([]ext, 0, len(ids))
	for _, id := range ids {
		e, err := s.arch.ExtentOf(id)
		if err != nil {
			continue
		}
		exts = append(exts, ext{e.Start, e.Length})
	}
	if len(exts) == 0 {
		return st
	}
	nh := cfg.HotExtents
	if nh <= 0 {
		nh = max(len(exts)/2, 1)
	}
	if nh > len(exts) {
		nh = len(exts)
	}
	hot, cold := exts[:nh], exts[nh:]
	hitCost := cfg.HitCost
	if hitCost <= 0 {
		hitCost = 50 * time.Microsecond
	}
	// Warm the hot set so the measured clients really are cache-hit
	// traffic.
	for _, e := range hot {
		s.ReadPiece(e.start, e.length)
	}

	clock := vclock.New()
	dev := s.arch.Device()
	rng := cfg.Seed*2654435761 + 12345
	next := func(mod uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if mod == 0 {
			return 0
		}
		return rng % mod
	}

	// One FCFS station: the global mutex (GlobalLock) or the device seek
	// semaphore (DeviceLock). Service times are computed at dispatch so
	// cold reads see the head position their predecessors left.
	type station struct {
		svc  func() time.Duration
		done func()
	}
	var (
		queue []*station
		busy  bool
	)
	var dispatch func()
	submit := func(svc func() time.Duration, done func()) {
		queue = append(queue, &station{svc: svc, done: done})
		if !busy {
			dispatch()
		}
	}
	dispatch = func() {
		if len(queue) == 0 {
			busy = false
			return
		}
		busy = true
		r := queue[0]
		queue = queue[1:]
		clock.AfterFunc(r.svc(), func() {
			r.done()
			dispatch()
		})
	}

	var (
		hitLats  []time.Duration
		finished int
		lastDone time.Duration
	)
	var issueHit func(remaining int)
	issueHit = func(remaining int) {
		if remaining == 0 {
			finished++
			if t := clock.Now(); t > lastDone {
				lastDone = t
			}
			return
		}
		e := hot[next(uint64(len(hot)))]
		pl := cfg.PieceLen
		if pl == 0 || pl > e.length {
			pl = e.length
		}
		off := e.start
		if e.length > pl {
			off += next(e.length - pl)
		}
		// Serve through the real cache; dt is zero when the warm-up
		// covered the blocks and charges honest device time otherwise.
		_, dt, err := s.ReadPiece(off, pl)
		svc := hitCost + dt
		if err != nil {
			svc = hitCost
		}
		t0 := clock.Now()
		done := func() {
			hitLats = append(hitLats, clock.Now()-t0)
			issueHit(remaining - 1)
		}
		if cfg.Model == GlobalLock {
			submit(func() time.Duration { return svc }, done)
		} else {
			// Hits bypass the device station entirely.
			clock.AfterFunc(svc, done)
		}
	}
	var issueCold func()
	issueCold = func() {
		if finished >= cfg.Clients || len(cold) == 0 {
			return
		}
		e := cold[next(uint64(len(cold)))]
		submit(func() time.Duration {
			_, t, err := disk.ReadExtent(dev, e.start, e.length)
			if err != nil {
				return 0
			}
			st.ColdRequests++
			return t
		}, issueCold)
	}
	for c := 0; c < cfg.ColdReaders; c++ {
		issueCold()
	}
	for c := 0; c < cfg.Clients; c++ {
		issueHit(cfg.RequestsEach)
	}
	clock.Run(0)

	st.HitRequests = len(hitLats)
	st.Elapsed = lastDone
	if len(hitLats) == 0 {
		return st
	}
	var sum time.Duration
	for _, l := range hitLats {
		sum += l
	}
	st.HitMean = sum / time.Duration(len(hitLats))
	sort.Slice(hitLats, func(i, j int) bool { return hitLats[i] < hitLats[j] })
	st.HitP95 = percentileDur(hitLats, 95)
	if lastDone > 0 {
		st.HitThroughput = float64(len(hitLats)) / lastDone.Seconds()
	}
	return st
}

// percentileDur returns the p-th percentile of an ascending-sorted slice.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p / 100)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
