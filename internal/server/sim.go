package server

import (
	"fmt"
	"sort"
	"time"

	"minos/internal/disk"
	"minos/internal/vclock"
)

// SchedKind selects the device request scheduler.
type SchedKind uint8

const (
	// FCFS serves requests in arrival order.
	FCFS SchedKind = iota
	// SSTF serves the queued request with the shortest seek from the
	// current head position.
	SSTF
	// SCAN sweeps the head in one direction, serving requests in block
	// order, then reverses (the elevator algorithm).
	SCAN
)

// String names the scheduler.
func (k SchedKind) String() string {
	switch k {
	case FCFS:
		return "fcfs"
	case SSTF:
		return "sstf"
	case SCAN:
		return "scan"
	}
	return fmt.Sprintf("SchedKind(%d)", uint8(k))
}

// SimRequest is one device request in the queueing simulation.
type SimRequest struct {
	Off, Len uint64
	arrive   time.Duration
	done     func(t time.Duration)
}

// DeviceQueue is a single device served by one head with a scheduler; it is
// the queueing model of the shared server device (§5).
type DeviceQueue struct {
	clock *vclock.Clock
	dev   disk.Device
	kind  SchedKind
	serve func(off, length uint64) (time.Duration, error)

	queue   []*SimRequest
	busy    bool
	sweepUp bool

	// Stats.
	served    int
	totalResp time.Duration
	resps     []time.Duration
	busyTime  time.Duration
}

// NewDeviceQueue builds a queue over the device. serve computes the service
// time of a request (e.g. the server's cached ReadPiece); if nil, raw
// extent reads are used.
func NewDeviceQueue(clock *vclock.Clock, dev disk.Device, kind SchedKind, serve func(off, length uint64) (time.Duration, error)) *DeviceQueue {
	q := &DeviceQueue{clock: clock, dev: dev, kind: kind, sweepUp: true, serve: serve}
	if q.serve == nil {
		q.serve = func(off, length uint64) (time.Duration, error) {
			_, t, err := disk.ReadExtent(dev, off, length)
			return t, err
		}
	}
	return q
}

// Submit enqueues a request; done fires on the clock when it completes,
// with the response time (queueing + service).
func (q *DeviceQueue) Submit(off, length uint64, done func(resp time.Duration)) {
	r := &SimRequest{Off: off, Len: length, arrive: q.clock.Now(), done: done}
	q.queue = append(q.queue, r)
	if !q.busy {
		q.dispatch()
	}
}

func (q *DeviceQueue) dispatch() {
	if len(q.queue) == 0 {
		q.busy = false
		return
	}
	q.busy = true
	i := q.pick()
	r := q.queue[i]
	q.queue = append(q.queue[:i], q.queue[i+1:]...)
	svc, err := q.serve(r.Off, r.Len)
	if err != nil {
		svc = 0
	}
	q.busyTime += svc
	q.clock.AfterFunc(svc, func() {
		resp := q.clock.Now() - r.arrive
		q.served++
		q.totalResp += resp
		q.resps = append(q.resps, resp)
		if r.done != nil {
			r.done(resp)
		}
		q.dispatch()
	})
}

// pick selects the next request index per the scheduler.
func (q *DeviceQueue) pick() int {
	if q.kind == FCFS || len(q.queue) == 1 {
		return 0
	}
	bs := uint64(q.dev.BlockSize())
	head := q.dev.Head()
	switch q.kind {
	case SSTF:
		best, bestDist := 0, int(^uint(0)>>1)
		for i, r := range q.queue {
			d := int(r.Off/bs) - head
			if d < 0 {
				d = -d
			}
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		return best
	case SCAN:
		// Serve the nearest request in the sweep direction; reverse at
		// the end of the sweep.
		best, bestDist := -1, int(^uint(0)>>1)
		for i, r := range q.queue {
			d := int(r.Off/bs) - head
			if q.sweepUp && d >= 0 && d < bestDist {
				best, bestDist = i, d
			}
			if !q.sweepUp && d <= 0 && -d < bestDist {
				best, bestDist = i, -d
			}
		}
		if best == -1 {
			q.sweepUp = !q.sweepUp
			return q.pick()
		}
		return best
	}
	return 0
}

// SimStats summarizes a load run.
type SimStats struct {
	Served      int
	Mean        time.Duration
	P95         time.Duration
	Max         time.Duration
	Utilization float64 // busy time / elapsed
	Elapsed     time.Duration
}

// Stats computes the summary given the run's elapsed virtual time.
func (q *DeviceQueue) Stats(elapsed time.Duration) SimStats {
	st := SimStats{Served: q.served, Elapsed: elapsed}
	if q.served == 0 {
		return st
	}
	st.Mean = q.totalResp / time.Duration(q.served)
	sorted := append([]time.Duration(nil), q.resps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.P95 = sorted[(len(sorted)*95)/100-boolToInt(len(sorted)*95%100 == 0)]
	st.Max = sorted[len(sorted)-1]
	if elapsed > 0 {
		st.Utilization = float64(q.busyTime) / float64(elapsed)
	}
	return st
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// LoadConfig drives a closed queueing network: Clients users each issue
// RequestsEach piece reads with ThinkTime between them.
type LoadConfig struct {
	Clients      int
	RequestsEach int
	ThinkTime    time.Duration
	// PieceLen is the read size per request in bytes.
	PieceLen uint64
	// Sched selects the device scheduler.
	Sched SchedKind
	// Seed varies the access pattern.
	Seed uint64
}

// SimulateLoad runs the closed-network load against the server's device
// through the cache, with requests targeting random archived extents. It
// models §5's concern: several users accessing data from the same device.
func (s *Server) SimulateLoad(cfg LoadConfig) SimStats {
	clock := vclock.New()
	q := NewDeviceQueue(clock, s.arch.Device(), cfg.Sched, func(off, length uint64) (time.Duration, error) {
		_, t, err := s.ReadPiece(off, length)
		return t, err
	})
	ids := s.arch.IDs()
	if len(ids) == 0 || cfg.Clients <= 0 || cfg.RequestsEach <= 0 {
		return SimStats{}
	}
	type ext struct{ start, length uint64 }
	exts := make([]ext, 0, len(ids))
	for _, id := range ids {
		e, err := s.arch.ExtentOf(id)
		if err != nil {
			continue
		}
		exts = append(exts, ext{e.Start, e.Length})
	}
	rng := cfg.Seed*2654435761 + 12345
	next := func(mod uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if mod == 0 {
			return 0
		}
		return rng % mod
	}
	var issue func(client, remaining int)
	issue = func(client, remaining int) {
		if remaining == 0 {
			return
		}
		e := exts[next(uint64(len(exts)))]
		pl := cfg.PieceLen
		if pl == 0 || pl > e.length {
			pl = e.length
		}
		off := e.start
		if e.length > pl {
			off += next(e.length - pl)
		}
		q.Submit(off, pl, func(resp time.Duration) {
			clock.AfterFunc(cfg.ThinkTime, func() {
				issue(client, remaining-1)
			})
		})
	}
	for c := 0; c < cfg.Clients; c++ {
		c := c
		// Stagger arrivals slightly so clients do not align perfectly.
		clock.AfterFunc(time.Duration(c)*time.Millisecond, func() {
			issue(c, cfg.RequestsEach)
		})
	}
	elapsed := clock.Run(0)
	return q.Stats(elapsed)
}
