package server

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"minos/internal/disk"
	"minos/internal/object"
	"minos/internal/vclock"
)

// Property: the device queue serves every submitted request exactly once,
// regardless of scheduler and arrival pattern (conservation).
func TestQuickDeviceQueueConservation(t *testing.T) {
	f := func(seed uint32, kind8 uint8) bool {
		kind := SchedKind(kind8 % 3)
		dev, err := disk.NewOptical("q", disk.OpticalGeometry(256))
		if err != nil {
			return false
		}
		clock := vclock.New()
		q := NewDeviceQueue(clock, dev, kind, nil)
		n := int(seed)%30 + 5
		done := 0
		x := seed
		for i := 0; i < n; i++ {
			x = x*1664525 + 1013904223
			off := uint64(x%200) * uint64(dev.BlockSize())
			delay := time.Duration(x%50) * time.Millisecond
			clock.AfterFunc(delay, func() {
				q.Submit(off, 2048, func(time.Duration) { done++ })
			})
		}
		elapsed := clock.Run(0)
		st := q.Stats(elapsed)
		return done == n && st.Served == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// SCAN must not starve far-away requests: a burst near the head plus one
// far request all complete.
func TestSCANNoStarvation(t *testing.T) {
	dev, err := disk.NewOptical("q", disk.OpticalGeometry(2048))
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.New()
	q := NewDeviceQueue(clock, dev, SCAN, nil)
	served := map[int]bool{}
	// Far request first, then a stream of near requests arriving while
	// it waits.
	q.Submit(uint64(2000*dev.BlockSize()), 2048, func(time.Duration) { served[-1] = true })
	for i := 0; i < 20; i++ {
		i := i
		clock.AfterFunc(time.Duration(i)*5*time.Millisecond, func() {
			q.Submit(uint64((i%4)*dev.BlockSize()), 2048, func(time.Duration) { served[i] = true })
		})
	}
	clock.Run(0)
	if !served[-1] {
		t.Fatal("SCAN starved the far request")
	}
	if len(served) != 21 {
		t.Fatalf("served %d of 21", len(served))
	}
}

// The queue's mean response under contention exceeds the uncontended
// service time (queueing delay is real).
func TestQueueingDelayVisible(t *testing.T) {
	mk := func() (*vclock.Clock, *DeviceQueue) {
		dev, _ := disk.NewOptical("q", disk.OpticalGeometry(1024))
		clock := vclock.New()
		return clock, NewDeviceQueue(clock, dev, FCFS, nil)
	}
	// One request alone.
	clock1, q1 := mk()
	q1.Submit(0, 2048, nil)
	st1 := q1.Stats(clock1.Run(0))

	// Ten simultaneous requests.
	clock2, q2 := mk()
	for i := 0; i < 10; i++ {
		q2.Submit(uint64(i*64*q2.dev.BlockSize()), 2048, nil)
	}
	st2 := q2.Stats(clock2.Run(0))
	if st2.Mean <= st1.Mean {
		t.Fatalf("contended mean %v not above solo %v", st2.Mean, st1.Mean)
	}
	if st2.Max <= st2.Mean {
		t.Fatalf("max %v not above mean %v", st2.Max, st2.Mean)
	}
}

// contentionServer archives a spread of documents so the contention sim
// has a hot set to warm and cold extents for background misses.
func contentionServer(t testing.TB) *Server {
	t.Helper()
	s := newServer(t, 8192)
	for i := 1; i <= 16; i++ {
		body := strings.Repeat("payload words for extent spacing.\n", 40+i*5)
		if _, err := s.Publish(docObject(t, object.ID(i), body)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestSimulateContentionModels is the E-CONC experiment: the same mixed
// workload (8 cache-hit clients + 2 cold readers) under the seed's global
// handler lock vs. the device-only lock. Dropping the global lock must buy
// cache hits at least 1.5x throughput — in practice far more, since under
// GlobalLock every hit waits out in-progress optical reads.
func TestSimulateContentionModels(t *testing.T) {
	cfg := ContentionConfig{
		Clients:      8,
		RequestsEach: 50,
		PieceLen:     4096,
		HotExtents:   6,
		ColdReaders:  2,
		Seed:         7,
	}
	cfg.Model = GlobalLock
	global := contentionServer(t).SimulateContention(cfg)
	cfg.Model = DeviceLock
	device := contentionServer(t).SimulateContention(cfg)

	want := cfg.Clients * cfg.RequestsEach
	if global.HitRequests != want || device.HitRequests != want {
		t.Fatalf("hit requests = %d / %d, want %d", global.HitRequests, device.HitRequests, want)
	}
	if global.ColdRequests == 0 {
		t.Fatal("global-lock run saw no background misses")
	}
	if global.HitThroughput <= 0 || device.HitThroughput <= 0 {
		t.Fatalf("throughput = %v / %v", global.HitThroughput, device.HitThroughput)
	}
	ratio := device.HitThroughput / global.HitThroughput
	t.Logf("global-lock: %.0f hits/s mean %v p95 %v elapsed %v (%d cold reads)",
		global.HitThroughput, global.HitMean, global.HitP95, global.Elapsed, global.ColdRequests)
	t.Logf("device-lock: %.0f hits/s mean %v p95 %v elapsed %v (%d cold reads)",
		device.HitThroughput, device.HitMean, device.HitP95, device.Elapsed, device.ColdRequests)
	t.Logf("ratio: %.1fx", ratio)
	if ratio < 1.5 {
		t.Fatalf("device-lock hit throughput only %.2fx global-lock, want > 1.5x", ratio)
	}
	if device.HitP95 >= global.HitP95 {
		t.Fatalf("device-lock p95 %v not below global-lock p95 %v", device.HitP95, global.HitP95)
	}
}

// An empty or trivial config must not hang or divide by zero.
func TestSimulateContentionDegenerate(t *testing.T) {
	s := newServer(t, 256)
	if st := s.SimulateContention(ContentionConfig{Clients: 4, RequestsEach: 4}); st.HitRequests != 0 {
		t.Fatalf("empty archive produced %d hits", st.HitRequests)
	}
	s2 := contentionServer(t)
	st := s2.SimulateContention(ContentionConfig{Clients: 1, RequestsEach: 1, Model: DeviceLock})
	if st.HitRequests != 1 || st.HitThroughput <= 0 {
		t.Fatalf("single request run = %+v", st)
	}
}
