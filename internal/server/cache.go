package server

import (
	"container/list"
	"sync"
)

// BlockCache is a thread-safe LRU cache of device blocks ("the server
// provides access methods, scheduling, cashing", §5). It is self-contained:
// all list/map manipulation and the hit/miss counters live behind one
// mutex, so any number of server goroutines can share it.
type BlockCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recent; values are *cacheEntry
	byBlk  map[uint64]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	blk  uint64
	data []byte
}

// NewBlockCache builds a cache holding up to capBlocks blocks. A capacity
// of zero (or less) disables the cache: every Get misses, every Put is
// dropped.
func NewBlockCache(capBlocks int) *BlockCache {
	return &BlockCache{cap: capBlocks, ll: list.New(), byBlk: map[uint64]*list.Element{}}
}

// Get returns the cached block or nil. The returned slice is shared with
// the cache and must be treated as read-only.
func (c *BlockCache) Get(blk uint64) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byBlk[blk]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*cacheEntry).data
	}
	c.misses++
	return nil
}

// peek is Get without touching the hit/miss counters, for the re-check
// after a seek-semaphore wait: the request already recorded its miss, and
// finding the block fetched meanwhile should not count as a second lookup.
func (c *BlockCache) peek(blk uint64) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byBlk[blk]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*cacheEntry).data
	}
	return nil
}

// Put inserts a block, evicting the least recently used beyond capacity.
func (c *BlockCache) Put(blk uint64, data []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byBlk[blk]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).data = data
		return
	}
	e := c.ll.PushFront(&cacheEntry{blk: blk, data: data})
	c.byBlk[blk] = e
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byBlk, old.Value.(*cacheEntry).blk)
	}
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the cache capacity in blocks.
func (c *BlockCache) Cap() int { return c.cap }

// Counters returns the accumulated hit/miss counts.
func (c *BlockCache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// ResetCounters zeroes the hit/miss counters; cached contents are kept.
func (c *BlockCache) ResetCounters() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = 0, 0
}
