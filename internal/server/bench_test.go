package server

import (
	"testing"

	"minos/internal/object"
)

func BenchmarkReadPieceWarm(b *testing.B) {
	s := newServer(b, 2048)
	o, err := object.NewBuilder(1, "bench", object.Visual).
		Text(".title Bench\nwords to occupy a few blocks of storage here.\n").Build()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Publish(o); err != nil {
		b.Fatal(err)
	}
	ext, _ := s.Archiver().ExtentOf(1)
	s.ReadPiece(ext.Start, ext.Length) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ReadPiece(ext.Start, ext.Length); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublish(b *testing.B) {
	s := newServer(b, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := object.NewBuilder(object.ID(i+1), "bench", object.Visual).
			Text(".title Bench\nwords to occupy a few blocks of storage here.\n").Build()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Publish(o); err != nil {
			b.Fatal(err)
		}
	}
}
