package server

import (
	"testing"

	"minos/internal/descriptor"
	img "minos/internal/image"
	"minos/internal/object"
)

// benchImageObject builds an image-bearing object comparable to the demo
// corpus figures: a 320x240 drawing surface with a few dozen graphics.
func benchImageObject(tb testing.TB, id object.ID) *object.Object {
	tb.Helper()
	im := img.New("map", 320, 240)
	for i := 0; i < 40; i++ {
		im.Add(img.Graphic{Shape: img.ShapeCircle,
			Points: []img.Point{{X: (i * 37) % 320, Y: (i * 53) % 240}}, Radius: 6,
			Label: img.Label{Kind: img.TextLabel, Text: "SITE", At: img.Point{X: 5, Y: 5}}})
	}
	o, err := object.NewBuilder(id, "bench-map", object.Visual).
		Text(".title Bench\nthe bench map object.\n").Image(im).Build()
	if err != nil {
		tb.Fatal(err)
	}
	return o
}

// BenchmarkRasterizeEncode is the rasterize→encode hot path measured by the
// E-ALLOC experiment: build an object's miniature (rasterize + downscale)
// and wire-encode it, exactly what serving a cold miniature costs.
func BenchmarkRasterizeEncode(b *testing.B) {
	o := benchImageObject(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := buildMiniature(o)
		if _, err := descriptor.EncodePart(descriptor.PartBitmap, m); err != nil {
			b.Fatal(err)
		}
		m.Release() // transient here, as when Adopt replaces a miniature
	}
}

func BenchmarkReadPieceWarm(b *testing.B) {
	s := newServer(b, 2048)
	o, err := object.NewBuilder(1, "bench", object.Visual).
		Text(".title Bench\nwords to occupy a few blocks of storage here.\n").Build()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Publish(o); err != nil {
		b.Fatal(err)
	}
	ext, _ := s.Archiver().ExtentOf(1)
	s.ReadPiece(ext.Start, ext.Length) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ReadPiece(ext.Start, ext.Length); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublish(b *testing.B) {
	s := newServer(b, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := object.NewBuilder(object.ID(i+1), "bench", object.Visual).
			Text(".title Bench\nwords to occupy a few blocks of storage here.\n").Build()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Publish(o); err != nil {
			b.Fatal(err)
		}
	}
}
