package server

import (
	"strings"
	"testing"
	"time"

	"minos/internal/archiver"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/object"
)

func newServer(t testing.TB, blocks int, opts ...Option) *Server {
	t.Helper()
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(blocks))
	if err != nil {
		t.Fatal(err)
	}
	return New(archiver.New(dev), opts...)
}

func docObject(t testing.TB, id object.ID, body string) *object.Object {
	t.Helper()
	o, err := object.NewBuilder(id, "doc", object.Visual).Text(body).Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func imageObject(t testing.TB, id object.ID) *object.Object {
	t.Helper()
	im := img.New("map", 128, 128)
	im.Base = img.NewBitmap(128, 128)
	im.Base.Fill(img.Rect{X: 16, Y: 16, W: 96, H: 96}, true)
	o, err := object.NewBuilder(id, "map", object.Visual).
		Text(".title Map\nA city map with sites.\n").
		Image(im).Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPublishAndLoad(t *testing.T) {
	s := newServer(t, 1024)
	if _, err := s.Publish(docObject(t, 1, "alpha beta gamma.\n")); err != nil {
		t.Fatal(err)
	}
	o, dur, err := s.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Stream()) != 3 {
		t.Fatalf("stream = %d words", len(o.Stream()))
	}
	if dur < 0 {
		t.Fatal("negative duration")
	}
}

func TestQueryThroughServer(t *testing.T) {
	s := newServer(t, 2048)
	s.Publish(docObject(t, 1, "the lung shadow is visible.\n"))
	s.Publish(docObject(t, 2, "the heart rhythm is regular.\n"))
	if got := s.Query("lung"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Query(lung) = %v", got)
	}
	if got := s.Query("the"); len(got) != 2 {
		t.Fatalf("Query(the) = %v", got)
	}
}

func TestMiniatures(t *testing.T) {
	s := newServer(t, 2048)
	s.Publish(imageObject(t, 1))
	s.Publish(docObject(t, 2, "pure text object.\n"))
	m1 := s.Miniature(1)
	if m1 == nil || m1.W > MiniatureSize+8 {
		t.Fatalf("image miniature = %+v", m1)
	}
	if m1.PopCount() == 0 {
		t.Fatal("image miniature blank")
	}
	m2 := s.Miniature(2)
	if m2 == nil || m2.PopCount() == 0 {
		t.Fatal("text miniature blank")
	}
	if s.Miniature(99) != nil {
		t.Fatal("phantom miniature")
	}
	// Miniatures are much smaller than the full object data.
	ext, _ := s.Archiver().ExtentOf(1)
	if uint64(m1.ByteSize()) >= ext.Length/4 {
		t.Fatalf("miniature %d bytes vs object %d", m1.ByteSize(), ext.Length)
	}
}

func TestAudioModeBadge(t *testing.T) {
	s := newServer(t, 2048)
	o, err := object.NewBuilder(3, "spoken", object.Audio).
		Text(".title Spoken\nSome words here.\n").Build()
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(o)
	m := s.Miniature(3)
	if m == nil || !m.Get(m.W-2, 1) {
		t.Fatal("audio badge missing")
	}
	if mode, ok := s.Mode(3); !ok || mode != object.Audio {
		t.Fatal("mode not recorded")
	}
}

func TestCacheMakesRereadsFree(t *testing.T) {
	s := newServer(t, 1024, WithCache(512))
	s.Publish(docObject(t, 1, strings.Repeat("words in the body. ", 50)+"\n"))
	ext, _ := s.Archiver().ExtentOf(1)
	_, cold, err := s.ReadPiece(ext.Start, ext.Length)
	if err != nil {
		t.Fatal(err)
	}
	if cold == 0 {
		t.Fatal("cold read cost nothing")
	}
	_, warm, err := s.ReadPiece(ext.Start, ext.Length)
	if err != nil {
		t.Fatal(err)
	}
	if warm != 0 {
		t.Fatalf("warm read cost %v", warm)
	}
	st := s.Stats()
	if st.CacheHits == 0 || st.CacheMiss == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoCacheAlwaysPays(t *testing.T) {
	s := newServer(t, 1024, WithCache(0))
	s.Publish(docObject(t, 1, "alpha beta gamma delta.\n"))
	ext, _ := s.Archiver().ExtentOf(1)
	_, t1, _ := s.ReadPiece(ext.Start, ext.Length)
	_, t2, _ := s.ReadPiece(ext.Start, ext.Length)
	if t1 == 0 || t2 == 0 {
		t.Fatal("uncached reads cost nothing")
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := NewBlockCache(2)
	c.Put(1, []byte{1})
	c.Put(2, []byte{2})
	if c.Get(1) == nil {
		t.Fatal("block 1 evicted early")
	}
	c.Put(3, []byte{3}) // evicts 2 (LRU)
	if c.Get(2) != nil {
		t.Fatal("LRU did not evict block 2")
	}
	if c.Get(1) == nil || c.Get(3) == nil {
		t.Fatal("wrong entries evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Re-put updates in place.
	c.Put(1, []byte{9})
	if got := c.Get(1); got[0] != 9 {
		t.Fatal("Put did not update")
	}
}

func TestDescriptorThroughCache(t *testing.T) {
	s := newServer(t, 1024)
	s.Publish(docObject(t, 1, "alpha beta.\n"))
	d, _, err := s.Descriptor(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 1 || len(d.Parts) == 0 {
		t.Fatalf("descriptor = %+v", d)
	}
	if _, _, err := s.Descriptor(42); err == nil {
		t.Fatal("missing object served")
	}
}

func TestStatsAndReset(t *testing.T) {
	s := newServer(t, 1024)
	s.Publish(docObject(t, 1, "alpha.\n"))
	s.Load(1)
	st := s.Stats()
	if st.PieceReads == 0 || st.BytesOut == 0 {
		t.Fatalf("stats = %+v", st)
	}
	s.ResetStats()
	st = s.Stats()
	if st.PieceReads != 0 || st.BytesOut != 0 || st.CacheHits != 0 {
		t.Fatalf("reset stats = %+v", st)
	}
}

func publishMany(t testing.TB, s *Server, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		body := ".title Doc\n" + strings.Repeat("filler words to occupy several blocks of optical storage. ", 30) + "\n"
		if _, err := s.Publish(docObject(t, object.ID(i), body)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimulateLoadResponseGrowsWithClients(t *testing.T) {
	s := newServer(t, 8192, WithCache(0))
	publishMany(t, s, 10)
	light := s.SimulateLoad(LoadConfig{Clients: 1, RequestsEach: 12, ThinkTime: 50 * time.Millisecond, PieceLen: 4096, Sched: FCFS, Seed: 1})
	heavy := s.SimulateLoad(LoadConfig{Clients: 12, RequestsEach: 12, ThinkTime: 50 * time.Millisecond, PieceLen: 4096, Sched: FCFS, Seed: 1})
	if light.Served != 12 || heavy.Served != 144 {
		t.Fatalf("served %d / %d", light.Served, heavy.Served)
	}
	if heavy.Mean <= light.Mean {
		t.Fatalf("mean response did not grow with load: light=%v heavy=%v", light.Mean, heavy.Mean)
	}
	if heavy.Utilization <= light.Utilization {
		t.Fatalf("utilization did not grow: %v vs %v", heavy.Utilization, light.Utilization)
	}
}

func TestSimulateLoadSchedulerHelps(t *testing.T) {
	s1 := newServer(t, 8192, WithCache(0))
	publishMany(t, s1, 12)
	fcfs := s1.SimulateLoad(LoadConfig{Clients: 10, RequestsEach: 10, ThinkTime: 5 * time.Millisecond, PieceLen: 2048, Sched: FCFS, Seed: 3})

	s2 := newServer(t, 8192, WithCache(0))
	publishMany(t, s2, 12)
	sstf := s2.SimulateLoad(LoadConfig{Clients: 10, RequestsEach: 10, ThinkTime: 5 * time.Millisecond, PieceLen: 2048, Sched: SSTF, Seed: 3})

	if sstf.Mean >= fcfs.Mean {
		t.Fatalf("SSTF (%v) not better than FCFS (%v) under load", sstf.Mean, fcfs.Mean)
	}
}

func TestSimulateLoadEmpty(t *testing.T) {
	s := newServer(t, 64)
	st := s.SimulateLoad(LoadConfig{Clients: 2, RequestsEach: 2})
	if st.Served != 0 {
		t.Fatalf("served %d on empty archive", st.Served)
	}
}

func TestSchedKindString(t *testing.T) {
	if FCFS.String() != "fcfs" || SSTF.String() != "sstf" || SCAN.String() != "scan" {
		t.Fatal("SchedKind.String mismatch")
	}
}

func TestSCANServesAll(t *testing.T) {
	s := newServer(t, 8192, WithCache(0))
	publishMany(t, s, 12)
	scan := s.SimulateLoad(LoadConfig{Clients: 8, RequestsEach: 8, ThinkTime: time.Millisecond, PieceLen: 2048, Sched: SCAN, Seed: 5})
	if scan.Served != 64 {
		t.Fatalf("SCAN served %d of 64", scan.Served)
	}
}
