package server

import (
	"bytes"
	"testing"

	"minos/internal/descriptor"
	"minos/internal/object"
)

// TestMiniatureEncodedCache covers the encoded-frame cache life cycle:
// first request encodes and installs (a miss), repeats serve the cached
// bytes (hits), and Adopt invalidates so the next request re-encodes.
func TestMiniatureEncodedCache(t *testing.T) {
	s := newServer(t, 4096)
	o := imageObject(t, 1)
	if _, err := s.Publish(o); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()

	p1, mode, ok := s.MiniatureEncoded(1)
	if !ok || len(p1) == 0 {
		t.Fatalf("MiniatureEncoded(1) = ok %v, %d bytes", ok, len(p1))
	}
	if mode != object.Visual {
		t.Fatalf("mode = %v", mode)
	}
	want, err := descriptor.EncodePart(descriptor.PartBitmap, s.Miniature(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, want) {
		t.Fatal("cached payload differs from a direct encode")
	}

	p2, _, ok := s.MiniatureEncoded(1)
	if !ok || &p2[0] != &p1[0] {
		t.Fatal("second request did not serve the cached bytes")
	}
	if st := s.Stats(); st.EncodedMiss != 1 || st.EncodedHits != 1 {
		t.Fatalf("after one miss + one hit: hits=%d miss=%d", st.EncodedHits, st.EncodedMiss)
	}

	// Adopt invalidates: the next request misses, re-encodes identically,
	// and the old slice is still intact (dropped, never recycled).
	s.Adopt(o)
	p3, _, ok := s.MiniatureEncoded(1)
	if !ok || !bytes.Equal(p3, want) {
		t.Fatal("re-encoded payload after Adopt diverged")
	}
	if st := s.Stats(); st.EncodedMiss != 2 {
		t.Fatalf("Adopt did not invalidate: miss=%d", st.EncodedMiss)
	}
	if !bytes.Equal(p1, want) {
		t.Fatal("invalidation corrupted the previously returned payload")
	}

	// Unpublished object: not ok, nothing cached.
	if _, _, ok := s.MiniatureEncoded(99); ok {
		t.Fatal("MiniatureEncoded of unknown object reported ok")
	}

	// Adopt's buildMiniature released its intermediates, so the pool
	// counters (allocs on a cold pool, recycles always) surface in stats.
	st := s.Stats()
	if st.PoolRecycled == 0 {
		t.Fatalf("pool counters absent from stats: %+v", st)
	}
	s.ResetStats()
	if st = s.Stats(); st.EncodedHits != 0 || st.EncodedMiss != 0 || st.PoolAllocs != 0 || st.PoolRecycled != 0 {
		t.Fatalf("ResetStats left counters: %+v", st)
	}
}
