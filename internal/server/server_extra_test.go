package server

import (
	"strings"
	"testing"

	"minos/internal/archiver"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/text"
	"minos/internal/voice"
)

func bigImageObject(t testing.TB, id object.ID, w, h int) *object.Object {
	t.Helper()
	im := img.New("big", w, h)
	im.Base = img.NewBitmap(w, h)
	for y := 0; y < h; y += 7 {
		for x := 0; x < w; x++ {
			im.Base.Set(x, y, true)
		}
	}
	o, err := object.NewBuilder(id, "big", object.Visual).
		Text(".title Big\nA very large image object for view tests.\n").
		Image(im).Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestImageViewServesOnlyRect(t *testing.T) {
	s := newServer(t, 1<<14)
	s.Publish(bigImageObject(t, 1, 320, 240))

	view, dur, err := s.ImageView(1, "big", img.Rect{X: 10, Y: 10, W: 50, H: 40})
	if err != nil {
		t.Fatal(err)
	}
	if view.W != 50 || view.H != 40 {
		t.Fatalf("view dims %dx%d", view.W, view.H)
	}
	if view.PopCount() == 0 {
		t.Fatal("view blank")
	}
	if dur == 0 {
		t.Fatal("first view paid no device time")
	}
	// Second view hits the raster cache: no device time.
	_, dur2, err := s.ImageView(1, "big", img.Rect{X: 100, Y: 100, W: 50, H: 40})
	if err != nil {
		t.Fatal(err)
	}
	if dur2 != 0 {
		t.Fatalf("cached view cost %v", dur2)
	}
	// Clipping.
	clipped, _, err := s.ImageView(1, "big", img.Rect{X: 300, Y: 220, W: 100, H: 100})
	if err != nil {
		t.Fatal(err)
	}
	if clipped.W != 20 || clipped.H != 20 {
		t.Fatalf("clipped view %dx%d", clipped.W, clipped.H)
	}
	// Errors.
	if _, _, err := s.ImageView(1, "ghost", img.Rect{}); err == nil {
		t.Fatal("view on missing image accepted")
	}
	if _, _, err := s.ImageView(42, "big", img.Rect{}); err == nil {
		t.Fatal("view on missing object accepted")
	}
}

func TestVoicePreview(t *testing.T) {
	s := newServer(t, 1<<14)
	seg, _ := text.Parse(strings.Repeat("many words spoken in a long recording. ", 20) + "\n")
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000)
	o, err := object.NewBuilder(5, "spoken", object.Audio).VoicePart(syn.Part).Build()
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(o)
	vp := s.VoicePreview(5)
	if vp == nil {
		t.Fatal("no preview")
	}
	if len(vp.Samples) != 2000*PreviewSeconds {
		t.Fatalf("preview samples = %d, want %d", len(vp.Samples), 2000*PreviewSeconds)
	}
	// Visual objects have no preview.
	s.Publish(docObject(t, 6, "text only.\n"))
	if s.VoicePreview(6) != nil {
		t.Fatal("visual object has a preview")
	}
	// Short recordings preview in full.
	short, _ := text.Parse("hi.\n")
	shortSyn := voice.Synthesize(text.Flatten(short), voice.DefaultSpeaker(), 2000)
	o2, _ := object.NewBuilder(7, "short", object.Audio).VoicePart(shortSyn.Part).Build()
	s.Publish(o2)
	if got := s.VoicePreview(7); len(got.Samples) != len(shortSyn.Part.Samples) {
		t.Fatal("short preview truncated")
	}
}

func TestPublishMailed(t *testing.T) {
	// Organization A archives an object and mails it outside.
	a := newServer(t, 1<<14)
	a.Publish(bigImageObject(t, 11, 100, 80))
	blob, _, err := a.Archiver().MailOut(11, false)
	if err != nil {
		t.Fatal(err)
	}
	// Organization B ingests the blob.
	bSrv := newServer(t, 1<<14)
	id, _, err := bSrv.PublishMailed(blob)
	if err != nil {
		t.Fatal(err)
	}
	if id != 11 {
		t.Fatalf("mailed id = %d", id)
	}
	o, _, err := bSrv.Load(11)
	if err != nil {
		t.Fatal(err)
	}
	if o.ImageByName("big") == nil {
		t.Fatal("mailed image lost")
	}
	// And it is queryable at B.
	if got := bSrv.Query("view"); len(got) != 1 {
		t.Fatalf("Query at B = %v", got)
	}
	// Garbage blobs are rejected.
	if _, _, err := bSrv.PublishMailed([]byte("junk")); err == nil {
		t.Fatal("junk blob accepted")
	}
	// Inside-mail blobs (foreign archiver pointers) are rejected.
	a.Publish(bigImageObject(t, 12, 64, 48))
	a2 := newServer(t, 1<<14)
	a2.Publish(bigImageObject(t, 13, 64, 48))
	inBlob, _, err := a2.Archiver().MailOut(13, true)
	if err != nil {
		t.Fatal(err)
	}
	// Inside blob without archiver pointers is self-contained and loads
	// anyway; force a pointer by sharing.
	shared := bigImageObject(t, 14, 64, 48)
	if _, _, err := a2.Archiver().Archive(shared, archiver.SharedPart{Part: "big", From: 999, FromPart: "big"}); err == nil {
		t.Fatal("share from missing object accepted")
	}
	_ = inBlob
}
