package server

import (
	"fmt"
	"time"

	"minos/internal/descriptor"
	"minos/internal/object"
)

// VoicePCM locates the streamable PCM region of an object's primary voice
// part: the run of little-endian 2-byte samples inside the encoded part.
// The streaming voice producer cuts exactly this region into page-sized
// chunks; everything around it (rate header, markers, utterances) stays on
// the server, so the stream carries only what the output device consumes.
type VoicePCM struct {
	Rate    int    // samples per second
	Samples uint64 // total PCM sample count
	Off     uint64 // archiver-absolute offset of the first PCM byte
	Bytes   uint64 // PCM region length: 2 * Samples
}

// VoicePCMInfoAs resolves the PCM region of id's first voice part reading
// only the descriptor and the part's few header bytes — not the part
// itself, which is the point: a multi-minute recording is located with two
// small cached reads and then streamed chunk by chunk.
func (s *Server) VoicePCMInfoAs(tenant uint64, id object.ID) (VoicePCM, time.Duration, error) {
	d, total, err := s.DescriptorAs(tenant, id)
	if err != nil {
		return VoicePCM{}, total, err
	}
	var ref *descriptor.PartRef
	for i := range d.Parts {
		if d.Parts[i].Kind == descriptor.PartVoice {
			ref = &d.Parts[i]
			break
		}
	}
	if ref == nil {
		return VoicePCM{}, total, fmt.Errorf("server: object %d has no voice part", id)
	}
	n := uint64(descriptor.VoicePCMHeaderMax)
	if n > ref.Length {
		n = ref.Length
	}
	prefix, t, err := s.ReadPieceAs(tenant, ref.Offset, n)
	total += t
	if err != nil {
		return VoicePCM{}, total, err
	}
	rate, cnt, start, err := descriptor.VoicePCMInfo(prefix)
	if err != nil {
		return VoicePCM{}, total, fmt.Errorf("server: object %d voice part: %w", id, err)
	}
	if uint64(start)+2*cnt < cnt || uint64(start)+2*cnt > ref.Length {
		return VoicePCM{}, total, fmt.Errorf("server: object %d voice part claims %d samples beyond its %d-byte extent", id, cnt, ref.Length)
	}
	return VoicePCM{Rate: rate, Samples: cnt, Off: ref.Offset + uint64(start), Bytes: 2 * cnt}, total, nil
}
