package server

import (
	"bytes"
	"sync"
	"testing"

	"minos/internal/object"
)

// TestResizeUnderLoadRace exercises the hazard the old channel semaphore
// documented but could not survive: SetSeekConcurrency and SetMaxInFlight
// called concurrently with in-flight device reads. With the sched.Semaphore
// and sched.Admission delegates, resizing under load is part of the
// contract — reads must stay correct (byte-identical to a quiet baseline)
// and no state may leak. Run under -race.
func TestResizeUnderLoadRace(t *testing.T) {
	s := newServer(t, 8192, WithCache(4)) // tiny cache: most reads hit the device
	bodies := []string{
		"the lung shadow is visible here today and tomorrow.\n",
		"the heart rhythm is regular, steady, unremarkable.\n",
		"the archive keeps every optical transparency forever.\n",
	}
	type extent struct{ off, length uint64 }
	var extents []extent
	var baselines [][]byte
	for i, body := range bodies {
		o := docObject(t, object.ID(100+i), body)
		if _, err := s.Publish(o); err != nil {
			t.Fatal(err)
		}
		ext, err := s.Archiver().ExtentOf(o.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _, err := s.ReadPiece(ext.Start, ext.Length)
		if err != nil {
			t.Fatal(err)
		}
		extents = append(extents, extent{ext.Start, ext.Length})
		baselines = append(baselines, data)
	}

	iters := raceIters(t, 400)
	var wg sync.WaitGroup
	errc := make(chan error, 8)

	// Readers: admitted device reads in flight throughout the run.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(tenant uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				release, err := s.AdmitAs(tenant)
				if err != nil {
					// Shed by a concurrently shrunken gate: transient
					// and expected, not a failure.
					continue
				}
				k := (int(tenant) + i) % len(extents)
				data, _, err := s.ReadPieceAs(tenant, extents[k].off, extents[k].length)
				release()
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(data, baselines[k]) {
					errc <- errMismatch(k)
					return
				}
			}
		}(uint64(g + 1))
	}
	// Resizers: swap the seek semaphore, the admission bound and the
	// read-ahead depth while the readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.SetSeekConcurrency(1 + i%4)
			s.SetMaxInFlight(1 + i%8)
			s.SetReadAhead(i % 3)
		}
		// Leave generous settings so late readers are not shed forever.
		s.SetSeekConcurrency(2)
		s.SetMaxInFlight(0)
		s.SetReadAhead(0)
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After the storm: mutual exclusion still intact at concurrency 1 and
	// a quiet read still byte-identical.
	s.SetSeekConcurrency(1)
	data, _, err := s.ReadPiece(extents[0].off, extents[0].length)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, baselines[0]) {
		t.Fatal("post-storm read diverged from baseline")
	}
}

type errMismatch int

func (e errMismatch) Error() string {
	return "concurrent read diverged from serial baseline during resize storm"
}
