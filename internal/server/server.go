// Package server implements the MINOS multimedia object server subsystem
// (§5): it is "optical disk based", stores objects in the archived state,
// and "provides access methods, scheduling, cashing, version control". The
// workstation's presentation manager "requests the appropriate pieces of
// information from the multimedia object server", so the server interface
// is piece-oriented: descriptors and byte extents, never whole objects.
//
// Performance concerns — "queueing delays that may be experienced when
// several users try to access data from the same device" — are measurable
// through the load simulation in sim.go.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minos/internal/archiver"
	"minos/internal/descriptor"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/index"
	"minos/internal/layout"
	"minos/internal/object"
	"minos/internal/pool"
	"minos/internal/sched"
	"minos/internal/voice"
)

// MiniatureSize is the pixel width of object miniatures served to the
// sequential browsing interface (§5).
const MiniatureSize = 64

// Server is the multimedia object server. It is safe for concurrent use:
// the wire layer serves every connection in parallel, so all serving state
// is either immutable, guarded by mu, atomic, or (for the block cache and
// the devices) self-synchronizing. Device access is bounded by a seek
// semaphore — by default one outstanding device read, preserving the
// paper's single-optical-head queueing behaviour — so cache hits never
// queue behind a seek.
type Server struct {
	arch *archiver.Archiver
	// store is the segmented content index. It synchronizes itself
	// (lock-free snapshot queries, bounded memtable, background merge), so
	// neither Query nor Adopt involves s.mu for content retrieval.
	store *index.Store
	cache *BlockCache

	// devSem bounds concurrent device reads (the configurable "number of
	// heads") with per-tenant fair queueing; acquisition wait time is the
	// contention signal reported by Stats.
	devSem *sched.Semaphore

	// mu guards the serving maps below.
	mu       sync.RWMutex
	minis    map[object.ID]*img.Bitmap
	modes    map[object.ID]object.Mode
	previews map[object.ID]*voice.Part
	// rasters caches rasterized image parts so repeated view requests
	// pay the device once (the raster stays on the server's magnetic
	// disk / memory in the paper's architecture). Entries are created
	// before rasterization starts, so concurrent viewers of the same
	// image single-flight onto one rasterization.
	rasters map[string]*rasterJob

	// encMinis is the encoded-frame cache: the wire-ready miniature reply
	// bytes per object, so a warm miniature request skips rasterize and
	// encode entirely. Guarded by encMu (never held together with mu);
	// encGen is bumped on every Adopt so a slow encoder cannot install a
	// stale entry over an invalidation.
	encMu    sync.RWMutex
	encMinis map[object.ID]encodedMini
	encGen   atomic.Int64
	encHits  atomic.Int64
	encMiss  atomic.Int64

	// ra coordinates sequential block read-ahead: depth in blocks (0 =
	// disabled) plus a single-sweep claim so misses cannot fan out a
	// goroutine storm onto the seek semaphore.
	ra sched.ReadAhead

	// adm is the per-tenant admission gate for device-bound requests.
	// When the gate is full (or a tenant exceeds its fair share), Admit
	// sheds the request with ErrBusy instead of queueing without bound —
	// the client backs off and retries.
	adm *sched.Admission

	// cmap is this fleet member's cluster map: an opaque encoded payload
	// (internal/cluster owns the encoding) plus its epoch, handed to
	// clients at HELLO time and on epoch-mismatch refetches. Standalone
	// servers have none.
	cmapMu      sync.RWMutex
	cmapEpoch   uint64
	cmapPayload []byte

	// Stats (atomic: bumped on every piece read, no lock on the hot path).
	pieceReads   atomic.Int64
	bytesOut     atomic.Int64
	devWaits     atomic.Int64
	devWaitNanos atomic.Int64
	raBlocks     atomic.Int64
}

// encodedMini is one encoded-frame cache entry: the descriptor-encoded
// miniature payload (a read-only shared slice — both wire protocol versions
// carry this same payload encoding, so one entry serves v1 and v2) plus the
// driving mode the reply framing needs.
type encodedMini struct {
	payload []byte
	mode    object.Mode
}

// rasterJob is a single-flight slot for one (object, image) raster: the
// first requester rasterizes, everyone else blocks on done and shares the
// result.
type rasterJob struct {
	done chan struct{}
	bm   *img.Bitmap
	dur  time.Duration
	err  error
}

// Option configures the server.
type Option func(*Server)

// WithCache installs a block cache of the given capacity (in device
// blocks). Zero capacity disables caching.
func WithCache(blocks int) Option {
	return func(s *Server) {
		if blocks > 0 {
			s.cache = NewBlockCache(blocks)
		} else {
			s.cache = nil
		}
	}
}

// WithSeekConcurrency bounds the number of device reads in flight at once.
// The default of 1 models the paper's single optical head; higher values
// model device arrays or request reordering hardware.
func WithSeekConcurrency(n int) Option {
	return func(s *Server) { s.SetSeekConcurrency(n) }
}

// SetSeekConcurrency resizes the device seek semaphore for a server built
// elsewhere (e.g. the demo corpus). Resizing is safe under load: growing
// grants slots to queued readers at once, shrinking lets readers already
// on the device drain before new ones are admitted — at no point do more
// readers than the new bound occupy the device together with newly
// admitted ones (see sched.Semaphore.Resize).
func (s *Server) SetSeekConcurrency(n int) {
	s.devSem.Resize(n)
}

// ErrBusy reports that the server refused to queue a request because its
// bounded in-flight queue is full. The condition is transient: the wire
// layer maps it to a distinct busy status and clients retry after backoff.
var ErrBusy = errors.New("server: busy")

// WithMaxInFlight bounds the number of device-bound requests admitted at
// once. Requests beyond the bound are shed with ErrBusy rather than queued
// without limit — under overload the server stays responsive to the cheap
// in-memory ops (query, miniatures) a degraded client needs. Zero (the
// default) leaves admission unbounded.
func WithMaxInFlight(n int) Option {
	return func(s *Server) { s.SetMaxInFlight(n) }
}

// SetMaxInFlight sets the admission bound for a server built elsewhere.
// Safe under load: a lowered bound sheds new requests until in-flight
// work drains below it; outstanding releases stay valid.
func (s *Server) SetMaxInFlight(n int) {
	s.adm.SetMax(n)
}

// Admit asks for an admission slot for one device-bound request on behalf
// of the anonymous tenant. See AdmitAs.
func (s *Server) Admit() (func(), error) { return s.AdmitAs(0) }

// AdmitAs asks for an admission slot on behalf of tenant (one wire
// connection, one simulated session). On success it returns a release
// function the caller must invoke when the request finishes; when the gate
// is full — or the tenant already holds its fair share of it while others
// are active — the request is shed with ErrBusy.
func (s *Server) AdmitAs(tenant uint64) (func(), error) {
	release, ok := s.adm.Admit(tenant)
	if !ok {
		return nil, ErrBusy
	}
	return release, nil
}

// WithReadAhead enables sequential block read-ahead: after a cache-miss
// read, the next n blocks are pulled into the block cache behind the seek
// semaphore, so a sequentially-browsing client finds its next extent
// already resident. Zero disables it (the default).
func WithReadAhead(n int) Option {
	return func(s *Server) { s.SetReadAhead(n) }
}

// SetReadAhead sets the read-ahead depth in blocks for a server built
// elsewhere. Safe under load: the next cache miss observes the new depth;
// an in-flight sweep finishes at the old one.
func (s *Server) SetReadAhead(n int) {
	s.ra.SetDepth(n)
}

// New builds a server over an archiver. By default a modest cache is
// installed and device reads are serialized (seek concurrency 1).
func New(arch *archiver.Archiver, opts ...Option) *Server {
	s := &Server{
		arch:     arch,
		store:    index.NewStore(index.Config{}),
		cache:    NewBlockCache(256),
		devSem:   sched.NewSemaphore(1),
		adm:      sched.NewAdmission(0),
		minis:    map[object.ID]*img.Bitmap{},
		modes:    map[object.ID]object.Mode{},
		previews: map[object.ID]*voice.Part{},
		rasters:  map[string]*rasterJob{},
		encMinis: map[object.ID]encodedMini{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetClusterMap installs (or replaces) the encoded cluster map this server
// hands to routing clients, with its epoch. Fleet assembly calls it on
// every member; replacing the map with a higher epoch is how a re-shard is
// announced — clients discover the move through an epoch-mismatch refetch,
// never through a hard error.
func (s *Server) SetClusterMap(epoch uint64, payload []byte) {
	s.cmapMu.Lock()
	s.cmapEpoch = epoch
	s.cmapPayload = payload
	s.cmapMu.Unlock()
}

// ClusterMap returns the encoded cluster map and its epoch; ok is false on
// a standalone (unsharded) server.
func (s *Server) ClusterMap() (epoch uint64, payload []byte, ok bool) {
	s.cmapMu.RLock()
	defer s.cmapMu.RUnlock()
	return s.cmapEpoch, s.cmapPayload, s.cmapPayload != nil
}

// Archiver exposes the underlying archive (the workstation never touches it
// directly; tests and tools do).
func (s *Server) Archiver() *archiver.Archiver { return s.arch }

// ContentIndex exposes the segmented content index store.
func (s *Server) ContentIndex() *index.Store { return s.store }

// Publish archives the object, indexes its content, and builds its
// miniature for the sequential browsing interface. It is the ingestion path
// used when an edited object is archived or mailed within the organization.
func (s *Server) Publish(o *object.Object, shared ...archiver.SharedPart) (time.Duration, error) {
	_, dur, err := s.arch.Archive(o, shared...)
	if err != nil {
		return dur, err
	}
	s.Adopt(o)
	return dur, nil
}

// Adopt ingests an already-archived object into the serving structures:
// content index, miniature, mode table and voice preview. Recovery paths
// (archiver.Recover) use it to rebuild serving state from the medium.
func (s *Server) Adopt(o *object.Object) {
	mini := buildMiniature(o) // pure; keep it outside the lock
	// The content index synchronizes itself: publishes accumulate in its
	// memtable and seal into immutable segments without touching s.mu, so
	// queries never serialize with the serving-map update below.
	s.store.AddObject(o)
	s.mu.Lock()
	s.minis[o.ID] = mini
	s.modes[o.ID] = o.Mode
	if o.Mode == object.Audio {
		if vp := o.PrimaryVoice(); vp != nil {
			s.previews[o.ID] = voicePreview(vp)
		}
	}
	s.mu.Unlock()
	// Invalidate the encoded-frame cache after the new miniature is
	// visible; bumping encGen keeps a concurrent MiniatureEncoded from
	// installing bytes encoded from the superseded miniature.
	s.encMu.Lock()
	s.encGen.Add(1)
	delete(s.encMinis, o.ID)
	s.encMu.Unlock()
}

// PreviewSeconds is the length of the voice preview attached to audio-mode
// miniatures: "an indication that an object is an audio mode object and
// some voice segments which are played as the miniature passes through the
// screen" (§5).
const PreviewSeconds = 5

// maxPreviewSamples additionally caps the preview at one default audio page
// of samples at the canonical rate (§2 pages voice; a preview is at most a
// page-sized prefix). The time cap alone scales with the part's recorded
// rate, so a part with a hostile or corrupt rate could drive PreviewSeconds
// worth of it into one unbounded wire frame; the absolute cap bounds the
// legacy OpVoicePreview response no matter what the part claims. At sane
// rates (the canonical 8 kHz) the time cap is far below this and previews
// are byte-for-byte what they always were.
const maxPreviewSamples = voice.SampleRate * int(voice.DefaultPageLength/time.Second)

func voicePreview(vp *voice.Part) *voice.Part {
	n := vp.Rate * PreviewSeconds
	if n > len(vp.Samples) || n < 0 {
		n = len(vp.Samples)
	}
	if n > maxPreviewSamples {
		n = maxPreviewSamples
	}
	return &voice.Part{Rate: vp.Rate, Samples: vp.Samples[:n]}
}

// VoicePreview returns the voice preview of an audio-mode object, or nil.
func (s *Server) VoicePreview(id object.ID) *voice.Part {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.previews[id]
}

// PublishMailed ingests a mailed object blob (received from another
// organization) into this server's archive: the blob is materialized and
// re-archived locally, completing the §4 mail cycle. Inside-mail blobs may
// carry pointers into a foreign archiver and are rejected.
func (s *Server) PublishMailed(blob []byte) (object.ID, time.Duration, error) {
	o, err := archiver.MaterializeMailed(blob, nil)
	if err != nil {
		return 0, 0, fmt.Errorf("server: mailed blob: %w", err)
	}
	o.State = object.Editing // re-archive transitions it back
	dur, err := s.Publish(o)
	return o.ID, dur, err
}

// buildMiniature produces the small representation shown while browsing
// query results: a downscaled first image if the object has one, otherwise
// a downscaled first visual page. Audio mode objects get a voice-indicator
// badge drawn in the corner ("an indication that an object is an audio mode
// object", §5).
func buildMiniature(o *object.Object) *img.Bitmap {
	var full *img.Bitmap
	if len(o.Images) > 0 {
		full = o.Images[0].Rasterize()
	} else if o.Doc != nil {
		pages := layout.Paginate(o.Doc, layout.Spec{W: 256, H: 256})
		if len(pages) > 0 {
			full = pages[0].Bitmap
		}
	}
	if full == nil {
		full = img.NewBitmap(MiniatureSize, MiniatureSize)
	}
	f := (max(full.W, full.H) + MiniatureSize - 1) / MiniatureSize
	if f < 1 {
		f = 1
	}
	mini := full.Downscale(f) // always a fresh bitmap, even at f <= 1
	full.Release()
	if o.Mode == object.Audio {
		// Voice badge: small filled block top-right.
		mini.Fill(img.Rect{X: mini.W - 5, Y: 0, W: 5, H: 5}, true)
	}
	return mini
}

// ReadPiece serves an archiver-absolute byte extent through the block
// cache on behalf of the anonymous tenant. See ReadPieceAs.
func (s *Server) ReadPiece(off, length uint64) ([]byte, time.Duration, error) {
	return s.ReadPieceAs(0, off, length)
}

// ReadPieceAs serves an archiver-absolute byte extent through the block
// cache, returning the device service time actually incurred (cache hits
// cost nothing). Cache misses acquire the seek semaphore under the given
// tenant — waiters queue round-robin per tenant, so one session's backlog
// cannot starve another's single read — while cache hits proceed
// untouched.
func (s *Server) ReadPieceAs(tenant uint64, off, length uint64) ([]byte, time.Duration, error) {
	if length == 0 {
		s.pieceReads.Add(1)
		return nil, 0, nil
	}
	out, t, err := s.ReadPieceAppend(tenant, off, length, nil)
	if err != nil {
		return nil, t, err
	}
	return out, t, nil
}

// ReadPieceAppend is ReadPieceAs appending the extent's bytes onto dst
// instead of allocating a fresh slice, returning the extended slice. When
// dst has length bytes of spare capacity the read itself performs zero
// allocations on the cache-hit path — the streaming voice producer leans on
// this to serve every chunk out of one pooled buffer.
func (s *Server) ReadPieceAppend(tenant uint64, off, length uint64, dst []byte) ([]byte, time.Duration, error) {
	s.pieceReads.Add(1)
	if length == 0 {
		return dst, 0, nil
	}
	base := len(dst)
	dev := s.arch.Device()
	bs := uint64(dev.BlockSize())
	// Bounds-check before allocating: wire requests carry
	// client-controlled lengths, and an unchecked huge length would
	// overflow off+length or drive an enormous allocation.
	if off+length < off || off+length > bs*uint64(dev.Blocks()) {
		return dst, 0, fmt.Errorf("server: extent [%d, +%d) beyond device end %d", off, length, bs*uint64(dev.Blocks()))
	}
	first := off / bs
	last := (off + length - 1) / bs
	var total time.Duration
	missed := false
	out := dst
	// Pre-size once, after the bounds check (length is client-controlled
	// and must be validated before sizing anything by it).
	if need := base + int(length); cap(out) < need {
		grown := make([]byte, base, need)
		copy(grown, out)
		out = grown
	}
	for b := first; b <= last; b++ {
		var blk []byte
		if s.cache != nil {
			blk = s.cache.Get(b)
		}
		if blk == nil {
			var t time.Duration
			var err error
			blk, t, err = s.readDeviceBlock(tenant, dev, b)
			if err != nil {
				return dst, total, err
			}
			total += t
			missed = true
		}
		lo := uint64(0)
		if b == first {
			lo = off - b*bs
		}
		hi := bs
		if b == last {
			hi = off + length - b*bs
		}
		out = append(out, blk[lo:hi]...)
	}
	// Count bytes actually produced, not the client-claimed length: a
	// rejected oversized request must not skew the counter.
	s.bytesOut.Add(int64(len(out) - base))
	// A miss that reached the device hints at a sequential sweep: warm
	// the next blocks in the background so the follower request hits.
	if missed && s.cache != nil && s.ra.TryStart() {
		go s.readAheadFrom(last + 1)
	}
	return out, total, nil
}

// tenantReadAhead is the seek-semaphore tenant of the background
// read-ahead sweep: background warming competes as its own tenant so it
// can never crowd a user session out of its round-robin turn.
const tenantReadAhead = ^uint64(0)

// readAheadFrom pulls up to the configured depth of sequentially-next
// blocks into the block cache. It competes for the seek semaphore like any
// device reader (the optical head is still the bottleneck the paper
// worries about) but does not touch the contention counters: its queueing
// is background work, not a user-visible wait.
func (s *Server) readAheadFrom(first uint64) {
	defer s.ra.Done()
	dev := s.arch.Device()
	end := uint64(dev.Blocks())
	for i := uint64(0); i < uint64(s.ra.Depth()); i++ {
		b := first + i
		if b >= end {
			return
		}
		if s.cache.peek(b) != nil {
			continue
		}
		s.devSem.Acquire(tenantReadAhead)
		var err error
		if s.cache.peek(b) == nil { // re-check: a foreground read may have won
			var blk []byte
			if blk, _, err = dev.ReadBlock(int(b)); err == nil {
				s.cache.Put(b, blk)
				s.raBlocks.Add(1)
			}
		}
		s.devSem.Release()
		if err != nil {
			return
		}
	}
}

// readDeviceBlock reads one block under the seek semaphore, filling the
// cache. After waiting for a slot it re-checks the cache: another reader
// may have fetched the same block meanwhile, in which case the device is
// not touched again.
func (s *Server) readDeviceBlock(tenant uint64, dev disk.Device, b uint64) ([]byte, time.Duration, error) {
	if !s.devSem.TryAcquire() {
		start := time.Now()
		s.devSem.Acquire(tenant)
		s.devWaits.Add(1)
		s.devWaitNanos.Add(time.Since(start).Nanoseconds())
	}
	defer s.devSem.Release()
	if s.cache != nil {
		// peek, not Get: the caller's lookup already recorded this
		// request's miss.
		if blk := s.cache.peek(b); blk != nil {
			return blk, 0, nil
		}
	}
	blk, t, err := dev.ReadBlock(int(b))
	if err != nil {
		return nil, 0, err
	}
	if s.cache != nil {
		s.cache.Put(b, blk)
	}
	return blk, t, nil
}

// Descriptor reads and parses an object's descriptor through the cache.
func (s *Server) Descriptor(id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	return s.DescriptorAs(0, id)
}

// DescriptorAs is Descriptor with the device reads attributed to tenant.
func (s *Server) DescriptorAs(tenant uint64, id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	ext, err := s.arch.ExtentOf(id)
	if err != nil {
		return nil, 0, err
	}
	hdr, t1, err := s.ReadPieceAs(tenant, ext.Start, 8)
	if err != nil {
		return nil, t1, err
	}
	descLen := uint64(hdr[0])<<56 | uint64(hdr[1])<<48 | uint64(hdr[2])<<40 | uint64(hdr[3])<<32 |
		uint64(hdr[4])<<24 | uint64(hdr[5])<<16 | uint64(hdr[6])<<8 | uint64(hdr[7])
	if 8+descLen > ext.Length {
		return nil, t1, fmt.Errorf("server: object %d descriptor length %d exceeds extent", id, descLen)
	}
	raw, t2, err := s.ReadPieceAs(tenant, ext.Start+8, descLen)
	if err != nil {
		return nil, t1 + t2, err
	}
	d, err := descriptor.Parse(raw)
	return d, t1 + t2, err
}

// Fetch returns a FetchFunc resolving parts through the server (cache
// included), accumulating service time into dur if non-nil.
func (s *Server) Fetch(dur *time.Duration) descriptor.FetchFunc {
	return func(ref descriptor.PartRef) ([]byte, error) {
		data, t, err := s.ReadPiece(ref.Offset, ref.Length)
		if dur != nil {
			*dur += t
		}
		return data, err
	}
}

// Load fully materializes an object through the server.
func (s *Server) Load(id object.ID) (*object.Object, time.Duration, error) {
	var dur time.Duration
	d, t, err := s.Descriptor(id)
	dur += t
	if err != nil {
		return nil, dur, err
	}
	o, err := d.Materialize(s.Fetch(&dur))
	return o, dur, err
}

// ImageView serves only the requested rectangle of an image part — the §2
// view mechanism: "the system will only retrieve the relevant data". The
// raster is decoded once per (object, image) and cached server-side; the
// response carries just the view's pixels, so link traffic scales with the
// view area, not the image area.
func (s *Server) ImageView(id object.ID, name string, r img.Rect) (*img.Bitmap, time.Duration, error) {
	return s.ImageViewAs(0, id, name, r)
}

// ImageViewAs is ImageView with the device reads attributed to tenant.
func (s *Server) ImageViewAs(tenant uint64, id object.ID, name string, r img.Rect) (*img.Bitmap, time.Duration, error) {
	key := fmt.Sprintf("%d/%s", id, name)
	s.mu.Lock()
	job, ok := s.rasters[key]
	if !ok {
		job = &rasterJob{done: make(chan struct{})}
		s.rasters[key] = job
	}
	s.mu.Unlock()
	var dur time.Duration
	if ok {
		// Another request rasterized (or is rasterizing) this image:
		// wait and share its raster; no device time is charged, as with
		// any cache hit.
		<-job.done
	} else {
		job.bm, job.dur, job.err = s.rasterize(tenant, id, name)
		if job.err != nil {
			// Do not cache failures: a later Publish may make the
			// view servable.
			s.mu.Lock()
			delete(s.rasters, key)
			s.mu.Unlock()
		}
		close(job.done)
		dur = job.dur
	}
	if job.err != nil {
		return nil, dur, job.err
	}
	raster := job.bm
	clipped := r.Clip(img.Rect{X: 0, Y: 0, W: raster.W, H: raster.H})
	return raster.Extract(clipped), dur, nil
}

// rasterize decodes and rasterizes the named image part of an object,
// charging the device time incurred.
func (s *Server) rasterize(tenant uint64, id object.ID, name string) (*img.Bitmap, time.Duration, error) {
	d, dur, err := s.DescriptorAs(tenant, id)
	if err != nil {
		return nil, dur, err
	}
	var ref *descriptor.PartRef
	for i := range d.Parts {
		if d.Parts[i].Kind == descriptor.PartImage && d.Parts[i].Name == name {
			ref = &d.Parts[i]
			break
		}
	}
	if ref == nil {
		return nil, dur, fmt.Errorf("server: object %d has no image %q", id, name)
	}
	raw, t2, err := s.ReadPieceAs(tenant, ref.Offset, ref.Length)
	dur += t2
	if err != nil {
		return nil, dur, err
	}
	v, err := descriptor.DecodePart(descriptor.PartImage, raw)
	if err != nil {
		return nil, dur, err
	}
	im := v.(*img.Image)
	raster := im.Rasterize()
	labels := im.RasterizeLabels()
	raster.Or(labels, 0, 0)
	labels.Release()
	return raster, dur, nil
}

// PublishVersion archives o as a new version superseding prevID; the
// server subsystem "provides access methods, scheduling, cashing, version
// control" (§5).
func (s *Server) PublishVersion(o *object.Object, prevID object.ID, shared ...archiver.SharedPart) (time.Duration, error) {
	_, dur, err := s.arch.ArchiveVersion(o, prevID, shared...)
	if err != nil {
		return dur, err
	}
	s.Adopt(o)
	return dur, nil
}

// Versions returns the version lineage of id, newest first.
func (s *Server) Versions(id object.ID) []object.ID { return s.arch.VersionChain(id) }

// Query evaluates a content query ("users submit queries based on object
// content from their workstation", §5) and returns qualifying object ids.
// It takes no server lock: the segmented index serves queries off an
// immutable snapshot, so queries run concurrently with each other and with
// publishes.
func (s *Server) Query(terms ...string) []object.ID {
	return s.store.Search(index.Query{Terms: terms}, nil)
}

// QueryPlanned evaluates a planned content query: AND terms (ordered and
// executed by the index planner) combined with attribute predicates from
// the descriptor — driving mode and archive date range.
func (s *Server) QueryPlanned(q index.Query) []object.ID {
	return s.store.Search(q, nil)
}

// Miniature returns the object's miniature, or nil.
func (s *Server) Miniature(id object.ID) *img.Bitmap {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.minis[id]
}

// MiniatureEncoded returns the wire-encoded miniature payload
// (descriptor.EncodePart(PartBitmap, ...) bytes) and driving mode for id,
// serving warm requests from the encoded-frame cache without touching the
// raster or the encoder. The returned slice is shared with the cache and
// must be treated as read-only; it stays valid across invalidation (the
// cache drops its reference, it never recycles the bytes). ok is false when
// the object has no miniature; mode is still reported if the object is
// published.
func (s *Server) MiniatureEncoded(id object.ID) ([]byte, object.Mode, bool) {
	s.encMu.RLock()
	e, hit := s.encMinis[id]
	s.encMu.RUnlock()
	if hit {
		s.encHits.Add(1)
		return e.payload, e.mode, true
	}
	s.encMiss.Add(1)
	gen := s.encGen.Load()
	s.mu.RLock()
	mini := s.minis[id]
	mode := s.modes[id]
	s.mu.RUnlock()
	if mini == nil {
		return nil, mode, false
	}
	payload, err := descriptor.EncodePart(descriptor.PartBitmap, mini)
	if err != nil {
		return nil, mode, false
	}
	s.encMu.Lock()
	// An Adopt since our snapshot may have replaced the miniature; its
	// encGen bump makes this install a no-op so stale bytes never land.
	if s.encGen.Load() == gen {
		s.encMinis[id] = encodedMini{payload: payload, mode: mode}
	}
	s.encMu.Unlock()
	return payload, mode, true
}

// Mode returns the published object's driving mode.
func (s *Server) Mode(id object.ID) (object.Mode, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.modes[id]
	return m, ok
}

// IDs lists the published objects.
func (s *Server) IDs() []object.ID { return s.arch.IDs() }

// Stats reports request counters, cache effectiveness and device
// contention. DeviceWaits counts device reads that had to queue for the
// seek semaphore; DeviceWaitNanos is the total wall time spent queueing —
// together they measure the §5 "queueing delays ... when several users try
// to access data from the same device".
type Stats struct {
	PieceReads int64
	BytesOut   int64
	CacheHits  int64
	CacheMiss  int64
	// DeviceWaits / DeviceWaitNanos report seek-semaphore contention.
	DeviceWaits     int64
	DeviceWaitNanos int64
	// ReadAheadBlocks counts blocks pulled into the cache by sequential
	// read-ahead rather than by a request.
	ReadAheadBlocks int64
	// Shed counts requests refused with ErrBusy by the bounded in-flight
	// admission queue (load shedding under overload).
	Shed int64
	// EncodedHits / EncodedMiss report encoded-frame cache effectiveness:
	// miniature requests answered from pre-encoded reply bytes versus
	// requests that had to encode.
	EncodedHits int64
	EncodedMiss int64
	// PoolAllocs / PoolRecycled are the process-wide buffer pool counters
	// (fresh allocations by Get, buffers parked for reuse by Put). They
	// span every pool in the process, not just this server's traffic.
	PoolAllocs   int64
	PoolRecycled int64
}

// Stats returns a consistent snapshot of the current counters; it is safe
// to call concurrently with any request traffic (the STATS wire request
// does exactly that).
func (s *Server) Stats() Stats {
	st := Stats{
		PieceReads:      s.pieceReads.Load(),
		BytesOut:        s.bytesOut.Load(),
		DeviceWaits:     s.devWaits.Load(),
		DeviceWaitNanos: s.devWaitNanos.Load(),
		ReadAheadBlocks: s.raBlocks.Load(),
		Shed:            s.adm.Shed(),
		EncodedHits:     s.encHits.Load(),
		EncodedMiss:     s.encMiss.Load(),
	}
	st.PoolAllocs, st.PoolRecycled = pool.Counters()
	if s.cache != nil {
		st.CacheHits, st.CacheMiss = s.cache.Counters()
	}
	return st
}

// ResetStats zeroes the counters (cache contents are kept).
func (s *Server) ResetStats() {
	s.pieceReads.Store(0)
	s.bytesOut.Store(0)
	s.devWaits.Store(0)
	s.devWaitNanos.Store(0)
	s.raBlocks.Store(0)
	s.adm.ResetShed()
	s.encHits.Store(0)
	s.encMiss.Store(0)
	pool.ResetCounters()
	if s.cache != nil {
		s.cache.ResetCounters()
	}
}
