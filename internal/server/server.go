// Package server implements the MINOS multimedia object server subsystem
// (§5): it is "optical disk based", stores objects in the archived state,
// and "provides access methods, scheduling, cashing, version control". The
// workstation's presentation manager "requests the appropriate pieces of
// information from the multimedia object server", so the server interface
// is piece-oriented: descriptors and byte extents, never whole objects.
//
// Performance concerns — "queueing delays that may be experienced when
// several users try to access data from the same device" — are measurable
// through the load simulation in sim.go.
package server

import (
	"container/list"
	"fmt"
	"time"

	"minos/internal/archiver"
	"minos/internal/descriptor"
	img "minos/internal/image"
	"minos/internal/index"
	"minos/internal/layout"
	"minos/internal/object"
	"minos/internal/voice"
)

// MiniatureSize is the pixel width of object miniatures served to the
// sequential browsing interface (§5).
const MiniatureSize = 64

// Server is the multimedia object server.
type Server struct {
	arch     *archiver.Archiver
	idx      *index.Index
	cache    *BlockCache
	minis    map[object.ID]*img.Bitmap
	modes    map[object.ID]object.Mode
	previews map[object.ID]*voice.Part
	// rasters caches rasterized image parts so repeated view requests
	// pay the device once (the raster stays on the server's magnetic
	// disk / memory in the paper's architecture).
	rasters map[string]*img.Bitmap

	// Stats.
	pieceReads int64
	bytesOut   int64
}

// Option configures the server.
type Option func(*Server)

// WithCache installs a block cache of the given capacity (in device
// blocks). Zero capacity disables caching.
func WithCache(blocks int) Option {
	return func(s *Server) {
		if blocks > 0 {
			s.cache = NewBlockCache(blocks)
		} else {
			s.cache = nil
		}
	}
}

// New builds a server over an archiver. By default a modest cache is
// installed.
func New(arch *archiver.Archiver, opts ...Option) *Server {
	s := &Server{
		arch:     arch,
		idx:      index.New(),
		cache:    NewBlockCache(256),
		minis:    map[object.ID]*img.Bitmap{},
		modes:    map[object.ID]object.Mode{},
		previews: map[object.ID]*voice.Part{},
		rasters:  map[string]*img.Bitmap{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Archiver exposes the underlying archive (the workstation never touches it
// directly; tests and tools do).
func (s *Server) Archiver() *archiver.Archiver { return s.arch }

// Index exposes the content index.
func (s *Server) Index() *index.Index { return s.idx }

// Publish archives the object, indexes its content, and builds its
// miniature for the sequential browsing interface. It is the ingestion path
// used when an edited object is archived or mailed within the organization.
func (s *Server) Publish(o *object.Object, shared ...archiver.SharedPart) (time.Duration, error) {
	_, dur, err := s.arch.Archive(o, shared...)
	if err != nil {
		return dur, err
	}
	s.Adopt(o)
	return dur, nil
}

// Adopt ingests an already-archived object into the serving structures:
// content index, miniature, mode table and voice preview. Recovery paths
// (archiver.Recover) use it to rebuild serving state from the medium.
func (s *Server) Adopt(o *object.Object) {
	s.idx.AddObject(o)
	s.minis[o.ID] = buildMiniature(o)
	s.modes[o.ID] = o.Mode
	if o.Mode == object.Audio {
		if vp := o.PrimaryVoice(); vp != nil {
			s.previews[o.ID] = voicePreview(vp)
		}
	}
}

// PreviewSeconds is the length of the voice preview attached to audio-mode
// miniatures: "an indication that an object is an audio mode object and
// some voice segments which are played as the miniature passes through the
// screen" (§5).
const PreviewSeconds = 5

func voicePreview(vp *voice.Part) *voice.Part {
	n := vp.Rate * PreviewSeconds
	if n > len(vp.Samples) {
		n = len(vp.Samples)
	}
	return &voice.Part{Rate: vp.Rate, Samples: vp.Samples[:n]}
}

// VoicePreview returns the voice preview of an audio-mode object, or nil.
func (s *Server) VoicePreview(id object.ID) *voice.Part { return s.previews[id] }

// PublishMailed ingests a mailed object blob (received from another
// organization) into this server's archive: the blob is materialized and
// re-archived locally, completing the §4 mail cycle. Inside-mail blobs may
// carry pointers into a foreign archiver and are rejected.
func (s *Server) PublishMailed(blob []byte) (object.ID, time.Duration, error) {
	o, err := archiver.MaterializeMailed(blob, nil)
	if err != nil {
		return 0, 0, fmt.Errorf("server: mailed blob: %w", err)
	}
	o.State = object.Editing // re-archive transitions it back
	dur, err := s.Publish(o)
	return o.ID, dur, err
}

// buildMiniature produces the small representation shown while browsing
// query results: a downscaled first image if the object has one, otherwise
// a downscaled first visual page. Audio mode objects get a voice-indicator
// badge drawn in the corner ("an indication that an object is an audio mode
// object", §5).
func buildMiniature(o *object.Object) *img.Bitmap {
	var full *img.Bitmap
	if len(o.Images) > 0 {
		full = o.Images[0].Rasterize()
	} else if o.Doc != nil {
		pages := layout.Paginate(o.Doc, layout.Spec{W: 256, H: 256})
		if len(pages) > 0 {
			full = pages[0].Bitmap
		}
	}
	if full == nil {
		full = img.NewBitmap(MiniatureSize, MiniatureSize)
	}
	f := (max(full.W, full.H) + MiniatureSize - 1) / MiniatureSize
	if f < 1 {
		f = 1
	}
	mini := full.Downscale(f)
	if o.Mode == object.Audio {
		// Voice badge: small filled block top-right.
		mini.Fill(img.Rect{X: mini.W - 5, Y: 0, W: 5, H: 5}, true)
	}
	return mini
}

// ReadPiece serves an archiver-absolute byte extent through the block
// cache, returning the device service time actually incurred (cache hits
// cost nothing).
func (s *Server) ReadPiece(off, length uint64) ([]byte, time.Duration, error) {
	s.pieceReads++
	s.bytesOut += int64(length)
	if length == 0 {
		return nil, 0, nil
	}
	dev := s.arch.Device()
	bs := uint64(dev.BlockSize())
	first := off / bs
	last := (off + length - 1) / bs
	var total time.Duration
	out := make([]byte, 0, length)
	for b := first; b <= last; b++ {
		var blk []byte
		if s.cache != nil {
			blk = s.cache.Get(b)
		}
		if blk == nil {
			var t time.Duration
			var err error
			blk, t, err = dev.ReadBlock(int(b))
			if err != nil {
				return nil, total, err
			}
			total += t
			if s.cache != nil {
				s.cache.Put(b, blk)
			}
		}
		lo := uint64(0)
		if b == first {
			lo = off - b*bs
		}
		hi := bs
		if b == last {
			hi = off + length - b*bs
		}
		out = append(out, blk[lo:hi]...)
	}
	return out, total, nil
}

// Descriptor reads and parses an object's descriptor through the cache.
func (s *Server) Descriptor(id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	ext, err := s.arch.ExtentOf(id)
	if err != nil {
		return nil, 0, err
	}
	hdr, t1, err := s.ReadPiece(ext.Start, 8)
	if err != nil {
		return nil, t1, err
	}
	descLen := uint64(hdr[0])<<56 | uint64(hdr[1])<<48 | uint64(hdr[2])<<40 | uint64(hdr[3])<<32 |
		uint64(hdr[4])<<24 | uint64(hdr[5])<<16 | uint64(hdr[6])<<8 | uint64(hdr[7])
	if 8+descLen > ext.Length {
		return nil, t1, fmt.Errorf("server: object %d descriptor length %d exceeds extent", id, descLen)
	}
	raw, t2, err := s.ReadPiece(ext.Start+8, descLen)
	if err != nil {
		return nil, t1 + t2, err
	}
	d, err := descriptor.Parse(raw)
	return d, t1 + t2, err
}

// Fetch returns a FetchFunc resolving parts through the server (cache
// included), accumulating service time into dur if non-nil.
func (s *Server) Fetch(dur *time.Duration) descriptor.FetchFunc {
	return func(ref descriptor.PartRef) ([]byte, error) {
		data, t, err := s.ReadPiece(ref.Offset, ref.Length)
		if dur != nil {
			*dur += t
		}
		return data, err
	}
}

// Load fully materializes an object through the server.
func (s *Server) Load(id object.ID) (*object.Object, time.Duration, error) {
	var dur time.Duration
	d, t, err := s.Descriptor(id)
	dur += t
	if err != nil {
		return nil, dur, err
	}
	o, err := d.Materialize(s.Fetch(&dur))
	return o, dur, err
}

// ImageView serves only the requested rectangle of an image part — the §2
// view mechanism: "the system will only retrieve the relevant data". The
// raster is decoded once per (object, image) and cached server-side; the
// response carries just the view's pixels, so link traffic scales with the
// view area, not the image area.
func (s *Server) ImageView(id object.ID, name string, r img.Rect) (*img.Bitmap, time.Duration, error) {
	key := fmt.Sprintf("%d/%s", id, name)
	raster, ok := s.rasters[key]
	var dur time.Duration
	if !ok {
		d, t, err := s.Descriptor(id)
		dur += t
		if err != nil {
			return nil, dur, err
		}
		var ref *descriptor.PartRef
		for i := range d.Parts {
			if d.Parts[i].Kind == descriptor.PartImage && d.Parts[i].Name == name {
				ref = &d.Parts[i]
				break
			}
		}
		if ref == nil {
			return nil, dur, fmt.Errorf("server: object %d has no image %q", id, name)
		}
		raw, t2, err := s.ReadPiece(ref.Offset, ref.Length)
		dur += t2
		if err != nil {
			return nil, dur, err
		}
		v, err := descriptor.DecodePart(descriptor.PartImage, raw)
		if err != nil {
			return nil, dur, err
		}
		im := v.(*img.Image)
		raster = im.Rasterize()
		raster.Or(im.RasterizeLabels(), 0, 0)
		s.rasters[key] = raster
	}
	clipped := r.Clip(img.Rect{X: 0, Y: 0, W: raster.W, H: raster.H})
	return raster.Extract(clipped), dur, nil
}

// PublishVersion archives o as a new version superseding prevID; the
// server subsystem "provides access methods, scheduling, cashing, version
// control" (§5).
func (s *Server) PublishVersion(o *object.Object, prevID object.ID, shared ...archiver.SharedPart) (time.Duration, error) {
	_, dur, err := s.arch.ArchiveVersion(o, prevID, shared...)
	if err != nil {
		return dur, err
	}
	s.Adopt(o)
	return dur, nil
}

// Versions returns the version lineage of id, newest first.
func (s *Server) Versions(id object.ID) []object.ID { return s.arch.VersionChain(id) }

// Query evaluates a content query ("users submit queries based on object
// content from their workstation", §5) and returns qualifying object ids.
func (s *Server) Query(terms ...string) []object.ID {
	return s.idx.Query(terms...)
}

// Miniature returns the object's miniature, or nil.
func (s *Server) Miniature(id object.ID) *img.Bitmap { return s.minis[id] }

// Mode returns the published object's driving mode.
func (s *Server) Mode(id object.ID) (object.Mode, bool) {
	m, ok := s.modes[id]
	return m, ok
}

// IDs lists the published objects.
func (s *Server) IDs() []object.ID { return s.arch.IDs() }

// Stats reports request counters and cache effectiveness.
type Stats struct {
	PieceReads int64
	BytesOut   int64
	CacheHits  int64
	CacheMiss  int64
}

// Stats returns current counters.
func (s *Server) Stats() Stats {
	st := Stats{PieceReads: s.pieceReads, BytesOut: s.bytesOut}
	if s.cache != nil {
		st.CacheHits = s.cache.hits
		st.CacheMiss = s.cache.misses
	}
	return st
}

// ResetStats zeroes the counters (cache contents are kept).
func (s *Server) ResetStats() {
	s.pieceReads, s.bytesOut = 0, 0
	if s.cache != nil {
		s.cache.hits, s.cache.misses = 0, 0
	}
}

// BlockCache is an LRU cache of device blocks.
type BlockCache struct {
	cap    int
	ll     *list.List // front = most recent; values are *cacheEntry
	byBlk  map[uint64]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	blk  uint64
	data []byte
}

// NewBlockCache builds a cache holding up to capBlocks blocks.
func NewBlockCache(capBlocks int) *BlockCache {
	return &BlockCache{cap: capBlocks, ll: list.New(), byBlk: map[uint64]*list.Element{}}
}

// Get returns the cached block or nil.
func (c *BlockCache) Get(blk uint64) []byte {
	if e, ok := c.byBlk[blk]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*cacheEntry).data
	}
	c.misses++
	return nil
}

// Put inserts a block, evicting the least recently used beyond capacity.
func (c *BlockCache) Put(blk uint64, data []byte) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.byBlk[blk]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).data = data
		return
	}
	e := c.ll.PushFront(&cacheEntry{blk: blk, data: data})
	c.byBlk[blk] = e
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byBlk, old.Value.(*cacheEntry).blk)
	}
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int { return c.ll.Len() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
