package server

import (
	"testing"
	"time"

	"minos/internal/archiver"
	"minos/internal/disk"
)

// waitReadAhead polls until the background sweep has landed at least want
// blocks (the sweep runs off the request path, so the test must wait for
// it rather than assume it finished).
func waitReadAhead(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().ReadAheadBlocks >= want && !s.ra.Sweeping() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("read-ahead landed %d blocks, want >= %d", s.Stats().ReadAheadBlocks, want)
}

func TestReadAheadWarmsSequentialBlocks(t *testing.T) {
	const depth = 4
	s := newServer(t, 64, WithCache(16), WithReadAhead(depth))
	bs := uint64(s.Archiver().Device().BlockSize())

	// A cache-miss read of block 0 should pull blocks 1..depth into the
	// cache in the background.
	if _, dur, err := s.ReadPiece(0, bs); err != nil {
		t.Fatal(err)
	} else if dur == 0 {
		t.Fatal("cold read cost nothing")
	}
	waitReadAhead(t, s, depth)

	// The sequentially-next reads are now warm: zero device time, cache
	// hits, no further device traffic.
	before := s.Stats()
	for b := uint64(1); b <= depth; b++ {
		_, dur, err := s.ReadPiece(b*bs, bs)
		if err != nil {
			t.Fatal(err)
		}
		if dur != 0 {
			t.Fatalf("block %d cost %v despite read-ahead", b, dur)
		}
	}
	after := s.Stats()
	if hits := after.CacheHits - before.CacheHits; hits != depth {
		t.Fatalf("warm reads hit cache %d times, want %d", hits, depth)
	}
	if after.ReadAheadBlocks != depth {
		t.Fatalf("ReadAheadBlocks = %d, want %d", after.ReadAheadBlocks, depth)
	}
}

func TestReadAheadClampsAtDeviceEnd(t *testing.T) {
	const blocks = 8
	s := newServer(t, blocks, WithCache(16), WithReadAhead(16))
	dev := s.Archiver().Device()
	bs := uint64(dev.BlockSize())

	// A miss on the second-to-last block leaves only one block to warm;
	// the sweep must stop at the device end, not error or wrap.
	if _, _, err := s.ReadPiece(uint64(blocks-2)*bs, bs); err != nil {
		t.Fatal(err)
	}
	waitReadAhead(t, s, 1)
	if got := s.Stats().ReadAheadBlocks; got != 1 {
		t.Fatalf("ReadAheadBlocks = %d, want 1 (clamped)", got)
	}
	// A miss on the very last block has nothing to warm.
	if _, _, err := s.ReadPiece(uint64(blocks-1)*bs, bs); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := s.Stats().ReadAheadBlocks; got != 1 {
		t.Fatalf("ReadAheadBlocks after end-of-device read = %d, want 1", got)
	}
}

func TestReadAheadDisabledByDefault(t *testing.T) {
	s := newServer(t, 64, WithCache(16))
	bs := uint64(s.Archiver().Device().BlockSize())
	if _, _, err := s.ReadPiece(0, 4*bs); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := s.Stats().ReadAheadBlocks; got != 0 {
		t.Fatalf("read-ahead ran while disabled: %d blocks", got)
	}
	// And with no cache, enabling read-ahead must be a no-op rather than
	// a nil dereference.
	dev, err := disk.NewOptical("opt1", disk.OpticalGeometry(16))
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(archiver.New(dev), WithCache(0), WithReadAhead(4))
	if _, _, err := s2.ReadPiece(0, uint64(dev.BlockSize())); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := s2.Stats().ReadAheadBlocks; got != 0 {
		t.Fatalf("cacheless read-ahead ran: %d blocks", got)
	}
}

func TestReadAheadSweepRespectsSeekConcurrency(t *testing.T) {
	// With one seek slot, a read-ahead sweep in progress must not deadlock
	// or starve foreground reads.
	s := newServer(t, 256, WithCache(64), WithReadAhead(32))
	bs := uint64(s.Archiver().Device().BlockSize())
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 8; i++ {
				b := uint64(g*16 + i)
				if _, _, err := s.ReadPiece(b*bs, bs); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
