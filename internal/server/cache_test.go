package server

import (
	"sync"
	"testing"
)

// cacheOp is one step of a table-driven cache scenario.
type cacheOp struct {
	put  bool
	blk  uint64
	data byte // payload for puts; expected first byte for hits
	hit  bool // for gets: whether the block must be resident
}

func get(blk uint64, hit bool, data byte) cacheOp { return cacheOp{blk: blk, hit: hit, data: data} }
func put(blk uint64, data byte) cacheOp           { return cacheOp{put: true, blk: blk, data: data} }

func TestBlockCacheTable(t *testing.T) {
	cases := []struct {
		name       string
		cap        int
		ops        []cacheOp
		wantLen    int
		wantHits   int64
		wantMisses int64
	}{
		{
			name: "eviction order is LRU",
			cap:  2,
			ops: []cacheOp{
				put(1, 1), put(2, 2),
				get(1, true, 1), // touch 1: now 2 is least recent
				put(3, 3),       // evicts 2
				get(2, false, 0),
				get(1, true, 1),
				get(3, true, 3),
			},
			wantLen: 2, wantHits: 3, wantMisses: 1,
		},
		{
			name: "get refreshes recency",
			cap:  3,
			ops: []cacheOp{
				put(10, 1), put(11, 2), put(12, 3),
				get(10, true, 1), get(11, true, 2), // 12 becomes LRU
				put(13, 4), // evicts 12
				get(12, false, 0),
				get(13, true, 4),
			},
			wantLen: 3, wantHits: 3, wantMisses: 1,
		},
		{
			name: "re-put updates in place without eviction",
			cap:  2,
			ops: []cacheOp{
				put(1, 1), put(2, 2),
				put(1, 9), // update, not insert
				get(1, true, 9),
				get(2, true, 2),
			},
			wantLen: 2, wantHits: 2, wantMisses: 0,
		},
		{
			name: "capacity zero disables the cache",
			cap:  0,
			ops: []cacheOp{
				put(1, 1), put(2, 2),
				get(1, false, 0), get(2, false, 0),
			},
			wantLen: 0, wantHits: 0, wantMisses: 2,
		},
		{
			name: "capacity one holds exactly the last block",
			cap:  1,
			ops: []cacheOp{
				put(1, 1), get(1, true, 1),
				put(2, 2), get(1, false, 0), get(2, true, 2),
			},
			wantLen: 1, wantHits: 2, wantMisses: 1,
		},
		{
			name:    "empty cache only misses",
			cap:     4,
			ops:     []cacheOp{get(1, false, 0), get(2, false, 0), get(1, false, 0)},
			wantLen: 0, wantHits: 0, wantMisses: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewBlockCache(tc.cap)
			if c.Cap() != tc.cap {
				t.Fatalf("Cap = %d, want %d", c.Cap(), tc.cap)
			}
			for i, op := range tc.ops {
				if op.put {
					c.Put(op.blk, []byte{op.data})
					continue
				}
				got := c.Get(op.blk)
				if op.hit && (got == nil || got[0] != op.data) {
					t.Fatalf("op %d: Get(%d) = %v, want [%d]", i, op.blk, got, op.data)
				}
				if !op.hit && got != nil {
					t.Fatalf("op %d: Get(%d) = %v, want miss", i, op.blk, got)
				}
			}
			if c.Len() != tc.wantLen {
				t.Fatalf("Len = %d, want %d", c.Len(), tc.wantLen)
			}
			hits, misses := c.Counters()
			if hits != tc.wantHits || misses != tc.wantMisses {
				t.Fatalf("counters = %d hits / %d misses, want %d / %d", hits, misses, tc.wantHits, tc.wantMisses)
			}
			c.ResetCounters()
			if hits, misses := c.Counters(); hits != 0 || misses != 0 {
				t.Fatalf("counters after reset = %d / %d", hits, misses)
			}
			if c.Len() != tc.wantLen {
				t.Fatal("ResetCounters dropped cached contents")
			}
		})
	}
}

// TestBlockCacheConcurrent stresses one cache from many goroutines; run
// under -race it proves the cache is self-contained and thread-safe, and
// the counters must add up exactly afterwards.
func TestBlockCacheConcurrent(t *testing.T) {
	c := NewBlockCache(64)
	const workers = 16
	iters := raceIters(t, 500)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				blk := uint64((w*31 + i) % 128)
				if i%3 == 0 {
					c.Put(blk, []byte{byte(blk)})
				} else if got := c.Get(blk); got != nil && got[0] != byte(blk) {
					t.Errorf("Get(%d) returned foreign block %d", blk, got[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
	hits, misses := c.Counters()
	gets := int64(0)
	for w := 0; w < workers; w++ {
		for i := 0; i < iters; i++ {
			if i%3 != 0 {
				gets++
			}
		}
	}
	if hits+misses != gets {
		t.Fatalf("hits %d + misses %d != %d lookups", hits, misses, gets)
	}
}
