package image

// Rasterization primitives: Bresenham lines, midpoint circles, even-odd
// scanline polygon fill, and a compact 5x7 pixel font for on-image text and
// labels.

const (
	glyphW = 6 // 5 pixels + 1 spacing column
	glyphH = 7
)

func drawGraphic(b *Bitmap, g *Graphic) {
	switch g.Shape {
	case ShapePoint:
		for _, p := range g.Points {
			b.Set(p.X, p.Y, true)
		}
	case ShapePolyline:
		for i := 1; i < len(g.Points); i++ {
			drawLine(b, g.Points[i-1], g.Points[i])
		}
	case ShapePolygon:
		if g.Filled {
			fillPolygon(b, g.Points)
		}
		for i := 0; i < len(g.Points); i++ {
			drawLine(b, g.Points[i], g.Points[(i+1)%len(g.Points)])
		}
	case ShapeCircle:
		if len(g.Points) == 0 {
			return
		}
		if g.Filled {
			fillCircle(b, g.Points[0], g.Radius)
		}
		drawCircle(b, g.Points[0], g.Radius)
	case ShapeRect:
		if len(g.Points) == 0 {
			return
		}
		r := Rect{X: g.Points[0].X, Y: g.Points[0].Y, W: g.Size.X, H: g.Size.Y}
		if g.Filled {
			b.Fill(r, true)
		} else {
			drawRectOutline(b, r)
		}
	case ShapeText:
		if len(g.Points) == 0 {
			return
		}
		DrawString(b, g.Points[0].X, g.Points[0].Y, g.Text)
	}
}

func drawLine(b *Bitmap, p0, p1 Point) {
	dx := abs(p1.X - p0.X)
	dy := -abs(p1.Y - p0.Y)
	sx, sy := 1, 1
	if p0.X > p1.X {
		sx = -1
	}
	if p0.Y > p1.Y {
		sy = -1
	}
	err := dx + dy
	x, y := p0.X, p0.Y
	for {
		b.Set(x, y, true)
		if x == p1.X && y == p1.Y {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func drawCircle(b *Bitmap, c Point, r int) {
	if r <= 0 {
		b.Set(c.X, c.Y, true)
		return
	}
	x, y := r, 0
	err := 1 - r
	for x >= y {
		b.Set(c.X+x, c.Y+y, true)
		b.Set(c.X+y, c.Y+x, true)
		b.Set(c.X-y, c.Y+x, true)
		b.Set(c.X-x, c.Y+y, true)
		b.Set(c.X-x, c.Y-y, true)
		b.Set(c.X-y, c.Y-x, true)
		b.Set(c.X+y, c.Y-x, true)
		b.Set(c.X+x, c.Y-y, true)
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

func fillCircle(b *Bitmap, c Point, r int) {
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			if x*x+y*y <= r*r {
				b.Set(c.X+x, c.Y+y, true)
			}
		}
	}
}

// fillPolygon performs even-odd scanline filling.
func fillPolygon(b *Bitmap, pts []Point) {
	if len(pts) < 3 {
		return
	}
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	for y := minY; y <= maxY; y++ {
		var xs []int
		j := len(pts) - 1
		for i := 0; i < len(pts); i++ {
			yi, yj := pts[i].Y, pts[j].Y
			if (yi <= y && yj > y) || (yj <= y && yi > y) {
				x := pts[i].X + (y-yi)*(pts[j].X-pts[i].X)/(yj-yi)
				xs = append(xs, x)
			}
			j = i
		}
		sortInts(xs)
		for k := 0; k+1 < len(xs); k += 2 {
			for x := xs[k]; x <= xs[k+1]; x++ {
				b.Set(x, y, true)
			}
		}
	}
}

func drawRectOutline(b *Bitmap, r Rect) {
	if r.W <= 0 || r.H <= 0 {
		return
	}
	drawLine(b, Point{r.X, r.Y}, Point{r.X + r.W - 1, r.Y})
	drawLine(b, Point{r.X, r.Y + r.H - 1}, Point{r.X + r.W - 1, r.Y + r.H - 1})
	drawLine(b, Point{r.X, r.Y}, Point{r.X, r.Y + r.H - 1})
	drawLine(b, Point{r.X + r.W - 1, r.Y}, Point{r.X + r.W - 1, r.Y + r.H - 1})
}

// drawVoiceIndicator draws the small loudspeaker glyph marking a voice
// label's presence.
func drawVoiceIndicator(b *Bitmap, x, y int) {
	// A 5x7 speaker-ish glyph.
	pattern := [7]byte{
		0b00100,
		0b01100,
		0b11101,
		0b11110,
		0b11101,
		0b01100,
		0b00100,
	}
	blitGlyphRows(b, x, y, pattern)
}

// DrawString renders s with the built-in 5x7 font at (x, y) being the top
// left of the first glyph. Unknown runes render as a filled box.
func DrawString(b *Bitmap, x, y int, s string) {
	cx := x
	for _, r := range s {
		if r == '\n' {
			cx = x
			y += glyphH + 1
			continue
		}
		drawGlyph(b, cx, y, r)
		cx += glyphW
	}
}

// StringWidth returns the pixel width of s in the built-in font.
func StringWidth(s string) int { return len([]rune(s)) * glyphW }

// StringWidthScaled returns the pixel width of s at an integer scale.
func StringWidthScaled(s string, scale int) int {
	if scale < 1 {
		scale = 1
	}
	return len([]rune(s)) * glyphW * scale
}

// DrawStringScaled renders s at an integer pixel scale (each font pixel
// becomes a scale x scale block) — the formatter's larger letter sizes.
func DrawStringScaled(b *Bitmap, x, y int, s string, scale int) {
	if scale <= 1 {
		DrawString(b, x, y, s)
		return
	}
	cx := x
	for _, r := range s {
		if r == '\n' {
			cx = x
			y += (glyphH + 1) * scale
			continue
		}
		drawGlyphScaled(b, cx, y, r, scale)
		cx += glyphW * scale
	}
}

func drawGlyphScaled(b *Bitmap, x, y int, r rune, scale int) {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	pat, ok := font5x7[r]
	if !ok {
		if r == ' ' {
			return
		}
		pat = [7]byte{0b11111, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11111}
	}
	for row := 0; row < 7; row++ {
		for col := 0; col < 5; col++ {
			if pat[row]&(1<<(4-col)) != 0 {
				for dy := 0; dy < scale; dy++ {
					for dx := 0; dx < scale; dx++ {
						b.Set(x+col*scale+dx, y+row*scale+dy, true)
					}
				}
			}
		}
	}
}

// GlyphHeight returns the pixel height of the built-in font.
func GlyphHeight() int { return glyphH }

func drawGlyph(b *Bitmap, x, y int, r rune) {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	pat, ok := font5x7[r]
	if !ok {
		if r == ' ' {
			return
		}
		pat = [7]byte{0b11111, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11111}
	}
	blitGlyphRows(b, x, y, pat)
}

func blitGlyphRows(b *Bitmap, x, y int, pat [7]byte) {
	for row := 0; row < 7; row++ {
		bits := pat[row]
		for col := 0; col < 5; col++ {
			if bits&(1<<(4-col)) != 0 {
				b.Set(x+col, y+row, true)
			}
		}
	}
}

// font5x7 covers uppercase letters, digits and common punctuation; enough
// for screen menus, labels and golden tests.
var font5x7 = map[rune][7]byte{
	'A':  {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C':  {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'D':  {0b11110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11110},
	'E':  {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'F':  {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000},
	'G':  {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111},
	'H':  {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'I':  {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'J':  {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100},
	'K':  {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001},
	'L':  {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M':  {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N':  {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'O':  {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'Q':  {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101},
	'R':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S':  {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T':  {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'U':  {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'V':  {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100},
	'W':  {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010},
	'X':  {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'Y':  {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100},
	'Z':  {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111},
	'0':  {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1':  {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2':  {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3':  {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4':  {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5':  {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6':  {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7':  {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8':  {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9':  {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'.':  {0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b01100},
	',':  {0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b00100, 0b01000},
	':':  {0b00000, 0b01100, 0b01100, 0b00000, 0b01100, 0b01100, 0b00000},
	'-':  {0b00000, 0b00000, 0b00000, 0b11111, 0b00000, 0b00000, 0b00000},
	'+':  {0b00000, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0b00000},
	'!':  {0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00000, 0b00100},
	'?':  {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b00000, 0b00100},
	'/':  {0b00001, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b10000},
	'(':  {0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010},
	')':  {0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000},
	'>':  {0b01000, 0b00100, 0b00010, 0b00001, 0b00010, 0b00100, 0b01000},
	'<':  {0b00010, 0b00100, 0b01000, 0b10000, 0b01000, 0b00100, 0b00010},
	'=':  {0b00000, 0b00000, 0b11111, 0b00000, 0b11111, 0b00000, 0b00000},
	'*':  {0b00000, 0b10101, 0b01110, 0b11111, 0b01110, 0b10101, 0b00000},
	'#':  {0b01010, 0b11111, 0b01010, 0b01010, 0b01010, 0b11111, 0b01010},
	'_':  {0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b11111},
	'\'': {0b00100, 0b00100, 0b01000, 0b00000, 0b00000, 0b00000, 0b00000},
	'"':  {0b01010, 0b01010, 0b00000, 0b00000, 0b00000, 0b00000, 0b00000},
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
