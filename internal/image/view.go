package image

// View is a rectangle overlaid on an image (or on a representation of it);
// the enclosed portion is presented on the workstation display and only
// that portion's data is retrieved from the server (§2).
type View struct {
	// Image is the name of the image the view is defined on. When the
	// view was defined on a representation, Image still names the full
	// image: "when a view is defined on the representation image the
	// system has to transfer only the data of the view".
	Image string
	Rect  Rect
}

// MoveStep is the default per-menu-selection movement quantum in pixels.
const MoveStep = 16

// ResizeStep is the default shrink/expand quantum in pixels.
const ResizeStep = 8

// Move translates the view by (dx, dy), clamped inside the image bounds.
// It returns the voice-label graphics newly encountered — those whose
// bounds intersect the new rectangle but not the old one — which the
// presentation manager plays when the voice option is on.
func (v *View) Move(im *Image, dx, dy int) []int {
	old := v.Rect
	nr := old
	nr.X = clampInt(nr.X+dx, 0, max(0, im.W-nr.W))
	nr.Y = clampInt(nr.Y+dy, 0, max(0, im.H-nr.H))
	v.Rect = nr
	return newlyEncountered(im, old, nr)
}

// Jump repositions the view at (x, y) (a non-contiguous move, §2), clamped
// to the image. All voice labels within the new rectangle are "newly
// encountered" since the move is discontinuous.
func (v *View) Jump(im *Image, x, y int) []int {
	v.Rect.X = clampInt(x, 0, max(0, im.W-v.Rect.W))
	v.Rect.Y = clampInt(y, 0, max(0, im.H-v.Rect.H))
	return im.VoiceLabelsIn(v.Rect)
}

// Resize grows (positive) or shrinks (negative) the view by (dw, dh),
// keeping the top-left corner fixed and clamping to the image. It returns
// voice labels newly covered by an expansion ("when the size increases new
// labels may be played", §2).
func (v *View) Resize(im *Image, dw, dh int) []int {
	old := v.Rect
	nr := old
	nr.W = clampInt(nr.W+dw, 1, im.W-nr.X)
	nr.H = clampInt(nr.H+dh, 1, im.H-nr.Y)
	v.Rect = nr
	if nr.W <= old.W && nr.H <= old.H {
		return nil
	}
	return newlyEncountered(im, old, nr)
}

// newlyEncountered lists voice-label graphics intersecting nr but not old.
func newlyEncountered(im *Image, old, nr Rect) []int {
	var out []int
	for _, i := range im.VoiceLabelsIn(nr) {
		if !im.Graphics[i].Bounds().Intersects(old) {
			out = append(out, i)
		}
	}
	return out
}

// ExtractFromRepresentation maps a view defined on a representation image
// back to full-image coordinates. The caller then requests only that
// rectangle's data from the server.
func ExtractFromRepresentation(rep *Image, viewOnRep Rect) Rect {
	s := rep.Scale
	if s <= 1 {
		return viewOnRep
	}
	return Rect{X: viewOnRep.X * s, Y: viewOnRep.Y * s, W: viewOnRep.W * s, H: viewOnRep.H * s}
}

// TourStop is one position of a tour: the view lands with its top-left at
// At, and the optional logical message names attached to this stop play or
// display before the tour advances.
type TourStop struct {
	At Point
	// VoiceMsgRef and VisualMsgRef name logical messages in the object
	// descriptor, empty if none.
	VoiceMsgRef  string
	VisualMsgRef string
}

// Tour is "a sequence of views defined on an image by the multimedia object
// designer ... played automatically" (§2). It is defined by one rectangle
// size and a sequence of positions.
type Tour struct {
	Image string
	Size  Point // the view rectangle's W, H
	Stops []TourStop
	// DwellMillis is the time the view rests on each stop before
	// advancing (in addition to any voice message play time).
	DwellMillis int
}

// ViewAt returns the view rectangle at stop i, clamped to the image.
func (t *Tour) ViewAt(im *Image, i int) Rect {
	if i < 0 || i >= len(t.Stops) {
		return Rect{}
	}
	p := t.Stops[i].At
	r := Rect{X: p.X, Y: p.Y, W: t.Size.X, H: t.Size.Y}
	r.X = clampInt(r.X, 0, max(0, im.W-r.W))
	r.Y = clampInt(r.Y, 0, max(0, im.H-r.H))
	return r
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
