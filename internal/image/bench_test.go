package image

import "testing"

func benchImage() *Image {
	im := New("bench", 320, 240)
	for i := 0; i < 40; i++ {
		im.Add(Graphic{Shape: ShapeCircle, Points: []Point{{X: (i * 37) % 320, Y: (i * 53) % 240}}, Radius: 6,
			Label: Label{Kind: TextLabel, Text: "SITE", At: Point{X: 5, Y: 5}}})
	}
	return im
}

func BenchmarkRasterize(b *testing.B) {
	im := benchImage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Rasterize().Release()
	}
}

func BenchmarkExtractView(b *testing.B) {
	raster := benchImage().Rasterize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raster.Extract(Rect{X: 40, Y: 40, W: 128, H: 96}).Release()
	}
}

func BenchmarkDownscaleMiniature(b *testing.B) {
	raster := benchImage().Rasterize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raster.Downscale(4).Release()
	}
}

func BenchmarkHitTest(b *testing.B) {
	im := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.HitTest(i%320, (i*7)%240)
	}
}
