package image

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(10, 10)
	if b.Get(3, 4) {
		t.Fatal("fresh bitmap not clear")
	}
	b.Set(3, 4, true)
	if !b.Get(3, 4) {
		t.Fatal("Set did not stick")
	}
	b.Set(3, 4, false)
	if b.Get(3, 4) {
		t.Fatal("clear did not stick")
	}
}

func TestBitmapOutOfRangeIgnored(t *testing.T) {
	b := NewBitmap(4, 4)
	b.Set(-1, 0, true)
	b.Set(0, -1, true)
	b.Set(4, 0, true)
	b.Set(0, 4, true)
	if b.PopCount() != 0 {
		t.Fatal("out-of-range Set affected bitmap")
	}
	if b.Get(-1, -1) || b.Get(99, 99) {
		t.Fatal("out-of-range Get returned true")
	}
}

func TestBitmapOrAndBlit(t *testing.T) {
	dst := NewBitmap(8, 8)
	dst.Fill(Rect{0, 0, 8, 8}, true)
	src := NewBitmap(4, 4) // all clear
	src.Set(0, 0, true)

	or := dst.Clone()
	or.Or(src, 2, 2)
	if or.PopCount() != 64 {
		t.Fatalf("Or cleared pixels: pop = %d", or.PopCount())
	}

	bl := dst.Clone()
	bl.Blit(src, 2, 2)
	// Blit overwrites the 4x4 region: 64 - 16 + 1 set pixel.
	if bl.PopCount() != 64-16+1 {
		t.Fatalf("Blit pop = %d, want %d", bl.PopCount(), 64-16+1)
	}
}

func TestBitmapExtract(t *testing.T) {
	b := NewBitmap(20, 20)
	b.Set(5, 5, true)
	b.Set(6, 7, true)
	sub := b.Extract(Rect{5, 5, 4, 4})
	if sub.W != 4 || sub.H != 4 {
		t.Fatalf("Extract dims %dx%d", sub.W, sub.H)
	}
	if !sub.Get(0, 0) || !sub.Get(1, 2) {
		t.Fatal("Extract lost pixels")
	}
	if sub.PopCount() != 2 {
		t.Fatalf("Extract pop = %d, want 2", sub.PopCount())
	}
}

func TestBitmapDownscale(t *testing.T) {
	b := NewBitmap(16, 16)
	b.Fill(Rect{0, 0, 8, 8}, true)
	mini := b.Downscale(4)
	if mini.W != 4 || mini.H != 4 {
		t.Fatalf("Downscale dims %dx%d, want 4x4", mini.W, mini.H)
	}
	if !mini.Get(0, 0) || !mini.Get(1, 1) {
		t.Fatal("dense quadrant lost")
	}
	if mini.Get(3, 3) {
		t.Fatal("empty quadrant gained pixels")
	}
	if mini.ByteSize() >= b.ByteSize() {
		t.Fatal("miniature not smaller")
	}
	same := b.Downscale(1)
	if same.Hash() != b.Hash() {
		t.Fatal("Downscale(1) should be identity")
	}
}

func TestBitmapHashDiffers(t *testing.T) {
	a := NewBitmap(8, 8)
	b := NewBitmap(8, 8)
	if a.Hash() != b.Hash() {
		t.Fatal("equal bitmaps hash differently")
	}
	b.Set(1, 1, true)
	if a.Hash() == b.Hash() {
		t.Fatal("different bitmaps hash equal")
	}
	c := NewBitmap(8, 4)
	if a.Hash() == c.Hash() {
		t.Fatal("different dims hash equal")
	}
}

func TestBitmapASCII(t *testing.T) {
	b := NewBitmap(3, 2)
	b.Set(1, 0, true)
	want := ".#.\n...\n"
	if got := b.ASCII(); got != want {
		t.Fatalf("ASCII = %q, want %q", got, want)
	}
}

func TestRectOps(t *testing.T) {
	r := Rect{10, 10, 5, 5}
	if !r.Contains(10, 10) || !r.Contains(14, 14) {
		t.Error("Contains edge failed")
	}
	if r.Contains(15, 10) || r.Contains(9, 10) {
		t.Error("Contains outside succeeded")
	}
	if !r.Intersects(Rect{14, 14, 5, 5}) {
		t.Error("overlapping rects not intersecting")
	}
	if r.Intersects(Rect{15, 15, 5, 5}) {
		t.Error("touching rects intersect")
	}
	clipped := Rect{-5, -5, 20, 20}.Clip(Rect{0, 0, 10, 10})
	if clipped != (Rect{0, 0, 10, 10}) {
		t.Errorf("Clip = %+v", clipped)
	}
	empty := Rect{50, 50, 5, 5}.Clip(Rect{0, 0, 10, 10})
	if empty.Area() != 0 {
		t.Errorf("disjoint Clip area = %d", empty.Area())
	}
}

func TestDrawLineEndpoints(t *testing.T) {
	b := NewBitmap(20, 20)
	drawLine(b, Point{2, 3}, Point{17, 11})
	if !b.Get(2, 3) || !b.Get(17, 11) {
		t.Fatal("line endpoints not set")
	}
	if b.PopCount() < 15 {
		t.Fatalf("line too sparse: %d", b.PopCount())
	}
}

func TestRasterizeCircle(t *testing.T) {
	im := New("c", 30, 30)
	im.Add(Graphic{Shape: ShapeCircle, Points: []Point{{15, 15}}, Radius: 10})
	b := im.Rasterize()
	if !b.Get(25, 15) || !b.Get(5, 15) || !b.Get(15, 25) || !b.Get(15, 5) {
		t.Fatal("circle cardinal points missing")
	}
	if b.Get(15, 15) {
		t.Fatal("unfilled circle has centre set")
	}
	im2 := New("c2", 30, 30)
	im2.Add(Graphic{Shape: ShapeCircle, Points: []Point{{15, 15}}, Radius: 10, Filled: true})
	if !im2.Rasterize().Get(15, 15) {
		t.Fatal("filled circle centre clear")
	}
}

func TestRasterizePolygonFill(t *testing.T) {
	im := New("p", 20, 20)
	im.Add(Graphic{Shape: ShapePolygon, Filled: true,
		Points: []Point{{2, 2}, {17, 2}, {17, 17}, {2, 17}}})
	b := im.Rasterize()
	if !b.Get(10, 10) {
		t.Fatal("polygon interior not filled")
	}
	if b.Get(0, 0) {
		t.Fatal("polygon exterior filled")
	}
}

func TestRasterizeRectAndText(t *testing.T) {
	im := New("r", 80, 20)
	im.Add(Graphic{Shape: ShapeRect, Points: []Point{{1, 1}}, Size: Point{10, 8}})
	im.Add(Graphic{Shape: ShapeText, Points: []Point{{20, 2}}, Text: "HI"})
	b := im.Rasterize()
	if !b.Get(1, 1) || !b.Get(10, 8) {
		t.Fatal("rect outline corners missing")
	}
	// The glyphs must put some pixels in the text area.
	sub := b.Extract(Rect{20, 2, StringWidth("HI"), GlyphHeight()})
	if sub.PopCount() == 0 {
		t.Fatal("no text pixels")
	}
}

func TestRasterizeWithBase(t *testing.T) {
	base := NewBitmap(10, 10)
	base.Set(0, 0, true)
	im := &Image{Name: "b", W: 10, H: 10, Base: base}
	if !im.Rasterize().Get(0, 0) {
		t.Fatal("base bitmap not composed")
	}
}

func TestGraphicBounds(t *testing.T) {
	c := Graphic{Shape: ShapeCircle, Points: []Point{{10, 10}}, Radius: 3}
	if got := c.Bounds(); got != (Rect{7, 7, 7, 7}) {
		t.Errorf("circle bounds = %+v", got)
	}
	r := Graphic{Shape: ShapeRect, Points: []Point{{2, 3}}, Size: Point{4, 5}}
	if got := r.Bounds(); got != (Rect{2, 3, 4, 5}) {
		t.Errorf("rect bounds = %+v", got)
	}
	pl := Graphic{Shape: ShapePolyline, Points: []Point{{1, 1}, {5, 9}, {3, 2}}}
	if got := pl.Bounds(); got != (Rect{1, 1, 5, 9}) {
		t.Errorf("polyline bounds = %+v", got)
	}
	empty := Graphic{Shape: ShapePolyline}
	if got := empty.Bounds(); got.Area() != 0 {
		t.Errorf("empty bounds = %+v", got)
	}
}

func TestHitTestTopmost(t *testing.T) {
	im := New("h", 40, 40)
	im.Add(Graphic{Shape: ShapeRect, Points: []Point{{0, 0}}, Size: Point{40, 40},
		Label: Label{Kind: TextLabel, Text: "below"}})
	top := im.Add(Graphic{Shape: ShapeRect, Points: []Point{{10, 10}}, Size: Point{10, 10},
		Label: Label{Kind: TextLabel, Text: "above"}})
	if got := im.HitTest(15, 15); got != top {
		t.Fatalf("HitTest = %d, want topmost %d", got, top)
	}
	if got := im.HitTest(35, 35); got != 0 {
		t.Fatalf("HitTest = %d, want 0", got)
	}
	if got := im.HitTest(-1, -1); got != -1 {
		t.Fatalf("HitTest outside = %d, want -1", got)
	}
}

func TestMatchLabels(t *testing.T) {
	im := New("m", 100, 100)
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{1, 1}},
		Label: Label{Kind: TextLabel, Text: "General Hospital"}})
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{2, 2}},
		Label: Label{Kind: VoiceLabel, Text: "City Hospital", VoiceRef: "v1"}})
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{3, 3}},
		Label: Label{Kind: TextLabel, Text: "University"}})
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{4, 4}}}) // no label
	got := im.MatchLabels("hospital")
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("MatchLabels = %v", got)
	}
	if n := len(im.MatchLabels("museum")); n != 0 {
		t.Fatalf("MatchLabels(miss) = %d", n)
	}
}

func TestHighlightMask(t *testing.T) {
	im := New("hl", 50, 50)
	i := im.Add(Graphic{Shape: ShapeRect, Points: []Point{{10, 10}}, Size: Point{20, 10},
		Label: Label{Kind: TextLabel, Text: "X"}})
	mask := im.HighlightMask([]int{i, 99, -1})
	if !mask.Get(10, 10) || !mask.Get(29, 19) {
		t.Fatal("highlight outline corners missing")
	}
	if mask.Get(15, 15) {
		t.Fatal("highlight filled interior")
	}
}

func TestVoiceLabelsIn(t *testing.T) {
	im := New("v", 100, 100)
	a := im.Add(Graphic{Shape: ShapePoint, Points: []Point{{10, 10}},
		Label: Label{Kind: VoiceLabel, Text: "a", VoiceRef: "va"}})
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{90, 90}},
		Label: Label{Kind: VoiceLabel, Text: "b", VoiceRef: "vb"}})
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{12, 12}},
		Label: Label{Kind: TextLabel, Text: "not voice"}})
	got := im.VoiceLabelsIn(Rect{0, 0, 50, 50})
	if len(got) != 1 || got[0] != a {
		t.Fatalf("VoiceLabelsIn = %v", got)
	}
}

func TestRasterizeLabels(t *testing.T) {
	im := New("lab", 120, 40)
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{5, 5}},
		Label: Label{Kind: TextLabel, Text: "GO", At: Point{10, 5}}})
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{60, 5}},
		Label: Label{Kind: VoiceLabel, Text: "spoken", VoiceRef: "v", At: Point{70, 5}}})
	im.Add(Graphic{Shape: ShapePoint, Points: []Point{{100, 5}},
		Label: Label{Kind: InvisibleTextLabel, Text: "hidden", At: Point{100, 20}}})
	layer := im.RasterizeLabels()
	if layer.Extract(Rect{10, 5, StringWidth("GO"), GlyphHeight()}).PopCount() == 0 {
		t.Fatal("text label not drawn")
	}
	if layer.Extract(Rect{70, 5, 5, 7}).PopCount() == 0 {
		t.Fatal("voice indicator not drawn")
	}
	if layer.Extract(Rect{95, 18, 25, 10}).PopCount() != 0 {
		t.Fatal("invisible label drawn")
	}
}

func TestMiniature(t *testing.T) {
	im := New("map", 200, 160)
	im.Add(Graphic{Shape: ShapeRect, Points: []Point{{20, 20}}, Size: Point{100, 80}, Filled: true})
	mini := im.Miniature(4)
	if !mini.Representation || mini.Of != "map" || mini.Scale != 4 {
		t.Fatalf("miniature metadata: %+v", mini)
	}
	if mini.W != 50 || mini.H != 40 {
		t.Fatalf("miniature dims %dx%d", mini.W, mini.H)
	}
	if mini.Rasterize().PopCount() == 0 {
		t.Fatal("miniature blank")
	}
}

func TestViewMoveClampsAndReportsLabels(t *testing.T) {
	im := New("map", 200, 200)
	lbl := im.Add(Graphic{Shape: ShapeCircle, Points: []Point{{150, 100}}, Radius: 4,
		Label: Label{Kind: VoiceLabel, Text: "site", VoiceRef: "v"}})
	v := &View{Image: "map", Rect: Rect{0, 80, 50, 50}}
	heard := v.Move(im, 30, 0) // now covers x in [30,80) — label at 146..154 not covered
	if len(heard) != 0 {
		t.Fatalf("unexpected labels heard: %v", heard)
	}
	heard = v.Move(im, 90, 0) // covers [120,170) — label encountered
	if len(heard) != 1 || heard[0] != lbl {
		t.Fatalf("labels heard = %v, want [%d]", heard, lbl)
	}
	// Moving within coverage does not replay.
	heard = v.Move(im, 1, 0)
	if len(heard) != 0 {
		t.Fatalf("label replayed: %v", heard)
	}
	// Clamp at the right edge.
	v.Move(im, 10000, 10000)
	if v.Rect.X != 150 || v.Rect.Y != 150 {
		t.Fatalf("clamp failed: %+v", v.Rect)
	}
}

func TestViewJump(t *testing.T) {
	im := New("map", 100, 100)
	lbl := im.Add(Graphic{Shape: ShapePoint, Points: []Point{{10, 10}},
		Label: Label{Kind: VoiceLabel, Text: "x", VoiceRef: "v"}})
	v := &View{Rect: Rect{50, 50, 20, 20}}
	heard := v.Jump(im, 0, 0)
	if v.Rect.X != 0 || v.Rect.Y != 0 {
		t.Fatalf("Jump position %+v", v.Rect)
	}
	if len(heard) != 1 || heard[0] != lbl {
		t.Fatalf("Jump labels = %v", heard)
	}
}

func TestViewResize(t *testing.T) {
	im := New("map", 100, 100)
	lbl := im.Add(Graphic{Shape: ShapePoint, Points: []Point{{40, 40}},
		Label: Label{Kind: VoiceLabel, Text: "x", VoiceRef: "v"}})
	v := &View{Rect: Rect{0, 0, 20, 20}}
	if heard := v.Resize(im, -30, -30); len(heard) != 0 || v.Rect.W != 1 || v.Rect.H != 1 {
		t.Fatalf("shrink: rect %+v heard %v", v.Rect, heard)
	}
	heard := v.Resize(im, 49, 49) // now 50x50, covers the label
	if len(heard) != 1 || heard[0] != lbl {
		t.Fatalf("expand labels = %v", heard)
	}
	v.Resize(im, 1000, 1000)
	if v.Rect.W != 100 || v.Rect.H != 100 {
		t.Fatalf("expand clamp %+v", v.Rect)
	}
}

func TestExtractFromRepresentation(t *testing.T) {
	rep := &Image{Name: "m.mini", W: 50, H: 40, Representation: true, Of: "m", Scale: 4}
	full := ExtractFromRepresentation(rep, Rect{10, 5, 10, 10})
	if full != (Rect{40, 20, 40, 40}) {
		t.Fatalf("mapped rect %+v", full)
	}
	flat := &Image{Scale: 1}
	if got := ExtractFromRepresentation(flat, Rect{1, 2, 3, 4}); got != (Rect{1, 2, 3, 4}) {
		t.Fatalf("identity mapping %+v", got)
	}
}

func TestTourViewAt(t *testing.T) {
	im := New("map", 100, 100)
	tour := &Tour{Image: "map", Size: Point{30, 30}, Stops: []TourStop{
		{At: Point{0, 0}},
		{At: Point{90, 90}}, // clamps to 70,70
	}}
	if got := tour.ViewAt(im, 0); got != (Rect{0, 0, 30, 30}) {
		t.Fatalf("stop 0 = %+v", got)
	}
	if got := tour.ViewAt(im, 1); got != (Rect{70, 70, 30, 30}) {
		t.Fatalf("stop 1 = %+v", got)
	}
	if got := tour.ViewAt(im, 5); got.Area() != 0 {
		t.Fatalf("out-of-range stop = %+v", got)
	}
}

func TestShapeString(t *testing.T) {
	if ShapeCircle.String() != "circle" || ShapePolygon.String() != "polygon" {
		t.Error("Shape.String mismatch")
	}
	if !strings.HasPrefix(Shape(77).String(), "Shape(") {
		t.Error("unknown shape string")
	}
}

// Property: Extract(r) preserves exactly the pixels of the source region.
func TestQuickExtractRoundTrip(t *testing.T) {
	f := func(seed uint32, rx, ry uint8) bool {
		b := NewBitmap(32, 32)
		s := seed
		for i := 0; i < 64; i++ {
			s = s*1664525 + 1013904223
			b.Set(int(s>>8%32), int(s>>16%32), true)
		}
		r := Rect{int(rx % 24), int(ry % 24), 8, 8}
		sub := b.Extract(r)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if sub.Get(x, y) != b.Get(r.X+x, r.Y+y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Or never clears pixels; Blit of a clone is idempotent.
func TestQuickOrMonotonic(t *testing.T) {
	f := func(seed uint32) bool {
		a := NewBitmap(16, 16)
		b := NewBitmap(16, 16)
		s := seed
		for i := 0; i < 40; i++ {
			s = s*1664525 + 1013904223
			a.Set(int(s>>4%16), int(s>>12%16), true)
			b.Set(int(s>>20%16), int(s>>24%16), true)
		}
		before := a.PopCount()
		a.Or(b, 0, 0)
		return a.PopCount() >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawStringScaled(t *testing.T) {
	small := NewBitmap(80, 20)
	DrawString(small, 0, 0, "HI")
	big := NewBitmap(80, 20)
	DrawStringScaled(big, 0, 0, "HI", 2)
	if big.PopCount() != 4*small.PopCount() {
		t.Fatalf("scaled pixels = %d, want 4x %d", big.PopCount(), small.PopCount())
	}
	if StringWidthScaled("HI", 2) != 2*StringWidth("HI") {
		t.Fatal("scaled width wrong")
	}
	if StringWidthScaled("HI", 0) != StringWidth("HI") {
		t.Fatal("scale 0 should mean normal")
	}
	// Scale 1 delegates to the plain renderer.
	s1 := NewBitmap(80, 20)
	DrawStringScaled(s1, 0, 0, "HI", 1)
	if s1.Hash() != small.Hash() {
		t.Fatal("scale 1 differs from DrawString")
	}
}
