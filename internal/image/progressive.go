package image

import "fmt"

// Progressive (coarse-rows-first) bitmap delivery. A miniature streamed
// over a slow link is useless until the last row of a top-to-bottom encoding
// arrives; interleaving the rows into ProgressivePasses groups — every 4th
// row first — puts a recognizable quarter-resolution image on the screen
// after ~1/4 of the bytes, and each later pass sharpens it. The pass
// payloads are plain packed rows in Bitmap's own storage layout, so the
// encoder is a gather and the decoder a scatter: no transform, no extra
// per-pixel cost, and the concatenation of all passes carries exactly the
// bitmap's bytes (stride * H), just reordered.
const ProgressivePasses = 4

// passResidue[p] is the row residue (y % ProgressivePasses) carried by pass
// p. Pass order 0,2,1,3 keeps the refinement spatially uniform: after two
// passes every other row is real, not the top half.
var passResidue = [ProgressivePasses]int{0, 2, 1, 3}

// passRowCount returns the number of rows of an h-row bitmap carried by
// pass p: the rows y in [0,h) with y%ProgressivePasses == passResidue[p].
func passRowCount(h, p int) int {
	r := passResidue[p]
	if h <= r {
		return 0
	}
	return (h - r + ProgressivePasses - 1) / ProgressivePasses
}

// PassSize returns the payload size in bytes of pass p for a w x h bitmap.
func PassSize(w, h, p int) int {
	return ((w + 7) / 8) * passRowCount(h, p)
}

// PassOffset returns the byte offset of pass p within the concatenated
// pass stream of a w x h bitmap. Streamed progressive miniatures address
// chunks by this logical byte offset, which is what makes a resumed stream
// (replica failover) able to continue at a pass boundary.
func PassOffset(w, h, p int) int {
	off := 0
	for i := 0; i < p; i++ {
		off += PassSize(w, h, i)
	}
	return off
}

// PassAtOffset maps a byte offset in the concatenated pass stream back to
// the pass starting there; ok is false when off is not a pass boundary (or
// is past the end of a complete, non-empty stream).
func PassAtOffset(w, h int, off uint64) (pass int, ok bool) {
	for p := 0; p < ProgressivePasses; p++ {
		if uint64(PassOffset(w, h, p)) == off {
			return p, true
		}
	}
	return 0, false
}

// AppendPassRows appends pass p of the bitmap — its interleave rows, packed
// exactly as stored, in increasing y — to dst and returns the extended
// slice. The append never allocates when dst has PassSize capacity left.
func (b *Bitmap) AppendPassRows(dst []byte, p int) []byte {
	r := passResidue[p]
	for y := r; y < b.H; y += ProgressivePasses {
		dst = append(dst, b.bits[y*b.stride:(y+1)*b.stride]...)
	}
	return dst
}

// Progressive accumulates the passes of a streamed bitmap. Every applied
// pass scatters its rows into place; rows whose pass has not arrived yet
// are filled by replicating the nearest earlier coarse row, so Bitmap()
// always returns a fully-painted (if soft) image — the browse screen shows
// it as soon as pass 0 lands.
type Progressive struct {
	bm  *Bitmap
	got [ProgressivePasses]bool
}

// NewProgressive builds an accumulator for a w x h streamed bitmap.
func NewProgressive(w, h int) *Progressive {
	return &Progressive{bm: NewBitmap(w, h)}
}

// Apply installs one pass payload (the bytes AppendPassRows produced).
func (p *Progressive) Apply(pass int, rows []byte) error {
	if pass < 0 || pass >= ProgressivePasses {
		return fmt.Errorf("image: progressive pass %d out of range", pass)
	}
	b := p.bm
	if len(rows) != PassSize(b.W, b.H, pass) {
		return fmt.Errorf("image: progressive pass %d payload %d bytes, want %d",
			pass, len(rows), PassSize(b.W, b.H, pass))
	}
	r := passResidue[pass]
	src := 0
	for y := r; y < b.H; y += ProgressivePasses {
		copy(b.bits[y*b.stride:(y+1)*b.stride], rows[src:src+b.stride])
		src += b.stride
		if pass == 0 {
			// Coarse fill: replicate the anchor row over the following rows
			// whose passes are still in flight; they are overwritten as
			// their own passes arrive.
			for fy := y + 1; fy < b.H && fy < y+ProgressivePasses; fy++ {
				if !p.got[passIndexOf(fy%ProgressivePasses)] {
					copy(b.bits[fy*b.stride:(fy+1)*b.stride], b.bits[y*b.stride:(y+1)*b.stride])
				}
			}
		}
	}
	p.got[pass] = true
	return nil
}

// passIndexOf returns the pass carrying rows of the given residue.
func passIndexOf(residue int) int {
	for p, r := range passResidue {
		if r == residue {
			return p
		}
	}
	return 0
}

// Usable reports whether the coarse pass has been applied — the point where
// the image is worth painting.
func (p *Progressive) Usable() bool { return p.got[0] }

// Complete reports whether every pass has been applied.
func (p *Progressive) Complete() bool {
	for _, g := range p.got {
		if !g {
			return false
		}
	}
	return true
}

// Bitmap returns the accumulated image (shared, repainted as passes apply).
func (p *Progressive) Bitmap() *Bitmap { return p.bm }
