package image

import (
	"testing"

	"minos/internal/pool"
)

// TestAllocRasterize guards the steady-state allocation count of the
// rasterize hot path: with the pixel buffer recycled, each Rasterize should
// cost only the Bitmap header itself.
func TestAllocRasterize(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	im := benchImage()
	im.Rasterize().Release() // warm the pool
	avg := testing.AllocsPerRun(50, func() {
		im.Rasterize().Release()
	})
	if avg > 1 {
		t.Fatalf("Rasterize allocates %.1f objects/run in steady state, want <= 1", avg)
	}
}
