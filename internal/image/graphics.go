package image

import (
	"fmt"
	"strings"
)

// LabelKind is the presentation form of a graphics object's label (§2):
// invisible, text label, or voice label.
type LabelKind uint8

const (
	NoLabel LabelKind = iota
	TextLabel
	VoiceLabel
	InvisibleTextLabel
	InvisibleVoiceLabel
)

// Visible reports whether the label displays an indication by default.
func (k LabelKind) Visible() bool { return k == TextLabel || k == VoiceLabel }

// Label is "some short information about the object" attached to a graphics
// object. Text labels display their text near the object; voice labels
// display an indicator and play on selection; invisible labels display
// nothing by default.
type Label struct {
	Kind LabelKind
	// Text holds the label text for text labels, and the transcript /
	// token form for voice labels (used for pattern highlighting; the
	// paper's label pattern search must work for both kinds).
	Text string
	// VoiceRef names the voice data carrying the spoken label, resolved
	// through the object descriptor. Empty for text labels.
	VoiceRef string
	// At is the designer-specified display position for the label or
	// voice indicator, relative to the image origin.
	At Point
}

// Point is an integer coordinate.
type Point struct{ X, Y int }

// Shape enumerates graphics object geometries.
type Shape uint8

const (
	ShapePoint Shape = iota
	ShapePolyline
	ShapePolygon
	ShapeCircle
	ShapeRect
	ShapeText // a short text run placed on the image
)

// String names the shape for traces and errors.
func (s Shape) String() string {
	switch s {
	case ShapePoint:
		return "point"
	case ShapePolyline:
		return "polyline"
	case ShapePolygon:
		return "polygon"
	case ShapeCircle:
		return "circle"
	case ShapeRect:
		return "rect"
	case ShapeText:
		return "text"
	}
	return fmt.Sprintf("Shape(%d)", uint8(s))
}

// Graphic is one graphics object.
type Graphic struct {
	Shape  Shape
	Points []Point // point: 1; polyline/polygon: vertices; circle: center; rect: min corner
	Radius int     // circle only
	Size   Point   // rect only: W, H
	Text   string  // ShapeText only
	Filled bool    // polygon/circle/rect shading
	Label  Label
}

// Bounds returns the graphic's bounding rectangle.
func (g *Graphic) Bounds() Rect {
	switch g.Shape {
	case ShapeCircle:
		c := g.Points[0]
		return Rect{X: c.X - g.Radius, Y: c.Y - g.Radius, W: 2*g.Radius + 1, H: 2*g.Radius + 1}
	case ShapeRect:
		p := g.Points[0]
		return Rect{X: p.X, Y: p.Y, W: g.Size.X, H: g.Size.Y}
	case ShapeText:
		p := g.Points[0]
		return Rect{X: p.X, Y: p.Y, W: len(g.Text) * glyphW, H: glyphH}
	default:
		if len(g.Points) == 0 {
			return Rect{}
		}
		minX, minY := g.Points[0].X, g.Points[0].Y
		maxX, maxY := minX, minY
		for _, p := range g.Points[1:] {
			minX, maxX = min(minX, p.X), max(maxX, p.X)
			minY, maxY = min(minY, p.Y), max(maxY, p.Y)
		}
		return Rect{X: minX, Y: minY, W: maxX - minX + 1, H: maxY - minY + 1}
	}
}

// Image is the image part element: either a raw bitmap, or a drawing
// surface (graphics objects over an optional base bitmap), rasterized on
// demand.
type Image struct {
	Name string
	W, H int
	// Base is an optional background bitmap (e.g. a captured x-ray).
	Base *Bitmap
	// Graphics are the vector objects drawn over the base.
	Graphics []Graphic
	// Representation marks this image as a miniature of another image
	// (paper §2: "the system explicitly indicates that an image is a
	// representation"). Scale is the reduction factor relative to Of.
	Representation bool
	Of             string
	Scale          int
}

// New creates an empty image surface.
func New(name string, w, h int) *Image {
	return &Image{Name: name, W: w, H: h}
}

// Add appends a graphics object and returns its index.
func (im *Image) Add(g Graphic) int {
	im.Graphics = append(im.Graphics, g)
	return len(im.Graphics) - 1
}

// Rasterize renders the image (base + graphics) into a fresh bitmap.
func (im *Image) Rasterize() *Bitmap {
	b := NewBitmap(im.W, im.H)
	if im.Base != nil {
		b.Or(im.Base, 0, 0)
	}
	for i := range im.Graphics {
		drawGraphic(b, &im.Graphics[i])
	}
	return b
}

// RasterizeLabels renders only the default-visible label text and voice
// indicators, as a separate layer the screen overlays.
func (im *Image) RasterizeLabels() *Bitmap {
	b := NewBitmap(im.W, im.H)
	for i := range im.Graphics {
		g := &im.Graphics[i]
		switch g.Label.Kind {
		case TextLabel:
			DrawString(b, g.Label.At.X, g.Label.At.Y, g.Label.Text)
		case VoiceLabel:
			drawVoiceIndicator(b, g.Label.At.X, g.Label.At.Y)
		}
	}
	return b
}

// Miniature produces the representation image of im at reduction factor f.
func (im *Image) Miniature(f int) *Image {
	full := im.Rasterize()
	raster := full.Downscale(f) // always a fresh bitmap, even at f <= 1
	full.Release()
	mini := &Image{
		Name:           im.Name + ".mini",
		W:              raster.W,
		H:              raster.H,
		Base:           raster,
		Representation: true,
		Of:             im.Name,
		Scale:          f,
	}
	return mini
}

// HitTest returns the index of the topmost graphic whose bounds contain the
// point, or -1. This is the "user selects an object using the mouse and the
// system plays or displays the label" inverse facility (§2).
func (im *Image) HitTest(x, y int) int {
	for i := len(im.Graphics) - 1; i >= 0; i-- {
		if im.Graphics[i].Bounds().Contains(x, y) {
			return i
		}
	}
	return -1
}

// MatchLabels returns the indices of graphics whose label text contains the
// pattern (case-insensitive). This backs "the user can specify a pattern
// and request that the objects in which this pattern appears within their
// label are highlighted" (§2) — useful for large images such as road maps.
func (im *Image) MatchLabels(pattern string) []int {
	pat := strings.ToLower(pattern)
	var out []int
	for i := range im.Graphics {
		l := im.Graphics[i].Label
		if l.Kind == NoLabel {
			continue
		}
		if strings.Contains(strings.ToLower(l.Text), pat) {
			out = append(out, i)
		}
	}
	return out
}

// HighlightMask renders a mask bitmap with the bounds of each listed
// graphic outlined, which the screen XORs/ORs over the displayed image.
func (im *Image) HighlightMask(indices []int) *Bitmap {
	b := NewBitmap(im.W, im.H)
	for _, i := range indices {
		if i < 0 || i >= len(im.Graphics) {
			continue
		}
		r := im.Graphics[i].Bounds()
		drawRectOutline(b, r)
	}
	return b
}

// VoiceLabelsIn returns the indices of graphics with voice labels whose
// bounds intersect the rectangle, in stable order. The view mechanism plays
// these "as the view moves" when the voice option is on (§2).
func (im *Image) VoiceLabelsIn(r Rect) []int {
	var out []int
	for i := range im.Graphics {
		k := im.Graphics[i].Label.Kind
		if k != VoiceLabel && k != InvisibleVoiceLabel {
			continue
		}
		if im.Graphics[i].Bounds().Intersects(r) {
			out = append(out, i)
		}
	}
	return out
}
