// Package image implements the image part of a MINOS multimedia object:
// bitmaps, graphics objects with labels, views (windows) on large images,
// and representation images (miniatures).
//
// Per the paper (§2): "Images in MINOS may be bitmaps or graphics. Images
// with graphics contain graphics objects such as points, polygons,
// polylines, circles, etc. Graphics objects may have a label associated
// with them" and labels may be text labels, voice labels, or invisible.
package image

import (
	"fmt"
	"hash/fnv"
	"strings"

	"minos/internal/pool"
)

// Bitmap is a 1-bit raster, matching the bitmapped displays of the paper's
// era. Rows are packed 8 pixels per byte, row-major.
type Bitmap struct {
	W, H   int
	stride int
	bits   []byte
}

// NewBitmap allocates a cleared bitmap. Pixel storage is drawn from the
// process buffer pool; a caller that provably holds the last reference may
// hand it back with Release, and a bitmap that is never released is simply
// garbage collected.
func NewBitmap(w, h int) *Bitmap {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("image: NewBitmap(%d, %d)", w, h))
	}
	stride := (w + 7) / 8
	return &Bitmap{W: w, H: h, stride: stride, bits: pool.Bytes.GetZeroed(stride * h)}
}

// Release returns the pixel storage to the buffer pool and empties the
// bitmap (0x0, so stray use afterwards reads false / writes nowhere rather
// than scribbling on recycled memory). Only the last holder of the bitmap —
// and of any slice obtained via Raw — may call it; releasing is optional.
func (b *Bitmap) Release() {
	if b == nil || b.bits == nil {
		return
	}
	pool.Bytes.Put(b.bits)
	b.bits = nil
	b.W, b.H, b.stride = 0, 0, 0
}

// Raw exposes the packed pixel storage: rows of stride (W+7)/8 bytes, 8
// pixels per byte, bit x%8 of byte y*stride+x/8. The slice is shared with
// the bitmap — treat it as read-only unless you own the bitmap outright,
// and do not retain it past Release.
func (b *Bitmap) Raw() []byte { return b.bits }

// ByteSize returns the storage footprint of the raster in bytes; the
// view/miniature transfer experiments report this.
func (b *Bitmap) ByteSize() int { return len(b.bits) }

// In reports whether (x, y) lies inside the bitmap.
func (b *Bitmap) In(x, y int) bool { return x >= 0 && x < b.W && y >= 0 && y < b.H }

// Set sets pixel (x, y) to v; out-of-range writes are ignored so drawing
// primitives can clip trivially.
func (b *Bitmap) Set(x, y int, v bool) {
	if !b.In(x, y) {
		return
	}
	idx := y*b.stride + x/8
	mask := byte(1) << (x % 8)
	if v {
		b.bits[idx] |= mask
	} else {
		b.bits[idx] &^= mask
	}
}

// Get returns pixel (x, y); out-of-range reads are false.
func (b *Bitmap) Get(x, y int) bool {
	if !b.In(x, y) {
		return false
	}
	return b.bits[y*b.stride+x/8]&(byte(1)<<(x%8)) != 0
}

// Fill sets every pixel in the rectangle to v.
func (b *Bitmap) Fill(r Rect, v bool) {
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			b.Set(x, y, v)
		}
	}
}

// PopCount returns the number of set pixels; tests use it to assert
// compositing behaviour cheaply.
func (b *Bitmap) PopCount() int {
	n := 0
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				n++
			}
		}
	}
	return n
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	nb := NewBitmap(b.W, b.H)
	copy(nb.bits, b.bits)
	return nb
}

// Or draws src onto b at (dx, dy) with OR semantics: set pixels turn on,
// clear pixels leave the destination alone. This is the transparency
// compositing operation.
func (b *Bitmap) Or(src *Bitmap, dx, dy int) {
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			if src.Get(x, y) {
				b.Set(dx+x, dy+y, true)
			}
		}
	}
}

// Blit copies src onto b at (dx, dy), overwriting both set and clear pixels
// within src's rectangle.
func (b *Bitmap) Blit(src *Bitmap, dx, dy int) {
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			b.Set(dx+x, dy+y, src.Get(x, y))
		}
	}
}

// Extract copies the rectangle r (clipped to the bitmap) into a new bitmap
// of r's size. It is the core of view retrieval: the server ships only
// these bytes.
func (b *Bitmap) Extract(r Rect) *Bitmap {
	out := NewBitmap(r.W, r.H)
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if b.Get(r.X+x, r.Y+y) {
				out.Set(x, y, true)
			}
		}
	}
	return out
}

// Downscale returns a miniature reduced by integer factor f using a
// majority-of-ones box filter. Representation images ("miniatures") are
// "much smaller than the image itself, and thus ... easily transferable to
// main memory" (§2).
func (b *Bitmap) Downscale(f int) *Bitmap {
	if f <= 1 {
		return b.Clone()
	}
	out := NewBitmap((b.W+f-1)/f, (b.H+f-1)/f)
	for oy := 0; oy < out.H; oy++ {
		for ox := 0; ox < out.W; ox++ {
			ones, total := 0, 0
			for y := oy * f; y < (oy+1)*f && y < b.H; y++ {
				for x := ox * f; x < (ox+1)*f && x < b.W; x++ {
					total++
					if b.Get(x, y) {
						ones++
					}
				}
			}
			if total > 0 && ones*3 >= total {
				out.Set(ox, oy, true)
			}
		}
	}
	return out
}

// Hash returns a stable content hash used by tests and screen snapshots.
func (b *Bitmap) Hash() uint64 {
	h := fnv.New64a()
	var dims [8]byte
	dims[0] = byte(b.W)
	dims[1] = byte(b.W >> 8)
	dims[2] = byte(b.H)
	dims[3] = byte(b.H >> 8)
	h.Write(dims[:4])
	h.Write(b.bits)
	return h.Sum64()
}

// ASCII renders the bitmap as '#' and '.' rows, for golden tests and the
// CLI's snapshot output.
func (b *Bitmap) ASCII() string {
	var sb strings.Builder
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether the point lies inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// Clip returns r clipped to the bounds rectangle.
func (r Rect) Clip(bounds Rect) Rect {
	x1 := max(r.X, bounds.X)
	y1 := max(r.Y, bounds.Y)
	x2 := min(r.X+r.W, bounds.X+bounds.W)
	y2 := min(r.Y+r.H, bounds.Y+bounds.H)
	if x2 < x1 {
		x2 = x1
	}
	if y2 < y1 {
		y2 = y1
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Area returns the rectangle's area in pixels.
func (r Rect) Area() int { return r.W * r.H }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
