// Package text implements the text part of a MINOS multimedia object.
//
// Per the paper (§2), a text segment is logically subdivided into title,
// abstract, chapters, sections, paragraphs, sentences and words, and these
// subdivisions are identified from the tags the user inserts to format the
// text. This package provides:
//
//   - the logical model (Segment → Chapter → Section → Paragraph →
//     Sentence → Word),
//   - a parser for the MINOS formatting tag language (see Parse),
//   - flattening of a segment into a linear word stream with boundary
//     marks, which is what pagination and symmetric browsing operate on,
//   - logical navigation (next/previous chapter, section, paragraph,
//     sentence, word) over the flattened stream.
package text

import (
	"fmt"
	"strings"
)

// Emphasis describes the visual emphasis carried by a word. The paper notes
// that in text "emphasis and meaning aspects are expressed by some special
// symbols as well as by some conventions such as underlined words, tilted
// words, bold tones" — these map to the flags below.
type Emphasis uint8

const (
	Plain     Emphasis = 0
	Bold      Emphasis = 1 << iota
	Underline Emphasis = 1 << iota
	Italic    Emphasis = 1 << iota
)

// String returns a compact human-readable form such as "bold|underline".
func (e Emphasis) String() string {
	if e == Plain {
		return "plain"
	}
	var parts []string
	if e&Bold != 0 {
		parts = append(parts, "bold")
	}
	if e&Underline != 0 {
		parts = append(parts, "underline")
	}
	if e&Italic != 0 {
		parts = append(parts, "italic")
	}
	return strings.Join(parts, "|")
}

// Word is the smallest logical text unit.
type Word struct {
	Text string
	Emph Emphasis
}

// Sentence is a run of words ended by a terminator symbol. The terminator
// conveys the emphasis/meaning the paper attributes to special symbols
// (., !, ?).
type Sentence struct {
	Words      []Word
	Terminator rune // '.', '!', '?' or 0 for an unterminated trailing run
}

// Paragraph groups sentences and carries formatting state.
type Paragraph struct {
	Sentences []Sentence
	Indent    int // leading indent in character cells
	// Scale is the letter-size multiplier (1 = normal, 2 = double); the
	// paper's formatter supports "various character fonts, letter sizes"
	// (§3).
	Scale int
}

// Section groups paragraphs under an optional heading.
type Section struct {
	Title      string
	Paragraphs []Paragraph
}

// Chapter groups sections.
type Chapter struct {
	Title    string
	Sections []Section
}

// Segment is one text segment of a multimedia object: title, abstract,
// chapters, references (paper §2).
type Segment struct {
	Title      string
	Abstract   []Paragraph
	Chapters   []Chapter
	References []Paragraph
}

// WordCount returns the total number of words in the segment body
// (abstract, chapters and references; headings excluded).
func (s *Segment) WordCount() int {
	n := 0
	for _, p := range s.Abstract {
		n += paragraphWords(p)
	}
	for _, c := range s.Chapters {
		for _, sec := range c.Sections {
			for _, p := range sec.Paragraphs {
				n += paragraphWords(p)
			}
		}
	}
	for _, p := range s.References {
		n += paragraphWords(p)
	}
	return n
}

func paragraphWords(p Paragraph) int {
	n := 0
	for _, s := range p.Sentences {
		n += len(s.Words)
	}
	return n
}

// Unit identifies a logical unit level for navigation. The ordering is from
// the finest (UnitWord) to the coarsest (UnitChapter); browsing menus offer
// only the units the object's structure actually identifies.
type Unit uint8

const (
	UnitWord Unit = iota
	UnitSentence
	UnitParagraph
	UnitSection
	UnitChapter
)

// String returns the unit name as used in menu options.
func (u Unit) String() string {
	switch u {
	case UnitWord:
		return "word"
	case UnitSentence:
		return "sentence"
	case UnitParagraph:
		return "paragraph"
	case UnitSection:
		return "section"
	case UnitChapter:
		return "chapter"
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// Boundary marks that a flattened word starts a logical unit of each level
// at or below the recorded one (a chapter start is also a section,
// paragraph, sentence and word start).
type Boundary uint8

const (
	StartsSentence Boundary = 1 << iota
	StartsParagraph
	StartsSection
	StartsChapter
)

// FlatWord is one element of the flattened word stream.
type FlatWord struct {
	Word     Word
	Bounds   Boundary
	Chapter  int // 0-based chapter index, -1 for abstract/references
	Section  int // 0-based section index within the chapter, -1 if n/a
	EndsWith rune
	// Scale is the paragraph's letter-size multiplier (0 and 1 both mean
	// normal size).
	Scale int
}

// Starts reports whether this word begins a unit of the given level.
// Every word starts a UnitWord.
func (f FlatWord) Starts(u Unit) bool {
	switch u {
	case UnitWord:
		return true
	case UnitSentence:
		return f.Bounds&StartsSentence != 0
	case UnitParagraph:
		return f.Bounds&StartsParagraph != 0
	case UnitSection:
		return f.Bounds&StartsSection != 0
	case UnitChapter:
		return f.Bounds&StartsChapter != 0
	}
	return false
}

// Flatten converts the segment body into the linear word stream used for
// pagination, browsing, and indexing. Chapter and section headings are not
// part of the stream; their boundaries are carried by the first body word
// that follows them. The abstract precedes chapter 0; references follow the
// last chapter and begin a paragraph boundary.
func Flatten(s *Segment) []FlatWord {
	var out []FlatWord
	appendParas := func(paras []Paragraph, chapter, section int, firstBound Boundary) {
		for pi, p := range paras {
			for si, sent := range p.Sentences {
				for wi, w := range sent.Words {
					var b Boundary
					if wi == 0 {
						b |= StartsSentence
						if si == 0 {
							b |= StartsParagraph
							if pi == 0 {
								b |= firstBound
							}
						}
					}
					fw := FlatWord{Word: w, Bounds: b, Chapter: chapter, Section: section, Scale: p.Scale}
					if wi == len(sent.Words)-1 {
						fw.EndsWith = sent.Terminator
					}
					out = append(out, fw)
				}
			}
		}
	}
	appendParas(s.Abstract, -1, -1, StartsSection|StartsChapter)
	for ci, c := range s.Chapters {
		for sci, sec := range c.Sections {
			bound := StartsSection
			if sci == 0 {
				bound |= StartsChapter
			}
			appendParas(sec.Paragraphs, ci, sci, bound)
		}
	}
	appendParas(s.References, -1, -1, StartsSection|StartsChapter)
	return out
}

// NextStart returns the index of the first word at or after from+1 that
// starts a unit of level u, or -1 if there is none. This implements the
// "next chapter / next section / ..." browsing commands.
func NextStart(stream []FlatWord, from int, u Unit) int {
	for i := from + 1; i < len(stream); i++ {
		if stream[i].Starts(u) {
			return i
		}
	}
	return -1
}

// PrevStart returns the index of the last word strictly before from that
// starts a unit of level u, or -1 if there is none.
func PrevStart(stream []FlatWord, from int, u Unit) int {
	if from > len(stream) {
		from = len(stream)
	}
	for i := from - 1; i >= 0; i-- {
		if stream[i].Starts(u) {
			return i
		}
	}
	return -1
}

// CurrentStart returns the index of the start of the unit of level u that
// contains position at (the greatest start ≤ at), or -1.
func CurrentStart(stream []FlatWord, at int, u Unit) int {
	if at >= len(stream) {
		at = len(stream) - 1
	}
	for i := at; i >= 0; i-- {
		if stream[i].Starts(u) {
			return i
		}
	}
	return -1
}

// UnitsIdentified reports which logical unit levels are present in the
// stream beyond the trivial word level. The presentation manager uses this
// to decide which menu options to display (paper §2: "the logical browsing
// options that are available to the user in MINOS depend on the object").
func UnitsIdentified(stream []FlatWord) []Unit {
	units := []Unit{UnitWord}
	have := map[Unit]bool{}
	for _, fw := range stream {
		if fw.Bounds&StartsSentence != 0 {
			have[UnitSentence] = true
		}
		if fw.Bounds&StartsParagraph != 0 {
			have[UnitParagraph] = true
		}
		if fw.Bounds&StartsSection != 0 {
			have[UnitSection] = true
		}
		if fw.Bounds&StartsChapter != 0 {
			have[UnitChapter] = true
		}
	}
	for _, u := range []Unit{UnitSentence, UnitParagraph, UnitSection, UnitChapter} {
		if have[u] {
			units = append(units, u)
		}
	}
	return units
}

// PlainString reconstructs a whitespace-joined plain string of the word
// stream between [from, to); useful for tests and for indexing.
func PlainString(stream []FlatWord, from, to int) string {
	if from < 0 {
		from = 0
	}
	if to > len(stream) {
		to = len(stream)
	}
	var b strings.Builder
	for i := from; i < to; i++ {
		if i > from {
			b.WriteByte(' ')
		}
		b.WriteString(stream[i].Word.Text)
		if stream[i].EndsWith != 0 {
			b.WriteRune(stream[i].EndsWith)
		}
	}
	return b.String()
}
