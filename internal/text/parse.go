package text

import (
	"bufio"
	"fmt"
	"strings"
	"unicode"
)

// Parse reads MINOS formatting-tag markup and produces a Segment. The
// language is a line-oriented declarative tag set in the spirit of the
// formatters the paper cites (Scribe/TeX-era): the user states logical
// structure, and those same tags identify the logical subdivisions used for
// browsing (paper §2).
//
// Tags (each on its own line, starting with a dot):
//
//	.title <text>      object/segment title
//	.abstract          following paragraphs form the abstract
//	.chapter <title>   start a chapter
//	.section <title>   start a section within the current chapter
//	.references        following paragraphs are the reference list
//	.indent <n>        set paragraph indent for subsequent paragraphs
//	.size <big|normal> set the letter size for subsequent paragraphs
//	.pp                explicit paragraph break
//
// Body lines hold the running text. A blank line is a paragraph break.
// Within body text, inline emphasis markers apply per word:
//
//	*word*   bold
//	_word_   underline
//	/word/   italic
//
// Sentences end at '.', '!' or '?' followed by whitespace or end of line.
// A chapter tag with no .section creates an implicit untitled section so
// text can be placed directly under a chapter.
func Parse(src string) (*Segment, error) {
	p := &parser{seg: &Segment{}}
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("text: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("text: scan: %w", err)
	}
	p.flushParagraph()
	return p.seg, nil
}

type parseRegion uint8

const (
	regionBody parseRegion = iota
	regionAbstract
	regionReferences
)

type parser struct {
	seg    *Segment
	region parseRegion
	indent int
	scale  int

	curWords []Word
	curSents []Sentence
}

func (p *parser) line(line string) error {
	trimmed := strings.TrimSpace(line)
	if strings.HasPrefix(trimmed, ".") {
		return p.tag(trimmed)
	}
	if trimmed == "" {
		p.flushParagraph()
		return nil
	}
	p.bodyText(trimmed)
	return nil
}

func (p *parser) tag(line string) error {
	name, arg, _ := strings.Cut(line[1:], " ")
	arg = strings.TrimSpace(arg)
	switch name {
	case "title":
		p.seg.Title = arg
	case "abstract":
		p.flushParagraph()
		p.region = regionAbstract
	case "chapter":
		p.flushParagraph()
		p.region = regionBody
		p.seg.Chapters = append(p.seg.Chapters, Chapter{Title: arg})
	case "section":
		p.flushParagraph()
		p.region = regionBody
		if len(p.seg.Chapters) == 0 {
			p.seg.Chapters = append(p.seg.Chapters, Chapter{})
		}
		c := &p.seg.Chapters[len(p.seg.Chapters)-1]
		c.Sections = append(c.Sections, Section{Title: arg})
	case "references":
		p.flushParagraph()
		p.region = regionReferences
	case "pp":
		p.flushParagraph()
	case "size":
		p.flushParagraph()
		switch arg {
		case "big":
			p.scale = 2
		case "normal":
			p.scale = 1
		default:
			return fmt.Errorf("bad .size argument %q (want big or normal)", arg)
		}
	case "indent":
		p.flushParagraph()
		n := 0
		if _, err := fmt.Sscanf(arg, "%d", &n); err != nil {
			return fmt.Errorf("bad .indent argument %q", arg)
		}
		if n < 0 {
			return fmt.Errorf("negative .indent %d", n)
		}
		p.indent = n
	default:
		return fmt.Errorf("unknown tag .%s", name)
	}
	return nil
}

func (p *parser) bodyText(s string) {
	for _, field := range strings.Fields(s) {
		word, emph, term := splitWord(field)
		if word == "" {
			continue
		}
		p.curWords = append(p.curWords, Word{Text: word, Emph: emph})
		if term != 0 {
			p.curSents = append(p.curSents, Sentence{Words: p.curWords, Terminator: term})
			p.curWords = nil
		}
	}
}

// splitWord strips inline emphasis markers and a trailing sentence
// terminator from one whitespace-delimited field.
func splitWord(field string) (word string, emph Emphasis, term rune) {
	// Trailing terminator (possibly after a closing emphasis marker).
	runes := []rune(field)
	for len(runes) > 0 {
		last := runes[len(runes)-1]
		if last == '.' || last == '!' || last == '?' {
			term = last
			runes = runes[:len(runes)-1]
			break
		}
		if last == ',' || last == ';' || last == ':' || last == ')' || last == '"' {
			runes = runes[:len(runes)-1]
			continue
		}
		break
	}
	s := string(runes)
	s = strings.TrimLeft(s, "(\"")
	for {
		switch {
		case len(s) >= 2 && strings.HasPrefix(s, "*") && strings.HasSuffix(s, "*"):
			emph |= Bold
			s = s[1 : len(s)-1]
		case len(s) >= 2 && strings.HasPrefix(s, "_") && strings.HasSuffix(s, "_"):
			emph |= Underline
			s = s[1 : len(s)-1]
		case len(s) >= 2 && strings.HasPrefix(s, "/") && strings.HasSuffix(s, "/"):
			emph |= Italic
			s = s[1 : len(s)-1]
		default:
			return s, emph, term
		}
	}
}

func (p *parser) flushParagraph() {
	if len(p.curWords) > 0 {
		p.curSents = append(p.curSents, Sentence{Words: p.curWords})
		p.curWords = nil
	}
	if len(p.curSents) == 0 {
		return
	}
	para := Paragraph{Sentences: p.curSents, Indent: p.indent, Scale: p.scale}
	p.curSents = nil
	switch p.region {
	case regionAbstract:
		p.seg.Abstract = append(p.seg.Abstract, para)
	case regionReferences:
		p.seg.References = append(p.seg.References, para)
	default:
		if len(p.seg.Chapters) == 0 {
			p.seg.Chapters = append(p.seg.Chapters, Chapter{})
		}
		c := &p.seg.Chapters[len(p.seg.Chapters)-1]
		if len(c.Sections) == 0 {
			c.Sections = append(c.Sections, Section{})
		}
		sec := &c.Sections[len(c.Sections)-1]
		sec.Paragraphs = append(sec.Paragraphs, para)
	}
}

// NormalizeToken lowercases a word and strips non-alphanumeric runes; it is
// the shared token form for indexing and pattern browsing across text and
// recognized voice.
func NormalizeToken(s string) string {
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}
