package text

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleDoc = `.title The Multimedia Object
.abstract
Large multimedia data bases become feasible. A very important component
will be the presentation manager.

.chapter Introduction
.section Motivation
Data base management systems have been very successful. New opportunities
emerge in application environments!

Voice will be a very important way of communication.
.section Contributions
We present *symmetric* capabilities for _text_ and /voice/ browsing.
.chapter Primitives
.section Pages
A text page is all the text presented at the same time. Audio pages are
consecutive partitions of approximately constant time length.
.references
Christodoulakis 85. Issues in the Architecture of a Document Archiver.
`

func mustParse(t *testing.T, src string) *Segment {
	t.Helper()
	seg, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return seg
}

func TestParseStructure(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	if seg.Title != "The Multimedia Object" {
		t.Errorf("Title = %q", seg.Title)
	}
	if len(seg.Abstract) != 1 {
		t.Fatalf("abstract paragraphs = %d, want 1", len(seg.Abstract))
	}
	if len(seg.Chapters) != 2 {
		t.Fatalf("chapters = %d, want 2", len(seg.Chapters))
	}
	if seg.Chapters[0].Title != "Introduction" || seg.Chapters[1].Title != "Primitives" {
		t.Errorf("chapter titles = %q, %q", seg.Chapters[0].Title, seg.Chapters[1].Title)
	}
	if len(seg.Chapters[0].Sections) != 2 {
		t.Fatalf("ch0 sections = %d, want 2", len(seg.Chapters[0].Sections))
	}
	if seg.Chapters[0].Sections[1].Title != "Contributions" {
		t.Errorf("section title = %q", seg.Chapters[0].Sections[1].Title)
	}
	if len(seg.References) != 1 {
		t.Errorf("references paragraphs = %d, want 1", len(seg.References))
	}
}

func TestParseSentenceSplitting(t *testing.T) {
	seg := mustParse(t, ".chapter C\nOne two. Three four! Five six?\n")
	paras := seg.Chapters[0].Sections[0].Paragraphs
	if len(paras) != 1 {
		t.Fatalf("paragraphs = %d, want 1", len(paras))
	}
	sents := paras[0].Sentences
	if len(sents) != 3 {
		t.Fatalf("sentences = %d, want 3", len(sents))
	}
	wantTerm := []rune{'.', '!', '?'}
	for i, s := range sents {
		if len(s.Words) != 2 {
			t.Errorf("sentence %d words = %d, want 2", i, len(s.Words))
		}
		if s.Terminator != wantTerm[i] {
			t.Errorf("sentence %d terminator = %q, want %q", i, s.Terminator, wantTerm[i])
		}
	}
}

func TestParseEmphasis(t *testing.T) {
	seg := mustParse(t, "We present *symmetric* capabilities for _text_ and /voice/ browsing.\n")
	words := seg.Chapters[0].Sections[0].Paragraphs[0].Sentences[0].Words
	byText := map[string]Emphasis{}
	for _, w := range words {
		byText[w.Text] = w.Emph
	}
	if byText["symmetric"] != Bold {
		t.Errorf("symmetric emph = %v, want bold", byText["symmetric"])
	}
	if byText["text"] != Underline {
		t.Errorf("text emph = %v, want underline", byText["text"])
	}
	if byText["voice"] != Italic {
		t.Errorf("voice emph = %v, want italic", byText["voice"])
	}
	if byText["capabilities"] != Plain {
		t.Errorf("capabilities emph = %v, want plain", byText["capabilities"])
	}
}

func TestParseUnknownTag(t *testing.T) {
	if _, err := Parse(".bogus arg\n"); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestParseBadIndent(t *testing.T) {
	if _, err := Parse(".indent x\n"); err == nil {
		t.Fatal("bad indent accepted")
	}
	if _, err := Parse(".indent -3\n"); err == nil {
		t.Fatal("negative indent accepted")
	}
}

func TestParseIndentApplied(t *testing.T) {
	seg := mustParse(t, ".indent 4\nIndented paragraph here.\n")
	p := seg.Chapters[0].Sections[0].Paragraphs[0]
	if p.Indent != 4 {
		t.Errorf("Indent = %d, want 4", p.Indent)
	}
}

func TestParseImplicitSection(t *testing.T) {
	seg := mustParse(t, ".chapter Solo\nBody text directly under chapter.\n")
	if len(seg.Chapters[0].Sections) != 1 {
		t.Fatalf("sections = %d, want implicit 1", len(seg.Chapters[0].Sections))
	}
}

func TestFlattenBoundaries(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	stream := Flatten(seg)
	if len(stream) == 0 {
		t.Fatal("empty stream")
	}
	// First word of the abstract starts everything.
	if !stream[0].Starts(UnitChapter) || !stream[0].Starts(UnitSection) ||
		!stream[0].Starts(UnitParagraph) || !stream[0].Starts(UnitSentence) {
		t.Errorf("stream[0].Bounds = %b", stream[0].Bounds)
	}
	// Count chapter starts: abstract + 2 chapters + references = 4.
	n := 0
	for _, fw := range stream {
		if fw.Starts(UnitChapter) {
			n++
		}
	}
	if n != 4 {
		t.Errorf("chapter starts = %d, want 4", n)
	}
	// Section starts: abstract(1) + 2 + 1 + references(1) = 5.
	n = 0
	for _, fw := range stream {
		if fw.Starts(UnitSection) {
			n++
		}
	}
	if n != 5 {
		t.Errorf("section starts = %d, want 5", n)
	}
}

func TestFlattenChapterIndices(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	stream := Flatten(seg)
	// Abstract words carry chapter -1.
	if stream[0].Chapter != -1 {
		t.Errorf("abstract word chapter = %d, want -1", stream[0].Chapter)
	}
	sawCh1 := false
	for _, fw := range stream {
		if fw.Chapter == 1 {
			sawCh1 = true
		}
	}
	if !sawCh1 {
		t.Error("no words attributed to chapter 1")
	}
}

func TestNextPrevStart(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	stream := Flatten(seg)
	first := NextStart(stream, -1, UnitChapter)
	if first != 0 {
		t.Fatalf("first chapter start = %d, want 0", first)
	}
	second := NextStart(stream, first, UnitChapter)
	if second <= first {
		t.Fatalf("second chapter start = %d", second)
	}
	if got := PrevStart(stream, second, UnitChapter); got != first {
		t.Errorf("PrevStart = %d, want %d", got, first)
	}
	if got := NextStart(stream, len(stream), UnitChapter); got != -1 {
		t.Errorf("NextStart past end = %d, want -1", got)
	}
	if got := PrevStart(stream, 0, UnitChapter); got != -1 {
		t.Errorf("PrevStart before begin = %d, want -1", got)
	}
}

func TestCurrentStart(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	stream := Flatten(seg)
	secondCh := NextStart(stream, 0, UnitChapter)
	mid := secondCh + 3
	if got := CurrentStart(stream, mid, UnitChapter); got != secondCh {
		t.Errorf("CurrentStart = %d, want %d", got, secondCh)
	}
	if got := CurrentStart(stream, len(stream)+100, UnitWord); got != len(stream)-1 {
		t.Errorf("CurrentStart clamped = %d, want %d", got, len(stream)-1)
	}
}

func TestUnitsIdentified(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	units := UnitsIdentified(Flatten(seg))
	want := []Unit{UnitWord, UnitSentence, UnitParagraph, UnitSection, UnitChapter}
	if len(units) != len(want) {
		t.Fatalf("units = %v, want %v", units, want)
	}
	for i := range want {
		if units[i] != want[i] {
			t.Fatalf("units = %v, want %v", units, want)
		}
	}
}

func TestUnitsIdentifiedEmpty(t *testing.T) {
	units := UnitsIdentified(nil)
	if len(units) != 1 || units[0] != UnitWord {
		t.Fatalf("units of empty stream = %v, want [word]", units)
	}
}

func TestPlainString(t *testing.T) {
	seg := mustParse(t, ".chapter C\nOne two. Three!\n")
	stream := Flatten(seg)
	if got := PlainString(stream, 0, len(stream)); got != "One two. Three!" {
		t.Errorf("PlainString = %q", got)
	}
	if got := PlainString(stream, -5, 100); got != "One two. Three!" {
		t.Errorf("PlainString clamped = %q", got)
	}
}

func TestWordCount(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	if got, want := seg.WordCount(), len(Flatten(seg)); got != want {
		t.Errorf("WordCount = %d, Flatten length = %d", got, want)
	}
}

func TestNormalizeToken(t *testing.T) {
	cases := map[string]string{
		"Hello,":   "hello",
		"(X-ray)":  "xray",
		"MINOS.":   "minos",
		"don't":    "dont",
		"1986":     "1986",
		"...":      "",
		"Überholt": "überholt",
	}
	for in, want := range cases {
		if got := NormalizeToken(in); got != want {
			t.Errorf("NormalizeToken(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEmphasisString(t *testing.T) {
	if got := Plain.String(); got != "plain" {
		t.Errorf("Plain.String() = %q", got)
	}
	if got := (Bold | Italic).String(); got != "bold|italic" {
		t.Errorf("(Bold|Italic).String() = %q", got)
	}
}

func TestUnitString(t *testing.T) {
	if UnitChapter.String() != "chapter" || UnitWord.String() != "word" {
		t.Error("Unit.String() mismatch")
	}
	if !strings.HasPrefix(Unit(99).String(), "Unit(") {
		t.Error("unknown unit string")
	}
}

// Property: for every stream and every unit, NextStart is strictly
// increasing and PrevStart inverts it.
func TestPropertyNextPrevInverse(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	stream := Flatten(seg)
	for _, u := range []Unit{UnitWord, UnitSentence, UnitParagraph, UnitSection, UnitChapter} {
		pos := -1
		for {
			next := NextStart(stream, pos, u)
			if next == -1 {
				break
			}
			if next <= pos {
				t.Fatalf("unit %v: NextStart not increasing (%d -> %d)", u, pos, next)
			}
			if back := PrevStart(stream, next+1, u); back != next {
				t.Fatalf("unit %v: PrevStart(%d+1) = %d, want %d", u, next, back, next)
			}
			pos = next
		}
	}
}

// Property: parsing words that survive NormalizeToken round-trips through
// Flatten (quick-generated word lists).
func TestQuickFlattenPreservesWords(t *testing.T) {
	f := func(raw []string) bool {
		var clean []string
		for _, w := range raw {
			tok := NormalizeToken(w)
			if tok != "" {
				clean = append(clean, tok)
			}
		}
		if len(clean) == 0 {
			return true
		}
		src := ".chapter Q\n" + strings.Join(clean, " ") + ".\n"
		seg, err := Parse(src)
		if err != nil {
			return false
		}
		stream := Flatten(seg)
		if len(stream) != len(clean) {
			return false
		}
		for i := range clean {
			if stream[i].Word.Text != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every boundary mask implies containment — a chapter start is
// also a section, paragraph and sentence start.
func TestPropertyBoundaryContainment(t *testing.T) {
	seg := mustParse(t, sampleDoc)
	for i, fw := range Flatten(seg) {
		if fw.Starts(UnitChapter) && !fw.Starts(UnitSection) {
			t.Fatalf("word %d: chapter start without section start", i)
		}
		if fw.Starts(UnitSection) && !fw.Starts(UnitParagraph) {
			t.Fatalf("word %d: section start without paragraph start", i)
		}
		if fw.Starts(UnitParagraph) && !fw.Starts(UnitSentence) {
			t.Fatalf("word %d: paragraph start without sentence start", i)
		}
	}
}

func TestParseSizeTag(t *testing.T) {
	seg := mustParse(t, ".size big\nLarge heading text.\n.size normal\nBody follows here.\n")
	paras := seg.Chapters[0].Sections[0].Paragraphs
	if len(paras) != 2 {
		t.Fatalf("paragraphs = %d", len(paras))
	}
	if paras[0].Scale != 2 || paras[1].Scale != 1 {
		t.Fatalf("scales = %d, %d", paras[0].Scale, paras[1].Scale)
	}
	stream := Flatten(seg)
	if stream[0].Scale != 2 {
		t.Fatal("scale not carried to flat words")
	}
	if _, err := Parse(".size gigantic\n"); err == nil {
		t.Fatal("bad size accepted")
	}
}
