package text

import (
	"strings"
	"testing"
)

func BenchmarkParse(b *testing.B) {
	src := ".title Bench\n.chapter One\n" + strings.Repeat("lorem ipsum dolor sit amet consectetur adipiscing. ", 60) + "\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlattenAndNavigate(b *testing.B) {
	src := ".title Bench\n.chapter One\n" + strings.Repeat("lorem ipsum dolor sit amet consectetur adipiscing. ", 60) + "\n"
	seg, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream := Flatten(seg)
		pos := -1
		for {
			pos = NextStart(stream, pos, UnitSentence)
			if pos == -1 {
				break
			}
		}
	}
}
