// Package workstation implements the user-facing session of §5: "users
// submit queries based on object content from their workstation. ...
// Miniatures of qualifying objects may be returned to the user using a
// sequential browsing interface. ... When the user selects the miniature of
// an object the multimedia object presentation manager undertakes the
// responsibility to present the information of the selected object."
//
// The session talks to the object server exclusively through the wire
// protocol (pieces, never whole objects in one request) and hands selected
// objects to a core.Manager. It also browses objects still in the editing
// state through the same presentation code path, as §4 requires
// ("duplication of software is not required").
package workstation

import (
	"context"
	"fmt"
	"time"

	"minos/internal/core"
	"minos/internal/descriptor"
	"minos/internal/formatter"
	img "minos/internal/image"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/wire"
)

// Session is one user's workstation session.
type Session struct {
	be  Backend
	mgr *core.Manager

	results []object.ID
	cursor  int

	// queryLog records the query that built the current result set plus
	// every refinement applied to it, in order. After a reconnect (the
	// server may have restarted) the session replays the log to re-derive
	// the result set instead of trusting the one fetched before the
	// failure. Entries carry full planned queries so attribute predicates
	// survive the replay, not just terms.
	queryLog []index.Query
	// seenReconnects is the client reconnect count the session last
	// synchronized against (see maybeResync).
	seenReconnects int64

	// pf, when non-nil, keeps the next miniatures of the result set
	// warming while the user views the current one (see prefetch.go).
	pf *prefetcher

	// FetchTime accumulates server device time attributed to this
	// session's piece requests.
	FetchTime time.Duration
}

// BrowseStep is one sequential-browsing cursor step.
type BrowseStep struct {
	ID   object.ID
	Mini *img.Bitmap
	Mode object.Mode
	// Stale marks a miniature served from the local cache while the
	// server was unreachable: possibly superseded, better than a blank
	// screen. A later step on a healthy connection serves fresh data.
	Stale bool
	// Done reports the cursor stepped past the end of the result set.
	Done bool
}

// New builds a session over any Backend — a single-server wire client and
// a routed fleet client drive the identical session code path. The manager
// configuration's Resolver is overridden to resolve relevant objects
// through the backend.
func New(be Backend, cfg core.Config) *Session {
	s := &Session{be: be, cursor: -1}
	cfg.Resolver = func(id object.ID) (*object.Object, error) {
		return s.load(id)
	}
	s.mgr = core.New(cfg)
	return s
}

// NewWithClient builds a session over a single-server protocol client. It
// is New with the concrete parameter type spelled out — kept so call sites
// written before the Backend interface existed keep compiling verbatim.
func NewWithClient(client *wire.Client, cfg core.Config) *Session {
	return New(client, cfg)
}

// Manager exposes the presentation manager driving this session's screen.
func (s *Session) Manager() *core.Manager { return s.mgr }

// Backend exposes the session's retrieval backend (the gateway serves
// cache-miss miniature fetches through it on the session's connection).
func (s *Session) Backend() Backend { return s.be }

// EnablePrefetch turns on the browse read-ahead pipeline: sequential
// browsing fetches miniatures in batches of cfg.Batch per round trip and
// keeps the next cfg.Depth result miniatures warm in a client-side LRU
// while the user views the current one. Query and Refine invalidate the
// pipeline so a changed result set never surfaces a stale miniature.
func (s *Session) EnablePrefetch(cfg PrefetchConfig) {
	s.pf = newPrefetcher(s.be, cfg)
}

// PrefetchStats reports the read-ahead pipeline's counters (zero value if
// prefetching is not enabled).
func (s *Session) PrefetchStats() PrefetchStats {
	if s.pf == nil {
		return PrefetchStats{}
	}
	return s.pf.Stats()
}

// QueryCtx submits a content query and installs the qualifying objects as
// the sequential browsing result set. It returns the number of hits.
func (s *Session) QueryCtx(ctx context.Context, terms ...string) (int, error) {
	return s.QueryPlannedCtx(ctx, index.Query{Terms: append([]string(nil), terms...)})
}

// QueryPlannedCtx submits a planned content query — conjunctive terms plus
// attribute predicates (media kind, date range) — and installs the
// qualifying objects as the browsing result set. Filterless queries take
// the same path; against a pre-planner server the backend falls back to
// the legacy query op for them.
func (s *Session) QueryPlannedCtx(ctx context.Context, q index.Query) (int, error) {
	ids, dur, err := s.be.QueryPlannedCtx(ctx, q)
	if err != nil {
		return 0, err
	}
	s.FetchTime += dur
	s.results = ids
	s.cursor = -1
	s.queryLog = []index.Query{q}
	s.seenReconnects = s.be.Reconnects()
	if s.pf != nil {
		s.pf.invalidate()
	}
	return len(ids), nil
}

// Query submits a content query and installs the result set.
func (s *Session) Query(terms ...string) (int, error) {
	return s.QueryCtx(context.Background(), terms...)
}

// RefineCtx narrows the current result set with additional terms — the §5
// loop where the user returns "to the query specification interface to
// refine his filter". The refined set is the intersection of the current
// results with the new terms' matches.
func (s *Session) RefineCtx(ctx context.Context, terms ...string) (int, error) {
	ids, dur, err := s.be.QueryCtx(ctx, terms...)
	if err != nil {
		return 0, err
	}
	s.FetchTime += dur
	s.results = intersect(s.results, ids)
	s.cursor = -1
	s.queryLog = append(s.queryLog, index.Query{Terms: append([]string(nil), terms...)})
	if s.pf != nil {
		s.pf.invalidate()
	}
	return len(s.results), nil
}

// Refine narrows the current result set with additional terms.
func (s *Session) Refine(terms ...string) (int, error) {
	return s.RefineCtx(context.Background(), terms...)
}

// intersect keeps the members of base that appear in hits, preserving
// base's order.
func intersect(base, hits []object.ID) []object.ID {
	match := map[object.ID]bool{}
	for _, id := range hits {
		match[id] = true
	}
	var kept []object.ID
	for _, id := range base {
		if match[id] {
			kept = append(kept, id)
		}
	}
	return kept
}

// maybeResync re-derives session state that a server restart may have
// invalidated. The trigger is the client's reconnect counter: when it has
// moved since the session last synchronized, the prefetch generation is
// bumped (no pre-restart miniature may surface as fresh) and the query log
// is replayed to rebuild the result set. A failed replay (server still
// down) leaves the old state for degraded browsing and retries on the next
// step.
func (s *Session) maybeResync(ctx context.Context) {
	rc := s.be.Reconnects()
	if rc == s.seenReconnects {
		return
	}
	if s.pf != nil {
		s.pf.invalidate()
	}
	if len(s.queryLog) == 0 {
		s.seenReconnects = rc
		return
	}
	var rebuilt []object.ID
	for i, q := range s.queryLog {
		// Replay preserves each entry's attribute predicates; the backend
		// degrades filterless entries to the legacy op on old servers.
		ids, dur, err := s.be.QueryPlannedCtx(ctx, q)
		if err != nil {
			// Keep the stale result set and the unsynchronized counter:
			// the next cursor step tries again.
			return
		}
		s.FetchTime += dur
		if i == 0 {
			rebuilt = ids
		} else {
			rebuilt = intersect(rebuilt, ids)
		}
	}
	s.results = rebuilt
	if s.cursor >= len(s.results) {
		s.cursor = len(s.results) - 1
	}
	// The replay itself may have reconnected again; record where we ended.
	s.seenReconnects = s.be.Reconnects()
}

// Results returns the current result set.
func (s *Session) Results() []object.ID { return append([]object.ID(nil), s.results...) }

// NextMiniatureCtx advances the sequential browsing interface and returns
// the next qualifying object's step. It reports Done=true past the last
// result. For audio-mode objects the voice preview plays as the miniature
// passes through the screen (§5). After a reconnect the session re-syncs
// first (replaying the query log) so a restarted server never leaves the
// browse on a phantom result set; while the server is unreachable a cached
// miniature may be served with Stale=true.
func (s *Session) NextMiniatureCtx(ctx context.Context) (BrowseStep, error) {
	s.maybeResync(ctx)
	if s.cursor+1 >= len(s.results) {
		return BrowseStep{Done: true}, nil
	}
	s.cursor++
	return s.stepAtCursor(ctx)
}

// NextMiniature advances the sequential browsing interface.
func (s *Session) NextMiniature() (id object.ID, mini *img.Bitmap, done bool, err error) {
	st, err := s.NextMiniatureCtx(context.Background())
	return st.ID, st.Mini, st.Done, err
}

// PrevMiniatureCtx steps the browsing cursor back.
func (s *Session) PrevMiniatureCtx(ctx context.Context) (BrowseStep, error) {
	s.maybeResync(ctx)
	if s.cursor <= 0 {
		return BrowseStep{Done: true}, nil
	}
	s.cursor--
	return s.stepAtCursor(ctx)
}

// PrevMiniature steps the browsing cursor back.
func (s *Session) PrevMiniature() (id object.ID, mini *img.Bitmap, done bool, err error) {
	st, err := s.PrevMiniatureCtx(context.Background())
	return st.ID, st.Mini, st.Done, err
}

func (s *Session) stepAtCursor(ctx context.Context) (BrowseStep, error) {
	id := s.results[s.cursor]
	var (
		mini *img.Bitmap
		mode object.Mode
		ferr error
	)
	if s.pf != nil {
		// Prefetch path: the batch reply ships the mode inline with the
		// miniature, so a cursor step costs no extra round trip for it.
		m, md, err := s.pf.ensure(ctx, s.results, s.cursor)
		if err != nil {
			ferr = err
		} else {
			mini, mode = m, md
		}
	} else {
		// A batch of one: the reply ships the mode inline with the
		// miniature, so even without prefetch a cursor step is a single
		// round trip on either backend.
		res, dur, err := s.be.MiniaturesCtx(ctx, []object.ID{id})
		s.FetchTime += dur
		switch {
		case err != nil:
			ferr = err
		case len(res) == 0 || !res[0].OK:
			ferr = &noMiniatureError{id: id}
		default:
			mini, mode = res[0].Mini, res[0].Mode
		}
	}
	if ferr != nil {
		// Degraded browsing: the retry loop already exhausted itself on a
		// transient failure (server down or mid-restart). A cached
		// miniature — flagged stale — keeps the user browsing; there is
		// no voice preview (it would need the server).
		if wire.IsRetryable(ferr) && s.pf != nil {
			if e, ok := s.pf.staleEntry(id); ok {
				return BrowseStep{ID: id, Mini: e.mini, Mode: e.mode, Stale: true}, nil
			}
		}
		return BrowseStep{ID: id}, ferr
	}
	if mode == object.Audio {
		if vp, pdur, perr := s.be.VoicePreviewCtx(ctx, id); perr == nil {
			s.FetchTime += pdur
			s.mgr.MsgPlayer().Load(vp)
			s.mgr.MsgPlayer().Play(0, 0, nil)
		}
	}
	return BrowseStep{ID: id, Mini: mini, Mode: mode}, nil
}

// ShowBrowser renders the sequential browsing interface on the session's
// screen: a filmstrip of the result set's miniatures with the cursor's
// miniature highlighted, as §5 describes for browsing "a large number of
// objects that may qualify". The visible miniatures are fetched in batched
// round trips (MaxMiniatureBatch per OpMiniatures), never one by one.
func (s *Session) ShowBrowser() error {
	return s.ShowBrowserCtx(context.Background())
}

// ShowBrowserCtx renders the sequential browsing interface, bounded by ctx.
func (s *Session) ShowBrowserCtx(ctx context.Context) error {
	scr := s.mgr.Screen()
	w, h := scr.ContentWidth(), scr.ContentHeight()
	page := img.NewBitmap(w, h)
	img.DrawString(page, 4, 2, fmt.Sprintf("%d QUALIFYING OBJECTS", len(s.results)))
	const cell = 72
	perRow := w / cell
	if perRow < 1 {
		perRow = 1
	}
	// Only the rows that fit on the page are fetched; the rest is "MORE".
	visible := len(s.results)
	more := false
	for i := range s.results {
		if 14+(i/perRow)*cell+cell > h {
			visible, more = i, true
			break
		}
	}
	minis := make(map[object.ID]*img.Bitmap, visible)
	for at := 0; at < visible; at += wire.MaxMiniatureBatch {
		chunk := s.results[at:min(at+wire.MaxMiniatureBatch, visible)]
		res, dur, err := s.be.MiniaturesCtx(ctx, chunk)
		s.FetchTime += dur
		if err != nil {
			return err
		}
		for _, r := range res {
			if !r.OK {
				return &noMiniatureError{id: r.ID}
			}
			minis[r.ID] = r.Mini
		}
	}
	if more {
		img.DrawString(page, 4, h-10, "MORE ...")
	}
	for i, id := range s.results[:visible] {
		row, col := i/perRow, i%perRow
		x, y := 4+col*cell, 14+row*cell
		page.Or(minis[id], x+2, y+2)
		if i == s.cursor {
			// Highlight the cursor's miniature with a border.
			for bx := 0; bx < cell-4; bx++ {
				page.Set(x+bx, y, true)
				page.Set(x+bx, y+cell-6, true)
			}
			for by := 0; by < cell-5; by++ {
				page.Set(x, y+by, true)
				page.Set(x+cell-5, y+by, true)
			}
		}
	}
	scr.SetTitle("QUERY RESULTS")
	scr.PinStrip(nil)
	scr.ShowPage(page)
	scr.SetMenu([]string{"NEXT MINIATURE", "PREV MINIATURE", "OPEN", "REFINE QUERY"})
	scr.SetIndicators(nil)
	return nil
}

// OpenSelected presents the object under the browsing cursor: the manager
// takes over, fetching the descriptor and parts from the server.
func (s *Session) OpenSelected() error {
	if s.cursor < 0 || s.cursor >= len(s.results) {
		return fmt.Errorf("workstation: no miniature selected")
	}
	return s.OpenObject(s.results[s.cursor])
}

// OpenObject presents an arbitrary published object.
func (s *Session) OpenObject(id object.ID) error {
	o, err := s.load(id)
	if err != nil {
		return err
	}
	return s.mgr.Open(o)
}

func (s *Session) load(id object.ID) (*object.Object, error) {
	ctx := context.Background()
	d, dur, err := s.be.DescriptorCtx(ctx, id)
	if err != nil {
		return nil, err
	}
	s.FetchTime += dur
	// Piece reads carry the object id so a fleet backend routes them to
	// the shard whose archive the descriptor's extents are absolute in.
	return d.Materialize(func(ref descriptor.PartRef) ([]byte, error) {
		data, t, err := s.be.ObjectPieceCtx(ctx, id, ref.Offset, ref.Length)
		s.FetchTime += t
		return data, err
	})
}

// BrowseEditing presents the formatter's current object — still in the
// editing state — through the same presentation manager (§4).
func (s *Session) BrowseEditing(f *formatter.Formatter) error {
	o := f.Object()
	if o == nil {
		return fmt.Errorf("workstation: formatter has no object yet")
	}
	return s.mgr.Open(o)
}

// Close drains any in-flight prefetches and releases the backend.
func (s *Session) Close() error {
	s.Detach()
	return s.be.Close()
}

// Detach ends the session without closing its backend: in-flight
// prefetches are drained, the connection is left open. Gateway sessions
// use it — many sessions share one pooled mux connection, so no single
// session may close it.
func (s *Session) Detach() {
	if s.pf != nil {
		s.pf.drain()
	}
}
