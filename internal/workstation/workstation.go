// Package workstation implements the user-facing session of §5: "users
// submit queries based on object content from their workstation. ...
// Miniatures of qualifying objects may be returned to the user using a
// sequential browsing interface. ... When the user selects the miniature of
// an object the multimedia object presentation manager undertakes the
// responsibility to present the information of the selected object."
//
// The session talks to the object server exclusively through the wire
// protocol (pieces, never whole objects in one request) and hands selected
// objects to a core.Manager. It also browses objects still in the editing
// state through the same presentation code path, as §4 requires
// ("duplication of software is not required").
package workstation

import (
	"fmt"
	"time"

	"minos/internal/core"
	"minos/internal/formatter"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/wire"
)

// Session is one user's workstation session.
type Session struct {
	client *wire.Client
	mgr    *core.Manager

	results []object.ID
	cursor  int

	// pf, when non-nil, keeps the next miniatures of the result set
	// warming while the user views the current one (see prefetch.go).
	pf *prefetcher

	// FetchTime accumulates server device time attributed to this
	// session's piece requests.
	FetchTime time.Duration
}

// New builds a session over a protocol client. The manager configuration's
// Resolver is overridden to resolve relevant objects through the server.
func New(client *wire.Client, cfg core.Config) *Session {
	s := &Session{client: client, cursor: -1}
	cfg.Resolver = func(id object.ID) (*object.Object, error) {
		return s.load(id)
	}
	s.mgr = core.New(cfg)
	return s
}

// Manager exposes the presentation manager driving this session's screen.
func (s *Session) Manager() *core.Manager { return s.mgr }

// EnablePrefetch turns on the browse read-ahead pipeline: sequential
// browsing fetches miniatures in batches of cfg.Batch per round trip and
// keeps the next cfg.Depth result miniatures warm in a client-side LRU
// while the user views the current one. Query and Refine invalidate the
// pipeline so a changed result set never surfaces a stale miniature.
func (s *Session) EnablePrefetch(cfg PrefetchConfig) {
	s.pf = newPrefetcher(s.client, cfg)
}

// PrefetchStats reports the read-ahead pipeline's counters (zero value if
// prefetching is not enabled).
func (s *Session) PrefetchStats() PrefetchStats {
	if s.pf == nil {
		return PrefetchStats{}
	}
	return s.pf.Stats()
}

// Query submits a content query and installs the qualifying objects as the
// sequential browsing result set. It returns the number of hits.
func (s *Session) Query(terms ...string) (int, error) {
	ids, dur, err := s.client.Query(terms...)
	if err != nil {
		return 0, err
	}
	s.FetchTime += dur
	s.results = ids
	s.cursor = -1
	if s.pf != nil {
		s.pf.invalidate()
	}
	return len(ids), nil
}

// Refine narrows the current result set with additional terms — the §5
// loop where the user returns "to the query specification interface to
// refine his filter". The refined set is the intersection of the current
// results with the new terms' matches.
func (s *Session) Refine(terms ...string) (int, error) {
	ids, dur, err := s.client.Query(terms...)
	if err != nil {
		return 0, err
	}
	s.FetchTime += dur
	match := map[object.ID]bool{}
	for _, id := range ids {
		match[id] = true
	}
	var kept []object.ID
	for _, id := range s.results {
		if match[id] {
			kept = append(kept, id)
		}
	}
	s.results = kept
	s.cursor = -1
	if s.pf != nil {
		s.pf.invalidate()
	}
	return len(kept), nil
}

// Results returns the current result set.
func (s *Session) Results() []object.ID { return append([]object.ID(nil), s.results...) }

// NextMiniature advances the sequential browsing interface and returns the
// next qualifying object's id and miniature. It reports done=true past the
// last result. For audio-mode objects the voice preview plays as the
// miniature passes through the screen (§5).
func (s *Session) NextMiniature() (id object.ID, mini *img.Bitmap, done bool, err error) {
	if s.cursor+1 >= len(s.results) {
		return 0, nil, true, nil
	}
	s.cursor++
	return s.miniAtCursor()
}

// PrevMiniature steps the browsing cursor back.
func (s *Session) PrevMiniature() (id object.ID, mini *img.Bitmap, done bool, err error) {
	if s.cursor <= 0 {
		return 0, nil, true, nil
	}
	s.cursor--
	return s.miniAtCursor()
}

func (s *Session) miniAtCursor() (object.ID, *img.Bitmap, bool, error) {
	id := s.results[s.cursor]
	var (
		mini *img.Bitmap
		mode object.Mode
	)
	if s.pf != nil {
		// Prefetch path: the batch reply ships the mode inline with the
		// miniature, so a cursor step costs no extra round trip for it.
		m, md, err := s.pf.ensure(s.results, s.cursor)
		if err != nil {
			return id, nil, false, err
		}
		mini, mode = m, md
	} else {
		m, dur, err := s.client.Miniature(id)
		s.FetchTime += dur
		if err != nil {
			return id, nil, false, err
		}
		mini = m
		if md, merr := s.client.Mode(id); merr == nil {
			mode = md
		}
	}
	if mode == object.Audio {
		if vp, pdur, perr := s.client.VoicePreview(id); perr == nil {
			s.FetchTime += pdur
			s.mgr.MsgPlayer().Load(vp)
			s.mgr.MsgPlayer().Play(0, 0, nil)
		}
	}
	return id, mini, false, nil
}

// ShowBrowser renders the sequential browsing interface on the session's
// screen: a filmstrip of the result set's miniatures with the cursor's
// miniature highlighted, as §5 describes for browsing "a large number of
// objects that may qualify".
func (s *Session) ShowBrowser() error {
	scr := s.mgr.Screen()
	w, h := scr.ContentWidth(), scr.ContentHeight()
	page := img.NewBitmap(w, h)
	img.DrawString(page, 4, 2, fmt.Sprintf("%d QUALIFYING OBJECTS", len(s.results)))
	const cell = 72
	perRow := w / cell
	if perRow < 1 {
		perRow = 1
	}
	for i, id := range s.results {
		row, col := i/perRow, i%perRow
		x, y := 4+col*cell, 14+row*cell
		if y+cell > h {
			img.DrawString(page, 4, h-10, "MORE ...")
			break
		}
		mini, dur, err := s.client.Miniature(id)
		s.FetchTime += dur
		if err != nil {
			return err
		}
		page.Or(mini, x+2, y+2)
		if i == s.cursor {
			// Highlight the cursor's miniature with a border.
			for bx := 0; bx < cell-4; bx++ {
				page.Set(x+bx, y, true)
				page.Set(x+bx, y+cell-6, true)
			}
			for by := 0; by < cell-5; by++ {
				page.Set(x, y+by, true)
				page.Set(x+cell-5, y+by, true)
			}
		}
	}
	scr.SetTitle("QUERY RESULTS")
	scr.PinStrip(nil)
	scr.ShowPage(page)
	scr.SetMenu([]string{"NEXT MINIATURE", "PREV MINIATURE", "OPEN", "REFINE QUERY"})
	scr.SetIndicators(nil)
	return nil
}

// OpenSelected presents the object under the browsing cursor: the manager
// takes over, fetching the descriptor and parts from the server.
func (s *Session) OpenSelected() error {
	if s.cursor < 0 || s.cursor >= len(s.results) {
		return fmt.Errorf("workstation: no miniature selected")
	}
	return s.OpenObject(s.results[s.cursor])
}

// OpenObject presents an arbitrary published object.
func (s *Session) OpenObject(id object.ID) error {
	o, err := s.load(id)
	if err != nil {
		return err
	}
	return s.mgr.Open(o)
}

func (s *Session) load(id object.ID) (*object.Object, error) {
	d, dur, err := s.client.Descriptor(id)
	if err != nil {
		return nil, err
	}
	s.FetchTime += dur
	return d.Materialize(s.client.Fetch(&s.FetchTime))
}

// BrowseEditing presents the formatter's current object — still in the
// editing state — through the same presentation manager (§4).
func (s *Session) BrowseEditing(f *formatter.Formatter) error {
	o := f.Object()
	if o == nil {
		return fmt.Errorf("workstation: formatter has no object yet")
	}
	return s.mgr.Open(o)
}

// Close drains any in-flight prefetches and releases the protocol client.
func (s *Session) Close() error {
	if s.pf != nil {
		s.pf.drain()
	}
	return s.client.Close()
}
