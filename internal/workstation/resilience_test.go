package workstation

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"minos/internal/archiver"
	"minos/internal/core"
	"minos/internal/disk"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/server"
	"minos/internal/vclock"
	"minos/internal/wire"
)

// killableTransport wraps a transport; once killed, every exchange fails
// like a dead connection until the client redials a replacement.
type killableTransport struct {
	t    wire.Transport
	dead atomic.Bool
}

func (k *killableTransport) RoundTrip(req []byte) ([]byte, error) {
	if k.dead.Load() {
		return nil, wire.ErrTransportClosed
	}
	return k.t.RoundTrip(req)
}

func (k *killableTransport) Close() error { return k.t.Close() }

func resilienceFixture(t *testing.T, n int) (*server.Server, func() *killableTransport) {
	t.Helper()
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(16384))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(archiver.New(dev))
	for i := 1; i <= n; i++ {
		o, err := object.NewBuilder(object.ID(i), fmt.Sprintf("doc%d", i), object.Visual).
			Text(fmt.Sprintf(".title Survey %d\nsurvey item number %d with distinct body text.\n", i, i)).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Publish(o); err != nil {
			t.Fatal(err)
		}
	}
	mk := func() *killableTransport {
		return &killableTransport{t: wire.EthernetLink(&wire.Handler{Srv: srv})}
	}
	return srv, mk
}

func fastRetries(c *wire.Client) {
	c.SetRetryPolicy(wire.RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})
}

// TestSessionResyncAfterReconnect: a mid-browse connection loss (server
// restart) must trigger reconnect, query-log replay and a prefetch
// generation bump, so an object whose content changed across the restart
// surfaces with its new miniature — never the pre-restart one, and never
// flagged stale.
func TestSessionResyncAfterReconnect(t *testing.T) {
	const n = 10
	srv, mk := resilienceFixture(t, n)
	cur := mk()
	client := wire.NewClient(cur)
	fastRetries(client)
	client.EnableReconnect(func() (wire.Transport, error) {
		cur = mk()
		return cur, nil
	})
	s := New(client, core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	s.EnablePrefetch(PrefetchConfig{Depth: 4, Batch: 2})

	if hits, err := s.Query("survey"); err != nil || hits != n {
		t.Fatalf("query = %d, %v", hits, err)
	}
	for i := 0; i < 3; i++ {
		if st, err := s.NextMiniatureCtx(context.Background()); err != nil || st.Done || st.Stale {
			t.Fatalf("warm step %d: %+v, %v", i, st, err)
		}
	}

	// "Restart": object 2 changes server-side and the connection dies.
	changed, err := object.NewBuilder(2, "doc2-v2", object.Visual).
		Text(".title Replacement Two\nsurvey item rewritten entirely different content.\n").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	srv.Adopt(changed)
	want := srv.Miniature(2)
	killed := cur
	killed.dead.Store(true)

	// Browse to the end, then back past object 2: every step must succeed
	// and none may be stale — the reconnect resync refreshed everything.
	var got = (*BrowseStep)(nil)
	for {
		st, err := s.NextMiniatureCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			break
		}
		if st.Stale {
			t.Fatalf("healthy-reconnect step served stale for %d", st.ID)
		}
	}
	for {
		st, err := s.PrevMiniatureCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			break
		}
		if st.Stale {
			t.Fatalf("healthy-reconnect step served stale for %d", st.ID)
		}
		if st.ID == 2 {
			got = &st
		}
	}
	if client.Reconnects() == 0 {
		t.Fatal("connection killed but client never reconnected")
	}
	if got == nil {
		t.Fatal("object 2 never browsed after the restart")
	}
	if !bmEqual(got.Mini, want) {
		t.Fatal("post-restart browse surfaced the pre-restart miniature")
	}
	s.Close()
}

// TestDegradedStaleServing: with the server unreachable and the prefetch
// generation superseded, a cursor step serves the cached miniature flagged
// Stale instead of failing — and recovers to fresh serving once the server
// is back.
func TestDegradedStaleServing(t *testing.T) {
	const n = 6
	srv, mk := resilienceFixture(t, n)
	cur := mk()
	var down atomic.Bool
	client := wire.NewClient(cur)
	fastRetries(client)
	client.EnableReconnect(func() (wire.Transport, error) {
		if down.Load() {
			return nil, errors.New("connection refused")
		}
		cur = mk()
		return cur, nil
	})
	s := New(client, core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	s.EnablePrefetch(PrefetchConfig{Depth: 8, Batch: 3})

	if hits, err := s.Query("survey"); err != nil || hits != n {
		t.Fatalf("query = %d, %v", hits, err)
	}
	for i := 0; i < n; i++ {
		if st, err := s.NextMiniatureCtx(context.Background()); err != nil || st.Done {
			t.Fatalf("warm step %d: %+v, %v", i, st, err)
		}
	}
	s.pf.drain()
	wantStale := srv.Miniature(object.ID(n - 1))

	// Server goes away entirely, and the warm cache's generation is
	// superseded (as a restart resync or a refine would do), so a cursor
	// step cannot be served fresh from cache.
	cur.dead.Store(true)
	down.Store(true)
	s.pf.invalidate()

	st, err := s.PrevMiniatureCtx(context.Background())
	if err != nil {
		t.Fatalf("degraded step failed instead of serving stale: %v", err)
	}
	if !st.Stale {
		t.Fatalf("degraded step not flagged stale: %+v", st)
	}
	if st.ID != object.ID(n-1) || !bmEqual(st.Mini, wantStale) {
		t.Fatalf("stale step = id %d", st.ID)
	}

	// Server comes back: the next step reconnects and serves fresh.
	down.Store(false)
	st, err = s.PrevMiniatureCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Stale {
		t.Fatal("step still stale after the server returned")
	}
	if !bmEqual(st.Mini, srv.Miniature(st.ID)) {
		t.Fatal("recovered step serves wrong miniature")
	}
	if client.Reconnects() == 0 {
		t.Fatal("recovery never reconnected")
	}
	s.Close()
}

// TestBrowseStepContextCancelled: a cancelled context aborts the step with
// the context's error — the ctx-first API's cancellation contract.
func TestBrowseStepContextCancelled(t *testing.T) {
	_, mk := resilienceFixture(t, 4)
	client := wire.NewClient(mk())
	fastRetries(client)
	s := New(client, core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	if _, err := s.Query("survey"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.NextMiniatureCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled step error = %v, want context.Canceled", err)
	}
	s.Close()
}
