package workstation

import (
	"context"
	"sync"
	"testing"

	"minos/internal/core"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/vclock"
	"minos/internal/wire"
)

// TestTwoSessionsShareBoundedGate drives two workstation sessions on
// separate connections — therefore separate admission tenants — through a
// server whose in-flight bound is 1. Admission sheds whichever tenant
// finds the gate held; the wire client's retry loop absorbs the busy
// status, so both sessions must complete every browse step with correct
// results and neither may starve. This is the end-to-end shape of the
// per-tenant gate the E-LOAD harness measures at 10k sessions.
func TestTwoSessionsShareBoundedGate(t *testing.T) {
	_, srv := fixture(t)
	srv.SetMaxInFlight(1)

	h := &wire.Handler{Srv: srv}
	newSession := func() *Session {
		return New(wire.NewClient(wire.EthernetLink(h)),
			core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	}

	const rounds = 25
	run := func(s *Session) error {
		for i := 0; i < rounds; i++ {
			if _, err := s.Query("the"); err != nil {
				return err
			}
			for {
				step, err := s.NextMiniatureCtx(context.Background())
				if err != nil {
					return err
				}
				if step.Done {
					break
				}
				if step.Mini == nil {
					t.Errorf("nil miniature for object %d", step.ID)
				}
			}
			// Opening the object fetches descriptor and pieces over the
			// wire — the ops the admission gate actually covers.
			if err := s.OpenObject(object.ID(1 + i%2)); err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	sessions := []*Session{newSession(), newSession()}
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			errs[i] = run(s)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d failed under the bounded gate: %v", i, err)
		}
	}

	// Both result sets intact after the contention.
	for i, s := range sessions {
		got := s.Results()
		if len(got) != 2 || got[0] != object.ID(1) || got[1] != object.ID(2) {
			t.Fatalf("session %d results = %v", i, got)
		}
	}
	if st := srv.Stats(); st.PieceReads == 0 {
		t.Fatalf("server saw no piece reads: %+v", st)
	}
}

// TestSessionsGetDistinctTenants pins the wiring the gate relies on: each
// connection claims its own tenant id from the shared handler.
func TestSessionsGetDistinctTenants(t *testing.T) {
	_, srv := fixture(t)
	h := &wire.Handler{Srv: srv}
	a, b := h.NewTenant(), h.NewTenant()
	if a == b || a == 0 || b == 0 {
		t.Fatalf("NewTenant issued %d then %d; want distinct non-zero ids", a, b)
	}
}
