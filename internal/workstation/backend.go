// The Backend interface is the session's view of "the object server" —
// deliberately agnostic about whether one server or a sharded fleet is on
// the other end. §4's symmetry argument ("duplication of software is not
// required") extends to topology: the presentation manager's code path is
// identical for a single archive and for a consistent-hash fleet with
// replica failover, because the session only ever speaks this interface.
package workstation

import (
	"context"
	"time"

	"minos/internal/descriptor"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/voice"
	"minos/internal/wire"
)

// Backend is everything a Session needs from the retrieval side: ctx-first
// queries, descriptor and piece reads, batched + pipelined miniatures, and
// the v3 server-push streams. Both *wire.Client (one server) and
// *cluster.Client (routed fleet) implement it, so one Session type drives
// single-server and fleet deployments identically — the gateway, the CLI
// and the tests construct a Session the same way over either.
//
// Piece reads are id-routed (ObjectPieceCtx): descriptor offsets are
// archiver-absolute within the archive holding the object, so the object
// id is the routing key that keeps descriptor and piece reads on the same
// shard. The single-server client ignores the id.
type Backend interface {
	// QueryCtx evaluates a content query; QueryPlannedCtx evaluates a
	// planned one (conjunctive terms plus attribute predicates, pushed
	// down to the server's segmented index); ListCtx returns every
	// published object id. Durations are server device time attributed to
	// the call.
	QueryCtx(ctx context.Context, terms ...string) ([]object.ID, time.Duration, error)
	QueryPlannedCtx(ctx context.Context, q index.Query) ([]object.ID, time.Duration, error)
	ListCtx(ctx context.Context) ([]object.ID, time.Duration, error)

	// DescriptorCtx fetches an object's presentation descriptor;
	// ObjectPieceCtx reads a byte extent of the archive holding id.
	DescriptorCtx(ctx context.Context, id object.ID) (*descriptor.Descriptor, time.Duration, error)
	ObjectPieceCtx(ctx context.Context, id object.ID, off, length uint64) ([]byte, time.Duration, error)

	// MiniaturesCtx fetches a miniature batch (one round trip per server
	// touched); StartMiniatures launches one without waiting — the browse
	// prefetcher's pipelining hook. ModeCtx reports a driving mode (rides
	// the batched path on both implementations).
	MiniaturesCtx(ctx context.Context, ids []object.ID) ([]wire.MiniatureResult, time.Duration, error)
	StartMiniatures(ctx context.Context, ids []object.ID) wire.MiniatureBatch
	ModeCtx(ctx context.Context, id object.ID) (object.Mode, error)

	// VoicePreviewCtx fetches the page-sized voice preview — the batch
	// fallback for peers without the v3 stream feature.
	VoicePreviewCtx(ctx context.Context, id object.ID) (*voice.Part, time.Duration, error)

	// VoiceStreamCtx and MiniatureStreamCtx open credit-based server-push
	// streams (DESIGN.md §10). Peers without the feature fail the open
	// with an error wire.StreamFallback classifies.
	VoiceStreamCtx(ctx context.Context, id object.ID, from uint64, window int) (wire.VoiceStreamInfo, wire.StreamConn, error)
	MiniatureStreamCtx(ctx context.Context, id object.ID, from uint64, window int) (wire.MiniatureStreamInfo, wire.StreamConn, error)

	// StatsCtx snapshots the serving-side counters (fleet backends
	// aggregate across shard primaries).
	StatsCtx(ctx context.Context) (server.Stats, error)

	// Reconnects is a monotone counter that moves whenever a serving
	// connection was re-established. The session watches it to decide
	// when a restarted server may have invalidated cached browse state.
	Reconnects() int64

	// Close releases the backend's connections.
	Close() error
}

// Compile-time conformance of the single-server client. (The fleet
// client's assertion lives in its own package's tests to keep this package
// free of a cluster dependency.)
var _ Backend = (*wire.Client)(nil)
