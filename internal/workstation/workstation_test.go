package workstation

import (
	"testing"

	"minos/internal/archiver"
	"minos/internal/core"
	"minos/internal/disk"
	"minos/internal/formatter"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
	"minos/internal/wire"
)

func fixture(t testing.TB) (*Session, *server.Server) {
	t.Helper()
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(8192))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(archiver.New(dev))

	lungs, err := object.NewBuilder(1, "lungs", object.Visual).
		Text(".title Lungs\n.chapter Findings\nThe lung shadow is visible in the upper lobe region today.\n").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	heart, err := object.NewBuilder(2, "heart", object.Visual).
		Text(".title Heart\n.chapter Findings\nThe heart rhythm is regular with no murmur at all.\n").
		Relevant(1, object.Anchor{Media: object.MediaText, From: 0, To: 5}, img.Point{X: 3, Y: 30}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*object.Object{lungs, heart} {
		if _, err := srv.Publish(o); err != nil {
			t.Fatal(err)
		}
	}
	lt := wire.EthernetLink(&wire.Handler{Srv: srv})
	sess := New(wire.NewClient(lt), core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	return sess, srv
}

func TestQueryAndSequentialBrowsing(t *testing.T) {
	s, _ := fixture(t)
	n, err := s.Query("the")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("hits = %d", n)
	}
	id1, m1, done, err := s.NextMiniature()
	if err != nil || done {
		t.Fatalf("first miniature: %v %v", done, err)
	}
	if id1 != 1 || m1 == nil || m1.PopCount() == 0 {
		t.Fatalf("miniature 1 = %d %v", id1, m1)
	}
	id2, _, done, err := s.NextMiniature()
	if err != nil || done || id2 != 2 {
		t.Fatalf("miniature 2 = %d done=%v err=%v", id2, done, err)
	}
	_, _, done, _ = s.NextMiniature()
	if !done {
		t.Fatal("browsing past the end not done")
	}
	// Step back.
	idb, _, done, err := s.PrevMiniature()
	if err != nil || done || idb != 1 {
		t.Fatalf("prev = %d done=%v err=%v", idb, done, err)
	}
	_, _, done, _ = s.PrevMiniature()
	if !done {
		t.Fatal("prev past the start not done")
	}
}

func TestOpenSelectedPresents(t *testing.T) {
	s, _ := fixture(t)
	s.Query("lung")
	if err := s.OpenSelected(); err == nil {
		t.Fatal("open without selection accepted")
	}
	s.NextMiniature()
	if err := s.OpenSelected(); err != nil {
		t.Fatal(err)
	}
	if s.Manager().Object() == nil || s.Manager().Object().ID != 1 {
		t.Fatal("wrong object presented")
	}
	if s.Manager().Screen().Content().PopCount() == 0 {
		t.Fatal("screen blank")
	}
	if s.FetchTime == 0 {
		t.Fatal("no fetch time accounted")
	}
}

func TestRelevantObjectsResolveThroughServer(t *testing.T) {
	s, _ := fixture(t)
	if err := s.OpenObject(2); err != nil {
		t.Fatal(err)
	}
	// Object 2 links object 1 as relevant; entering resolves over the
	// wire.
	if err := s.Manager().EnterRelevant(0); err != nil {
		t.Fatal(err)
	}
	if s.Manager().Object().ID != 1 {
		t.Fatalf("relevant object = %d", s.Manager().Object().ID)
	}
	if err := s.Manager().ReturnFromRelevant(); err != nil {
		t.Fatal(err)
	}
	if s.Manager().Object().ID != 2 {
		t.Fatal("return did not restore parent")
	}
}

func TestOpenMissingObject(t *testing.T) {
	s, _ := fixture(t)
	if err := s.OpenObject(99); err == nil {
		t.Fatal("missing object opened")
	}
}

func TestBrowseEditingState(t *testing.T) {
	s, _ := fixture(t)
	dir := formatter.NewDataDir()
	f := formatter.New(dir)
	if err := s.BrowseEditing(f); err == nil {
		t.Fatal("empty formatter browsed")
	}
	err := f.SetSynthesis("object 7 visual Draft Report\ntext\n.title Draft\nWork in progress text goes here.\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BrowseEditing(f); err != nil {
		t.Fatal(err)
	}
	o := s.Manager().Object()
	if o.ID != 7 || o.State != object.Editing {
		t.Fatalf("editing object = %+v", o)
	}
	// The same browsing commands work.
	if err := s.Manager().NextPage(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryMiss(t *testing.T) {
	s, _ := fixture(t)
	n, err := s.Query("unicorn")
	if err != nil || n != 0 {
		t.Fatalf("miss query = %d, %v", n, err)
	}
	_, _, done, _ := s.NextMiniature()
	if !done {
		t.Fatal("empty result set browsed")
	}
}

func TestAudioMiniaturePlaysPreview(t *testing.T) {
	s, srv := fixture(t)
	// Publish an audio object.
	seg, _ := text.Parse("Spoken preview content for the miniature browser.\n")
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000)
	// Insertion-time recognition makes the spoken object content-queryable
	// (the index uses "the same access methods as in text", §2).
	rec := voice.NewRecognizer([]string{"preview"})
	rec.HitRate = 1.0
	syn.Part.Utterances = rec.Recognize(syn.Marks)
	o, err := object.NewBuilder(9, "spoken", object.Audio).VoicePart(syn.Part).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(o); err != nil {
		t.Fatal(err)
	}
	// Query matches only the audio object (token "preview").
	n, err := s.Query("preview")
	if err != nil || n != 1 {
		t.Fatalf("query = %d, %v", n, err)
	}
	if _, _, _, err := s.NextMiniature(); err != nil {
		t.Fatal(err)
	}
	// The voice preview is playing on the session's message player.
	if !s.Manager().MsgPlayer().Playing() {
		t.Fatal("audio miniature did not start its voice preview")
	}
	log := s.Manager().MsgPlayer().PlayLog
	if len(log) != 1 || log[0].From != 0 {
		t.Fatalf("preview play log = %+v", log)
	}
}

func TestRefineNarrowsResults(t *testing.T) {
	s, _ := fixture(t)
	n, err := s.Query("the")
	if err != nil || n != 2 {
		t.Fatalf("query = %d, %v", n, err)
	}
	n, err = s.Refine("lung")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || s.Results()[0] != 1 {
		t.Fatalf("refined = %d %v", n, s.Results())
	}
	// The browsing cursor resets.
	id, _, done, err := s.NextMiniature()
	if err != nil || done || id != 1 {
		t.Fatalf("after refine: %d %v %v", id, done, err)
	}
	// Refining to nothing empties the set.
	if n, _ := s.Refine("rhythm"); n != 0 {
		t.Fatalf("disjoint refine = %d", n)
	}
}

func TestShowBrowserRendersMiniatures(t *testing.T) {
	s, _ := fixture(t)
	s.Query("the")
	if err := s.ShowBrowser(); err != nil {
		t.Fatal(err)
	}
	scr := s.Manager().Screen()
	if scr.Content().PopCount() == 0 {
		t.Fatal("browser screen blank")
	}
	if !containsStr(scr.Menu(), "NEXT MINIATURE") {
		t.Fatalf("browser menu = %v", scr.Menu())
	}
	// Advancing the cursor changes the highlight.
	snap0 := scr.Snapshot()
	s.NextMiniature()
	if err := s.ShowBrowser(); err != nil {
		t.Fatal(err)
	}
	if scr.Snapshot() == snap0 {
		t.Fatal("cursor highlight did not change the screen")
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
