package workstation

import (
	"context"
	"fmt"
	"io"
	"time"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/wire"
)

// Streaming presentation: instead of fetching a voice part or a miniature
// as one response and presenting it afterwards, the session opens a
// credit-based server-push stream and presents while fetching — playback
// starts after the first PCM chunk, a browse screen shows a usable (coarse)
// miniature after the first progressive pass. Peers that did not negotiate
// the stream feature answer the open with "unknown op"; StreamFallback
// routes those sessions to the old single-frame paths unchanged.

// voiceStreamWindow is the initial (and sustained) credit window for voice
// playback: a few chunks of headroom so the server stays ahead of the
// device without buffering the whole part at the workstation.
const voiceStreamWindow = 16 * wire.StreamChunkBytes

// miniatureStreamWindow comfortably covers every progressive pass of a
// browse-cell miniature in one grant.
const miniatureStreamWindow = 64 << 10

// VoicePlayback reports one streamed voice playback.
type VoicePlayback struct {
	Rate       int
	TotalBytes uint64
	// Streamed is false when the peer fell back to the batch preview path.
	Streamed bool
	// FirstAudio is the link time at which the first chunk arrived — the
	// moment playback could start, while the rest was still in flight.
	FirstAudio time.Duration
	// Done is the link time at which the stream's end frame arrived.
	Done time.Duration
	// Chunks counts data frames; Underruns counts playback stalls on the
	// delivery frontier.
	Chunks    int
	Underruns int
}

// PlayVoiceStreamCtx streams the voice part of an audio-mode object and
// plays while fetching: the message player enters streaming mode, playback
// starts as soon as the first chunk is fed, and chunks keep landing behind
// the playhead. advance, if non-nil, is called after each chunk (and once
// after the end frame) with the chunk's link arrival time — deterministic
// harnesses use it to drive the virtual clock while real sessions pass nil.
//
// A peer without the stream feature falls back to the batched voice
// preview path: same audible result for short parts, Streamed=false.
func (s *Session) PlayVoiceStreamCtx(ctx context.Context, id object.ID, advance func(at time.Duration)) (VoicePlayback, error) {
	info, sc, err := s.be.VoiceStreamCtx(ctx, id, 0, voiceStreamWindow)
	if err != nil {
		if wire.StreamFallback(err) {
			return s.playVoiceBatch(ctx, id)
		}
		return VoicePlayback{}, err
	}
	defer sc.Close()
	pb := VoicePlayback{Rate: info.Rate, TotalBytes: info.TotalBytes, Streamed: true}
	player := s.mgr.MsgPlayer()
	player.BeginStream(info.Rate, int(info.TotalBytes/2))
	var samples []int16 // decode scratch, reused per chunk
	started := false
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			pb.Done = ch.At
			player.FinishStream()
			if advance != nil && ch.At > 0 {
				advance(ch.At)
			}
			break
		}
		if err != nil {
			player.FinishStream() // play out what was delivered
			return pb, fmt.Errorf("workstation: voice stream at chunk %d: %w", pb.Chunks, err)
		}
		s.FetchTime += ch.Dev
		samples = wire.AppendPCMSamples(samples[:0], ch.Data)
		player.Feed(samples)
		if !started {
			pb.FirstAudio = ch.At
			if err := player.Play(0, 0, nil); err != nil {
				return pb, err
			}
			started = true
		}
		pb.Chunks++
		sc.Grant(len(ch.Data))
		if advance != nil {
			advance(ch.At)
		}
	}
	pb.Underruns = player.Underruns()
	return pb, nil
}

// playVoiceBatch is the pre-stream behaviour: one response carries the
// preview, playback starts only after the whole transfer.
func (s *Session) playVoiceBatch(ctx context.Context, id object.ID) (VoicePlayback, error) {
	vp, dur, err := s.be.VoicePreviewCtx(ctx, id)
	if err != nil {
		return VoicePlayback{}, err
	}
	s.FetchTime += dur
	player := s.mgr.MsgPlayer()
	player.Load(vp)
	if err := player.Play(0, 0, nil); err != nil {
		return VoicePlayback{}, err
	}
	return VoicePlayback{Rate: vp.Rate, TotalBytes: uint64(2 * len(vp.Samples))}, nil
}

// ProgressivePaint reports one progressive miniature delivery.
type ProgressivePaint struct {
	// Streamed is false when the peer fell back to the single-frame path.
	Streamed bool
	// Usable is the link time at which the coarse pass had arrived — the
	// browse cell shows a recognizable image from here on. Complete is the
	// link time of the end frame.
	Usable   time.Duration
	Complete time.Duration
	Passes   int
}

// MiniatureProgressiveCtx streams an object's miniature coarse-rows-first
// and repaints as passes land. onPass, if non-nil, is called after each
// pass with the accumulating bitmap (valid until the next call), whether
// it is usable yet, and the pass's link arrival time. The completed bitmap
// is returned.
//
// A peer without the stream feature falls back to the single-frame
// miniature fetch: onPass fires once with the complete bitmap.
func (s *Session) MiniatureProgressiveCtx(ctx context.Context, id object.ID, onPass func(bm *img.Bitmap, usable bool, at time.Duration)) (*img.Bitmap, ProgressivePaint, error) {
	info, sc, err := s.be.MiniatureStreamCtx(ctx, id, 0, miniatureStreamWindow)
	if err != nil {
		if wire.StreamFallback(err) {
			res, dur, ferr := s.be.MiniaturesCtx(ctx, []object.ID{id})
			s.FetchTime += dur
			if ferr != nil {
				return nil, ProgressivePaint{}, ferr
			}
			if len(res) == 0 || !res[0].OK {
				return nil, ProgressivePaint{}, &noMiniatureError{id: id}
			}
			if onPass != nil {
				onPass(res[0].Mini, true, 0)
			}
			return res[0].Mini, ProgressivePaint{Passes: 1}, nil
		}
		return nil, ProgressivePaint{}, err
	}
	defer sc.Close()
	pp := ProgressivePaint{Streamed: true}
	prog := img.NewProgressive(info.W, info.H)
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			pp.Complete = ch.At
			break
		}
		if err != nil {
			return nil, pp, fmt.Errorf("workstation: miniature stream at pass %d: %w", pp.Passes, err)
		}
		pass, ok := img.PassAtOffset(info.W, info.H, ch.Offset)
		if !ok {
			return nil, pp, fmt.Errorf("workstation: miniature chunk offset %d off pass boundary", ch.Offset)
		}
		if err := prog.Apply(pass, ch.Data); err != nil {
			return nil, pp, err
		}
		if prog.Usable() && pp.Usable == 0 {
			pp.Usable = ch.At
		}
		pp.Passes++
		sc.Grant(len(ch.Data))
		if onPass != nil {
			onPass(prog.Bitmap(), prog.Usable(), ch.At)
		}
	}
	if !prog.Complete() {
		return nil, pp, fmt.Errorf("workstation: miniature stream ended after %d passes, incomplete", pp.Passes)
	}
	return prog.Bitmap(), pp, nil
}
