package workstation

import (
	"context"
	"strings"
	"testing"
	"time"

	"minos/internal/archiver"
	"minos/internal/core"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
	"minos/internal/wire"
)

// streamFixture is the workstation fixture plus a long spoken object and a
// handle on the session's virtual clock, so tests can interleave chunk
// arrival (driven by the advance callback) with device playback.
func streamFixture(t testing.TB) (*Session, *server.Server, *vclock.Clock, object.ID) {
	t.Helper()
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(8192))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(archiver.New(dev))
	const id = object.ID(9)
	seg, err := text.Parse("Spoken chapter for streamed playback. " +
		strings.Repeat("voice archive rhythm presentation workstation. ", 80) + "\n")
	if err != nil {
		t.Fatal(err)
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 8000)
	o, err := object.NewBuilder(id, "spoken", object.Audio).VoicePart(syn.Part).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(o); err != nil {
		t.Fatal(err)
	}

	im := img.New("map", 100, 100)
	im.Base = img.NewBitmap(100, 100)
	im.Base.Fill(img.Rect{X: 10, Y: 10, W: 50, H: 50}, true)
	o3, err := object.NewBuilder(3, "map", object.Audio).
		Text(".title Map\nthe city map object.\n").Image(im).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(o3); err != nil {
		t.Fatal(err)
	}

	clock := vclock.New()
	lt := wire.EthernetLink(&wire.Handler{Srv: srv})
	sess := New(wire.NewClient(lt), core.Config{Screen: screen.New(240, 140), Clock: clock})
	return sess, srv, clock, id
}

// TestPlayVoiceStreamPlaysWhileFetching: playback starts after the first
// chunk — long before the part has fully arrived — and on the 10 Mbit/s
// link delivery stays so far ahead of the 8 kHz device that the play-out
// never underruns. The emitted samples are the whole part.
func TestPlayVoiceStreamPlaysWhileFetching(t *testing.T) {
	s, srv, clock, id := streamFixture(t)
	pcm, _, err := srv.VoicePCMInfoAs(0, id)
	if err != nil {
		t.Fatal(err)
	}

	pb, err := s.PlayVoiceStreamCtx(context.Background(), id,
		func(at time.Duration) { clock.AdvanceTo(at) })
	if err != nil {
		t.Fatalf("PlayVoiceStreamCtx: %v", err)
	}
	if !pb.Streamed {
		t.Fatal("stream-capable link fell back to batch")
	}
	if pb.Rate != pcm.Rate || pb.TotalBytes != pcm.Bytes {
		t.Fatalf("playback meta %+v, want rate %d total %d", pb, pcm.Rate, pcm.Bytes)
	}
	if pb.Chunks < 8 {
		t.Fatalf("only %d chunks; part too short to prove play-while-fetch", pb.Chunks)
	}
	// The whole point: audio starts a chunk into the transfer, not after it.
	if pb.FirstAudio <= 0 || pb.Done <= 0 || pb.FirstAudio*5 > pb.Done {
		t.Fatalf("first audio at %v vs transfer done at %v: no streaming head start", pb.FirstAudio, pb.Done)
	}
	if pb.Underruns != 0 {
		t.Fatalf("%d underruns on a link 10x faster than the device", pb.Underruns)
	}
	player := s.Manager().MsgPlayer()
	if !player.Playing() {
		t.Fatal("player not emitting after the stream completed delivery")
	}
	// Let the device play the part out in virtual time.
	clock.Run(time.Hour)
	if player.Playing() {
		t.Fatal("playback never completed")
	}
	if got := len(player.Part().Samples); uint64(2*got) != pcm.Bytes {
		t.Fatalf("device holds %d samples, want %d", got, pcm.Bytes/2)
	}
	// The play log covers the part contiguously from the start.
	var covered int
	for _, p := range player.PlayLog {
		if p.From != covered {
			t.Fatalf("play log gap: segment starts at %d, frontier was %d (%+v)", p.From, covered, player.PlayLog)
		}
		covered = p.To
	}
	if uint64(2*covered) != pcm.Bytes {
		t.Fatalf("device emitted %d samples, want %d", covered, pcm.Bytes/2)
	}
}

// batchOnly hides the transport's stream support: the session must detect
// the missing capability and fall back to the single-frame preview path.
type batchOnly struct{ inner wire.Transport }

func (b *batchOnly) RoundTrip(req []byte) ([]byte, error) { return b.inner.RoundTrip(req) }
func (b *batchOnly) Close() error                         { return b.inner.Close() }

// TestPlayVoiceStreamFallsBackToBatch: no StreamOpener on the transport →
// the old preview path (Load + Play), Streamed=false.
func TestPlayVoiceStreamFallsBackToBatch(t *testing.T) {
	_, srv, _, id := streamFixture(t)
	lt := wire.EthernetLink(&wire.Handler{Srv: srv})
	sess := New(wire.NewClient(&batchOnly{inner: lt}), core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	pb, err := sess.PlayVoiceStreamCtx(context.Background(), id, nil)
	if err != nil {
		t.Fatalf("fallback playback: %v", err)
	}
	if pb.Streamed {
		t.Fatal("batch-only transport reported a stream")
	}
	if pb.TotalBytes == 0 {
		t.Fatal("fallback played nothing")
	}
	if !sess.Manager().MsgPlayer().Playing() {
		t.Fatal("fallback did not start playback")
	}
}

// TestMiniatureProgressivePaint: the browse cell repaints as passes land —
// usable after the coarse pass at a fraction of the full delivery time —
// and the final bitmap is identical to the one served whole.
func TestMiniatureProgressivePaint(t *testing.T) {
	s, srv, _, _ := streamFixture(t)
	want := srv.Miniature(3)
	if want == nil {
		t.Fatal("fixture object 3 has no miniature")
	}

	type paint struct {
		usable bool
		at     time.Duration
		pop    int
	}
	var paints []paint
	bm, pp, err := s.MiniatureProgressiveCtx(context.Background(), 3,
		func(b *img.Bitmap, usable bool, at time.Duration) {
			paints = append(paints, paint{usable: usable, at: at, pop: b.PopCount()})
		})
	if err != nil {
		t.Fatalf("MiniatureProgressiveCtx: %v", err)
	}
	if !pp.Streamed {
		t.Fatal("stream-capable link fell back to single-frame")
	}
	if pp.Passes != img.ProgressivePasses || len(paints) != pp.Passes {
		t.Fatalf("passes = %d, paints = %d, want %d", pp.Passes, len(paints), img.ProgressivePasses)
	}
	if !paints[0].usable || paints[0].pop == 0 {
		t.Fatal("first (coarse) pass did not paint a usable image")
	}
	// A single 64px miniature is a few hundred bytes, so the fixed link
	// round-trip dominates one cell's wall time; the per-cell claim is
	// byte-order — usable strictly before complete, coarse pass first. The
	// screen-level 2x time win is the E-STREAM experiment's assertion,
	// where coarse passes of the whole result set amortize the latency.
	if pp.Usable <= 0 || pp.Complete <= pp.Usable {
		t.Fatalf("usable at %v, complete at %v: not progressive", pp.Usable, pp.Complete)
	}
	if bm.Hash() != want.Hash() {
		t.Fatal("progressive reassembly diverges from the whole miniature")
	}
}

// TestMiniatureProgressiveFallback: a batch-only transport paints once,
// with the complete bitmap.
func TestMiniatureProgressiveFallback(t *testing.T) {
	_, srv, _, _ := streamFixture(t)
	want := srv.Miniature(3)
	lt := wire.EthernetLink(&wire.Handler{Srv: srv})
	sess := New(wire.NewClient(&batchOnly{inner: lt}), core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})

	calls := 0
	bm, pp, err := sess.MiniatureProgressiveCtx(context.Background(), 3,
		func(b *img.Bitmap, usable bool, at time.Duration) {
			calls++
			if !usable {
				t.Fatal("fallback paint not usable")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Streamed || pp.Passes != 1 || calls != 1 {
		t.Fatalf("fallback paint: %+v, %d calls", pp, calls)
	}
	if bm.Hash() != want.Hash() {
		t.Fatal("fallback bitmap diverges")
	}
}
