// Browse read-ahead pipeline: while the user views the current miniature,
// the next few result miniatures are already warming in a client-side LRU,
// fetched in batches (one round trip per batch) and, on a pipelined
// transport, with several batches in flight at once. This is the
// workstation half of attacking §5's queueing-delay worry for miniature
// sequential browsing: overlap delivery with viewing, so the cursor only
// pays link latency on a cold start.
package workstation

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/wire"
)

// PrefetchConfig tunes the browse read-ahead pipeline.
type PrefetchConfig struct {
	// Depth is how many result miniatures ahead of the cursor are kept
	// warm (default 8).
	Depth int
	// Batch is how many miniatures one OpMiniatures round trip carries
	// (default 4). The prefetcher only issues full batches away from the
	// end of the result set, so steady-state browsing costs ~1/Batch
	// round trips per cursor step.
	Batch int
	// CacheSize is the client-side miniature LRU capacity in entries
	// (default 4×(Depth+Batch)).
	CacheSize int
}

func (c PrefetchConfig) withDefaults() PrefetchConfig {
	if c.Depth <= 0 {
		c.Depth = 8
	}
	if c.Batch <= 0 {
		c.Batch = 4
	}
	if c.Batch > wire.MaxMiniatureBatch {
		c.Batch = wire.MaxMiniatureBatch
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4 * (c.Depth + c.Batch)
	}
	return c
}

// PrefetchStats reports what the pipeline did.
type PrefetchStats struct {
	// Hits / Misses count cursor steps served from / not from the warm
	// cache. Steady-state sequential browsing is all hits after the cold
	// start.
	Hits, Misses int64
	// Batches counts OpMiniatures round trips issued (foreground and
	// background).
	Batches int64
	// Prefetched counts miniatures landed by background batches;
	// Dropped counts fetched miniatures discarded because a Query or
	// Refine invalidated the result set while they were in flight.
	Prefetched, Dropped int64
	// FetchTime accumulates server device time reported by the
	// prefetcher's own round trips.
	FetchTime time.Duration
}

// miniEntry is one cached miniature with its driving mode, tagged with the
// prefetch generation it was fetched under. Entries from a superseded
// generation never satisfy a normal lookup, but they stay resident as
// stale candidates: when the server is unreachable the session may serve
// one, explicitly flagged, instead of a blank screen.
type miniEntry struct {
	id   object.ID
	mini *img.Bitmap
	mode object.Mode
	gen  uint64
}

// miniLRU is a small client-side LRU of miniatures, keyed by object id.
type miniLRU struct {
	cap  int
	ll   *list.List
	byID map[object.ID]*list.Element
}

func newMiniLRU(capEntries int) *miniLRU {
	return &miniLRU{cap: capEntries, ll: list.New(), byID: map[object.ID]*list.Element{}}
}

// get returns the entry for id only if it belongs to generation gen:
// invalidation bumps the generation, so superseded entries miss here.
func (c *miniLRU) get(id object.ID, gen uint64) (*miniEntry, bool) {
	e, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	ent := e.Value.(*miniEntry)
	if ent.gen != gen {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return ent, true
}

// getAny returns the entry for id regardless of generation — the degraded
// (server-unreachable) path, where a stale miniature beats none.
func (c *miniLRU) getAny(id object.ID) (*miniEntry, bool) {
	e, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	return e.Value.(*miniEntry), true
}

func (c *miniLRU) has(id object.ID, gen uint64) bool {
	e, ok := c.byID[id]
	return ok && e.Value.(*miniEntry).gen == gen
}

func (c *miniLRU) put(ent *miniEntry) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.byID[ent.id]; ok {
		c.ll.MoveToFront(e)
		e.Value = ent
		return
	}
	c.byID[ent.id] = c.ll.PushFront(ent)
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byID, old.Value.(*miniEntry).id)
	}
}

// prefetcher keeps the next Depth result miniatures warming while the user
// views the current one. It is safe for the background fetch goroutine and
// the session goroutine to interleave; Query/Refine invalidation bumps the
// generation so in-flight results for the old result set are discarded
// instead of surfacing stale.
type prefetcher struct {
	be Backend

	mu        sync.Mutex
	landed    sync.Cond // broadcast whenever an in-flight fetch completes
	cfg       PrefetchConfig
	gen       uint64
	cache     *miniLRU
	inflight  map[object.ID]uint64 // id -> generation of the fetch in flight
	scheduled int                  // highest result index covered by issued fetches
	stats     PrefetchStats

	wg sync.WaitGroup // background batch waiters, drained on Close
}

func newPrefetcher(be Backend, cfg PrefetchConfig) *prefetcher {
	cfg = cfg.withDefaults()
	p := &prefetcher{
		be:        be,
		cfg:       cfg,
		cache:     newMiniLRU(cfg.CacheSize),
		inflight:  map[object.ID]uint64{},
		scheduled: -1,
	}
	p.landed.L = &p.mu
	return p
}

// invalidate supersedes the warm cache and marks every in-flight fetch
// stale; called when Query/Refine replaces the result set and when the
// client reconnects (the server may have restarted with changed content).
// Superseded entries stay resident as stale candidates for the degraded
// path (staleEntry) but can never satisfy a normal lookup.
func (p *prefetcher) invalidate() {
	p.mu.Lock()
	p.gen++
	p.scheduled = -1
	p.mu.Unlock()
	// Wake ensure callers parked on a now-superseded in-flight fetch.
	p.landed.Broadcast()
}

// staleEntry returns the cached miniature for id from any generation —
// only for degraded serving while the server is unreachable; the caller
// must surface it flagged stale.
func (p *prefetcher) staleEntry(id object.ID) (*miniEntry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cache.getAny(id)
}

// drain waits for background fetches to finish (their results are dropped
// or cached as their generation dictates).
func (p *prefetcher) drain() { p.wg.Wait() }

// Stats snapshots the pipeline counters.
func (p *prefetcher) Stats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ensure returns the miniature and mode for ids[i], foreground-fetching a
// batch on a cold cursor and topping off the read-ahead window either way.
// The foreground fetch is bounded by ctx; background batches are not (they
// are read-ahead, droppable by generation).
func (p *prefetcher) ensure(ctx context.Context, ids []object.ID, i int) (*img.Bitmap, object.Mode, error) {
	p.mu.Lock()
	id := ids[i]
	for {
		if e, ok := p.cache.get(id, p.gen); ok {
			p.stats.Hits++
			chunks, gen := p.planLocked(ids, i)
			p.mu.Unlock()
			p.launch(chunks, gen)
			return e.mini, e.mode, nil
		}
		// A batch carrying this id is already on the wire: wait for it to
		// land instead of fetching the same miniature twice. If the batch
		// fails or an invalidation supersedes it, fall through to a
		// foreground fetch.
		if g, busy := p.inflight[id]; busy && g == p.gen {
			p.landed.Wait()
			continue
		}
		break
	}
	p.stats.Misses++
	p.stats.Batches++
	gen := p.gen
	// Foreground batch: the cursor's id plus the next uncached ids, so
	// the cold start already warms the first window.
	chunk := make([]object.ID, 0, p.cfg.Batch)
	chunk = append(chunk, id)
	p.inflight[id] = gen
	for j := i + 1; j < len(ids) && len(chunk) < p.cfg.Batch; j++ {
		if p.cache.has(ids[j], gen) {
			continue
		}
		if _, busy := p.inflight[ids[j]]; busy {
			continue
		}
		chunk = append(chunk, ids[j])
		p.inflight[ids[j]] = gen
		if idx := j; idx > p.scheduled {
			p.scheduled = idx
		}
	}
	p.mu.Unlock()

	res, dur, err := p.be.MiniaturesCtx(ctx, chunk)

	p.mu.Lock()
	for _, cid := range chunk {
		if p.inflight[cid] == gen {
			delete(p.inflight, cid)
		}
	}
	defer p.landed.Broadcast()
	if err != nil {
		p.mu.Unlock()
		return nil, 0, err
	}
	p.stats.FetchTime += dur
	fresh := p.gen == gen
	var cur *wire.MiniatureResult
	for k := range res {
		if res[k].ID == id {
			cur = &res[k]
		}
		if fresh && res[k].OK {
			p.cache.put(&miniEntry{id: res[k].ID, mini: res[k].Mini, mode: res[k].Mode, gen: gen})
		} else if !fresh {
			p.stats.Dropped++
			// A superseded result never reached the cache or any caller —
			// except the cursor's own entry, which is still returned below.
			if res[k].OK && res[k].ID != id {
				res[k].Mini.Release()
			}
		}
	}
	var chunks [][]object.ID
	var planGen uint64
	if fresh {
		chunks, planGen = p.planLocked(ids, i)
	}
	p.mu.Unlock()
	p.launch(chunks, planGen)

	if cur == nil || !cur.OK {
		return nil, 0, &noMiniatureError{id: id}
	}
	return cur.Mini, cur.Mode, nil
}

type noMiniatureError struct{ id object.ID }

func (e *noMiniatureError) Error() string {
	return fmt.Sprintf("workstation: server has no miniature for object %d", e.id)
}

// planLocked (caller holds mu) decides which background batches to issue
// for the window (i, i+Depth]. It only issues full batches — so the link
// pays one round trip per Batch cursor steps, not one per step — except at
// the tail of the result set, where the remainder is fetched as-is.
func (p *prefetcher) planLocked(ids []object.ID, i int) ([][]object.ID, uint64) {
	target := min(i+p.cfg.Depth, len(ids)-1)
	if p.scheduled < i {
		p.scheduled = i
	}
	type cand struct {
		id  object.ID
		idx int
	}
	var pend []cand
	for j := p.scheduled + 1; j <= target; j++ {
		if p.cache.has(ids[j], p.gen) {
			continue
		}
		if _, busy := p.inflight[ids[j]]; busy {
			continue
		}
		pend = append(pend, cand{ids[j], j})
	}
	if len(pend) == 0 {
		p.scheduled = target
		return nil, p.gen
	}
	atTail := target == len(ids)-1
	var chunks [][]object.ID
	for len(pend) >= p.cfg.Batch || (atTail && len(pend) > 0) {
		n := min(p.cfg.Batch, len(pend))
		chunk := make([]object.ID, 0, n)
		for _, cd := range pend[:n] {
			chunk = append(chunk, cd.id)
			p.inflight[cd.id] = p.gen
			if cd.idx > p.scheduled {
				p.scheduled = cd.idx
			}
		}
		chunks = append(chunks, chunk)
		pend = pend[n:]
	}
	p.stats.Batches += int64(len(chunks))
	return chunks, p.gen
}

// launch starts every planned batch before waiting on any — on a pipelined
// transport they share the link's batch window — then collects results on
// one background goroutine, inserting only those still belonging to the
// current generation.
func (p *prefetcher) launch(chunks [][]object.ID, gen uint64) {
	if len(chunks) == 0 {
		return
	}
	// Background batches are read-ahead — droppable by generation — so
	// they are not bounded by any caller's ctx.
	calls := make([]wire.MiniatureBatch, len(chunks))
	for i, chunk := range chunks {
		calls[i] = p.be.StartMiniatures(context.Background(), chunk)
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for i, call := range calls {
			res, dur, err := call.Wait()
			p.mu.Lock()
			for _, id := range chunks[i] {
				if p.inflight[id] == gen {
					delete(p.inflight, id)
				}
			}
			if err == nil {
				p.stats.FetchTime += dur
				if p.gen == gen {
					for k := range res {
						if res[k].OK {
							p.cache.put(&miniEntry{id: res[k].ID, mini: res[k].Mini, mode: res[k].Mode, gen: gen})
							p.stats.Prefetched++
						}
					}
				} else {
					p.stats.Dropped += int64(len(res))
					// Generation-dropped miniatures were never exposed:
					// this goroutine is their only holder, so their pixel
					// buffers go straight back to the pool. (LRU evictions,
					// by contrast, may still be referenced by a session and
					// are left to the GC.)
					for k := range res {
						if res[k].OK {
							res[k].Mini.Release()
						}
					}
				}
			}
			p.mu.Unlock()
			p.landed.Broadcast()
		}
	}()
}
