package workstation

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"minos/internal/archiver"
	"minos/internal/core"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/server"
	"minos/internal/vclock"
	"minos/internal/wire"
)

// browseFixture publishes n visual objects all matching the term "survey"
// and returns a session over a simulated Ethernet link.
func browseFixture(t testing.TB, n int) (*Session, *wire.LocalTransport, *server.Server) {
	t.Helper()
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(16384))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(archiver.New(dev))
	for i := 1; i <= n; i++ {
		o, err := object.NewBuilder(object.ID(i), fmt.Sprintf("doc%d", i), object.Visual).
			Text(fmt.Sprintf(".title Survey %d\nsurvey item number %d with distinct body text.\n", i, i)).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Publish(o); err != nil {
			t.Fatal(err)
		}
	}
	lt := wire.EthernetLink(&wire.Handler{Srv: srv})
	sess := New(wire.NewClient(lt), core.Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	return sess, lt, srv
}

func bmEqual(a, b *img.Bitmap) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.W != b.W || a.H != b.H {
		return false
	}
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			if a.Get(x, y) != b.Get(x, y) {
				return false
			}
		}
	}
	return true
}

// TestPrefetchedBrowseMatchesLockstep: the pipeline is an optimization,
// not a behaviour change — every miniature surfaced while prefetching must
// be identical to the lock-step fetch.
func TestPrefetchedBrowseMatchesLockstep(t *testing.T) {
	const n = 12
	plain, _, _ := browseFixture(t, n)
	pre, _, _ := browseFixture(t, n)
	pre.EnablePrefetch(PrefetchConfig{Depth: 6, Batch: 3})

	if hits, err := plain.Query("survey"); err != nil || hits != n {
		t.Fatalf("query = %d, %v", hits, err)
	}
	if hits, err := pre.Query("survey"); err != nil || hits != n {
		t.Fatalf("query = %d, %v", hits, err)
	}
	for i := 0; i < n; i++ {
		idA, mA, doneA, errA := plain.NextMiniature()
		idB, mB, doneB, errB := pre.NextMiniature()
		if errA != nil || errB != nil || doneA || doneB {
			t.Fatalf("step %d: %v %v %v %v", i, errA, errB, doneA, doneB)
		}
		if idA != idB {
			t.Fatalf("step %d: ids diverge %d vs %d", i, idA, idB)
		}
		if !bmEqual(mA, mB) {
			t.Fatalf("step %d: prefetched miniature differs from lock-step", i)
		}
	}
	if _, _, done, _ := pre.NextMiniature(); !done {
		t.Fatal("prefetched browse not done past the end")
	}
	pre.Close()
}

// TestPrefetchSteadyState: after the cold start, every cursor step is a
// cache hit and the link sees ~1/Batch round trips per step.
func TestPrefetchSteadyState(t *testing.T) {
	const (
		n     = 24
		batch = 4
	)
	s, lt, _ := browseFixture(t, n)
	s.EnablePrefetch(PrefetchConfig{Depth: 8, Batch: batch})
	if _, err := s.Query("survey"); err != nil {
		t.Fatal(err)
	}
	lt.ResetStats()
	for i := 0; i < n; i++ {
		if _, _, done, err := s.NextMiniature(); err != nil || done {
			t.Fatalf("step %d: done=%v err=%v", i, done, err)
		}
	}
	s.Close() // drain in-flight prefetches before reading stats

	ps := s.PrefetchStats()
	if ps.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (cold start only)", ps.Misses)
	}
	if ps.Hits != n-1 {
		t.Fatalf("hits = %d, want %d", ps.Hits, n-1)
	}
	wantBatches := int64(n/batch + 1)
	if ps.Batches > wantBatches {
		t.Fatalf("batches = %d, want <= %d", ps.Batches, wantBatches)
	}
	if rt := lt.Stats().RoundTrips; rt > wantBatches {
		t.Fatalf("round trips = %d, want <= %d (vs %d lock-step)", rt, wantBatches, 2*n)
	}
}

// TestRefineInvalidatesPrefetchedMiniatures: a changed result set must
// never surface a miniature cached (or in flight) before the change.
func TestRefineInvalidatesPrefetchedMiniatures(t *testing.T) {
	const n = 8
	s, _, srv := browseFixture(t, n)
	s.EnablePrefetch(PrefetchConfig{Depth: 8, Batch: 4})
	if _, err := s.Query("survey"); err != nil {
		t.Fatal(err)
	}
	// Warm the pipeline over the whole set.
	if _, _, _, err := s.NextMiniature(); err != nil {
		t.Fatal(err)
	}

	// Object 2's content changes server-side (its miniature with it).
	changed, err := object.NewBuilder(2, "doc2-v2", object.Visual).
		Text(".title Replacement Two\nsurvey item rewritten entirely different content.\n").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	srv.Adopt(changed)
	want := srv.Miniature(2)

	// Refine keeps object 2 in the set and invalidates the pipeline; the
	// next fetch of 2 must be the new miniature, not the cached old one.
	if hits, err := s.Refine("survey"); err != nil || hits == 0 {
		t.Fatalf("refine = %d, %v", hits, err)
	}
	var got *img.Bitmap
	for {
		id, m, done, err := s.NextMiniature()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if id == 2 {
			got = m
		}
	}
	if got == nil {
		t.Fatal("object 2 not browsed after refine")
	}
	if !bmEqual(got, want) {
		t.Fatal("refine surfaced a stale prefetched miniature")
	}
	s.Close()
}

// TestPrefetchRefineRace drives a browse loop whose result set is refined
// while background prefetches are in flight: under -race this doubles as a
// data-race check, and every post-refine browse must see the server's
// current miniature, never the superseded one.
func TestPrefetchRefineRace(t *testing.T) {
	const n = 16
	s, _, srv := browseFixture(t, n)
	s.EnablePrefetch(PrefetchConfig{Depth: 8, Batch: 4})

	for iter := 0; iter < 25; iter++ {
		if _, err := s.Query("survey"); err != nil {
			t.Fatal(err)
		}
		// Launch the pipeline, then immediately change an object and
		// refine while those fetches are still in flight.
		if _, _, _, err := s.NextMiniature(); err != nil {
			t.Fatal(err)
		}
		victim := object.ID(2 + iter%(n-2))
		changed, err := object.NewBuilder(victim, "rewrite", object.Visual).
			Text(fmt.Sprintf(".title Rewrite %d\nsurvey rewritten pass %d body here.\n", iter, iter)).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		srv.Adopt(changed)
		want := srv.Miniature(victim)
		if _, err := s.Refine("survey"); err != nil {
			t.Fatal(err)
		}
		for {
			id, m, done, err := s.NextMiniature()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			if id == victim && !bmEqual(m, want) {
				t.Fatalf("iter %d: stale miniature for %d surfaced after refine", iter, victim)
			}
		}
	}
	s.Close()
}

// TestPrefetcherConcurrentEnsureInvalidate exercises the prefetcher's
// internals from many goroutines at once (ensure racing invalidate racing
// background inserts); it exists for the race detector.
func TestPrefetcherConcurrentEnsureInvalidate(t *testing.T) {
	const n = 16
	s, _, _ := browseFixture(t, n)
	p := newPrefetcher(s.be, PrefetchConfig{Depth: 8, Batch: 4})
	ids := make([]object.ID, n)
	for i := range ids {
		ids[i] = object.ID(i + 1)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if g == 3 {
					p.invalidate()
					continue
				}
				idx := (g*7 + i) % n
				mini, _, err := p.ensure(context.Background(), ids, idx)
				if err != nil {
					t.Error(err)
					return
				}
				if mini == nil || mini.PopCount() == 0 {
					t.Errorf("blank miniature for %d", ids[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	p.drain()
}

func BenchmarkPrefetchedBrowse(b *testing.B) {
	const n = 24
	s, _, _ := browseFixture(b, n)
	s.EnablePrefetch(PrefetchConfig{Depth: 8, Batch: 6})
	if _, err := s.Query("survey"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			_, _, done, err := s.NextMiniature()
			if err != nil {
				b.Fatal(err)
			}
			if done {
				break
			}
		}
		for {
			if _, _, done, _ := s.PrevMiniature(); done {
				break
			}
		}
	}
}

func BenchmarkLockstepBrowse(b *testing.B) {
	const n = 24
	s, _, _ := browseFixture(b, n)
	if _, err := s.Query("survey"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			_, _, done, err := s.NextMiniature()
			if err != nil {
				b.Fatal(err)
			}
			if done {
				break
			}
		}
		for {
			if _, _, done, _ := s.PrevMiniature(); done {
				break
			}
		}
	}
}
