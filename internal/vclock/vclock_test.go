package vclock

import (
	"testing"
	"time"
)

func TestNowStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New()
	c.Advance(5 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	c := New()
	var got []int
	c.Schedule(3*time.Second, func() { got = append(got, 3) })
	c.Schedule(1*time.Second, func() { got = append(got, 1) })
	c.Schedule(2*time.Second, func() { got = append(got, 2) })
	c.Advance(10 * time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired order %v, want %v", got, want)
		}
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(time.Second, func() { got = append(got, i) })
	}
	c.Advance(time.Second)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAdvancePartial(t *testing.T) {
	c := New()
	fired := false
	c.Schedule(10*time.Second, func() { fired = true })
	c.Advance(5 * time.Second)
	if fired {
		t.Fatal("event fired too early")
	}
	c.Advance(5 * time.Second)
	if !fired {
		t.Fatal("event did not fire at its timestamp")
	}
}

func TestAfterFunc(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	var at time.Duration
	c.AfterFunc(2*time.Second, func() { at = c.Now() })
	c.Advance(5 * time.Second)
	if at != time.Minute+2*time.Second {
		t.Fatalf("fired at %v, want 1m2s", at)
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestCallbackSchedulesWithinWindow(t *testing.T) {
	c := New()
	var got []time.Duration
	c.Schedule(time.Second, func() {
		got = append(got, c.Now())
		c.AfterFunc(time.Second, func() { got = append(got, c.Now()) })
	})
	c.Advance(5 * time.Second)
	if len(got) != 2 || got[0] != time.Second || got[1] != 2*time.Second {
		t.Fatalf("chained events fired at %v", got)
	}
}

func TestRunDrainsAllEvents(t *testing.T) {
	c := New()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 10 {
			c.AfterFunc(time.Second, step)
		}
	}
	c.AfterFunc(time.Second, step)
	end := c.Run(0)
	if n != 10 {
		t.Fatalf("fired %d events, want 10", n)
	}
	if end != 10*time.Second {
		t.Fatalf("Run ended at %v, want 10s", end)
	}
}

func TestRunHonorsLimit(t *testing.T) {
	c := New()
	n := 0
	var step func()
	step = func() {
		n++
		c.AfterFunc(time.Second, step)
	}
	c.AfterFunc(time.Second, step)
	end := c.Run(5500 * time.Millisecond)
	if n != 5 {
		t.Fatalf("fired %d events, want 5", n)
	}
	if end != 5500*time.Millisecond {
		t.Fatalf("Run ended at %v, want 5.5s", end)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	var at time.Duration = -1
	c.Schedule(time.Second, func() { at = c.Now() })
	c.Advance(0)
	if at != time.Minute {
		t.Fatalf("past-scheduled event fired at %v, want now (1m)", at)
	}
}

func TestPendingCountsUncancelled(t *testing.T) {
	c := New()
	t1 := c.AfterFunc(time.Second, func() {})
	c.AfterFunc(2*time.Second, func() {})
	if c.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", c.Pending())
	}
	t1.Stop()
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d after Stop, want 1", c.Pending())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-time.Second)
}

func TestReentrantAdvancePanics(t *testing.T) {
	c := New()
	var recovered any
	c.AfterFunc(time.Second, func() {
		defer func() { recovered = recover() }()
		c.Advance(time.Second)
	})
	c.Advance(2 * time.Second)
	if recovered == nil {
		t.Fatal("re-entrant Advance did not panic")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	c := New()
	tm := c.AfterFunc(time.Second, func() {})
	c.Advance(2 * time.Second)
	if tm.Stop() {
		t.Fatal("Stop() = true after the event fired")
	}
}

func TestNilTimerStop(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil timer Stop = true")
	}
}
