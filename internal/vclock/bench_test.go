package vclock

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New()
		for j := 0; j < 100; j++ {
			c.Schedule(time.Duration(j%17)*time.Millisecond, func() {})
		}
		c.Run(0)
	}
}
