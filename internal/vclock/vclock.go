// Package vclock provides a deterministic virtual clock and discrete-event
// scheduler. All time-dependent behaviour in the reproduction — voice
// playback, tours, process simulation, disk service times, server queueing —
// runs against a Clock instead of the wall clock, so experiments are
// deterministic and fast.
package vclock

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Clock is a virtual clock. The zero value is not usable; use New.
//
// Events fire inside Advance/Run on the calling goroutine, in timestamp
// order (FIFO among equal timestamps), mirroring a classical discrete-event
// simulator: within one Advance nothing depends on goroutine scheduling.
// The clock itself is safe for concurrent use — Schedule and Now may be
// called from any goroutine, and concurrent Advance/Run callers serialize:
// late arrivals wait for the in-progress pass to finish, then advance from
// the then-current time. Calling Advance or Run from inside an event
// callback is still a programming error and panics, as the traversal it
// would re-enter is the one that invoked the callback.
type Clock struct {
	mu     sync.Mutex
	cond   *sync.Cond // signalled when a firing pass completes
	now    time.Duration
	events eventHeap
	seq    uint64
	// firing marks an Advance/Run pass in progress; firingG is the id of
	// the goroutine running it, used to tell a re-entrant call (panic)
	// from a concurrent one (wait).
	firing  bool
	firingG uint64
}

// New returns a Clock positioned at time zero with no pending events.
func New() *Clock {
	c := &Clock{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the current virtual time as an offset from the clock's origin.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Timer is a handle to a scheduled event. Stop cancels it. A Timer is for
// use by one goroutine at a time.
type Timer struct {
	clock   *Clock
	id      uint64
	stopped bool
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e. the call prevented the event from firing).
func (t *Timer) Stop() bool {
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	return t.clock.cancel(t.id)
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// index within the heap, maintained by heap.Interface methods.
	index int
	// cancelled events stay in the heap but are skipped when popped.
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past (or
// at the current instant) is allowed: the event fires on the next Advance
// or Run call, before any later events.
func (c *Clock) Schedule(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("vclock: Schedule with nil function")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if at < c.now {
		at = c.now
	}
	c.seq++
	e := &event{at: at, seq: c.seq, fn: fn}
	heap.Push(&c.events, e)
	return &Timer{clock: c, id: e.seq}
}

// AfterFunc runs fn after duration d of virtual time has elapsed.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	if fn == nil {
		panic("vclock: Schedule with nil function")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	e := &event{at: c.now + d, seq: c.seq, fn: fn}
	heap.Push(&c.events, e)
	return &Timer{clock: c, id: e.seq}
}

func (c *Clock) cancel(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.events {
		if e.seq == id && !e.cancelled {
			e.cancelled = true
			return true
		}
	}
	return false
}

// Pending reports the number of scheduled, uncancelled events.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// goid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [...]"). It is taken once per Advance/Run pass, only
// to distinguish a re-entrant call from a concurrent one.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	const prefix = "goroutine "
	var id uint64
	for _, ch := range buf[len(prefix):n] {
		if ch < '0' || ch > '9' {
			break
		}
		id = id*10 + uint64(ch-'0')
	}
	return id
}

// beginPass marks a firing pass started by goroutine g, waiting out any
// concurrent pass first and panicking on re-entrancy from a callback.
func (c *Clock) beginPass(g uint64, what string) {
	for c.firing {
		if c.firingG == g {
			c.mu.Unlock()
			panic("vclock: re-entrant " + what + " from event callback")
		}
		c.cond.Wait()
	}
	c.firing = true
	c.firingG = g
}

// endPass ends the pass and wakes concurrent Advance/Run callers.
func (c *Clock) endPass() {
	c.firing = false
	c.cond.Broadcast()
}

// Advance moves the clock forward by d, firing every event whose timestamp
// falls within the window, in order. Events scheduled by callbacks within
// the window also fire. A concurrent Advance waits for the in-progress pass
// and then advances by d from the then-current time, so N concurrent
// callers always move the clock forward by the sum of their durations.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: Advance by negative duration %v", d))
	}
	g := goid()
	c.mu.Lock()
	c.beginPass(g, "Advance")
	c.advanceLocked(c.now + d)
}

// AdvanceTo moves the clock forward to absolute time t, firing due events.
func (c *Clock) AdvanceTo(t time.Duration) {
	g := goid()
	c.mu.Lock()
	c.beginPass(g, "Advance")
	if t < c.now {
		now := c.now
		c.endPass()
		c.mu.Unlock()
		panic(fmt.Sprintf("vclock: AdvanceTo(%v) before now (%v)", t, now))
	}
	c.advanceLocked(t)
}

// advanceLocked fires events through t. Called with mu held and the pass
// begun; releases the lock around each callback (callbacks may Schedule,
// Stop timers, or read Now) and unlocks before returning. The pass is
// ended even when a callback panics (e.g. by re-entering Advance), so the
// clock stays usable after a recovered panic.
func (c *Clock) advanceLocked(t time.Duration) {
	locked := true
	defer func() {
		if !locked {
			c.mu.Lock()
		}
		c.endPass()
		c.mu.Unlock()
	}()
	for len(c.events) > 0 {
		next := c.events[0]
		if next.cancelled {
			heap.Pop(&c.events)
			continue
		}
		if next.at > t {
			break
		}
		heap.Pop(&c.events)
		c.now = next.at
		c.mu.Unlock()
		locked = false
		next.fn()
		c.mu.Lock()
		locked = true
	}
	c.now = t
}

// Run fires events until none remain or until limit is reached, whichever
// comes first, and returns the final virtual time. A limit of zero or less
// means "no limit"; in that case the caller is responsible for ensuring the
// event set drains (e.g. a tour that ends).
func (c *Clock) Run(limit time.Duration) time.Duration {
	g := goid()
	c.mu.Lock()
	c.beginPass(g, "Run")
	locked := true
	defer func() {
		if !locked {
			c.mu.Lock()
		}
		c.endPass()
		c.mu.Unlock()
	}()
	for len(c.events) > 0 {
		next := c.events[0]
		if next.cancelled {
			heap.Pop(&c.events)
			continue
		}
		if limit > 0 && next.at > limit {
			c.now = limit
			return c.now
		}
		heap.Pop(&c.events)
		c.now = next.at
		c.mu.Unlock()
		locked = false
		next.fn()
		c.mu.Lock()
		locked = true
	}
	if limit > 0 && limit > c.now {
		c.now = limit
	}
	return c.now
}
