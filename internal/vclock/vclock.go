// Package vclock provides a deterministic virtual clock and discrete-event
// scheduler. All time-dependent behaviour in the reproduction — voice
// playback, tours, process simulation, disk service times, server queueing —
// runs against a Clock instead of the wall clock, so experiments are
// deterministic and fast.
package vclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value is not usable; use New.
//
// A Clock is single-threaded by design: events fire inside Advance/Run on
// the calling goroutine, in timestamp order (FIFO among equal timestamps).
// This mirrors a classical discrete-event simulator and avoids any
// dependence on goroutine scheduling for experiment results.
type Clock struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	// firing guards against re-entrant Advance calls from inside an
	// event callback, which would corrupt the heap traversal.
	firing bool
}

// New returns a Clock positioned at time zero with no pending events.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the clock's origin.
func (c *Clock) Now() time.Duration { return c.now }

// Timer is a handle to a scheduled event. Stop cancels it.
type Timer struct {
	clock   *Clock
	id      uint64
	stopped bool
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e. the call prevented the event from firing).
func (t *Timer) Stop() bool {
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	return t.clock.cancel(t.id)
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// index within the heap, maintained by heap.Interface methods.
	index int
	// cancelled events stay in the heap but are skipped when popped.
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past (or
// at the current instant) is allowed: the event fires on the next Advance
// or Run call, before any later events.
func (c *Clock) Schedule(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("vclock: Schedule with nil function")
	}
	if at < c.now {
		at = c.now
	}
	c.seq++
	e := &event{at: at, seq: c.seq, fn: fn}
	heap.Push(&c.events, e)
	return &Timer{clock: c, id: e.seq}
}

// AfterFunc runs fn after duration d of virtual time has elapsed.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.Schedule(c.now+d, fn)
}

func (c *Clock) cancel(id uint64) bool {
	for _, e := range c.events {
		if e.seq == id && !e.cancelled {
			e.cancelled = true
			return true
		}
	}
	return false
}

// Pending reports the number of scheduled, uncancelled events.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// Advance moves the clock forward by d, firing every event whose timestamp
// falls within the window, in order. Events scheduled by callbacks within
// the window also fire.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: Advance by negative duration %v", d))
	}
	c.AdvanceTo(c.now + d)
}

// AdvanceTo moves the clock forward to absolute time t, firing due events.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("vclock: AdvanceTo(%v) before now (%v)", t, c.now))
	}
	if c.firing {
		panic("vclock: re-entrant Advance from event callback")
	}
	c.firing = true
	defer func() { c.firing = false }()
	for len(c.events) > 0 {
		next := c.events[0]
		if next.cancelled {
			heap.Pop(&c.events)
			continue
		}
		if next.at > t {
			break
		}
		heap.Pop(&c.events)
		c.now = next.at
		next.fn()
	}
	c.now = t
}

// Run fires events until none remain or until limit is reached, whichever
// comes first, and returns the final virtual time. A limit of zero or less
// means "no limit"; in that case the caller is responsible for ensuring the
// event set drains (e.g. a tour that ends).
func (c *Clock) Run(limit time.Duration) time.Duration {
	if c.firing {
		panic("vclock: re-entrant Run from event callback")
	}
	c.firing = true
	defer func() { c.firing = false }()
	for len(c.events) > 0 {
		next := c.events[0]
		if next.cancelled {
			heap.Pop(&c.events)
			continue
		}
		if limit > 0 && next.at > limit {
			c.now = limit
			return c.now
		}
		heap.Pop(&c.events)
		c.now = next.at
		next.fn()
	}
	if limit > 0 && limit > c.now {
		c.now = limit
	}
	return c.now
}
