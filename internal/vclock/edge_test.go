package vclock

import (
	"sync"
	"testing"
	"time"
)

// TestTimerEdgeCases is the table-driven sweep over the scheduling edge
// cases the load harness leans on: zero-duration timers, timers at the
// same tick, past timestamps, cancellation at the firing instant.
func TestTimerEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, c *Clock) (got, want []int)
	}{
		{
			name: "zero-duration timer fires on next advance",
			run: func(t *testing.T, c *Clock) ([]int, []int) {
				var got []int
				c.AfterFunc(0, func() { got = append(got, 1) })
				if len(got) != 0 {
					t.Fatal("zero-duration timer fired before Advance")
				}
				c.Advance(0)
				return got, []int{1}
			},
		},
		{
			name: "zero-duration chain drains within one advance",
			run: func(t *testing.T, c *Clock) ([]int, []int) {
				var got []int
				c.AfterFunc(0, func() {
					got = append(got, 1)
					c.AfterFunc(0, func() { got = append(got, 2) })
				})
				c.Advance(0)
				return got, []int{1, 2}
			},
		},
		{
			name: "same-tick timers fire FIFO",
			run: func(t *testing.T, c *Clock) ([]int, []int) {
				var got []int
				at := 5 * time.Millisecond
				for i := 1; i <= 4; i++ {
					i := i
					c.Schedule(at, func() { got = append(got, i) })
				}
				c.Advance(10 * time.Millisecond)
				return got, []int{1, 2, 3, 4}
			},
		},
		{
			name: "same-tick scheduled from callback fires same advance",
			run: func(t *testing.T, c *Clock) ([]int, []int) {
				var got []int
				c.Schedule(time.Millisecond, func() {
					got = append(got, 1)
					// Scheduled at the instant now == 1ms: still inside
					// the window, fires after already-queued same-tick
					// events.
					c.Schedule(time.Millisecond, func() { got = append(got, 3) })
				})
				c.Schedule(time.Millisecond, func() { got = append(got, 2) })
				c.Advance(time.Millisecond)
				return got, []int{1, 2, 3}
			},
		},
		{
			name: "past timestamp clamps to now",
			run: func(t *testing.T, c *Clock) ([]int, []int) {
				var got []int
				c.Advance(10 * time.Millisecond)
				c.Schedule(2*time.Millisecond, func() { got = append(got, 1) })
				c.Advance(0)
				return got, []int{1}
			},
		},
		{
			name: "stop at firing tick prevents the event",
			run: func(t *testing.T, c *Clock) ([]int, []int) {
				var got []int
				var tm *Timer
				c.Schedule(time.Millisecond, func() {
					got = append(got, 1)
					if !tm.Stop() {
						t.Fatal("Stop on a pending same-tick timer reported not-pending")
					}
				})
				tm = c.Schedule(time.Millisecond, func() { got = append(got, 2) })
				c.Advance(time.Millisecond)
				return got, []int{1}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, want := tc.run(t, New())
			if len(got) != len(want) {
				t.Fatalf("fired %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fired %v, want %v", got, want)
				}
			}
		})
	}
}

// TestConcurrentAdvanceCallers: N goroutines each Advance(d) concurrently;
// they must serialize, the clock must land on the sum, and every event
// must fire exactly once in timestamp order. Run under -race.
func TestConcurrentAdvanceCallers(t *testing.T) {
	c := New()
	const (
		goroutines = 8
		step       = time.Millisecond
	)
	var mu sync.Mutex
	var fired []time.Duration
	for i := 1; i <= goroutines; i++ {
		at := time.Duration(i) * step
		c.Schedule(at, func() {
			// Events fire one at a time (the firing pass holds the
			// clock); the mutex is for cross-goroutine visibility.
			mu.Lock()
			fired = append(fired, at)
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(step)
		}()
	}
	wg.Wait()
	if got, want := c.Now(), time.Duration(goroutines)*step; got != want {
		t.Fatalf("Now() = %v after %d concurrent Advance(%v), want %v", got, goroutines, step, want)
	}
	if len(fired) != goroutines {
		t.Fatalf("%d events fired, want %d", len(fired), goroutines)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of timestamp order: %v", fired)
		}
	}
}

// TestConcurrentScheduleRace: many goroutines schedule concurrently;
// nothing is lost and the clock survives -race.
func TestConcurrentScheduleRace(t *testing.T) {
	c := New()
	var fired sync.Map
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.AfterFunc(time.Duration(i%10)*time.Millisecond, func() {
				fired.Store(i, true)
			})
		}(i)
	}
	wg.Wait()
	c.Advance(time.Second)
	count := 0
	fired.Range(func(_, _ any) bool { count++; return true })
	if count != n {
		t.Fatalf("%d events fired, want %d", count, n)
	}
	if c.Pending() != 0 {
		t.Fatalf("%d events still pending", c.Pending())
	}
}

// TestReentrantAdvanceStillPanicsConcurrently: with concurrent callers
// waiting their turn, a re-entrant call from a callback must still panic
// (it is the firing goroutine) rather than deadlock or corrupt the heap.
func TestReentrantAdvanceStillPanicsConcurrently(t *testing.T) {
	c := New()
	panicked := make(chan any, 1)
	c.AfterFunc(time.Millisecond, func() {
		defer func() { panicked <- recover() }()
		c.Advance(time.Millisecond)
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Advance(2 * time.Millisecond) // concurrent caller: waits, then proceeds
	}()
	c.Advance(2 * time.Millisecond)
	wg.Wait()
	if p := <-panicked; p == nil {
		t.Fatal("re-entrant Advance from a callback did not panic")
	}
	// The clock must remain usable after the recovered panic.
	var ok bool
	c.AfterFunc(time.Millisecond, func() { ok = true })
	c.Advance(time.Millisecond)
	if !ok {
		t.Fatal("clock unusable after recovered re-entrancy panic")
	}
}
