package demo

import (
	"strings"
	"testing"

	"minos/internal/text"
)

func TestBuildCorpus(t *testing.T) {
	c, err := Build(1<<15, 8)
	if err != nil {
		t.Fatal(err)
	}
	ids := c.Server.IDs()
	// 7 figure objects + big map + 8 fillers.
	if len(ids) != 16 {
		t.Fatalf("objects = %d", len(ids))
	}
	for _, label := range []string{"fig12", "fig34", "fig56", "fig78", "fig910", "bigmap"} {
		id, ok := c.FigureIDs[label]
		if !ok {
			t.Fatalf("missing figure id %q", label)
		}
		if _, _, err := c.Server.Load(id); err != nil {
			t.Fatalf("load %s: %v", label, err)
		}
	}
	// Fillers are queryable.
	if got := c.Server.Query("lung"); len(got) == 0 {
		t.Fatal("filler vocabulary not indexed")
	}
}

func TestFillerMarkupDeterministic(t *testing.T) {
	a := FillerMarkup("lung", 120, 3)
	b := FillerMarkup("lung", 120, 3)
	if a != b {
		t.Fatal("filler not deterministic")
	}
	if FillerMarkup("lung", 120, 4) == a {
		t.Fatal("seed ignored")
	}
	seg, err := text.Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := seg.WordCount(); got < 110 || got > 130 {
		t.Fatalf("word count = %d, want ~120", got)
	}
	if !strings.Contains(a, ".chapter") {
		t.Fatal("no chapters in filler")
	}
}

func TestBigMapObject(t *testing.T) {
	o, err := BigMapObject(1, 320, 240, 30)
	if err != nil {
		t.Fatal(err)
	}
	im := o.ImageByName("roadmap")
	if im == nil {
		t.Fatal("no roadmap image")
	}
	if len(im.MatchLabels("hotel")) == 0 {
		t.Fatal("no hotel labels")
	}
	mini := o.ImageByName("roadmap.mini")
	if mini == nil || !mini.Representation || mini.Scale != 8 {
		t.Fatalf("miniature = %+v", mini)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpokenObject(t *testing.T) {
	o, err := SpokenObject(7, "heart", 80, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	vp := o.PrimaryVoice()
	if vp == nil || len(vp.Samples) == 0 {
		t.Fatal("no voice")
	}
	if len(vp.Markers) == 0 {
		t.Fatal("no chapter markers")
	}
	if len(vp.Utterances) == 0 {
		t.Fatal("no recognized utterances")
	}
}
