// Synthetic million-document corpus for the E-INDEX experiment: every doc
// is a pure function of (seed, i), so workers can generate disjoint chunks
// in parallel with no shared state and a rerun reproduces the corpus
// bit-for-bit. The vocabulary is interned up front, so generating a doc
// into a reused index.Doc allocates nothing — the bulk-build throughput
// measurement stays a measurement of the index, not of fmt.Sprintf.
package demo

import (
	"fmt"
	"sync"

	"minos/internal/index"
	"minos/internal/object"
)

// Synth vocabulary tiers. A common term lands in ~1/21 of all docs, a mid
// term in ~1/1024, a rare term in ~1/16384 — so "two commons + one mid" is
// the canonical selective conjunction: every term alone matches plenty,
// the intersection matches a handful, and a naive evaluator pays for the
// common postings while the planner starts from the mid driver.
const (
	SynthCommonVocab = 64
	SynthMidVocab    = 4096
	SynthRareVocab   = 1 << 16

	synthCommonPerDoc = 3
	synthMidPerDoc    = 4
	synthRarePerDoc   = 4
)

var (
	synthOnce   sync.Once
	synthCommon []string
	synthMid    []string
	synthRare   []string
)

func synthVocab() {
	synthOnce.Do(func() {
		synthCommon = make([]string, SynthCommonVocab)
		for i := range synthCommon {
			synthCommon[i] = fmt.Sprintf("common%02d", i)
		}
		synthMid = make([]string, SynthMidVocab)
		for i := range synthMid {
			synthMid[i] = fmt.Sprintf("mid%04d", i)
		}
		synthRare = make([]string, SynthRareVocab)
		for i := range synthRare {
			synthRare[i] = fmt.Sprintf("rare%05d", i)
		}
	})
}

// splitmix64 is the per-doc generator chain: seeded once per doc, advanced
// once per draw. Statelessness across docs is what makes SynthDoc safe to
// call concurrently for disjoint i.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SynthDoc fills d with synthetic document i of the seed's corpus: 3
// common + 4 mid + 4 rare terms, a 3:1 visual:audio mode split, and a date
// in 1980-1989. d.Terms' backing array is reused; the term strings are
// interned, so a warm call performs no heap allocation.
func SynthDoc(seed uint64, i int, d *index.Doc) {
	synthVocab()
	r := splitmix64(seed ^ (uint64(i)+1)*0xD1B54A32D192ED03)
	d.ID = object.ID(i + 1)
	d.Mode = object.Visual
	if r%4 == 0 {
		d.Mode = object.Audio
	}
	r = splitmix64(r)
	y, m, dd := 1980+int(r%10), 1+int((r>>8)%12), 1+int((r>>16)%28)
	d.Date = uint32(y*416 + m*32 + dd)
	d.Terms = d.Terms[:0]
	for k := 0; k < synthCommonPerDoc; k++ {
		r = splitmix64(r)
		d.Terms = append(d.Terms, synthCommon[r%SynthCommonVocab])
	}
	for k := 0; k < synthMidPerDoc; k++ {
		r = splitmix64(r)
		d.Terms = append(d.Terms, synthMid[r%SynthMidVocab])
	}
	for k := 0; k < synthRarePerDoc; k++ {
		r = splitmix64(r)
		d.Terms = append(d.Terms, synthRare[r%SynthRareVocab])
	}
}

// SynthQuery derives selective 3-term conjunction k against the (seed,
// docs) corpus: two common terms plus one mid term drawn from an actual
// document, so every query is guaranteed at least one hit while the
// expected result set stays tiny (the mid driver narrows ~1/1024, each
// common ~1/21).
func SynthQuery(seed uint64, k, docs int) index.Query {
	var d index.Doc
	j := int(splitmix64(seed^0xA5A5A5A5^uint64(k)) % uint64(docs))
	SynthDoc(seed, j, &d)
	return index.Query{Terms: []string{
		d.Terms[0],
		d.Terms[1],
		d.Terms[synthCommonPerDoc], // the doc's first mid term
	}}
}
