// Package demo builds the demonstration corpus used by the command-line
// tools, the examples and the benchmark harness: the five figure objects
// plus a configurable number of filler documents, published to an
// in-memory object server.
package demo

import (
	"fmt"
	"strings"

	img "minos/internal/image"

	"minos/internal/archiver"
	"minos/internal/disk"
	"minos/internal/figures"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/voice"
)

// Corpus bundles the built server and the ids of interest.
type Corpus struct {
	Server *server.Server
	// FigureIDs maps scenario labels to published object ids.
	FigureIDs map[string]object.ID
}

// Topics provide vocabulary for the filler documents.
var topics = []string{
	"lung", "heart", "shadow", "rhythm", "archive", "optical", "voice",
	"image", "browsing", "presentation", "workstation", "server", "map",
	"hospital", "university", "subway", "tour", "transparency", "report",
}

// FillerMarkup generates a deterministic document of roughly n words about
// the given seed topic.
func FillerMarkup(topic string, n, seed int) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".title Notes on %s\n.chapter Summary\n", topic)
	w := 0
	x := uint32(seed)*2654435761 + 17
	for w < n {
		if w > 0 && w%60 == 0 {
			b.WriteString("\n.chapter Continued\n")
		} else if w > 0 && w%25 == 0 {
			b.WriteString("\n\n") // paragraph break
		}
		x = x*1664525 + 1013904223
		word := topics[x>>16%uint32(len(topics))]
		b.WriteString(word)
		w++
		if w%9 == 0 {
			b.WriteString(". ")
		} else {
			b.WriteString(" ")
		}
	}
	b.WriteString(".\n")
	return b.String()
}

// Build publishes the figure objects and fillers filler documents onto a
// fresh server with the given optical disk capacity (blocks).
func Build(blocks, fillers int) (*Corpus, error) {
	dev, err := disk.NewOptical("archive0", disk.OpticalGeometry(blocks))
	if err != nil {
		return nil, err
	}
	srv := server.New(archiver.New(dev))
	c := &Corpus{Server: srv, FigureIDs: map[string]object.ID{}}

	parent, university, hospitals := figures.Fig78Objects()
	// Publish in a fixed order: map iteration order would vary the archive
	// layout from build to build, and the load harness's determinism
	// guarantee covers the corpus too.
	for _, fig := range []struct {
		label string
		o     *object.Object
	}{
		{"fig12", figures.Fig12Object()},
		{"fig34", figures.Fig34Object()},
		{"fig56", figures.Fig56Object()},
		{"fig78", parent},
		{"fig78-uni", university},
		{"fig78-hos", hospitals},
		{"fig910", figures.Fig910Object()},
	} {
		if _, err := srv.Publish(fig.o); err != nil {
			return nil, fmt.Errorf("demo: publish %s: %w", fig.label, err)
		}
		c.FigureIDs[fig.label] = fig.o.ID
	}

	big, err := BigMapObject(900, 640, 480, 60)
	if err != nil {
		return nil, err
	}
	if _, err := srv.Publish(big); err != nil {
		return nil, err
	}
	c.FigureIDs["bigmap"] = big.ID

	for i := 0; i < fillers; i++ {
		topic := topics[i%len(topics)]
		o, err := object.NewBuilder(object.ID(1000+i), "Notes on "+topic, object.Visual).
			Text(FillerMarkup(topic, 150, i)).
			Build()
		if err != nil {
			return nil, err
		}
		if _, err := srv.Publish(o); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// BigMapObject builds a large labelled map image (the §2 road-map example)
// with a representation miniature, for the view and label experiments.
func BigMapObject(id object.ID, w, h, sites int) (*object.Object, error) {
	im := buildBigMap(w, h, sites)
	mini := im.Miniature(8)
	return object.NewBuilder(id, "City Road Map", object.Visual).
		Text(".title City Road Map\nA very large map with many labelled objects on it.\n").
		Image(im).
		Image(mini).
		Build()
}

func buildBigMap(w, h, sites int) *img.Image {
	im := img.New("roadmap", w, h)
	// Road grid.
	for y := 16; y < h; y += 48 {
		im.Add(img.Graphic{Shape: img.ShapePolyline, Points: []img.Point{{X: 0, Y: y}, {X: w - 1, Y: y}}})
	}
	for x := 16; x < w; x += 64 {
		im.Add(img.Graphic{Shape: img.ShapePolyline, Points: []img.Point{{X: x, Y: 0}, {X: x, Y: h - 1}}})
	}
	kinds := []string{"HOTEL", "HOSPITAL", "SCHOOL", "MUSEUM", "THEATRE", "STATION"}
	x := uint32(12345)
	for i := 0; i < sites; i++ {
		x = x*1664525 + 1013904223
		px := int(x>>8) % (w - 40)
		x = x*1664525 + 1013904223
		py := int(x>>8) % (h - 20)
		kind := kinds[i%len(kinds)]
		label := img.Label{Kind: img.TextLabel, Text: fmt.Sprintf("%s %d", kind, i), At: img.Point{X: px + 8, Y: py - 4}}
		if i%5 == 0 {
			label.Kind = img.VoiceLabel
			label.VoiceRef = fmt.Sprintf("site%d", i)
		}
		im.Add(img.Graphic{Shape: img.ShapeCircle, Points: []img.Point{{X: px, Y: py}}, Radius: 4, Label: label})
	}
	return im
}

// SpokenObject builds an audio-mode twin of a filler document, with
// markers and recognized utterances, for voice experiments.
func SpokenObject(id object.ID, topic string, words, seed, rate int) (*object.Object, error) {
	markup := FillerMarkup(topic, words, seed)
	seg, err := text.Parse(markup)
	if err != nil {
		return nil, err
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), rate)
	syn.Part.Markers = voice.MarkersFromMarks(syn.Marks, text.UnitChapter)
	rec := voice.NewRecognizer(topics)
	syn.Part.Utterances = rec.Recognize(syn.Marks)
	return object.NewBuilder(id, "Spoken notes on "+topic, object.Audio).
		VoicePart(syn.Part).
		Build()
}
