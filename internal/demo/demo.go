// Package demo builds the demonstration corpus used by the command-line
// tools, the examples and the benchmark harness: the five figure objects
// plus a configurable number of filler documents, published to an
// in-memory object server.
package demo

import (
	"fmt"
	"strings"

	img "minos/internal/image"

	"minos/internal/archiver"
	"minos/internal/cluster"
	"minos/internal/disk"
	"minos/internal/figures"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/voice"
)

// Corpus bundles the built server and the ids of interest.
type Corpus struct {
	Server *server.Server
	// FigureIDs maps scenario labels to published object ids.
	FigureIDs map[string]object.ID
}

// Topics provide vocabulary for the filler documents.
var topics = []string{
	"lung", "heart", "shadow", "rhythm", "archive", "optical", "voice",
	"image", "browsing", "presentation", "workstation", "server", "map",
	"hospital", "university", "subway", "tour", "transparency", "report",
}

// FillerMarkup generates a deterministic document of roughly n words about
// the given seed topic.
func FillerMarkup(topic string, n, seed int) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".title Notes on %s\n.chapter Summary\n", topic)
	w := 0
	x := uint32(seed)*2654435761 + 17
	for w < n {
		if w > 0 && w%60 == 0 {
			b.WriteString("\n.chapter Continued\n")
		} else if w > 0 && w%25 == 0 {
			b.WriteString("\n\n") // paragraph break
		}
		x = x*1664525 + 1013904223
		word := topics[x>>16%uint32(len(topics))]
		b.WriteString(word)
		w++
		if w%9 == 0 {
			b.WriteString(". ")
		} else {
			b.WriteString(" ")
		}
	}
	b.WriteString(".\n")
	return b.String()
}

// Labeled is one corpus entry: the object plus its scenario label (empty
// for filler documents).
type Labeled struct {
	Label string
	Obj   *object.Object
}

// Objects returns the full demo corpus as a deterministic ordered list:
// the figure objects, the big map, then fillers filler documents. Both the
// single-server and the sharded builders publish from this one list, in
// this one order — map iteration order would vary the archive layout from
// build to build, and the load harness's determinism guarantee covers the
// corpus too.
func Objects(fillers int) ([]Labeled, error) {
	parent, university, hospitals := figures.Fig78Objects()
	list := []Labeled{
		{"fig12", figures.Fig12Object()},
		{"fig34", figures.Fig34Object()},
		{"fig56", figures.Fig56Object()},
		{"fig78", parent},
		{"fig78-uni", university},
		{"fig78-hos", hospitals},
		{"fig910", figures.Fig910Object()},
	}
	big, err := BigMapObject(900, 640, 480, 60)
	if err != nil {
		return nil, err
	}
	list = append(list, Labeled{"bigmap", big})
	for i := 0; i < fillers; i++ {
		topic := topics[i%len(topics)]
		o, err := object.NewBuilder(object.ID(1000+i), "Notes on "+topic, object.Visual).
			Text(FillerMarkup(topic, 150, i)).
			Build()
		if err != nil {
			return nil, err
		}
		list = append(list, Labeled{"", o})
	}
	return list, nil
}

// NewServer returns a fresh server over a fresh optical device with the
// given capacity (blocks), named for shard/replica bookkeeping.
func NewServer(name string, blocks int) (*server.Server, error) {
	dev, err := disk.NewOptical(name, disk.OpticalGeometry(blocks))
	if err != nil {
		return nil, err
	}
	return server.New(archiver.New(dev)), nil
}

// Build publishes the figure objects and fillers filler documents onto a
// fresh server with the given optical disk capacity (blocks).
func Build(blocks, fillers int) (*Corpus, error) {
	srv, err := NewServer("archive0", blocks)
	if err != nil {
		return nil, err
	}
	list, err := Objects(fillers)
	if err != nil {
		return nil, err
	}
	c := &Corpus{Server: srv, FigureIDs: map[string]object.ID{}}
	for _, e := range list {
		if _, err := srv.Publish(e.Obj); err != nil {
			return nil, fmt.Errorf("demo: publish %s: %w", labelOr(e), err)
		}
		if e.Label != "" {
			c.FigureIDs[e.Label] = e.Obj.ID
		}
	}
	return c, nil
}

func labelOr(e Labeled) string {
	if e.Label != "" {
		return e.Label
	}
	return fmt.Sprintf("object %d", e.Obj.ID)
}

// Sharded is the demo corpus partitioned across a fleet of shard servers
// by the cluster hash ring.
type Sharded struct {
	// Servers[i] is shard i's primary.
	Servers []*server.Server
	// FigureIDs maps scenario labels to published object ids (fleet-wide).
	FigureIDs map[string]object.ID
	Ring      *cluster.Ring
}

// BuildSharded partitions the demo corpus across shards servers using the
// same consistent-hash ring the routed client uses, so every object lands
// exactly on the shard that client-side routing will ask for it.
//
// Determinism composes: Objects yields a fixed global order; each shard
// publishes the subsequence the ring assigns it in that same order; and
// the archiver is append-only (WORM) — so per (fillers, shards, vnodes)
// the byte layout of every shard archive is identical across builds, and
// E-SHARD results built on it stay bit-identical per (corpus, N, Config).
func BuildSharded(blocks, fillers, shards, vnodes int) (*Sharded, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("demo: shards must be positive")
	}
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i
	}
	ring := cluster.NewRing(ids, vnodes)
	list, err := Objects(fillers)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		Servers:   make([]*server.Server, shards),
		FigureIDs: map[string]object.ID{},
		Ring:      ring,
	}
	for i := range s.Servers {
		srv, err := NewServer(fmt.Sprintf("archive%d", i), blocks)
		if err != nil {
			return nil, err
		}
		s.Servers[i] = srv
	}
	for _, e := range list {
		owner := ring.Owner(e.Obj.ID)
		if _, err := s.Servers[owner].Publish(e.Obj); err != nil {
			return nil, fmt.Errorf("demo: publish %s on shard %d: %w", labelOr(e), owner, err)
		}
		if e.Label != "" {
			s.FigureIDs[e.Label] = e.Obj.ID
		}
	}
	return s, nil
}

// BigMapObject builds a large labelled map image (the §2 road-map example)
// with a representation miniature, for the view and label experiments.
func BigMapObject(id object.ID, w, h, sites int) (*object.Object, error) {
	im := buildBigMap(w, h, sites)
	mini := im.Miniature(8)
	return object.NewBuilder(id, "City Road Map", object.Visual).
		Text(".title City Road Map\nA very large map with many labelled objects on it.\n").
		Image(im).
		Image(mini).
		Build()
}

func buildBigMap(w, h, sites int) *img.Image {
	im := img.New("roadmap", w, h)
	// Road grid.
	for y := 16; y < h; y += 48 {
		im.Add(img.Graphic{Shape: img.ShapePolyline, Points: []img.Point{{X: 0, Y: y}, {X: w - 1, Y: y}}})
	}
	for x := 16; x < w; x += 64 {
		im.Add(img.Graphic{Shape: img.ShapePolyline, Points: []img.Point{{X: x, Y: 0}, {X: x, Y: h - 1}}})
	}
	kinds := []string{"HOTEL", "HOSPITAL", "SCHOOL", "MUSEUM", "THEATRE", "STATION"}
	x := uint32(12345)
	for i := 0; i < sites; i++ {
		x = x*1664525 + 1013904223
		px := int(x>>8) % (w - 40)
		x = x*1664525 + 1013904223
		py := int(x>>8) % (h - 20)
		kind := kinds[i%len(kinds)]
		label := img.Label{Kind: img.TextLabel, Text: fmt.Sprintf("%s %d", kind, i), At: img.Point{X: px + 8, Y: py - 4}}
		if i%5 == 0 {
			label.Kind = img.VoiceLabel
			label.VoiceRef = fmt.Sprintf("site%d", i)
		}
		im.Add(img.Graphic{Shape: img.ShapeCircle, Points: []img.Point{{X: px, Y: py}}, Radius: 4, Label: label})
	}
	return im
}

// SpokenObject builds an audio-mode twin of a filler document, with
// markers and recognized utterances, for voice experiments.
func SpokenObject(id object.ID, topic string, words, seed, rate int) (*object.Object, error) {
	markup := FillerMarkup(topic, words, seed)
	seg, err := text.Parse(markup)
	if err != nil {
		return nil, err
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), rate)
	syn.Part.Markers = voice.MarkersFromMarks(syn.Marks, text.UnitChapter)
	rec := voice.NewRecognizer(topics)
	syn.Part.Utterances = rec.Recognize(syn.Marks)
	return object.NewBuilder(id, "Spoken notes on "+topic, object.Audio).
		VoicePart(syn.Part).
		Build()
}
