// Package object defines the MINOS multimedia object model.
//
// "The unit of information in MINOS is a multimedia object. Multimedia
// objects may be composed of attributes, an object text part (collection of
// text segments), an object voice part (collection of voice segments), and
// an object image part (collection of images). A unique object identifier
// is associated with each multimedia object. ... Multimedia objects may be
// in an editing state or in an archived state." (§2)
//
// The interrelationships between parts — logical messages, relevant
// objects, transparency sets, tours, process simulations — are "encoded
// within the multimedia object descriptor" (§4); package descriptor
// serializes this model into that form.
package object

import (
	"fmt"

	img "minos/internal/image"
	"minos/internal/layout"
	"minos/internal/text"
	"minos/internal/voice"
)

// ID is the unique object identifier.
type ID uint64

// State is the object lifecycle state.
type State uint8

const (
	// Editing objects may be modified; they live as multimedia object
	// files on workstation disks.
	Editing State = iota
	// Archived objects are immutable; the presentation and browsing
	// capabilities of the paper apply to archived objects.
	Archived
)

// String names the state.
func (s State) String() string {
	if s == Editing {
		return "editing"
	}
	return "archived"
}

// Mode is the driving mode: "the principal way of presenting the
// information in the object ... either visual or audio" (§2).
type Mode uint8

const (
	Visual Mode = iota
	Audio
)

// String names the mode.
func (m Mode) String() string {
	if m == Audio {
		return "audio"
	}
	return "visual"
}

// MediaKind distinguishes anchor coordinate spaces.
type MediaKind uint8

const (
	MediaText  MediaKind = iota // anchor in global word indices
	MediaVoice                  // anchor in voice-part sample offsets
	MediaImage                  // anchor is a whole image (by name)
)

// Anchor identifies a segment of the parent object's driving medium. "Text
// is linear. Two points identify the beginning and the end of a text
// segment. The two points may coincide." (§2). For voice the points are
// sample offsets; anchors may overlap freely.
type Anchor struct {
	Media MediaKind
	From  int
	To    int
	// Image names the anchored image when Media == MediaImage.
	Image string
}

// Covers reports whether position p (a word index or sample offset in the
// anchor's medium) falls within [From, To]. A zero-length anchor (the two
// points coincide) covers exactly its point.
func (a Anchor) Covers(p int) bool {
	if a.Media == MediaImage {
		return false
	}
	return p >= a.From && p <= a.To
}

// VoiceMessage is a voice logical message: an "unstructured audio segment
// (typically short)" attached to a segment or image; it plays "when the
// user first branches into the corresponding segments during browsing" (§2).
type VoiceMessage struct {
	Name   string
	Part   *voice.Part
	Anchor Anchor
}

// VisualMessage is a visual logical message: a short (at most one visual
// page) segment of visual information always displayed at the top part of
// the page while the user browses within the related segment (§2).
type VisualMessage struct {
	Name   string
	Strip  *img.Bitmap
	Anchor Anchor
	// OnceOnly: "the user has the option to specify that the visual
	// logical message is displayed only once whenever the user branches
	// during browsing from a non-related segment" (§2).
	OnceOnly bool
}

// Relevance is a section of the relevant object related to the parent
// anchor: a text span, a voice span, or a closed polygon over an image (§2).
type Relevance struct {
	Media   MediaKind
	From    int
	To      int
	Image   string      // image name for MediaImage relevances
	Polygon []img.Point // closed polygon displayed on top of the image
}

// RelevantLink connects a section of the parent object to an independent
// relevant object.
type RelevantLink struct {
	Target      ID
	Anchor      Anchor
	Relevances  []Relevance
	IndicatorAt img.Point
}

// TransparencySet is "an ordered set of consecutive transparencies" (§2),
// placed in the page flow after the page containing AnchorWord (visual
// mode) or shown during [Anchor.From, Anchor.To] (audio mode).
type TransparencySet struct {
	Name           string
	Anchor         Anchor
	Transparencies []*img.Bitmap
	// MethodSeparate selects the second display method: each
	// transparency separately on top of the last pre-set page.
	MethodSeparate bool
}

// ProcessPageKind selects how a process-simulation page composes over the
// previous one.
type ProcessPageKind uint8

const (
	// ProcessReplace shows the page as a fresh image.
	ProcessReplace ProcessPageKind = iota
	// ProcessTransparency superimposes the page.
	ProcessTransparency
	// ProcessOverwrite replaces only the pixels the page owns (its mask).
	ProcessOverwrite
)

// ProcessPage is one frame of a process simulation.
type ProcessPage struct {
	Kind  ProcessPageKind
	Image *img.Bitmap
	Mask  *img.Bitmap // ProcessOverwrite only: pixels the overwrite owns
	// VoiceMsg optionally names a VoiceMessage played with the page; the
	// next page "is only shown after the logical audio message has been
	// played" (§2).
	VoiceMsg string
	// VisualMsg optionally names a VisualMessage pinned with the page.
	VisualMsg string
}

// ProcessSim is "an ordered set of consecutive visual pages which is
// displayed one after the other automatically" (§2). The relative speed is
// set at object creation time but may be altered by the user.
type ProcessSim struct {
	Name        string
	Pages       []ProcessPage
	FrameMillis int // designer-set speed
}

// TourRef attaches an image tour plus per-stop logical message names.
type TourRef struct {
	Name string
	Tour img.Tour
}

// Object is a multimedia object.
type Object struct {
	ID    ID
	Title string
	Mode  Mode
	State State
	Attrs map[string]string

	// Parts.
	Text   []*text.Segment
	Voice  []*voice.Part
	Images []*img.Image

	// Doc is the composed presentation flow for the visual presentation
	// form; Stream is its flattened word stream (shared).
	Doc *layout.Doc

	// Interrelationships (the descriptor content).
	VoiceMsgs   []VoiceMessage
	VisualMsgs  []VisualMessage
	Relevants   []RelevantLink
	TranspSets  []TransparencySet
	Tours       []TourRef
	ProcessSims []ProcessSim

	// Related objects: "information about the related objects is kept
	// within the object itself" (§2).
	Related []ID
}

// Stream returns the flattened word stream of the composed document (empty
// if the object has no text flow).
func (o *Object) Stream() []text.FlatWord {
	if o.Doc == nil {
		return nil
	}
	return o.Doc.Stream
}

// PrimaryVoice returns the first voice part, which drives audio-mode
// objects, or nil.
func (o *Object) PrimaryVoice() *voice.Part {
	if len(o.Voice) == 0 {
		return nil
	}
	return o.Voice[0]
}

// ImageByName finds an image part by name, or nil.
func (o *Object) ImageByName(name string) *img.Image {
	for _, im := range o.Images {
		if im.Name == name {
			return im
		}
	}
	return nil
}

// VoiceMsgByName finds a voice logical message by name, or nil.
func (o *Object) VoiceMsgByName(name string) *VoiceMessage {
	for i := range o.VoiceMsgs {
		if o.VoiceMsgs[i].Name == name {
			return &o.VoiceMsgs[i]
		}
	}
	return nil
}

// VisualMsgByName finds a visual logical message by name, or nil.
func (o *Object) VisualMsgByName(name string) *VisualMessage {
	for i := range o.VisualMsgs {
		if o.VisualMsgs[i].Name == name {
			return &o.VisualMsgs[i]
		}
	}
	return nil
}

// Archive transitions the object to the archived state; archived objects
// reject further modification through Mutable.
func (o *Object) Archive() { o.State = Archived }

// Mutable returns an error unless the object is in the editing state.
func (o *Object) Mutable() error {
	if o.State != Editing {
		return fmt.Errorf("object %d: archived objects are not allowed to be modified", o.ID)
	}
	return nil
}

// Validate checks cross-references: message anchors within media bounds,
// image names resolvable, process/tour message names resolvable.
func (o *Object) Validate() error {
	streamLen := len(o.Stream())
	var voiceLen int
	if v := o.PrimaryVoice(); v != nil {
		voiceLen = len(v.Samples)
	}
	checkAnchor := func(what string, a Anchor) error {
		switch a.Media {
		case MediaText:
			if a.From < 0 || a.To < a.From || a.To > streamLen {
				return fmt.Errorf("object %d: %s text anchor [%d,%d] out of stream range %d", o.ID, what, a.From, a.To, streamLen)
			}
		case MediaVoice:
			if a.From < 0 || a.To < a.From || a.To > voiceLen {
				return fmt.Errorf("object %d: %s voice anchor [%d,%d] out of sample range %d", o.ID, what, a.From, a.To, voiceLen)
			}
		case MediaImage:
			if o.ImageByName(a.Image) == nil {
				return fmt.Errorf("object %d: %s anchored to unknown image %q", o.ID, what, a.Image)
			}
		}
		return nil
	}
	for _, m := range o.VoiceMsgs {
		if m.Part == nil {
			return fmt.Errorf("object %d: voice message %q has no audio", o.ID, m.Name)
		}
		if err := checkAnchor("voice message "+m.Name, m.Anchor); err != nil {
			return err
		}
	}
	for _, m := range o.VisualMsgs {
		if m.Strip == nil {
			return fmt.Errorf("object %d: visual message %q has no strip", o.ID, m.Name)
		}
		if err := checkAnchor("visual message "+m.Name, m.Anchor); err != nil {
			return err
		}
	}
	for _, r := range o.Relevants {
		if err := checkAnchor(fmt.Sprintf("relevant link to %d", r.Target), r.Anchor); err != nil {
			return err
		}
	}
	for _, ts := range o.TranspSets {
		if len(ts.Transparencies) == 0 {
			return fmt.Errorf("object %d: transparency set %q empty", o.ID, ts.Name)
		}
		if err := checkAnchor("transparency set "+ts.Name, ts.Anchor); err != nil {
			return err
		}
	}
	for _, tr := range o.Tours {
		if o.ImageByName(tr.Tour.Image) == nil {
			return fmt.Errorf("object %d: tour %q over unknown image %q", o.ID, tr.Name, tr.Tour.Image)
		}
		for i, stop := range tr.Tour.Stops {
			if stop.VoiceMsgRef != "" && o.VoiceMsgByName(stop.VoiceMsgRef) == nil {
				return fmt.Errorf("object %d: tour %q stop %d references unknown voice message %q", o.ID, tr.Name, i, stop.VoiceMsgRef)
			}
			if stop.VisualMsgRef != "" && o.VisualMsgByName(stop.VisualMsgRef) == nil {
				return fmt.Errorf("object %d: tour %q stop %d references unknown visual message %q", o.ID, tr.Name, i, stop.VisualMsgRef)
			}
		}
	}
	for _, ps := range o.ProcessSims {
		if len(ps.Pages) == 0 {
			return fmt.Errorf("object %d: process simulation %q has no pages", o.ID, ps.Name)
		}
		for i, pg := range ps.Pages {
			if pg.Image == nil {
				return fmt.Errorf("object %d: process simulation %q page %d has no image", o.ID, ps.Name, i)
			}
			if pg.Kind == ProcessOverwrite && pg.Mask == nil {
				return fmt.Errorf("object %d: process simulation %q page %d overwrite without mask", o.ID, ps.Name, i)
			}
			if pg.VoiceMsg != "" && o.VoiceMsgByName(pg.VoiceMsg) == nil {
				return fmt.Errorf("object %d: process simulation %q page %d references unknown voice message %q", o.ID, ps.Name, i, pg.VoiceMsg)
			}
			if pg.VisualMsg != "" && o.VisualMsgByName(pg.VisualMsg) == nil {
				return fmt.Errorf("object %d: process simulation %q page %d references unknown visual message %q", o.ID, ps.Name, i, pg.VisualMsg)
			}
		}
	}
	return nil
}
