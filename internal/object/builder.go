package object

import (
	"fmt"

	img "minos/internal/image"
	"minos/internal/layout"
	"minos/internal/text"
	"minos/internal/voice"
)

// Builder assembles a multimedia object in the editing state. It is the
// programmatic counterpart of the interactive editors + formatter pipeline
// (§4) and is used by the examples, the editors and the figure scenarios.
type Builder struct {
	obj *Object
	err error
}

// NewBuilder starts an object with the given identity and driving mode.
func NewBuilder(id ID, title string, mode Mode) *Builder {
	return &Builder{obj: &Object{
		ID:    id,
		Title: title,
		Mode:  mode,
		State: Editing,
		Attrs: map[string]string{},
	}}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return b
}

// Attr records an attribute.
func (b *Builder) Attr(key, value string) *Builder {
	b.obj.Attrs[key] = value
	return b
}

// Text parses MINOS markup into a text segment and composes it into the
// document flow. The first Text call establishes the flow; later calls
// append segments (rarely needed).
func (b *Builder) Text(markup string) *Builder {
	if b.err != nil {
		return b
	}
	seg, err := text.Parse(markup)
	if err != nil {
		return b.fail("builder: %v", err)
	}
	b.obj.Text = append(b.obj.Text, seg)
	if b.obj.Doc == nil {
		b.obj.Doc = layout.FromSegment(seg)
	}
	return b
}

// VoiceFromText synthesizes the markup as speech by the speaker, making it
// the object voice part, and returns the synthesis ground truth through
// marks (optional, may be nil). Manual logical editing down to the given
// unit level is simulated (§2).
func (b *Builder) VoiceFromText(markup string, sp voice.Speaker, rate int, editedDownTo text.Unit, marks *[]voice.WordMark) *Builder {
	if b.err != nil {
		return b
	}
	seg, err := text.Parse(markup)
	if err != nil {
		return b.fail("builder: %v", err)
	}
	syn := voice.Synthesize(text.Flatten(seg), sp, rate)
	syn.Part.Markers = voice.MarkersFromMarks(syn.Marks, editedDownTo)
	b.obj.Voice = append(b.obj.Voice, syn.Part)
	if marks != nil {
		*marks = syn.Marks
	}
	return b
}

// VoicePart attaches an existing voice part.
func (b *Builder) VoicePart(p *voice.Part) *Builder {
	b.obj.Voice = append(b.obj.Voice, p)
	return b
}

// Image attaches an image part.
func (b *Builder) Image(im *img.Image) *Builder {
	if b.obj.ImageByName(im.Name) != nil {
		return b.fail("builder: duplicate image name %q", im.Name)
	}
	b.obj.Images = append(b.obj.Images, im)
	return b
}

// PlaceImageAfterWord splices the image into the visual flow after the
// given global word index.
func (b *Builder) PlaceImageAfterWord(name string, word int) *Builder {
	if b.err != nil {
		return b
	}
	im := b.obj.ImageByName(name)
	if im == nil {
		return b.fail("builder: unknown image %q", name)
	}
	if b.obj.Doc == nil {
		return b.fail("builder: no document flow to place image in")
	}
	if err := b.obj.Doc.InsertAfterWord(word, layout.Picture{Name: name, Raster: im.Rasterize()}); err != nil {
		return b.fail("builder: %v", err)
	}
	return b
}

// PageBreakAfterWord forces a visual page break after the given global
// word index.
func (b *Builder) PageBreakAfterWord(w int) error {
	if b.err != nil {
		return b.err
	}
	if b.obj.Doc == nil {
		b.fail("builder: no document flow for page break")
		return b.err
	}
	if err := b.obj.Doc.InsertAfterWord(w, layout.PageBreak{}); err != nil {
		b.fail("builder: %v", err)
		return b.err
	}
	return nil
}

// VoiceMsg attaches a voice logical message.
func (b *Builder) VoiceMsg(name string, part *voice.Part, anchor Anchor) *Builder {
	b.obj.VoiceMsgs = append(b.obj.VoiceMsgs, VoiceMessage{Name: name, Part: part, Anchor: anchor})
	return b
}

// VisualMsg attaches a visual logical message.
func (b *Builder) VisualMsg(name string, strip *img.Bitmap, anchor Anchor, onceOnly bool) *Builder {
	b.obj.VisualMsgs = append(b.obj.VisualMsgs, VisualMessage{Name: name, Strip: strip, Anchor: anchor, OnceOnly: onceOnly})
	return b
}

// Relevant links a relevant object.
func (b *Builder) Relevant(target ID, anchor Anchor, at img.Point, relevances ...Relevance) *Builder {
	b.obj.Relevants = append(b.obj.Relevants, RelevantLink{Target: target, Anchor: anchor, Relevances: relevances, IndicatorAt: at})
	b.obj.Related = append(b.obj.Related, target)
	return b
}

// TranspSet attaches a transparency set.
func (b *Builder) TranspSet(name string, anchor Anchor, separate bool, sheets ...*img.Bitmap) *Builder {
	b.obj.TranspSets = append(b.obj.TranspSets, TransparencySet{
		Name: name, Anchor: anchor, Transparencies: sheets, MethodSeparate: separate,
	})
	return b
}

// Tour attaches a tour.
func (b *Builder) Tour(name string, t img.Tour) *Builder {
	b.obj.Tours = append(b.obj.Tours, TourRef{Name: name, Tour: t})
	return b
}

// Process attaches a process simulation.
func (b *Builder) Process(name string, frameMillis int, pages ...ProcessPage) *Builder {
	b.obj.ProcessSims = append(b.obj.ProcessSims, ProcessSim{Name: name, Pages: pages, FrameMillis: frameMillis})
	return b
}

// Build validates and returns the object, still in the editing state.
func (b *Builder) Build() (*Object, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.obj.Validate(); err != nil {
		return nil, err
	}
	return b.obj, nil
}

// MustBuild is Build for tests and examples with static inputs.
func (b *Builder) MustBuild() *Object {
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	return o
}
