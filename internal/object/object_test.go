package object

import (
	"strings"
	"testing"

	img "minos/internal/image"
	"minos/internal/text"
	"minos/internal/voice"
)

const bodyMarkup = `.title Case 1042
.chapter Findings
The upper lobe shows a small shadow. It appears benign.
.chapter Plan
Repeat the examination in six months.
`

func xrayImage() *img.Image {
	im := img.New("xray", 60, 40)
	im.Add(img.Graphic{Shape: img.ShapeCircle, Points: []img.Point{{X: 30, Y: 20}}, Radius: 8})
	return im
}

func shortVoice(t testing.TB) *voice.Part {
	t.Helper()
	seg, err := text.Parse("Note the shadow here.\n")
	if err != nil {
		t.Fatal(err)
	}
	return voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000).Part
}

func TestBuilderBasicVisualObject(t *testing.T) {
	o, err := NewBuilder(42, "Case 1042", Visual).
		Attr("author", "Dr. Ho").
		Text(bodyMarkup).
		Image(xrayImage()).
		PlaceImageAfterWord("xray", 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != 42 || o.Mode != Visual || o.State != Editing {
		t.Fatalf("header: %+v", o)
	}
	if o.Attrs["author"] != "Dr. Ho" {
		t.Error("attribute lost")
	}
	if len(o.Stream()) == 0 {
		t.Error("no stream")
	}
	if o.ImageByName("xray") == nil {
		t.Error("image lost")
	}
	if o.ImageByName("missing") != nil {
		t.Error("phantom image")
	}
}

func TestBuilderErrorsPropagate(t *testing.T) {
	_, err := NewBuilder(1, "x", Visual).Text(".bogus\n").Build()
	if err == nil {
		t.Fatal("bad markup accepted")
	}
	_, err = NewBuilder(1, "x", Visual).Text(bodyMarkup).PlaceImageAfterWord("nope", 0).Build()
	if err == nil {
		t.Fatal("unknown image accepted")
	}
	_, err = NewBuilder(1, "x", Visual).
		Image(xrayImage()).Image(xrayImage()).Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate image: %v", err)
	}
	_, err = NewBuilder(1, "x", Visual).Image(xrayImage()).PlaceImageAfterWord("xray", 0).Build()
	if err == nil {
		t.Fatal("image placement without flow accepted")
	}
}

func TestArchiveBlocksMutation(t *testing.T) {
	o := NewBuilder(7, "t", Visual).Text(bodyMarkup).MustBuild()
	if err := o.Mutable(); err != nil {
		t.Fatalf("editing object not mutable: %v", err)
	}
	o.Archive()
	if o.State != Archived {
		t.Fatal("Archive did not change state")
	}
	if err := o.Mutable(); err == nil {
		t.Fatal("archived object reported mutable")
	}
	if o.State.String() != "archived" || Editing.String() != "editing" {
		t.Error("State.String mismatch")
	}
}

func TestAnchorCovers(t *testing.T) {
	a := Anchor{Media: MediaText, From: 5, To: 10}
	for _, p := range []int{5, 7, 10} {
		if !a.Covers(p) {
			t.Errorf("anchor should cover %d", p)
		}
	}
	for _, p := range []int{4, 11} {
		if a.Covers(p) {
			t.Errorf("anchor should not cover %d", p)
		}
	}
	// Coinciding points cover exactly one position.
	pt := Anchor{Media: MediaText, From: 3, To: 3}
	if !pt.Covers(3) || pt.Covers(2) || pt.Covers(4) {
		t.Error("point anchor coverage wrong")
	}
	im := Anchor{Media: MediaImage, Image: "xray"}
	if im.Covers(0) {
		t.Error("image anchor covers positions")
	}
}

func TestValidateAnchorsOutOfRange(t *testing.T) {
	vp := shortVoice(t)
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"text anchor past stream", func() *Builder {
			return NewBuilder(1, "x", Visual).Text(bodyMarkup).
				VoiceMsg("m", vp, Anchor{Media: MediaText, From: 0, To: 100000})
		}},
		{"voice anchor without voice part", func() *Builder {
			return NewBuilder(1, "x", Audio).
				VoiceMsg("m", vp, Anchor{Media: MediaVoice, From: 0, To: 999})
		}},
		{"image anchor unknown", func() *Builder {
			return NewBuilder(1, "x", Visual).Text(bodyMarkup).
				VoiceMsg("m", vp, Anchor{Media: MediaImage, Image: "ghost"})
		}},
		{"negative from", func() *Builder {
			return NewBuilder(1, "x", Visual).Text(bodyMarkup).
				VoiceMsg("m", vp, Anchor{Media: MediaText, From: -1, To: 2})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build().Build(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateMessageContent(t *testing.T) {
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		VoiceMsg("m", nil, Anchor{Media: MediaText, From: 0, To: 1}).Build(); err == nil {
		t.Error("voice message without audio accepted")
	}
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		VisualMsg("m", nil, Anchor{Media: MediaText, From: 0, To: 1}, false).Build(); err == nil {
		t.Error("visual message without strip accepted")
	}
}

func TestValidateTransparencySet(t *testing.T) {
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		TranspSet("t", Anchor{Media: MediaText, From: 0, To: 1}, false).Build(); err == nil {
		t.Error("empty transparency set accepted")
	}
	sheet := img.NewBitmap(10, 10)
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		TranspSet("t", Anchor{Media: MediaText, From: 0, To: 1}, false, sheet).Build(); err != nil {
		t.Errorf("valid transparency set rejected: %v", err)
	}
}

func TestValidateTour(t *testing.T) {
	tour := img.Tour{Image: "ghost", Size: img.Point{X: 10, Y: 10}, Stops: []img.TourStop{{At: img.Point{X: 0, Y: 0}}}}
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).Tour("t", tour).Build(); err == nil {
		t.Error("tour over unknown image accepted")
	}
	tour.Image = "xray"
	tour.Stops[0].VoiceMsgRef = "ghostmsg"
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).Image(xrayImage()).Tour("t", tour).Build(); err == nil {
		t.Error("tour with unknown voice message accepted")
	}
	tour.Stops[0].VoiceMsgRef = ""
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).Image(xrayImage()).Tour("t", tour).Build(); err != nil {
		t.Errorf("valid tour rejected: %v", err)
	}
}

func TestValidateProcessSim(t *testing.T) {
	frame := img.NewBitmap(20, 20)
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		Process("p", 100).Build(); err == nil {
		t.Error("empty process sim accepted")
	}
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		Process("p", 100, ProcessPage{Kind: ProcessOverwrite, Image: frame}).Build(); err == nil {
		t.Error("overwrite page without mask accepted")
	}
	if _, err := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		Process("p", 100, ProcessPage{Kind: ProcessReplace, Image: frame, VoiceMsg: "nope"}).Build(); err == nil {
		t.Error("unknown voice message ref accepted")
	}
	ok := NewBuilder(1, "x", Visual).Text(bodyMarkup).
		Process("p", 100,
			ProcessPage{Kind: ProcessReplace, Image: frame},
			ProcessPage{Kind: ProcessOverwrite, Image: frame, Mask: frame})
	if _, err := ok.Build(); err != nil {
		t.Errorf("valid process sim rejected: %v", err)
	}
}

func TestRelevantRecordsRelated(t *testing.T) {
	o := NewBuilder(1, "parent", Visual).Text(bodyMarkup).
		Relevant(99, Anchor{Media: MediaText, From: 0, To: 3}, img.Point{X: 5, Y: 5},
			Relevance{Media: MediaText, From: 0, To: 10}).
		MustBuild()
	if len(o.Relevants) != 1 || o.Relevants[0].Target != 99 {
		t.Fatal("relevant link lost")
	}
	if len(o.Related) != 1 || o.Related[0] != 99 {
		t.Fatal("related ids not recorded within the object")
	}
}

func TestVoiceFromText(t *testing.T) {
	var marks []voice.WordMark
	o := NewBuilder(2, "spoken", Audio).
		VoiceFromText(bodyMarkup, voice.DefaultSpeaker(), 2000, text.UnitChapter, &marks).
		MustBuild()
	vp := o.PrimaryVoice()
	if vp == nil || len(vp.Samples) == 0 {
		t.Fatal("no voice part")
	}
	if len(marks) == 0 {
		t.Fatal("marks not returned")
	}
	// Chapter-only editing: exactly the chapter markers.
	units := vp.UnitsIdentified()
	if len(units) != 1 || units[0] != text.UnitChapter {
		t.Fatalf("units = %v", units)
	}
}

func TestMessageLookupByName(t *testing.T) {
	vp := shortVoice(t)
	strip := img.NewBitmap(10, 10)
	o := NewBuilder(3, "x", Visual).Text(bodyMarkup).
		VoiceMsg("note", vp, Anchor{Media: MediaText, From: 0, To: 3}).
		VisualMsg("pic", strip, Anchor{Media: MediaText, From: 4, To: 8}, true).
		MustBuild()
	if o.VoiceMsgByName("note") == nil || o.VoiceMsgByName("zzz") != nil {
		t.Error("voice message lookup wrong")
	}
	if o.VisualMsgByName("pic") == nil || o.VisualMsgByName("zzz") != nil {
		t.Error("visual message lookup wrong")
	}
	if !o.VisualMsgs[0].OnceOnly {
		t.Error("once-only flag lost")
	}
}

func TestModeString(t *testing.T) {
	if Visual.String() != "visual" || Audio.String() != "audio" {
		t.Error("Mode.String mismatch")
	}
}
