package index

import (
	"minos/internal/object"
	"minos/internal/text"
)

// SignatureFile is the superimposed-coding access method of the paper's
// era (signature files were a research focus of the MINOS group): each
// object gets a fixed-width bit signature formed by OR-ing the hash codes
// of its terms; a query's signature is tested by bitwise containment.
// False positives are possible (and measured by the harness); false
// negatives are not. Signatures are tiny compared to an inverted index and
// sequential to scan — attractive on 1986 optical storage.
type SignatureFile struct {
	// width is the signature width in 64-bit words.
	width int
	// bitsPerTerm is how many bits each term sets.
	bitsPerTerm int
	sigs        []objSignature
}

type objSignature struct {
	id  object.ID
	sig []uint64
}

// NewSignatureFile builds an empty signature file. widthBits is rounded up
// to a multiple of 64; zero values select 512 bits / 3 bits per term.
func NewSignatureFile(widthBits, bitsPerTerm int) *SignatureFile {
	if widthBits <= 0 {
		widthBits = 512
	}
	if bitsPerTerm <= 0 {
		bitsPerTerm = 3
	}
	return &SignatureFile{width: (widthBits + 63) / 64, bitsPerTerm: bitsPerTerm}
}

// WidthBits returns the signature width in bits.
func (sf *SignatureFile) WidthBits() int { return sf.width * 64 }

// Objects returns the number of signatures stored.
func (sf *SignatureFile) Objects() int { return len(sf.sigs) }

// SizeBytes returns the storage footprint of all signatures.
func (sf *SignatureFile) SizeBytes() int { return len(sf.sigs) * sf.width * 8 }

func (sf *SignatureFile) termBits(tok string, sig []uint64) {
	// Shared with the segment signature block (builder.go) so both
	// encodings agree.
	sigTermBits(tok, sig, sf.bitsPerTerm)
}

// AddObject computes and stores the object's signature over its text words,
// titles and recognized voice utterances (the same term space as the
// inverted index).
func (sf *SignatureFile) AddObject(o *object.Object) {
	sig := make([]uint64, sf.width)
	add := func(tok string) {
		if tok != "" {
			sf.termBits(tok, sig)
		}
	}
	for _, fw := range o.Stream() {
		add(text.NormalizeToken(fw.Word.Text))
	}
	addWords := func(s string) {
		start := -1
		for i := 0; i <= len(s); i++ {
			if i == len(s) || s[i] == ' ' {
				if start >= 0 {
					add(text.NormalizeToken(s[start:i]))
					start = -1
				}
				continue
			}
			if start < 0 {
				start = i
			}
		}
	}
	addWords(o.Title)
	for _, seg := range o.Text {
		addWords(seg.Title)
		for _, ch := range seg.Chapters {
			addWords(ch.Title)
			for _, sec := range ch.Sections {
				addWords(sec.Title)
			}
		}
	}
	for _, vp := range o.Voice {
		for _, u := range vp.Utterances {
			add(u.Token)
		}
	}
	sf.sigs = append(sf.sigs, objSignature{id: o.ID, sig: sig})
}

// Query returns the ids of objects whose signature contains every query
// term's bits. The result may include false positives; callers that need
// exactness verify against the inverted index or the objects themselves.
func (sf *SignatureFile) Query(terms ...string) []object.ID {
	if len(terms) == 0 {
		return nil
	}
	probe := make([]uint64, sf.width)
	any := false
	for _, t := range terms {
		tok := text.NormalizeToken(t)
		if tok == "" {
			continue
		}
		any = true
		sf.termBits(tok, probe)
	}
	if !any {
		return nil
	}
	var out []object.ID
	for _, os := range sf.sigs {
		match := true
		for i, w := range probe {
			if os.sig[i]&w != w {
				match = false
				break
			}
		}
		if match {
			out = append(out, os.id)
		}
	}
	return out
}
