package index

import (
	"strings"
	"testing"
	"testing/quick"

	"minos/internal/object"
	"minos/internal/text"
	"minos/internal/voice"
)

func makeObject(t testing.TB, id object.ID, markup string, vocab []string) *object.Object {
	t.Helper()
	b := object.NewBuilder(id, "t", object.Visual).Text(markup)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if vocab != nil {
		seg, _ := text.Parse(markup)
		syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000)
		r := voice.NewRecognizer(vocab)
		r.HitRate = 1.0
		syn.Part.Utterances = r.Recognize(syn.Marks)
		o.Voice = append(o.Voice, syn.Part)
	}
	return o
}

func TestQueryAND(t *testing.T) {
	ix := New()
	ix.AddObject(makeObject(t, 1, "the lung shadow is benign.\n", nil))
	ix.AddObject(makeObject(t, 2, "the lung is clear today.\n", nil))
	ix.AddObject(makeObject(t, 3, "heart rhythm is regular.\n", nil))

	if got := ix.Query("lung"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Query(lung) = %v", got)
	}
	if got := ix.Query("lung", "shadow"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Query(lung,shadow) = %v", got)
	}
	if got := ix.Query("lung", "rhythm"); len(got) != 0 {
		t.Fatalf("Query(disjoint) = %v", got)
	}
	if got := ix.Query(); got != nil {
		t.Fatalf("empty query = %v", got)
	}
	if got := ix.Query("absent"); len(got) != 0 {
		t.Fatalf("missing term = %v", got)
	}
}

func TestQueryNormalizesTerms(t *testing.T) {
	ix := New()
	ix.AddObject(makeObject(t, 1, "The X-ray looks fine.\n", nil))
	if got := ix.Query("x-ray"); len(got) != 1 {
		t.Fatalf("Query(x-ray) = %v", got)
	}
	if got := ix.Query("XRAY"); len(got) != 1 {
		t.Fatalf("Query(XRAY) = %v", got)
	}
}

func TestAddObjectIdempotent(t *testing.T) {
	ix := New()
	o := makeObject(t, 1, "alpha beta.\n", nil)
	ix.AddObject(o)
	n := len(ix.Postings("alpha"))
	ix.AddObject(o)
	if len(ix.Postings("alpha")) != n {
		t.Fatal("double indexing duplicated postings")
	}
	if ix.Objects() != 1 {
		t.Fatalf("Objects = %d", ix.Objects())
	}
}

func TestVoiceUtterancesIndexed(t *testing.T) {
	ix := New()
	ix.AddObject(makeObject(t, 7, "the shadow appears benign today.\n", []string{"shadow", "benign"}))
	ps := ix.Postings("shadow")
	var textHits, voiceHits int
	for _, p := range ps {
		switch p.Media {
		case object.MediaText:
			textHits++
		case object.MediaVoice:
			voiceHits++
		}
	}
	if textHits != 1 || voiceHits != 1 {
		t.Fatalf("shadow postings: text=%d voice=%d", textHits, voiceHits)
	}
	// Voice-only query still finds the object ("same access methods as
	// in text").
	if got := ix.Query("benign"); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Query(benign) = %v", got)
	}
}

func TestNextPrevIn(t *testing.T) {
	ix := New()
	o := makeObject(t, 1, "alpha beta alpha gamma alpha.\n", nil)
	ix.AddObject(o)
	pos, ok := ix.NextIn(1, object.MediaText, "alpha", -1)
	if !ok || pos != 0 {
		t.Fatalf("first alpha at %d", pos)
	}
	pos, ok = ix.NextIn(1, object.MediaText, "alpha", 0)
	if !ok || pos != 2 {
		t.Fatalf("second alpha at %d", pos)
	}
	pos, ok = ix.NextIn(1, object.MediaText, "alpha", 4)
	if ok {
		t.Fatalf("phantom alpha at %d", pos)
	}
	pos, ok = ix.PrevIn(1, object.MediaText, "alpha", 4)
	if !ok || pos != 2 {
		t.Fatalf("PrevIn = %d", pos)
	}
	if _, ok = ix.PrevIn(1, object.MediaText, "alpha", 0); ok {
		t.Fatal("PrevIn before first found something")
	}
}

func TestNextPhrase(t *testing.T) {
	ix := New()
	o := makeObject(t, 1, "the small shadow is here. another small shadow appears. small print only.\n", nil)
	ix.AddObject(o)
	stream := o.Stream()
	p1 := ix.NextPhrase(1, stream, "small shadow", -1)
	if p1 == -1 || text.NormalizeToken(stream[p1].Word.Text) != "small" {
		t.Fatalf("first phrase at %d", p1)
	}
	p2 := ix.NextPhrase(1, stream, "small shadow", p1)
	if p2 <= p1 {
		t.Fatalf("second phrase at %d", p2)
	}
	if p3 := ix.NextPhrase(1, stream, "small shadow", p2); p3 != -1 {
		t.Fatalf("third phrase at %d", p3)
	}
	if ix.NextPhrase(1, stream, "", -1) != -1 {
		t.Fatal("empty pattern matched")
	}
	// Index and linear scan agree.
	if lin := NextPhraseInStream(stream, "small shadow", -1); lin != p1 {
		t.Fatalf("linear scan %d vs indexed %d", lin, p1)
	}
	if lin := NextPhraseInStream(stream, "small shadow", p1); lin != p2 {
		t.Fatalf("linear scan %d vs indexed %d", lin, p2)
	}
}

func TestNextPhraseCaseAndPunct(t *testing.T) {
	ix := New()
	o := makeObject(t, 1, "The X-ray shows improvement.\n", nil)
	ix.AddObject(o)
	if p := ix.NextPhrase(1, o.Stream(), "x-ray shows", -1); p != 1 {
		t.Fatalf("phrase at %d, want 1", p)
	}
}

func TestBoyerMoore(t *testing.T) {
	cases := []struct {
		s, pat string
		want   []int
	}{
		{"hello world hello", "hello", []int{0, 12}},
		{"aaaa", "aa", []int{0, 1, 2}},
		{"abc", "abcd", nil},
		{"abc", "", nil},
		{"mississippi", "issi", []int{1, 4}},
		{"abc", "xyz", nil},
	}
	for _, c := range cases {
		got := BoyerMoore(c.s, c.pat)
		if len(got) != len(c.want) {
			t.Errorf("BoyerMoore(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("BoyerMoore(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
			}
		}
	}
}

// Property: BoyerMoore agrees with strings.Index-based scanning.
func TestQuickBoyerMooreMatchesStdlib(t *testing.T) {
	f := func(s string, pat string) bool {
		if len(pat) == 0 || len(pat) > len(s) {
			return true
		}
		got := BoyerMoore(s, pat)
		var want []int
		for i := 0; i+len(pat) <= len(s); i++ {
			if s[i:i+len(pat)] == pat {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Also exercise low-alphabet strings where BM shifts are stressed.
	g := func(a, b uint8, n uint8) bool {
		alpha := []byte{'a', 'b'}
		s := make([]byte, int(n)%64+4)
		x := uint32(a)<<8 | uint32(b)
		for i := range s {
			x = x*1664525 + 1013904223
			s[i] = alpha[x>>16&1]
		}
		return f(string(s), string(alpha[a&1])+string(alpha[b&1]))
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPostingsSorted(t *testing.T) {
	ix := New()
	ix.AddObject(makeObject(t, 2, "z z z.\n", nil))
	ix.AddObject(makeObject(t, 1, "z z.\n", nil))
	ps := ix.Postings("z")
	if len(ps) != 5 {
		t.Fatalf("postings = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Obj < ps[i-1].Obj {
			t.Fatal("postings not sorted by object")
		}
		if ps[i].Obj == ps[i-1].Obj && ps[i].Pos <= ps[i-1].Pos {
			t.Fatal("postings not sorted by position")
		}
	}
}

func TestTermsCount(t *testing.T) {
	ix := New()
	ix.AddObject(makeObject(t, 1, "alpha beta alpha.\n", nil))
	// Two body tokens plus the object title token ("t").
	if ix.Terms() != 3 {
		t.Fatalf("Terms = %d, want 3", ix.Terms())
	}
}

func TestTitlesAreQueryable(t *testing.T) {
	ix := New()
	ix.AddObject(makeObject(t, 1, ".title Subway Map\n.chapter Lines\nbody words only here.\n", nil))
	if got := ix.Query("subway"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Query(subway) = %v", got)
	}
	if got := ix.Query("lines"); len(got) != 1 {
		t.Fatalf("Query(chapter title) = %v", got)
	}
}

func TestPhraseLongerThanStream(t *testing.T) {
	ix := New()
	o := makeObject(t, 1, "one two.\n", nil)
	ix.AddObject(o)
	long := strings.Repeat("one two ", 4)
	if p := ix.NextPhrase(1, o.Stream(), long, -1); p != -1 {
		t.Fatalf("overlong phrase matched at %d", p)
	}
}

func TestAttributesAreQueryable(t *testing.T) {
	ix := New()
	o := makeObject(t, 1, "plain body words.\n", nil)
	o.Attrs["author"] = "Christodoulakis"
	o.Attrs["ward"] = "radiology"
	ix.AddObject(o)
	if got := ix.Query("christodoulakis"); len(got) != 1 {
		t.Fatalf("Query(author) = %v", got)
	}
	if got := ix.Query("radiology"); len(got) != 1 {
		t.Fatalf("Query(ward) = %v", got)
	}
}
