package index

import (
	"fmt"
	"strings"

	"minos/internal/object"
	"minos/internal/text"
)

// KindFilter restricts a query to one driving mode.
type KindFilter uint8

const (
	KindAny KindFilter = iota
	KindVisual
	KindAudio
)

// Query is a planned content query: an AND over normalized terms combined
// with attribute predicates from the descriptor (driving mode, archive date
// range). The zero value matches nothing.
type Query struct {
	Terms []string
	Kind  KindFilter
	// DateFrom/DateTo bound the ordinal-encoded date (see ParseDate),
	// inclusive; zero means unbounded on that side.
	DateFrom uint32
	DateTo   uint32
}

// HasFilters reports whether the query carries attribute predicates beyond
// its terms (such a query cannot be served by the plain term-query op).
func (q Query) HasFilters() bool {
	return q.Kind != KindAny || q.DateFrom != 0 || q.DateTo != 0
}

// empty reports whether the query can match nothing at all.
func (q Query) empty() bool {
	return len(q.Terms) == 0 && !q.HasFilters()
}

// matchAttrs applies the attribute predicates to one doc.
func (q *Query) matchAttrs(mode object.Mode, date uint32) bool {
	switch q.Kind {
	case KindVisual:
		if mode != object.Visual {
			return false
		}
	case KindAudio:
		if mode != object.Audio {
			return false
		}
	}
	if q.DateFrom != 0 && date < q.DateFrom {
		return false
	}
	if q.DateTo != 0 && (date > q.DateTo || date == 0) {
		return false
	}
	return true
}

// ParseDate parses a YYYY-MM-DD attribute date into its ordinal encoding
// (year*416 + month*32 + day): not a calendar day count, but strictly
// monotonic in the date, which is all range predicates need. Zero is
// reserved for "no date".
func ParseDate(s string) (uint32, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, fmt.Errorf("index: date %q is not YYYY-MM-DD", s)
	}
	num := func(sub string) (int, bool) {
		v := 0
		for i := 0; i < len(sub); i++ {
			if sub[i] < '0' || sub[i] > '9' {
				return 0, false
			}
			v = v*10 + int(sub[i]-'0')
		}
		return v, true
	}
	y, ok1 := num(s[:4])
	m, ok2 := num(s[5:7])
	d, ok3 := num(s[8:])
	if !ok1 || !ok2 || !ok3 || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("index: date %q is not YYYY-MM-DD", s)
	}
	return uint32(y*416 + m*32 + d), nil
}

// FormatDate is ParseDate's inverse.
func FormatDate(v uint32) string {
	return fmt.Sprintf("%04d-%02d-%02d", v/416, (v%416)/32, v%32)
}

// ParseQuery parses the user-facing query syntax: whitespace-separated
// terms plus the attribute filters kind:visual|audio, after:YYYY-MM-DD and
// before:YYYY-MM-DD (both inclusive).
func ParseQuery(s string) (Query, error) {
	var q Query
	for _, f := range strings.Fields(s) {
		switch {
		case strings.HasPrefix(f, "kind:"):
			switch f[len("kind:"):] {
			case "visual":
				q.Kind = KindVisual
			case "audio":
				q.Kind = KindAudio
			case "any":
				q.Kind = KindAny
			default:
				return Query{}, fmt.Errorf("index: unknown kind %q", f[len("kind:"):])
			}
		case strings.HasPrefix(f, "after:"):
			v, err := ParseDate(f[len("after:"):])
			if err != nil {
				return Query{}, err
			}
			q.DateFrom = v
		case strings.HasPrefix(f, "before:"):
			v, err := ParseDate(f[len("before:"):])
			if err != nil {
				return Query{}, err
			}
			q.DateTo = v
		default:
			if tok := text.NormalizeToken(f); tok != "" {
				q.Terms = append(q.Terms, tok)
			}
		}
	}
	return q, nil
}

// normalizeIfNeeded is text.NormalizeToken with an allocation-free pass
// for tokens that are already normalized (lowercase ASCII alphanumerics) —
// the hot-path case, since every parse front-end normalizes terms before
// they reach the store.
func normalizeIfNeeded(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') {
			continue
		}
		return text.NormalizeToken(s)
	}
	return s
}

// Strategy is the per-segment execution strategy the planner picks.
type Strategy uint8

const (
	// StrategyEmpty: some term is absent from the segment; no matches.
	StrategyEmpty Strategy = iota
	// StrategyIntersect: direct posting intersection, terms ordered by
	// ascending posting length, driver list probed into the others via
	// skip-table seeks.
	StrategyIntersect
	// StrategySignature: superimposed-coding pre-filter — scan the doc
	// signatures for containment of the query probe, then verify the few
	// candidates against the postings. Wins when every term is common.
	StrategySignature
	// StrategyScan: no terms; walk the doc table applying attribute
	// predicates only.
	StrategyScan
)

func (s Strategy) String() string {
	switch s {
	case StrategyIntersect:
		return "intersect"
	case StrategySignature:
		return "signature"
	case StrategyScan:
		return "scan"
	default:
		return "empty"
	}
}

// Plan explains how one segment will be searched (exposed for tests and
// the planner experiment; execution uses the same numbers).
type Plan struct {
	Strategy Strategy
	// TermCounts are the per-term posting counts in execution order
	// (ascending — the rarest term drives the intersection).
	TermCounts []int
	// CostIntersect and CostSignature are the planner's abstract cost
	// estimates (comparable to each other, not to wall time).
	CostIntersect float64
	CostSignature float64
}

// Planner cost weights. A skip-table probe costs a binary search plus at
// most one block decode; a signature containment test costs sigWords word
// compares per doc. The constants only need to get the crossover right:
// intersection wins while the driver list is short relative to the doc
// count; the signature scan wins when every term is common.
const (
	costSeek    = 24.0 // one seekGE into a posting list
	costSigWord = 0.9  // one 64-bit signature word test
	costEmit    = 1.0  // one candidate verification step
)

// planSegment resolves the query's terms against one segment and picks the
// strategy. The resolved term entries are appended to sc.terms (ordered by
// ascending posting count).
func (sc *Searcher) planSegment(g *Segment, q *Query) Plan {
	sc.terms = sc.terms[:0]
	if len(q.Terms) == 0 {
		if q.HasFilters() {
			return Plan{Strategy: StrategyScan}
		}
		return Plan{Strategy: StrategyEmpty}
	}
	for _, tok := range q.Terms {
		te := g.findTerm(tok)
		if te == nil {
			return Plan{Strategy: StrategyEmpty}
		}
		sc.terms = append(sc.terms, te)
	}
	// Ascending posting count: insertion sort on the tiny slice.
	for i := 1; i < len(sc.terms); i++ {
		for j := i; j > 0 && sc.terms[j].count < sc.terms[j-1].count; j-- {
			sc.terms[j], sc.terms[j-1] = sc.terms[j-1], sc.terms[j]
		}
	}
	p := Plan{Strategy: StrategyIntersect}
	if cap(sc.counts) < len(sc.terms) {
		sc.counts = make([]int, 0, len(q.Terms))
	}
	sc.counts = sc.counts[:0]
	for _, te := range sc.terms {
		sc.counts = append(sc.counts, int(te.count))
	}
	p.TermCounts = sc.counts

	driver := float64(sc.terms[0].count)
	p.CostIntersect = driver * float64(len(sc.terms)-1) * costSeek
	if g.sigWords > 0 && len(sc.terms) > 1 {
		// Expected true matches under independence, plus the false-positive
		// tail of the superimposed code (~docs/1024 at the default config).
		sel := 1.0
		for _, te := range sc.terms {
			sel *= float64(te.count) / float64(len(g.ids))
		}
		cand := sel*float64(len(g.ids)) + float64(len(g.ids))/1024
		p.CostSignature = float64(len(g.ids)*g.sigWords)*costSigWord +
			cand*float64(len(sc.terms))*(costSeek+costEmit)
		if p.CostSignature < p.CostIntersect {
			p.Strategy = StrategySignature
		}
	}
	return p
}

// PlanFor returns the plan the searcher would execute against the given
// segment — exposed for tests and EXPERIMENTS.md; the returned TermCounts
// slice is only valid until the next call on the same Searcher.
func (sc *Searcher) PlanFor(g *Segment, q Query) Plan {
	sc.normalize(&q)
	return sc.planSegment(g, &q)
}

// searchSegment appends the segment's matching ids (ascending) to sc.arena.
func (sc *Searcher) searchSegment(g *Segment, q *Query) {
	plan := sc.planSegment(g, q)
	switch plan.Strategy {
	case StrategyEmpty:
	case StrategyScan:
		for i := range g.ids {
			if q.matchAttrs(g.modes[i], g.dates[i]) {
				sc.arena = append(sc.arena, g.ids[i])
			}
		}
	case StrategyIntersect:
		sc.intersectSegment(g, q)
	case StrategySignature:
		sc.signatureSegment(g, q)
	}
}

// intersectSegment drives the shortest posting list through skip-table
// seeks into the others. Allocation-free once the searcher scratch is warm.
func (sc *Searcher) intersectSegment(g *Segment, q *Query) {
	if cap(sc.iters) < len(sc.terms) {
		sc.iters = make([]postingIter, len(sc.terms))
	}
	sc.iters = sc.iters[:len(sc.terms)]
	for i, te := range sc.terms {
		sc.iters[i].reset(g, te)
	}
	drv := &sc.iters[0]
	ord, ok := drv.next()
	for ok {
		matched := true
		for i := 1; i < len(sc.iters); i++ {
			got, stillOK := sc.iters[i].seekGE(ord)
			if !stillOK {
				return
			}
			if got != ord {
				// This list jumped ahead; catch the driver up to it and
				// re-test from the top (seekGE never rewinds, so every
				// list advances monotonically).
				ord, ok = drv.seekGE(got)
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		sc.emit(g, q, ord)
		ord, ok = drv.next()
	}
}

func (sc *Searcher) emit(g *Segment, q *Query, ord uint32) {
	if q.matchAttrs(g.modes[ord], g.dates[ord]) {
		sc.arena = append(sc.arena, g.ids[ord])
	}
}

// signatureSegment scans the signature block for probe containment, then
// verifies each candidate against the postings (the superimposed code
// admits false positives, never false negatives).
func (sc *Searcher) signatureSegment(g *Segment, q *Query) {
	if cap(sc.probe) < g.sigWords {
		sc.probe = make([]uint64, g.sigWords)
	}
	sc.probe = sc.probe[:g.sigWords]
	for i := range sc.probe {
		sc.probe[i] = 0
	}
	for _, tok := range q.Terms {
		sigTermBits(tok, sc.probe, g.bitsPerTerm)
	}
	sc.cand = sc.cand[:0]
	for ord := 0; ord < len(g.ids); ord++ {
		if !q.matchAttrs(g.modes[ord], g.dates[ord]) {
			continue
		}
		row := g.sigs[ord*g.sigWords : (ord+1)*g.sigWords]
		match := true
		for i, w := range sc.probe {
			if row[i]&w != w {
				match = false
				break
			}
		}
		if match {
			sc.cand = append(sc.cand, uint32(ord))
		}
	}
	if len(sc.cand) == 0 {
		return
	}
	// Verify candidates term by term, rarest first; candidates are
	// ascending, so each list is walked forward at most once.
	if cap(sc.iters) < len(sc.terms) {
		sc.iters = make([]postingIter, len(sc.terms))
	}
	sc.iters = sc.iters[:len(sc.terms)]
	for i, te := range sc.terms {
		sc.iters[i].reset(g, te)
	}
	for i := range sc.iters {
		it := &sc.iters[i]
		sc.cand2 = sc.cand2[:0]
		for _, ord := range sc.cand {
			got, ok := it.seekGE(ord)
			if !ok {
				break
			}
			if got == ord {
				sc.cand2 = append(sc.cand2, ord)
			}
		}
		sc.cand, sc.cand2 = sc.cand2, sc.cand
		if len(sc.cand) == 0 {
			return
		}
	}
	for _, ord := range sc.cand {
		sc.arena = append(sc.arena, g.ids[ord])
	}
}
