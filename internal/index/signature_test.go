package index

import (
	"fmt"
	"testing"

	"minos/internal/object"
)

func TestSignatureNoFalseNegatives(t *testing.T) {
	sf := NewSignatureFile(512, 3)
	ix := New()
	for i := 1; i <= 20; i++ {
		o := makeObject(t, object.ID(i), fmt.Sprintf("document %d about topic%d and topic%d here.\n", i, i, i%5), nil)
		sf.AddObject(o)
		ix.AddObject(o)
	}
	// Every inverted-index hit must also be a signature hit.
	for i := 1; i <= 20; i++ {
		term := fmt.Sprintf("topic%d", i%5)
		truth := map[uint64]bool{}
		for _, id := range ix.Query(term) {
			truth[uint64(id)] = true
		}
		got := map[uint64]bool{}
		for _, id := range sf.Query(term) {
			got[uint64(id)] = true
		}
		for id := range truth {
			if !got[id] {
				t.Fatalf("term %q: object %d missed by signature file", term, id)
			}
		}
	}
}

func TestSignatureANDQueries(t *testing.T) {
	sf := NewSignatureFile(1024, 4)
	a := makeObject(t, 1, "alpha beta gamma here.\n", nil)
	b := makeObject(t, 2, "alpha delta epsilon here.\n", nil)
	sf.AddObject(a)
	sf.AddObject(b)
	got := sf.Query("alpha", "beta")
	found := false
	for _, id := range got {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("AND query missed the true match")
	}
	if sf.Query() != nil || sf.Query("...") != nil {
		t.Fatal("empty queries matched")
	}
}

func TestSignatureFalsePositiveRateShrinksWithWidth(t *testing.T) {
	rate := func(widthBits int) float64 {
		sf := NewSignatureFile(widthBits, 3)
		ix := New()
		n := 60
		for i := 1; i <= n; i++ {
			o := makeObject(t, object.ID(i), fmt.Sprintf("filler%d words%d unique%d content.\n", i, i*7, i*13), nil)
			sf.AddObject(o)
			ix.AddObject(o)
		}
		fp, total := 0, 0
		for i := 1; i <= n; i++ {
			term := fmt.Sprintf("unique%d", i*13)
			truth := map[uint64]bool{}
			for _, id := range ix.Query(term) {
				truth[uint64(id)] = true
			}
			for _, id := range sf.Query(term) {
				total++
				if !truth[uint64(id)] {
					fp++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(fp) / float64(total)
	}
	narrow := rate(64)
	wide := rate(2048)
	if wide > narrow {
		t.Fatalf("false positives did not shrink with width: %.3f -> %.3f", narrow, wide)
	}
	if wide > 0.05 {
		t.Fatalf("wide signature false-positive rate %.3f too high", wide)
	}
}

func TestSignatureSizeAccounting(t *testing.T) {
	sf := NewSignatureFile(512, 3)
	if sf.WidthBits() != 512 {
		t.Fatalf("WidthBits = %d", sf.WidthBits())
	}
	sf.AddObject(makeObject(t, 1, "one.\n", nil))
	sf.AddObject(makeObject(t, 2, "two.\n", nil))
	if sf.Objects() != 2 {
		t.Fatalf("Objects = %d", sf.Objects())
	}
	if sf.SizeBytes() != 2*512/8 {
		t.Fatalf("SizeBytes = %d", sf.SizeBytes())
	}
	// Defaults.
	d := NewSignatureFile(0, 0)
	if d.WidthBits() != 512 {
		t.Fatalf("default width = %d", d.WidthBits())
	}
}

func TestSignatureIndexesVoiceAndTitles(t *testing.T) {
	sf := NewSignatureFile(1024, 3)
	o := makeObject(t, 5, ".title Spoken Notes\nbody words here.\n", []string{"shadow"})
	// Inject an utterance token not present in the text.
	o.Voice[0].Utterances = append(o.Voice[0].Utterances[:0], o.Voice[0].Utterances...)
	sf.AddObject(o)
	if len(sf.Query("spoken")) != 1 {
		t.Fatal("title term missed")
	}
}
