package index

import (
	"encoding/binary"
	"fmt"

	"minos/internal/object"
	"minos/internal/pool"
)

// The segmented index (DESIGN.md §12) stores the content index as a set of
// sealed, immutable segment files. Each segment covers a disjoint set of
// objects and is fully self-contained: a sorted doc table (object id, media
// mode, date) for attribute predicates, an optional superimposed-coding
// signature block for cheap conjunctive pre-filtering, and a sorted term
// dictionary whose postings are delta-encoded doc ordinals in skip blocks.
// Sealed segments never change — the same WORM argument that makes shard
// replicas trivially consistent (DESIGN.md §9) applies: a replica serving
// the same sealed segment serves it byte-identically.
//
// Segment layout (big-endian):
//
//	magic        "MSG1"
//	version      u8  (1)
//	bitsPerTerm  u8  (signature bits set per term; 0 iff sigWords == 0)
//	sigWords     u16 (per-doc signature width in 64-bit words; 0 = none)
//	docCount     u32
//	doc table    docCount x { id u64, mode u8, date u32 }   (ids strictly ascending)
//	sig block    docCount x sigWords x u64
//	termCount    u32
//	dictionary   termCount x { len u16, bytes, postings u32, postBytes u32 }
//	             (terms strictly ascending, bytewise)
//	postings     termCount x { skip table, delta bytes }  in dictionary order
//
// A term's postings are strictly ascending doc ordinals, uvarint
// delta-encoded in blocks of skipBlock entries. Each block is preceded in
// the skip table by { lastOrd u32, endOff u32 } (endOff relative to the
// term's delta bytes), so seekGE can binary-search the skip table and
// decode at most one block. Deltas are taken against the previous block's
// lastOrd (-1 for the first block), so every delta is >= 1 and each block
// decodes independently.

const (
	segMagic   = "MSG1"
	segVersion = 1
	// segHeader is the fixed prefix before the doc table.
	segHeader = 4 + 1 + 1 + 2 + 4
	// segDocEntry is the doc-table entry size: id u64, mode u8, date u32.
	segDocEntry = 13
	// skipBlock is the posting count per skip block.
	skipBlock = 128
	// segMinTermEntry is the smallest possible dictionary entry.
	segMinTermEntry = 2 + 4 + 4
)

// Segment is one sealed, immutable index segment. All fields are read-only
// after ParseSegment; a Segment may be shared freely across goroutines.
type Segment struct {
	blob []byte

	ids   []object.ID
	modes []object.Mode
	dates []uint32

	sigWords    int
	bitsPerTerm int
	sigs        []uint64 // len = len(ids)*sigWords

	terms    []termEntry
	postings int
}

// termEntry locates one dictionary term inside the segment blob.
type termEntry struct {
	nameOff uint32
	nameLen uint32
	count   uint32 // posting count
	skipOff uint32 // absolute offset of the skip table
	skipN   uint32
	postOff uint32 // absolute offset of the delta bytes
	postLen uint32
}

// Docs returns the number of objects the segment covers.
func (g *Segment) Docs() int { return len(g.ids) }

// Terms returns the number of distinct terms in the dictionary.
func (g *Segment) Terms() int { return len(g.terms) }

// Postings returns the total posting count.
func (g *Segment) Postings() int { return g.postings }

// Bytes returns the sealed segment file. Callers must not modify it.
func (g *Segment) Bytes() []byte { return g.blob }

// name returns the dictionary bytes of term t.
func (g *Segment) name(t *termEntry) []byte {
	return g.blob[t.nameOff : t.nameOff+t.nameLen]
}

// findTerm binary-searches the dictionary. It allocates nothing.
func (g *Segment) findTerm(tok string) *termEntry {
	lo, hi := 0, len(g.terms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpBytesStr(g.name(&g.terms[mid]), tok) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.terms) && cmpBytesStr(g.name(&g.terms[lo]), tok) == 0 {
		return &g.terms[lo]
	}
	return nil
}

// contains reports whether the segment's doc table has the id.
func (g *Segment) contains(id object.ID) bool {
	lo, hi := 0, len(g.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(g.ids) && g.ids[lo] == id
}

// cmpBytesStr compares b to s without converting either.
func cmpBytesStr(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// postingIter walks one term's posting list. The zero value is empty; reset
// positions it before the first posting. It is a value type and allocates
// nothing.
type postingIter struct {
	skips []byte // skip table, skipN x 8 bytes
	data  []byte // delta bytes
	n     int    // total postings

	idx   int    // postings consumed
	off   int    // byte offset into data
	block int    // current block index
	prev  int64  // previous ordinal (-1 before the first)
	cur   uint32 // last ordinal returned
}

func (it *postingIter) reset(g *Segment, t *termEntry) {
	it.skips = g.blob[t.skipOff : t.skipOff+8*t.skipN]
	it.data = g.blob[t.postOff : t.postOff+t.postLen]
	it.n = int(t.count)
	it.idx, it.off, it.block = 0, 0, 0
	it.prev, it.cur = -1, 0
}

func (it *postingIter) skipLastOrd(i int) uint32 {
	return binary.BigEndian.Uint32(it.skips[i*8:])
}

func (it *postingIter) skipEndOff(i int) uint32 {
	return binary.BigEndian.Uint32(it.skips[i*8+4:])
}

// next returns the next ordinal, or false when the list is exhausted.
func (it *postingIter) next() (uint32, bool) {
	if it.idx >= it.n {
		return 0, false
	}
	d, w := uvarint(it.data[it.off:])
	if w <= 0 || d == 0 {
		// A sealed segment never decodes here (ParseSegment walked every
		// posting); treat corruption as end-of-list rather than panicking.
		it.idx = it.n
		return 0, false
	}
	it.off += w
	it.prev += int64(d)
	it.cur = uint32(it.prev)
	it.idx++
	if it.idx%skipBlock == 0 {
		it.block = it.idx / skipBlock
	}
	return it.cur, true
}

// seekGE advances to the first ordinal >= t, binary-searching the skip
// table so at most one block is decoded. It may only move forward.
func (it *postingIter) seekGE(t uint32) (uint32, bool) {
	if it.idx > 0 && it.cur >= t {
		return it.cur, true
	}
	if it.idx >= it.n {
		return 0, false
	}
	// First block whose lastOrd >= t.
	nBlocks := (it.n + skipBlock - 1) / skipBlock
	lo, hi := it.block, nBlocks
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if it.skipLastOrd(mid) < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= nBlocks {
		it.idx = it.n
		return 0, false
	}
	if lo > it.block {
		// Jump: the block starts where the previous one ended.
		it.block = lo
		it.idx = lo * skipBlock
		if lo == 0 {
			it.off, it.prev = 0, -1
		} else {
			it.off = int(it.skipEndOff(lo - 1))
			it.prev = int64(it.skipLastOrd(lo - 1))
		}
	}
	for {
		v, ok := it.next()
		if !ok {
			return 0, false
		}
		if v >= t {
			return v, true
		}
	}
}

// uvarint is binary.Uvarint restricted to 32-bit values; it returns w <= 0
// on truncated or oversized input.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			v |= uint64(c) << s
			if v > 0xFFFFFFFF {
				return 0, -1
			}
			return v, i + 1
		}
		v |= uint64(c&0x7F) << s
		s += 7
		if s > 35 {
			return 0, -1
		}
	}
	return 0, 0
}

// segParts is the pre-encoding form of a segment: sorted docs, their
// signature rows, and the sorted term -> ordinal lists. Both the memtable
// seal and the background merge produce one.
type segParts struct {
	ids   []object.ID
	modes []object.Mode
	dates []uint32
	sigs  []uint64 // len(ids)*sigWords, or nil when sigWords == 0
	terms []partTerm
}

type partTerm struct {
	name []byte
	ords []uint32
}

// encodeParts seals the parts into a segment file. The doc table must be
// strictly ascending by id and the terms strictly ascending by name; every
// ordinal list must be strictly ascending. The output depends only on the
// parts and (sigWords, bitsPerTerm) — never on timing or scheduling — which
// is what makes sealed segments bit-identical per (corpus, config).
func encodeParts(p *segParts, sigWords, bitsPerTerm int) []byte {
	if sigWords == 0 {
		bitsPerTerm = 0
	}
	// Stage the delta bytes first (into a pooled buffer) so the dictionary
	// can record exact postBytes, then assemble the blob in one pass.
	staging := pool.Bytes.Get(1 << 12)[:0]
	defer pool.Bytes.Put(staging)
	type stagedTerm struct {
		post0, post1 int // extent in staging
		skip0, skip1 int // extent in skips
	}
	staged := make([]stagedTerm, len(p.terms))
	var skips []uint32 // flattened {lastOrd, endOff} pairs
	for ti := range p.terms {
		ords := p.terms[ti].ords
		st := stagedTerm{post0: len(staging), skip0: len(skips)}
		prev := int64(-1)
		base := len(staging)
		for i, ord := range ords {
			staging = appendUvarint(staging, uint64(int64(ord)-prev))
			prev = int64(ord)
			if (i+1)%skipBlock == 0 || i == len(ords)-1 {
				skips = append(skips, ord, uint32(len(staging)-base))
			}
		}
		st.post1 = len(staging)
		st.skip1 = len(skips)
		staged[ti] = st
	}

	size := segHeader + segDocEntry*len(p.ids) + 8*len(p.sigs) + 4
	for ti := range p.terms {
		size += 2 + len(p.terms[ti].name) + 4 + 4
		size += 4*(staged[ti].skip1-staged[ti].skip0) + (staged[ti].post1 - staged[ti].post0)
	}

	out := make([]byte, 0, size)
	out = append(out, segMagic...)
	out = append(out, segVersion, byte(bitsPerTerm))
	out = binary.BigEndian.AppendUint16(out, uint16(sigWords))
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.ids)))
	for i, id := range p.ids {
		out = binary.BigEndian.AppendUint64(out, uint64(id))
		out = append(out, byte(p.modes[i]))
		out = binary.BigEndian.AppendUint32(out, p.dates[i])
	}
	for _, w := range p.sigs {
		out = binary.BigEndian.AppendUint64(out, w)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.terms)))
	for ti := range p.terms {
		out = binary.BigEndian.AppendUint16(out, uint16(len(p.terms[ti].name)))
		out = append(out, p.terms[ti].name...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(p.terms[ti].ords)))
		out = binary.BigEndian.AppendUint32(out, uint32(staged[ti].post1-staged[ti].post0))
	}
	for ti := range p.terms {
		for i := staged[ti].skip0; i < staged[ti].skip1; i++ {
			out = binary.BigEndian.AppendUint32(out, skips[i])
		}
		out = append(out, staging[staged[ti].post0:staged[ti].post1]...)
	}
	return out
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// ParseSegment validates a segment file and builds its in-memory views.
// Every count is checked against the remaining bytes before anything is
// sized from it, and every posting is decoded once so queries can iterate
// without error paths. The blob is retained; callers must not modify it.
func ParseSegment(blob []byte) (*Segment, error) {
	if len(blob) < segHeader {
		return nil, fmt.Errorf("index: segment short header (%d bytes)", len(blob))
	}
	if string(blob[:4]) != segMagic {
		return nil, fmt.Errorf("index: bad segment magic")
	}
	if blob[4] != segVersion {
		return nil, fmt.Errorf("index: unsupported segment version %d", blob[4])
	}
	bitsPerTerm := int(blob[5])
	sigWords := int(binary.BigEndian.Uint16(blob[6:]))
	docCount := int(binary.BigEndian.Uint32(blob[8:]))
	pos := segHeader
	rest := len(blob) - pos
	if docCount > rest/segDocEntry {
		return nil, fmt.Errorf("index: doc count %d exceeds segment size", docCount)
	}
	if (sigWords == 0) != (bitsPerTerm == 0) {
		return nil, fmt.Errorf("index: inconsistent signature config (%d words, %d bits/term)", sigWords, bitsPerTerm)
	}
	g := &Segment{
		blob:        blob,
		sigWords:    sigWords,
		bitsPerTerm: bitsPerTerm,
		ids:         make([]object.ID, docCount),
		modes:       make([]object.Mode, docCount),
		dates:       make([]uint32, docCount),
	}
	for i := 0; i < docCount; i++ {
		id := object.ID(binary.BigEndian.Uint64(blob[pos:]))
		mode := blob[pos+8]
		if i > 0 && id <= g.ids[i-1] {
			return nil, fmt.Errorf("index: doc table not strictly ascending at %d", i)
		}
		if mode > uint8(object.Audio) {
			return nil, fmt.Errorf("index: doc %d has invalid mode %d", i, mode)
		}
		g.ids[i] = id
		g.modes[i] = object.Mode(mode)
		g.dates[i] = binary.BigEndian.Uint32(blob[pos+9:])
		pos += segDocEntry
	}
	if sigWords > 0 {
		n := docCount * sigWords
		if n > (len(blob)-pos)/8 {
			return nil, fmt.Errorf("index: signature block exceeds segment size")
		}
		g.sigs = make([]uint64, n)
		for i := range g.sigs {
			g.sigs[i] = binary.BigEndian.Uint64(blob[pos:])
			pos += 8
		}
	}
	if len(blob)-pos < 4 {
		return nil, fmt.Errorf("index: segment truncated before dictionary")
	}
	termCount := int(binary.BigEndian.Uint32(blob[pos:]))
	pos += 4
	if termCount > (len(blob)-pos)/segMinTermEntry {
		return nil, fmt.Errorf("index: term count %d exceeds segment size", termCount)
	}
	g.terms = make([]termEntry, termCount)
	for ti := 0; ti < termCount; ti++ {
		if len(blob)-pos < 2 {
			return nil, fmt.Errorf("index: dictionary truncated at term %d", ti)
		}
		nameLen := int(binary.BigEndian.Uint16(blob[pos:]))
		pos += 2
		if nameLen == 0 || nameLen > len(blob)-pos {
			return nil, fmt.Errorf("index: term %d name length %d out of range", ti, nameLen)
		}
		nameOff := pos
		pos += nameLen
		if len(blob)-pos < 8 {
			return nil, fmt.Errorf("index: dictionary truncated at term %d", ti)
		}
		count := binary.BigEndian.Uint32(blob[pos:])
		postLen := binary.BigEndian.Uint32(blob[pos+4:])
		pos += 8
		if count == 0 || uint64(count) > uint64(docCount) {
			return nil, fmt.Errorf("index: term %d posting count %d out of range", ti, count)
		}
		if uint64(postLen) > uint64(len(blob)) {
			return nil, fmt.Errorf("index: term %d posting bytes %d out of range", ti, postLen)
		}
		t := &g.terms[ti]
		t.nameOff = uint32(nameOff)
		t.nameLen = uint32(nameLen)
		t.count = count
		t.skipN = (count + skipBlock - 1) / skipBlock
		t.postLen = postLen
		if ti > 0 {
			prev := &g.terms[ti-1]
			if cmpBytes(g.name(prev), g.name(t)) >= 0 {
				return nil, fmt.Errorf("index: dictionary not strictly ascending at term %d", ti)
			}
		}
		g.postings += int(count)
	}
	// Locate and validate the postings areas.
	for ti := range g.terms {
		t := &g.terms[ti]
		need := int(8*t.skipN) + int(t.postLen)
		if need > len(blob)-pos {
			return nil, fmt.Errorf("index: postings truncated at term %d", ti)
		}
		t.skipOff = uint32(pos)
		pos += int(8 * t.skipN)
		t.postOff = uint32(pos)
		pos += int(t.postLen)
		if err := g.validatePostings(t); err != nil {
			return nil, fmt.Errorf("index: term %d: %w", ti, err)
		}
	}
	if pos != len(blob) {
		return nil, fmt.Errorf("index: %d trailing bytes after postings", len(blob)-pos)
	}
	return g, nil
}

// validatePostings decodes every posting of the term once, checking that
// ordinals are strictly ascending, in range, and consistent with the skip
// table. After this, query iterators never see malformed input.
func (g *Segment) validatePostings(t *termEntry) error {
	data := g.blob[t.postOff : t.postOff+t.postLen]
	skips := g.blob[t.skipOff : t.skipOff+8*t.skipN]
	prev := int64(-1)
	off := 0
	base := 0
	for i := 0; i < int(t.count); i++ {
		d, w := uvarint(data[off:])
		if w <= 0 || d == 0 {
			return fmt.Errorf("bad posting delta at %d", i)
		}
		off += w
		prev += int64(d)
		if prev >= int64(len(g.ids)) {
			return fmt.Errorf("posting ordinal %d out of range", prev)
		}
		if (i+1)%skipBlock == 0 || i == int(t.count)-1 {
			bi := i / skipBlock
			lastOrd := binary.BigEndian.Uint32(skips[bi*8:])
			endOff := binary.BigEndian.Uint32(skips[bi*8+4:])
			if uint32(prev) != lastOrd {
				return fmt.Errorf("skip entry %d lastOrd %d != %d", bi, lastOrd, prev)
			}
			if int(endOff) != off-base {
				return fmt.Errorf("skip entry %d endOff %d != %d", bi, endOff, off-base)
			}
		}
	}
	if off != len(data) {
		return fmt.Errorf("%d trailing posting bytes", len(data)-off)
	}
	return nil
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
