package index

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"minos/internal/object"
	"minos/internal/pool"
)

// refQuery brute-forces the expected result over the generator.
func refQuery(n int, q Query) []object.ID {
	var out []object.ID
	var d Doc
	for i := 0; i < n; i++ {
		testDoc(i, &d)
		if !q.matchAttrs(d.Mode, d.Date) {
			continue
		}
		all := true
		for _, tok := range q.Terms {
			found := false
			for _, dt := range d.Terms {
				if dt == tok {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all && !q.empty() {
			out = append(out, d.ID)
		}
	}
	return out
}

func eqIDs(a, b []object.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var storeQueries = []Query{
	{Terms: []string{"alpha"}},
	{Terms: []string{"even", "alpha"}},
	{Terms: []string{"rareterm"}},
	{Terms: []string{"rareterm", "even"}},
	{Terms: []string{"w001", "w002"}},
	{Terms: []string{"alpha", "w003", "w004"}},
	{Terms: []string{"nosuchterm", "alpha"}},
	{Terms: []string{"alpha"}, Kind: KindAudio},
	{Terms: []string{"even"}, Kind: KindVisual, DateFrom: 2000*416 + 32 + 100},
	{Terms: []string{"alpha"}, DateFrom: 2000*416 + 32 + 200, DateTo: 2000*416 + 32 + 700},
	{Kind: KindAudio},
	{DateFrom: 2000*416 + 32 + 1, DateTo: 2000*416 + 32 + 50},
	{},
}

// TestStoreSealAndQuery drives the store through several seals and checks
// planned search, naive search and the brute-force reference agree on a
// battery of term/attribute queries — including with a part-full memtable.
func TestStoreSealAndQuery(t *testing.T) {
	const n = 1100
	s := NewStore(Config{MemtableDocs: 128, MergeFanIn: 1 << 30}) // no merges here
	var d Doc
	for i := 0; i < n; i++ {
		testDoc(i, &d)
		if !s.Add(&d) {
			t.Fatalf("Add(%d) rejected", i)
		}
	}
	if st := s.Stats(); st.Docs != n || st.Segments == 0 {
		t.Fatalf("stats = %+v, want %d docs over >0 segments", st, n)
	}
	for qi, q := range storeQueries {
		want := refQuery(n, q)
		got := s.Search(q, nil)
		if !eqIDs(got, want) {
			t.Fatalf("query %d (%+v): got %d ids, want %d\n got=%v\nwant=%v", qi, q, len(got), len(want), got, want)
		}
		naive := s.SearchNaive(q)
		if !eqIDs(naive, want) {
			t.Fatalf("query %d (%+v): naive got %d ids, want %d", qi, q, len(naive), len(want))
		}
	}
}

// TestStoreDuplicateAdd verifies the legacy no-op semantics across the
// memtable and sealed segments.
func TestStoreDuplicateAdd(t *testing.T) {
	s := NewStore(Config{MemtableDocs: 8})
	var d Doc
	testDoc(1, &d)
	if !s.Add(&d) {
		t.Fatal("first add rejected")
	}
	testDoc(1, &d)
	if s.Add(&d) {
		t.Fatal("duplicate accepted in memtable")
	}
	s.Seal()
	testDoc(1, &d)
	if s.Add(&d) {
		t.Fatal("duplicate accepted after seal")
	}
}

// TestStoreMergeCompacts forces background merges and checks the segment
// count drops while every query's results are unchanged.
func TestStoreMergeCompacts(t *testing.T) {
	const n = 1100
	s := NewStore(Config{MemtableDocs: 64, MergeFanIn: 4})
	var d Doc
	for i := 0; i < n; i++ {
		testDoc(i, &d)
		s.Add(&d)
	}
	s.WaitMerges()
	st := s.Stats()
	if st.Merges == 0 {
		t.Fatalf("no merges ran: %+v", st)
	}
	if st.Segments >= int(st.Sealed) {
		t.Fatalf("merge did not compact: %+v", st)
	}
	if st.Docs != n {
		t.Fatalf("docs = %d after merge, want %d", st.Docs, n)
	}
	for qi, q := range storeQueries {
		want := refQuery(n, q)
		if got := s.Search(q, nil); !eqIDs(got, want) {
			t.Fatalf("query %d after merge: got %d ids, want %d", qi, len(got), len(want))
		}
	}
}

// TestStoreMergeUnderConcurrentQuery publishes continuously (forcing seals
// and background merges) while query goroutines hammer the store: results
// must always be well-formed (ascending, unique) and must include every
// doc whose publish completed before the query started. Run under -race
// this is the merge-vs-query safety proof.
func TestStoreMergeUnderConcurrentQuery(t *testing.T) {
	const n = 3000
	s := NewStore(Config{MemtableDocs: 32, MergeFanIn: 3})
	var published atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]object.ID, 0, 4096)
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := published.Load()
				dst = s.Search(Query{Terms: []string{"alpha"}}, dst[:0])
				if int64(len(dst)) < floor {
					t.Errorf("query saw %d docs, %d were published", len(dst), floor)
					return
				}
				for i := 1; i < len(dst); i++ {
					if dst[i] <= dst[i-1] {
						t.Errorf("result not strictly ascending at %d", i)
						return
					}
				}
			}
		}()
	}
	var d Doc
	for i := 0; i < n; i++ {
		testDoc(i, &d)
		if s.Add(&d) {
			published.Add(1)
		}
	}
	close(stop)
	wg.Wait()
	s.WaitMerges()
	want := refQuery(n, Query{Terms: []string{"alpha"}})
	if got := s.Search(Query{Terms: []string{"alpha"}}, nil); !eqIDs(got, want) {
		t.Fatalf("final result %d ids, want %d", len(got), len(want))
	}
}

// TestBuildSegmentsParallelDeterministic bulk-builds the same corpus at
// several worker counts: the segment files must be byte-identical, and
// queries over the built store must match the incremental store.
func TestBuildSegmentsParallelDeterministic(t *testing.T) {
	const n = 1000
	cfg := Config{MemtableDocs: 128}
	segs1, st1, err := BuildSegments(n, testDoc, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		segsN, stN, err := BuildSegments(n, testDoc, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(segsN) != len(segs1) {
			t.Fatalf("workers=%d: %d segments, want %d", workers, len(segsN), len(segs1))
		}
		for i := range segs1 {
			if string(segs1[i].Bytes()) != string(segsN[i].Bytes()) {
				t.Fatalf("workers=%d: segment %d bytes differ", workers, i)
			}
		}
		if stN.Postings != st1.Postings || stN.Docs != st1.Docs {
			t.Fatalf("workers=%d: stats %+v vs %+v", workers, stN, st1)
		}
	}
	store, _, err := BuildStore(n, testDoc, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range storeQueries {
		want := refQuery(n, q)
		if got := store.Search(q, nil); !eqIDs(got, want) {
			t.Fatalf("bulk store query %d: got %d ids, want %d", qi, len(got), len(want))
		}
	}
}

// TestBuildSegmentsDuplicateID surfaces generator bugs instead of sealing
// a corrupt segment.
func TestBuildSegmentsDuplicateID(t *testing.T) {
	gen := func(i int, d *Doc) {
		testDoc(0, d) // same id every time
	}
	if _, _, err := BuildSegments(300, gen, Config{MemtableDocs: 64}, 2); err == nil {
		t.Fatal("duplicate ids not rejected")
	}
}

// TestAllocBuilderAdd guards the hot tokenize/post path of the parallel
// build and the publish memtable: adding a doc to a warm builder must not
// allocate.
func TestAllocBuilderAdd(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("alloc guards are skipped under the race detector")
	}
	b := newBuilder(Config{}.withDefaults())
	docs := make([]Doc, 256)
	for i := range docs {
		testDoc(i, &docs[i])
		docs[i].Terms = append([]string(nil), docs[i].Terms...)
	}
	for pass := 0; pass < 2; pass++ { // warm maps and slices
		b.reset()
		for i := range docs {
			b.add(&docs[i])
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		b.reset()
		for i := range docs {
			b.add(&docs[i])
		}
	})
	if avg > 0 {
		t.Fatalf("warm builder pass allocates %.1f objects for %d docs, want 0", avg, len(docs))
	}
}

// TestAllocSearchWarm guards the warm posting-intersection path: a planned
// query over sealed segments with a warm searcher and a capacious dst must
// allocate nothing.
func TestAllocSearchWarm(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	store, _, err := BuildStore(2000, testDoc, Config{MemtableDocs: 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Terms: []string{"rareterm", "even", "alpha"}},
		{Terms: []string{"w001", "w002"}},
		{Terms: []string{"even", "alpha"}, Kind: KindAudio},
	}
	dst := make([]object.ID, 0, 4096)
	for i := 0; i < 4; i++ { // warm the searcher pool and scratch
		for _, q := range queries {
			dst = store.Search(q, dst[:0])
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, q := range queries {
			dst = store.Search(q, dst[:0])
		}
	})
	if avg > 0 {
		t.Fatalf("warm Search allocates %.2f objects/run, want 0", avg)
	}
}

// TestMergeSegmentsPreservesSignatures checks merged segments still serve
// the signature strategy (rows are copied, not recomputed).
func TestMergeSegmentsPreservesSignatures(t *testing.T) {
	cfg := Config{MemtableDocs: 64}.withDefaults()
	segsA, _, err := BuildSegments(300, testDoc, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob := mergeSegments(segsA, cfg)
	merged, err := ParseSegment(blob)
	if err != nil {
		t.Fatalf("merged segment invalid: %v", err)
	}
	if merged.Docs() != 300 {
		t.Fatalf("merged docs = %d", merged.Docs())
	}
	// Each doc's signature row must equal the row in its source segment.
	for _, g := range segsA {
		for i, id := range g.ids {
			mo := ordOf(merged, id)
			a := g.sigs[i*g.sigWords : (i+1)*g.sigWords]
			b := merged.sigs[int(mo)*merged.sigWords : (int(mo)+1)*merged.sigWords]
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("doc %d signature differs after merge", id)
				}
			}
		}
	}
	// And merging is deterministic.
	if string(mergeSegments(segsA, cfg)) != string(blob) {
		t.Fatal("merge not deterministic")
	}
}

func BenchmarkSearchPlanned(b *testing.B) {
	store, _, err := BuildStore(20000, testDoc, Config{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := Query{Terms: []string{"rareterm", "even", "alpha"}}
	dst := make([]object.ID, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = store.Search(q, dst[:0])
	}
}

func BenchmarkSearchNaive(b *testing.B) {
	store, _, err := BuildStore(20000, testDoc, Config{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := Query{Terms: []string{"rareterm", "even", "alpha"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = store.SearchNaive(q)
	}
}

var _ = fmt.Sprintf // keep fmt for debug helpers
