package index

import (
	"fmt"
	"testing"

	"minos/internal/object"
)

func benchIndex(b *testing.B, n int) (*Index, *SignatureFile) {
	b.Helper()
	ix := New()
	sf := NewSignatureFile(512, 3)
	for i := 1; i <= n; i++ {
		src := fmt.Sprintf("document %d speaks about topic%d and shared words here.\n", i, i%13)
		o, err := object.NewBuilder(object.ID(i), fmt.Sprintf("doc %d", i), object.Visual).Text(src).Build()
		if err != nil {
			b.Fatal(err)
		}
		ix.AddObject(o)
		sf.AddObject(o)
	}
	return ix, sf
}

func BenchmarkInvertedQuery(b *testing.B) {
	ix, _ := benchIndex(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query("topic7", "shared")
	}
}

func BenchmarkSignatureQuery(b *testing.B) {
	_, sf := benchIndex(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf.Query("topic7", "shared")
	}
}

func BenchmarkBoyerMooreScan(b *testing.B) {
	s := ""
	for i := 0; i < 200; i++ {
		s += fmt.Sprintf("document %d speaks about many shared words here. ", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoyerMoore(s, "shared words")
	}
}
