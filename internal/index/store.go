package index

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"minos/internal/object"
)

// Store is the segmented content index (DESIGN.md §12): docs accumulate in
// a bounded mutable memtable that seals into immutable sorted segments; a
// background merge compacts small segments. Queries are lock-free over an
// epoch-swapped immutable snapshot of the sealed segments (plus a short
// read-lock on the memtable), so they never serialize with publishes or
// with each other — and never block on a merge.
type Store struct {
	cfg Config

	// mu serializes writers: Add, seal and merge swap-in.
	mu sync.Mutex
	// memMu guards the memtable against concurrent readers; writers hold
	// both (mu first).
	memMu sync.RWMutex
	mem   *builder

	// snap is the immutable sealed-segment snapshot. Readers Load it once
	// and work off that epoch; writers install a fresh snapshot with a
	// bumped generation under mu.
	snap atomic.Pointer[snapshot]
	gen  uint64 // guarded by mu

	merging   atomic.Bool
	mergeWG   sync.WaitGroup
	sealedCnt atomic.Int64
	mergeCnt  atomic.Int64

	searchers sync.Pool
}

type snapshot struct {
	segs []*Segment
	gen  uint64
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, mem: newBuilder(cfg)}
	s.snap.Store(&snapshot{})
	s.searchers.New = func() any { return &Searcher{} }
	return s
}

// newStoreFromSegments wraps pre-built segments (the parallel bulk build).
func newStoreFromSegments(cfg Config, segs []*Segment) *Store {
	s := NewStore(cfg)
	s.gen = 1
	s.snap.Store(&snapshot{segs: segs, gen: 1})
	s.sealedCnt.Store(int64(len(segs)))
	return s
}

// Add indexes one doc, sealing the memtable into a segment when it reaches
// the configured bound. It reports false when the id is already indexed
// (matching the legacy AddObject no-op semantics). The caller keeps
// ownership of d.
func (s *Store) Add(d *Doc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.snap.Load().segs {
		if g.contains(d.ID) {
			return false
		}
	}
	s.memMu.Lock()
	ok := s.mem.add(d)
	s.memMu.Unlock()
	if ok && s.mem.docs() >= s.cfg.MemtableDocs {
		s.sealLocked()
	}
	return ok
}

// AddObject is Add over the object adapter.
func (s *Store) AddObject(o *object.Object) bool {
	var d Doc
	DocFromObject(o, &d)
	return s.Add(&d)
}

// Seal forces the current memtable into a segment (tests and shutdown).
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked()
}

// sealLocked encodes the memtable, installs the new segment in a fresh
// snapshot, and only then resets the memtable — a query racing the seal
// may see a doc in both (the result merge deduplicates), never in neither.
func (s *Store) sealLocked() {
	if s.mem.docs() == 0 {
		return
	}
	blob := s.mem.seal()
	seg, err := ParseSegment(blob)
	if err != nil {
		panic(fmt.Sprintf("index: sealed segment failed validation: %v", err))
	}
	cur := s.snap.Load()
	segs := make([]*Segment, 0, len(cur.segs)+1)
	segs = append(segs, cur.segs...)
	segs = append(segs, seg)
	s.gen++
	s.snap.Store(&snapshot{segs: segs, gen: s.gen})
	s.sealedCnt.Add(1)
	s.memMu.Lock()
	s.mem.reset()
	s.memMu.Unlock()
	s.maybeMergeLocked()
}

// maybeMergeLocked kicks the background merge when enough small segments
// have piled up. At most one merge runs at a time.
func (s *Store) maybeMergeLocked() {
	small := 0
	for _, g := range s.snap.Load().segs {
		if g.Docs() < 2*s.cfg.MemtableDocs {
			small++
		}
	}
	if small < s.cfg.MergeFanIn {
		return
	}
	if s.merging.Swap(true) {
		return
	}
	s.mergeWG.Add(1)
	go func() {
		defer s.mergeWG.Done()
		defer s.merging.Store(false)
		for s.mergeOnce() {
		}
	}()
}

// WaitMerges blocks until no background merge is running (tests and the
// deterministic bulk paths).
func (s *Store) WaitMerges() { s.mergeWG.Wait() }

// mergeOnce compacts one run of small segments. The merge works off a
// snapshot without holding any lock; the swap-in is generation-checked
// under mu: if the world moved (a seal appended a segment), the picked
// segments are re-located by identity — sealed segments never change, so
// the merged replacement stays valid no matter how many seals interleaved.
func (s *Store) mergeOnce() bool {
	snap := s.snap.Load()
	var pick []*Segment
	for _, g := range snap.segs {
		if g.Docs() < 2*s.cfg.MemtableDocs {
			pick = append(pick, g)
			if len(pick) == 2*s.cfg.MergeFanIn {
				break
			}
		}
	}
	if len(pick) < 2 {
		return false
	}
	blob := mergeSegments(pick, s.cfg)
	merged, err := ParseSegment(blob)
	if err != nil {
		panic(fmt.Sprintf("index: merged segment failed validation: %v", err))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	picked := make(map[*Segment]bool, len(pick))
	for _, g := range pick {
		picked[g] = true
	}
	segs := make([]*Segment, 0, len(cur.segs))
	replaced := 0
	for _, g := range cur.segs {
		if picked[g] {
			if replaced == 0 {
				segs = append(segs, merged)
			}
			replaced++
			continue
		}
		segs = append(segs, g)
	}
	if replaced != len(pick) {
		// A concurrent writer removed one of our inputs (cannot happen
		// today — only the single merger removes segments — but the
		// generation check keeps the swap-in safe if that ever changes).
		return true
	}
	s.gen++
	s.snap.Store(&snapshot{segs: segs, gen: s.gen})
	s.mergeCnt.Add(1)
	return true
}

// mergeSegments combines sealed segments into one segment file. Doc sets
// are disjoint (Add enforces it), doc tables and dictionaries are sorted,
// so this is a pure k-way merge; per-segment ordinal remaps are monotonic,
// which keeps every merged posting list a k-way merge of ascending runs.
func mergeSegments(segs []*Segment, cfg Config) []byte {
	cfg = cfg.withDefaults()
	sigWords := cfg.sigWords()
	total := 0
	for _, g := range segs {
		total += g.Docs()
	}
	parts := segParts{
		ids:   make([]object.ID, 0, total),
		modes: make([]object.Mode, 0, total),
		dates: make([]uint32, 0, total),
	}
	if sigWords > 0 {
		parts.sigs = make([]uint64, 0, total*sigWords)
	}
	// Merge doc tables by id, building per-segment ordinal remaps.
	remap := make([][]uint32, len(segs))
	heads := make([]int, len(segs))
	for i, g := range segs {
		remap[i] = make([]uint32, g.Docs())
	}
	for {
		best := -1
		for i, g := range segs {
			if heads[i] >= g.Docs() {
				continue
			}
			if best == -1 || g.ids[heads[i]] < segs[best].ids[heads[best]] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		g, h := segs[best], heads[best]
		remap[best][h] = uint32(len(parts.ids))
		parts.ids = append(parts.ids, g.ids[h])
		parts.modes = append(parts.modes, g.modes[h])
		parts.dates = append(parts.dates, g.dates[h])
		if sigWords > 0 {
			if g.sigWords == sigWords {
				parts.sigs = append(parts.sigs, g.sigs[h*sigWords:(h+1)*sigWords]...)
			} else {
				// Config changed across seals; a fresh zero row keeps the
				// block well-formed (the planner then simply never picks
				// the signature strategy for docs it cannot pre-filter —
				// containment of a zero row only matches an empty probe).
				for k := 0; k < sigWords; k++ {
					parts.sigs = append(parts.sigs, 0)
				}
			}
		}
		heads[best]++
	}
	// Merge dictionaries by term bytes.
	ti := make([]int, len(segs))
	its := make([]postingIter, len(segs))
	for {
		var name []byte
		for i, g := range segs {
			if ti[i] >= len(g.terms) {
				continue
			}
			n := g.name(&g.terms[ti[i]])
			if name == nil || cmpBytes(n, name) < 0 {
				name = n
			}
		}
		if name == nil {
			break
		}
		count := 0
		for i, g := range segs {
			if ti[i] < len(g.terms) && cmpBytes(g.name(&g.terms[ti[i]]), name) == 0 {
				count += int(g.terms[ti[i]].count)
			}
		}
		ords := make([]uint32, 0, count)
		// k-way merge of the (remapped, ascending) per-segment runs.
		nRuns := 0
		runSeg := make([]int, 0, len(segs))
		for i, g := range segs {
			if ti[i] < len(g.terms) && cmpBytes(g.name(&g.terms[ti[i]]), name) == 0 {
				its[nRuns].reset(g, &g.terms[ti[i]])
				runSeg = append(runSeg, i)
				nRuns++
			}
		}
		cur := make([]uint32, nRuns)
		live := make([]bool, nRuns)
		for r := 0; r < nRuns; r++ {
			v, ok := its[r].next()
			cur[r], live[r] = v, ok
		}
		for {
			best := -1
			for r := 0; r < nRuns; r++ {
				if !live[r] {
					continue
				}
				if best == -1 || remap[runSeg[r]][cur[r]] < remap[runSeg[best]][cur[best]] {
					best = r
				}
			}
			if best == -1 {
				break
			}
			ords = append(ords, remap[runSeg[best]][cur[best]])
			v, ok := its[best].next()
			cur[best], live[best] = v, ok
		}
		nameCopy := append([]byte(nil), name...)
		parts.terms = append(parts.terms, partTerm{name: nameCopy, ords: ords})
		for i, g := range segs {
			if ti[i] < len(g.terms) && cmpBytes(g.name(&g.terms[ti[i]]), nameCopy) == 0 {
				ti[i]++
			}
		}
	}
	return encodeParts(&parts, sigWords, cfg.BitsPerTerm)
}

// StoreStats is a point-in-time summary.
type StoreStats struct {
	Docs     int // sealed + memtable
	Segments int
	Postings int // sealed postings
	Sealed   int64
	Merges   int64
}

// Stats reports the store's current shape.
func (s *Store) Stats() StoreStats {
	st := StoreStats{Sealed: s.sealedCnt.Load(), Merges: s.mergeCnt.Load()}
	snap := s.snap.Load()
	st.Segments = len(snap.segs)
	for _, g := range snap.segs {
		st.Docs += g.Docs()
		st.Postings += g.Postings()
	}
	s.memMu.RLock()
	st.Docs += s.mem.docs()
	s.memMu.RUnlock()
	return st
}

// Segments returns the current sealed-segment snapshot (the slice is a
// copy; the segments themselves are immutable and shared).
func (s *Store) Segments() []*Segment {
	snap := s.snap.Load()
	return append([]*Segment(nil), snap.segs...)
}

// Generation returns the snapshot epoch (bumped by every seal and merge).
func (s *Store) Generation() uint64 { return s.snap.Load().gen }

// Searcher carries the per-query scratch that makes the warm planned-query
// path allocation-free. Search manages a pool internally; NewSearcher is
// for callers that want to drive segments directly (tests, benches).
type Searcher struct {
	terms  []*termEntry
	counts []int
	iters  []postingIter
	probe  []uint64
	cand   []uint32
	cand2  []uint32

	arena  []object.ID
	bounds []int
	lists  [][]object.ID
	heads  []int

	norm []string
	memQ []object.ID
}

// NewSearcher returns an empty searcher.
func NewSearcher() *Searcher { return &Searcher{} }

// normalize rewrites q.Terms into normalized tokens using the searcher's
// scratch. Tokens that are already normalized (the common case — every
// wire client normalizes at parse time) are passed through without
// allocating.
func (sc *Searcher) normalize(q *Query) {
	sc.norm = sc.norm[:0]
	for _, t := range q.Terms {
		t = normalizeIfNeeded(t)
		if t != "" {
			sc.norm = append(sc.norm, t)
		}
	}
	q.Terms = sc.norm
}

// Search evaluates the query and appends matching ids (ascending, no
// duplicates) to dst. An empty query with no filters matches nothing.
// Queries are lock-free over the sealed snapshot; only the memtable probe
// takes a short read lock. With a warm searcher and a capacious dst the
// call allocates nothing (TestAllocSearchWarm).
func (s *Store) Search(q Query, dst []object.ID) []object.ID {
	sc := s.searchers.Get().(*Searcher)
	defer s.searchers.Put(sc)
	sc.normalize(&q)
	if q.empty() {
		return dst
	}
	// Probe the memtable BEFORE loading the segment snapshot: a racing
	// seal installs its snapshot first and resets the memtable second, so
	// whichever way the race lands, every published doc is visible on at
	// least one side (at most both — mergeInto dedups equal heads).
	s.memMu.RLock()
	sc.searchMem(s.mem, &q)
	s.memMu.RUnlock()
	snap := s.snap.Load()
	sc.arena = sc.arena[:0]
	sc.bounds = sc.bounds[:0]
	for _, g := range snap.segs {
		start := len(sc.arena)
		sc.searchSegment(g, &q)
		if len(sc.arena) > start {
			sc.bounds = append(sc.bounds, start, len(sc.arena))
		}
	}
	if len(sc.memQ) > 0 {
		start := len(sc.arena)
		sc.arena = append(sc.arena, sc.memQ...)
		sc.bounds = append(sc.bounds, start, len(sc.arena))
	}
	return sc.mergeInto(dst)
}

// searchMem evaluates the query against the live memtable into sc.memQ.
func (sc *Searcher) searchMem(b *builder, q *Query) {
	sc.memQ = sc.memQ[:0]
	if b.docs() == 0 {
		return
	}
	if len(q.Terms) == 0 {
		for i := range b.ids {
			if q.matchAttrs(b.modes[i], b.dates[i]) {
				sc.memQ = append(sc.memQ, b.ids[i])
			}
		}
		sortIDs(sc.memQ)
		return
	}
	// Intersect the in-memory posting lists, rarest first.
	var drv []uint32
	for _, tok := range q.Terms {
		pl := b.terms[tok]
		if pl == nil || len(pl.ords) == 0 {
			return
		}
		if drv == nil || len(pl.ords) < len(drv) {
			drv = pl.ords
		}
	}
	for _, ord := range drv {
		all := true
		for _, tok := range q.Terms {
			if !containsOrd(b.terms[tok].ords, ord) {
				all = false
				break
			}
		}
		if all && q.matchAttrs(b.modes[ord], b.dates[ord]) {
			sc.memQ = append(sc.memQ, b.ids[ord])
		}
	}
	sortIDs(sc.memQ)
}

func containsOrd(a []uint32, ord uint32) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < ord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == ord
}

// mergeInto k-way-merges the per-source ascending runs recorded in
// sc.bounds into dst. Sources are disjoint except for the benign
// seal-vs-query race (a doc momentarily visible in both the new segment
// and the memtable), so equal heads deduplicate.
func (sc *Searcher) mergeInto(dst []object.ID) []object.ID {
	n := len(sc.bounds) / 2
	if n == 0 {
		return dst
	}
	if n == 1 {
		return append(dst, sc.arena[sc.bounds[0]:sc.bounds[1]]...)
	}
	sc.lists = sc.lists[:0]
	sc.heads = sc.heads[:0]
	for i := 0; i < n; i++ {
		sc.lists = append(sc.lists, sc.arena[sc.bounds[2*i]:sc.bounds[2*i+1]])
		sc.heads = append(sc.heads, 0)
	}
	var last object.ID
	first := true
	for {
		best := -1
		for i := 0; i < n; i++ {
			if sc.heads[i] >= len(sc.lists[i]) {
				continue
			}
			if best == -1 || sc.lists[i][sc.heads[i]] < sc.lists[best][sc.heads[best]] {
				best = i
			}
		}
		if best == -1 {
			return dst
		}
		v := sc.lists[best][sc.heads[best]]
		sc.heads[best]++
		if first || v != last {
			dst = append(dst, v)
			last, first = v, false
		}
	}
}

// SearchNaive is the seed-era baseline kept for the E-INDEX A/B: it
// materializes every term's full posting set into maps and intersects
// them, exactly as the legacy Index.Query did — no term ordering, no skip
// probes, no signature pre-filter. Same results, seed cost model.
func (s *Store) SearchNaive(q Query) []object.ID {
	sc := NewSearcher()
	sc.normalize(&q)
	if q.empty() {
		return nil
	}
	// Hold the memtable read lock across the whole evaluation and load
	// the snapshot inside it: a racing seal installs its snapshot before
	// acquiring the write lock to reset the memtable, so this ordering
	// sees every published doc at least once (maps absorb the overlap).
	s.memMu.RLock()
	defer s.memMu.RUnlock()
	snap := s.snap.Load()
	var result map[object.ID]bool
	collect := func(tok string) map[object.ID]bool {
		objs := map[object.ID]bool{}
		for _, g := range snap.segs {
			te := g.findTerm(tok)
			if te == nil {
				continue
			}
			var it postingIter
			it.reset(g, te)
			for {
				ord, ok := it.next()
				if !ok {
					break
				}
				objs[g.ids[ord]] = true
			}
		}
		if pl := s.mem.terms[tok]; pl != nil {
			for _, ord := range pl.ords {
				objs[s.mem.ids[ord]] = true
			}
		}
		return objs
	}
	if len(q.Terms) == 0 {
		result = map[object.ID]bool{}
		for _, g := range snap.segs {
			for i := range g.ids {
				result[g.ids[i]] = true
			}
		}
		for _, id := range s.mem.ids {
			result[id] = true
		}
	}
	for _, tok := range q.Terms {
		objs := collect(tok)
		if result == nil {
			result = objs
			continue
		}
		for id := range result {
			if !objs[id] {
				delete(result, id)
			}
		}
	}
	attrs := func(id object.ID) bool {
		if !q.HasFilters() {
			return true
		}
		for _, g := range snap.segs {
			lo, hi := 0, len(g.ids)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if g.ids[mid] < id {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(g.ids) && g.ids[lo] == id {
				return q.matchAttrs(g.modes[lo], g.dates[lo])
			}
		}
		if ord, ok := s.mem.byID[id]; ok {
			return q.matchAttrs(s.mem.modes[ord], s.mem.dates[ord])
		}
		return false
	}
	out := make([]object.ID, 0, len(result))
	for id := range result {
		if attrs(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
