package index

import (
	"fmt"
	"testing"

	"minos/internal/object"
)

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1986-05-28")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(v) != "1986-05-28" {
		t.Fatalf("round trip: %q", FormatDate(v))
	}
	lo, _ := ParseDate("1986-05-27")
	hi, _ := ParseDate("1986-06-01")
	hi2, _ := ParseDate("1987-01-01")
	if !(lo < v && v < hi && hi < hi2) {
		t.Fatalf("ordinal encoding not monotonic: %d %d %d %d", lo, v, hi, hi2)
	}
	for _, bad := range []string{"", "1986-5-28", "19860528", "1986-13-01", "1986-00-10", "1986-01-32", "abcd-ef-gh"} {
		if _, err := ParseDate(bad); err == nil {
			t.Fatalf("ParseDate(%q) accepted", bad)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("Lung SHADOW kind:audio after:1986-01-01 before:1986-12-31")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 2 || q.Terms[0] != "lung" || q.Terms[1] != "shadow" {
		t.Fatalf("terms = %v", q.Terms)
	}
	if q.Kind != KindAudio || q.DateFrom == 0 || q.DateTo == 0 || q.DateFrom >= q.DateTo {
		t.Fatalf("filters = %+v", q)
	}
	if !q.HasFilters() {
		t.Fatal("HasFilters = false")
	}
	if q2, _ := ParseQuery("lung shadow"); q2.HasFilters() {
		t.Fatal("plain terms reported filters")
	}
	if _, err := ParseQuery("kind:nope"); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := ParseQuery("after:19-1-1"); err == nil {
		t.Fatal("bad date accepted")
	}
}

// plannerDoc gives every doc 3 common terms (from a pool of 9, ~1/3 each)
// and i%101==0 docs one rare term — a corpus where the signature strategy
// must beat direct intersection for all-common conjunctions.
func plannerDoc(i int, d *Doc) {
	d.ID = object.ID(i + 1)
	d.Mode = object.Visual
	d.Date = 0
	d.Terms = d.Terms[:0]
	r := uint64(i)*0x9E3779B97F4A7C15 + 1
	for k := 0; k < 3; k++ {
		r ^= r >> 29
		r *= 0xBF58476D1CE4E5B9
		d.Terms = append(d.Terms, fmt.Sprintf("common%d", (r>>32)%9))
	}
	if i%101 == 0 {
		d.Terms = append(d.Terms, "needle")
	}
}

func TestPlannerStrategyChoice(t *testing.T) {
	b := newBuilder(Config{}.withDefaults())
	var d Doc
	for i := 0; i < 5000; i++ {
		plannerDoc(i, &d)
		b.add(&d)
	}
	seg, err := ParseSegment(b.seal())
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSearcher()

	// Rare driver -> intersection, terms ordered ascending.
	p := sc.PlanFor(seg, Query{Terms: []string{"common0", "needle", "common1"}})
	if p.Strategy != StrategyIntersect {
		t.Fatalf("rare-driver strategy = %v, want intersect", p.Strategy)
	}
	for i := 1; i < len(p.TermCounts); i++ {
		if p.TermCounts[i] < p.TermCounts[i-1] {
			t.Fatalf("term counts not ascending: %v", p.TermCounts)
		}
	}
	if p.TermCounts[0] != 50 { // 5000/101 rounded up
		t.Fatalf("driver count = %d, want 50", p.TermCounts[0])
	}

	// All-common conjunction -> signature pre-filter.
	p = sc.PlanFor(seg, Query{Terms: []string{"common0", "common1", "common2"}})
	if p.Strategy != StrategySignature {
		t.Fatalf("all-common strategy = %v (intersect=%.0f signature=%.0f), want signature",
			p.Strategy, p.CostIntersect, p.CostSignature)
	}

	// Missing term -> empty.
	p = sc.PlanFor(seg, Query{Terms: []string{"common0", "absent"}})
	if p.Strategy != StrategyEmpty {
		t.Fatalf("missing-term strategy = %v, want empty", p.Strategy)
	}

	// Attribute-only -> scan.
	p = sc.PlanFor(seg, Query{Kind: KindVisual})
	if p.Strategy != StrategyScan {
		t.Fatalf("attr-only strategy = %v, want scan", p.Strategy)
	}

	// Both strategies must agree with brute force.
	ref := func(q Query) []object.ID {
		var out []object.ID
		var rd Doc
		for i := 0; i < 5000; i++ {
			plannerDoc(i, &rd)
			all := true
			for _, tok := range q.Terms {
				found := false
				for _, dt := range rd.Terms {
					if dt == tok {
						found = true
						break
					}
				}
				if !found {
					all = false
					break
				}
			}
			if all {
				out = append(out, rd.ID)
			}
		}
		return out
	}
	for _, q := range []Query{
		{Terms: []string{"common0", "common1", "common2"}},
		{Terms: []string{"needle", "common0"}},
	} {
		sc.arena = sc.arena[:0]
		qq := q
		sc.normalize(&qq)
		sc.searchSegment(seg, &qq)
		want := ref(q)
		if !eqIDs(sc.arena, want) {
			t.Fatalf("query %v: got %d ids, want %d", q.Terms, len(sc.arena), len(want))
		}
	}
}

// TestNormalizeIfNeeded checks the allocation-free pass-through.
func TestNormalizeIfNeeded(t *testing.T) {
	if got := normalizeIfNeeded("lung"); got != "lung" {
		t.Fatalf("clean token changed: %q", got)
	}
	if got := normalizeIfNeeded("Lung!"); got != "lung" {
		t.Fatalf("dirty token = %q, want lung", got)
	}
	n := testing.AllocsPerRun(100, func() {
		_ = normalizeIfNeeded("alreadyclean123")
	})
	if n > 0 {
		t.Fatalf("clean-token normalize allocates %.1f", n)
	}
}
