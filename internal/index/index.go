// Package index implements the server subsystem's content access methods
// (§5): an inverted index over the words of object text parts and the
// recognized utterances of object voice parts. "The recognized voice
// segments are used to provide content addressibility and browsing by using
// the same access methods as in text" (§2) — both media index into the same
// term space, which is what makes pattern browsing symmetric.
//
// A linear Boyer–Moore scan is provided as the unindexed baseline for the
// E-PAT experiment.
package index

import (
	"sort"
	"strings"

	"minos/internal/object"
	"minos/internal/text"
)

// Posting is one occurrence of a term.
type Posting struct {
	Obj   object.ID
	Media object.MediaKind // MediaText (word index) or MediaVoice (sample offset)
	Pos   int
}

// Index is the inverted index. The zero value is not usable; call New.
type Index struct {
	terms map[string][]Posting
	docs  map[object.ID]bool
}

// New returns an empty index.
func New() *Index {
	return &Index{terms: map[string][]Posting{}, docs: map[object.ID]bool{}}
}

// Objects returns the number of indexed objects.
func (ix *Index) Objects() int { return len(ix.docs) }

// Terms returns the number of distinct terms.
func (ix *Index) Terms() int { return len(ix.terms) }

// AddObject indexes the object's text stream and recognized voice
// utterances. Indexing the same object twice is a no-op.
func (ix *Index) AddObject(o *object.Object) {
	if ix.docs[o.ID] {
		return
	}
	ix.docs[o.ID] = true
	// Titles and headings are content-addressable too; they anchor at
	// position 0 (phrase verification always re-checks the stream, so
	// these postings only widen object-level recall).
	addTitle := func(s string) {
		for _, f := range strings.Fields(s) {
			if tok := text.NormalizeToken(f); tok != "" {
				ix.terms[tok] = append(ix.terms[tok], Posting{Obj: o.ID, Media: object.MediaText, Pos: 0})
			}
		}
	}
	addTitle(o.Title)
	for _, v := range o.Attrs {
		addTitle(v)
	}
	for _, seg := range o.Text {
		addTitle(seg.Title)
		for _, ch := range seg.Chapters {
			addTitle(ch.Title)
			for _, sec := range ch.Sections {
				addTitle(sec.Title)
			}
		}
	}
	for i, fw := range o.Stream() {
		tok := text.NormalizeToken(fw.Word.Text)
		if tok == "" {
			continue
		}
		ix.terms[tok] = append(ix.terms[tok], Posting{Obj: o.ID, Media: object.MediaText, Pos: i})
	}
	for _, vp := range o.Voice {
		for _, u := range vp.Utterances {
			ix.terms[u.Token] = append(ix.terms[u.Token], Posting{Obj: o.ID, Media: object.MediaVoice, Pos: u.Offset})
		}
	}
}

// Postings returns the postings of a term (normalized internally), sorted
// by (object, media, position).
func (ix *Index) Postings(term string) []Posting {
	ps := ix.terms[text.NormalizeToken(term)]
	out := append([]Posting(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj != out[j].Obj {
			return out[i].Obj < out[j].Obj
		}
		if out[i].Media != out[j].Media {
			return out[i].Media < out[j].Media
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// Query evaluates an AND query over the terms and returns matching object
// ids in ascending order. An empty query matches nothing.
func (ix *Index) Query(terms ...string) []object.ID {
	if len(terms) == 0 {
		return nil
	}
	var result map[object.ID]bool
	for _, t := range terms {
		objs := map[object.ID]bool{}
		for _, p := range ix.terms[text.NormalizeToken(t)] {
			objs[p.Obj] = true
		}
		if result == nil {
			result = objs
			continue
		}
		for id := range result {
			if !objs[id] {
				delete(result, id)
			}
		}
	}
	out := make([]object.ID, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NextIn returns the first position > from of the term in the given object
// and medium, using the index, with found=false if none.
func (ix *Index) NextIn(id object.ID, media object.MediaKind, term string, from int) (pos int, found bool) {
	best := -1
	for _, p := range ix.terms[text.NormalizeToken(term)] {
		if p.Obj == id && p.Media == media && p.Pos > from {
			if best == -1 || p.Pos < best {
				best = p.Pos
			}
		}
	}
	return best, best >= 0
}

// PrevIn is NextIn's mirror: the last position < from.
func (ix *Index) PrevIn(id object.ID, media object.MediaKind, term string, from int) (pos int, found bool) {
	best := -1
	for _, p := range ix.terms[text.NormalizeToken(term)] {
		if p.Obj == id && p.Media == media && p.Pos < from {
			if p.Pos > best {
				best = p.Pos
			}
		}
	}
	return best, best >= 0
}

// NextPhraseInStream finds the first word index > from where the pattern's
// tokens occur consecutively in the stream; -1 if none. Used for multi-word
// text patterns (the index narrows by the first token; verification is
// positional).
func NextPhraseInStream(stream []text.FlatWord, pattern string, from int) int {
	toks := tokenize(pattern)
	if len(toks) == 0 {
		return -1
	}
	for i := from + 1; i+len(toks) <= len(stream); i++ {
		if matchAt(stream, i, toks) {
			return i
		}
	}
	return -1
}

// NextPhrase finds the next phrase occurrence in an object's text using the
// index for the first token and the stream for verification.
func (ix *Index) NextPhrase(id object.ID, stream []text.FlatWord, pattern string, from int) int {
	toks := tokenize(pattern)
	if len(toks) == 0 {
		return -1
	}
	pos := from
	for {
		p, ok := ix.NextIn(id, object.MediaText, toks[0], pos)
		if !ok {
			return -1
		}
		if matchAt(stream, p, toks) {
			return p
		}
		pos = p
	}
}

func tokenize(pattern string) []string {
	var toks []string
	for _, f := range strings.Fields(pattern) {
		if t := text.NormalizeToken(f); t != "" {
			toks = append(toks, t)
		}
	}
	return toks
}

func matchAt(stream []text.FlatWord, i int, toks []string) bool {
	if i < 0 || i+len(toks) > len(stream) {
		return false
	}
	for k, tok := range toks {
		if text.NormalizeToken(stream[i+k].Word.Text) != tok {
			return false
		}
	}
	return true
}

// BoyerMoore finds all occurrences of pattern in s using the bad-character
// rule, returning byte offsets. It is the unindexed raw-scan baseline and
// is also used for substring search within labels.
func BoyerMoore(s, pattern string) []int {
	m := len(pattern)
	if m == 0 || m > len(s) {
		return nil
	}
	var last [256]int
	for i := range last {
		last[i] = -1
	}
	for i := 0; i < m; i++ {
		last[pattern[i]] = i
	}
	var out []int
	i := m - 1
	for i < len(s) {
		j := m - 1
		k := i
		for j >= 0 && s[k] == pattern[j] {
			j--
			k--
		}
		if j < 0 {
			out = append(out, k+1)
			i++
			continue
		}
		shift := j - last[s[k]]
		if shift < 1 {
			shift = 1
		}
		i += shift
	}
	return out
}
