package index

import (
	"fmt"
	"testing"

	"minos/internal/object"
)

// testDoc builds a deterministic synthetic doc: ~10 terms drawn from a
// small vocabulary so lists cross skip-block boundaries at modest corpus
// sizes.
func testDoc(i int, d *Doc) {
	d.ID = object.ID(1000 + i*3) // sparse, ascending ids
	d.Mode = object.Visual
	if i%4 == 0 {
		d.Mode = object.Audio
	}
	d.Date = uint32(2000*416 + 32 + 1 + i%1200)
	d.Terms = d.Terms[:0]
	r := uint64(i)*2654435761 + 12345
	next := func(mod uint64) uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r % mod
	}
	d.Terms = append(d.Terms, "alpha") // in every doc
	if i%2 == 0 {
		d.Terms = append(d.Terms, "even")
	}
	if i%97 == 0 {
		d.Terms = append(d.Terms, "rareterm")
	}
	for k := 0; k < 7; k++ {
		d.Terms = append(d.Terms, fmt.Sprintf("w%03d", next(200)))
	}
	d.Terms = append(d.Terms, d.Terms[len(d.Terms)-1]) // duplicate within doc
}

func buildTestSegment(t testing.TB, n int, cfg Config) *Segment {
	t.Helper()
	b := newBuilder(cfg.withDefaults())
	var d Doc
	for i := 0; i < n; i++ {
		testDoc(i, &d)
		if !b.add(&d) {
			t.Fatalf("duplicate doc %d", i)
		}
	}
	seg, err := ParseSegment(b.seal())
	if err != nil {
		t.Fatalf("ParseSegment: %v", err)
	}
	return seg
}

// reference builds the term -> sorted doc-id map the segment must agree
// with.
func reference(n int) (map[string][]object.ID, map[object.ID]Doc) {
	terms := map[string][]object.ID{}
	docs := map[object.ID]Doc{}
	var d Doc
	for i := 0; i < n; i++ {
		testDoc(i, &d)
		seen := map[string]bool{}
		for _, tok := range d.Terms {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			terms[tok] = append(terms[tok], d.ID)
		}
		docs[d.ID] = Doc{ID: d.ID, Mode: d.Mode, Date: d.Date}
	}
	return terms, docs
}

func TestSegmentRoundTrip(t *testing.T) {
	const n = 700 // crosses several skip blocks for common terms
	seg := buildTestSegment(t, n, Config{})
	want, docs := reference(n)
	if seg.Docs() != n {
		t.Fatalf("Docs = %d, want %d", seg.Docs(), n)
	}
	if seg.Terms() != len(want) {
		t.Fatalf("Terms = %d, want %d", seg.Terms(), len(want))
	}
	for tok, ids := range want {
		te := seg.findTerm(tok)
		if te == nil {
			t.Fatalf("term %q missing", tok)
		}
		if int(te.count) != len(ids) {
			t.Fatalf("term %q count %d, want %d", tok, te.count, len(ids))
		}
		var it postingIter
		it.reset(seg, te)
		for k, wantID := range ids {
			ord, ok := it.next()
			if !ok {
				t.Fatalf("term %q: list ended at %d/%d", tok, k, len(ids))
			}
			if seg.ids[ord] != wantID {
				t.Fatalf("term %q posting %d = id %d, want %d", tok, k, seg.ids[ord], wantID)
			}
		}
		if _, ok := it.next(); ok {
			t.Fatalf("term %q: postings past count", tok)
		}
	}
	for i, id := range seg.ids {
		ref := docs[id]
		if seg.modes[i] != ref.Mode || seg.dates[i] != ref.Date {
			t.Fatalf("doc %d attrs (%v,%d), want (%v,%d)", id, seg.modes[i], seg.dates[i], ref.Mode, ref.Date)
		}
	}
	if seg.findTerm("nosuchterm") != nil {
		t.Fatal("findTerm invented a term")
	}
}

func TestSegmentSeekGE(t *testing.T) {
	const n = 900
	seg := buildTestSegment(t, n, Config{})
	want, _ := reference(n)
	for _, tok := range []string{"alpha", "even", "rareterm", "w000"} {
		ids := want[tok]
		te := seg.findTerm(tok)
		if te == nil {
			t.Fatalf("term %q missing", tok)
		}
		// Walk targets forward, mixing exact hits and gaps, fresh and
		// resumed iterators.
		var it postingIter
		it.reset(seg, te)
		for probe := 0; probe < seg.Docs(); probe += 37 {
			target := uint32(probe)
			got, ok := it.seekGE(target)
			wantOrd, wantOK := refSeekGE(seg, ids, target)
			if ok != wantOK || (ok && got != wantOrd) {
				t.Fatalf("term %q seekGE(%d) = (%d,%v), want (%d,%v)", tok, target, got, ok, wantOrd, wantOK)
			}
			if !ok {
				break
			}
		}
		// Fresh iterator straight to a late block.
		it.reset(seg, te)
		target := uint32(seg.Docs() * 3 / 4)
		got, ok := it.seekGE(target)
		wantOrd, wantOK := refSeekGE(seg, ids, target)
		if ok != wantOK || (ok && got != wantOrd) {
			t.Fatalf("term %q cold seekGE(%d) = (%d,%v), want (%d,%v)", tok, target, got, ok, wantOrd, wantOK)
		}
	}
}

// refSeekGE computes the expected first ordinal >= target for the term's
// id list.
func refSeekGE(seg *Segment, ids []object.ID, target uint32) (uint32, bool) {
	for _, id := range ids {
		ord := ordOf(seg, id)
		if ord >= target {
			return ord, true
		}
	}
	return 0, false
}

func ordOf(seg *Segment, id object.ID) uint32 {
	for i, v := range seg.ids {
		if v == id {
			return uint32(i)
		}
	}
	return ^uint32(0)
}

// TestSegmentTruncationTable feeds every prefix of a valid segment to the
// parser: each must fail cleanly, never panic — the same discipline as the
// cluster-map and WebSocket frame codecs.
func TestSegmentTruncationTable(t *testing.T) {
	seg := buildTestSegment(t, 60, Config{})
	blob := seg.Bytes()
	for cut := 0; cut < len(blob); cut++ {
		if _, err := ParseSegment(blob[:cut]); err == nil {
			t.Fatalf("ParseSegment accepted a %d/%d-byte prefix", cut, len(blob))
		}
	}
	if _, err := ParseSegment(blob); err != nil {
		t.Fatalf("full blob rejected: %v", err)
	}
	// Trailing garbage must be rejected too (WORM files have exact sizes).
	if _, err := ParseSegment(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("ParseSegment accepted trailing bytes")
	}
}

// TestSegmentCorruptionSweep flips every byte of a small segment; the
// parser must never panic, and whatever parses must be walkable.
func TestSegmentCorruptionSweep(t *testing.T) {
	seg := buildTestSegment(t, 40, Config{})
	blob := seg.Bytes()
	mut := make([]byte, len(blob))
	for pos := 0; pos < len(blob); pos++ {
		copy(mut, blob)
		mut[pos] ^= 0xFF
		g, err := ParseSegment(mut)
		if err != nil {
			continue
		}
		// Still-valid parses (e.g. a flipped date byte) must be walkable.
		for ti := range g.terms {
			var it postingIter
			it.reset(g, &g.terms[ti])
			for {
				if _, ok := it.next(); !ok {
					break
				}
			}
		}
		_ = g.findTerm("alpha")
	}
}

// TestSegmentHostileCounts aims fabricated headers with huge counts at the
// parser: every count must be validated against the remaining bytes before
// anything is allocated from it.
func TestSegmentHostileCounts(t *testing.T) {
	cases := [][]byte{
		// doc count 2^32-1 on a tiny blob.
		{'M', 'S', 'G', '1', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},
		// sig block claimed far beyond the blob.
		{'M', 'S', 'G', '1', 1, 3, 0xFF, 0xFF, 0, 0, 0, 1,
			0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0},
		// term count huge.
		{'M', 'S', 'G', '1', 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},
	}
	for i, blob := range cases {
		if _, err := ParseSegment(blob); err == nil {
			t.Fatalf("case %d: hostile header accepted", i)
		}
	}
}

func FuzzParseSegment(f *testing.F) {
	seg := buildTestSegment(f, 30, Config{})
	f.Add(seg.Bytes())
	f.Add(seg.Bytes()[:len(seg.Bytes())/2])
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	small := buildTestSegment(f, 3, Config{SigBits: -1})
	f.Add(small.Bytes())
	f.Fuzz(func(t *testing.T, blob []byte) {
		g, err := ParseSegment(blob)
		if err != nil {
			return
		}
		// Anything that parses must be fully walkable without panicking.
		for ti := range g.terms {
			var it postingIter
			it.reset(g, &g.terms[ti])
			prev := int64(-1)
			for {
				ord, ok := it.next()
				if !ok {
					break
				}
				if int64(ord) <= prev || int(ord) >= g.Docs() {
					t.Fatalf("term %d: bad ordinal %d after %d", ti, ord, prev)
				}
				prev = int64(ord)
			}
		}
	})
}

// TestSegmentDeterministic seals the same docs in different insertion
// orders and with/without an intermediate reset; the segment file must be
// bit-identical (the WORM replica argument depends on it).
func TestSegmentDeterministic(t *testing.T) {
	const n = 120
	build := func(order []int, warm bool) []byte {
		b := newBuilder(Config{}.withDefaults())
		if warm {
			var d Doc
			for i := 0; i < 30; i++ {
				testDoc(i+500, &d)
				b.add(&d)
			}
			b.reset()
		}
		var d Doc
		for _, i := range order {
			testDoc(i, &d)
			b.add(&d)
		}
		return b.seal()
	}
	fwd := make([]int, n)
	rev := make([]int, n)
	for i := range fwd {
		fwd[i] = i
		rev[n-1-i] = i
	}
	a := build(fwd, false)
	bb := build(rev, true)
	if string(a) != string(bb) {
		t.Fatal("segment bytes differ across insertion order / builder reuse")
	}
}
