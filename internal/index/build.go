package index

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// BuildStats summarizes a bulk build.
type BuildStats struct {
	Docs     int
	Postings int
	Segments int
	Bytes    int // total sealed segment bytes
	// ChunkNs records each chunk's build+seal wall time in chunk order —
	// chunks are independent, so these feed the multi-worker makespan
	// model in the E-INDEX experiment.
	ChunkNs []int64
}

// BuildSegments builds the segment set for n synthetic docs in parallel.
// gen must fill d (re-using d.Terms' backing array) with the content of
// doc i, as a pure function of i — it is called concurrently from every
// worker. Docs are chunked by position into memtable-sized segments, so
// the output depends only on (gen, cfg), never on worker count or
// scheduling: segment k always covers docs [k*MemtableDocs, ...), and its
// file is bit-identical across runs and across worker counts.
//
// Ids produced by gen must be unique; each worker owns a reusable builder
// over pooled storage, so the steady-state per-doc cost allocates nothing
// (the tokenize/post path is alloc-guarded by TestAllocBuilderAdd).
func BuildSegments(n int, gen func(i int, d *Doc), cfg Config, workers int) ([]*Segment, BuildStats, error) {
	cfg = cfg.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunkSize := cfg.MemtableDocs
	chunks := (n + chunkSize - 1) / chunkSize
	segs := make([]*Segment, chunks)
	stats := BuildStats{Docs: n, Segments: chunks, ChunkNs: make([]int64, chunks)}
	if chunks == 0 {
		return segs, stats, nil
	}
	if workers > chunks {
		workers = chunks
	}
	// Pre-filled buffered channel: a worker bailing on error never leaves
	// the producer blocked.
	jobs := make(chan int, chunks)
	for ck := 0; ck < chunks; ck++ {
		jobs <- ck
	}
	close(jobs)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := newBuilder(cfg)
			var d Doc
			for ck := range jobs {
				start := time.Now()
				b.reset()
				lo := ck * chunkSize
				hi := lo + chunkSize
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					gen(i, &d)
					if !b.add(&d) {
						errs <- fmt.Errorf("index: duplicate doc id %d in bulk build", d.ID)
						return
					}
				}
				seg, err := ParseSegment(b.seal())
				if err != nil {
					errs <- fmt.Errorf("index: bulk-built segment %d invalid: %w", ck, err)
					return
				}
				segs[ck] = seg
				stats.ChunkNs[ck] = time.Since(start).Nanoseconds()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, BuildStats{}, err
	default:
	}
	for _, g := range segs {
		stats.Postings += g.Postings()
		stats.Bytes += len(g.Bytes())
	}
	return segs, stats, nil
}

// BuildStore is BuildSegments wrapped into a queryable Store.
func BuildStore(n int, gen func(i int, d *Doc), cfg Config, workers int) (*Store, BuildStats, error) {
	segs, stats, err := BuildSegments(n, gen, cfg, workers)
	if err != nil {
		return nil, BuildStats{}, err
	}
	return newStoreFromSegments(cfg.withDefaults(), segs), stats, nil
}
