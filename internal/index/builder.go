package index

import (
	"sort"
	"strings"

	"minos/internal/object"
	"minos/internal/text"
)

// Doc is the unit the segmented index ingests: an object reduced to its id,
// attribute predicates (mode, date) and the normalized terms of its content
// — title fields, text stream words and recognized voice utterances all
// land in the same term space, which is what keeps retrieval symmetric
// across media (§2).
type Doc struct {
	ID   object.ID
	Mode object.Mode
	// Date is the ordinal-encoded archive date (see ParseDate); 0 when
	// the object carries none.
	Date uint32
	// Terms are normalized tokens; duplicates are allowed and collapse
	// to one posting.
	Terms []string
}

// Config shapes a segmented index store.
type Config struct {
	// MemtableDocs is the seal threshold: the memtable seals into an
	// immutable segment when it reaches this many docs. Default 4096.
	MemtableDocs int
	// SigBits is the per-doc signature width in bits (rounded up to 64).
	// Negative disables the signature block. Default 256.
	SigBits int
	// BitsPerTerm is how many signature bits each term sets. Default 3.
	BitsPerTerm int
	// MergeFanIn triggers a background merge when at least this many
	// small segments (< 2x MemtableDocs docs) exist. Default 8.
	MergeFanIn int
}

func (c Config) withDefaults() Config {
	if c.MemtableDocs <= 0 {
		c.MemtableDocs = 4096
	}
	switch {
	case c.SigBits < 0:
		c.SigBits = 0
	case c.SigBits == 0:
		c.SigBits = 256
	}
	if c.BitsPerTerm <= 0 {
		c.BitsPerTerm = 3
	}
	if c.MergeFanIn < 2 {
		c.MergeFanIn = 8
	}
	return c
}

func (c Config) sigWords() int { return (c.SigBits + 63) / 64 }

// sigTermBits sets bitsPerTerm signature bits for the token — two
// independent hashes combined (Kirsch–Mitzenmacher), shared with the
// standalone SignatureFile so segment signatures and the E-PAT signature
// file agree on the encoding.
func sigTermBits(tok string, sig []uint64, bitsPerTerm int) {
	var h1, h2 uint64 = 14695981039346656037, 5381
	for i := 0; i < len(tok); i++ {
		h1 = (h1 ^ uint64(tok[i])) * 1099511628211
		h2 = h2*33 + uint64(tok[i])
	}
	bits := uint64(len(sig) * 64)
	for k := 0; k < bitsPerTerm; k++ {
		b := (h1 + uint64(k)*h2) % bits
		sig[b/64] |= 1 << (b % 64)
	}
}

// builder accumulates docs into a mutable memtable and seals them into a
// segment. It doubles as the store's live memtable (queries read it under
// the store's memtable lock) and as the per-worker state of the parallel
// bulk build. All storage is reused across reset() so the steady-state
// add() path — the hot tokenize/post path of a publish — allocates nothing
// (guarded by TestAllocBuilderAdd).
type builder struct {
	sigWords    int
	bitsPerTerm int

	ids   []object.ID
	modes []object.Mode
	dates []uint32
	sigs  []uint64
	byID  map[object.ID]int32

	terms    map[string]*postList
	postings int

	// seal scratch, reused.
	perm     []int32
	remap    []uint32
	nameBuf  []string
	partsBuf []partTerm
}

type postList struct{ ords []uint32 }

func newBuilder(cfg Config) *builder {
	return &builder{
		sigWords:    cfg.sigWords(),
		bitsPerTerm: cfg.BitsPerTerm,
		byID:        make(map[object.ID]int32),
		terms:       make(map[string]*postList),
	}
}

func (b *builder) docs() int { return len(b.ids) }

// add indexes one doc; it reports false (and does nothing) when the id is
// already present. The caller owns d; nothing in it is retained except the
// term strings themselves.
func (b *builder) add(d *Doc) bool {
	if _, dup := b.byID[d.ID]; dup {
		return false
	}
	ord := uint32(len(b.ids))
	b.byID[d.ID] = int32(ord)
	b.ids = append(b.ids, d.ID)
	b.modes = append(b.modes, d.Mode)
	b.dates = append(b.dates, d.Date)
	var sig []uint64
	if b.sigWords > 0 {
		for i := 0; i < b.sigWords; i++ {
			b.sigs = append(b.sigs, 0)
		}
		sig = b.sigs[int(ord)*b.sigWords:]
	}
	for _, t := range d.Terms {
		if t == "" {
			continue
		}
		pl := b.terms[t]
		if pl == nil {
			pl = &postList{}
			b.terms[t] = pl
		}
		if n := len(pl.ords); n > 0 && pl.ords[n-1] == ord {
			continue // duplicate within this doc; signature bits already set
		}
		pl.ords = append(pl.ords, ord)
		b.postings++
		if sig != nil {
			sigTermBits(t, sig, b.bitsPerTerm)
		}
	}
	return true
}

// reset clears the builder for the next memtable while keeping every map
// bucket and slice capacity warm.
func (b *builder) reset() {
	b.ids = b.ids[:0]
	b.modes = b.modes[:0]
	b.dates = b.dates[:0]
	b.sigs = b.sigs[:0]
	clear(b.byID)
	for _, pl := range b.terms {
		pl.ords = pl.ords[:0]
	}
	b.postings = 0
}

// seal encodes the memtable into a segment file: docs sorted by id, terms
// sorted bytewise, ordinals remapped accordingly. The output depends only
// on the set of docs added (in any order) and the config.
func (b *builder) seal() []byte {
	n := len(b.ids)
	b.perm = b.perm[:0]
	for i := 0; i < n; i++ {
		b.perm = append(b.perm, int32(i))
	}
	sort.Slice(b.perm, func(i, j int) bool { return b.ids[b.perm[i]] < b.ids[b.perm[j]] })
	b.remap = b.remap[:0]
	for range b.perm {
		b.remap = append(b.remap, 0)
	}
	for newOrd, oldOrd := range b.perm {
		b.remap[oldOrd] = uint32(newOrd)
	}

	parts := segParts{
		ids:   make([]object.ID, n),
		modes: make([]object.Mode, n),
		dates: make([]uint32, n),
	}
	if b.sigWords > 0 {
		parts.sigs = make([]uint64, n*b.sigWords)
	}
	for newOrd, oldOrd := range b.perm {
		parts.ids[newOrd] = b.ids[oldOrd]
		parts.modes[newOrd] = b.modes[oldOrd]
		parts.dates[newOrd] = b.dates[oldOrd]
		if b.sigWords > 0 {
			copy(parts.sigs[newOrd*b.sigWords:(newOrd+1)*b.sigWords], b.sigs[int(oldOrd)*b.sigWords:])
		}
	}

	b.nameBuf = b.nameBuf[:0]
	for name, pl := range b.terms {
		if len(pl.ords) > 0 {
			b.nameBuf = append(b.nameBuf, name)
		}
	}
	sort.Strings(b.nameBuf)
	b.partsBuf = b.partsBuf[:0]
	for _, name := range b.nameBuf {
		ords := b.terms[name].ords
		mapped := make([]uint32, len(ords))
		for i, o := range ords {
			mapped[i] = b.remap[o]
		}
		sortU32(mapped)
		b.partsBuf = append(b.partsBuf, partTerm{name: []byte(name), ords: mapped})
	}
	parts.terms = b.partsBuf
	return encodeParts(&parts, b.sigWords, b.bitsPerTerm)
}

// sortU32 is an allocation-free quicksort (insertion sort below 12) for
// ordinal slices.
func sortU32(a []uint32) {
	for len(a) > 12 {
		p := medianOfThreeU32(a)
		lo, hi := 0, len(a)-1
		for lo <= hi {
			for a[lo] < p {
				lo++
			}
			for a[hi] > p {
				hi--
			}
			if lo <= hi {
				a[lo], a[hi] = a[hi], a[lo]
				lo++
				hi--
			}
		}
		if hi+1 < len(a)-lo {
			sortU32(a[:hi+1])
			a = a[lo:]
		} else {
			sortU32(a[lo:])
			a = a[:hi+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func medianOfThreeU32(a []uint32) uint32 {
	lo, mid, hi := a[0], a[len(a)/2], a[len(a)-1]
	if lo > mid {
		lo, mid = mid, lo
	}
	if mid > hi {
		mid = hi
	}
	if lo > mid {
		mid = lo
	}
	return mid
}

// sortIDs is sortU32 for object ids (used for memtable result emission).
func sortIDs(a []object.ID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// DocFromObject reduces an object to its indexable Doc, appending terms to
// d.Terms (reset to [:0] first): title and attribute words, text stream
// words and recognized voice utterances — the same term space the legacy
// Index uses — plus the date attribute parsed into d.Date.
func DocFromObject(o *object.Object, d *Doc) {
	d.ID = o.ID
	d.Mode = o.Mode
	d.Date = 0
	if s, ok := o.Attrs["date"]; ok {
		if dt, err := ParseDate(s); err == nil {
			d.Date = dt
		}
	}
	d.Terms = d.Terms[:0]
	addWords := func(s string) {
		for _, f := range strings.Fields(s) {
			if tok := text.NormalizeToken(f); tok != "" {
				d.Terms = append(d.Terms, tok)
			}
		}
	}
	addWords(o.Title)
	for _, v := range o.Attrs {
		addWords(v)
	}
	for _, seg := range o.Text {
		addWords(seg.Title)
		for _, ch := range seg.Chapters {
			addWords(ch.Title)
			for _, sec := range ch.Sections {
				addWords(sec.Title)
			}
		}
	}
	for _, fw := range o.Stream() {
		if tok := text.NormalizeToken(fw.Word.Text); tok != "" {
			d.Terms = append(d.Terms, tok)
		}
	}
	for _, vp := range o.Voice {
		for _, u := range vp.Utterances {
			if u.Token != "" {
				d.Terms = append(d.Terms, u.Token)
			}
		}
	}
}
