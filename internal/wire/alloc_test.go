package wire

import (
	"testing"

	"minos/internal/object"
	"minos/internal/pool"
)

// TestAllocMuxFrameEncode guards the v2 frame encode: staging a mux frame
// from a pooled buffer and releasing it must not allocate in steady state.
func TestAllocMuxFrameEncode(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	msg := make([]byte, 900)
	pool.Bytes.Put(muxFrame(7, msg)) // warm the pool
	avg := testing.AllocsPerRun(100, func() {
		pool.Bytes.Put(muxFrame(7, msg))
	})
	if avg > 0 {
		t.Fatalf("muxFrame allocates %.1f objects/run in steady state, want 0", avg)
	}
}

// TestAllocBackoffJitter guards the retry path's jitter source: drawing
// backoff delays — including through a shared multi-shard BackoffRand —
// must never allocate, so a K-way scatter/gather retrying under load adds
// no GC pressure.
func TestAllocBackoffJitter(t *testing.T) {
	rng := NewBackoffRand(1)
	pol := RetryPolicy{}.withDefaults()
	avg := testing.AllocsPerRun(1000, func() {
		_ = pol.backoff(2, rng)
	})
	if avg > 0 {
		t.Fatalf("backoff allocates %.1f objects/run, want 0", avg)
	}
}

// TestAllocMiniatureServeWarm is the zero-allocation acceptance guard: once
// every miniature is built and its encoding cached, serving a batched
// miniature request must perform no heap allocations at all.
func TestAllocMiniatureServeWarm(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	h := &Handler{Srv: testServer(t)}
	req := encodeMiniaturesReq([]object.ID{1, 2, 3})
	resp := h.Handle(req) // warm: build miniatures, fill the encoded cache
	if resp[0] != statusOK {
		t.Fatalf("warmup response status %d", resp[0])
	}
	recycleResponse(resp)
	avg := testing.AllocsPerRun(100, func() {
		recycleResponse(h.Handle(req))
	})
	if avg > 0 {
		t.Fatalf("warm miniature serve allocates %.1f objects/run, want 0", avg)
	}
}
