package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"minos/internal/archiver"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/voice"
)

func testServer(t testing.TB) *server.Server {
	t.Helper()
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(4096))
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(archiver.New(dev))
	add := func(id object.ID, title, body string) {
		o, err := object.NewBuilder(id, title, object.Visual).Text(body).Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Publish(o); err != nil {
			t.Fatal(err)
		}
	}
	add(1, "lungs", ".title Lungs\nthe lung shadow is visible here.\n")
	add(2, "heart", ".title Heart\nthe heart rhythm is regular today.\n")

	im := img.New("map", 100, 100)
	im.Base = img.NewBitmap(100, 100)
	im.Base.Fill(img.Rect{X: 10, Y: 10, W: 50, H: 50}, true)
	o3, err := object.NewBuilder(3, "map", object.Audio).
		Text(".title Map\nthe city map object.\n").Image(im).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(o3); err != nil {
		t.Fatal(err)
	}
	return s
}

func localClient(t testing.TB) (*Client, *LocalTransport) {
	t.Helper()
	lt := EthernetLink(&Handler{Srv: testServer(t)})
	return NewClient(lt), lt
}

func TestQueryOverWire(t *testing.T) {
	c, _ := localClient(t)
	ids, _, err := c.Query("lung")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Query = %v", ids)
	}
	ids, _, err = c.Query("the")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("Query(the) = %v", ids)
	}
}

func TestDescriptorAndPiecesOverWire(t *testing.T) {
	c, _ := localClient(t)
	d, dur, err := c.Descriptor(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 1 || d.Title != "lungs" {
		t.Fatalf("descriptor = %+v", d)
	}
	if dur == 0 {
		t.Fatal("descriptor fetch reported zero device time on cold cache")
	}
	// Materialize the whole object through the wire.
	o, err := d.Materialize(c.Fetch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Stream()) == 0 {
		t.Fatal("empty stream over wire")
	}
}

func TestMiniatureOverWire(t *testing.T) {
	c, _ := localClient(t)
	m, _, err := c.Miniature(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.PopCount() == 0 {
		t.Fatal("blank miniature")
	}
	if _, _, err := c.Miniature(42); err == nil || !strings.Contains(err.Error(), "miniature") {
		t.Fatalf("missing miniature err = %v", err)
	}
}

func TestListAndMode(t *testing.T) {
	c, _ := localClient(t)
	ids, _, err := c.List()
	if err != nil || len(ids) != 3 {
		t.Fatalf("List = %v, %v", ids, err)
	}
	m, err := c.Mode(3)
	if err != nil || m != object.Audio {
		t.Fatalf("Mode = %v, %v", m, err)
	}
	if _, err := c.Mode(42); err == nil {
		t.Fatal("mode of missing object")
	}
}

func TestLinkAccounting(t *testing.T) {
	c, lt := localClient(t)
	lt.ResetStats()
	if _, _, err := c.ReadPiece(0, 4096); err != nil {
		t.Fatal(err)
	}
	st := lt.Stats()
	if st.RoundTrips != 1 {
		t.Fatalf("round trips = %d", st.RoundTrips)
	}
	if st.BytesRecv < 4096 {
		t.Fatalf("bytes recv = %d", st.BytesRecv)
	}
	if st.LinkTime <= 2*lt.Latency {
		t.Fatalf("link time %v does not include transfer", st.LinkTime)
	}
	// A smaller read moves fewer bytes.
	lt.ResetStats()
	c.ReadPiece(0, 128)
	small := lt.Stats()
	if small.BytesRecv >= st.BytesRecv {
		t.Fatalf("small read moved %d vs %d", small.BytesRecv, st.BytesRecv)
	}
}

func TestMalformedRequests(t *testing.T) {
	h := &Handler{Srv: testServer(t)}
	for _, req := range [][]byte{nil, {99}, {OpDescriptor, 1, 2}, {OpQuery, 0, 0, 0}} {
		resp := h.Handle(req)
		if len(resp) == 0 || resp[0] != statusErr {
			t.Fatalf("malformed request %v accepted: %v", req, resp)
		}
	}
}

func TestTCPTransport(t *testing.T) {
	srv := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &Handler{Srv: srv})

	tp, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()

	ids, _, err := c.Query("lung")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("tcp Query = %v", ids)
	}
	d, _, err := c.Descriptor(2)
	if err != nil || d.Title != "heart" {
		t.Fatalf("tcp Descriptor = %+v, %v", d, err)
	}
	// Multiple sequential calls on the same connection.
	for i := 0; i < 5; i++ {
		if _, _, err := c.List(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello frames")
	errc := make(chan error, 1)
	go func() { errc <- WriteFrame(a, msg) }()
	got, err := ReadFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("frame = %q", got)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestEthernetCostModel(t *testing.T) {
	lt := EthernetLink(nil)
	t1 := lt.cost(0)
	t2 := lt.cost(1_250_000) // 1 second at 10 Mbit/s
	if t1 != lt.Latency {
		t.Fatalf("zero-byte cost = %v", t1)
	}
	if d := t2 - t1; d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("1.25MB transfer = %v, want ~1s", d)
	}
}

func TestImageViewOverWire(t *testing.T) {
	c, lt := localClient(t)
	lt.ResetStats()
	view, _, err := c.ImageView(3, "map", img.Rect{X: 10, Y: 10, W: 40, H: 30})
	if err != nil {
		t.Fatal(err)
	}
	if view.W != 40 || view.H != 30 {
		t.Fatalf("view dims %dx%d", view.W, view.H)
	}
	small := lt.Stats().BytesRecv
	lt.ResetStats()
	full, _, err := c.ImageView(3, "map", img.Rect{X: 0, Y: 0, W: 100, H: 100})
	if err != nil {
		t.Fatal(err)
	}
	if full.W != 100 {
		t.Fatalf("full dims %dx%d", full.W, full.H)
	}
	big := lt.Stats().BytesRecv
	if small >= big {
		t.Fatalf("view bytes %d not below full image bytes %d", small, big)
	}
	if _, _, err := c.ImageView(3, "ghost", img.Rect{}); err == nil {
		t.Fatal("view on missing image accepted")
	}
}

func TestVoicePreviewOverWire(t *testing.T) {
	srv := testServer(t)
	seg, _ := text.Parse("Audible preview words here.\n")
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 2000)
	o, err := object.NewBuilder(9, "spoken", object.Audio).VoicePart(syn.Part).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(o); err != nil {
		t.Fatal(err)
	}
	c := NewClient(EthernetLink(&Handler{Srv: srv}))
	vp, _, err := c.VoicePreview(9)
	if err != nil {
		t.Fatal(err)
	}
	if vp.Rate != 2000 || len(vp.Samples) == 0 {
		t.Fatalf("preview = %+v", vp)
	}
	if _, _, err := c.VoicePreview(1); err == nil {
		t.Fatal("preview of visual object accepted")
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		hdr := []byte{0xff, 0xff, 0xff, 0xff} // 4 GiB claim
		a.Write(hdr)
	}()
	if _, err := ReadFrame(b); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
