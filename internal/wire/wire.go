// Package wire implements the workstation ↔ object-server protocol. The
// paper's architecture (§5) connects workstations to the server subsystem
// "through high capacity links" (Ethernet in the 1986 implementation); here
// the protocol runs over real TCP (net) or over an in-memory simulated link
// with a latency/bandwidth model, so experiments can account for bytes
// moved and transfer time (the E-VIEW and E-MINI experiments depend on
// this).
//
// The protocol is piece-oriented, matching the server interface: the
// workstation fetches descriptors, byte extents, miniatures and query
// results — never whole objects in one request.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minos/internal/descriptor"
	img "minos/internal/image"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/pool"
	"minos/internal/server"
	"minos/internal/voice"
)

// Op codes. Ops 13-16 are the server-push stream ops (protocol v3, see
// stream.go).
const (
	OpQuery      = 1
	OpDescriptor = 2
	OpReadPiece  = 3
	OpMiniature  = 4
	OpList       = 5
	OpMode       = 6
	OpImageView  = 7
	// OpVoicePreview ships a whole (page-capped) voice preview in one
	// frame.
	//
	// Deprecated: use the OpVoiceStream path (Client.VoiceStreamCtx) —
	// playback can start after the first chunk instead of the last byte.
	// The op is kept for v1/v2 peers; its response is capped at a
	// page-sized prefix (see server.voicePreview).
	OpVoicePreview = 8
	OpStats        = 9
	// OpHello negotiates the protocol version (see ProtocolV2/V3 in
	// mux.go). A v1 server answers it with an unknown-op error, which the
	// client treats as "version 1".
	OpHello = 10
	// OpMiniatures fetches up to MaxMiniatureBatch miniatures (with their
	// driving modes) in one round trip — the batched op behind the
	// sequential-browsing prefetch pipeline.
	OpMiniatures = 11
	// OpClusterMap fetches the server's cluster map (shard id → primary +
	// replica endpoints, map epoch) when the server belongs to a sharded
	// fleet. The request carries the client's current epoch; a server whose
	// map has not moved answers "unchanged" without resending the payload.
	OpClusterMap = 12
	// OpQueryPlanned evaluates a planned content query: conjunctive terms
	// plus attribute predicates (media kind, date range) pushed down to the
	// server's segmented index, where the planner picks the evaluation
	// strategy per segment. Request: [kind u8][dateFrom u32][dateTo u32]
	// [n u32][term strings]. Pre-planner servers answer with an unknown-op
	// error; the client falls back to OpQuery for filterless queries.
	// (Ops 13-16 are the stream ops, see stream.go.)
	OpQueryPlanned = 17
)

// MaxQueryTerms bounds the conjunction accepted by one OpQueryPlanned
// request; longer conjunctions are rejected rather than letting a client
// drive an arbitrarily wide plan.
const MaxQueryTerms = 64

// MaxMiniatureBatch bounds the ids accepted by one OpMiniatures request;
// larger batches are rejected rather than letting a client drive an
// arbitrarily large response.
const MaxMiniatureBatch = 1024

// miniEntryHint over-estimates one OpMiniatures response entry: present +
// mode + length prefix, plus the encoded bitmap of a miniature (both
// dimensions are bounded by server.MiniatureSize) with header slack. The
// hint keeps the batched response inside its initial pooled buffer, so the
// warm path never reallocates.
const miniEntryHint = 6 + 16 + (server.MiniatureSize/8+1)*(server.MiniatureSize+1)

// Response status codes. statusBusy distinguishes load shedding (the server
// refused to queue the request; retry after backoff) from application errors
// (statusErr, fatal to the call).
const (
	statusOK   = 0
	statusErr  = 1
	statusBusy = 2
)

// ErrShort reports a message that ended before its declared contents — a
// truncated or otherwise damaged frame. The condition is a transport
// integrity failure, not an application error, so it is classified
// retryable (see IsRetryable).
var ErrShort = errors.New("wire: short message")

var errShort = ErrShort

// Transport carries one request/response exchange.
type Transport interface {
	RoundTrip(req []byte) (resp []byte, err error)
	// Close releases the transport.
	Close() error
}

// ContextTransport is a Transport that can bound one exchange with a
// context: the call fails with the context's error when it is cancelled or
// its deadline passes. This is the cancellation mechanism of the ctx-first
// client API (it replaces the old TCPTransport.SetTimeout knob).
type ContextTransport interface {
	Transport
	RoundTripCtx(ctx context.Context, req []byte) ([]byte, error)
}

// ContextPipeliner is a Pipeliner whose in-flight exchanges honour a
// context.
type ContextPipeliner interface {
	Pipeliner
	StartCtx(ctx context.Context, req []byte) Pending
}

// roundTripCtx performs one exchange honouring ctx, using the transport's
// native context support when it has any and a watchdog goroutine when it
// does not.
func roundTripCtx(ctx context.Context, t Transport, req []byte) ([]byte, error) {
	if ct, ok := t.(ContextTransport); ok {
		return ct.RoundTripCtx(ctx, req)
	}
	if ctx.Done() == nil {
		return t.RoundTrip(req)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch := make(chan muxResult, 1)
	go func() {
		resp, err := t.RoundTrip(req)
		ch <- muxResult{resp: resp, err: err}
	}()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// --- message building ---

func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

type cursor struct {
	data []byte
	pos  int
}

func (c *cursor) u8() (byte, error) {
	if c.pos >= len(c.data) {
		return 0, errShort
	}
	v := c.data[c.pos]
	c.pos++
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.pos+4 > len(c.data) {
		return 0, errShort
	}
	v := binary.BigEndian.Uint32(c.data[c.pos:])
	c.pos += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.pos+8 > len(c.data) {
		return 0, errShort
	}
	v := binary.BigEndian.Uint64(c.data[c.pos:])
	c.pos += 8
	return v, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if c.pos+int(n) > len(c.data) {
		return "", errShort
	}
	s := string(c.data[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s, nil
}

func (c *cursor) rest() []byte { return c.data[c.pos:] }

// Handler serves protocol requests against a server.
type Handler struct {
	Srv *server.Server

	// tenants hands out the per-connection fairness identities passed to
	// the server's admission gate and seek semaphore.
	tenants atomic.Uint64
}

// NewTenant allocates a fresh tenant identity. The serving loops call it
// once per accepted connection (and LocalTransport once per transport), so
// admission fairness is per session, not per request.
func (h *Handler) NewTenant() uint64 { return h.tenants.Add(1) }

// Handle processes one request message on behalf of the anonymous tenant
// and returns the response message. Connection-serving paths use HandleAs
// with a per-connection tenant instead.
func (h *Handler) Handle(req []byte) []byte { return h.HandleAs(0, req) }

// HandleAs processes one request message attributed to tenant and returns
// the response message.
func (h *Handler) HandleAs(tenant uint64, req []byte) []byte {
	c := &cursor{data: req}
	op, err := c.u8()
	if err != nil {
		return errResp(err)
	}
	// Device-bound ops pass the server's admission gate so an overloaded
	// server sheds work with a retryable busy response instead of queueing
	// without bound. Cheap in-memory ops (query, list, miniatures, stats)
	// are always served — they are what a degraded client needs most.
	switch op {
	case OpReadPiece, OpDescriptor, OpImageView:
		release, aerr := h.Srv.AdmitAs(tenant)
		if aerr != nil {
			return errResp(aerr)
		}
		defer release()
	}
	switch op {
	case OpQuery:
		n, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		// Cap the preallocation: n is client-controlled, and each term
		// needs at least 4 bytes of request, so anything beyond the
		// remaining request length fails below anyway.
		terms := make([]string, 0, min(int(n), len(c.rest())/4+1))
		for i := uint32(0); i < n; i++ {
			s, err := c.str()
			if err != nil {
				return errResp(err)
			}
			terms = append(terms, s)
		}
		return idsResp(h.Srv.Query(terms...))
	case OpQueryPlanned:
		kind, err := c.u8()
		if err != nil {
			return errResp(err)
		}
		if index.KindFilter(kind) > index.KindAudio {
			return errResp(fmt.Errorf("wire: unknown kind filter %d", kind))
		}
		from, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		to, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		n, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		if n > MaxQueryTerms {
			return errResp(fmt.Errorf("wire: query of %d terms exceeds %d", n, MaxQueryTerms))
		}
		q := index.Query{Kind: index.KindFilter(kind), DateFrom: from, DateTo: to}
		q.Terms = make([]string, 0, min(int(n), len(c.rest())/4+1))
		for i := uint32(0); i < n; i++ {
			s, err := c.str()
			if err != nil {
				return errResp(err)
			}
			q.Terms = append(q.Terms, s)
		}
		return idsResp(h.Srv.QueryPlanned(q))
	case OpDescriptor:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		d, dur, err := h.Srv.DescriptorAs(tenant, object.ID(id))
		if err != nil {
			return errResp(err)
		}
		return okResp(dur, d.Encode())
	case OpReadPiece:
		off, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		length, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		data, dur, err := h.Srv.ReadPieceAs(tenant, off, length)
		if err != nil {
			return errResp(err)
		}
		return okResp(dur, data)
	case OpMiniature:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		payload, _, ok := h.Srv.MiniatureEncoded(object.ID(id))
		if !ok {
			return errResp(fmt.Errorf("wire: no miniature for object %d", id))
		}
		return okResp(0, payload)
	case OpMiniatures:
		n, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		if n > MaxMiniatureBatch {
			return errResp(fmt.Errorf("wire: miniature batch of %d exceeds %d", n, MaxMiniatureBatch))
		}
		// The hot path of sequential browsing: every entry comes from the
		// encoded-frame cache and lands in one pooled, hint-sized response
		// buffer — steady state performs no heap allocation at all.
		out := newResp(4 + int(n)*miniEntryHint)
		out = appendU32(out, n)
		for i := uint32(0); i < n; i++ {
			id, err := c.u64()
			if err != nil {
				recycleResponse(out)
				return errResp(err)
			}
			payload, mode, ok := h.Srv.MiniatureEncoded(object.ID(id))
			if !ok {
				// Absent entries are in-band (present=0): one missing
				// miniature must not fail the whole batch.
				out = append(out, 0, byte(mode))
				continue
			}
			out = append(out, 1, byte(mode))
			out = appendU32(out, uint32(len(payload)))
			out = append(out, payload...)
		}
		return finishResp(out, statusOK, 0)
	case OpHello:
		v, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		neg := uint32(ProtocolV3)
		if v < neg {
			neg = v
		}
		if neg < ProtocolV1 {
			return errResp(fmt.Errorf("wire: unsupported protocol version %d", v))
		}
		payload := appendU32(nil, neg)
		// A fleet member ships its cluster map with the HELLO ack, so a
		// routing client learns the shard topology in the round trip it
		// already pays for version negotiation. Pre-map clients parse only
		// the leading version word and ignore the rest.
		if _, mp, ok := h.Srv.ClusterMap(); ok {
			payload = appendU32(payload, uint32(len(mp)))
			payload = append(payload, mp...)
		}
		return okResp(0, payload)
	case OpClusterMap:
		epoch, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		curEpoch, mp, ok := h.Srv.ClusterMap()
		if !ok {
			return errResp(fmt.Errorf("wire: server is not part of a cluster"))
		}
		if epoch == curEpoch {
			return okResp(0, []byte{0}) // unchanged
		}
		out := newResp(1 + len(mp))
		out = append(out, 1)
		out = append(out, mp...)
		return finishResp(out, statusOK, 0)
	case OpImageView:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		name, err := c.str()
		if err != nil {
			return errResp(err)
		}
		var rect [4]int
		for i := range rect {
			v, err := c.u32()
			if err != nil {
				return errResp(err)
			}
			rect[i] = int(int32(v))
		}
		bm, dur, err := h.Srv.ImageViewAs(tenant, object.ID(id), name, img.Rect{X: rect[0], Y: rect[1], W: rect[2], H: rect[3]})
		if err != nil {
			return errResp(err)
		}
		payload, err := descriptor.EncodePart(descriptor.PartBitmap, bm)
		bm.Release() // the extract is per-request; the encoding is a copy
		if err != nil {
			return errResp(err)
		}
		return okResp(dur, payload)
	case OpVoicePreview:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		vp := h.Srv.VoicePreview(object.ID(id))
		if vp == nil {
			return errResp(fmt.Errorf("wire: no voice preview for object %d", id))
		}
		payload, err := descriptor.EncodePart(descriptor.PartVoice, vp)
		if err != nil {
			return errResp(err)
		}
		return okResp(0, payload)
	case OpList:
		return idsResp(h.Srv.IDs())
	case OpStats:
		return okResp(0, encodeStatsTagged(h.Srv.Stats()))
	case OpMode:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		m, ok := h.Srv.Mode(object.ID(id))
		if !ok {
			return errResp(fmt.Errorf("wire: unknown object %d", id))
		}
		return okResp(0, []byte{byte(m)})
	default:
		return errResp(fmt.Errorf("wire: unknown op %d", op))
	}
}

// --- stats encoding ---
//
// The STATS payload originally was a positional sequence of u64 counters,
// which made every new counter depend on append order forever. The tagged
// encoding replaces it: a marker byte, then repeated [u8 tag][u64 value]
// fields in any order. Decoders skip unknown tags (so servers may add
// counters freely) and tolerate absent ones (so clients keep working
// against servers that predate a counter). The marker cannot collide with
// a positional payload: the first positional byte is the top byte of the
// PieceReads counter, which would require ~10^18 piece reads to reach it.

const statsTagged = 0xF5

// Stats field tags. Append new counters with new tags — order on the wire
// no longer matters.
const (
	statsTagPieceReads      = 1
	statsTagBytesOut        = 2
	statsTagCacheHits       = 3
	statsTagCacheMiss       = 4
	statsTagDeviceWaits     = 5
	statsTagDeviceWaitNanos = 6
	statsTagReadAheadBlocks = 7
	statsTagShed            = 8
	statsTagEncodedHits     = 9
	statsTagEncodedMiss     = 10
	statsTagPoolAllocs      = 11
	statsTagPoolRecycled    = 12
)

func encodeStatsTagged(st server.Stats) []byte {
	out := []byte{statsTagged}
	field := func(tag byte, v int64) {
		out = append(out, tag)
		out = appendU64(out, uint64(v))
	}
	field(statsTagPieceReads, st.PieceReads)
	field(statsTagBytesOut, st.BytesOut)
	field(statsTagCacheHits, st.CacheHits)
	field(statsTagCacheMiss, st.CacheMiss)
	field(statsTagDeviceWaits, st.DeviceWaits)
	field(statsTagDeviceWaitNanos, st.DeviceWaitNanos)
	// Deliberately out of historical order: tagged decoding must not care.
	field(statsTagShed, st.Shed)
	field(statsTagReadAheadBlocks, st.ReadAheadBlocks)
	field(statsTagEncodedHits, st.EncodedHits)
	field(statsTagEncodedMiss, st.EncodedMiss)
	field(statsTagPoolAllocs, st.PoolAllocs)
	field(statsTagPoolRecycled, st.PoolRecycled)
	return out
}

func decodeStatsTagged(payload []byte) (server.Stats, error) {
	var st server.Stats
	c := &cursor{data: payload, pos: 1} // skip the marker
	for c.pos < len(payload) {
		tag, err := c.u8()
		if err != nil {
			return st, err
		}
		v, err := c.u64()
		if err != nil {
			return st, err
		}
		switch tag {
		case statsTagPieceReads:
			st.PieceReads = int64(v)
		case statsTagBytesOut:
			st.BytesOut = int64(v)
		case statsTagCacheHits:
			st.CacheHits = int64(v)
		case statsTagCacheMiss:
			st.CacheMiss = int64(v)
		case statsTagDeviceWaits:
			st.DeviceWaits = int64(v)
		case statsTagDeviceWaitNanos:
			st.DeviceWaitNanos = int64(v)
		case statsTagReadAheadBlocks:
			st.ReadAheadBlocks = int64(v)
		case statsTagShed:
			st.Shed = int64(v)
		case statsTagEncodedHits:
			st.EncodedHits = int64(v)
		case statsTagEncodedMiss:
			st.EncodedMiss = int64(v)
		case statsTagPoolAllocs:
			st.PoolAllocs = int64(v)
		case statsTagPoolRecycled:
			st.PoolRecycled = int64(v)
		default:
			// Unknown tag from a newer server: skip it.
		}
	}
	return st, nil
}

// decodeStatsPositional decodes the legacy fixed-order layout still emitted
// by pre-tagged servers: six required u64 fields plus optional appended
// ones.
func decodeStatsPositional(payload []byte) (server.Stats, error) {
	cur := &cursor{data: payload}
	var vals [7]uint64
	for i := range vals {
		v, err := cur.u64()
		if err != nil {
			if i >= 6 {
				break
			}
			return server.Stats{}, err
		}
		vals[i] = v
	}
	return server.Stats{
		PieceReads:      int64(vals[0]),
		BytesOut:        int64(vals[1]),
		CacheHits:       int64(vals[2]),
		CacheMiss:       int64(vals[3]),
		DeviceWaits:     int64(vals[4]),
		DeviceWaitNanos: int64(vals[5]),
		ReadAheadBlocks: int64(vals[6]),
	}, nil
}

func encodeIDs(ids []object.ID) []byte {
	out := appendU32(nil, uint32(len(ids)))
	for _, id := range ids {
		out = appendU64(out, uint64(id))
	}
	return out
}

// idsResp builds an OK response carrying an id list directly in a pooled
// buffer sized exactly, skipping the intermediate payload slice.
func idsResp(ids []object.ID) []byte {
	out := newResp(4 + 8*len(ids))
	out = appendU32(out, uint32(len(ids)))
	for _, id := range ids {
		out = appendU64(out, uint64(id))
	}
	return finishResp(out, statusOK, 0)
}

// Responses are built in pooled buffers: newResp reserves the fixed header,
// the handler appends the payload, finishResp patches the header in place.
//
// Ownership rule: Handle's return value may be pool-backed. The TCP serve
// loops (v1 loop, v2 muxConn) recycle it after the frame is written;
// LocalTransport hands it to the in-process client, which retains payload
// sub-slices, so it must never recycle. Anything that is not provably the
// last holder just lets the GC have it.
const respHeader = 13 // [status u8][device time u64][payload length u32]

// newResp returns a pooled response buffer with room for sizeHint payload
// bytes and the header bytes reserved (an over-estimate merely rounds up a
// size class; an under-estimate falls back to append growth).
func newResp(sizeHint int) []byte {
	return pool.Bytes.Get(respHeader + sizeHint)[:respHeader]
}

// finishResp fills in the reserved header of a newResp buffer.
func finishResp(out []byte, status byte, dur time.Duration) []byte {
	out[0] = status
	binary.BigEndian.PutUint64(out[1:9], uint64(dur))
	binary.BigEndian.PutUint32(out[9:13], uint32(len(out)-respHeader))
	return out
}

// recycleResponse hands a Handle response back to the buffer pool. Only the
// last holder — a serve loop that has finished writing the frame and kept no
// sub-slice — may call it; calling it is always optional.
func recycleResponse(resp []byte) { pool.Bytes.Put(resp) }

func okResp(dur time.Duration, payload []byte) []byte {
	out := newResp(len(payload))
	out = append(out, payload...)
	return finishResp(out, statusOK, dur)
}

func errResp(err error) []byte {
	status := byte(statusErr)
	if errors.Is(err, server.ErrBusy) {
		status = statusBusy
	}
	msg := err.Error()
	out := newResp(len(msg))
	out = append(out, msg...)
	return finishResp(out, status, 0)
}

// Client is the workstation-side stub. Every call runs under a retry loop:
// failures classified retryable (see IsRetryable) are re-issued after an
// exponential backoff, reconnecting first (with full HELLO renegotiation)
// when the failure means the connection is dead and a redial function is
// installed (EnableReconnect). All protocol ops are idempotent reads, so
// retrying is always safe.
type Client struct {
	mu     sync.Mutex
	t      Transport
	redial func() (Transport, error)
	retry  RetryPolicy
	// jitter is the backoff jitter source, hoisted out of the retry loop:
	// every retry of every call draws from this one generator (shareable
	// across clients via SetBackoffRand), so a fan-out of K concurrent
	// calls neither contends on a global lock nor allocates rand state.
	jitter *BackoffRand

	reconnects atomic.Int64
}

// NewClient wraps a transport.
func NewClient(t Transport) *Client {
	return &Client{t: t, retry: RetryPolicy{}.withDefaults(), jitter: newDefaultBackoffRand()}
}

// Close releases the transport.
func (c *Client) Close() error { return c.Transport().Close() }

func (c *Client) policy() (RetryPolicy, *BackoffRand) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry, c.jitter
}

// callCtx performs one request/response exchange under the retry loop,
// bounded by ctx.
func (c *Client) callCtx(ctx context.Context, req []byte) ([]byte, time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pol, rng := c.policy()
	var last error
	for attempt := 1; ; attempt++ {
		t := c.Transport()
		resp, err := roundTripCtx(ctx, t, req)
		if err == nil {
			var payload []byte
			var dur time.Duration
			payload, dur, err = parseResponse(resp)
			if err == nil {
				return payload, dur, nil
			}
		}
		last = err
		if ctx.Err() != nil || !IsRetryable(err) || attempt >= pol.MaxAttempts {
			return nil, 0, last
		}
		if NeedsReconnect(err) {
			if rerr := c.reconnect(t); rerr != nil {
				if errors.Is(rerr, errNoRedial) {
					// Without a redialer a dead connection stays dead:
					// retrying cannot help.
					return nil, 0, last
				}
				// Redial failed (server still down); back off and try
				// dialing again on the next attempt.
				last = fmt.Errorf("wire: reconnect: %w", rerr)
			}
		}
		if serr := sleepCtx(ctx, pol.backoff(attempt, rng)); serr != nil {
			return nil, 0, last
		}
	}
}

func (c *Client) call(req []byte) ([]byte, time.Duration, error) {
	return c.callCtx(context.Background(), req)
}

// startCtx launches a call without waiting for its response, pipelining
// over the transport when it supports that and falling back to a goroutine
// per call otherwise. Pipelined calls bypass the retry loop — the browse
// prefetcher treats their failures as cache misses and refetches in the
// foreground, which does retry.
func (c *Client) startCtx(ctx context.Context, req []byte) Pending {
	t := c.Transport()
	if cp, ok := t.(ContextPipeliner); ok {
		return cp.StartCtx(ctx, req)
	}
	if p, ok := t.(Pipeliner); ok {
		return p.Start(req)
	}
	ch := make(chan muxResult, 1)
	go func() {
		resp, err := roundTripCtx(ctx, t, req)
		ch <- muxResult{resp: resp, err: err}
	}()
	return &muxPending{m: &muxPendingState{ch: ch}}
}

// parseResponse splits a response message into payload and device time,
// converting server-reported errors. Busy responses (load shedding) wrap
// ErrServerBusy so the retry loop can classify them.
func parseResponse(resp []byte) ([]byte, time.Duration, error) {
	cur := &cursor{data: resp}
	status, err := cur.u8()
	if err != nil {
		return nil, 0, err
	}
	durN, err := cur.u64()
	if err != nil {
		return nil, 0, err
	}
	n, err := cur.u32()
	if err != nil {
		return nil, 0, err
	}
	if cur.pos+int(n) > len(resp) {
		return nil, 0, errShort
	}
	payload := cur.rest()[:n]
	switch status {
	case statusErr:
		return nil, 0, fmt.Errorf("wire: server: %s", payload)
	case statusBusy:
		return nil, 0, fmt.Errorf("%w: %s", ErrServerBusy, payload)
	}
	return payload, time.Duration(durN), nil
}

// QueryCtx evaluates a content query on the server, bounded by ctx.
func (c *Client) QueryCtx(ctx context.Context, terms ...string) ([]object.ID, time.Duration, error) {
	req := []byte{OpQuery}
	req = appendU32(req, uint32(len(terms)))
	for _, t := range terms {
		req = appendStr(req, t)
	}
	payload, dur, err := c.callCtx(ctx, req)
	if err != nil {
		return nil, dur, err
	}
	ids, err := decodeIDs(payload)
	return ids, dur, err
}

// Query evaluates a content query on the server.
func (c *Client) Query(terms ...string) ([]object.ID, time.Duration, error) {
	return c.QueryCtx(context.Background(), terms...)
}

// encodeQueryPlannedReq builds an OpQueryPlanned request message.
func encodeQueryPlannedReq(q index.Query) []byte {
	req := []byte{OpQueryPlanned, byte(q.Kind)}
	req = appendU32(req, q.DateFrom)
	req = appendU32(req, q.DateTo)
	req = appendU32(req, uint32(len(q.Terms)))
	for _, t := range q.Terms {
		req = appendStr(req, t)
	}
	return req
}

// QueryPlannedCtx evaluates a planned content query — conjunctive terms
// plus attribute predicates — on the server's segmented index, bounded by
// ctx. Against a pre-planner server the op fails as unknown; a filterless
// query then falls back to the legacy OpQuery (same result set), while a
// query with attribute predicates reports the error, since the old op
// cannot honour them.
func (c *Client) QueryPlannedCtx(ctx context.Context, q index.Query) ([]object.ID, time.Duration, error) {
	if len(q.Terms) > MaxQueryTerms {
		return nil, 0, fmt.Errorf("wire: query of %d terms exceeds %d", len(q.Terms), MaxQueryTerms)
	}
	payload, dur, err := c.callCtx(ctx, encodeQueryPlannedReq(q))
	if err != nil {
		if isUnknownOp(err) && !q.HasFilters() {
			return c.QueryCtx(ctx, q.Terms...)
		}
		return nil, dur, err
	}
	ids, err := decodeIDs(payload)
	return ids, dur, err
}

// QueryPlanned evaluates a planned content query on the server.
func (c *Client) QueryPlanned(q index.Query) ([]object.ID, time.Duration, error) {
	return c.QueryPlannedCtx(context.Background(), q)
}

// DescriptorCtx fetches and parses an object descriptor, bounded by ctx.
func (c *Client) DescriptorCtx(ctx context.Context, id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	req := appendU64([]byte{OpDescriptor}, uint64(id))
	payload, dur, err := c.callCtx(ctx, req)
	if err != nil {
		return nil, dur, err
	}
	d, err := descriptor.Parse(payload)
	return d, dur, err
}

// Descriptor fetches and parses an object descriptor.
func (c *Client) Descriptor(id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	return c.DescriptorCtx(context.Background(), id)
}

// ReadPieceCtx fetches an archiver-absolute byte extent, bounded by ctx.
func (c *Client) ReadPieceCtx(ctx context.Context, off, length uint64) ([]byte, time.Duration, error) {
	req := appendU64([]byte{OpReadPiece}, off)
	req = appendU64(req, length)
	return c.callCtx(ctx, req)
}

// ReadPiece fetches an archiver-absolute byte extent.
func (c *Client) ReadPiece(off, length uint64) ([]byte, time.Duration, error) {
	return c.ReadPieceCtx(context.Background(), off, length)
}

// ObjectPieceCtx fetches a byte extent of the archive holding object id.
// On the single-server client the id is advisory — one server owns every
// object, so it reduces to ReadPieceCtx — but it makes the call routable:
// a fleet client uses the same signature to send the read to the shard
// whose archive the descriptor's offsets are absolute in.
func (c *Client) ObjectPieceCtx(ctx context.Context, _ object.ID, off, length uint64) ([]byte, time.Duration, error) {
	return c.ReadPieceCtx(ctx, off, length)
}

// MiniatureCtx fetches an object miniature. It rides the batched
// OpMiniatures path (a batch of one), falling back to the legacy single-
// shot op against servers that predate batching.
func (c *Client) MiniatureCtx(ctx context.Context, id object.ID) (*img.Bitmap, time.Duration, error) {
	res, dur, err := c.MiniaturesCtx(ctx, []object.ID{id})
	if err != nil {
		if isUnknownOp(err) {
			return c.miniatureSingle(ctx, id)
		}
		return nil, dur, err
	}
	if !res[0].OK {
		return nil, dur, fmt.Errorf("wire: no miniature for object %d", id)
	}
	return res[0].Mini, dur, nil
}

// Miniature fetches an object miniature.
//
// Deprecated: use MiniaturesCtx — one round trip fetches a whole batch with
// driving modes included. Miniature is kept as a thin wrapper over the
// batched path.
func (c *Client) Miniature(id object.ID) (*img.Bitmap, time.Duration, error) {
	return c.MiniatureCtx(context.Background(), id)
}

// miniatureSingle is the pre-batching wire op, kept for servers that answer
// OpMiniatures with an unknown-op error.
func (c *Client) miniatureSingle(ctx context.Context, id object.ID) (*img.Bitmap, time.Duration, error) {
	req := appendU64([]byte{OpMiniature}, uint64(id))
	payload, dur, err := c.callCtx(ctx, req)
	if err != nil {
		return nil, dur, err
	}
	v, err := descriptor.DecodePart(descriptor.PartBitmap, payload)
	if err != nil {
		return nil, dur, err
	}
	return v.(*img.Bitmap), dur, nil
}

// isUnknownOp reports whether err is a server rejection of an op it does
// not implement (an older protocol peer).
func isUnknownOp(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown op")
}

// MiniatureResult is one entry of a batched miniature fetch.
type MiniatureResult struct {
	ID object.ID
	// OK reports whether the server has a miniature for the id; Mini is
	// nil otherwise.
	OK   bool
	Mini *img.Bitmap
	// Mode is the object's driving mode, shipped with the miniature so
	// sequential browsing does not pay a second round trip per step to
	// learn whether a voice preview applies.
	Mode object.Mode
}

// MiniaturesCtx fetches up to MaxMiniatureBatch miniatures (plus driving
// modes) in a single round trip, bounded by ctx; results align with ids.
// Missing miniatures come back with OK=false rather than failing the batch.
// This path runs under the retry loop; the pipelined MiniaturesStart does
// not.
func (c *Client) MiniaturesCtx(ctx context.Context, ids []object.ID) ([]MiniatureResult, time.Duration, error) {
	payload, dur, err := c.callCtx(ctx, encodeMiniaturesReq(ids))
	if err != nil {
		return nil, dur, err
	}
	res, err := decodeMiniatures(ids, payload)
	return res, dur, err
}

// Miniatures fetches a miniature batch in one round trip.
func (c *Client) Miniatures(ids []object.ID) ([]MiniatureResult, time.Duration, error) {
	return c.MiniaturesCtx(context.Background(), ids)
}

// PendingMiniatures is an in-flight batched miniature fetch.
type PendingMiniatures struct {
	ids []object.ID
	p   Pending
}

func encodeMiniaturesReq(ids []object.ID) []byte {
	req := appendU32([]byte{OpMiniatures}, uint32(len(ids)))
	for _, id := range ids {
		req = appendU64(req, uint64(id))
	}
	return req
}

// MiniatureBatch is an in-flight batched miniature fetch, abstracted so
// backend-agnostic consumers (the workstation prefetcher) can pipeline
// batches without naming the concrete client that issued them.
type MiniatureBatch interface {
	// Wait collects the batch's results.
	Wait() ([]MiniatureResult, time.Duration, error)
}

// MiniaturesStartCtx launches a batched miniature fetch without waiting —
// the browse prefetcher keeps several of these in flight on a pipelined
// transport while the user views the current miniature.
func (c *Client) MiniaturesStartCtx(ctx context.Context, ids []object.ID) *PendingMiniatures {
	return &PendingMiniatures{ids: ids, p: c.startCtx(ctx, encodeMiniaturesReq(ids))}
}

// StartMiniatures implements the workstation Backend's pipelined miniature
// hook: it is MiniaturesStartCtx behind the interface return type.
func (c *Client) StartMiniatures(ctx context.Context, ids []object.ID) MiniatureBatch {
	return c.MiniaturesStartCtx(ctx, ids)
}

// MiniaturesStart launches a batched miniature fetch without waiting.
func (c *Client) MiniaturesStart(ids []object.ID) *PendingMiniatures {
	return c.MiniaturesStartCtx(context.Background(), ids)
}

// Wait collects the batch's results.
func (pm *PendingMiniatures) Wait() ([]MiniatureResult, time.Duration, error) {
	resp, err := pm.p.Wait()
	if err != nil {
		return nil, 0, err
	}
	payload, dur, err := parseResponse(resp)
	if err != nil {
		return nil, dur, err
	}
	res, err := decodeMiniatures(pm.ids, payload)
	return res, dur, err
}

// decodeMiniatures parses an OpMiniatures response payload against the
// request's id list.
func decodeMiniatures(ids []object.ID, payload []byte) ([]MiniatureResult, error) {
	cur := &cursor{data: payload}
	n, err := cur.u32()
	if err != nil {
		return nil, err
	}
	if int(n) != len(ids) {
		return nil, fmt.Errorf("wire: miniature batch returned %d entries for %d ids", n, len(ids))
	}
	out := make([]MiniatureResult, 0, len(ids))
	for i := range ids {
		present, err := cur.u8()
		if err != nil {
			return nil, err
		}
		mode, err := cur.u8()
		if err != nil {
			return nil, err
		}
		r := MiniatureResult{ID: ids[i], Mode: object.Mode(mode)}
		if present != 0 {
			ln, err := cur.u32()
			if err != nil {
				return nil, err
			}
			if cur.pos+int(ln) > len(payload) {
				return nil, errShort
			}
			raw := payload[cur.pos : cur.pos+int(ln)]
			cur.pos += int(ln)
			v, err := descriptor.DecodePart(descriptor.PartBitmap, raw)
			if err != nil {
				return nil, err
			}
			r.OK = true
			r.Mini = v.(*img.Bitmap)
		}
		out = append(out, r)
	}
	return out, nil
}

// ImageViewCtx fetches only the given rectangle of an image part (§2
// views), bounded by ctx: the response carries the view's pixels, not the
// whole image.
func (c *Client) ImageViewCtx(ctx context.Context, id object.ID, name string, r img.Rect) (*img.Bitmap, time.Duration, error) {
	req := appendU64([]byte{OpImageView}, uint64(id))
	req = appendStr(req, name)
	for _, v := range []int{r.X, r.Y, r.W, r.H} {
		req = appendU32(req, uint32(int32(v)))
	}
	payload, dur, err := c.callCtx(ctx, req)
	if err != nil {
		return nil, dur, err
	}
	v, err := descriptor.DecodePart(descriptor.PartBitmap, payload)
	if err != nil {
		return nil, dur, err
	}
	return v.(*img.Bitmap), dur, nil
}

// ImageView fetches only the given rectangle of an image part.
func (c *Client) ImageView(id object.ID, name string, r img.Rect) (*img.Bitmap, time.Duration, error) {
	return c.ImageViewCtx(context.Background(), id, name, r)
}

// VoicePreviewCtx fetches the voice preview of an audio-mode object, played
// "as the miniature passes through the screen" (§5), bounded by ctx.
func (c *Client) VoicePreviewCtx(ctx context.Context, id object.ID) (*voice.Part, time.Duration, error) {
	req := appendU64([]byte{OpVoicePreview}, uint64(id))
	payload, dur, err := c.callCtx(ctx, req)
	if err != nil {
		return nil, dur, err
	}
	v, err := descriptor.DecodePart(descriptor.PartVoice, payload)
	if err != nil {
		return nil, dur, err
	}
	return v.(*voice.Part), dur, nil
}

// VoicePreview fetches the voice preview of an audio-mode object.
//
// Deprecated: use VoiceStreamCtx — the credit-based voice stream starts
// playback after the first chunk instead of buffering a whole preview, and
// the server caps OpVoicePreview at a page-sized prefix. VoicePreviewCtx
// remains only as the fallback for peers that did not negotiate streams.
func (c *Client) VoicePreview(id object.ID) (*voice.Part, time.Duration, error) {
	return c.VoicePreviewCtx(context.Background(), id)
}

// ListCtx returns all published object ids, bounded by ctx.
func (c *Client) ListCtx(ctx context.Context) ([]object.ID, time.Duration, error) {
	payload, dur, err := c.callCtx(ctx, []byte{OpList})
	if err != nil {
		return nil, dur, err
	}
	ids, err := decodeIDs(payload)
	return ids, dur, err
}

// List returns all published object ids.
func (c *Client) List() ([]object.ID, time.Duration, error) {
	return c.ListCtx(context.Background())
}

// ModeCtx returns an object's driving mode. Like MiniatureCtx it rides the
// batched OpMiniatures path (which ships modes alongside miniatures), with
// a fallback to the legacy OpMode against servers that predate batching.
// Every adopted object carries a miniature, so a batch entry with OK=false
// means the object is unknown.
func (c *Client) ModeCtx(ctx context.Context, id object.ID) (object.Mode, error) {
	res, _, err := c.MiniaturesCtx(ctx, []object.ID{id})
	if err != nil {
		if isUnknownOp(err) {
			return c.modeSingle(ctx, id)
		}
		return 0, err
	}
	if !res[0].OK {
		return 0, fmt.Errorf("wire: unknown object %d", id)
	}
	return res[0].Mode, nil
}

// Mode returns an object's driving mode.
//
// Deprecated: use MiniaturesCtx — the batched miniature fetch ships each
// object's driving mode with its miniature, so a separate mode round trip
// is never needed. Mode is kept as a thin wrapper over the batched path.
func (c *Client) Mode(id object.ID) (object.Mode, error) {
	return c.ModeCtx(context.Background(), id)
}

// modeSingle is the pre-batching wire op, kept for servers that answer
// OpMiniatures with an unknown-op error.
func (c *Client) modeSingle(ctx context.Context, id object.ID) (object.Mode, error) {
	req := appendU64([]byte{OpMode}, uint64(id))
	payload, _, err := c.callCtx(ctx, req)
	if err != nil {
		return 0, err
	}
	if len(payload) != 1 {
		return 0, errShort
	}
	return object.Mode(payload[0]), nil
}

// StatsCtx fetches the server's request/cache/contention counters — the
// load simulation and cmd/minos-server use it to report device contention.
// It decodes both the tagged encoding and the positional layout of
// pre-tagged servers.
func (c *Client) StatsCtx(ctx context.Context) (server.Stats, error) {
	payload, _, err := c.callCtx(ctx, []byte{OpStats})
	if err != nil {
		return server.Stats{}, err
	}
	if len(payload) > 0 && payload[0] == statsTagged {
		return decodeStatsTagged(payload)
	}
	return decodeStatsPositional(payload)
}

// Stats fetches the server's request/cache/contention counters.
func (c *Client) Stats() (server.Stats, error) {
	return c.StatsCtx(context.Background())
}

// ClusterMapCtx fetches the server's encoded cluster map when it has moved
// past the client's epoch. changed=false (with a nil payload) means the
// server's map still has that epoch; an error means the server is not part
// of a cluster (or the call failed). The payload encoding belongs to
// internal/cluster — the wire layer ships it opaquely.
func (c *Client) ClusterMapCtx(ctx context.Context, epoch uint64) (payload []byte, changed bool, err error) {
	req := appendU64([]byte{OpClusterMap}, epoch)
	resp, _, err := c.callCtx(ctx, req)
	if err != nil {
		return nil, false, err
	}
	if len(resp) < 1 {
		return nil, false, errShort
	}
	if resp[0] == 0 {
		return nil, false, nil
	}
	return resp[1:], true, nil
}

// Fetch adapts the client into a descriptor.FetchFunc, accumulating device
// time into dur if non-nil.
func (c *Client) Fetch(dur *time.Duration) descriptor.FetchFunc {
	return func(ref descriptor.PartRef) ([]byte, error) {
		data, t, err := c.ReadPiece(ref.Offset, ref.Length)
		if dur != nil {
			*dur += t
		}
		return data, err
	}
}

func decodeIDs(payload []byte) ([]object.ID, error) {
	c := &cursor{data: payload}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	// Each id occupies 8 payload bytes; validate before preallocating so
	// a corrupt count cannot drive a huge allocation.
	if uint64(len(c.rest())) < uint64(n)*8 {
		return nil, errShort
	}
	ids := make([]object.ID, 0, n)
	for i := uint32(0); i < n; i++ {
		v, err := c.u64()
		if err != nil {
			return nil, err
		}
		ids = append(ids, object.ID(v))
	}
	return ids, nil
}

// --- framing over byte streams (TCP) ---

// WriteFrame writes a length-prefixed message.
func WriteFrame(w io.Writer, msg []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadFrame reads one length-prefixed message (up to 64 MiB).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("wire: oversized frame %d", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// readFramePooled is ReadFrame with the message read into a pooled buffer
// scratched through hdr (a per-connection [4]byte so the header read does
// not allocate). The caller owns the frame and recycles it when done.
func readFramePooled(r io.Reader, hdr *[4]byte) ([]byte, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("wire: oversized frame %d", n)
	}
	msg := pool.Bytes.Get(int(n))
	if _, err := io.ReadFull(r, msg); err != nil {
		pool.Bytes.Put(msg)
		return nil, err
	}
	return msg, nil
}

// writeFramePooled writes msg as one length-prefixed frame with a single
// Write call, staging header and body in a pooled buffer (WriteFrame's two
// writes cost a syscall each on a TCP conn).
func writeFramePooled(w io.Writer, msg []byte) error {
	out := pool.Bytes.Get(4 + len(msg))
	binary.BigEndian.PutUint32(out, uint32(len(msg)))
	copy(out[4:], msg)
	_, err := w.Write(out)
	pool.Bytes.Put(out)
	return err
}
