// Package wire implements the workstation ↔ object-server protocol. The
// paper's architecture (§5) connects workstations to the server subsystem
// "through high capacity links" (Ethernet in the 1986 implementation); here
// the protocol runs over real TCP (net) or over an in-memory simulated link
// with a latency/bandwidth model, so experiments can account for bytes
// moved and transfer time (the E-VIEW and E-MINI experiments depend on
// this).
//
// The protocol is piece-oriented, matching the server interface: the
// workstation fetches descriptors, byte extents, miniatures and query
// results — never whole objects in one request.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"minos/internal/descriptor"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/server"
	"minos/internal/voice"
)

// Op codes.
const (
	OpQuery        = 1
	OpDescriptor   = 2
	OpReadPiece    = 3
	OpMiniature    = 4
	OpList         = 5
	OpMode         = 6
	OpImageView    = 7
	OpVoicePreview = 8
	OpStats        = 9
	// OpHello negotiates the protocol version (see ProtocolV2 in mux.go).
	// A v1 server answers it with an unknown-op error, which the client
	// treats as "version 1".
	OpHello = 10
	// OpMiniatures fetches up to MaxMiniatureBatch miniatures (with their
	// driving modes) in one round trip — the batched op behind the
	// sequential-browsing prefetch pipeline.
	OpMiniatures = 11
)

// MaxMiniatureBatch bounds the ids accepted by one OpMiniatures request;
// larger batches are rejected rather than letting a client drive an
// arbitrarily large response.
const MaxMiniatureBatch = 1024

// Response status codes.
const (
	statusOK  = 0
	statusErr = 1
)

var errShort = errors.New("wire: short message")

// Transport carries one request/response exchange.
type Transport interface {
	RoundTrip(req []byte) (resp []byte, err error)
	// Close releases the transport.
	Close() error
}

// --- message building ---

func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

type cursor struct {
	data []byte
	pos  int
}

func (c *cursor) u8() (byte, error) {
	if c.pos >= len(c.data) {
		return 0, errShort
	}
	v := c.data[c.pos]
	c.pos++
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.pos+4 > len(c.data) {
		return 0, errShort
	}
	v := binary.BigEndian.Uint32(c.data[c.pos:])
	c.pos += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.pos+8 > len(c.data) {
		return 0, errShort
	}
	v := binary.BigEndian.Uint64(c.data[c.pos:])
	c.pos += 8
	return v, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if c.pos+int(n) > len(c.data) {
		return "", errShort
	}
	s := string(c.data[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s, nil
}

func (c *cursor) rest() []byte { return c.data[c.pos:] }

// Handler serves protocol requests against a server.
type Handler struct {
	Srv *server.Server
}

// Handle processes one request message and returns the response message.
func (h *Handler) Handle(req []byte) []byte {
	c := &cursor{data: req}
	op, err := c.u8()
	if err != nil {
		return errResp(err)
	}
	switch op {
	case OpQuery:
		n, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		// Cap the preallocation: n is client-controlled, and each term
		// needs at least 4 bytes of request, so anything beyond the
		// remaining request length fails below anyway.
		terms := make([]string, 0, min(int(n), len(c.rest())/4+1))
		for i := uint32(0); i < n; i++ {
			s, err := c.str()
			if err != nil {
				return errResp(err)
			}
			terms = append(terms, s)
		}
		ids := h.Srv.Query(terms...)
		return okResp(0, encodeIDs(ids))
	case OpDescriptor:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		d, dur, err := h.Srv.Descriptor(object.ID(id))
		if err != nil {
			return errResp(err)
		}
		return okResp(dur, d.Encode())
	case OpReadPiece:
		off, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		length, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		data, dur, err := h.Srv.ReadPiece(off, length)
		if err != nil {
			return errResp(err)
		}
		return okResp(dur, data)
	case OpMiniature:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		m := h.Srv.Miniature(object.ID(id))
		if m == nil {
			return errResp(fmt.Errorf("wire: no miniature for object %d", id))
		}
		payload, err := descriptor.EncodePart(descriptor.PartBitmap, m)
		if err != nil {
			return errResp(err)
		}
		return okResp(0, payload)
	case OpMiniatures:
		n, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		if n > MaxMiniatureBatch {
			return errResp(fmt.Errorf("wire: miniature batch of %d exceeds %d", n, MaxMiniatureBatch))
		}
		out := appendU32(nil, n)
		for i := uint32(0); i < n; i++ {
			id, err := c.u64()
			if err != nil {
				return errResp(err)
			}
			mode, _ := h.Srv.Mode(object.ID(id))
			m := h.Srv.Miniature(object.ID(id))
			if m == nil {
				// Absent entries are in-band (present=0): one missing
				// miniature must not fail the whole batch.
				out = append(out, 0, byte(mode))
				continue
			}
			payload, err := descriptor.EncodePart(descriptor.PartBitmap, m)
			if err != nil {
				return errResp(err)
			}
			out = append(out, 1, byte(mode))
			out = appendU32(out, uint32(len(payload)))
			out = append(out, payload...)
		}
		return okResp(0, out)
	case OpHello:
		v, err := c.u32()
		if err != nil {
			return errResp(err)
		}
		neg := uint32(ProtocolV2)
		if v < neg {
			neg = v
		}
		if neg < ProtocolV1 {
			return errResp(fmt.Errorf("wire: unsupported protocol version %d", v))
		}
		return okResp(0, appendU32(nil, neg))
	case OpImageView:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		name, err := c.str()
		if err != nil {
			return errResp(err)
		}
		var rect [4]int
		for i := range rect {
			v, err := c.u32()
			if err != nil {
				return errResp(err)
			}
			rect[i] = int(int32(v))
		}
		bm, dur, err := h.Srv.ImageView(object.ID(id), name, img.Rect{X: rect[0], Y: rect[1], W: rect[2], H: rect[3]})
		if err != nil {
			return errResp(err)
		}
		payload, err := descriptor.EncodePart(descriptor.PartBitmap, bm)
		if err != nil {
			return errResp(err)
		}
		return okResp(dur, payload)
	case OpVoicePreview:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		vp := h.Srv.VoicePreview(object.ID(id))
		if vp == nil {
			return errResp(fmt.Errorf("wire: no voice preview for object %d", id))
		}
		payload, err := descriptor.EncodePart(descriptor.PartVoice, vp)
		if err != nil {
			return errResp(err)
		}
		return okResp(0, payload)
	case OpList:
		return okResp(0, encodeIDs(h.Srv.IDs()))
	case OpStats:
		st := h.Srv.Stats()
		out := appendU64(nil, uint64(st.PieceReads))
		out = appendU64(out, uint64(st.BytesOut))
		out = appendU64(out, uint64(st.CacheHits))
		out = appendU64(out, uint64(st.CacheMiss))
		out = appendU64(out, uint64(st.DeviceWaits))
		out = appendU64(out, uint64(st.DeviceWaitNanos))
		// Appended after v1: old clients read the first six and ignore
		// the rest; new clients tolerate the field being absent.
		out = appendU64(out, uint64(st.ReadAheadBlocks))
		return okResp(0, out)
	case OpMode:
		id, err := c.u64()
		if err != nil {
			return errResp(err)
		}
		m, ok := h.Srv.Mode(object.ID(id))
		if !ok {
			return errResp(fmt.Errorf("wire: unknown object %d", id))
		}
		return okResp(0, []byte{byte(m)})
	default:
		return errResp(fmt.Errorf("wire: unknown op %d", op))
	}
}

func encodeIDs(ids []object.ID) []byte {
	out := appendU32(nil, uint32(len(ids)))
	for _, id := range ids {
		out = appendU64(out, uint64(id))
	}
	return out
}

func okResp(dur time.Duration, payload []byte) []byte {
	out := []byte{statusOK}
	out = appendU64(out, uint64(dur))
	out = appendU32(out, uint32(len(payload)))
	return append(out, payload...)
}

func errResp(err error) []byte {
	msg := err.Error()
	out := []byte{statusErr}
	out = appendU64(out, 0)
	out = appendU32(out, uint32(len(msg)))
	return append(out, msg...)
}

// Client is the workstation-side stub.
type Client struct {
	t Transport
}

// NewClient wraps a transport.
func NewClient(t Transport) *Client { return &Client{t: t} }

// Close releases the transport.
func (c *Client) Close() error { return c.t.Close() }

func (c *Client) call(req []byte) ([]byte, time.Duration, error) {
	resp, err := c.t.RoundTrip(req)
	if err != nil {
		return nil, 0, err
	}
	return parseResponse(resp)
}

// start launches a call without waiting for its response, pipelining over
// the transport when it supports that and falling back to a goroutine per
// call otherwise.
func (c *Client) start(req []byte) Pending {
	if p, ok := c.t.(Pipeliner); ok {
		return p.Start(req)
	}
	ch := make(chan muxResult, 1)
	go func() {
		resp, err := c.t.RoundTrip(req)
		ch <- muxResult{resp: resp, err: err}
	}()
	return &muxPending{m: &muxPendingState{ch: ch}}
}

// parseResponse splits a response message into payload and device time,
// converting server-reported errors.
func parseResponse(resp []byte) ([]byte, time.Duration, error) {
	cur := &cursor{data: resp}
	status, err := cur.u8()
	if err != nil {
		return nil, 0, err
	}
	durN, err := cur.u64()
	if err != nil {
		return nil, 0, err
	}
	n, err := cur.u32()
	if err != nil {
		return nil, 0, err
	}
	if cur.pos+int(n) > len(resp) {
		return nil, 0, errShort
	}
	payload := cur.rest()[:n]
	if status == statusErr {
		return nil, 0, fmt.Errorf("wire: server: %s", payload)
	}
	return payload, time.Duration(durN), nil
}

// Query evaluates a content query on the server.
func (c *Client) Query(terms ...string) ([]object.ID, time.Duration, error) {
	req := []byte{OpQuery}
	req = appendU32(req, uint32(len(terms)))
	for _, t := range terms {
		req = appendStr(req, t)
	}
	payload, dur, err := c.call(req)
	if err != nil {
		return nil, dur, err
	}
	ids, err := decodeIDs(payload)
	return ids, dur, err
}

// Descriptor fetches and parses an object descriptor.
func (c *Client) Descriptor(id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	req := appendU64([]byte{OpDescriptor}, uint64(id))
	payload, dur, err := c.call(req)
	if err != nil {
		return nil, dur, err
	}
	d, err := descriptor.Parse(payload)
	return d, dur, err
}

// ReadPiece fetches an archiver-absolute byte extent.
func (c *Client) ReadPiece(off, length uint64) ([]byte, time.Duration, error) {
	req := appendU64([]byte{OpReadPiece}, off)
	req = appendU64(req, length)
	return c.call(req)
}

// Miniature fetches an object miniature.
func (c *Client) Miniature(id object.ID) (*img.Bitmap, time.Duration, error) {
	req := appendU64([]byte{OpMiniature}, uint64(id))
	payload, dur, err := c.call(req)
	if err != nil {
		return nil, dur, err
	}
	v, err := descriptor.DecodePart(descriptor.PartBitmap, payload)
	if err != nil {
		return nil, dur, err
	}
	return v.(*img.Bitmap), dur, nil
}

// MiniatureResult is one entry of a batched miniature fetch.
type MiniatureResult struct {
	ID object.ID
	// OK reports whether the server has a miniature for the id; Mini is
	// nil otherwise.
	OK   bool
	Mini *img.Bitmap
	// Mode is the object's driving mode, shipped with the miniature so
	// sequential browsing does not pay a second round trip per step to
	// learn whether a voice preview applies.
	Mode object.Mode
}

// Miniatures fetches up to MaxMiniatureBatch miniatures (plus driving
// modes) in a single round trip; results align with ids. Missing
// miniatures come back with OK=false rather than failing the batch.
func (c *Client) Miniatures(ids []object.ID) ([]MiniatureResult, time.Duration, error) {
	p := c.MiniaturesStart(ids)
	return p.Wait()
}

// PendingMiniatures is an in-flight batched miniature fetch.
type PendingMiniatures struct {
	ids []object.ID
	p   Pending
}

// MiniaturesStart launches a batched miniature fetch without waiting —
// the browse prefetcher keeps several of these in flight on a pipelined
// transport while the user views the current miniature.
func (c *Client) MiniaturesStart(ids []object.ID) *PendingMiniatures {
	req := appendU32([]byte{OpMiniatures}, uint32(len(ids)))
	for _, id := range ids {
		req = appendU64(req, uint64(id))
	}
	return &PendingMiniatures{ids: ids, p: c.start(req)}
}

// Wait collects the batch's results.
func (pm *PendingMiniatures) Wait() ([]MiniatureResult, time.Duration, error) {
	resp, err := pm.p.Wait()
	if err != nil {
		return nil, 0, err
	}
	payload, dur, err := parseResponse(resp)
	if err != nil {
		return nil, dur, err
	}
	cur := &cursor{data: payload}
	n, err := cur.u32()
	if err != nil {
		return nil, dur, err
	}
	if int(n) != len(pm.ids) {
		return nil, dur, fmt.Errorf("wire: miniature batch returned %d entries for %d ids", n, len(pm.ids))
	}
	out := make([]MiniatureResult, 0, len(pm.ids))
	for i := range pm.ids {
		present, err := cur.u8()
		if err != nil {
			return nil, dur, err
		}
		mode, err := cur.u8()
		if err != nil {
			return nil, dur, err
		}
		r := MiniatureResult{ID: pm.ids[i], Mode: object.Mode(mode)}
		if present != 0 {
			ln, err := cur.u32()
			if err != nil {
				return nil, dur, err
			}
			if cur.pos+int(ln) > len(payload) {
				return nil, dur, errShort
			}
			raw := payload[cur.pos : cur.pos+int(ln)]
			cur.pos += int(ln)
			v, err := descriptor.DecodePart(descriptor.PartBitmap, raw)
			if err != nil {
				return nil, dur, err
			}
			r.OK = true
			r.Mini = v.(*img.Bitmap)
		}
		out = append(out, r)
	}
	return out, dur, nil
}

// ImageView fetches only the given rectangle of an image part (§2 views):
// the response carries the view's pixels, not the whole image.
func (c *Client) ImageView(id object.ID, name string, r img.Rect) (*img.Bitmap, time.Duration, error) {
	req := appendU64([]byte{OpImageView}, uint64(id))
	req = appendStr(req, name)
	for _, v := range []int{r.X, r.Y, r.W, r.H} {
		req = appendU32(req, uint32(int32(v)))
	}
	payload, dur, err := c.call(req)
	if err != nil {
		return nil, dur, err
	}
	v, err := descriptor.DecodePart(descriptor.PartBitmap, payload)
	if err != nil {
		return nil, dur, err
	}
	return v.(*img.Bitmap), dur, nil
}

// VoicePreview fetches the voice preview of an audio-mode object, played
// "as the miniature passes through the screen" (§5).
func (c *Client) VoicePreview(id object.ID) (*voice.Part, time.Duration, error) {
	req := appendU64([]byte{OpVoicePreview}, uint64(id))
	payload, dur, err := c.call(req)
	if err != nil {
		return nil, dur, err
	}
	v, err := descriptor.DecodePart(descriptor.PartVoice, payload)
	if err != nil {
		return nil, dur, err
	}
	return v.(*voice.Part), dur, nil
}

// List returns all published object ids.
func (c *Client) List() ([]object.ID, time.Duration, error) {
	payload, dur, err := c.call([]byte{OpList})
	if err != nil {
		return nil, dur, err
	}
	ids, err := decodeIDs(payload)
	return ids, dur, err
}

// Mode returns an object's driving mode.
func (c *Client) Mode(id object.ID) (object.Mode, error) {
	req := appendU64([]byte{OpMode}, uint64(id))
	payload, _, err := c.call(req)
	if err != nil {
		return 0, err
	}
	if len(payload) != 1 {
		return 0, errShort
	}
	return object.Mode(payload[0]), nil
}

// Stats fetches the server's request/cache/contention counters — the load
// simulation and cmd/minos-server use it to report device contention.
func (c *Client) Stats() (server.Stats, error) {
	payload, _, err := c.call([]byte{OpStats})
	if err != nil {
		return server.Stats{}, err
	}
	cur := &cursor{data: payload}
	// The first six fields are the v1 layout and are required; fields
	// appended later (read-ahead) default to zero against older servers.
	var vals [7]uint64
	for i := range vals {
		if vals[i], err = cur.u64(); err != nil {
			if i >= 6 {
				break
			}
			return server.Stats{}, err
		}
	}
	return server.Stats{
		PieceReads:      int64(vals[0]),
		BytesOut:        int64(vals[1]),
		CacheHits:       int64(vals[2]),
		CacheMiss:       int64(vals[3]),
		DeviceWaits:     int64(vals[4]),
		DeviceWaitNanos: int64(vals[5]),
		ReadAheadBlocks: int64(vals[6]),
	}, nil
}

// Fetch adapts the client into a descriptor.FetchFunc, accumulating device
// time into dur if non-nil.
func (c *Client) Fetch(dur *time.Duration) descriptor.FetchFunc {
	return func(ref descriptor.PartRef) ([]byte, error) {
		data, t, err := c.ReadPiece(ref.Offset, ref.Length)
		if dur != nil {
			*dur += t
		}
		return data, err
	}
}

func decodeIDs(payload []byte) ([]object.ID, error) {
	c := &cursor{data: payload}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	// Each id occupies 8 payload bytes; validate before preallocating so
	// a corrupt count cannot drive a huge allocation.
	if uint64(len(c.rest())) < uint64(n)*8 {
		return nil, errShort
	}
	ids := make([]object.ID, 0, n)
	for i := uint32(0); i < n; i++ {
		v, err := c.u64()
		if err != nil {
			return nil, err
		}
		ids = append(ids, object.ID(v))
	}
	return ids, nil
}

// --- framing over byte streams (TCP) ---

// WriteFrame writes a length-prefixed message.
func WriteFrame(w io.Writer, msg []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadFrame reads one length-prefixed message (up to 64 MiB).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("wire: oversized frame %d", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}
