package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"minos/internal/pool"
)

// Protocol versions negotiated by the HELLO op. Version 1 is the original
// lock-step protocol: one frame out, one frame back, strictly alternating.
// Version 2 multiplexes many in-flight exchanges over one connection by
// prefixing every frame (in both directions) with a 4-byte correlation id,
// which is what lets the browse prefetch pipeline overlap delivery with
// viewing instead of paying a full link round trip per cursor step.
// Version 3 keeps v2's framing and adds server-push streams (see
// stream.go): one correlation id may carry a whole sequence of stream
// frames under credit-based flow control. Peers that negotiate v2 or v1
// keep the single-frame paths byte for byte — stream ops are simply never
// sent to them.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	ProtocolV3 = 3
)

// Errors surfaced by pipelined calls.
var (
	// ErrCallTimeout reports a call that exceeded its per-call deadline.
	// The connection stays usable: the late response is discarded by the
	// demultiplexer when (if) it arrives.
	ErrCallTimeout = errors.New("wire: call timed out")
	// ErrTransportClosed reports a call attempted or in flight when the
	// connection died; every pending call fails with an error wrapping it.
	ErrTransportClosed = errors.New("wire: transport closed")
)

// Pending is one in-flight exchange started on a pipelined transport.
type Pending interface {
	// Wait blocks until the response (or the call's failure) arrives.
	Wait() ([]byte, error)
}

// Pipeliner is a Transport that can carry many concurrent exchanges at
// once. Transports that cannot (the lock-step TCPTransport) are adapted by
// the client with a goroutine per call, which still overlaps the caller but
// serializes on the wire.
type Pipeliner interface {
	Transport
	Start(req []byte) Pending
}

// --- correlation-id demultiplexer ---

type muxResult struct {
	resp []byte
	err  error
}

// demux routes v2 response frames to the pending call with the matching
// correlation id. It is deliberately self-contained (no net.Conn) so the
// fuzz target can drive it with hostile frames directly: truncated,
// duplicate and unknown-id frames must be dropped without panicking and
// without leaking pending-call table entries.
type demux struct {
	mu      sync.Mutex
	pending map[uint32]chan muxResult
	// streams routes ids with many frames in flight (server-push streams):
	// unlike pending, a delivery does not retire the slot.
	streams map[uint32]*muxStream
	err     error // set once the transport dies; register fails afterwards
}

func newDemux() *demux {
	return &demux{pending: map[uint32]chan muxResult{}, streams: map[uint32]*muxStream{}}
}

// register allocates the pending slot for a correlation id. It fails after
// failAll (connection dead) and on a duplicate id (caller bug).
func (d *demux) register(id uint32) (chan muxResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return nil, d.err
	}
	if _, dup := d.pending[id]; dup {
		return nil, fmt.Errorf("wire: duplicate correlation id %d", id)
	}
	ch := make(chan muxResult, 1)
	d.pending[id] = ch
	return ch, nil
}

// cancel drops a pending slot (per-call timeout); a response arriving later
// is treated as unknown-id and discarded.
func (d *demux) cancel(id uint32) {
	d.mu.Lock()
	delete(d.pending, id)
	d.mu.Unlock()
}

// registerStream allocates the stream slot for a correlation id; stream
// slots live until removeStream (many frames deliver to them).
func (d *demux) registerStream(id uint32, s *muxStream) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	if _, dup := d.pending[id]; dup {
		return fmt.Errorf("wire: duplicate correlation id %d", id)
	}
	if _, dup := d.streams[id]; dup {
		return fmt.Errorf("wire: duplicate correlation id %d", id)
	}
	d.streams[id] = s
	return nil
}

// removeStream releases a stream slot; later frames for the id are
// unknown-id drops.
func (d *demux) removeStream(id uint32) {
	d.mu.Lock()
	delete(d.streams, id)
	d.mu.Unlock()
}

// deliver routes one raw v2 frame ([4-byte id][response]) to its pending
// call or open stream. It reports whether the frame found a home; short
// frames and unknown or already-completed ids are dropped.
func (d *demux) deliver(frame []byte) bool {
	if len(frame) < 4 {
		return false
	}
	id := binary.BigEndian.Uint32(frame)
	d.mu.Lock()
	ch, ok := d.pending[id]
	if ok {
		delete(d.pending, id)
	}
	var st *muxStream
	if !ok {
		st = d.streams[id]
	}
	d.mu.Unlock()
	if ok {
		ch <- muxResult{resp: frame[4:]}
		return true
	}
	if st != nil {
		st.push(frame[4:])
		return true
	}
	return false
}

// failAll completes every pending call with err and poisons the table so
// later register calls fail fast — the clean-error-propagation path when
// the connection dies under in-flight requests.
func (d *demux) failAll(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	ferr := d.err
	for id, ch := range d.pending {
		delete(d.pending, id)
		ch <- muxResult{err: ferr}
	}
	var streams []*muxStream
	for id, s := range d.streams {
		delete(d.streams, id)
		streams = append(streams, s)
	}
	d.mu.Unlock()
	for _, s := range streams {
		s.fail(ferr)
	}
}

// streamLen returns the number of registered, unclosed streams.
func (d *demux) streamLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.streams)
}

// pendingLen returns the number of registered, undelivered calls.
func (d *demux) pendingLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// --- client-side multiplexed transport ---

// MuxTransport runs the protocol over a net.Conn with v2 multiplexed
// framing when the server supports it: any number of calls may be in
// flight concurrently on the one connection, each with its own correlation
// id and optional per-call timeout. Against a v1 server the HELLO is
// rejected and the transport degrades to serialized lock-step exchanges,
// so old servers keep working.
type MuxTransport struct {
	conn    net.Conn
	version int
	// helloExtra is the opaque payload the server appended to its HELLO
	// ack (a fleet member's encoded cluster map); nil otherwise.
	helloExtra []byte

	// callTimeout (nanoseconds) bounds each call; 0 = wait forever.
	callTimeout atomic.Int64

	// v2 state.
	writeMu sync.Mutex
	d       *demux
	nextID  atomic.Uint32

	// v1 fallback state: lock-step exchanges under one mutex.
	legacyMu sync.Mutex
}

// DialMux connects to a wire server and negotiates the protocol version
// with a HELLO. A v2 server upgrades the connection to multiplexed framing;
// a v1 server (which answers HELLO with an unknown-op error) leaves the
// transport in lock-step mode.
func DialMux(addr string) (*MuxTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MuxTransport{conn: conn, version: ProtocolV1}
	hello := appendU32([]byte{OpHello}, ProtocolV3)
	if err := WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if v, perr := parseHelloResponse(resp); perr == nil && v >= ProtocolV2 {
		// Honour the server's negotiated version (capped at what we asked
		// for): v2 servers get a pure-v2 client that never sends stream ops.
		m.version = min(v, ProtocolV3)
		m.helloExtra = parseHelloExtra(resp)
		m.d = newDemux()
		go m.readLoop()
	}
	// Any HELLO failure (a v1 server answers "unknown op") falls back to
	// lock-step: the connection is still a perfectly good v1 transport.
	return m, nil
}

// parseHelloResponse extracts the negotiated version from a HELLO response.
func parseHelloResponse(resp []byte) (int, error) {
	payload, _, err := parseResponse(resp)
	if err != nil {
		return 0, err
	}
	c := &cursor{data: payload}
	v, err := c.u32()
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// parseHelloExtra extracts the optional length-prefixed payload a server
// appended after the version word of its HELLO ack (the cluster map), or
// nil when absent or damaged.
func parseHelloExtra(resp []byte) []byte {
	payload, _, err := parseResponse(resp)
	if err != nil {
		return nil
	}
	c := &cursor{data: payload}
	if _, err := c.u32(); err != nil { // version word
		return nil
	}
	n, err := c.u32()
	if err != nil || c.pos+int(n) > len(payload) {
		return nil
	}
	extra := make([]byte, n)
	copy(extra, payload[c.pos:c.pos+int(n)])
	return extra
}

// Version reports the negotiated protocol version.
func (m *MuxTransport) Version() int { return m.version }

// HelloExtra returns the opaque payload the server attached to its HELLO
// acknowledgement — a sharded fleet member attaches its encoded cluster map
// — or nil. The routing client uses it to learn the shard topology without
// a second round trip.
func (m *MuxTransport) HelloExtra() []byte { return m.helloExtra }

// SetCallTimeout bounds every subsequent call (write + wait for response);
// zero waits forever. A timed-out call fails with ErrCallTimeout while the
// connection stays usable.
func (m *MuxTransport) SetCallTimeout(d time.Duration) { m.callTimeout.Store(int64(d)) }

// readLoop is the single reader demultiplexing response frames; on any
// read error it fails every pending call and poisons the transport.
func (m *MuxTransport) readLoop() {
	for {
		frame, err := ReadFrame(m.conn)
		if err != nil {
			m.d.failAll(fmt.Errorf("%w: %v", ErrTransportClosed, err))
			return
		}
		m.d.deliver(frame)
	}
}

// muxPending is a v2 in-flight call.
type muxPending struct {
	m       *muxPendingState
	timeout time.Duration
	ctx     context.Context // optional; non-nil calls also fail on ctx end
}

type muxPendingState struct {
	d   *demux
	id  uint32
	ch  chan muxResult
	err error // immediate failure (register/write)
}

// Wait implements Pending.
func (p *muxPending) Wait() ([]byte, error) {
	if p.m.err != nil {
		return nil, p.m.err
	}
	var timeoutC <-chan time.Time
	if p.timeout > 0 {
		t := time.NewTimer(p.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	var done <-chan struct{}
	if p.ctx != nil {
		done = p.ctx.Done()
	}
	select {
	case r := <-p.m.ch:
		return r.resp, r.err
	case <-timeoutC:
		return p.abandon(fmt.Errorf("%w after %v", ErrCallTimeout, p.timeout))
	case <-done:
		return p.abandon(p.ctx.Err())
	}
}

// abandon gives up on the call (timeout or context end), releasing its
// pending slot so the table does not leak. The demux may have delivered
// between the trigger and the cancel; prefer the response if it is already
// there.
func (p *muxPending) abandon(err error) ([]byte, error) {
	if p.m.d != nil {
		p.m.d.cancel(p.m.id)
	}
	select {
	case r := <-p.m.ch:
		return r.resp, r.err
	default:
	}
	return nil, err
}

// errPending is a call that failed before it was written.
type errPending struct{ err error }

func (p errPending) Wait() ([]byte, error) { return nil, p.err }

// Start implements Pipeliner: it sends the request and returns immediately;
// Wait collects the response. In lock-step fallback mode the exchange runs
// serialized in a goroutine, preserving Start's non-blocking contract.
func (m *MuxTransport) Start(req []byte) Pending {
	timeout := time.Duration(m.callTimeout.Load())
	if m.version < ProtocolV2 {
		ch := make(chan muxResult, 1)
		go func() {
			resp, err := m.legacyRoundTrip(req, timeout)
			ch <- muxResult{resp: resp, err: err}
		}()
		return &muxPending{m: &muxPendingState{ch: ch}}
	}
	id := m.nextID.Add(1)
	ch, err := m.d.register(id)
	if err != nil {
		return errPending{err: err}
	}
	out := muxFrame(id, req)
	m.writeMu.Lock()
	if timeout > 0 {
		m.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, werr := m.conn.Write(out)
	m.writeMu.Unlock()
	pool.Bytes.Put(out)
	if werr != nil {
		m.d.cancel(id)
		return errPending{err: werr}
	}
	return &muxPending{m: &muxPendingState{d: m.d, id: id, ch: ch}, timeout: timeout}
}

// muxFrame stages one v2 frame — [length u32][correlation id u32][msg] — in
// an exactly-sized pooled buffer, so the whole frame goes out in a single
// Write. The caller owns the result and recycles it after the write.
func muxFrame(id uint32, msg []byte) []byte {
	out := pool.Bytes.Get(8 + len(msg))
	binary.BigEndian.PutUint32(out, uint32(4+len(msg)))
	binary.BigEndian.PutUint32(out[4:], id)
	copy(out[8:], msg)
	return out
}

// legacyRoundTrip is the v1 lock-step exchange with deadlines.
func (m *MuxTransport) legacyRoundTrip(req []byte, timeout time.Duration) ([]byte, error) {
	m.legacyMu.Lock()
	defer m.legacyMu.Unlock()
	if timeout > 0 {
		m.conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := WriteFrame(m.conn, req); err != nil {
		return nil, err
	}
	return ReadFrame(m.conn)
}

// StartCtx implements ContextPipeliner: the in-flight call additionally
// fails with the context's error when ctx ends before the response. A
// cancelled v2 call releases its pending slot and any late response is
// discarded by the demultiplexer; the connection stays usable.
func (m *MuxTransport) StartCtx(ctx context.Context, req []byte) Pending {
	if err := ctx.Err(); err != nil {
		return errPending{err: err}
	}
	p := m.Start(req)
	if mp, ok := p.(*muxPending); ok && ctx.Done() != nil {
		mp.ctx = ctx
	}
	return p
}

// RoundTrip implements Transport; it is safe for concurrent use and, in v2
// mode, concurrent calls really are in flight together on the wire.
func (m *MuxTransport) RoundTrip(req []byte) ([]byte, error) {
	return m.Start(req).Wait()
}

// RoundTripCtx implements ContextTransport.
func (m *MuxTransport) RoundTripCtx(ctx context.Context, req []byte) ([]byte, error) {
	return m.StartCtx(ctx, req).Wait()
}

// PendingCalls reports the number of in-flight v2 calls still awaiting a
// response (always 0 in lock-step fallback mode). The fault-matrix tests
// use it to assert that faults never leak pending-call table entries.
func (m *MuxTransport) PendingCalls() int {
	if m.d == nil {
		return 0
	}
	return m.d.pendingLen()
}

// Close implements Transport; pending v2 calls fail with ErrTransportClosed.
func (m *MuxTransport) Close() error { return m.conn.Close() }

// --- server side ---

// maxConnInFlight bounds concurrently-served requests per v2 connection;
// the read loop blocks (natural backpressure) when a client keeps more in
// flight than that.
const maxConnInFlight = 64

// muxConn serves one upgraded v2+ connection: each request frame is handled
// on its own goroutine and its response written back tagged with the
// request's correlation id, so slow (device-bound) requests do not block
// fast (cache-hit) ones behind head-of-line. On a v3-negotiated connection
// stream ops get dedicated handling: credit and cancel frames are applied
// inline by the read loop (they must never queue behind data production),
// and stream producers run on goroutines outside the in-flight semaphore —
// they are paced by their credit windows, and letting them hold semaphore
// slots for a stream's lifetime would starve (or deadlock) batched calls.
// Returns when the connection dies, after cancelling open streams and
// draining in-flight handlers.
func muxConn(conn net.Conn, tenant uint64, version int, h *Handler, opts ServeOpts, serialMu *sync.Mutex, logf func(format string, args ...any)) {
	var (
		writeMu sync.Mutex
		wg      sync.WaitGroup
		sem     = make(chan struct{}, maxConnInFlight)
		hdr     [4]byte // frame-header scratch (only the read loop touches it)
		streams = newSrvStreams()
	)
	defer wg.Wait()
	defer streams.cancelAll() // runs before wg.Wait: unblocks producers first
	for {
		if opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(opts.IdleTimeout))
		}
		frame, err := readFramePooled(conn, &hdr)
		if err != nil {
			if !isCleanClose(err) {
				logf("wire: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if len(frame) < 4 {
			logf("wire: %s: short v2 frame (%d bytes)", conn.RemoteAddr(), len(frame))
			return
		}
		id := binary.BigEndian.Uint32(frame)
		if version >= ProtocolV3 && len(frame) >= 5 {
			switch frame[4] {
			case OpStreamCredit:
				if len(frame) >= 9 {
					streams.grant(id, binary.BigEndian.Uint32(frame[5:9]))
				}
				pool.Bytes.Put(frame)
				continue
			case OpStreamCancel:
				streams.cancel(id)
				pool.Bytes.Put(frame)
				continue
			case OpVoiceStream, OpMiniatureStream:
				st := streams.open(id)
				if st == nil {
					logf("wire: %s: duplicate stream id %d", conn.RemoteAddr(), id)
					pool.Bytes.Put(frame)
					continue
				}
				wg.Add(1)
				go func(id uint32, frame []byte, st *srvStream) {
					defer wg.Done()
					defer streams.remove(id)
					serveMuxStream(conn, &writeMu, id, tenant, h, frame[4:], st, logf)
					pool.Bytes.Put(frame)
				}(id, frame, st)
				continue
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(id uint32, frame []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			req := frame[4:]
			var resp []byte
			if opts.Serialize {
				serialMu.Lock()
				resp = h.HandleAs(tenant, req)
				serialMu.Unlock()
			} else {
				resp = h.HandleAs(tenant, req)
			}
			pool.Bytes.Put(frame) // Handle copies what it keeps
			out := muxFrame(id, resp)
			writeMu.Lock()
			_, werr := conn.Write(out)
			writeMu.Unlock()
			pool.Bytes.Put(out)
			recycleResponse(resp)
			if werr != nil && !errors.Is(werr, net.ErrClosed) {
				logf("wire: %s: write: %v", conn.RemoteAddr(), werr)
			}
		}(id, frame)
	}
}
