package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"syscall"
	"time"
)

// Resilience layer: every client call is classified on failure as retryable
// (transient link/server condition: retry, possibly after reconnecting) or
// fatal (server-reported application error, caller bug, cancelled context).
// All wire ops are idempotent reads — the protocol is piece-oriented and the
// server mutates nothing on their behalf — so retrying any of them is safe.

// ErrServerBusy reports that the server shed the request from its bounded
// in-flight queue (statusBusy). The condition is transient by construction:
// back off and retry.
var ErrServerBusy = errors.New("wire: server busy")

// errNoRedial marks a connection failure on a client with no redial
// function installed: the error is structurally retryable but this client
// cannot recover from it.
var errNoRedial = errors.New("wire: transport lost and no redialer installed")

// IsRetryable reports whether err names a transient condition for which
// retrying the (idempotent) call can succeed: server load shedding, per-call
// timeouts, damaged frames and connection failures. Server application
// errors and context cancellation are fatal.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, ErrServerBusy) ||
		errors.Is(err, ErrCallTimeout) ||
		errors.Is(err, ErrShort) ||
		NeedsReconnect(err)
}

// NeedsReconnect reports whether err means the connection under the
// transport is dead (or was never established), so a retry is useless until
// the client redials.
func NeedsReconnect(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransportClosed) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ECONNABORTED) {
		return true
	}
	// Transport-level deadline expiries (a stalled connection) surface as
	// net.Error timeouts; the connection state is unknown, so rebuild it.
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	return false
}

// RetryPolicy bounds the retry loop wrapped around every client call.
// Delays grow exponentially from BaseDelay, capped at MaxDelay, with ±50%
// jitter so a fleet of workstations recovering from one server restart does
// not stampede back in lockstep (the §5 shared-device queueing worry, again).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 4). 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 2ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 250ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// BackoffRand is the jitter source of the retry loop: a Weyl-sequence
// splitmix64 generator on one atomic word. Drawing from it is lock-free and
// allocation-free, so a scatter/gather fan-out with K per-shard calls
// retrying concurrently shares a single source instead of contending on the
// math/rand global lock (or seeding K throwaway generators).
type BackoffRand struct {
	state atomic.Uint64
}

// NewBackoffRand returns a jitter source seeded deterministically from seed.
func NewBackoffRand(seed uint64) *BackoffRand {
	r := &BackoffRand{}
	r.state.Store(seed)
	return r
}

// backoffSeq seeds per-client default sources so clients built in a loop do
// not share one jitter stream by accident.
var backoffSeq atomic.Uint64

func newDefaultBackoffRand() *BackoffRand {
	return NewBackoffRand(backoffSeq.Add(1) * 0x9E3779B97F4A7C15)
}

// next draws one value: an atomic Weyl step followed by the splitmix64
// finalizer.
func (r *BackoffRand) next() uint64 {
	x := r.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// backoff returns the jittered delay to sleep before retry number `retry`
// (1-based), drawing jitter from rng.
func (p RetryPolicy) backoff(retry int, rng *BackoffRand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter in [d/2, d].
	half := uint64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rng.next()%(half+1))
}

// sleepCtx sleeps for d or until the context ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetRetryPolicy replaces the client's retry policy. The zero value
// restores the defaults.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	c.retry = p.withDefaults()
	c.mu.Unlock()
}

// SetBackoffRand replaces the client's backoff jitter source. A routed
// (multi-shard) client installs one shared source on every per-shard client
// so a K-way fan-out draws from a single generator.
func (c *Client) SetBackoffRand(r *BackoffRand) {
	c.mu.Lock()
	c.jitter = r
	c.mu.Unlock()
}

// EnableReconnect installs a redial function used to rebuild the transport
// when a call fails with a connection error. The function must perform any
// protocol negotiation the original dial did (DialMux re-issues HELLO, so
// the replacement connection renegotiates its protocol version). Calls in
// flight on the dead transport still fail; subsequent retries go out on the
// fresh one.
func (c *Client) EnableReconnect(redial func() (Transport, error)) {
	c.mu.Lock()
	c.redial = redial
	c.mu.Unlock()
}

// Reconnects returns the number of times the client has replaced its
// transport. Sessions watch this to re-synchronize state (result sets,
// prefetch generations) that a server restart may have invalidated.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// Transport returns the client's current transport (it changes across
// reconnects).
func (c *Client) Transport() Transport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// reconnect replaces the dead transport old with a freshly dialed one. If
// another goroutine already swapped it, the redial is skipped — concurrent
// callers share one reconnect.
func (c *Client) reconnect(old Transport) error {
	c.mu.Lock()
	if c.t != old {
		c.mu.Unlock()
		return nil
	}
	redial := c.redial
	c.mu.Unlock()
	if redial == nil {
		return errNoRedial
	}
	nt, err := redial()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.t != old {
		// Lost the race: another caller reconnected first.
		c.mu.Unlock()
		nt.Close()
		return nil
	}
	c.t = nt
	c.mu.Unlock()
	old.Close()
	c.reconnects.Add(1)
	return nil
}
