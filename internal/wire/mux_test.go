package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"minos/internal/object"
)

// serveTCP starts a v2-capable wire server on a loopback listener and
// returns its address.
func serveTCP(t testing.TB) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, &Handler{Srv: testServer(t)})
	return l.Addr().String()
}

func TestMuxNegotiation(t *testing.T) {
	addr := serveTCP(t)
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if tp.Version() != ProtocolV3 {
		t.Fatalf("negotiated version = %d, want %d", tp.Version(), ProtocolV3)
	}
	c := NewClient(tp)
	ids, _, err := c.Query("lung")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Query over mux = %v", ids)
	}
}

func TestMuxConcurrentInFlight(t *testing.T) {
	addr := serveTCP(t)
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()

	// Many goroutines hammer the one connection; every reply must match
	// its request (correlation ids, not arrival order, route responses).
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 3 {
				case 0:
					ids, _, err := c.Query("lung")
					if err == nil && (len(ids) != 1 || ids[0] != 1) {
						err = fmt.Errorf("query = %v", ids)
					}
					if err != nil {
						errs <- err
						return
					}
				case 1:
					d, _, err := c.Descriptor(2)
					if err == nil && d.Title != "heart" {
						err = fmt.Errorf("descriptor = %+v", d)
					}
					if err != nil {
						errs <- err
						return
					}
				default:
					m, _, err := c.Miniature(3)
					if err == nil && m.PopCount() == 0 {
						err = fmt.Errorf("blank miniature")
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMuxOutOfOrderWait(t *testing.T) {
	addr := serveTCP(t)
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()

	// Start three calls, wait for them in reverse order: each must still
	// get its own response.
	a := c.MiniaturesStart([]object.ID{1})
	b := c.MiniaturesStart([]object.ID{2})
	d := c.MiniaturesStart([]object.ID{3})
	for _, pm := range []*PendingMiniatures{d, b, a} {
		res, _, err := pm.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || !res[0].OK {
			t.Fatalf("batch result = %+v", res)
		}
	}
}

// lockstepV1 simulates a pre-HELLO server: strict request/response framing
// and every unknown op (including OpHello) answered with an error.
func lockstepV1(t testing.TB, h *Handler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					req, err := ReadFrame(conn)
					if err != nil {
						return
					}
					var resp []byte
					if len(req) > 0 && req[0] >= OpHello {
						resp = errResp(fmt.Errorf("unknown op %d", req[0]))
					} else {
						resp = h.Handle(req)
					}
					if WriteFrame(conn, resp) != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

func TestMuxFallbackToLockstep(t *testing.T) {
	addr := lockstepV1(t, &Handler{Srv: testServer(t)})
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Version() != ProtocolV1 {
		t.Fatalf("version against v1 server = %d, want %d", tp.Version(), ProtocolV1)
	}
	c := NewClient(tp)
	defer c.Close()
	ids, _, err := c.Query("heart")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("fallback Query = %v", ids)
	}
	// The pipelined API still works against a v1 server (serialized
	// lock-step under the hood), using ops the old server understands.
	var pends []Pending
	for _, id := range []object.ID{1, 2, 3} {
		pends = append(pends, tp.Start(appendU64([]byte{OpMiniature}, uint64(id))))
	}
	for i, p := range pends {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("fallback pipelined call %d: %v", i, err)
		}
		if _, _, err := parseResponse(resp); err != nil {
			t.Fatalf("fallback pipelined call %d: %v", i, err)
		}
	}
}

func TestV1ClientAgainstV2Server(t *testing.T) {
	addr := serveTCP(t)
	// Old-style lock-step client: never sends HELLO, must be served
	// unchanged by a server that also understands v2.
	tp, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	v1 := NewClient(tp)
	defer v1.Close()

	// A mux client shares the server concurrently.
	mtp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewClient(mtp)
	defer v2.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, _, err := v1.List(); err != nil {
				errs <- fmt.Errorf("v1 client: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, _, err := v2.Miniature(3); err != nil {
				errs <- fmt.Errorf("v2 client: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// stalledServer negotiates v2 on accept, then swallows every request
// without replying. stop closes all accepted connections.
func stalledServer(t testing.TB) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go func() {
				req, err := ReadFrame(conn)
				if err != nil || len(req) == 0 || req[0] != OpHello {
					conn.Close()
					return
				}
				WriteFrame(conn, okResp(0, appendU32(nil, ProtocolV2)))
				for {
					if _, err := ReadFrame(conn); err != nil {
						return
					}
					// Swallow the request; never respond.
				}
			}()
		}
	}()
	stop = func() {
		l.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}
	t.Cleanup(stop)
	return l.Addr().String(), stop
}

func TestMuxCallTimeout(t *testing.T) {
	addr, _ := stalledServer(t)
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if tp.Version() != ProtocolV2 {
		t.Fatalf("version = %d", tp.Version())
	}
	tp.SetCallTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err = tp.RoundTrip([]byte{OpList})
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("stalled call error = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The timed-out call must not leak its pending-table slot.
	if n := tp.d.pendingLen(); n != 0 {
		t.Fatalf("%d pending calls leaked after timeout", n)
	}
}

func TestMuxConnectionDeathFailsPending(t *testing.T) {
	addr, stop := stalledServer(t)
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	// Several calls in flight when the server dies: all must fail with an
	// error wrapping ErrTransportClosed, and later calls must fail fast.
	var pends []Pending
	for i := 0; i < 4; i++ {
		pends = append(pends, tp.Start([]byte{OpList}))
	}
	stop()
	for i, p := range pends {
		if _, err := p.Wait(); !errors.Is(err, ErrTransportClosed) {
			t.Fatalf("pending %d after death: %v, want ErrTransportClosed", i, err)
		}
	}
	if _, err := tp.Start([]byte{OpList}).Wait(); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("post-death call error = %v", err)
	}
}

// TestTCPTimeoutAgainstDeadServer is the satellite fix: a lock-step client
// calling a server that accepts but never answers must fail by deadline,
// not hang forever.
func TestTCPTimeoutAgainstDeadServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Read and discard forever; never respond.
			buf := make([]byte, 1024)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()
	tp, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	tp.SetTimeout(100 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := tp.RoundTrip([]byte{OpList})
		done <- err
	}()
	select {
	case err := <-done:
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("dead-server call error = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RoundTrip hung against dead server despite SetTimeout")
	}
}

// TestLocalTransportBatchWindow is the satellite fix for the simulated
// link: overlapping exchanges share one latency window, sequential
// exchanges each pay their own.
func TestLocalTransportBatchWindow(t *testing.T) {
	lt := &LocalTransport{H: &Handler{Srv: testServer(t)}, Latency: 10 * time.Millisecond}
	req := []byte{OpList}

	// Two overlapping exchanges: latency charged once.
	a := lt.Start(req)
	b := lt.Start(req)
	if _, err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := lt.Stats().LinkTime; got != 2*lt.Latency {
		t.Fatalf("overlapping link time = %v, want %v", got, 2*lt.Latency)
	}

	// Two sequential exchanges: latency charged per round trip.
	lt.ResetStats()
	if _, err := lt.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if _, err := lt.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if got := lt.Stats().LinkTime; got != 4*lt.Latency {
		t.Fatalf("sequential link time = %v, want %v", got, 4*lt.Latency)
	}

	// Wait is idempotent: a second Wait must not reopen the window.
	lt.ResetStats()
	p := lt.Start(req)
	p.Wait()
	p.Wait()
	if _, err := lt.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if got := lt.Stats().LinkTime; got != 4*lt.Latency {
		t.Fatalf("post-idempotent link time = %v, want %v", got, 4*lt.Latency)
	}
}

func TestMiniaturesBatch(t *testing.T) {
	c, lt := localClient(t)
	lt.ResetStats()
	res, _, err := c.Miniatures([]object.ID{3, 42, 1})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Stats().RoundTrips != 1 {
		t.Fatalf("batch took %d round trips", lt.Stats().RoundTrips)
	}
	if len(res) != 3 {
		t.Fatalf("batch size = %d", len(res))
	}
	if res[0].ID != 3 || !res[0].OK || res[0].Mini.PopCount() == 0 {
		t.Fatalf("entry 0 = %+v", res[0])
	}
	if res[0].Mode != object.Audio {
		t.Fatalf("entry 0 mode = %v, want Audio", res[0].Mode)
	}
	if res[1].ID != 42 || res[1].OK {
		t.Fatalf("missing object entry = %+v", res[1])
	}
	if !res[2].OK || res[2].Mode != object.Visual {
		t.Fatalf("entry 2 = %+v", res[2])
	}

	// The batch must agree with the lock-step path bit for bit.
	single, _, err := c.Miniature(3)
	if err != nil {
		t.Fatal(err)
	}
	if single.PopCount() != res[0].Mini.PopCount() {
		t.Fatalf("batched miniature diverges from single fetch")
	}

	if _, _, err := c.Miniatures(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestDemuxHostileFrames(t *testing.T) {
	d := newDemux()
	ch, err := d.register(7)
	if err != nil {
		t.Fatal(err)
	}
	// Short, unknown-id and duplicate deliveries must be dropped.
	if d.deliver(nil) || d.deliver([]byte{1, 2}) {
		t.Fatal("short frame delivered")
	}
	if d.deliver(appendU32(nil, 99)) {
		t.Fatal("unknown id delivered")
	}
	if !d.deliver(append(appendU32(nil, 7), 0xAB)) {
		t.Fatal("valid frame not delivered")
	}
	if d.deliver(append(appendU32(nil, 7), 0xCD)) {
		t.Fatal("duplicate id delivered twice")
	}
	r := <-ch
	if r.err != nil || len(r.resp) != 1 || r.resp[0] != 0xAB {
		t.Fatalf("delivered = %+v", r)
	}
	if _, err := d.register(7); err != nil {
		t.Fatal("id reuse after completion should be allowed")
	}
	d.failAll(ErrTransportClosed)
	if d.pendingLen() != 0 {
		t.Fatal("failAll left pending calls")
	}
	if _, err := d.register(8); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("register after failAll = %v", err)
	}
}

func BenchmarkMuxConcurrentMiniatures(b *testing.B) {
	addr := serveTCP(b)
	tp, err := DialMux(addr)
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()
	if _, _, err := c.Miniature(3); err != nil { // warm the block cache
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := c.Miniature(3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMuxBatchedMiniatures(b *testing.B) {
	c, _ := localClient(b)
	ids := []object.ID{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Miniatures(ids); err != nil {
			b.Fatal(err)
		}
	}
}
