package wire

import (
	"bytes"
	"sync"
	"testing"
)

// fuzzHandler is built once per fuzz process: the server is
// concurrency-safe, so sharing it across iterations (and across the fuzz
// engine's parallel workers) is part of what is being tested.
var (
	fuzzOnce sync.Once
	fuzzH    *Handler
)

func fuzzHandler(t testing.TB) *Handler {
	fuzzOnce.Do(func() { fuzzH = &Handler{Srv: testServer(t)} })
	return fuzzH
}

// FuzzHandleRequest feeds arbitrary request bytes to the protocol handler:
// it must always return a response (ok or error), never panic, and never
// let a client-controlled count or length drive an oversized allocation.
// The seed corpus covers every op plus the historic crashers: a ReadPiece
// length beyond the device (makeslice overflow) and a Query term count in
// the billions (preallocation overflow).
func FuzzHandleRequest(f *testing.F) {
	// Well-formed requests for every op, mirroring the client encoders.
	f.Add([]byte{OpList})
	f.Add([]byte{OpStats})
	f.Add(appendU64([]byte{OpDescriptor}, 1))
	f.Add(appendU64([]byte{OpMiniature}, 3))
	f.Add(appendU64([]byte{OpVoicePreview}, 3))
	f.Add(appendU64([]byte{OpMode}, 3))
	f.Add(appendU64(appendU64([]byte{OpReadPiece}, 0), 4096))
	f.Add(appendStr(appendU32([]byte{OpQuery}, 1), "lung"))
	viewReq := appendStr(appendU64([]byte{OpImageView}, 3), "map")
	for _, v := range []uint32{0, 0, 50, 50} {
		viewReq = appendU32(viewReq, v)
	}
	f.Add(viewReq)
	// Historic crashers and malformed frames.
	f.Add(appendU64(appendU64([]byte{OpReadPiece}, 1<<60), 1<<60)) // off+len overflow
	f.Add(appendU64(appendU64([]byte{OpReadPiece}, 0), 1<<40))     // len beyond device
	f.Add(appendU32([]byte{OpQuery}, 0xffffffff))                  // 4 G terms claimed
	f.Add([]byte{OpDescriptor, 1, 2})                              // truncated id
	f.Add([]byte{})
	f.Add([]byte{99})
	// Protocol v2 ops.
	f.Add(appendU32([]byte{OpHello}, ProtocolV2))
	f.Add(appendU32([]byte{OpHello}, 0))          // version below minimum
	f.Add(appendU32([]byte{OpHello}, 0xffffffff)) // absurd version claim
	batchReq := appendU32([]byte{OpMiniatures}, 3)
	for _, id := range []uint64{3, 42, 1} {
		batchReq = appendU64(batchReq, id)
	}
	f.Add(batchReq)
	f.Add(appendU32([]byte{OpMiniatures}, 0xffffffff)) // 4 G miniatures claimed
	f.Add(appendU32([]byte{OpMiniatures}, 2))          // count 2, zero ids

	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, req []byte) {
		resp := h.Handle(req)
		if len(resp) == 0 {
			t.Fatalf("empty response for request %v", req)
		}
		if resp[0] != statusOK && resp[0] != statusErr {
			t.Fatalf("response status %d", resp[0])
		}
	})
}

// FuzzFrameRoundTrip checks the length-prefixed framing: every message
// survives a write/read round trip, and ReadFrame never panics or
// over-allocates on arbitrary (truncated, oversized, hostile) input.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("hello frames"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})       // 4 GiB length claim
	f.Add([]byte{0x00, 0x00, 0x00, 0x04, 1, 2}) // truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes as a frame stream: must not panic; errors ok.
		if msg, err := ReadFrame(bytes.NewReader(data)); err == nil {
			// A parseable frame must round-trip identically.
			var buf bytes.Buffer
			if werr := WriteFrame(&buf, msg); werr != nil {
				t.Fatalf("WriteFrame(%d bytes): %v", len(msg), werr)
			}
			got, rerr := ReadFrame(&buf)
			if rerr != nil || !bytes.Equal(got, msg) {
				t.Fatalf("round trip diverged: %v", rerr)
			}
		}
		// And the payload itself always frames cleanly.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, data); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		got, err := ReadFrame(&buf)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("payload round trip: %v", err)
		}
	})
}

// staticTransport returns one canned response to any request.
type staticTransport struct{ resp []byte }

func (s *staticTransport) RoundTrip([]byte) ([]byte, error) { return s.resp, nil }
func (s *staticTransport) Close() error                     { return nil }

// FuzzClientResponse feeds arbitrary response bytes to the client-side
// decoders (status/duration/payload framing, id lists, stats): a hostile
// or corrupt server must produce errors, not panics or huge allocations.
func FuzzClientResponse(f *testing.F) {
	f.Add(okResp(0, encodeIDs(nil)))
	f.Add(okResp(0, appendU64(appendU32(nil, 2), 7))) // count 2, one id
	f.Add(okResp(0, appendU32(nil, 0xffffffff)))      // 4 G ids claimed
	f.Add(errResp(errShort))
	f.Add([]byte{})
	f.Add([]byte{statusOK})
	f.Fuzz(func(t *testing.T, resp []byte) {
		c := NewClient(&staticTransport{resp: resp})
		c.List()  // id-list decoding
		c.Stats() // stats decoding
		c.Mode(1) // fixed-size payload decoding
	})
}

// FuzzMuxDemux drives the v2 frame demultiplexer with hostile frames:
// truncated, unknown-id and duplicate frames must be dropped without
// panicking, every registered call must be resolved exactly once (by
// delivery or by failAll), and the pending table must end empty — a leak
// here is a goroutine stuck in Wait forever on a real connection.
func FuzzMuxDemux(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{0x00}, uint8(1))      // truncated id
	f.Add(appendU32(nil, 1), uint8(2)) // bare id, no body
	f.Add(append(appendU32(nil, 2), 0xAB, 0xCD), uint8(4))
	f.Add(append(appendU32(nil, 99), 0xAB), uint8(1)) // unknown id
	dup := append(appendU32(nil, 1), 0x01)
	f.Add(append(dup, dup...), uint8(2)) // same id twice in one stream
	f.Fuzz(func(t *testing.T, stream []byte, nCalls uint8) {
		d := newDemux()
		n := int(nCalls % 8)
		chans := make(map[uint32]chan muxResult, n)
		for i := 0; i < n; i++ {
			id := uint32(i + 1)
			ch, err := d.register(id)
			if err != nil {
				t.Fatalf("register(%d): %v", id, err)
			}
			chans[id] = ch
		}
		// Split the fuzz input into frames (first byte = length of next
		// frame) and deliver each; any byte soup must be survivable.
		delivered := 0
		for len(stream) > 0 {
			flen := int(stream[0])
			if flen > len(stream)-1 {
				flen = len(stream) - 1
			}
			if d.deliver(stream[1 : 1+flen]) {
				delivered++
			}
			stream = stream[1+flen:]
		}
		if delivered > n {
			t.Fatalf("delivered %d frames to %d pending calls", delivered, n)
		}
		// Connection death: every still-pending call must resolve, and
		// the table must be empty with registration poisoned.
		d.failAll(ErrTransportClosed)
		if got := d.pendingLen(); got != 0 {
			t.Fatalf("%d pending calls leaked", got)
		}
		if _, err := d.register(1000); err == nil {
			t.Fatal("register succeeded after failAll")
		}
		for id, ch := range chans {
			select {
			case <-ch:
			default:
				t.Fatalf("call %d never resolved", id)
			}
		}
	})
}
