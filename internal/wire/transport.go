package wire

import (
	"net"
	"sync"
	"time"
)

// LocalTransport runs the protocol in-process against a Handler, modelling
// the link with a latency + bandwidth cost. It accounts every byte moved in
// both directions, which the view/miniature transfer experiments measure.
type LocalTransport struct {
	H *Handler
	// Latency is the fixed per-round-trip cost; Bandwidth is in bytes
	// per second (0 = infinite).
	Latency   time.Duration
	Bandwidth int64

	mu         sync.Mutex
	bytesSent  int64 // workstation -> server
	bytesRecv  int64 // server -> workstation
	roundTrips int64
	linkTime   time.Duration
}

// EthernetLink approximates the paper-era 10 Mbit/s Ethernet.
func EthernetLink(h *Handler) *LocalTransport {
	return &LocalTransport{H: h, Latency: 2 * time.Millisecond, Bandwidth: 10_000_000 / 8}
}

// RoundTrip implements Transport.
func (l *LocalTransport) RoundTrip(req []byte) ([]byte, error) {
	resp := l.H.Handle(req)
	l.mu.Lock()
	l.bytesSent += int64(len(req))
	l.bytesRecv += int64(len(resp))
	l.roundTrips++
	l.linkTime += l.cost(len(req)) + l.cost(len(resp))
	l.mu.Unlock()
	return resp, nil
}

func (l *LocalTransport) cost(n int) time.Duration {
	t := l.Latency
	if l.Bandwidth > 0 {
		t += time.Duration(int64(n) * int64(time.Second) / l.Bandwidth)
	}
	return t
}

// Close implements Transport.
func (l *LocalTransport) Close() error { return nil }

// LinkStats summarizes simulated link usage.
type LinkStats struct {
	BytesSent  int64
	BytesRecv  int64
	RoundTrips int64
	LinkTime   time.Duration
}

// Stats returns the accumulated link statistics.
func (l *LocalTransport) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStats{BytesSent: l.bytesSent, BytesRecv: l.bytesRecv, RoundTrips: l.roundTrips, LinkTime: l.linkTime}
}

// ResetStats zeroes the accumulated statistics.
func (l *LocalTransport) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytesSent, l.bytesRecv, l.roundTrips, l.linkTime = 0, 0, 0, 0
}

// TCPTransport runs the protocol over a net.Conn.
type TCPTransport struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a wire server.
func Dial(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{conn: conn}, nil
}

// RoundTrip implements Transport; exchanges are serialized per connection.
func (t *TCPTransport) RoundTrip(req []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := WriteFrame(t.conn, req); err != nil {
		return nil, err
	}
	return ReadFrame(t.conn)
}

// Close implements Transport.
func (t *TCPTransport) Close() error { return t.conn.Close() }

// Serve accepts connections on l and serves protocol requests until the
// listener closes. Each connection is handled on its own goroutine; the
// server itself is driven synchronously per request (the underlying device
// model is single-headed anyway).
func Serve(l net.Listener, h *Handler) error {
	var mu sync.Mutex // serialize handler access across connections
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(conn net.Conn) {
			defer conn.Close()
			for {
				req, err := ReadFrame(conn)
				if err != nil {
					return
				}
				mu.Lock()
				resp := h.Handle(req)
				mu.Unlock()
				if err := WriteFrame(conn, resp); err != nil {
					return
				}
			}
		}(conn)
	}
}
