package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"minos/internal/pool"
)

// LocalTransport runs the protocol in-process against a Handler, modelling
// the link with a latency + bandwidth cost. It accounts every byte moved in
// both directions, which the view/miniature transfer experiments measure.
//
// The latency model is pipelining-aware: exchanges overlapping in flight
// (Start called before earlier calls Wait) form one batch window and pay
// the propagation latency once, while every frame always pays its own
// bandwidth cost. Without this, an A/B between lock-step and pipelined
// browsing would bill the pipelined side a full round-trip latency per
// frame — exactly the cost pipelining exists to amortize.
type LocalTransport struct {
	H *Handler
	// Latency is the fixed per-round-trip cost; Bandwidth is in bytes
	// per second (0 = infinite).
	Latency   time.Duration
	Bandwidth int64

	mu          sync.Mutex
	tenant      uint64 // fairness identity, claimed from H on first use
	bytesSent   int64  // workstation -> server
	bytesRecv   int64  // server -> workstation
	roundTrips  int64
	linkTime    time.Duration
	outstanding int // in-flight exchanges (Start issued, Wait pending)
}

// EthernetLink approximates the paper-era 10 Mbit/s Ethernet.
func EthernetLink(h *Handler) *LocalTransport {
	return &LocalTransport{H: h, Latency: 2 * time.Millisecond, Bandwidth: 10_000_000 / 8}
}

// localPending is an in-flight simulated exchange.
type localPending struct {
	l    *LocalTransport
	resp []byte
	done bool
}

// Wait implements Pending; it closes this exchange's slot in the batch
// window.
func (p *localPending) Wait() ([]byte, error) {
	if !p.done {
		p.done = true
		p.l.mu.Lock()
		p.l.outstanding--
		p.l.mu.Unlock()
	}
	return p.resp, nil
}

// Start implements Pipeliner. The handler runs immediately (the simulated
// link defers cost accounting, not work); the exchange stays open until
// Wait, and only the exchange that opens a batch window pays the link's
// round-trip latency. Each transport serves one simulated workstation, so
// it claims one tenant identity for the server's fairness machinery.
func (l *LocalTransport) Start(req []byte) Pending {
	l.mu.Lock()
	if l.tenant == 0 {
		l.tenant = l.H.NewTenant()
	}
	tenant := l.tenant
	l.mu.Unlock()
	resp := l.H.HandleAs(tenant, req)
	l.mu.Lock()
	l.bytesSent += int64(len(req))
	l.bytesRecv += int64(len(resp))
	l.roundTrips++
	c := l.byteCost(len(req)) + l.byteCost(len(resp))
	if l.outstanding == 0 {
		c += 2 * l.Latency
	}
	l.outstanding++
	l.linkTime += c
	l.mu.Unlock()
	return &localPending{l: l, resp: resp}
}

// RoundTrip implements Transport; a lone round trip is a batch window of
// one and pays the full latency, as before.
func (l *LocalTransport) RoundTrip(req []byte) ([]byte, error) {
	return l.Start(req).Wait()
}

// RoundTripCtx implements ContextTransport. The simulated link defers cost
// accounting, not work, so the exchange itself cannot block: honouring the
// context means refusing to start once it has ended.
func (l *LocalTransport) RoundTripCtx(ctx context.Context, req []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.RoundTrip(req)
}

// StartCtx implements ContextPipeliner (see RoundTripCtx on the blocking
// question).
func (l *LocalTransport) StartCtx(ctx context.Context, req []byte) Pending {
	if err := ctx.Err(); err != nil {
		return errPending{err: err}
	}
	return l.Start(req)
}

func (l *LocalTransport) cost(n int) time.Duration {
	return l.Latency + l.byteCost(n)
}

// byteCost is the transfer time of n bytes at the link bandwidth.
func (l *LocalTransport) byteCost(n int) time.Duration {
	if l.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / l.Bandwidth)
}

// Close implements Transport.
func (l *LocalTransport) Close() error { return nil }

// LinkStats summarizes simulated link usage.
type LinkStats struct {
	BytesSent  int64
	BytesRecv  int64
	RoundTrips int64
	LinkTime   time.Duration
}

// Stats returns the accumulated link statistics.
func (l *LocalTransport) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStats{BytesSent: l.bytesSent, BytesRecv: l.bytesRecv, RoundTrips: l.roundTrips, LinkTime: l.linkTime}
}

// ResetStats zeroes the accumulated statistics.
func (l *LocalTransport) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytesSent, l.bytesRecv, l.roundTrips, l.linkTime = 0, 0, 0, 0
}

// TCPTransport runs the protocol over a net.Conn, lock-step (protocol v1).
type TCPTransport struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to a wire server.
func Dial(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{conn: conn}, nil
}

// SetTimeout bounds every subsequent RoundTrip (write + read) with a
// connection deadline, so a dead or stalled server fails the call instead
// of hanging the client forever. Zero restores unbounded waits.
//
// Deprecated: pass a context with a deadline to the client's ctx-first
// methods (QueryCtx etc.) instead — RoundTripCtx translates it into the
// connection deadline per call, and cancellation works mid-call.
func (t *TCPTransport) SetTimeout(d time.Duration) {
	t.mu.Lock()
	t.timeout = d
	t.mu.Unlock()
}

// RoundTrip implements Transport; exchanges are serialized per connection.
func (t *TCPTransport) RoundTrip(req []byte) ([]byte, error) {
	return t.RoundTripCtx(context.Background(), req)
}

// RoundTripCtx implements ContextTransport: a context deadline becomes the
// connection deadline for this exchange (tightened by any SetTimeout value),
// and cancellation mid-call forces the blocked read to fail immediately by
// expiring the deadline.
func (t *TCPTransport) RoundTripCtx(ctx context.Context, req []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	deadline := time.Time{}
	if t.timeout > 0 {
		deadline = time.Now().Add(t.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	t.conn.SetDeadline(deadline)
	if ctx.Done() != nil {
		// Cancellation (not just deadline expiry) must unblock the read:
		// yank the connection deadline to the past when ctx ends.
		stop := context.AfterFunc(ctx, func() {
			t.conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	if err := WriteFrame(t.conn, req); err != nil {
		return nil, wrapCtxErr(ctx, err)
	}
	resp, err := ReadFrame(t.conn)
	return resp, wrapCtxErr(ctx, err)
}

// wrapCtxErr maps a connection error caused by context cancellation back to
// the context's error, so callers see context.Canceled, not a confusing
// i/o timeout.
func wrapCtxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("%w (%v)", cerr, err)
	}
	return err
}

// Close implements Transport.
func (t *TCPTransport) Close() error { return t.conn.Close() }

// isCleanClose reports whether a connection read error is an ordinary
// hang-up (EOF, closed connection) rather than something worth logging.
func isCleanClose(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)
}

// ServeOpts configures Serve behaviour.
type ServeOpts struct {
	// IdleTimeout drops a connection that sends no request for this long
	// (0 = never). It bounds the damage a stalled or hostile client can
	// do to the connection table.
	IdleTimeout time.Duration
	// ErrorLog receives per-connection errors (bad frames, write
	// failures). Nil discards them. Clean closes (EOF, closed network
	// connection) are not reported.
	ErrorLog func(error)
	// Serialize restores the historical behaviour of one global lock
	// around the handler, so every request across every connection is
	// served one at a time. It exists for A/B throughput experiments
	// (E-CONC); production serving leaves it false.
	Serialize bool
}

// Serve accepts connections on l and serves protocol requests until the
// listener closes. Each connection runs on its own goroutine and requests
// are handled fully in parallel: the handler's server is concurrency-safe,
// and device queueing is modelled where it belongs (the server's seek
// semaphore), not by a global lock.
func Serve(l net.Listener, h *Handler) error {
	return ServeWith(l, h, ServeOpts{})
}

// ServeWith is Serve with explicit options. When the listener closes, all
// open connections are closed and their handler goroutines drained before
// ServeWith returns.
func ServeWith(l net.Listener, h *Handler, opts ServeOpts) error {
	var (
		serialMu sync.Mutex // only used when opts.Serialize
		connMu   sync.Mutex
		conns    = map[net.Conn]struct{}{}
		wg       sync.WaitGroup
	)
	logf := func(format string, args ...any) {
		if opts.ErrorLog != nil {
			opts.ErrorLog(fmt.Errorf(format, args...))
		}
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			// Listener closed (graceful shutdown) or fatal accept
			// failure: tear down active connections and wait for
			// their handlers to finish in-flight responses.
			connMu.Lock()
			for c := range conns {
				c.Close()
			}
			connMu.Unlock()
			wg.Wait()
			return err
		}
		connMu.Lock()
		conns[conn] = struct{}{}
		connMu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			// One tenant per connection: admission fairness tracks
			// sessions, not individual requests.
			tenant := h.NewTenant()
			defer wg.Done()
			defer func() {
				connMu.Lock()
				delete(conns, conn)
				connMu.Unlock()
				conn.Close()
			}()
			var hdr [4]byte // per-connection frame-header scratch
			for {
				if opts.IdleTimeout > 0 {
					conn.SetReadDeadline(time.Now().Add(opts.IdleTimeout))
				}
				req, err := readFramePooled(conn, &hdr)
				if err != nil {
					if !isCleanClose(err) {
						logf("wire: %s: read: %w", conn.RemoteAddr(), err)
					}
					return
				}
				var resp []byte
				if opts.Serialize {
					serialMu.Lock()
					resp = h.HandleAs(tenant, req)
					serialMu.Unlock()
				} else {
					resp = h.HandleAs(tenant, req)
				}
				if err := writeFramePooled(conn, resp); err != nil {
					if !errors.Is(err, net.ErrClosed) {
						logf("wire: %s: write: %w", conn.RemoteAddr(), err)
					}
					return
				}
				// A HELLO negotiating v2 or higher upgrades this
				// connection to multiplexed framing; the acknowledgement
				// just written was the last lock-step frame. The negotiated
				// version gates the stream ops: a v2 peer's connection
				// serves them through the normal path, which answers
				// "unknown op" exactly as before.
				upgrade := len(req) == 5 && req[0] == OpHello && resp[0] == statusOK
				version := 0
				if upgrade {
					if v, err := parseHelloResponse(resp); err == nil {
						version = v
					}
					if version < ProtocolV2 {
						upgrade = false
					}
				}
				// The loop is the last holder of both frames: the response
				// is written out, the request parsed and copied from.
				pool.Bytes.Put(req)
				recycleResponse(resp)
				if upgrade {
					muxConn(conn, tenant, version, h, opts, &serialMu, logf)
					return
				}
			}
		}(conn)
	}
}
