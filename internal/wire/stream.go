package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/pool"
)

// Server-push streams (protocol v3). A stream is opened like any other call
// — one request frame with a fresh correlation id — but the response is a
// sequence of frames under that same id: a header frame describing the
// media, data frames each carrying a byte-addressed chunk, and an end frame
// closing the stream. The sender is paced by credit-based flow control: the
// open request grants an initial byte window, the client tops it up with
// credit frames as it consumes, and the server never sends a data payload
// beyond the granted window — so a stalled consumer stalls only its own
// stream, never the mux (batched calls keep flowing on the shared
// connection, and the per-connection in-flight semaphore is not held by
// streams at all).
//
// Stream frames reuse the ordinary response header layout
// [status u8][device time u64][payload length u32], with three dedicated
// status codes; data payloads lead with the chunk's absolute byte offset so
// a resumed stream (replica failover) re-opens at exactly the first
// undelivered byte. Open-time failures (unknown object, admission shed)
// travel as ordinary error responses under the stream's id, keeping the
// client's retry/fallback classification identical to the batch path.

// Stream op codes (see the op table in wire.go; these require protocol v3).
const (
	// OpVoiceStream streams the raw PCM region of an object's first voice
	// part as byte-addressed chunks: [id u64][from u64][window u32].
	OpVoiceStream = 13
	// OpMiniatureStream streams an object's miniature as coarse-rows-first
	// progressive passes (see image.ProgressivePasses), same request shape.
	OpMiniatureStream = 14
	// OpStreamCredit grants the stream matching its correlation id n more
	// bytes of send window: [n u32].
	OpStreamCredit = 15
	// OpStreamCancel tears down the stream matching its correlation id; the
	// server stops producing and sends nothing further.
	OpStreamCancel = 16
)

// Stream frame status codes (the response statuses 0..2 stay untouched).
const (
	statusStreamHdr  = 3 // payload: producer-specific stream metadata
	statusStreamData = 4 // payload: [offset u64][chunk bytes]
	statusStreamEnd  = 5 // payload: [flag u8][error message if flag != 0]
)

// StreamChunkBytes is the voice producer's chunk size: two device blocks,
// so a chunk is one or two block-cache lookups and the page-sized pooled
// buffers of the zero-allocation serve path are recycled per chunk.
const StreamChunkBytes = 4096

// maxStreamCredit saturates a stream's accumulated send window. A hostile
// client replaying huge credit grants must not wrap the signed accumulator
// into a negative (wedged) or absurd window; past this cap further grants
// are a no-op until the window drains.
const maxStreamCredit = int64(1) << 40

// ErrStreamUnsupported reports a transport that cannot carry server-push
// streams: it has no stream support at all, or HELLO negotiated a protocol
// before v3. Callers fall back to the single-frame batch ops.
var ErrStreamUnsupported = errors.New("wire: transport does not support streams")

// errStreamCancelled is the producer-side signal that the client cancelled
// (or the connection died) mid-stream; the serving loop unwinds silently.
var errStreamCancelled = errors.New("wire: stream cancelled")

// StreamFallback reports whether a stream-open failure means the peer
// simply lacks the stream path (rather than the call failing), so the
// caller should retry via the legacy single-frame op: the transport never
// negotiated streams, or an older server rejected the op as unknown.
func StreamFallback(err error) bool {
	return errors.Is(err, ErrStreamUnsupported) || isUnknownOp(err)
}

// --- frame codec ---

// parseStreamFrame splits one stream frame into status, device time and
// payload. The layout is the ordinary response header, so the same hostile
// inputs (truncated header, payload length past the frame) are rejected the
// same way.
func parseStreamFrame(frame []byte) (status byte, dev time.Duration, payload []byte, err error) {
	if len(frame) < respHeader {
		return 0, 0, nil, errShort
	}
	n := binary.BigEndian.Uint32(frame[9:13])
	if respHeader+int(n) > len(frame) {
		return 0, 0, nil, errShort
	}
	return frame[0], time.Duration(binary.BigEndian.Uint64(frame[1:9])), frame[respHeader : respHeader+int(n)], nil
}

// parseStreamData splits a data-frame payload into offset and chunk.
func parseStreamData(payload []byte) (off uint64, chunk []byte, err error) {
	if len(payload) < 8 {
		return 0, nil, errShort
	}
	return binary.BigEndian.Uint64(payload), payload[8:], nil
}

// encodeStreamOpen builds a stream-open request.
func encodeStreamOpen(op byte, id object.ID, from uint64, window int) []byte {
	req := appendU64([]byte{op}, uint64(id))
	req = appendU64(req, from)
	return appendU32(req, uint32(window))
}

// --- producer side ---

// StreamSink receives a producing handler's stream. Data blocks until the
// client has granted enough window (mux) or accounts virtual transfer time
// (LocalTransport); both copy the chunk before returning, so the producer
// recycles its pooled buffer immediately after the call — the
// buffer-ownership hand-off never outlives one chunk.
type StreamSink interface {
	// Grant adds n bytes of send credit (no-op for sinks without flow
	// control). The open request's initial window arrives through it.
	Grant(n uint32)
	// Header sends the stream's metadata frame; dev is the device time
	// spent locating the media.
	Header(meta []byte, dev time.Duration) error
	// Data sends one chunk at its absolute byte offset; dev is the device
	// time spent producing it.
	Data(off uint64, chunk []byte, dev time.Duration) error
}

// ServeStream serves one stream-open request on behalf of the anonymous
// tenant.
func (h *Handler) ServeStream(req []byte, sink StreamSink) error {
	return h.ServeStreamAs(0, req, sink)
}

// ServeStreamAs parses a stream-open request and runs the producer against
// sink, attributed to tenant. A nil return means the stream completed (the
// caller sends the clean end frame); an error before the header is an
// open-time failure the caller reports as an ordinary error response.
func (h *Handler) ServeStreamAs(tenant uint64, req []byte, sink StreamSink) error {
	c := &cursor{data: req}
	op, err := c.u8()
	if err != nil {
		return err
	}
	id, err := c.u64()
	if err != nil {
		return err
	}
	from, err := c.u64()
	if err != nil {
		return err
	}
	window, err := c.u32()
	if err != nil {
		return err
	}
	sink.Grant(window)
	switch op {
	case OpVoiceStream:
		return h.serveVoiceStream(tenant, object.ID(id), from, sink)
	case OpMiniatureStream:
		return h.serveMiniatureStream(object.ID(id), from, sink)
	default:
		return fmt.Errorf("wire: unknown op %d", op)
	}
}

// serveVoiceStream cuts the PCM region of the object's voice part into
// StreamChunkBytes chunks behind the seek semaphore. Admission is paid once
// at open (a stream is one logical request, however many chunks it emits)
// and each chunk is read into one pooled buffer reused for the stream's
// lifetime — steady state allocates nothing per chunk.
func (h *Handler) serveVoiceStream(tenant uint64, id object.ID, from uint64, sink StreamSink) error {
	release, err := h.Srv.AdmitAs(tenant)
	if err != nil {
		return err
	}
	defer release()
	info, dur, err := h.Srv.VoicePCMInfoAs(tenant, id)
	if err != nil {
		return err
	}
	if from > info.Bytes || from%2 != 0 {
		return fmt.Errorf("wire: voice stream offset %d invalid for %d PCM bytes", from, info.Bytes)
	}
	meta := appendU32(nil, uint32(info.Rate))
	meta = appendU64(meta, info.Bytes)
	if err := sink.Header(meta, dur); err != nil {
		return err
	}
	buf := pool.Bytes.Get(StreamChunkBytes)
	defer func() { pool.Bytes.Put(buf) }()
	for off := from; off < info.Bytes; {
		n := uint64(StreamChunkBytes)
		if off+n > info.Bytes {
			n = info.Bytes - off
		}
		var t time.Duration
		buf, t, err = h.Srv.ReadPieceAppend(tenant, info.Off+off, n, buf[:0])
		if err != nil {
			return err
		}
		if err := sink.Data(off, buf, t); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// serveMiniatureStream emits the object's miniature as progressive passes:
// one data frame per pass, coarse rows first, addressed by the pass's byte
// offset in the concatenated pass stream. Miniatures are in-memory (no
// admission, no device time); the per-pass buffer is pooled and reused.
func (h *Handler) serveMiniatureStream(id object.ID, from uint64, sink StreamSink) error {
	bm := h.Srv.Miniature(id)
	if bm == nil {
		return fmt.Errorf("wire: no miniature for object %d", id)
	}
	total := uint64(img.PassOffset(bm.W, bm.H, img.ProgressivePasses))
	startPass := 0
	if from != 0 && from != total {
		var ok bool
		startPass, ok = img.PassAtOffset(bm.W, bm.H, from)
		if !ok {
			return fmt.Errorf("wire: miniature stream offset %d is not a pass boundary", from)
		}
	}
	meta := appendU32(nil, uint32(bm.W))
	meta = appendU32(meta, uint32(bm.H))
	meta = appendU32(meta, img.ProgressivePasses)
	meta = appendU64(meta, total)
	if err := sink.Header(meta, 0); err != nil {
		return err
	}
	if from == total {
		return nil // resume at the very end: nothing left but the end frame
	}
	maxPass := 0
	for p := 0; p < img.ProgressivePasses; p++ {
		if sz := img.PassSize(bm.W, bm.H, p); sz > maxPass {
			maxPass = sz
		}
	}
	buf := pool.Bytes.Get(maxPass)
	defer func() { pool.Bytes.Put(buf) }()
	for p := startPass; p < img.ProgressivePasses; p++ {
		buf = bm.AppendPassRows(buf[:0], p)
		if err := sink.Data(uint64(img.PassOffset(bm.W, bm.H, p)), buf, 0); err != nil {
			return err
		}
	}
	return nil
}

// --- server side: mux stream machinery ---

// srvStream is the server-side flow-control state of one open stream on a
// mux connection: the granted-but-unsent byte window, topped up by credit
// frames and drained by data frames, plus the cancel flag raised by a
// client cancel frame or connection death.
type srvStream struct {
	mu        sync.Mutex
	cond      *sync.Cond
	credit    int64
	cancelled bool
}

func newSrvStream() *srvStream {
	s := &srvStream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// grant adds window, saturating at maxStreamCredit (credit-overflow guard).
func (s *srvStream) grant(n uint32) {
	s.mu.Lock()
	s.credit += int64(n)
	if s.credit > maxStreamCredit {
		s.credit = maxStreamCredit
	}
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *srvStream) cancel() {
	s.mu.Lock()
	s.cancelled = true
	s.mu.Unlock()
	s.cond.Signal()
}

// take blocks until n bytes of window are available (consuming them) or the
// stream is cancelled (returning false).
func (s *srvStream) take(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.cancelled {
			return false
		}
		if s.credit >= int64(n) {
			s.credit -= int64(n)
			return true
		}
		s.cond.Wait()
	}
}

// srvStreams is a mux connection's registry of open streams, keyed by
// correlation id. The read loop registers a stream before spawning its
// producer goroutine, so a credit frame racing the open can never miss.
type srvStreams struct {
	mu   sync.Mutex
	m    map[uint32]*srvStream
	dead bool
}

func newSrvStreams() *srvStreams { return &srvStreams{m: map[uint32]*srvStream{}} }

// open registers a fresh stream; nil means duplicate id or dead connection.
func (r *srvStreams) open(id uint32) *srvStream {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return nil
	}
	if _, dup := r.m[id]; dup {
		return nil
	}
	s := newSrvStream()
	r.m[id] = s
	return s
}

func (r *srvStreams) remove(id uint32) {
	r.mu.Lock()
	delete(r.m, id)
	r.mu.Unlock()
}

// grant routes a credit frame; unknown ids (cancelled, finished, hostile)
// are dropped.
func (r *srvStreams) grant(id uint32, n uint32) {
	r.mu.Lock()
	s := r.m[id]
	r.mu.Unlock()
	if s != nil {
		s.grant(n)
	}
}

func (r *srvStreams) cancel(id uint32) {
	r.mu.Lock()
	s := r.m[id]
	r.mu.Unlock()
	if s != nil {
		s.cancel()
	}
}

// cancelAll raises cancel on every open stream (connection death); producer
// goroutines blocked in take unwind, and no new stream can open.
func (r *srvStreams) cancelAll() {
	r.mu.Lock()
	r.dead = true
	all := make([]*srvStream, 0, len(r.m))
	for _, s := range r.m {
		all = append(all, s)
	}
	r.mu.Unlock()
	for _, s := range all {
		s.cancel()
	}
}

// writeStreamFrame stages one stream frame —
// [length u32][id u32][status u8][dev u64][plen u32][off u64?][payload] —
// in an exactly-sized pooled buffer and writes it under the connection's
// write lock. The pooled staging keeps the per-chunk serve path free of
// heap allocation.
func writeStreamFrame(w io.Writer, writeMu *sync.Mutex, id uint32, status byte, dev time.Duration, off uint64, hasOff bool, payload []byte) error {
	n := len(payload)
	if hasOff {
		n += 8
	}
	out := pool.Bytes.Get(8 + respHeader + n)
	binary.BigEndian.PutUint32(out, uint32(4+respHeader+n))
	binary.BigEndian.PutUint32(out[4:], id)
	out[8] = status
	binary.BigEndian.PutUint64(out[9:], uint64(dev))
	binary.BigEndian.PutUint32(out[17:], uint32(n))
	p := 8 + respHeader
	if hasOff {
		binary.BigEndian.PutUint64(out[p:], off)
		p += 8
	}
	copy(out[p:], payload)
	writeMu.Lock()
	_, err := w.Write(out)
	writeMu.Unlock()
	pool.Bytes.Put(out)
	return err
}

// muxStreamSink writes a producer's stream onto the mux connection, pacing
// data frames by the stream's credit window.
type muxStreamSink struct {
	conn       net.Conn
	writeMu    *sync.Mutex
	id         uint32
	st         *srvStream
	sentHeader bool
}

func (s *muxStreamSink) Grant(n uint32) { s.st.grant(n) }

func (s *muxStreamSink) Header(meta []byte, dev time.Duration) error {
	s.sentHeader = true
	return writeStreamFrame(s.conn, s.writeMu, s.id, statusStreamHdr, dev, 0, false, meta)
}

func (s *muxStreamSink) Data(off uint64, chunk []byte, dev time.Duration) error {
	// Credit counts data payload bytes. Blocking here — not in the read
	// loop — is the whole design: an ungranted stream parks its own
	// goroutine while batched calls keep being served.
	if !s.st.take(len(chunk)) {
		return errStreamCancelled
	}
	return writeStreamFrame(s.conn, s.writeMu, s.id, statusStreamData, dev, off, true, chunk)
}

// serveMuxStream runs one stream-open request to completion on its own
// goroutine: producer, then the terminating frame — a clean end frame, an
// ordinary error response if nothing was streamed yet (so open-time
// failures classify exactly like batch failures, busy included), or an
// error end frame mid-stream. A cancelled stream says nothing: the client
// already tore its state down.
func serveMuxStream(conn net.Conn, writeMu *sync.Mutex, id uint32, tenant uint64, h *Handler, req []byte, st *srvStream, logf func(format string, args ...any)) {
	sink := &muxStreamSink{conn: conn, writeMu: writeMu, id: id, st: st}
	err := h.ServeStreamAs(tenant, req, sink)
	var werr error
	switch {
	case errors.Is(err, errStreamCancelled):
		return
	case err == nil:
		werr = writeStreamFrame(conn, writeMu, id, statusStreamEnd, 0, 0, false, []byte{0})
	case !sink.sentHeader:
		resp := errResp(err)
		out := muxFrame(id, resp)
		writeMu.Lock()
		_, werr = conn.Write(out)
		writeMu.Unlock()
		pool.Bytes.Put(out)
		recycleResponse(resp)
	default:
		msg := err.Error()
		pl := make([]byte, 1+len(msg))
		pl[0] = 1
		copy(pl[1:], msg)
		werr = writeStreamFrame(conn, writeMu, id, statusStreamEnd, 0, 0, false, pl)
	}
	if werr != nil && !errors.Is(werr, net.ErrClosed) {
		logf("wire: %s: stream write: %v", conn.RemoteAddr(), werr)
	}
}

// --- client side ---

// StreamChunk is one received stream data frame.
type StreamChunk struct {
	// Offset is the chunk's absolute byte offset in the streamed media
	// (PCM bytes for voice, concatenated pass stream for miniatures).
	Offset uint64
	// Data is the chunk payload. It remains valid until the next Recv.
	Data []byte
	// Dev is the server device time attributed to producing this chunk.
	Dev time.Duration
	// At is the chunk's simulated arrival time on a modelled link
	// (LocalTransport); zero on real transports.
	At time.Duration
}

// StreamConn is the client side of one open stream.
type StreamConn interface {
	// Recv returns the next chunk; io.EOF reports a clean stream end.
	Recv() (StreamChunk, error)
	// Grant tops the server's send window up by n bytes. Consumers grant
	// as they drain, keeping roughly one window in flight.
	Grant(n int)
	// Close tears the stream down (cancelling it if still open).
	Close() error
}

// StreamOpener is a transport that can open server-push streams.
type StreamOpener interface {
	// OpenStream sends a stream-open request and blocks until the header
	// frame (returning its metadata and device time) or an open failure.
	OpenStream(ctx context.Context, req []byte) (meta []byte, dev time.Duration, sc StreamConn, err error)
}

// VoiceStreamInfo is the header metadata of a voice stream.
type VoiceStreamInfo struct {
	Rate       int    // samples per second
	TotalBytes uint64 // full PCM byte length of the part (2 bytes/sample)
}

// MiniatureStreamInfo is the header metadata of a progressive miniature
// stream.
type MiniatureStreamInfo struct {
	W, H       int
	Passes     int
	TotalBytes uint64
}

func parseVoiceStreamMeta(meta []byte) (VoiceStreamInfo, error) {
	c := &cursor{data: meta}
	rate, err := c.u32()
	if err != nil {
		return VoiceStreamInfo{}, err
	}
	total, err := c.u64()
	if err != nil {
		return VoiceStreamInfo{}, err
	}
	return VoiceStreamInfo{Rate: int(rate), TotalBytes: total}, nil
}

func parseMiniatureStreamMeta(meta []byte) (MiniatureStreamInfo, error) {
	c := &cursor{data: meta}
	var v [3]uint32
	for i := range v {
		x, err := c.u32()
		if err != nil {
			return MiniatureStreamInfo{}, err
		}
		v[i] = x
	}
	total, err := c.u64()
	if err != nil {
		return MiniatureStreamInfo{}, err
	}
	return MiniatureStreamInfo{W: int(v[0]), H: int(v[1]), Passes: int(v[2]), TotalBytes: total}, nil
}

// VoiceStreamCtx opens a server-push stream over the object's voice PCM,
// starting at byte offset from (must be even — samples are 2 bytes) with an
// initial credit window of window bytes. The caller receives chunks via the
// returned StreamConn, granting credit as it consumes. Fails with
// ErrStreamUnsupported (or an unknown-op server error) when the peer lacks
// the stream path — see StreamFallback; the legacy batch path is the
// fallback. Streams bypass the retry loop: a broken stream surfaces to the
// caller (the cluster layer resumes it on a replica from the last delivered
// offset).
func (c *Client) VoiceStreamCtx(ctx context.Context, id object.ID, from uint64, window int) (VoiceStreamInfo, StreamConn, error) {
	so, ok := c.Transport().(StreamOpener)
	if !ok {
		return VoiceStreamInfo{}, nil, ErrStreamUnsupported
	}
	meta, _, sc, err := so.OpenStream(ctx, encodeStreamOpen(OpVoiceStream, id, from, window))
	if err != nil {
		return VoiceStreamInfo{}, nil, err
	}
	info, err := parseVoiceStreamMeta(meta)
	if err != nil {
		sc.Close()
		return VoiceStreamInfo{}, nil, err
	}
	return info, sc, nil
}

// MiniatureStreamCtx opens a progressive miniature stream: the coarse pass
// arrives first and each chunk is one pass of interleaved rows (apply them
// with image.Progressive). from resumes at a pass boundary byte offset.
// Fallback semantics match VoiceStreamCtx.
func (c *Client) MiniatureStreamCtx(ctx context.Context, id object.ID, from uint64, window int) (MiniatureStreamInfo, StreamConn, error) {
	so, ok := c.Transport().(StreamOpener)
	if !ok {
		return MiniatureStreamInfo{}, nil, ErrStreamUnsupported
	}
	meta, _, sc, err := so.OpenStream(ctx, encodeStreamOpen(OpMiniatureStream, id, from, window))
	if err != nil {
		return MiniatureStreamInfo{}, nil, err
	}
	info, err := parseMiniatureStreamMeta(meta)
	if err != nil {
		sc.Close()
		return MiniatureStreamInfo{}, nil, err
	}
	return info, sc, nil
}

// AppendPCMSamples decodes a voice stream chunk (little-endian 2-byte
// samples, encodeVoicePart's layout) onto dst. A trailing odd byte is
// ignored; the protocol keeps chunks sample-aligned.
func AppendPCMSamples(dst []int16, b []byte) []int16 {
	for i := 0; i+1 < len(b); i += 2 {
		dst = append(dst, int16(binary.LittleEndian.Uint16(b[i:])))
	}
	return dst
}

// --- client side: mux stream ---

// errStreamClosed reports use of a stream after Close.
var errStreamClosed = errors.New("wire: stream closed")

// muxStream is the client-side state of one open stream on a MuxTransport:
// the read loop pushes this id's frames into q, Recv pops them.
type muxStream struct {
	m       *MuxTransport
	id      uint32
	timeout time.Duration // per-frame wait bound (the transport call timeout)

	mu     sync.Mutex
	q      [][]byte
	err    error // transport death
	endErr error // error carried by an error end frame
	done   bool  // end frame consumed
	closed bool
	notify chan struct{}
}

// push appends one raw frame (correlation id stripped) from the read loop.
func (s *muxStream) push(frame []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.q = append(s.q, frame)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// fail poisons the stream (connection death).
func (s *muxStream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// next blocks for the next queued frame, bounded by ctx and the per-frame
// timeout.
func (s *muxStream) next(ctx context.Context, timeout time.Duration) ([]byte, error) {
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		s.mu.Lock()
		if len(s.q) > 0 {
			f := s.q[0]
			s.q = s.q[1:]
			s.mu.Unlock()
			return f, nil
		}
		if s.closed {
			s.mu.Unlock()
			return nil, errStreamClosed
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return nil, err
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-timeoutC:
			return nil, fmt.Errorf("%w after %v", ErrCallTimeout, timeout)
		case <-done:
			return nil, ctx.Err()
		}
	}
}

// Recv implements StreamConn.
func (s *muxStream) Recv() (StreamChunk, error) {
	s.mu.Lock()
	if s.done {
		err := s.endErr
		s.mu.Unlock()
		if err != nil {
			return StreamChunk{}, err
		}
		return StreamChunk{}, io.EOF
	}
	s.mu.Unlock()
	for {
		frame, err := s.next(nil, s.timeout)
		if err != nil {
			return StreamChunk{}, err
		}
		status, dev, payload, perr := parseStreamFrame(frame)
		if perr != nil {
			return StreamChunk{}, perr
		}
		switch status {
		case statusStreamData:
			off, chunk, derr := parseStreamData(payload)
			if derr != nil {
				return StreamChunk{}, derr
			}
			return StreamChunk{Offset: off, Data: chunk, Dev: dev}, nil
		case statusStreamEnd:
			var endErr error
			if len(payload) >= 1 && payload[0] != 0 {
				endErr = fmt.Errorf("wire: server: %s", payload[1:])
			}
			s.mu.Lock()
			s.done = true
			s.endErr = endErr
			s.mu.Unlock()
			s.m.d.removeStream(s.id)
			if endErr != nil {
				return StreamChunk{}, endErr
			}
			return StreamChunk{}, io.EOF
		default:
			return StreamChunk{}, fmt.Errorf("wire: unexpected stream frame status %d", status)
		}
	}
}

// Grant implements StreamConn: it sends a credit frame under the stream's
// correlation id. Write failures are deliberately ignored — the read loop
// surfaces connection death to Recv with a classified error.
func (s *muxStream) Grant(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	dead := s.done || s.closed || s.err != nil
	s.mu.Unlock()
	if dead {
		return
	}
	msg := appendU32([]byte{OpStreamCredit}, uint32(n))
	out := muxFrame(s.id, msg)
	s.m.writeMu.Lock()
	s.m.conn.Write(out)
	s.m.writeMu.Unlock()
	pool.Bytes.Put(out)
}

// Close implements StreamConn: the stream's demux slot is released, and if
// the server may still be producing a cancel frame tells it to stop.
func (s *muxStream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sendCancel := !s.done && s.err == nil
	s.q = nil
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	s.m.d.removeStream(s.id)
	if sendCancel {
		out := muxFrame(s.id, []byte{OpStreamCancel})
		s.m.writeMu.Lock()
		s.m.conn.Write(out)
		s.m.writeMu.Unlock()
		pool.Bytes.Put(out)
	}
	return nil
}

// OpenStream implements StreamOpener over the multiplexed connection. The
// stream registers in the demultiplexer before the request goes out, so the
// header can never race past it; the call blocks until the header frame or
// an open failure (which arrives as an ordinary error response under the
// stream's id — same classification as any batch call).
func (m *MuxTransport) OpenStream(ctx context.Context, req []byte) ([]byte, time.Duration, StreamConn, error) {
	if m.version < ProtocolV3 || m.d == nil {
		return nil, 0, nil, ErrStreamUnsupported
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, nil, err
	}
	timeout := time.Duration(m.callTimeout.Load())
	id := m.nextID.Add(1)
	st := &muxStream{m: m, id: id, timeout: timeout, notify: make(chan struct{}, 1)}
	if err := m.d.registerStream(id, st); err != nil {
		return nil, 0, nil, err
	}
	out := muxFrame(id, req)
	m.writeMu.Lock()
	if timeout > 0 {
		m.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, werr := m.conn.Write(out)
	m.writeMu.Unlock()
	pool.Bytes.Put(out)
	if werr != nil {
		m.d.removeStream(id)
		return nil, 0, nil, werr
	}
	frame, err := st.next(ctx, timeout)
	if err != nil {
		st.Close()
		return nil, 0, nil, err
	}
	if len(frame) >= 1 && frame[0] == statusStreamHdr {
		_, dev, meta, perr := parseStreamFrame(frame)
		if perr != nil {
			st.Close()
			return nil, 0, nil, perr
		}
		return meta, dev, st, nil
	}
	// Not a stream frame: an open-time failure delivered as an ordinary
	// response (or a protocol violation). The server already finished with
	// this id — release the slot without cancelling.
	s := st
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.Close()
	payload, _, perr := parseResponse(frame)
	if perr != nil {
		return nil, 0, nil, perr
	}
	return nil, 0, nil, fmt.Errorf("wire: stream open got non-stream response (%d bytes)", len(payload))
}

// OpenStreams reports the number of registered client-side streams (leak
// checks, mirroring PendingCalls).
func (m *MuxTransport) OpenStreams() int {
	if m.d == nil {
		return 0
	}
	return m.d.streamLen()
}

// --- LocalTransport streams ---

// localStreamSink runs a producer synchronously against the simulated
// link's arithmetic timing model: the server's virtual clock starts when
// the request lands, each frame occupies the link for its bandwidth cost,
// and a chunk's arrival time is its send-completion plus propagation
// latency. Device time (the dev argument) advances the server clock —
// production and transmission interleave exactly as they would on the wire,
// deterministically.
type localStreamSink struct {
	l     *LocalTransport
	clock time.Duration // server-side virtual time

	meta      []byte
	headerDev time.Duration
	chunks    []StreamChunk
	sentAny   bool
	bytes     int64 // stream frame bytes, for link accounting
	linkCost  time.Duration
}

func (s *localStreamSink) Grant(uint32) {} // synchronous production: credits are satisfied by construction

func (s *localStreamSink) Header(meta []byte, dev time.Duration) error {
	s.sentAny = true
	s.meta = append([]byte(nil), meta...)
	s.headerDev = dev
	s.clock += dev
	fsz := respHeader + len(meta)
	c := s.l.byteCost(fsz)
	s.clock += c
	s.bytes += int64(fsz)
	s.linkCost += c
	return nil
}

func (s *localStreamSink) Data(off uint64, chunk []byte, dev time.Duration) error {
	s.clock += dev
	fsz := respHeader + 8 + len(chunk)
	c := s.l.byteCost(fsz)
	sendDone := s.clock + c
	s.chunks = append(s.chunks, StreamChunk{
		Offset: off,
		Data:   append([]byte(nil), chunk...),
		Dev:    dev,
		At:     sendDone + s.l.Latency,
	})
	s.clock = sendDone
	s.bytes += int64(fsz)
	s.linkCost += c
	return nil
}

// localStreamConn replays the buffered chunks with their virtual arrival
// times.
type localStreamConn struct {
	chunks []StreamChunk
	pos    int
	endErr error // non-nil: the stream ended with an error end frame
	endAt  time.Duration
}

func (c *localStreamConn) Recv() (StreamChunk, error) {
	if c.pos < len(c.chunks) {
		ch := c.chunks[c.pos]
		c.pos++
		return ch, nil
	}
	if c.endErr != nil {
		return StreamChunk{}, c.endErr
	}
	return StreamChunk{At: c.endAt}, io.EOF
}

func (c *localStreamConn) Grant(int) {}

func (c *localStreamConn) Close() error { return nil }

// OpenStream implements StreamOpener on the simulated link. The producer
// runs to completion immediately (the link defers cost accounting, not
// work); chunks carry their modelled arrival times so a vclock harness can
// interleave delivery with playback deterministically.
func (l *LocalTransport) OpenStream(ctx context.Context, req []byte) ([]byte, time.Duration, StreamConn, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, nil, err
		}
	}
	l.mu.Lock()
	if l.tenant == 0 {
		l.tenant = l.H.NewTenant()
	}
	tenant := l.tenant
	l.mu.Unlock()
	sink := &localStreamSink{l: l, clock: l.Latency + l.byteCost(len(req))}
	err := l.H.ServeStreamAs(tenant, req, sink)
	if err != nil && !sink.sentAny {
		return nil, 0, nil, localServerErr(err)
	}
	// End frame (clean or error): one small frame after the last chunk.
	endSize := respHeader + 1
	if err != nil {
		endSize += len(err.Error())
	}
	endCost := l.byteCost(endSize)
	endAt := sink.clock + endCost + l.Latency
	sink.bytes += int64(endSize)
	sink.linkCost += endCost
	l.mu.Lock()
	l.bytesSent += int64(len(req))
	l.bytesRecv += sink.bytes
	l.roundTrips++
	l.linkTime += 2*l.Latency + l.byteCost(len(req)) + sink.linkCost
	l.mu.Unlock()
	conn := &localStreamConn{chunks: sink.chunks, endAt: endAt}
	if err != nil {
		conn.endErr = localServerErr(err)
	}
	return sink.meta, sink.headerDev, conn, nil
}

// localServerErr classifies an in-process handler error the way the framed
// protocol would: load shedding wraps ErrServerBusy (retry/failover), other
// server errors surface as server-reported failures.
func localServerErr(err error) error {
	resp := errResp(err)
	_, _, perr := parseResponse(resp)
	recycleResponse(resp)
	if perr != nil {
		return perr
	}
	return err
}

// encodePCM is a test/experiment helper: the PCM byte image of samples in
// the archived voice-part layout.
func encodePCM(samples []int16) []byte {
	out := make([]byte, 2*len(samples))
	for i, v := range samples {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}
