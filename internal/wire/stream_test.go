package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"minos/internal/archiver"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/pool"
	"minos/internal/server"
	"minos/internal/text"
	"minos/internal/voice"
)

// voiceServer extends the standard test corpus with a spoken object whose
// PCM region spans many stream chunks.
func voiceServer(t testing.TB) (*server.Server, object.ID) {
	t.Helper()
	srv := testServer(t)
	var b strings.Builder
	b.WriteString("Spoken chapter for the streaming experiments.\n")
	for i := 0; i < 120; i++ {
		b.WriteString("voice archive rhythm presentation workstation. ")
	}
	b.WriteString("\n")
	seg, err := text.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 8000)
	o, err := object.NewBuilder(9, "spoken", object.Audio).VoicePart(syn.Part).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(o); err != nil {
		t.Fatal(err)
	}
	return srv, 9
}

// voiceGroundTruth reads the object's archived PCM region directly.
func voiceGroundTruth(t testing.TB, srv *server.Server, id object.ID) (server.VoicePCM, []byte) {
	t.Helper()
	info, _, err := srv.VoicePCMInfoAs(0, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Bytes < 4*StreamChunkBytes {
		t.Fatalf("voice part only %d PCM bytes; too short to exercise chunking", info.Bytes)
	}
	data, _, err := srv.ReadPieceAs(0, info.Off, info.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	return info, data
}

// drainStream receives a whole stream, granting credit chunk by chunk, and
// returns the reassembled bytes (verifying contiguity from the start
// offset).
func drainStream(t testing.TB, sc StreamConn, from uint64) []byte {
	t.Helper()
	var out []byte
	next := from
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Recv at offset %d: %v", next, err)
		}
		if ch.Offset != next {
			t.Fatalf("chunk offset %d, want contiguous %d", ch.Offset, next)
		}
		out = append(out, ch.Data...)
		next += uint64(len(ch.Data))
		sc.Grant(len(ch.Data))
	}
}

// TestVoiceStreamOverMux is the end-to-end tentpole test on a real TCP
// connection: one correlation id carries header, many credit-paced data
// frames and the end frame, and the reassembled bytes equal the archived
// PCM region bit for bit. The open window is a single chunk, so the server
// must actually block on credit and resume on the client's grants.
func TestVoiceStreamOverMux(t *testing.T) {
	srv, id := voiceServer(t)
	info, want := voiceGroundTruth(t, srv, id)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &Handler{Srv: srv})
	tp, err := DialMux(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()

	got, sc, err := c.VoiceStreamCtx(context.Background(), id, 0, StreamChunkBytes)
	if err != nil {
		t.Fatalf("VoiceStreamCtx: %v", err)
	}
	if got.Rate != info.Rate || got.TotalBytes != info.Bytes {
		t.Fatalf("stream meta %+v, want rate %d total %d", got, info.Rate, info.Bytes)
	}
	data := drainStream(t, sc, 0)
	if !bytes.Equal(data, want) {
		t.Fatalf("streamed %d PCM bytes diverge from the archive (%d bytes)", len(data), len(want))
	}
	if samples := AppendPCMSamples(nil, data); uint64(len(samples)) != info.Bytes/2 {
		t.Fatalf("decoded %d samples, want %d", len(samples), info.Bytes/2)
	}
	// Batched calls share the connection mid-stream unharmed — and nothing
	// leaks after the clean end.
	if _, _, err := c.Miniature(3); err != nil {
		t.Fatalf("batched call after stream: %v", err)
	}
	if n := tp.OpenStreams(); n != 0 {
		t.Fatalf("%d client streams leaked after EOF", n)
	}
	if n := tp.PendingCalls(); n != 0 {
		t.Fatalf("%d pending calls leaked", n)
	}
}

// TestVoiceStreamResumeOffset: an open with from > 0 streams exactly the
// suffix — the failover-resume contract.
func TestVoiceStreamResumeOffset(t *testing.T) {
	srv, id := voiceServer(t)
	info, want := voiceGroundTruth(t, srv, id)
	c := NewClient(EthernetLink(&Handler{Srv: srv}))
	from := uint64(3 * StreamChunkBytes)
	got, sc, err := c.VoiceStreamCtx(context.Background(), id, from, 64<<10)
	if err != nil {
		t.Fatalf("VoiceStreamCtx(from=%d): %v", from, err)
	}
	if got.TotalBytes != info.Bytes {
		t.Fatalf("resumed meta total %d, want %d", got.TotalBytes, info.Bytes)
	}
	data := drainStream(t, sc, from)
	if !bytes.Equal(data, want[from:]) {
		t.Fatal("resumed stream diverges from the archive suffix")
	}
}

// TestMiniatureStreamOverMux: the progressive stream reassembles to the
// exact batch miniature, and the coarse pass alone already renders a
// usable image.
func TestMiniatureStreamOverMux(t *testing.T) {
	addr := serveTCP(t)
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()
	want, _, err := c.Miniature(3)
	if err != nil {
		t.Fatal(err)
	}

	info, sc, err := c.MiniatureStreamCtx(context.Background(), 3, 0, 64<<10)
	if err != nil {
		t.Fatalf("MiniatureStreamCtx: %v", err)
	}
	if info.W != want.W || info.H != want.H || info.Passes != img.ProgressivePasses {
		t.Fatalf("stream meta %+v, want %dx%d/%d passes", info, want.W, want.H, img.ProgressivePasses)
	}
	prog := img.NewProgressive(info.W, info.H)
	passes := 0
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Recv pass %d: %v", passes, err)
		}
		pass, ok := img.PassAtOffset(info.W, info.H, ch.Offset)
		if !ok {
			t.Fatalf("offset %d not a pass boundary", ch.Offset)
		}
		if err := prog.Apply(pass, ch.Data); err != nil {
			t.Fatal(err)
		}
		if passes == 0 {
			if !prog.Usable() {
				t.Fatal("first pass did not make the miniature usable (coarse rows must come first)")
			}
			if prog.Bitmap().PopCount() == 0 {
				t.Fatal("coarse-pass image is blank")
			}
		}
		passes++
		sc.Grant(len(ch.Data))
	}
	if passes != img.ProgressivePasses {
		t.Fatalf("received %d passes, want %d", passes, img.ProgressivePasses)
	}
	if !prog.Complete() {
		t.Fatal("progressive miniature incomplete after all passes")
	}
	if prog.Bitmap().Hash() != want.Hash() {
		t.Fatal("reassembled miniature diverges from the batch fetch")
	}
}

// TestVoiceStreamLocalTiming: on the simulated 10 Mbit/s link the first
// chunk's modelled arrival time must beat the full-transfer time by a wide
// margin — the number the E-STREAM experiment is built on — and arrival
// times must be monotone with the end frame last.
func TestVoiceStreamLocalTiming(t *testing.T) {
	srv, id := voiceServer(t)
	info, _ := voiceGroundTruth(t, srv, id)
	lt := EthernetLink(&Handler{Srv: srv})
	c := NewClient(lt)

	_, sc, err := c.VoiceStreamCtx(context.Background(), id, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var first, last, endAt time.Duration
	chunks := 0
	for {
		ch, err := sc.Recv()
		if err == io.EOF {
			endAt = ch.At
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if chunks == 0 {
			first = ch.At
		}
		if ch.At < last {
			t.Fatalf("arrival times not monotone: %v after %v", ch.At, last)
		}
		last = ch.At
		chunks++
	}
	if endAt < last {
		t.Fatalf("end frame at %v before last chunk at %v", endAt, last)
	}
	fullTransfer := lt.byteCost(int(info.Bytes))
	if first*5 > fullTransfer {
		t.Fatalf("first chunk at %v, not 5x below the %v full transfer (%d chunks)",
			first, fullTransfer, chunks)
	}
}

// TestStreamOpenErrors: open-time failures classify exactly like batch
// failures and never start a stream.
func TestStreamOpenErrors(t *testing.T) {
	srv, id := voiceServer(t)
	ctx := context.Background()

	// Simulated link.
	c := NewClient(EthernetLink(&Handler{Srv: srv}))
	if _, _, err := c.VoiceStreamCtx(ctx, 424242, 0, 1024); err == nil {
		t.Fatal("stream open for unknown object accepted")
	} else if StreamFallback(err) {
		t.Fatalf("unknown object classified as fallback: %v", err)
	}
	if _, _, err := c.VoiceStreamCtx(ctx, id, 3, 1024); err == nil {
		t.Fatal("odd PCM offset accepted")
	}
	if _, _, err := c.VoiceStreamCtx(ctx, id, 1<<40, 1024); err == nil {
		t.Fatal("offset past the part accepted")
	}
	if _, _, err := c.MiniatureStreamCtx(ctx, 3, 7, 1024); err == nil {
		t.Fatal("non-pass-boundary miniature offset accepted")
	}
	if _, _, err := c.VoiceStreamCtx(ctx, 1, 0, 1024); err == nil {
		t.Fatal("voice stream of a voiceless object accepted")
	}

	// Same open-time failure over the mux: it must arrive as an ordinary
	// error response under the stream's id and leak nothing.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &Handler{Srv: srv})
	tp, err := DialMux(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	mc := NewClient(tp)
	defer mc.Close()
	if _, _, err := mc.VoiceStreamCtx(ctx, 424242, 0, 1024); err == nil {
		t.Fatal("mux stream open for unknown object accepted")
	}
	if n := tp.OpenStreams(); n != 0 {
		t.Fatalf("%d streams leaked after failed open", n)
	}
}

// TestStreamOpsGatedBehindV3: a peer that negotiated v2 in HELLO gets the
// pre-stream protocol byte for byte — a stream op on its connection is an
// unknown op (the fallback trigger), not a stream.
func TestStreamOpsGatedBehindV3(t *testing.T) {
	srv, id := voiceServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &Handler{Srv: srv})
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Pin the handshake at v2, like any pre-v3 client binary would.
	if err := WriteFrame(conn, appendU32([]byte{OpHello}, ProtocolV2)); err != nil {
		t.Fatal(err)
	}
	ack, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	v, err := parseHelloResponse(ack)
	if err != nil {
		t.Fatal(err)
	}
	if v != ProtocolV2 {
		t.Fatalf("v2 client negotiated %d, want %d", v, ProtocolV2)
	}
	// A normal call works on the upgraded mux connection...
	out := muxFrame(1, []byte{OpList})
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	pool.Bytes.Put(out)
	frame, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(frame); got != 1 {
		t.Fatalf("correlation id %d, want 1", got)
	}
	if _, _, err := parseResponse(frame[4:]); err != nil {
		t.Fatalf("OpList over v2 mux: %v", err)
	}
	// ...but the stream op is rejected as unknown, under its own id.
	out = muxFrame(2, encodeStreamOpen(OpVoiceStream, id, 0, 1024))
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	pool.Bytes.Put(out)
	frame, err = ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(frame); got != 2 {
		t.Fatalf("correlation id %d, want 2", got)
	}
	_, _, rerr := parseResponse(frame[4:])
	if rerr == nil {
		t.Fatal("v2 connection served a stream op")
	}
	if !StreamFallback(rerr) {
		t.Fatalf("v2 rejection %q does not classify as stream fallback", rerr)
	}
}

// TestStreamFallbackAgainstV1: a v1 peer (no HELLO at all) makes OpenStream
// fail with ErrStreamUnsupported before anything hits the wire.
func TestStreamFallbackAgainstV1(t *testing.T) {
	addr := lockstepV1(t, &Handler{Srv: testServer(t)})
	tp, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if tp.Version() != ProtocolV1 {
		t.Fatalf("version = %d, want %d", tp.Version(), ProtocolV1)
	}
	c := NewClient(tp)
	_, _, serr := c.VoiceStreamCtx(context.Background(), 3, 0, 1024)
	if !errors.Is(serr, ErrStreamUnsupported) {
		t.Fatalf("stream against v1 peer = %v, want ErrStreamUnsupported", serr)
	}
	if !StreamFallback(serr) {
		t.Fatal("ErrStreamUnsupported must classify as fallback")
	}
}

// collectSink records a producer's output for direct ServeStreamAs tests.
type collectSink struct {
	header bool
	chunks int
}

func (s *collectSink) Grant(uint32) {}
func (s *collectSink) Header(meta []byte, dev time.Duration) error {
	s.header = true
	return nil
}
func (s *collectSink) Data(off uint64, chunk []byte, dev time.Duration) error {
	s.chunks++
	return nil
}

// TestStreamCodecHostileInputs is the fuzz/truncation table for the stream
// frame codec and the open-request parser: every malformed input must be
// rejected with an error (or dropped), never a panic or a bogus stream.
func TestStreamCodecHostileInputs(t *testing.T) {
	// Frame parsing: truncated headers and lying payload lengths.
	frames := [][]byte{
		nil,
		{},
		{statusStreamData},
		make([]byte, respHeader-1),
		// Header claims 16 payload bytes, frame carries 4.
		func() []byte {
			f := make([]byte, respHeader+4)
			f[0] = statusStreamData
			binary.BigEndian.PutUint32(f[9:], 16)
			return f
		}(),
		// Payload length overflows int32 wraparound territory.
		func() []byte {
			f := make([]byte, respHeader)
			f[0] = statusStreamHdr
			binary.BigEndian.PutUint32(f[9:], 0xFFFFFFFF)
			return f
		}(),
	}
	for i, f := range frames {
		if _, _, _, err := parseStreamFrame(f); err == nil {
			t.Fatalf("hostile frame %d accepted", i)
		}
	}
	// A data payload must carry at least its offset.
	for i, p := range [][]byte{nil, {}, {1, 2, 3, 4, 5, 6, 7}} {
		if _, _, err := parseStreamData(p); err == nil {
			t.Fatalf("hostile data payload %d accepted", i)
		}
	}
	// Metadata parsers reject truncation at every boundary.
	goodVoice := appendU64(appendU32(nil, 8000), 1<<20)
	for cut := 0; cut < len(goodVoice); cut++ {
		if _, err := parseVoiceStreamMeta(goodVoice[:cut]); err == nil {
			t.Fatalf("truncated voice meta (%d bytes) accepted", cut)
		}
	}
	goodMini := appendU64(appendU32(appendU32(appendU32(nil, 64), 64), 4), 4096)
	for cut := 0; cut < len(goodMini); cut++ {
		if _, err := parseMiniatureStreamMeta(goodMini[:cut]); err == nil {
			t.Fatalf("truncated miniature meta (%d bytes) accepted", cut)
		}
	}

	// Open-request parsing: truncations of a valid request, then unknown op.
	srv, id := voiceServer(t)
	h := &Handler{Srv: srv}
	good := encodeStreamOpen(OpVoiceStream, id, 0, 4096)
	for cut := 0; cut < len(good); cut++ {
		sink := &collectSink{}
		if err := h.ServeStreamAs(0, good[:cut], sink); err == nil {
			t.Fatalf("truncated open request (%d bytes) accepted", cut)
		}
		if sink.header || sink.chunks > 0 {
			t.Fatalf("truncated open request (%d bytes) produced output", cut)
		}
	}
	sink := &collectSink{}
	if err := h.ServeStreamAs(0, encodeStreamOpen(200, id, 0, 4096), sink); err == nil || !isUnknownOp(err) {
		t.Fatalf("unknown stream op = %v, want unknown-op error", err)
	}
}

// TestSrvStreamCreditOverflow: hostile credit replay saturates instead of
// wrapping, and the stream keeps working at the cap.
func TestSrvStreamCreditOverflow(t *testing.T) {
	s := newSrvStream()
	for i := 0; i < 1<<12; i++ {
		s.grant(0xFFFFFFFF)
	}
	s.mu.Lock()
	credit := s.credit
	s.mu.Unlock()
	if credit != maxStreamCredit {
		t.Fatalf("credit = %d after hostile grants, want saturation at %d", credit, maxStreamCredit)
	}
	if !s.take(StreamChunkBytes) {
		t.Fatal("take failed with a saturated window")
	}
	s.cancel()
	if s.take(1) {
		t.Fatal("take succeeded after cancel")
	}
}

// TestSrvStreamsRegistryHostile: duplicate opens, credits and cancels for
// unknown ids, and opens after connection death are all rejected or
// dropped.
func TestSrvStreamsRegistry(t *testing.T) {
	r := newSrvStreams()
	st := r.open(7)
	if st == nil {
		t.Fatal("fresh open failed")
	}
	if r.open(7) != nil {
		t.Fatal("duplicate stream id accepted")
	}
	r.grant(99, 4096) // unknown id: dropped
	r.cancel(99)      // unknown id: dropped
	r.grant(7, 4096)
	if !st.take(4096) {
		t.Fatal("granted credit not taken")
	}
	r.cancelAll()
	if st.take(1) {
		t.Fatal("stream usable after cancelAll")
	}
	if r.open(8) != nil {
		t.Fatal("open accepted on a dead connection")
	}
}

// TestDemuxStreamFrames: stream frames for unknown ids (hostile, or data
// racing a finished stream) are dropped; connection death fails open
// streams exactly like pending calls.
func TestDemuxStreamFrames(t *testing.T) {
	d := newDemux()
	st := &muxStream{id: 5, notify: make(chan struct{}, 1)}
	if err := d.registerStream(5, st); err != nil {
		t.Fatal(err)
	}
	if !d.deliver(append(appendU32(nil, 5), 0xAB)) {
		t.Fatal("stream frame not delivered")
	}
	// Data after the stream retired its slot — dropped, not crashed.
	d.removeStream(5)
	if d.deliver(append(appendU32(nil, 5), 0xCD)) {
		t.Fatal("frame for a retired stream delivered")
	}
	if d.deliver(append(appendU32(nil, 77), 0xEE)) {
		t.Fatal("frame for an unknown stream delivered")
	}
	// failAll poisons registered streams.
	st2 := &muxStream{id: 6, notify: make(chan struct{}, 1)}
	if err := d.registerStream(6, st2); err != nil {
		t.Fatal(err)
	}
	d.failAll(ErrTransportClosed)
	if _, err := st2.next(nil, time.Second); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("stream after failAll = %v, want ErrTransportClosed", err)
	}
	if d.streamLen() != 0 {
		t.Fatalf("%d streams left after failAll", d.streamLen())
	}
}

// TestStreamCancelRaceWithBatches is the -race gate for the shared mux
// connection: a voice stream is cancelled mid-flight (its producer blocked
// on credit) while goroutines hammer batched miniature calls on the same
// connection. The batches must all succeed, and neither side may leak
// stream slots, pending calls, or goroutines.
func TestStreamCancelRaceWithBatches(t *testing.T) {
	srv, id := voiceServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &Handler{Srv: srv})
	tp, err := DialMux(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()
	if _, _, err := c.Miniature(3); err != nil { // settle the connection
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	iters := raceIters(t, 24)
	for i := 0; i < iters; i++ {
		// Tiny window: the producer sends one chunk and parks on credit —
		// guaranteed mid-flight when the cancel lands.
		_, sc, err := c.VoiceStreamCtx(context.Background(), id, 0, StreamChunkBytes)
		if err != nil {
			t.Fatalf("iter %d: open: %v", i, err)
		}
		var wg sync.WaitGroup
		errc := make(chan error, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < 4; k++ {
					res, _, err := c.Miniatures([]object.ID{1, 2, 3})
					if err != nil {
						errc <- err
						return
					}
					if len(res) != 3 || !res[0].OK {
						errc <- fmt.Errorf("goroutine %d: batch = %+v", g, res)
						return
					}
				}
			}(g)
		}
		if _, err := sc.Recv(); err != nil {
			t.Fatalf("iter %d: first chunk: %v", i, err)
		}
		sc.Close() // cancel mid-flight, races the batches
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		if n := tp.OpenStreams(); n != 0 {
			t.Fatalf("iter %d: %d stream slots leaked after cancel", i, n)
		}
	}
	if n := tp.PendingCalls(); n != 0 {
		t.Fatalf("%d pending calls leaked", n)
	}
	// Server producer goroutines parked on credit must have unwound on the
	// cancel frames; give the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d never returned to baseline %d: cancelled producers leaked",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAllocStreamVoiceChunks extends the zero-allocation guard to the
// chunked voice serve path: with the block cache warm, the marginal cost
// of a streamed chunk is zero heap allocations (per-stream overhead —
// admission, descriptor parse, metadata — is amortized out by comparing
// two stream lengths).
func TestAllocStreamVoiceChunks(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	// A dedicated server whose block cache holds the whole PCM region: the
	// guard measures the steady-state serve path, not cache-miss device
	// reads.
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(4096))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(archiver.New(dev), server.WithCache(8192))
	id := object.ID(9)
	seg, err := text.Parse("Alloc guard corpus. " + strings.Repeat("voice archive rhythm presentation workstation. ", 120))
	if err != nil {
		t.Fatal(err)
	}
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), 8000)
	o, err := object.NewBuilder(id, "spoken", object.Audio).VoicePart(syn.Part).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(o); err != nil {
		t.Fatal(err)
	}
	h := &Handler{Srv: srv}
	info, _, ierr := srv.VoicePCMInfoAs(0, id)
	if ierr != nil {
		t.Fatal(ierr)
	}
	run := func(from uint64) (chunks float64, allocs float64) {
		req := encodeStreamOpen(OpVoiceStream, id, from, 1<<20)
		sink := &collectSink{}
		if err := h.ServeStreamAs(0, req, sink); err != nil { // warm cache + pools
			t.Fatal(err)
		}
		chunks = float64(sink.chunks)
		allocs = testing.AllocsPerRun(20, func() {
			s := &collectSink{}
			if err := h.ServeStreamAs(0, req, s); err != nil {
				t.Fatal(err)
			}
		})
		return chunks, allocs
	}
	lastChunk := (info.Bytes - 1) / StreamChunkBytes * StreamChunkBytes
	shortChunks, shortAllocs := run(lastChunk) // 1 chunk
	fullChunks, fullAllocs := run(0)           // all chunks
	if fullChunks-shortChunks < 4 {
		t.Fatalf("stream lengths %v vs %v chunks: too close to measure marginal cost", fullChunks, shortChunks)
	}
	perChunk := (fullAllocs - shortAllocs) / (fullChunks - shortChunks)
	if perChunk > 0.01 {
		t.Fatalf("voice streaming allocates %.3f objects per chunk (full %.0f allocs/%.0f chunks, short %.0f/%.0f), want 0",
			perChunk, fullAllocs, fullChunks, shortAllocs, shortChunks)
	}
}

// TestAllocMuxStreamFrameWrite guards the wire side of the chunk path:
// staging and writing a stream data frame from the pool must not allocate
// in steady state.
func TestAllocMuxStreamFrameWrite(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	var mu sync.Mutex
	chunk := make([]byte, StreamChunkBytes)
	if err := writeStreamFrame(io.Discard, &mu, 7, statusStreamData, 0, 0, true, chunk); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := writeStreamFrame(io.Discard, &mu, 7, statusStreamData, 0, 4096, true, chunk); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("stream frame write allocates %.1f objects/run in steady state, want 0", avg)
	}
}
