package wire

import (
	"testing"

	"minos/internal/server"
)

// TestStatsTaggedRoundTrip: every counter survives the tagged encoding,
// including the ones deliberately emitted out of historical order.
func TestStatsTaggedRoundTrip(t *testing.T) {
	want := server.Stats{
		PieceReads: 1, BytesOut: 2, CacheHits: 3, CacheMiss: 4,
		DeviceWaits: 5, DeviceWaitNanos: 6, ReadAheadBlocks: 7, Shed: 8,
		EncodedHits: 9, EncodedMiss: 10, PoolAllocs: 11, PoolRecycled: 12,
	}
	payload := encodeStatsTagged(want)
	if payload[0] != statsTagged {
		t.Fatalf("marker = %#x", payload[0])
	}
	got, err := decodeStatsTagged(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}

// TestStatsTaggedSkipsUnknownTags: a client must keep decoding the fields
// it knows when a newer server appends counters with tags it does not.
func TestStatsTaggedSkipsUnknownTags(t *testing.T) {
	payload := encodeStatsTagged(server.Stats{PieceReads: 9, Shed: 2})
	payload = append(payload, 200) // unknown future tag...
	payload = appendU64(payload, 12345)
	got, err := decodeStatsTagged(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.PieceReads != 9 || got.Shed != 2 {
		t.Fatalf("decode with unknown tag = %+v", got)
	}
}

// TestStatsPositionalFallback: the client still decodes the pre-tagged
// positional layout (six required u64 fields plus the optional seventh),
// so it keeps working against old servers.
func TestStatsPositionalFallback(t *testing.T) {
	var payload []byte
	for _, v := range []uint64{1, 2, 3, 4, 5, 6, 7} {
		payload = appendU64(payload, v)
	}
	got, err := decodeStatsPositional(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := server.Stats{PieceReads: 1, BytesOut: 2, CacheHits: 3, CacheMiss: 4,
		DeviceWaits: 5, DeviceWaitNanos: 6, ReadAheadBlocks: 7}
	if got != want {
		t.Fatalf("positional decode = %+v, want %+v", got, want)
	}
	// Six-field layout (servers predating read-ahead) still decodes.
	got, err = decodeStatsPositional(payload[:48])
	if err != nil {
		t.Fatal(err)
	}
	if got.ReadAheadBlocks != 0 || got.DeviceWaitNanos != 6 {
		t.Fatalf("six-field decode = %+v", got)
	}
}

// TestStatsOverWire: the wire Stats call decodes the tagged response the
// current server emits.
func TestStatsOverWire(t *testing.T) {
	c, _ := localClient(t)
	if _, _, err := c.ReadPiece(0, 64); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PieceReads == 0 {
		t.Fatalf("stats over wire = %+v", st)
	}
}
