package wire

import (
	"strings"
	"testing"

	"minos/internal/archiver"
	"minos/internal/disk"
	"minos/internal/index"
	"minos/internal/object"
	"minos/internal/server"
)

func plannedTestServer(t testing.TB) *server.Server {
	t.Helper()
	dev, err := disk.NewOptical("opt0", disk.OpticalGeometry(4096))
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(archiver.New(dev))
	add := func(id object.ID, mode object.Mode, date, body string) {
		b := object.NewBuilder(id, "report", mode).Text(body)
		if date != "" {
			b = b.Attr("date", date)
		}
		o, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Publish(o); err != nil {
			t.Fatal(err)
		}
	}
	add(1, object.Visual, "1986-03-01", ".title A\nthe lung shadow report.\n")
	add(2, object.Visual, "1986-07-15", ".title B\nthe lung rhythm report.\n")
	add(3, object.Audio, "1986-07-20", ".title C\nthe lung shadow dictation.\n")
	add(4, object.Audio, "", ".title D\nthe heart dictation.\n")
	return s
}

func TestQueryPlannedOverWire(t *testing.T) {
	c := NewClient(EthernetLink(&Handler{Srv: plannedTestServer(t)}))
	got := func(q index.Query) []object.ID {
		t.Helper()
		ids, _, err := c.QueryPlanned(q)
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	if ids := got(index.Query{Terms: []string{"lung"}}); len(ids) != 3 {
		t.Fatalf("terms only = %v", ids)
	}
	if ids := got(index.Query{Terms: []string{"lung"}, Kind: index.KindAudio}); len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("kind filter = %v", ids)
	}
	from, _ := index.ParseDate("1986-07-01")
	to, _ := index.ParseDate("1986-12-31")
	if ids := got(index.Query{Terms: []string{"lung"}, DateFrom: from, DateTo: to}); len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("date filter = %v", ids)
	}
	// Attribute-only query: no terms, kind filter alone. Object 4 has no
	// date attr, so a dated range excludes it.
	if ids := got(index.Query{Kind: index.KindAudio}); len(ids) != 2 {
		t.Fatalf("attr-only = %v", ids)
	}
	if ids := got(index.Query{Kind: index.KindAudio, DateFrom: from}); len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("attr-only dated = %v", ids)
	}
	if ids := got(index.Query{Terms: []string{"absent"}}); len(ids) != 0 {
		t.Fatalf("missing term = %v", ids)
	}
}

func TestQueryPlannedRejectsHostileRequests(t *testing.T) {
	h := &Handler{Srv: plannedTestServer(t)}
	// Truncations of a valid request must all error, never panic.
	valid := encodeQueryPlannedReq(index.Query{Terms: []string{"lung", "shadow"}, Kind: index.KindAudio})
	for n := 0; n < len(valid); n++ {
		resp := h.Handle(valid[:n])
		if len(resp) == 0 || resp[0] != statusErr {
			t.Fatalf("truncated request len %d accepted", n)
		}
	}
	// Hostile term count.
	req := []byte{OpQueryPlanned, 0}
	req = appendU32(req, 0)
	req = appendU32(req, 0)
	req = appendU32(req, MaxQueryTerms+1)
	if resp := h.Handle(req); resp[0] != statusErr || !strings.Contains(string(resp[respHeader:]), "exceeds") {
		t.Fatalf("oversized conjunction accepted: %q", resp)
	}
	// Unknown kind byte.
	req = []byte{OpQueryPlanned, 9}
	req = appendU32(req, 0)
	req = appendU32(req, 0)
	req = appendU32(req, 0)
	if resp := h.Handle(req); resp[0] != statusErr {
		t.Fatal("bad kind accepted")
	}
}

// TestQueryPlannedFallback runs the planned op against a pre-planner server
// (every op past the legacy set answered unknown-op): filterless planned
// queries must fall back to OpQuery; queries with predicates must fail
// rather than silently drop their filters.
func TestQueryPlannedFallback(t *testing.T) {
	addr := lockstepV1(t, &Handler{Srv: plannedTestServer(t)})
	tp, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tp)
	defer c.Close()
	ids, _, err := c.QueryPlanned(index.Query{Terms: []string{"lung", "shadow"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("fallback query = %v", ids)
	}
	if _, _, err := c.QueryPlanned(index.Query{Terms: []string{"lung"}, Kind: index.KindAudio}); err == nil {
		t.Fatal("filtered query silently degraded on a pre-planner server")
	}
}
