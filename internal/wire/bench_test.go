package wire

import "testing"

func BenchmarkLocalRoundTrip(b *testing.B) {
	c, _ := localClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Query("lung"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDescriptorFetch(b *testing.B) {
	c, _ := localClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Descriptor(1); err != nil {
			b.Fatal(err)
		}
	}
}
