package wire

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"minos/internal/object"
)

func BenchmarkLocalRoundTrip(b *testing.B) {
	c, _ := localClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Query("lung"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDescriptorFetch(b *testing.B) {
	c, _ := localClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Descriptor(1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConcurrentPieceReads measures cache-hit piece-read throughput over
// TCP with 8 concurrent client connections — the wall-clock half of the
// E-CONC experiment (the vclock half is TestSimulateContentionModels).
// With serialize=true every request queues behind one global handler lock
// (the seed behaviour); with serialize=false requests are served in
// parallel. The wall-clock gap scales with available cores, since a
// cache-hit handler is pure CPU.
func benchConcurrentPieceReads(b *testing.B, serialize bool) {
	srv := testServer(b)
	const (
		region  = 128 * 2048 // warmed byte range (fits the 256-block cache)
		piece   = 64 * 1024  // per-request read size
		clients = 8
	)
	if _, _, err := srv.ReadPiece(0, region); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go ServeWith(l, &Handler{Srv: srv}, ServeOpts{Serialize: serialize})

	cs := make([]*Client, clients)
	for i := range cs {
		tp, err := Dial(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		cs[i] = NewClient(tp)
		defer cs[i].Close()
	}
	b.SetBytes(piece)
	b.ResetTimer()
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for _, c := range cs {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				off := uint64(i*piece) % (region - piece)
				if _, _, err := c.ReadPiece(off, piece); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func BenchmarkServePieceReads8ClientsSerialized(b *testing.B) {
	benchConcurrentPieceReads(b, true)
}

func BenchmarkServePieceReads8ClientsParallel(b *testing.B) {
	benchConcurrentPieceReads(b, false)
}

// BenchmarkMiniatureServeWarm measures the steady-state server handler path
// for a batched miniature request: every published miniature already built,
// every request identical — the shape of sequential browsing under load.
func BenchmarkMiniatureServeWarm(b *testing.B) {
	h := &Handler{Srv: testServer(b)}
	req := encodeMiniaturesReq([]object.ID{1, 2, 3})
	if resp := h.Handle(req); resp[0] != statusOK {
		b.Fatalf("warmup response status %d", resp[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := h.Handle(req)
		if resp[0] != statusOK {
			b.Fatal("bad response")
		}
		recycleResponse(resp) // as the serve loops do after the write
	}
}
