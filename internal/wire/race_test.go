package wire

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	img "minos/internal/image"
	"minos/internal/object"
)

func raceIters(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		return full / 4
	}
	return full
}

// TestServeConcurrentConnections hammers one TCP server from many
// connections with overlapping Piece/Miniature/View/Stats requests and
// asserts byte-identical results vs. the serial path. Under -race it
// proves wire.Serve needs no global handler lock.
func TestServeConcurrentConnections(t *testing.T) {
	srv := testServer(t)
	h := &Handler{Srv: srv}

	// Serial baselines through a direct client.
	serial := NewClient(EthernetLink(h))
	ext, err := srv.Archiver().ExtentOf(1)
	if err != nil {
		t.Fatal(err)
	}
	basePiece, _, err := serial.ReadPiece(ext.Start, ext.Length)
	if err != nil {
		t.Fatal(err)
	}
	viewRect := img.Rect{X: 10, Y: 10, W: 40, H: 30}
	baseView, _, err := serial.ImageView(3, "map", viewRect)
	if err != nil {
		t.Fatal(err)
	}
	baseIDs, _, err := serial.List()
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, h)

	const clients = 16
	iters := raceIters(t, 40)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tp, err := Dial(l.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			c := NewClient(tp)
			defer c.Close()
			for i := 0; i < iters; i++ {
				switch (w + i) % 6 {
				case 0:
					data, _, err := c.ReadPiece(ext.Start, ext.Length)
					if err != nil {
						errc <- err
						return
					}
					if !bytes.Equal(data, basePiece) {
						errc <- fmt.Errorf("client %d: piece diverged from serial read", w)
						return
					}
				case 1:
					m, _, err := c.Miniature(3)
					if err != nil {
						errc <- err
						return
					}
					if m.PopCount() == 0 {
						errc <- fmt.Errorf("client %d: blank miniature", w)
						return
					}
				case 2:
					v, _, err := c.ImageView(3, "map", viewRect)
					if err != nil {
						errc <- err
						return
					}
					if v.W != baseView.W || v.H != baseView.H || v.PopCount() != baseView.PopCount() {
						errc <- fmt.Errorf("client %d: view diverged from serial extract", w)
						return
					}
				case 3:
					ids, _, err := c.Query("the")
					if err != nil {
						errc <- err
						return
					}
					if len(ids) != 3 {
						errc <- fmt.Errorf("client %d: Query(the) = %v", w, ids)
						return
					}
				case 4:
					st, err := c.Stats()
					if err != nil {
						errc <- err
						return
					}
					if st.PieceReads < 0 || st.BytesOut < 0 {
						errc <- fmt.Errorf("client %d: stats = %+v", w, st)
						return
					}
				case 5:
					ids, _, err := c.List()
					if err != nil {
						errc <- err
						return
					}
					if len(ids) != len(baseIDs) {
						errc <- fmt.Errorf("client %d: List = %v, want %v", w, ids, baseIDs)
						return
					}
					if m, err := c.Mode(3); err != nil || m != object.Audio {
						errc <- fmt.Errorf("client %d: Mode = %v, %v", w, m, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The server observed real concurrent traffic.
	st, err := NewClient(EthernetLink(h)).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PieceReads == 0 || st.CacheHits == 0 {
		t.Fatalf("server stats after stress = %+v", st)
	}
}

// TestConcurrentPooledResponses drives the handler's pooled-response path
// from many goroutines at once: each builds a batched miniature response
// from a pool buffer, and each goroutine byte-compares its response against
// the serial baseline before recycling it. If the pool ever handed the same
// buffer to two in-flight responses, or a recycle landed while the bytes
// were still being read, the comparison (or -race) would catch it.
func TestConcurrentPooledResponses(t *testing.T) {
	h := &Handler{Srv: testServer(t)}
	req := encodeMiniaturesReq([]object.ID{1, 2, 3})
	first := h.Handle(req)
	if first[0] != statusOK {
		t.Fatalf("baseline response status %d", first[0])
	}
	base := append([]byte(nil), first...)
	recycleResponse(first)

	const workers = 16
	iters := raceIters(t, 300)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp := h.Handle(req)
				if !bytes.Equal(resp, base) {
					errc <- fmt.Errorf("worker %d: pooled response diverged from serial baseline", w)
					return
				}
				res, err := decodeMiniatures([]object.ID{1, 2, 3}, resp[13:])
				if err != nil {
					errc <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				for _, r := range res {
					if !r.OK || r.Mini == nil || r.Mini.PopCount() == 0 {
						errc <- fmt.Errorf("worker %d: blank miniature in batch", w)
						return
					}
				}
				recycleResponse(resp)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestLocalTransportConcurrent drives one shared in-process transport from
// many goroutines: the link accounting and the handler must both tolerate
// it (the client stub itself is stateless).
func TestLocalTransportConcurrent(t *testing.T) {
	lt := EthernetLink(&Handler{Srv: testServer(t)})
	c := NewClient(lt)
	const workers = 12
	iters := raceIters(t, 40)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w%2 == 0 {
					if _, _, err := c.Query("lung"); err != nil {
						errc <- err
						return
					}
				} else {
					if _, _, err := c.Descriptor(2); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := lt.Stats()
	if st.RoundTrips != int64(workers*iters) {
		t.Fatalf("round trips = %d, want %d", st.RoundTrips, workers*iters)
	}
}
