package archiver

import (
	"testing"

	"minos/internal/object"
)

func BenchmarkArchiveLoad(b *testing.B) {
	a := newArch(b, 1<<18)
	for i := 0; i < b.N; i++ {
		o := simpleObject(b, object.ID(i+1))
		if _, _, err := a.Archive(o); err != nil {
			b.Fatal(err)
		}
		if _, _, err := a.Load(object.ID(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMailOutOutside(b *testing.B) {
	a := newArch(b, 1<<16)
	a.Archive(simpleObject(b, 1))
	a.Archive(simpleObject(b, 2), SharedPart{Part: "fig", From: 1, FromPart: "fig"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.MailOut(2, false); err != nil {
			b.Fatal(err)
		}
	}
}
