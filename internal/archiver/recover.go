package archiver

import (
	"encoding/binary"
	"fmt"
	"time"

	"minos/internal/descriptor"
	"minos/internal/disk"
)

// Recover rebuilds an archiver's directory by scanning the optical medium.
// Archived objects are laid out back-to-back from block 0, each starting at
// a block boundary with an 8-byte descriptor-length header, so the medium
// is self-describing: persistence needs only the device image (see
// disk.SaveFile / disk.LoadFile), no side catalog.
//
// Version lineage is in-memory metadata and is not recovered; objects that
// need durable lineage record their predecessor in an attribute.
func Recover(dev *disk.Optical) (*Archiver, time.Duration, error) {
	a := New(dev)
	bs := uint64(dev.BlockSize())
	var cursor uint64
	end := uint64(dev.Used()) * bs
	var total time.Duration
	for cursor < end {
		hdr, t, err := disk.ReadExtent(dev, cursor, headerLen)
		total += t
		if err != nil {
			return nil, total, fmt.Errorf("archiver: recover at %d: %w", cursor, err)
		}
		descLen := binary.BigEndian.Uint64(hdr)
		if descLen == 0 || cursor+headerLen+descLen > end {
			return nil, total, fmt.Errorf("archiver: recover at %d: implausible descriptor length %d", cursor, descLen)
		}
		raw, t2, err := disk.ReadExtent(dev, cursor+headerLen, descLen)
		total += t2
		if err != nil {
			return nil, total, err
		}
		d, err := descriptor.Parse(raw)
		if err != nil {
			return nil, total, fmt.Errorf("archiver: recover at %d: %w", cursor, err)
		}
		// The extent ends where the last composition-resident part ends
		// (offsets are archiver-absolute on the medium); objects whose
		// parts are all pointers end right after the descriptor.
		extentEnd := cursor + headerLen + descLen
		for _, p := range d.Parts {
			if p.Loc == descriptor.LocComposition && p.Offset+p.Length > extentEnd {
				extentEnd = p.Offset + p.Length
			}
		}
		if _, dup := a.dir[d.ID]; dup {
			return nil, total, fmt.Errorf("archiver: recover: duplicate object id %d at %d", d.ID, cursor)
		}
		a.dir[d.ID] = Extent{Start: cursor, Length: extentEnd - cursor}
		// Advance to the next block boundary.
		cursor = ((extentEnd + bs - 1) / bs) * bs
	}
	return a, total, nil
}
