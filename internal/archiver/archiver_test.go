package archiver

import (
	"errors"
	"testing"

	"minos/internal/descriptor"
	"minos/internal/disk"
	img "minos/internal/image"
	"minos/internal/object"
)

const markup = `.title Doc
.chapter One
Alpha beta gamma delta epsilon. Zeta eta theta.
.chapter Two
Iota kappa lambda mu nu. Xi omicron pi.
`

func newArch(t testing.TB, blocks int) *Archiver {
	t.Helper()
	dev, err := disk.NewOptical("arch0", disk.OpticalGeometry(blocks))
	if err != nil {
		t.Fatal(err)
	}
	return New(dev)
}

func bigImage(name string) *img.Image {
	im := img.New(name, 120, 90)
	b := img.NewBitmap(120, 90)
	b.Fill(img.Rect{X: 10, Y: 10, W: 80, H: 60}, true)
	im.Base = b
	return im
}

func simpleObject(t testing.TB, id object.ID) *object.Object {
	t.Helper()
	o, err := object.NewBuilder(id, "Doc", object.Visual).
		Text(markup).
		Image(bigImage("fig")).
		PlaceImageAfterWord("fig", 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestArchiveAndLoad(t *testing.T) {
	a := newArch(t, 512)
	o := simpleObject(t, 1)
	ext, dur, err := a.Archive(o)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Length == 0 || dur == 0 {
		t.Fatalf("extent %+v, dur %v", ext, dur)
	}
	if o.State != object.Archived {
		t.Fatal("object not transitioned to archived")
	}
	back, _, err := a.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != "Doc" || len(back.Images) != 1 {
		t.Fatal("loaded object mismatch")
	}
	if back.Images[0].Rasterize().Hash() != o.Images[0].Rasterize().Hash() {
		t.Fatal("image damaged through archive")
	}
	if len(back.Stream()) != len(o.Stream()) {
		t.Fatal("stream damaged through archive")
	}
}

func TestArchiveTwiceRejected(t *testing.T) {
	a := newArch(t, 512)
	o := simpleObject(t, 1)
	if _, _, err := a.Archive(o); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Archive(simpleObject(t, 1)); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestLoadMissing(t *testing.T) {
	a := newArch(t, 64)
	if _, _, err := a.Load(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if a.Has(99) {
		t.Fatal("Has(99)")
	}
}

func TestMultipleObjectsSeparateExtents(t *testing.T) {
	a := newArch(t, 2048)
	e1, _, err := a.Archive(simpleObject(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := a.Archive(simpleObject(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Start < e1.Start+e1.Length {
		t.Fatalf("extents overlap: %+v %+v", e1, e2)
	}
	ids := a.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("IDs = %v", ids)
	}
	// Both load back intact.
	for _, id := range ids {
		if _, _, err := a.Load(id); err != nil {
			t.Fatalf("load %d: %v", id, err)
		}
	}
}

func TestDescriptorOffsetsAreAbsolute(t *testing.T) {
	a := newArch(t, 512)
	a.Archive(simpleObject(t, 1)) // occupy low offsets
	ext, _, err := a.Archive(simpleObject(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := a.ReadDescriptor(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Parts {
		if p.Loc == descriptor.LocComposition && p.Offset < ext.Start {
			t.Fatalf("part %q offset %d below extent start %d (not rebased)", p.Name, p.Offset, ext.Start)
		}
		if p.Offset+p.Length > ext.Start+ext.Length {
			t.Fatalf("part %q extends past extent", p.Name)
		}
	}
}

func TestSharedPartAvoidsDuplication(t *testing.T) {
	a := newArch(t, 4096)
	first := simpleObject(t, 1)
	e1, _, err := a.Archive(first)
	if err != nil {
		t.Fatal(err)
	}
	// The second object reuses the first's image: "the x-ray bitmap is
	// only stored once" (§3).
	second := simpleObject(t, 2)
	e2, _, err := a.Archive(second, SharedPart{Part: "fig", From: 1, FromPart: "fig"})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Length >= e1.Length {
		t.Fatalf("shared archive not smaller: %d vs %d", e2.Length, e1.Length)
	}
	d2, _, err := a.ReadDescriptor(2)
	if err != nil {
		t.Fatal(err)
	}
	var ptr *descriptor.PartRef
	for i := range d2.Parts {
		if d2.Parts[i].Name == "fig" {
			ptr = &d2.Parts[i]
		}
	}
	if ptr == nil || ptr.Loc != descriptor.LocArchiver || ptr.ArchObject != 1 {
		t.Fatalf("fig part = %+v, want archiver pointer to object 1", ptr)
	}
	// Loading resolves the pointer transparently.
	back, _, err := a.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Images[0].Rasterize().Hash() != first.Images[0].Rasterize().Hash() {
		t.Fatal("shared image corrupted")
	}
}

func TestSharedPartErrors(t *testing.T) {
	a := newArch(t, 1024)
	a.Archive(simpleObject(t, 1))
	if _, _, err := a.Archive(simpleObject(t, 2), SharedPart{Part: "fig", From: 9, FromPart: "fig"}); err == nil {
		t.Fatal("share from missing object accepted")
	}
	if _, _, err := a.Archive(simpleObject(t, 3), SharedPart{Part: "fig", From: 1, FromPart: "ghost"}); err == nil {
		t.Fatal("share of missing part accepted")
	}
	if _, _, err := a.Archive(simpleObject(t, 4), SharedPart{Part: "fig", From: 1, FromPart: "text0"}); err == nil {
		t.Fatal("kind-mismatched share accepted")
	}
}

func TestMailOutOutsideIsSelfContained(t *testing.T) {
	a := newArch(t, 4096)
	a.Archive(simpleObject(t, 1))
	a.Archive(simpleObject(t, 2), SharedPart{Part: "fig", From: 1, FromPart: "fig"})
	blob, _, err := a.MailOut(2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Self-contained: materializes with no archiver.
	o, err := MaterializeMailed(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Images) != 1 || o.Images[0].Rasterize().PopCount() == 0 {
		t.Fatal("mailed object image missing")
	}
	d, _, err := ImportMailed(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Parts {
		if p.Loc == descriptor.LocArchiver {
			t.Fatal("outside mail still has archiver pointers")
		}
	}
}

func TestMailOutInsideKeepsPointers(t *testing.T) {
	a := newArch(t, 4096)
	a.Archive(simpleObject(t, 1))
	a.Archive(simpleObject(t, 2), SharedPart{Part: "fig", From: 1, FromPart: "fig"})
	inBlob, _, err := a.MailOut(2, true)
	if err != nil {
		t.Fatal(err)
	}
	outBlob, _, err := a.MailOut(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(inBlob) >= len(outBlob) {
		t.Fatalf("inside blob (%d) not smaller than outside blob (%d)", len(inBlob), len(outBlob))
	}
	// Inside blob needs the archiver to materialize.
	if _, err := MaterializeMailed(inBlob, nil); err == nil {
		t.Fatal("inside blob materialized without archiver")
	}
	o, err := MaterializeMailed(inBlob, a)
	if err != nil {
		t.Fatal(err)
	}
	if o.Images[0].Rasterize().PopCount() == 0 {
		t.Fatal("inside-mailed image missing")
	}
}

func TestImportMailedRejectsGarbage(t *testing.T) {
	if _, _, err := ImportMailed([]byte{1, 2}); err == nil {
		t.Fatal("short blob accepted")
	}
	if _, _, err := ImportMailed(make([]byte, 16)); err == nil {
		t.Fatal("zero blob accepted")
	}
}

func TestVersionChain(t *testing.T) {
	a := newArch(t, 4096)
	a.Archive(simpleObject(t, 10))
	if _, _, err := a.ArchiveVersion(simpleObject(t, 11), 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ArchiveVersion(simpleObject(t, 12), 11); err != nil {
		t.Fatal(err)
	}
	chain := a.VersionChain(12)
	if len(chain) != 3 || chain[0] != 12 || chain[2] != 10 {
		t.Fatalf("chain = %v", chain)
	}
	if _, _, err := a.ArchiveVersion(simpleObject(t, 13), 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("version of missing prev: %v", err)
	}
	if got := a.VersionChain(10); len(got) != 1 {
		t.Fatalf("original chain = %v", got)
	}
}

func TestArchiverFull(t *testing.T) {
	a := newArch(t, 2) // 4 KiB: too small for a 300x300 bitmap (11+ KiB)
	big, err := object.NewBuilder(1, "big", object.Visual).
		Text(markup).
		Image(bigImageSized("huge", 300, 300)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Archive(big); !errors.Is(err, disk.ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func bigImageSized(name string, w, h int) *img.Image {
	im := img.New(name, w, h)
	b := img.NewBitmap(w, h)
	b.Fill(img.Rect{X: 0, Y: 0, W: w, H: h}, true)
	im.Base = b
	return im
}

func TestRecoverFromMedium(t *testing.T) {
	a := newArch(t, 2048)
	a.Archive(simpleObject(t, 1))
	a.Archive(simpleObject(t, 2))
	a.Archive(simpleObject(t, 3), SharedPart{Part: "fig", From: 1, FromPart: "fig"})

	// Persist and reload the medium, then recover the directory by scan.
	path := t.TempDir() + "/archive.mdsk"
	if err := a.Device().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dev, err := disk.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	ids := b.IDs()
	if len(ids) != 3 {
		t.Fatalf("recovered %d objects", len(ids))
	}
	for _, id := range ids {
		orig, _ := a.ExtentOf(id)
		rec, _ := b.ExtentOf(id)
		if orig != rec {
			t.Fatalf("object %d extent %+v, want %+v", id, rec, orig)
		}
		o, _, err := b.Load(id)
		if err != nil {
			t.Fatalf("load %d: %v", id, err)
		}
		if len(o.Stream()) == 0 {
			t.Fatalf("object %d empty after recovery", id)
		}
	}
	// Shared pointers still resolve after recovery.
	o3, _, err := b.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if o3.Images[0].Rasterize().PopCount() == 0 {
		t.Fatal("shared image lost through recovery")
	}
	// Recovery of an empty medium yields an empty archiver.
	empty, _ := disk.NewOptical("e", disk.OpticalGeometry(16))
	e, _, err := Recover(empty)
	if err != nil || len(e.IDs()) != 0 {
		t.Fatalf("empty recover = %v, %v", e.IDs(), err)
	}
}
