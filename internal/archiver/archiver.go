// Package archiver implements the MINOS object archiver on the optical
// disk (§4, §5). Archived objects are "composed of the object descriptor
// concatenated with the composition file"; when archived, "the offsets of
// the descriptor have to be incremented by the offset where the composition
// file is placed within the archiver". Descriptors "may also have pointers
// to other locations within the object archiver so that data duplication is
// avoided" — supported here via shared parts. Mail-out resolves those
// pointers when an object leaves the organization.
package archiver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"minos/internal/descriptor"
	"minos/internal/disk"
	"minos/internal/object"
)

// ErrNotFound reports a missing object id.
var ErrNotFound = errors.New("archiver: object not found")

const headerLen = 8 // big-endian descriptor length prefix

// Extent locates one archived object on the device, in bytes.
type Extent struct {
	Start  uint64
	Length uint64
}

// Archiver is the optical-disk object archive. It is safe for concurrent
// use: reads (ExtentOf, ReadPiece, Load, ...) may run in parallel with each
// other and with at most one in-flight Archive.
type Archiver struct {
	dev *disk.Optical

	// writeMu serializes the whole archiving path: the extent a new object
	// lands in is computed from the device high-water mark, which must not
	// move between that computation and the Append.
	writeMu sync.Mutex

	// mu guards the directory maps below; the wire handlers read them
	// concurrently while Publish may be adding entries.
	mu  sync.RWMutex
	dir map[object.ID]Extent
	// prev records version lineage: prev[v2] = v1 means v2 supersedes v1.
	prev map[object.ID]object.ID
}

// New builds an archiver over an optical device.
func New(dev *disk.Optical) *Archiver {
	return &Archiver{dev: dev, dir: map[object.ID]Extent{}, prev: map[object.ID]object.ID{}}
}

// Device exposes the backing optical device (the server's cache and
// scheduler operate at the device level).
func (a *Archiver) Device() *disk.Optical { return a.dev }

// SharedPart requests that the named part of the object being archived is
// not stored again; instead the descriptor points into the already-archived
// object From, at its part named FromPart (same kind required).
type SharedPart struct {
	Part     string
	From     object.ID
	FromPart string
}

// Archive stores the object and returns its extent and the cumulative
// device service time. The object transitions to the archived state.
// shared parts become archiver pointers (§4).
func (a *Archiver) Archive(o *object.Object, shared ...SharedPart) (Extent, time.Duration, error) {
	a.writeMu.Lock()
	defer a.writeMu.Unlock()
	if a.Has(o.ID) {
		return Extent{}, 0, fmt.Errorf("archiver: object %d already archived (WORM archive is immutable)", o.ID)
	}
	o.Archive()
	d, comp, err := descriptor.Build(o)
	if err != nil {
		return Extent{}, 0, err
	}

	var total time.Duration
	// Resolve shared parts to archiver-absolute pointers and drop their
	// bytes from the composition.
	if len(shared) > 0 {
		comp, err = a.applySharing(d, comp, shared, &total)
		if err != nil {
			return Extent{}, 0, err
		}
	}

	extentStart := uint64(a.dev.Used()) * uint64(a.dev.BlockSize())

	// Fix-point the descriptor length: composition offsets become
	// archiver-absolute (extentStart + header + descLen + relative), and
	// the varint encoding of larger offsets can itself grow the
	// descriptor.
	orig := make([]uint64, len(d.Parts))
	for i, p := range d.Parts {
		orig[i] = p.Offset
	}
	encodeAt := func(descLen uint64) []byte {
		base := extentStart + headerLen + descLen
		for i := range d.Parts {
			if d.Parts[i].Loc == descriptor.LocComposition {
				d.Parts[i].Offset = orig[i] + base
			}
		}
		return d.Encode()
	}
	descBytes := encodeAt(0)
	for iter := 0; iter < 8; iter++ {
		next := encodeAt(uint64(len(descBytes)))
		if len(next) == len(descBytes) {
			descBytes = next
			break
		}
		descBytes = next
	}

	blob := make([]byte, headerLen, headerLen+len(descBytes)+len(comp))
	binary.BigEndian.PutUint64(blob, uint64(len(descBytes)))
	blob = append(blob, descBytes...)
	blob = append(blob, comp...)

	_, _, t, err := a.dev.Append(blob)
	total += t
	if err != nil {
		return Extent{}, total, err
	}
	ext := Extent{Start: extentStart, Length: uint64(len(blob))}
	a.mu.Lock()
	a.dir[o.ID] = ext
	a.mu.Unlock()
	return ext, total, nil
}

// applySharing rewrites shared part refs to archiver pointers and compacts
// the composition.
func (a *Archiver) applySharing(d *descriptor.Descriptor, comp []byte, shared []SharedPart, total *time.Duration) ([]byte, error) {
	shareFor := map[string]SharedPart{}
	for _, s := range shared {
		shareFor[s.Part] = s
	}
	// Look up every source part first.
	type src struct {
		ref descriptor.PartRef
		obj object.ID
	}
	resolved := map[string]src{}
	for _, s := range shared {
		sd, t, err := a.ReadDescriptor(s.From)
		*total += t
		if err != nil {
			return nil, fmt.Errorf("archiver: shared part %q: %w", s.Part, err)
		}
		found := false
		for _, p := range sd.Parts {
			if p.Name == s.FromPart {
				resolved[s.Part] = src{ref: p, obj: s.From}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("archiver: object %d has no part %q", s.From, s.FromPart)
		}
	}
	// Rebuild the composition without the shared parts' bytes.
	idx := make([]int, len(d.Parts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d.Parts[idx[x]].Offset < d.Parts[idx[y]].Offset })
	var out []byte
	for _, i := range idx {
		p := &d.Parts[i]
		if s, ok := resolved[p.Name]; ok {
			srcRef := s.ref
			if srcRef.Kind != p.Kind {
				return nil, fmt.Errorf("archiver: shared part %q kind mismatch: %v vs %v", p.Name, srcRef.Kind, p.Kind)
			}
			if srcRef.Loc != descriptor.LocComposition {
				return nil, fmt.Errorf("archiver: shared part %q points at another pointer", p.Name)
			}
			// Source descriptors store archiver-absolute offsets.
			p.Loc = descriptor.LocArchiver
			p.Offset = srcRef.Offset
			p.Length = srcRef.Length
			p.ArchObject = s.obj
			continue
		}
		data := comp[p.Offset : p.Offset+p.Length]
		p.Offset = uint64(len(out))
		out = append(out, data...)
	}
	return out, nil
}

// Has reports whether the object is archived.
func (a *Archiver) Has(id object.ID) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.dir[id]
	return ok
}

// ExtentOf returns the extent of an archived object.
func (a *Archiver) ExtentOf(id object.ID) (Extent, error) {
	a.mu.RLock()
	e, ok := a.dir[id]
	a.mu.RUnlock()
	if !ok {
		return Extent{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return e, nil
}

// IDs returns all archived object ids in ascending order.
func (a *Archiver) IDs() []object.ID {
	a.mu.RLock()
	out := make([]object.ID, 0, len(a.dir))
	for id := range a.dir {
		out = append(out, id)
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadPiece reads an archiver-absolute byte extent.
func (a *Archiver) ReadPiece(off, length uint64) ([]byte, time.Duration, error) {
	return disk.ReadExtent(a.dev, off, length)
}

// ReadDescriptor reads and parses the descriptor of an archived object.
func (a *Archiver) ReadDescriptor(id object.ID) (*descriptor.Descriptor, time.Duration, error) {
	ext, err := a.ExtentOf(id)
	if err != nil {
		return nil, 0, err
	}
	hdr, t1, err := a.ReadPiece(ext.Start, headerLen)
	if err != nil {
		return nil, t1, err
	}
	descLen := binary.BigEndian.Uint64(hdr)
	if headerLen+descLen > ext.Length {
		return nil, t1, fmt.Errorf("archiver: object %d descriptor length %d exceeds extent", id, descLen)
	}
	raw, t2, err := a.ReadPiece(ext.Start+headerLen, descLen)
	if err != nil {
		return nil, t1 + t2, err
	}
	d, err := descriptor.Parse(raw)
	return d, t1 + t2, err
}

// Fetch returns a FetchFunc that resolves both composition-resident parts
// (archiver-absolute after archiving) and archiver pointers.
func (a *Archiver) Fetch() descriptor.FetchFunc {
	return func(ref descriptor.PartRef) ([]byte, error) {
		data, _, err := a.ReadPiece(ref.Offset, ref.Length)
		return data, err
	}
}

// FetchTimed is Fetch but also accumulates device service time into dur.
func (a *Archiver) FetchTimed(dur *time.Duration) descriptor.FetchFunc {
	return func(ref descriptor.PartRef) ([]byte, error) {
		data, t, err := a.ReadPiece(ref.Offset, ref.Length)
		*dur += t
		return data, err
	}
}

// Load fully materializes an archived object.
func (a *Archiver) Load(id object.ID) (*object.Object, time.Duration, error) {
	d, t, err := a.ReadDescriptor(id)
	if err != nil {
		return nil, t, err
	}
	o, err := d.Materialize(a.FetchTimed(&t))
	return o, t, err
}

// ArchiveVersion archives o as a new version superseding prev.
func (a *Archiver) ArchiveVersion(o *object.Object, prevID object.ID, shared ...SharedPart) (Extent, time.Duration, error) {
	if !a.Has(prevID) {
		return Extent{}, 0, fmt.Errorf("%w: previous version %d", ErrNotFound, prevID)
	}
	ext, t, err := a.Archive(o, shared...)
	if err == nil {
		a.mu.Lock()
		a.prev[o.ID] = prevID
		a.mu.Unlock()
	}
	return ext, t, err
}

// VersionChain returns the version lineage of id, newest first, ending at
// the original.
func (a *Archiver) VersionChain(id object.ID) []object.ID {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var chain []object.ID
	seen := map[object.ID]bool{}
	for {
		if seen[id] {
			break // defensive: cycles cannot normally occur
		}
		seen[id] = true
		chain = append(chain, id)
		p, ok := a.prev[id]
		if !ok {
			break
		}
		id = p
	}
	return chain
}

// MailOut produces the self-contained mailed form of an archived object:
// [8-byte descriptor length][descriptor][composition] with all offsets
// composition-relative. "When the multimedia object is mailed outside the
// organization the object descriptor is searched for pointers to
// information which exists in the archiver. If such pointers exist, the
// relevant data is extracted from the archiver and appended to the
// composition" (§4). With inside=true (mail within the organization),
// archiver pointers are kept as-is.
func (a *Archiver) MailOut(id object.ID, inside bool) ([]byte, time.Duration, error) {
	ext, err := a.ExtentOf(id)
	if err != nil {
		return nil, 0, err
	}
	d, total, err := a.ReadDescriptor(id)
	if err != nil {
		return nil, total, err
	}
	var comp []byte
	// Copy own composition parts, making offsets composition-relative.
	idx := make([]int, 0, len(d.Parts))
	for i := range d.Parts {
		if d.Parts[i].Loc == descriptor.LocComposition {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(x, y int) bool { return d.Parts[idx[x]].Offset < d.Parts[idx[y]].Offset })
	for _, i := range idx {
		p := &d.Parts[i]
		data, t, err := a.ReadPiece(p.Offset, p.Length)
		total += t
		if err != nil {
			return nil, total, err
		}
		p.Offset = uint64(len(comp))
		comp = append(comp, data...)
	}
	if !inside {
		for i := range d.Parts {
			p := &d.Parts[i]
			if p.Loc != descriptor.LocArchiver {
				continue
			}
			data, t, err := a.ReadPiece(p.Offset, p.Length)
			total += t
			if err != nil {
				return nil, total, err
			}
			p.Loc = descriptor.LocComposition
			p.Offset = uint64(len(comp))
			p.ArchObject = 0
			comp = append(comp, data...)
		}
	}
	_ = ext
	descBytes := d.Encode()
	blob := make([]byte, headerLen, headerLen+len(descBytes)+len(comp))
	binary.BigEndian.PutUint64(blob, uint64(len(descBytes)))
	blob = append(blob, descBytes...)
	blob = append(blob, comp...)
	return blob, total, nil
}

// ImportMailed parses a mailed blob into a descriptor plus composition.
// Blobs mailed inside the organization may still carry archiver pointers;
// Materialize then needs an archiver-aware FetchFunc.
func ImportMailed(blob []byte) (*descriptor.Descriptor, []byte, error) {
	if len(blob) < headerLen {
		return nil, nil, errors.New("archiver: mailed blob too short")
	}
	descLen := binary.BigEndian.Uint64(blob)
	if headerLen+descLen > uint64(len(blob)) {
		return nil, nil, errors.New("archiver: mailed blob truncated")
	}
	d, err := descriptor.Parse(blob[headerLen : headerLen+descLen])
	if err != nil {
		return nil, nil, err
	}
	return d, blob[headerLen+descLen:], nil
}

// MaterializeMailed rebuilds an object from a mailed blob. For inside-mail
// blobs, arch resolves archiver pointers; pass nil for outside-mail blobs
// (which are self-contained).
func MaterializeMailed(blob []byte, arch *Archiver) (*object.Object, error) {
	d, comp, err := ImportMailed(blob)
	if err != nil {
		return nil, err
	}
	local := descriptor.FetchFromComposition(comp)
	fetch := func(ref descriptor.PartRef) ([]byte, error) {
		if ref.Loc == descriptor.LocArchiver {
			if arch == nil {
				return nil, fmt.Errorf("archiver: blob has archiver pointer for part %q but no archiver available", ref.Name)
			}
			data, _, err := arch.ReadPiece(ref.Offset, ref.Length)
			return data, err
		}
		return local(ref)
	}
	return d.Materialize(fetch)
}
