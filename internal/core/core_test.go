package core

import (
	"testing"
	"time"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
)

const caseMarkup = `.title Case 1042
.chapter Findings
.section Lungs
The upper lobe shows a small shadow near the apex region. It appears benign and has been stable over time according to all prior studies available.

The lower lobe is completely clear on every projection that was taken during this visit and the previous one.
.section Heart
Heart size is within normal limits. Rhythm is regular and no murmur was detected at any point during the examination.
.chapter Plan
Repeat the examination in six months. Call immediately if any symptoms appear before the scheduled date arrives.
`

const testRate = 2000

func testManager(t testing.TB) *Manager {
	t.Helper()
	return New(Config{
		Screen: screen.New(240, 140),
		Clock:  vclock.New(),
	})
}

func visualObject(t testing.TB) *object.Object {
	t.Helper()
	o, err := object.NewBuilder(1, "Case 1042", object.Visual).Text(caseMarkup).Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func audioObject(t testing.TB, editedDownTo text.Unit) *object.Object {
	t.Helper()
	o, err := object.NewBuilder(2, "Case 1042 spoken", object.Audio).
		VoiceFromText(caseMarkup, voice.DefaultSpeaker(), testRate, editedDownTo, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func shortVoicePart(t testing.TB, words string) *voice.Part {
	t.Helper()
	seg, err := text.Parse(words + "\n")
	if err != nil {
		t.Fatal(err)
	}
	return voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), testRate).Part
}

func TestOpenVisualObject(t *testing.T) {
	m := testManager(t)
	if err := m.Open(visualObject(t)); err != nil {
		t.Fatal(err)
	}
	if m.Mode() != object.Visual || m.PageNo() != 0 {
		t.Fatalf("mode=%v page=%d", m.Mode(), m.PageNo())
	}
	if m.PageCount() < 2 {
		t.Fatalf("pages = %d, want several on a small screen", m.PageCount())
	}
	if m.Screen().Content().PopCount() == 0 {
		t.Fatal("screen blank after open")
	}
	if len(m.EventsOf(EvPageShown)) == 0 {
		t.Fatal("no page-shown event")
	}
}

func TestOpenErrors(t *testing.T) {
	m := testManager(t)
	bad := &object.Object{ID: 9, Mode: object.Visual} // no doc
	if err := m.Open(bad); err == nil {
		t.Fatal("visual object without doc accepted")
	}
	bad2 := &object.Object{ID: 10, Mode: object.Audio} // no voice
	if err := m.Open(bad2); err == nil {
		t.Fatal("audio object without voice accepted")
	}
	if err := m.NextPage(); err == nil {
		t.Fatal("NextPage with no object accepted")
	}
}

func TestVisualPageBrowsing(t *testing.T) {
	m := testManager(t)
	m.Open(visualObject(t))
	last := m.PageCount() - 1

	if err := m.NextPage(); err != nil {
		t.Fatal(err)
	}
	if m.PageNo() != 1 {
		t.Fatalf("page = %d after next", m.PageNo())
	}
	if err := m.PrevPage(); err != nil {
		t.Fatal(err)
	}
	if m.PageNo() != 0 {
		t.Fatalf("page = %d after prev", m.PageNo())
	}
	// Prev at the first page clamps.
	m.PrevPage()
	if m.PageNo() != 0 {
		t.Fatal("prev page did not clamp at 0")
	}
	// Advance beyond the end clamps to the last page.
	if err := m.Advance(100); err != nil {
		t.Fatal(err)
	}
	if m.PageNo() != last {
		t.Fatalf("page = %d after big advance, want %d", m.PageNo(), last)
	}
	m.NextPage()
	if m.PageNo() != last {
		t.Fatal("next page did not clamp at end")
	}
	if err := m.GotoPage(1); err != nil {
		t.Fatal(err)
	}
	if m.PageNo() != 1 {
		t.Fatalf("GotoPage landed on %d", m.PageNo())
	}
	if err := m.Advance(-1); err != nil {
		t.Fatal(err)
	}
	if m.PageNo() != 0 {
		t.Fatalf("Advance(-1) landed on %d", m.PageNo())
	}
}

func TestVisualPagesDiffer(t *testing.T) {
	m := testManager(t)
	m.Open(visualObject(t))
	snap0 := m.Screen().Snapshot()
	m.NextPage()
	if m.Screen().Snapshot() == snap0 {
		t.Fatal("page 1 renders identically to page 0")
	}
	m.PrevPage()
	if m.Screen().Snapshot() != snap0 {
		t.Fatal("returning to page 0 does not restore the screen")
	}
}

func TestVisualLogicalBrowsing(t *testing.T) {
	m := testManager(t)
	o := visualObject(t)
	m.Open(o)
	stream := o.Stream()

	if err := m.NextUnit(text.UnitSection); err != nil {
		t.Fatal(err)
	}
	pos1 := m.Position()
	if pos1 == 0 || !stream[pos1].Starts(text.UnitSection) {
		t.Fatalf("position %d is not a section start", pos1)
	}
	if err := m.NextUnit(text.UnitChapter); err != nil {
		t.Fatal(err)
	}
	pos2 := m.Position()
	if pos2 <= pos1 || !stream[pos2].Starts(text.UnitChapter) {
		t.Fatalf("chapter browse landed at %d", pos2)
	}
	if err := m.PrevUnit(text.UnitChapter); err != nil {
		t.Fatal(err)
	}
	if m.Position() >= pos2 {
		t.Fatal("prev chapter did not move back")
	}
	// Exhaust forward chapters; eventually errors.
	for i := 0; i < 20; i++ {
		if err := m.NextUnit(text.UnitChapter); err != nil {
			return
		}
	}
	t.Fatal("NextUnit(chapter) never exhausted")
}

func TestVisualPatternBrowsing(t *testing.T) {
	m := testManager(t)
	m.Open(visualObject(t))

	if err := m.FindPattern("lower lobe"); err != nil {
		t.Fatal(err)
	}
	pg := m.PageNo()
	found := m.EventsOf(EvPatternFound)
	if len(found) != 1 || found[0].Name != "lower lobe" {
		t.Fatalf("pattern events = %+v", found)
	}
	// The page must actually contain the phrase position.
	o := m.Object()
	stream := o.Stream()
	hit := m.Position()
	if text.NormalizeToken(stream[hit].Word.Text) != "lower" {
		t.Fatalf("hit word = %q", stream[hit].Word.Text)
	}
	_ = pg
	// Missing patterns error and trace.
	if err := m.FindPattern("unicorn"); err == nil {
		t.Fatal("phantom pattern found")
	}
	if len(m.EventsOf(EvPatternMiss)) != 1 {
		t.Fatal("no pattern-miss event")
	}
}

func TestMenuReflectsState(t *testing.T) {
	m := testManager(t)
	m.Open(visualObject(t))
	menu := m.Menu()
	if !contains(menu, "NEXT PAGE") || !contains(menu, "NEXT CHAPTER") || !contains(menu, "FIND PATTERN") {
		t.Fatalf("visual menu = %v", menu)
	}
	if contains(menu, "INTERRUPT") {
		t.Fatal("voice ops offered on a visual object")
	}

	m2 := testManager(t)
	m2.Open(audioObject(t, text.UnitChapter))
	menu2 := m2.Menu()
	if !contains(menu2, "RESUME") || !contains(menu2, "BACK N LONG PAUSES") {
		t.Fatalf("audio menu = %v", menu2)
	}
	if !contains(menu2, "NEXT CHAPTER") {
		t.Fatalf("audio menu lacks chapter browsing despite markers: %v", menu2)
	}
	if contains(menu2, "NEXT SECTION") {
		t.Fatal("audio menu offers section browsing without section markers")
	}
	if contains(menu2, "FIND PATTERN") {
		t.Fatal("audio menu offers pattern browsing without recognized utterances")
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func TestAudioPageBrowsing(t *testing.T) {
	m := New(Config{Screen: screen.New(360, 240), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
	m.Open(audioObject(t, text.UnitChapter))
	if m.Mode() != object.Audio {
		t.Fatal("mode")
	}
	if m.PageCount() < 3 {
		t.Fatalf("audio pages = %d", m.PageCount())
	}
	if err := m.NextPage(); err != nil {
		t.Fatal(err)
	}
	if m.PageNo() != 1 {
		t.Fatalf("audio page = %d", m.PageNo())
	}
	m.Advance(2)
	if m.PageNo() != 3 {
		t.Fatalf("audio page after advance = %d", m.PageNo())
	}
	m.PrevPage()
	if m.PageNo() != 2 {
		t.Fatalf("audio page after prev = %d", m.PageNo())
	}
	m.GotoPage(0)
	if m.PageNo() != 0 || m.Position() != 0 {
		t.Fatal("goto page 0 failed")
	}
	// Clamping.
	m.GotoPage(999)
	if m.PageNo() != m.PageCount()-1 {
		t.Fatal("audio page clamp failed")
	}
}

func TestAudioPlayInterruptResume(t *testing.T) {
	clock := vclock.New()
	m := New(Config{Screen: screen.New(360, 240), Clock: clock, AudioPageLen: 5 * time.Second})
	m.Open(audioObject(t, text.UnitChapter))
	if err := m.Play(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Second)
	if err := m.Interrupt(); err != nil {
		t.Fatal(err)
	}
	pos := m.Position()
	if pos == 0 {
		t.Fatal("no progress before interrupt")
	}
	// Virtual time passes; position holds.
	clock.Advance(10 * time.Second)
	if m.Position() != pos {
		t.Fatal("position drifted while interrupted")
	}
	if err := m.Resume(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	if m.Position() <= pos {
		t.Fatal("no progress after resume")
	}
	// Resume from page start rewinds to the current page boundary.
	m.Interrupt()
	pages := m.AudioPages()
	cur := m.PageNo()
	if err := m.ResumeFromPageStart(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Millisecond)
	if got := m.Position(); got < pages[cur].Start || got > pages[cur].Start+testRate {
		t.Fatalf("resume-from-page-start at %d, page starts at %d", got, pages[cur].Start)
	}
}

func TestAudioContinuousAcrossPages(t *testing.T) {
	clock := vclock.New()
	m := New(Config{Screen: screen.New(360, 240), Clock: clock, AudioPageLen: 3 * time.Second})
	m.Open(audioObject(t, text.UnitChapter))
	m.Play()
	// Speech is not interrupted at the end of each voice page (§2).
	clock.Advance(7 * time.Second)
	if !m.Player().Playing() {
		t.Fatal("playback stopped at a page boundary")
	}
	if m.PageNo() < 2 {
		t.Fatalf("page = %d after 7s of 3s pages", m.PageNo())
	}
}

func TestAudioRewindPauses(t *testing.T) {
	clock := vclock.New()
	m := New(Config{Screen: screen.New(360, 240), Clock: clock, AudioPageLen: 5 * time.Second})
	m.Open(audioObject(t, text.UnitChapter))
	m.Play()
	clock.Advance(20 * time.Second)
	m.Interrupt()
	before := m.Position()
	if err := m.RewindPauses(2, false); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond)
	after := m.Player().PlayLog[len(m.Player().PlayLog)-1].From
	if after >= before {
		t.Fatalf("rewind did not move back: %d -> %d", before, after)
	}
	ev := m.EventsOf(EvRewind)
	if len(ev) != 1 || ev[0].Name != "short" {
		t.Fatalf("rewind events = %+v", ev)
	}
	// Long-pause rewind goes further back than short-pause rewind from
	// the same position.
	m.Interrupt()
	m2 := New(Config{Screen: screen.New(360, 240), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
	m2.Open(audioObject(t, text.UnitChapter))
	m2.Play()
	m2.Clock().Advance(20 * time.Second)
	m2.Interrupt()
	m2.RewindPauses(1, true)
	m2.Clock().Advance(time.Millisecond)
	longFrom := m2.Player().PlayLog[len(m2.Player().PlayLog)-1].From

	m3 := New(Config{Screen: screen.New(360, 240), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
	m3.Open(audioObject(t, text.UnitChapter))
	m3.Play()
	m3.Clock().Advance(20 * time.Second)
	m3.Interrupt()
	m3.RewindPauses(1, false)
	m3.Clock().Advance(time.Millisecond)
	shortFrom := m3.Player().PlayLog[len(m3.Player().PlayLog)-1].From
	if longFrom >= shortFrom {
		t.Fatalf("long rewind (%d) not before short rewind (%d)", longFrom, shortFrom)
	}
}

func TestAudioLogicalBrowsing(t *testing.T) {
	m := New(Config{Screen: screen.New(360, 240), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
	o := audioObject(t, text.UnitSection)
	m.Open(o)
	vp := o.PrimaryVoice()

	if err := m.NextUnit(text.UnitSection); err != nil {
		t.Fatal(err)
	}
	pos1 := m.Position()
	// Position must be a marker offset of at least section level.
	okMarker := false
	for _, mk := range vp.Markers {
		if mk.Offset == pos1 && mk.Unit >= text.UnitSection {
			okMarker = true
		}
	}
	if !okMarker {
		t.Fatalf("position %d is not a section marker", pos1)
	}
	if err := m.NextUnit(text.UnitChapter); err != nil {
		t.Fatal(err)
	}
	pos2 := m.Position()
	if pos2 <= pos1 {
		t.Fatal("chapter browse did not advance")
	}
	if err := m.PrevUnit(text.UnitChapter); err != nil {
		t.Fatal(err)
	}
	if m.Position() >= pos2 {
		t.Fatal("prev chapter did not move back")
	}
	// Units not identified are not offered in the menu (calling NextUnit
	// directly still works through boundary containment: a section start
	// is also a word start).
	if contains(m.Menu(), "NEXT WORD") {
		t.Fatal("menu offers word browsing without word markers")
	}
}

func TestAudioPatternBrowsing(t *testing.T) {
	m := New(Config{Screen: screen.New(360, 240), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
	o := audioObject(t, text.UnitChapter)
	// Simulate insertion-time recognition of a small vocabulary.
	seg, _ := text.Parse(caseMarkup)
	syn := voice.Synthesize(text.Flatten(seg), voice.DefaultSpeaker(), testRate)
	r := voice.NewRecognizer([]string{"shadow", "heart", "months"})
	r.HitRate = 1.0
	o.Voice[0].Utterances = r.Recognize(syn.Marks)
	m.Open(o)

	if err := m.FindPattern("heart"); err != nil {
		t.Fatal(err)
	}
	pos := m.Position()
	if pos == 0 {
		t.Fatal("pattern did not move position")
	}
	// Forward-only: next find of the same single-occurrence token fails.
	if err := m.FindPattern("heart"); err == nil {
		t.Fatal("second heart found")
	}
	// Shadow occurs once; find then miss.
	m.GotoPage(0)
	if err := m.FindPattern("shadow"); err != nil {
		t.Fatal(err)
	}
	// Out-of-vocabulary words are not findable even though spoken:
	// recognition happened at insertion time with a limited vocabulary.
	m.GotoPage(0)
	if err := m.FindPattern("regular"); err == nil {
		t.Fatal("out-of-vocabulary pattern found")
	}
}

func TestSymmetricBrowsingReachesSameUnit(t *testing.T) {
	// The symmetry thesis: the same command sequence on the text object
	// and its voice twin lands on the same logical unit.
	vis := testManager(t)
	vis.Open(visualObject(t))
	aud := New(Config{Screen: screen.New(360, 240), Clock: vclock.New(), AudioPageLen: 5 * time.Second})
	audObj := audioObject(t, text.UnitSentence)
	aud.Open(audObj)

	seg, _ := text.Parse(caseMarkup)
	stream := text.Flatten(seg)
	syn := voice.Synthesize(stream, voice.DefaultSpeaker(), testRate)

	cmds := []func(m *Manager) error{
		func(m *Manager) error { return m.NextUnit(text.UnitSection) },
		func(m *Manager) error { return m.NextUnit(text.UnitChapter) },
		func(m *Manager) error { return m.NextUnit(text.UnitSentence) },
		func(m *Manager) error { return m.PrevUnit(text.UnitSection) },
		func(m *Manager) error { return m.NextUnit(text.UnitSentence) },
	}
	for i, cmd := range cmds {
		if err := cmd(vis); err != nil {
			t.Fatalf("cmd %d on visual: %v", i, err)
		}
		if err := cmd(aud); err != nil {
			t.Fatalf("cmd %d on audio: %v", i, err)
		}
		// Map the audio sample position back to the word it belongs to.
		audWord := -1
		for w, mark := range syn.Marks {
			if mark.Offset <= aud.Position() {
				audWord = w
			}
		}
		if audWord != vis.Position() {
			t.Fatalf("after cmd %d: visual at word %d, audio at word %d", i, vis.Position(), audWord)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EvPageShown.String() != "page-shown" || EvRewind.String() != "rewind" {
		t.Fatal("EventKind names")
	}
	if EventKind(200).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestClearEvents(t *testing.T) {
	m := testManager(t)
	m.Open(visualObject(t))
	if len(m.Events()) == 0 {
		t.Fatal("no events")
	}
	m.ClearEvents()
	if len(m.Events()) != 0 {
		t.Fatal("events survive clear")
	}
}

var _ = img.Point{} // keep import for fixtures below in other files
