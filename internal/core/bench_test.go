package core

import (
	"testing"

	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/vclock"
)

func buildBenchObject() (*object.Object, error) {
	return object.NewBuilder(1, "bench", object.Visual).Text(caseMarkup).Build()
}

func BenchmarkOpenAndPageThrough(b *testing.B) {
	o, err := buildBenchObject()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(Config{Screen: screen.New(240, 140), Clock: vclock.New()})
		if err := m.Open(o); err != nil {
			b.Fatal(err)
		}
		for m.PageNo() < m.PageCount()-1 {
			m.NextPage()
		}
	}
}

func BenchmarkFindPattern(b *testing.B) {
	o, err := buildBenchObject()
	if err != nil {
		b.Fatal(err)
	}
	m := New(Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	if err := m.Open(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GotoPage(0)
		m.FindPattern("symptoms")
	}
}
