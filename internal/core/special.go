package core

import (
	"fmt"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/voice"
)

// --- transparency sets (§2, Figures 5-6) ---

// ShowTransparencies activates the transparency set anchored at the current
// position, displaying its first transparency.
func (m *Manager) ShowTransparencies() error {
	s := m.cur()
	if s == nil {
		return errNoObject
	}
	ts := m.transpSetAt(s)
	if ts == nil {
		return fmt.Errorf("core: no transparency set at the current position")
	}
	base := m.transparencyBase(s)
	s.transp = &transpState{set: ts, base: base, index: 0}
	m.showCurrent()
	return nil
}

// transparencyBase is "the last page before the transparency set": the
// current visual page, or for audio-mode objects the pinned strip.
func (m *Manager) transparencyBase(s *session) *img.Bitmap {
	if s.obj.Mode == object.Audio {
		if strip := m.cfg.Screen.Strip(); strip != nil {
			return strip.Clone()
		}
		return img.NewBitmap(m.cfg.Screen.ContentWidth(), m.cfg.Screen.ContentHeight())
	}
	if s.pageNo >= 0 && s.pageNo < len(s.pages) {
		return s.pages[s.pageNo].Bitmap.Clone()
	}
	return img.NewBitmap(m.cfg.Screen.ContentWidth(), m.cfg.Screen.ContentHeight())
}

// NextTransparency shows the next transparency of the active set.
func (m *Manager) NextTransparency() error {
	s := m.cur()
	if s == nil || s.transp == nil {
		return fmt.Errorf("core: no active transparency set")
	}
	if s.transp.index+1 >= len(s.transp.set.Transparencies) {
		return fmt.Errorf("core: no next transparency")
	}
	s.transp.index++
	s.transp.chosen = nil
	m.showCurrent()
	return nil
}

// PrevTransparency shows the previous transparency.
func (m *Manager) PrevTransparency() error {
	s := m.cur()
	if s == nil || s.transp == nil {
		return fmt.Errorf("core: no active transparency set")
	}
	if s.transp.index == 0 {
		return fmt.Errorf("core: no previous transparency")
	}
	s.transp.index--
	s.transp.chosen = nil
	m.showCurrent()
	return nil
}

// SelectTransparencies overrides the presentation order: the user chooses
// which transparencies of the set to see superimposed at the same time (§2).
func (m *Manager) SelectTransparencies(indices ...int) error {
	s := m.cur()
	if s == nil || s.transp == nil {
		return fmt.Errorf("core: no active transparency set")
	}
	for _, i := range indices {
		if i < 0 || i >= len(s.transp.set.Transparencies) {
			return fmt.Errorf("core: transparency %d out of range", i)
		}
	}
	s.transp.chosen = append([]int(nil), indices...)
	m.showCurrent()
	return nil
}

func (m *Manager) showTransparency() {
	s := m.cur()
	t := s.transp
	method := screen.Stacked
	if t.set.MethodSeparate {
		method = screen.Separate
	}
	composed := screen.ComposeTransparencies(t.base, t.set.Transparencies, method, t.index, t.chosen)
	if s.obj.Mode == object.Audio {
		m.cfg.Screen.PinStrip(composed)
	} else {
		m.cfg.Screen.ShowPage(composed)
	}
	detail := fmt.Sprintf("%d/%d", t.index+1, len(t.set.Transparencies))
	if t.chosen != nil {
		detail = fmt.Sprintf("selected %v", t.chosen)
	}
	m.trace(EvTransparencyShown, t.set.Name, detail, s.pageNo)
}

// endTransparencies deactivates the set and redraws the underlying page.
func (m *Manager) endTransparencies() {
	s := m.cur()
	if s == nil || s.transp == nil {
		return
	}
	if s.obj.Mode == object.Audio {
		// Restore the plain pinned strip.
		m.checkVisualMessages()
	}
	s.transp = nil
}

// endTransparenciesIfLeft ends the set when navigation leaves its anchor.
func (m *Manager) endTransparenciesIfLeft() {
	s := m.cur()
	if s == nil || s.transp == nil {
		return
	}
	if m.transpSetAt(s) != s.transp.set {
		m.endTransparencies()
	}
}

// ActiveTransparency reports the active set name and index, or "" / -1.
func (m *Manager) ActiveTransparency() (string, int) {
	s := m.cur()
	if s == nil || s.transp == nil {
		return "", -1
	}
	return s.transp.set.Name, s.transp.index
}

// --- relevant objects and relevances (§2, Figures 7-8) ---

// EnterRelevant browses into relevant object link i of the current object;
// the user explicitly selects the indicator (SelectIndicator calls this).
// The relevant object's own driving mode takes over.
func (m *Manager) EnterRelevant(i int) error {
	s := m.cur()
	if s == nil {
		return errNoObject
	}
	if i < 0 || i >= len(s.obj.Relevants) {
		return fmt.Errorf("core: no relevant link %d", i)
	}
	if m.cfg.Resolver == nil {
		return fmt.Errorf("core: no resolver for relevant objects")
	}
	link := &s.obj.Relevants[i]
	target, err := m.cfg.Resolver(link.Target)
	if err != nil {
		return fmt.Errorf("core: relevant object %d: %w", link.Target, err)
	}
	child, err := m.newSession(target)
	if err != nil {
		return err
	}
	child.viaLink = link
	child.relIdx = -1
	// Pause the parent's voice if playing.
	if s.obj.Mode == object.Audio && m.player.Playing() {
		s.pos = m.player.Interrupt()
	}
	m.msgPlayer.Interrupt()
	m.stack = append(m.stack, child)
	if target.Mode == object.Audio {
		m.player.Load(child.vpart)
	}
	m.cfg.Screen.PinStrip(nil)
	m.trace(EvEnterRelevant, fmt.Sprintf("%d", target.ID), target.Mode.String(), -1)
	m.showCurrent()
	return nil
}

// ReturnFromRelevant pops back to the parent object; "the mode of browsing
// of the parent object is reestablished" (§2).
func (m *Manager) ReturnFromRelevant() error {
	if len(m.stack) <= 1 {
		return fmt.Errorf("core: not inside a relevant object")
	}
	m.player.Interrupt()
	m.msgPlayer.Interrupt()
	m.stack = m.stack[:len(m.stack)-1]
	s := m.cur()
	if s.obj.Mode == object.Audio {
		m.player.Load(s.vpart)
	}
	// Re-pin the parent's strip if its split view is still active.
	if s.msg != nil {
		if vm := s.obj.VisualMsgByName(s.msg.name); vm != nil {
			m.cfg.Screen.PinStrip(vm.Strip)
		}
	} else {
		m.cfg.Screen.PinStrip(nil)
		s.pinned = ""
	}
	m.trace(EvReturnRelevant, fmt.Sprintf("%d", s.obj.ID), s.obj.Mode.String(), -1)
	m.showCurrent()
	return nil
}

// SelectIndicator simulates a mouse selection on the screen's indicators:
// relevant-object indicators enter, the return indicator returns.
func (m *Manager) SelectIndicator(x, y int) error {
	idx := m.cfg.Screen.SelectAt(x, y)
	if idx < 0 {
		return fmt.Errorf("core: no indicator at (%d, %d)", x, y)
	}
	ind := m.cfg.Screen.Indicators()[idx]
	switch ind.Kind {
	case screen.RelevantObject:
		var i int
		fmt.Sscanf(ind.Name, "rel%d", &i)
		return m.EnterRelevant(i)
	case screen.ReturnFromRelevant:
		return m.ReturnFromRelevant()
	}
	return fmt.Errorf("core: indicator %q is not selectable here", ind.Name)
}

// relevancesHere returns the relevances of the link that brought browsing
// into the current (relevant) object.
func (m *Manager) relevancesHere() []object.Relevance {
	s := m.cur()
	if s == nil || s.viaLink == nil {
		return nil
	}
	return s.viaLink.Relevances
}

// NextRelevance presents the next relevance of the entered relevant object:
// text relevances are shown with begin/end indicators, image relevances as
// closed polygons on top of the image, voice relevances played
// independently (§2).
func (m *Manager) NextRelevance() error {
	s := m.cur()
	rels := m.relevancesHere()
	if len(rels) == 0 {
		return fmt.Errorf("core: no relevances here")
	}
	s.relIdx = (s.relIdx + 1) % len(rels)
	rv := rels[s.relIdx]
	switch rv.Media {
	case object.MediaText:
		if err := m.visualGotoWord(rv.From); err != nil {
			return err
		}
		// Begin/end indicators drawn as a marker overlay.
		mark := img.NewBitmap(m.cfg.Screen.ContentWidth(), m.cfg.Screen.ContentHeight())
		img.DrawString(mark, 0, 0, ">")
		m.cfg.Screen.Superimpose(mark)
		m.trace(EvRelevanceShown, "text", fmt.Sprintf("words %d..%d", rv.From, rv.To), s.pageNo)
	case object.MediaImage:
		im := s.obj.ImageByName(rv.Image)
		if im == nil {
			return fmt.Errorf("core: relevance image %q not in object", rv.Image)
		}
		raster := im.Rasterize()
		if len(rv.Polygon) >= 3 {
			overlay := img.NewBitmap(im.W, im.H)
			poly := img.Graphic{Shape: img.ShapePolygon, Points: rv.Polygon}
			im2 := img.Image{W: im.W, H: im.H, Graphics: []img.Graphic{poly}}
			overlay.Or(im2.Rasterize(), 0, 0)
			raster.Or(overlay, 0, 0)
		}
		m.cfg.Screen.ShowPage(raster)
		m.trace(EvRelevanceShown, "image", rv.Image, -1)
	case object.MediaVoice:
		vp := s.vpart
		if vp == nil {
			// Visual-mode relevant objects may still carry voice parts.
			vp = s.obj.PrimaryVoice()
		}
		if vp == nil {
			return fmt.Errorf("core: voice relevance on an object with no voice part")
		}
		m.player.Load(vp)
		m.player.Play(rv.From, rv.To, nil)
		m.trace(EvRelevanceShown, "voice", fmt.Sprintf("samples %d..%d", rv.From, rv.To), voice.PageOf(s.apages, rv.From))
	}
	return nil
}
