package core

import (
	"fmt"
	"testing"
	"time"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/text"
	"minos/internal/vclock"
)

// --- transparencies on audio-mode objects (the Figures 5-6 audio variant:
// transparencies over the pinned x-ray during the related speech) ---

func TestAudioModeTransparencies(t *testing.T) {
	clock := vclock.New()
	m := New(Config{Screen: screen.New(300, 220), Clock: clock, AudioPageLen: 5 * time.Second})
	o := audioObject(t, text.UnitChapter)
	vp := o.PrimaryVoice()
	mid := len(vp.Samples) / 2

	// X-ray strip pinned for the whole first half; transparencies
	// anchored within it.
	xray := strip(160, 60)
	o.VisualMsgs = append(o.VisualMsgs, object.VisualMessage{
		Name: "xray", Strip: xray,
		Anchor: object.Anchor{Media: object.MediaVoice, From: 0, To: mid},
	})
	s1 := img.NewBitmap(160, 60)
	s1.Set(150, 5, true)
	s2 := img.NewBitmap(160, 60)
	s2.Set(150, 15, true)
	o.TranspSets = append(o.TranspSets, object.TransparencySet{
		Name:           "marks",
		Anchor:         object.Anchor{Media: object.MediaVoice, From: 0, To: mid},
		Transparencies: []*img.Bitmap{s1, s2},
	})

	m.Open(o)
	if m.Screen().Strip() == nil {
		t.Fatal("x-ray not pinned at position 0")
	}
	if err := m.ShowTransparencies(); err != nil {
		t.Fatal(err)
	}
	st := m.Screen().Strip()
	if st == nil || !st.Get(150, 5) {
		t.Fatal("transparency 1 not composed over the strip")
	}
	if err := m.NextTransparency(); err != nil {
		t.Fatal(err)
	}
	st = m.Screen().Strip()
	if !st.Get(150, 5) || !st.Get(150, 15) {
		t.Fatal("stacked transparency 2 not composed")
	}
	// In audio mode, NextPage remains an audio page command (the driving
	// mode is not hijacked by the set).
	page := m.PageNo()
	if err := m.NextPage(); err != nil {
		t.Fatal(err)
	}
	if m.PageNo() != page+1 {
		t.Fatal("NextPage did not advance the audio page")
	}
}

// --- relevances of every media kind ---

func TestRelevanceKinds(t *testing.T) {
	im := img.New("design", 80, 60)
	im.Add(img.Graphic{Shape: img.ShapeRect, Points: []img.Point{{X: 10, Y: 10}}, Size: img.Point{X: 30, Y: 20}})
	note := shortVoicePart(t, "Spoken relevance segment here")
	child, err := object.NewBuilder(300, "detail", object.Visual).
		Text(caseMarkup).
		Image(im).
		VoicePart(note).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := object.NewBuilder(301, "overview", object.Visual).
		Text(caseMarkup).
		Relevant(300, object.Anchor{Media: object.MediaText, From: 0, To: 20}, img.Point{X: 4, Y: 50},
			object.Relevance{Media: object.MediaText, From: 5, To: 12},
			object.Relevance{Media: object.MediaImage, Image: "design",
				Polygon: []img.Point{{X: 12, Y: 12}, {X: 36, Y: 12}, {X: 24, Y: 28}}},
			object.Relevance{Media: object.MediaVoice, From: 100, To: 3000}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Screen: screen.New(300, 220), Clock: vclock.New(),
		Resolver: func(id object.ID) (*object.Object, error) {
			if id == 300 {
				return child, nil
			}
			return nil, fmt.Errorf("no object %d", id)
		}})
	m.Open(parent)
	if err := m.EnterRelevant(0); err != nil {
		t.Fatal(err)
	}
	// Text relevance.
	if err := m.NextRelevance(); err != nil {
		t.Fatal(err)
	}
	ev := m.EventsOf(EvRelevanceShown)
	if len(ev) != 1 || ev[0].Name != "text" {
		t.Fatalf("events = %+v", ev)
	}
	if m.Position() != 5 {
		t.Fatalf("text relevance position = %d", m.Position())
	}
	// Image relevance: polygon projected on top of the image.
	if err := m.NextRelevance(); err != nil {
		t.Fatal(err)
	}
	ev = m.EventsOf(EvRelevanceShown)
	if ev[1].Name != "image" || ev[1].Detail != "design" {
		t.Fatalf("image relevance event = %+v", ev[1])
	}
	if m.Screen().Content().PopCount() == 0 {
		t.Fatal("image relevance blank")
	}
	// Voice relevance: the segment plays independently.
	if err := m.NextRelevance(); err != nil {
		t.Fatal(err)
	}
	ev = m.EventsOf(EvRelevanceShown)
	if ev[2].Name != "voice" {
		t.Fatalf("voice relevance event = %+v", ev[2])
	}
	log := m.Player().PlayLog
	if len(log) == 0 || log[len(log)-1].From != 100 || log[len(log)-1].To != 3000 {
		t.Fatalf("voice relevance play log = %+v", log)
	}
	// Cycling wraps back to the first relevance.
	if err := m.NextRelevance(); err != nil {
		t.Fatal(err)
	}
	if got := m.EventsOf(EvRelevanceShown); got[3].Name != "text" {
		t.Fatalf("cycle event = %+v", got[3])
	}
}

// --- nested relevant objects ---

func TestNestedRelevantObjects(t *testing.T) {
	grandchild, _ := object.NewBuilder(402, "leaf", object.Visual).Text(caseMarkup).Build()
	child, _ := object.NewBuilder(401, "middle", object.Visual).
		Text(caseMarkup).
		Relevant(402, object.Anchor{Media: object.MediaText, From: 0, To: 50}, img.Point{X: 2, Y: 40}).
		Build()
	parent, _ := object.NewBuilder(400, "root", object.Visual).
		Text(caseMarkup).
		Relevant(401, object.Anchor{Media: object.MediaText, From: 0, To: 50}, img.Point{X: 2, Y: 40}).
		Build()
	objs := map[object.ID]*object.Object{401: child, 402: grandchild}
	m := New(Config{Screen: screen.New(240, 140), Clock: vclock.New(),
		Resolver: func(id object.ID) (*object.Object, error) {
			if o, ok := objs[id]; ok {
				return o, nil
			}
			return nil, fmt.Errorf("no object %d", id)
		}})
	m.Open(parent)
	if err := m.EnterRelevant(0); err != nil {
		t.Fatal(err)
	}
	if err := m.EnterRelevant(0); err != nil {
		t.Fatal(err)
	}
	if m.Depth() != 3 || m.Object().ID != 402 {
		t.Fatalf("depth=%d obj=%d", m.Depth(), m.Object().ID)
	}
	if err := m.ReturnFromRelevant(); err != nil {
		t.Fatal(err)
	}
	if m.Object().ID != 401 {
		t.Fatal("pop to middle failed")
	}
	if err := m.ReturnFromRelevant(); err != nil {
		t.Fatal(err)
	}
	if m.Depth() != 1 || m.Object().ID != 400 {
		t.Fatal("pop to root failed")
	}
}

// --- menu state under tours, processes, views ---

func TestMenuDuringAutoModes(t *testing.T) {
	m := New(Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	m.Open(tourObject(t))
	menu := m.Menu()
	if !contains(menu, "TOUR WALK") {
		t.Fatalf("menu lacks tour: %v", menu)
	}
	m.StartTour("walk")
	menu = m.Menu()
	if !contains(menu, "INTERRUPT TOUR") || contains(menu, "NEXT PAGE") {
		t.Fatalf("tour menu = %v", menu)
	}
	m.InterruptTour()
	menu = m.Menu()
	if !contains(menu, "MOVE VIEW") || !contains(menu, "CLOSE VIEW") {
		t.Fatalf("view menu = %v", menu)
	}
	m.CloseView()
	if !contains(m.Menu(), "NEXT PAGE") {
		t.Fatal("page menu not restored")
	}

	m2 := New(Config{Screen: screen.New(240, 140), Clock: vclock.New()})
	m2.Open(processObject(t))
	if !contains(m2.Menu(), "PLAY WALK") {
		t.Fatalf("menu lacks process: %v", m2.Menu())
	}
	m2.StartProcess("walk")
	menu = m2.Menu()
	if !contains(menu, "STOP PROCESS") || !contains(menu, "FASTER") {
		t.Fatalf("process menu = %v", menu)
	}
	m2.StopProcess()
}

// --- invisible label reveal ---

func TestRevealLabels(t *testing.T) {
	im := img.New("map", 200, 120)
	im.Add(img.Graphic{Shape: img.ShapePoint, Points: []img.Point{{X: 50, Y: 50}},
		Label: img.Label{Kind: img.InvisibleTextLabel, Text: "SECRET", At: img.Point{X: 60, Y: 46}}})
	o, err := object.NewBuilder(1, "map", object.Visual).
		Text(".title Map\nMap with an invisible label.\n").
		Image(im).Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Screen: screen.New(300, 200), Clock: vclock.New()})
	m.Open(o)
	if err := m.RevealLabels(); err == nil {
		t.Fatal("reveal without view accepted")
	}
	m.OpenView("map", img.Rect{X: 0, Y: 0, W: 150, H: 100})
	before := m.Screen().Content().PopCount()
	if err := m.RevealLabels(); err != nil {
		t.Fatal(err)
	}
	after := m.Screen().Content().PopCount()
	if after <= before {
		t.Fatal("invisible label did not draw pixels")
	}
	if len(m.EventsOf(EvLabelShown)) != 1 {
		t.Fatal("no reveal event")
	}
}

// --- audio page goto while playing keeps playing ---

func TestAudioGotoWhilePlaying(t *testing.T) {
	clock := vclock.New()
	m := New(Config{Screen: screen.New(240, 140), Clock: clock, AudioPageLen: 4 * time.Second})
	m.Open(audioObject(t, text.UnitChapter))
	m.Play()
	clock.Advance(time.Second)
	if err := m.GotoPage(2); err != nil {
		t.Fatal(err)
	}
	if !m.Player().Playing() {
		t.Fatal("page jump stopped playback")
	}
	pages := m.AudioPages()
	if got := m.Position(); got < pages[2].Start {
		t.Fatalf("position %d before page 2 start %d", got, pages[2].Start)
	}
}

// --- pattern browsing respects the driving mode on relevant objects ---

func TestRelevantObjectUsesOwnDrivingMode(t *testing.T) {
	audioChild := audioObject(t, text.UnitChapter)
	audioChild.ID = 500
	parent, _ := object.NewBuilder(501, "root", object.Visual).
		Text(caseMarkup).
		Relevant(500, object.Anchor{Media: object.MediaText, From: 0, To: 50}, img.Point{X: 2, Y: 40}).
		Build()
	m := New(Config{Screen: screen.New(240, 140), Clock: vclock.New(), AudioPageLen: 5 * time.Second,
		Resolver: func(id object.ID) (*object.Object, error) { return audioChild, nil }})
	m.Open(parent)
	if m.Mode() != object.Visual {
		t.Fatal("parent mode")
	}
	m.EnterRelevant(0)
	if m.Mode() != object.Audio {
		t.Fatal("child driving mode not adopted")
	}
	// Voice ops work inside the relevant object.
	if err := m.Play(); err != nil {
		t.Fatal(err)
	}
	m.Clock().Advance(time.Second)
	if err := m.Interrupt(); err != nil {
		t.Fatal(err)
	}
	m.ReturnFromRelevant()
	if m.Mode() != object.Visual {
		t.Fatal("parent mode not re-established")
	}
	// Voice ops invalid again on the visual parent.
	if err := m.Play(); err == nil {
		t.Fatal("Play on visual parent accepted")
	}
}

// Voice messages anchored to an image play when the page showing the image
// first appears (the paper's x-ray narration case in visual mode).
func TestImageAnchoredVoiceMessage(t *testing.T) {
	im := img.New("xray", 80, 60)
	im.Base = img.NewBitmap(80, 60)
	im.Base.Fill(img.Rect{X: 10, Y: 10, W: 40, H: 30}, true)
	note := shortVoicePart(t, "Observe the opacity here")
	o, err := object.NewBuilder(1, "report", object.Visual).
		Text(caseMarkup).
		Image(im).
		PlaceImageAfterWord("xray", 60).
		VoiceMsg("narr", note, object.Anchor{Media: object.MediaImage, Image: "xray"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := testManager(t)
	m.Open(o)
	if len(m.EventsOf(EvVoiceMsgPlayed)) != 0 {
		t.Fatal("message played before the image page")
	}
	// Page forward until the image's page shows.
	for i := 0; i < m.PageCount(); i++ {
		m.NextPage()
		if len(m.EventsOf(EvVoiceMsgPlayed)) > 0 {
			break
		}
	}
	if got := len(m.EventsOf(EvVoiceMsgPlayed)); got != 1 {
		t.Fatalf("message played %d times, want 1 on the image page", got)
	}
	// Paging away and back replays (fresh branch-in).
	m.GotoPage(0)
	for i := 0; i < m.PageCount(); i++ {
		m.NextPage()
		if len(m.EventsOf(EvVoiceMsgPlayed)) > 1 {
			break
		}
	}
	if got := len(m.EventsOf(EvVoiceMsgPlayed)); got != 2 {
		t.Fatalf("message played %d times after revisit, want 2", got)
	}
}

// A point anchor (the two points coincide, §2) triggers its voice message
// exactly once when playback crosses it.
func TestPointAnchoredVoiceMessageDuringPlayback(t *testing.T) {
	clock := vclock.New()
	m := New(Config{Screen: screen.New(240, 140), Clock: clock, AudioPageLen: 5 * time.Second})
	o := audioObject(t, text.UnitChapter)
	vp := o.PrimaryVoice()
	point := len(vp.Samples) / 3
	o.VoiceMsgs = append(o.VoiceMsgs, object.VoiceMessage{
		Name:   "ping",
		Part:   shortVoicePart(t, "ping"),
		Anchor: object.Anchor{Media: object.MediaVoice, From: point, To: point},
	})
	m.Open(o)
	m.Play()
	clock.Run(5 * time.Minute)
	if got := len(m.EventsOf(EvVoiceMsgPlayed)); got != 1 {
		t.Fatalf("point message played %d times, want 1", got)
	}
	// The message fired exactly when playback reached the point.
	ev := m.EventsOf(EvVoiceMsgPlayed)[0]
	wantAt := vp.TimeAt(point)
	if ev.At < wantAt-time.Millisecond || ev.At > wantAt+time.Millisecond {
		t.Fatalf("message at %v, want ~%v", ev.At, wantAt)
	}
}

// Tour stops with visual message refs pin the strip for that stop.
func TestTourVisualMessage(t *testing.T) {
	clock := vclock.New()
	m := New(Config{Screen: screen.New(240, 140), Clock: clock})
	o := tourObject(t)
	o.VisualMsgs = append(o.VisualMsgs, object.VisualMessage{
		Name:   "caption",
		Strip:  strip(100, 20),
		Anchor: object.Anchor{Media: object.MediaText, From: 0, To: 0},
	})
	o.Tours[0].Tour.Stops[1].VisualMsgRef = "caption"
	m.Open(o)
	m.ClearEvents()
	m.StartTour("walk")
	// Advance to stop 1 (stop 0 plays a voice message first).
	for len(m.EventsOf(EvTourStop)) < 2 && clock.Now() < time.Minute {
		clock.Advance(200 * time.Millisecond)
	}
	if m.Screen().Strip() == nil {
		t.Fatal("tour stop's visual message not pinned")
	}
	pins := m.EventsOf(EvVisualMsgPinned)
	if len(pins) == 0 || pins[0].Detail != "tour" {
		t.Fatalf("pin events = %+v", pins)
	}
	clock.Run(2 * time.Minute)
	if m.Screen().Strip() != nil {
		t.Fatal("strip still pinned after the tour ended")
	}
}
