// Package core implements the MINOS multimedia object presentation manager
// — the paper's primary contribution. It presents archived (or editing-
// state, §4) multimedia objects on the workstation screen and provides the
// browsing primitives of §2 with symmetric functionality for text-driven
// and voice-driven objects:
//
//   - page browsing (visual pages / audio pages): next, previous, ±n, goto;
//   - voice playback control: interrupt, resume, resume from page start,
//     and pause-based rewind (n short/long pauses back);
//   - logical-unit browsing (chapter, section, paragraph, sentence, word)
//     over text boundaries and voice markers;
//   - pattern browsing over text words and recognized voice utterances;
//   - voice and visual logical messages with branch-in semantics;
//   - relevant objects and relevances with an explicit enter/return stack;
//   - transparency sets (both display methods, user-selected subsets);
//   - tours, process simulations (with overwrites), and views on large
//     images with voice labels.
//
// The manager drives a screen.Screen and an audioout.Player on a virtual
// clock and records an Event trace that tests and the figure scenarios
// assert against.
package core

import (
	"fmt"
	"time"

	"minos/internal/audioout"
	img "minos/internal/image"
	"minos/internal/layout"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/text"
	"minos/internal/vclock"
	"minos/internal/voice"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	EvPageShown EventKind = iota
	EvVoiceMsgPlayed
	EvVisualMsgPinned
	EvVisualMsgUnpinned
	EvEnterRelevant
	EvReturnRelevant
	EvRelevanceShown
	EvTransparencyShown
	EvTourStop
	EvTourEnded
	EvProcessPage
	EvProcessEnded
	EvVoicePlay
	EvVoiceInterrupt
	EvVoiceResume
	EvRewind
	EvLabelPlayed
	EvLabelShown
	EvHighlight
	EvViewMoved
	EvPatternFound
	EvPatternMiss
)

// String names the event kind.
func (k EventKind) String() string {
	names := [...]string{
		"page-shown", "voice-msg-played", "visual-msg-pinned",
		"visual-msg-unpinned", "enter-relevant", "return-relevant",
		"relevance-shown", "transparency-shown", "tour-stop", "tour-ended",
		"process-page", "process-ended", "voice-play", "voice-interrupt",
		"voice-resume", "rewind", "label-played", "label-shown",
		"highlight", "view-moved", "pattern-found", "pattern-miss",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one entry of the manager's trace.
type Event struct {
	Kind   EventKind
	Name   string // entity involved (message name, object id, ...)
	Detail string
	Page   int // page number where applicable, else -1
	At     time.Duration
}

// Resolver loads relevant objects by id (backed by the server or archiver).
type Resolver func(object.ID) (*object.Object, error)

// Config assembles the manager's workstation devices.
type Config struct {
	Screen *screen.Screen
	Clock  *vclock.Clock
	// Resolver is consulted when the user selects a relevant object
	// indicator. May be nil if the object has no relevant links.
	Resolver Resolver
	// AudioPageLen is the audio page length (0 = voice.DefaultPageLength).
	AudioPageLen time.Duration
	// VoiceOption enables automatic voice label playback as views move.
	VoiceOption bool
}

// Manager is the multimedia object presentation manager.
type Manager struct {
	cfg       Config
	player    *audioout.Player // object voice part playback
	msgPlayer *audioout.Player // logical message playback

	stack  []*session
	events []Event

	tour    *tourState
	process *processState
	view    *viewState
}

// session is the per-object browsing state; entering a relevant object
// pushes a new session, returning pops it and "the mode of browsing of the
// parent object is reestablished" (§2).
type session struct {
	obj    *object.Object
	stream []text.FlatWord

	// Visual mode.
	pages  []layout.Page
	pageNo int
	msg    *msgView // active visual-logical-message split view

	// Audio mode.
	vpart  *voice.Part
	apages []voice.AudioPage
	pauses []voice.Pause

	// pos is the current browsing position: a global word index (visual)
	// or a sample offset (audio).
	pos int

	// Branch-in tracking for logical messages.
	inVoiceAnchor  map[string]bool
	inVisualAnchor map[string]bool
	shownOnce      map[string]bool
	pinned         string // name of the pinned visual message, "" if none

	transp *transpState

	// Relevant-object context: the link through which this session was
	// entered, and the relevance cursor.
	viaLink *object.RelevantLink
	relIdx  int
}

// msgView is the Figures 3-4 split view: the message strip pinned on top,
// the related words paginated below at reduced height.
type msgView struct {
	name     string
	from, to int
	subPages []layout.Page
	subNo    int
}

type transpState struct {
	set    *object.TransparencySet
	base   *img.Bitmap
	index  int // -1 before the first transparency
	chosen []int
}

// New builds a manager. Screen and Clock are required.
func New(cfg Config) *Manager {
	if cfg.Screen == nil {
		cfg.Screen = screen.New(0, 0)
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.New()
	}
	if cfg.AudioPageLen == 0 {
		cfg.AudioPageLen = voice.DefaultPageLength
	}
	return &Manager{
		cfg:       cfg,
		player:    audioout.NewPlayer(cfg.Clock),
		msgPlayer: audioout.NewPlayer(cfg.Clock),
	}
}

// Events returns the trace so far.
func (m *Manager) Events() []Event { return append([]Event(nil), m.events...) }

// EventsOf filters the trace by kind.
func (m *Manager) EventsOf(k EventKind) []Event {
	var out []Event
	for _, e := range m.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// ClearEvents resets the trace.
func (m *Manager) ClearEvents() { m.events = nil }

func (m *Manager) trace(k EventKind, name, detail string, page int) {
	m.events = append(m.events, Event{Kind: k, Name: name, Detail: detail, Page: page, At: m.cfg.Clock.Now()})
}

// Screen exposes the driven screen.
func (m *Manager) Screen() *screen.Screen { return m.cfg.Screen }

// Clock exposes the virtual clock.
func (m *Manager) Clock() *vclock.Clock { return m.cfg.Clock }

// Player exposes the object-voice player (tests inspect its log).
func (m *Manager) Player() *audioout.Player { return m.player }

// MsgPlayer exposes the logical-message player.
func (m *Manager) MsgPlayer() *audioout.Player { return m.msgPlayer }

func (m *Manager) cur() *session {
	if len(m.stack) == 0 {
		return nil
	}
	return m.stack[len(m.stack)-1]
}

// Object returns the object currently being browsed, or nil.
func (m *Manager) Object() *object.Object {
	if s := m.cur(); s != nil {
		return s.obj
	}
	return nil
}

// Depth returns the relevant-object nesting depth (1 = the opened object).
func (m *Manager) Depth() int { return len(m.stack) }

// Open starts browsing an object in its driving mode. Any previous
// navigation stack is discarded.
func (m *Manager) Open(o *object.Object) error {
	m.stack = nil
	m.stopAuto()
	s, err := m.newSession(o)
	if err != nil {
		return err
	}
	m.stack = []*session{s}
	if o.Mode == object.Visual {
		// The opening page may already lie inside a visual logical
		// message's related segment.
		m.enterMsgViewIfAnchored()
	}
	m.showCurrent()
	return nil
}

func (m *Manager) newSession(o *object.Object) (*session, error) {
	s := &session{
		obj:            o,
		stream:         o.Stream(),
		inVoiceAnchor:  map[string]bool{},
		inVisualAnchor: map[string]bool{},
		shownOnce:      map[string]bool{},
	}
	switch o.Mode {
	case object.Visual:
		if o.Doc == nil {
			return nil, fmt.Errorf("core: visual mode object %d has no document flow", o.ID)
		}
		s.pages = layout.Paginate(o.Doc, m.pageSpec(0))
		if len(s.pages) == 0 {
			return nil, fmt.Errorf("core: object %d paginated to zero pages", o.ID)
		}
		s.pos = firstWordOf(s.pages, 0)
	case object.Audio:
		s.vpart = o.PrimaryVoice()
		if s.vpart == nil {
			return nil, fmt.Errorf("core: audio mode object %d has no voice part", o.ID)
		}
		s.pauses = voice.DetectPauses(s.vpart, voice.DetectorConfig{})
		s.apages = voice.Paginate(s.vpart, m.cfg.AudioPageLen, s.pauses)
		s.pos = 0
	}
	return s, nil
}

// pageSpec derives the pagination geometry; stripH > 0 reserves room for a
// pinned message strip.
func (m *Manager) pageSpec(stripH int) layout.Spec {
	h := m.cfg.Screen.H
	if stripH > 0 {
		h -= stripH + screen.GutterCols
	}
	return layout.Spec{W: m.cfg.Screen.ContentWidth(), H: h}
}

func firstWordOf(pages []layout.Page, n int) int {
	if n < 0 || n >= len(pages) {
		return 0
	}
	if pages[n].FirstWord >= 0 {
		return pages[n].FirstWord
	}
	return 0
}

// Mode returns the driving mode of the currently browsed object.
func (m *Manager) Mode() object.Mode {
	if s := m.cur(); s != nil {
		return s.obj.Mode
	}
	return object.Visual
}

// PageCount returns the number of pages in the current presentation form
// (visual or audio per the driving mode).
func (m *Manager) PageCount() int {
	s := m.cur()
	if s == nil {
		return 0
	}
	if s.obj.Mode == object.Audio {
		return len(s.apages)
	}
	return len(s.pages)
}

// PageNo returns the current page number (0-based).
func (m *Manager) PageNo() int {
	s := m.cur()
	if s == nil {
		return 0
	}
	if s.obj.Mode == object.Audio {
		return voice.PageOf(s.apages, m.Position())
	}
	return s.pageNo
}

// Position returns the current browsing position (word index or sample
// offset).
func (m *Manager) Position() int {
	s := m.cur()
	if s == nil {
		return 0
	}
	if s.obj.Mode == object.Audio && m.player.Playing() {
		return m.player.Position()
	}
	return s.pos
}

// stopAuto cancels any running tour or process simulation.
func (m *Manager) stopAuto() {
	if m.tour != nil {
		m.tour.halt()
		m.tour = nil
	}
	if m.process != nil {
		m.process.stop()
		m.process = nil
	}
	m.view = nil
}

// Menu returns the menu options available in the current state; "the menu
// options which are displayed define the set of available operations" (§2).
func (m *Manager) Menu() []string {
	s := m.cur()
	if s == nil {
		return nil
	}
	var opts []string
	add := func(o string) { opts = append(opts, o) }
	if m.tour != nil {
		add("INTERRUPT TOUR")
		return opts
	}
	if m.process != nil {
		add("STOP PROCESS")
		add("FASTER")
		add("SLOWER")
		return opts
	}
	if m.view != nil {
		add("MOVE VIEW")
		add("JUMP VIEW")
		add("SHRINK VIEW")
		add("EXPAND VIEW")
		add("CLOSE VIEW")
		return opts
	}
	add("NEXT PAGE")
	add("PREV PAGE")
	add("ADVANCE N")
	add("GOTO PAGE")
	if s.obj.Mode == object.Audio {
		if m.player.Playing() {
			add("INTERRUPT")
		} else {
			add("RESUME")
			add("RESUME PAGE START")
		}
		add("BACK N SHORT PAUSES")
		add("BACK N LONG PAUSES")
		for _, u := range s.vpart.UnitsIdentified() {
			add("NEXT " + upper(u.String()))
			add("PREV " + upper(u.String()))
		}
		if len(s.vpart.Utterances) > 0 {
			add("FIND PATTERN")
		}
	} else {
		for _, u := range text.UnitsIdentified(s.stream) {
			if u == text.UnitWord {
				continue
			}
			add("NEXT " + upper(u.String()))
			add("PREV " + upper(u.String()))
		}
		if len(s.stream) > 0 {
			add("FIND PATTERN")
		}
	}
	if s.transp != nil {
		add("NEXT TRANSPARENCY")
		add("PREV TRANSPARENCY")
		add("SELECT TRANSPARENCIES")
	} else if m.transpSetAt(s) != nil {
		add("SHOW TRANSPARENCIES")
	}
	for i, rl := range s.obj.Relevants {
		if rl.Anchor.Covers(s.pos) {
			add(fmt.Sprintf("RELEVANT OBJ %d", i))
		}
	}
	if len(m.stack) > 1 {
		add("RETURN")
		if len(m.relevancesHere()) > 0 {
			add("NEXT RELEVANCE")
		}
	}
	for _, tr := range s.obj.Tours {
		add("TOUR " + upper(tr.Name))
	}
	for _, ps := range s.obj.ProcessSims {
		add("PLAY " + upper(ps.Name))
	}
	return opts
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

// transpSetAt returns a transparency set anchored at the current position,
// or nil.
func (m *Manager) transpSetAt(s *session) *object.TransparencySet {
	for i := range s.obj.TranspSets {
		ts := &s.obj.TranspSets[i]
		covers := false
		switch ts.Anchor.Media {
		case object.MediaText:
			if s.obj.Mode == object.Visual {
				covers = ts.Anchor.Covers(s.pos) || m.anchorOnPage(ts.Anchor)
			}
		case object.MediaVoice:
			covers = ts.Anchor.Covers(s.pos)
		}
		if covers {
			return ts
		}
	}
	return nil
}
