package core

import (
	"fmt"
	"testing"
	"time"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/screen"
	"minos/internal/text"
	"minos/internal/vclock"
)

// TestRandomCommandSequences drives the manager with long pseudo-random
// command sequences against a feature-rich object graph and checks
// invariants after every command: the page number stays in range, the
// navigation depth stays positive, the screen always has a menu, and no
// command panics.
func TestRandomCommandSequences(t *testing.T) {
	childA, _ := object.NewBuilder(801, "child a", object.Visual).Text(caseMarkup).Build()
	childB := audioObject(t, text.UnitChapter)
	childB.ID = 802

	sheet := img.NewBitmap(80, 60)
	sheet.Set(1, 1, true)
	note := shortVoicePart(t, "note here")
	frame := img.NewBitmap(60, 40)
	mask := img.NewBitmap(60, 40)
	mask.Fill(img.Rect{X: 0, Y: 0, W: 8, H: 8}, true)
	mapImg := img.New("map", 200, 160)
	mapImg.Add(img.Graphic{Shape: img.ShapeCircle, Points: []img.Point{{X: 60, Y: 60}}, Radius: 5,
		Label: img.Label{Kind: img.VoiceLabel, Text: "site", VoiceRef: "note", At: img.Point{X: 70, Y: 56}}})

	root, err := object.NewBuilder(800, "root", object.Visual).
		Text(caseMarkup).
		Image(mapImg).
		VoiceMsg("note", note, object.Anchor{Media: object.MediaText, From: 10, To: 40}).
		VisualMsg("pin", sheet, object.Anchor{Media: object.MediaText, From: 50, To: 80}, false).
		TranspSet("ts", object.Anchor{Media: object.MediaText, From: 0, To: 30}, false, sheet, sheet).
		Relevant(801, object.Anchor{Media: object.MediaText, From: 0, To: 60}, img.Point{X: 2, Y: 40}).
		Relevant(802, object.Anchor{Media: object.MediaText, From: 20, To: 80}, img.Point{X: 2, Y: 60}).
		Tour("walk", img.Tour{Image: "map", Size: img.Point{X: 50, Y: 40}, DwellMillis: 50,
			Stops: []img.TourStop{{At: img.Point{X: 0, Y: 0}}, {At: img.Point{X: 100, Y: 80}}}}).
		Process("sim", 50,
			object.ProcessPage{Kind: object.ProcessReplace, Image: frame},
			object.ProcessPage{Kind: object.ProcessOverwrite, Image: frame, Mask: mask}).
		Build()
	if err != nil {
		t.Fatal(err)
	}

	resolver := func(id object.ID) (*object.Object, error) {
		switch id {
		case 801:
			return childA, nil
		case 802:
			return childB, nil
		}
		return nil, fmt.Errorf("no object %d", id)
	}

	cmds := []func(m *Manager) error{
		func(m *Manager) error { return m.NextPage() },
		func(m *Manager) error { return m.PrevPage() },
		func(m *Manager) error { return m.Advance(3) },
		func(m *Manager) error { return m.Advance(-2) },
		func(m *Manager) error { return m.GotoPage(0) },
		func(m *Manager) error { return m.NextUnit(text.UnitChapter) },
		func(m *Manager) error { return m.PrevUnit(text.UnitSection) },
		func(m *Manager) error { return m.NextUnit(text.UnitSentence) },
		func(m *Manager) error { return m.FindPattern("the") },
		func(m *Manager) error { return m.ShowTransparencies() },
		func(m *Manager) error { return m.NextTransparency() },
		func(m *Manager) error { return m.PrevTransparency() },
		func(m *Manager) error { return m.EnterRelevant(0) },
		func(m *Manager) error { return m.EnterRelevant(1) },
		func(m *Manager) error { return m.ReturnFromRelevant() },
		func(m *Manager) error { return m.NextRelevance() },
		func(m *Manager) error { return m.StartTour("walk") },
		func(m *Manager) error { return m.InterruptTour() },
		func(m *Manager) error { return m.StartProcess("sim") },
		func(m *Manager) error { return m.StopProcess() },
		func(m *Manager) error { return m.OpenView("map", img.Rect{X: 0, Y: 0, W: 50, H: 40}) },
		func(m *Manager) error { return m.MoveView(16, 8) },
		func(m *Manager) error { return m.CloseView() },
		func(m *Manager) error { return m.Play() },
		func(m *Manager) error { return m.Interrupt() },
		func(m *Manager) error { return m.Resume() },
		func(m *Manager) error { return m.RewindPauses(1, true) },
		func(m *Manager) error { m.Clock().Run(m.Clock().Now() + 2*time.Second); return nil },
	}

	for seed := uint64(1); seed <= 4; seed++ {
		clock := vclock.New()
		m := New(Config{Screen: screen.New(300, 200), Clock: clock, Resolver: resolver,
			AudioPageLen: 4 * time.Second, VoiceOption: true})
		if err := m.Open(root); err != nil {
			t.Fatal(err)
		}
		x := seed*2654435761 + 99
		for step := 0; step < 400; step++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			cmd := cmds[x%uint64(len(cmds))]
			_ = cmd(m) // errors are fine; panics are not
			// Invariants.
			if m.Depth() < 1 {
				t.Fatalf("seed %d step %d: depth %d", seed, step, m.Depth())
			}
			if pc := m.PageCount(); pc > 0 {
				if pn := m.PageNo(); pn < 0 || pn >= pc {
					t.Fatalf("seed %d step %d: page %d of %d", seed, step, pn, pc)
				}
			}
			if m.Object() == nil {
				t.Fatalf("seed %d step %d: no object", seed, step)
			}
			if m.Position() < 0 {
				t.Fatalf("seed %d step %d: negative position", seed, step)
			}
		}
		// Drain any pending playback/timers cleanly.
		clock.Run(clock.Now() + time.Minute)
	}
}
