package core

import (
	"fmt"
	"sort"

	img "minos/internal/image"
	"minos/internal/object"
	"minos/internal/text"
	"minos/internal/voice"
)

// showAudio renders the audio-mode presentation: the pinned visual message
// (if any) on top, and a status panel with the audio page position below —
// the audio object's "presentation form is based on audio pages" (§2).
func (m *Manager) showAudio() {
	s := m.cur()
	m.checkVisualMessages()
	page := voice.PageOf(s.apages, s.pos)
	h := m.cfg.Screen.ContentHeight()
	w := m.cfg.Screen.ContentWidth()
	panel := img.NewBitmap(w, h)
	img.DrawString(panel, 4, 4, fmt.Sprintf("AUDIO PAGE %d/%d", page+1, len(s.apages)))
	// Progress bar across the page.
	if n := len(s.vpart.Samples); n > 0 {
		barY := 18
		barW := w - 8
		fill := barW * s.pos / n
		for x := 0; x < barW; x++ {
			panel.Set(4+x, barY, true)
			panel.Set(4+x, barY+6, true)
		}
		for x := 0; x < fill; x++ {
			for y := barY + 1; y < barY+6; y++ {
				panel.Set(4+x, y, true)
			}
		}
	}
	if m.player.Playing() {
		img.DrawString(panel, 4, 30, "PLAYING")
	} else {
		img.DrawString(panel, 4, 30, "INTERRUPTED")
	}
	m.cfg.Screen.ShowPage(panel)
	m.trace(EvPageShown, "audio", "", page)
}

// Play starts (or restarts) voice output from the current position.
func (m *Manager) Play() error {
	s := m.cur()
	if s == nil {
		return errNoObject
	}
	if s.obj.Mode != object.Audio {
		return fmt.Errorf("core: Play on a visual mode object")
	}
	m.player.Load(s.vpart)
	m.trace(EvVoicePlay, "", fmt.Sprintf("from %d", s.pos), voice.PageOf(s.apages, s.pos))
	m.playChain(s.pos)
	m.showCurrent()
	return nil
}

// playChain plays the voice part from pos, chopping playback at logical
// message anchor boundaries so branch-in semantics hold during continuous
// listening: voice messages play "before the voice of the related segment"
// and visual messages pin for the duration of the related segment (§2).
func (m *Manager) playChain(pos int) {
	s := m.cur()
	if pos >= len(s.vpart.Samples) {
		s.pos = len(s.vpart.Samples)
		m.checkVisualMessages()
		return
	}
	s.pos = pos
	m.checkVisualMessages()

	// Voice message branch-in at this position?
	for i := range s.obj.VoiceMsgs {
		vm := &s.obj.VoiceMsgs[i]
		if vm.Anchor.Media != object.MediaVoice {
			continue
		}
		inside := vm.Anchor.Covers(pos)
		was := s.inVoiceAnchor[vm.Name]
		s.inVoiceAnchor[vm.Name] = inside
		if inside && !was {
			// Play the message first, then the segment's voice.
			m.trace(EvVoiceMsgPlayed, vm.Name, "", voice.PageOf(s.apages, pos))
			m.msgPlayer.Load(vm.Part)
			m.msgPlayer.Play(0, 0, func() {
				if m.cur() == s {
					m.playChain(pos)
				}
			})
			return
		}
	}

	next := s.nextBoundary(pos)
	m.player.Play(pos, next, func() {
		if m.cur() == s {
			m.playChain(next)
		}
	})
}

// nextBoundary returns the nearest logical-message anchor boundary after
// pos (anchor starts and one-past-anchor-ends), or the part end.
func (s *session) nextBoundary(pos int) int {
	end := len(s.vpart.Samples)
	best := end
	consider := func(b int) {
		if b > pos && b < best {
			best = b
		}
	}
	for _, vm := range s.obj.VoiceMsgs {
		if vm.Anchor.Media == object.MediaVoice {
			consider(vm.Anchor.From)
			consider(vm.Anchor.To + 1)
		}
	}
	for _, vm := range s.obj.VisualMsgs {
		if vm.Anchor.Media == object.MediaVoice {
			consider(vm.Anchor.From)
			consider(vm.Anchor.To + 1)
		}
	}
	for _, ts := range s.obj.TranspSets {
		if ts.Anchor.Media == object.MediaVoice {
			consider(ts.Anchor.From)
			consider(ts.Anchor.To + 1)
		}
	}
	return best
}

// Interrupt stops voice output, keeping the position.
func (m *Manager) Interrupt() error {
	s := m.cur()
	if s == nil {
		return errNoObject
	}
	if s.obj.Mode != object.Audio {
		return fmt.Errorf("core: Interrupt on a visual mode object")
	}
	pos := m.player.Interrupt()
	m.msgPlayer.Interrupt()
	s.pos = pos
	m.trace(EvVoiceInterrupt, "", fmt.Sprintf("at %d", pos), voice.PageOf(s.apages, pos))
	m.showCurrent()
	return nil
}

// Resume continues voice output from the interrupted position (§2).
func (m *Manager) Resume() error {
	s := m.cur()
	if s == nil {
		return errNoObject
	}
	m.trace(EvVoiceResume, "", fmt.Sprintf("from %d", s.pos), voice.PageOf(s.apages, s.pos))
	return m.Play()
}

// ResumeFromPageStart restarts voice output from the beginning of the
// current voice page (§2).
func (m *Manager) ResumeFromPageStart() error {
	s := m.cur()
	if s == nil {
		return errNoObject
	}
	if s.obj.Mode != object.Audio {
		return fmt.Errorf("core: ResumeFromPageStart on a visual mode object")
	}
	pg := voice.PageOf(s.apages, s.pos)
	s.pos = s.apages[pg].Start
	m.trace(EvVoiceResume, "page-start", fmt.Sprintf("page %d", pg), pg)
	return m.Play()
}

// RewindPauses replays audio "starting from a number of short or long
// pauses back from the current position" (§2).
func (m *Manager) RewindPauses(n int, long bool) error {
	s := m.cur()
	if s == nil {
		return errNoObject
	}
	if s.obj.Mode != object.Audio {
		return fmt.Errorf("core: RewindPauses on a visual mode object")
	}
	cur := s.pos
	if m.player.Playing() {
		cur = m.player.Interrupt()
	}
	target := voice.RewindTarget(s.pauses, cur, long, n)
	s.pos = target
	kind := "short"
	if long {
		kind = "long"
	}
	m.trace(EvRewind, kind, fmt.Sprintf("%d pauses: %d -> %d", n, cur, target), voice.PageOf(s.apages, target))
	return m.Play()
}

// audioGotoPage jumps playback to an audio page start; playback continues
// if it was running (pages do not interrupt speech, §2 — but an explicit
// page jump repositions it).
func (m *Manager) audioGotoPage(n int) error {
	s := m.cur()
	if n < 0 {
		n = 0
	}
	if n >= len(s.apages) {
		n = len(s.apages) - 1
	}
	wasPlaying := m.player.Playing()
	if wasPlaying {
		m.player.Interrupt()
	}
	s.pos = s.apages[n].Start
	if wasPlaying {
		return m.Play()
	}
	m.showCurrent()
	return nil
}

// audioNextUnit browses to the next manually identified logical component.
func (m *Manager) audioNextUnit(u text.Unit) error {
	s := m.cur()
	i := s.vpart.NextMarker(s.pos, u)
	if i == -1 {
		return fmt.Errorf("core: no next %v marker", u)
	}
	return m.audioSeek(s.vpart.Markers[i].Offset)
}

// audioPrevUnit browses to the previous logical component.
func (m *Manager) audioPrevUnit(u text.Unit) error {
	s := m.cur()
	i := s.vpart.PrevMarker(s.pos, u)
	if i == -1 {
		return fmt.Errorf("core: no previous %v marker", u)
	}
	return m.audioSeek(s.vpart.Markers[i].Offset)
}

// audioFindPattern browses to the next recognized utterance of the pattern.
// "Voice recognition is not taking place at the time of browsing" (§2) —
// only the pre-recognized utterances are searched.
func (m *Manager) audioFindPattern(pattern string) error {
	s := m.cur()
	u := voice.NextUtterance(s.vpart.Utterances, pattern, s.pos)
	if u == nil {
		m.trace(EvPatternMiss, pattern, "", voice.PageOf(s.apages, s.pos))
		return fmt.Errorf("core: pattern %q not recognized after position %d", pattern, s.pos)
	}
	m.trace(EvPatternFound, pattern, fmt.Sprintf("offset %d", u.Offset), voice.PageOf(s.apages, u.Offset))
	return m.audioSeek(u.Offset)
}

func (m *Manager) audioSeek(pos int) error {
	s := m.cur()
	wasPlaying := m.player.Playing()
	if wasPlaying {
		m.player.Interrupt()
	}
	s.pos = pos
	if wasPlaying {
		return m.Play()
	}
	m.showCurrent()
	return nil
}

// AudioPages exposes the audio page table (tests and tools).
func (m *Manager) AudioPages() []voice.AudioPage {
	if s := m.cur(); s != nil {
		return append([]voice.AudioPage(nil), s.apages...)
	}
	return nil
}

// Pauses exposes the detected pauses sorted by offset.
func (m *Manager) Pauses() []voice.Pause {
	s := m.cur()
	if s == nil {
		return nil
	}
	out := append([]voice.Pause(nil), s.pauses...)
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}
